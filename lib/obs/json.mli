(** Minimal JSON document builder (emission only).

    Backs BENCH.json, the JSONL trace sink and metrics snapshots without
    pulling in an external dependency. Non-finite floats are emitted as
    [null] so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit
