(* Structured trace subsystem.

   Events are typed records carrying the simulation time (nanoseconds),
   a category and a rendered message. Emitted events land in a bounded
   ring buffer (for post-mortem inspection from tests and debuggers) and
   flow to the active sinks:

     - stderr pretty-printer, per category, controlled by OSIRIS_TRACE
       ("all" or a comma list of category names) or enable/disable;
     - a JSONL file, one event object per line, controlled by
       OSIRIS_TRACE_JSON=<path> or [set_json_path] — this sink captures
       every category;
     - arbitrary callbacks installed with [on_event].

   The environment is consulted once, lazily; explicit enable/disable
   calls force that initialization first, so tests can never race the
   env latch ([reset_for_testing] restores a clean, env-independent
   state). *)

type category = Board_tx | Board_rx | Driver | Protocol | Link | Fault

let category_name = function
  | Board_tx -> "board-tx"
  | Board_rx -> "board-rx"
  | Driver -> "driver"
  | Protocol -> "protocol"
  | Link -> "link"
  | Fault -> "fault"

let all = [ Board_tx; Board_rx; Driver; Protocol; Link; Fault ]

type event = { seq : int; t_ns : int; cat : category; msg : string }

let ring_capacity = 1024
let ring : event option array = Array.make ring_capacity None
let ring_next = ref 0
let total = ref 0

(* Categories routed to the stderr pretty-printer. *)
let stderr_cats : (category, unit) Hashtbl.t = Hashtbl.create 8
let json_oc : out_channel option ref = ref None
let sinks : (event -> unit) list ref = ref []
let initialized = ref false

let close_json () =
  match !json_oc with
  | None -> ()
  | Some oc ->
      json_oc := None;
      close_out_noerr oc

let open_json path =
  close_json ();
  json_oc := Some (open_out path)

let parse_spec spec enable1 =
  match spec with
  | "all" -> List.iter enable1 all
  | spec ->
      String.split_on_char ',' spec
      |> List.iter (fun name ->
             List.iter
               (fun c -> if category_name c = String.trim name then enable1 c)
               all)

let apply_env () =
  (match Sys.getenv_opt "OSIRIS_TRACE" with
  | None | Some "" -> ()
  | Some spec -> parse_spec spec (fun c -> Hashtbl.replace stderr_cats c ()));
  match Sys.getenv_opt "OSIRIS_TRACE_JSON" with
  | None | Some "" -> ()
  | Some path -> open_json path

(* Explicit configuration forces env initialization first, so a later
   first [enabled] probe can never override what a test set up. *)
let ensure_init () =
  if not !initialized then begin
    initialized := true;
    apply_env ()
  end

let enable c =
  ensure_init ();
  Hashtbl.replace stderr_cats c ()

let disable c =
  ensure_init ();
  Hashtbl.remove stderr_cats c

let enable_all () = List.iter enable all

let set_json_path = function
  | Some path ->
      ensure_init ();
      open_json path
  | None ->
      ensure_init ();
      close_json ()

let on_event f =
  ensure_init ();
  sinks := f :: !sinks

let init_from_env () = ensure_init ()

let enabled c =
  ensure_init ();
  Hashtbl.mem stderr_cats c || !json_oc <> None || !sinks <> []

let events_emitted () = !total

let recent () =
  let out = ref [] in
  for i = 0 to ring_capacity - 1 do
    match ring.((!ring_next + i) mod ring_capacity) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  List.rev !out

let reset_for_testing () =
  initialized := true;
  Hashtbl.reset stderr_cats;
  close_json ();
  sinks := [];
  Array.fill ring 0 ring_capacity None;
  ring_next := 0;
  total := 0

let pp_event fmt (ev : event) =
  Format.fprintf fmt "[%10.2fus %s] %s" (float_of_int ev.t_ns /. 1e3)
    (category_name ev.cat) ev.msg

let event_json (ev : event) =
  Json.Assoc
    [
      ("seq", Json.Int ev.seq);
      ("t_ns", Json.Int ev.t_ns);
      ("t_us", Json.Float (float_of_int ev.t_ns /. 1e3));
      ("cat", Json.String (category_name ev.cat));
      ("msg", Json.String ev.msg);
    ]

let emit c ~now msg =
  if enabled c then begin
    incr total;
    let ev = { seq = !total; t_ns = now; cat = c; msg } in
    ring.(!ring_next) <- Some ev;
    ring_next := (!ring_next + 1) mod ring_capacity;
    if Hashtbl.mem stderr_cats c then
      Printf.eprintf "[%10.2fus %s] %s\n%!"
        (float_of_int ev.t_ns /. 1e3)
        (category_name c) msg;
    (match !json_oc with
    | Some oc ->
        Json.to_channel oc (event_json ev);
        output_char oc '\n';
        flush oc
    | None -> ());
    List.iter (fun f -> f ev) !sinks
  end

(* A private sink formatter for the disabled branch: ikfprintf needs a
   formatter but must not thread the shared Format.str_formatter (whose
   buffer other code may be using concurrently). *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let emitf c ~now fmt =
  if enabled c then Format.kasprintf (fun msg -> emit c ~now msg) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt
