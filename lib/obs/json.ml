(* Minimal JSON document builder: enough to emit BENCH.json, JSONL trace
   events and metrics snapshots without an external dependency. Emission
   only — the repo never needs to parse JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no nan/inf; map them to null so the output always parses. *)
let float_to buf x =
  if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.12g" x)
  else Buffer.add_string buf "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_to buf x
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Assoc kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)
