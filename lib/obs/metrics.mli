(** Process-wide metrics registry.

    Components register typed handles — counters, gauges, streaming
    distributions ({!Osiris_util.Stats.t}) and histograms — under
    hierarchical dotted names like ["board.tx.dma_words"] at construction
    time, and bump them on the hot path (a single mutable-field update).
    Reporting code reads everything at once with {!snapshot} or
    {!to_json}.

    Several instances may register under one name (a bench run builds
    many hosts): snapshots aggregate them — counters and distributions
    sum/merge, gauges report the most recent registration. *)

type counter
type gauge

val counter : string -> counter
(** Register (another) counter under [name], starting at 0. *)

val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val gauge_fn : string -> (unit -> float) -> unit
(** Register a pull gauge: the callback is sampled at snapshot time. *)

val dist : string -> Osiris_util.Stats.t
(** Register a streaming distribution; feed it with [Stats.add]. *)

val histogram :
  string -> lo:float -> hi:float -> buckets:int -> Osiris_util.Stats.Histogram.h

val reset : unit -> unit
(** Drop every registration (testing). Existing handles keep working but
    are no longer visible to snapshots. *)

(** {2 Snapshots} *)

type dist_value = {
  d_n : int;
  d_mean : float;
  d_stddev : float;
  d_min : float;
  d_max : float;
  d_sum : float;
}

type hist_value = { h_n : int; h_p50 : float; h_p90 : float; h_p99 : float }

type value =
  | V_int of int
  | V_float of float
  | V_dist of dist_value
  | V_hist of hist_value

val snapshot : unit -> (string * value) list
(** Every registered name with its aggregated value, sorted by name. *)

val find : string -> value option

val value_json : value -> Json.t

val to_json : unit -> Json.t
(** The whole registry as one JSON object, keys sorted. *)

val pp : Format.formatter -> unit -> unit
