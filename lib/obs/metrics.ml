(* Process-wide metrics registry.

   Every measurable quantity in the simulator — PIO words per queue
   operation, interrupts per PDU, cache misses, DMA transactions — is held
   in a typed handle registered here under a hierarchical dotted name
   (e.g. "board.tx.dma_words"). Components create handles at construction
   time and bump them on the hot path (one mutable-field update, exactly
   what the old ad-hoc records cost); reporting code takes a [snapshot]
   or [to_json] of everything at once.

   Several instances of a component may register under the same name (a
   bench run builds many hosts); a snapshot aggregates them: counters and
   distributions sum/merge, gauges report the most recent registration. *)

module Stats = Osiris_util.Stats

type counter = { c_name : string; mutable c : int }
type gauge = { g_name : string; mutable g : float }

type handle =
  | Counter of counter
  | Gauge of gauge
  | Gauge_fn of (unit -> float)
  | Dist of Stats.t
  | Hist of Stats.Histogram.h

(* Most recent registration first. *)
let table : (string, handle list ref) Hashtbl.t = Hashtbl.create 64

let register name h =
  match Hashtbl.find_opt table name with
  | Some l -> l := h :: !l
  | None -> Hashtbl.replace table name (ref [ h ])

let counter name =
  let c = { c_name = name; c = 0 } in
  register name (Counter c);
  c

let add c n = c.c <- c.c + n
let incr c = add c 1
let counter_value c = c.c
let counter_name c = c.c_name

let gauge name =
  let g = { g_name = name; g = 0.0 } in
  register name (Gauge g);
  g

let set g v = g.g <- v
let gauge_value g = g.g
let gauge_fn name f = register name (Gauge_fn f)

let dist name =
  let s = Stats.create () in
  register name (Dist s);
  s

let histogram name ~lo ~hi ~buckets =
  let h = Stats.Histogram.create ~lo ~hi ~buckets in
  register name (Hist h);
  h

let reset () = Hashtbl.reset table

(* ------------------------------------------------------------------ *)
(* Snapshots. *)

type dist_value = {
  d_n : int;
  d_mean : float;
  d_stddev : float;
  d_min : float;
  d_max : float;
  d_sum : float;
}

type hist_value = { h_n : int; h_p50 : float; h_p90 : float; h_p99 : float }

type value =
  | V_int of int
  | V_float of float
  | V_dist of dist_value
  | V_hist of hist_value

let merge_dists (ss : Stats.t list) =
  let m = Stats.merge ss in
  {
    d_n = Stats.count m;
    d_mean = Stats.mean m;
    d_stddev = Stats.stddev m;
    d_min = Stats.min m;
    d_max = Stats.max m;
    d_sum = Stats.sum m;
  }

let merge_hists (hs : Stats.Histogram.h list) =
  match hs with
  | [] -> { h_n = 0; h_p50 = nan; h_p90 = nan; h_p99 = nan }
  | _ ->
      let open Stats.Histogram in
      let merged = merge hs in
      {
        h_n = count merged;
        h_p50 = percentile merged 50.0;
        h_p90 = percentile merged 90.0;
        h_p99 = percentile merged 99.0;
      }

(* Aggregate every handle registered under one name. Mixed kinds never
   happen in practice; if they do, the most recent registration wins. *)
let aggregate (handles : handle list) =
  match handles with
  | [] -> V_int 0
  | Gauge g :: _ -> V_float g.g
  | Gauge_fn f :: _ -> V_float (f ())
  | Counter _ :: _ ->
      V_int
        (List.fold_left
           (fun acc h -> match h with Counter c -> acc + c.c | _ -> acc)
           0 handles)
  | Dist _ :: _ ->
      V_dist
        (merge_dists
           (List.filter_map
              (function Dist s -> Some s | _ -> None)
              handles))
  | Hist _ :: _ ->
      V_hist
        (merge_hists
           (List.filter_map
              (function Hist h -> Some h | _ -> None)
              handles))

let snapshot () =
  Hashtbl.fold (fun name l acc -> (name, aggregate !l) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name =
  match Hashtbl.find_opt table name with
  | None -> None
  | Some l -> Some (aggregate !l)

let value_json = function
  | V_int i -> Json.Int i
  | V_float x -> Json.Float x
  | V_dist d ->
      Json.Assoc
        [
          ("n", Json.Int d.d_n);
          ("mean", Json.Float d.d_mean);
          ("stddev", Json.Float d.d_stddev);
          ("min", Json.Float d.d_min);
          ("max", Json.Float d.d_max);
          ("sum", Json.Float d.d_sum);
        ]
  | V_hist h ->
      Json.Assoc
        [
          ("n", Json.Int h.h_n);
          ("p50", Json.Float h.h_p50);
          ("p90", Json.Float h.h_p90);
          ("p99", Json.Float h.h_p99);
        ]

let to_json () =
  Json.Assoc (List.map (fun (name, v) -> (name, value_json v)) (snapshot ()))

let pp fmt () =
  List.iter
    (fun (name, v) ->
      match v with
      | V_int i -> Format.fprintf fmt "%-40s %d@." name i
      | V_float x -> Format.fprintf fmt "%-40s %g@." name x
      | V_dist d ->
          Format.fprintf fmt "%-40s n=%d mean=%.3f sd=%.3f@." name d.d_n
            d.d_mean d.d_stddev
      | V_hist h ->
          Format.fprintf fmt "%-40s n=%d p50=%g p99=%g@." name h.h_n h.h_p50
            h.h_p99)
    (snapshot ())
