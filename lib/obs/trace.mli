(** Structured trace subsystem.

    Events are typed records carrying a simulation timestamp (integer
    nanoseconds — the emitting site supplies it, so pure modules can
    trace too), a category and a rendered message. Emitted events land in
    a bounded in-memory ring buffer and flow to the active sinks:

    - a stderr pretty-printer, gated per category by [OSIRIS_TRACE]
      (comma-separated category names, or ["all"]) or {!enable};
    - a JSONL file (one JSON object per line) opened from
      [OSIRIS_TRACE_JSON=<path>] or {!set_json_path}, which captures
      {e every} category;
    - arbitrary callbacks installed with {!on_event}.

    Tracing is off by default and costs one branch when disabled. The
    environment is consulted once, lazily; explicit {!enable}/{!disable}
    calls force that initialization first so tests cannot race the env
    latch, and {!reset_for_testing} restores a clean, env-independent
    state. *)

type category =
  | Board_tx  (** transmit processor: chain loads, completions *)
  | Board_rx  (** receive processor: reassembly outcomes, drops *)
  | Driver  (** host channel drivers *)
  | Protocol  (** IP/UDP events *)
  | Link  (** striping, skew, loss *)
  | Fault  (** injected faults and the recovery they trigger *)

val category_name : category -> string
val all : category list

type event = {
  seq : int;  (** 1-based emission index since start/reset *)
  t_ns : int;  (** simulated time of the emitting site *)
  cat : category;
  msg : string;
}

val enable : category -> unit
val disable : category -> unit
val enable_all : unit -> unit

val enabled : category -> bool
(** Cheap guard for call sites that would otherwise build strings: true
    when any sink would observe an event of this category. *)

val emit : category -> now:int -> string -> unit
(** Emit one event (no trailing newline needed in [msg]). *)

val emitf : category -> now:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format is only evaluated when enabled. *)

(** {2 Sinks} *)

val set_json_path : string option -> unit
(** Open (or close, with [None]) the JSONL sink. Replaces any previously
    open JSONL file. *)

val on_event : (event -> unit) -> unit
(** Install a callback sink receiving every emitted event. Removed only
    by {!reset_for_testing}. *)

(** {2 Inspection} *)

val recent : unit -> event list
(** The ring buffer's contents, oldest first (at most the last 1024
    events). *)

val events_emitted : unit -> int

val pp_event : Format.formatter -> event -> unit
val event_json : event -> Json.t

(** {2 Lifecycle} *)

val init_from_env : unit -> unit
(** Parse [OSIRIS_TRACE] / [OSIRIS_TRACE_JSON]. Called lazily by the
    first emit or configuration call; idempotent. *)

val reset_for_testing : unit -> unit
(** Disable every category, close the JSONL sink, drop callback sinks and
    the ring buffer, and mark the environment as already consulted so it
    cannot resurface mid-test. *)
