type handle = { mutable cancelled : bool; fn : unit -> unit }

type chooser = now:Time.t -> count:int -> int

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable stopping : bool;
  mutable chooser : chooser option;
  events : handle Heap.t;
}

exception Stopped

let create () =
  {
    clock = Time.zero;
    seq = 0;
    stopping = false;
    chooser = None;
    events = Heap.create ();
  }

let set_chooser t c = t.chooser <- c

let now t = t.clock

let schedule_at t ~time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.clock);
  let h = { cancelled = false; fn } in
  Heap.add t.events ~key:time ~seq:t.seq h;
  t.seq <- t.seq + 1;
  h

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) fn

let cancel h = h.cancelled <- true

let pending t = Heap.length t.events

(* Pop every live (non-cancelled) event scheduled at [key], in seq order.
   Cancelled entries are dropped on the way — they must not count as
   schedulable alternatives. *)
let pop_instant t key =
  let rec go acc =
    match Heap.peek_key t.events with
    | Some k when k = key -> (
        match Heap.pop_min t.events with
        | Some (_, seq, h) ->
            go (if h.cancelled then acc else (seq, h) :: acc)
        | None -> acc)
    | _ -> acc
  in
  List.rev (go [])

let step t =
  match t.chooser with
  | None -> (
      match Heap.pop_min t.events with
      | None -> false
      | Some (time, _seq, h) ->
          t.clock <- time;
          if not h.cancelled then h.fn ();
          true)
  | Some choose -> (
      match Heap.peek_key t.events with
      | None -> false
      | Some key -> (
          match pop_instant t key with
          | [] -> true (* only cancelled events at this instant; drained *)
          | [ (_, h) ] ->
              t.clock <- key;
              h.fn ();
              true
          | candidates ->
              let n = List.length candidates in
              let i = choose ~now:key ~count:n in
              if i < 0 || i >= n then
                invalid_arg
                  (Printf.sprintf
                     "Engine: chooser picked %d of %d candidates" i n);
              let _, h = List.nth candidates i in
              List.iteri
                (fun j (seq, h') ->
                  if j <> i then Heap.add t.events ~key ~seq h')
                candidates;
              t.clock <- key;
              h.fn ();
              true))

let stop t = t.stopping <- true

let run ?until ?max_events t =
  t.stopping <- false;
  let executed = ref 0 in
  let continue () =
    (not t.stopping)
    && (match max_events with None -> true | Some m -> !executed < m)
    &&
    match Heap.peek_key t.events with
    | None -> false
    | Some k -> ( match until with None -> true | Some u -> k <= u)
  in
  while continue () do
    ignore (step t);
    incr executed
  done;
  (* When stopping early because of [until], advance the clock to the
     horizon so that repeated bounded runs observe monotonic time. *)
  match until with
  | Some u when Heap.peek_key t.events <> None && not t.stopping ->
      if t.clock < u then t.clock <- u
  | _ -> ()
