type handle = {
  mutable cancelled : bool;
  mutable queued : bool; (* currently sitting in the event queue *)
  fn : unit -> unit;
}

type chooser = now:Time.t -> count:int -> int

type backend = Timer_wheel | Binary_heap

(* Both queues implement the same (key, seq) contract; the wheel is the
   default, the heap is kept for differential testing (and as the
   fallback should a workload ever need to schedule below the wheel's
   pop floor — the engine itself never does). *)
type events = E_wheel of handle Wheel.t | E_heap of handle Heap.t

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable stopping : bool;
  mutable dispatched : int;
  mutable chooser : chooser option;
  events : events;
}

exception Stopped

let dummy_handle = { cancelled = true; queued = false; fn = ignore }

let create ?(backend = Timer_wheel) () =
  let events =
    match backend with
    | Timer_wheel -> E_wheel (Wheel.create ~dummy:dummy_handle)
    | Binary_heap -> E_heap (Heap.create ())
  in
  { clock = Time.zero; seq = 0; stopping = false; dispatched = 0;
    chooser = None; events }

let set_chooser t c = t.chooser <- c

let now t = t.clock

let events_dispatched t = t.dispatched

let ev_add t ~key ~seq h =
  h.queued <- true;
  match t.events with
  | E_wheel q -> Wheel.add q ~key ~seq h
  | E_heap q ->
      (Heap.add q ~key ~seq h
      [@osiris.alloc_ok
        "heap backend boxes one Entry per add; it exists for differential \
         testing, the production backend is the wheel"])

(* Allocation-free dispatch primitives: [ev_take] raises [Not_found] on
   an empty queue, and the popped entry's (time, seq) is read back
   through [ev_last_key] — the option-returning [ev_pop]/[ev_peek]
   remain for the chooser path, which allocates anyway. *)
let ev_take t =
  let h =
    match t.events with E_wheel q -> Wheel.take q | E_heap q -> Heap.take q
  in
  h.queued <- false;
  h

let ev_last_key t =
  match t.events with
  | E_wheel q -> Wheel.last_key q
  | E_heap q -> Heap.last_key q

let ev_next_key t =
  match t.events with
  | E_wheel q -> Wheel.next_key q
  | E_heap q -> Heap.next_key q

let ev_last_seq t =
  match t.events with
  | E_wheel q -> Wheel.last_seq q
  | E_heap q -> Heap.last_seq q

let ev_pop t =
  match ev_take t with
  | exception Not_found -> None
  | h -> Some (ev_last_key t, ev_last_seq t, h)

let ev_peek t =
  match t.events with
  | E_wheel q -> Wheel.peek_key q
  | E_heap q -> Heap.peek_key q

let pending t =
  match t.events with
  | E_wheel q -> Wheel.length q
  | E_heap q -> Heap.length q

let check_time t time =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.clock)

let schedule_at t ~time fn =
  check_time t time;
  let h = { cancelled = false; queued = false; fn } in
  ev_add t ~key:time ~seq:t.seq h;
  t.seq <- t.seq + 1;
  h

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) fn

let reschedule_at t ~time h =
  if h.queued then
    invalid_arg "Engine.reschedule_at: handle is still queued";
  check_time t time;
  h.cancelled <- false;
  ev_add t ~key:time ~seq:t.seq h;
  t.seq <- t.seq + 1

let reschedule t ~delay h =
  if delay < 0 then invalid_arg "Engine.reschedule: negative delay";
  reschedule_at t ~time:(t.clock + delay) h

let cancel h = h.cancelled <- true

(* Pop every live (non-cancelled) event scheduled at [key], in seq order.
   Cancelled entries are dropped on the way — they must not count as
   schedulable alternatives. *)
let pop_instant t key =
  let rec go acc =
    match ev_peek t with
    | Some k when k = key -> (
        match ev_pop t with
        | Some (_, seq, h) ->
            go (if h.cancelled then acc else (seq, h) :: acc)
        | None -> acc)
    | _ -> acc
  in
  List.rev (go [])

(* One scheduling decision. [`Skipped] is a dispatch that consumed only
   cancelled handles — it advances the clock (matching the historical
   behaviour) but must not count against a [run ~max_events] budget. *)
let step_live t =
  match t.chooser with
  | None -> (
      match ev_take t with
      | exception Not_found -> `Empty
      | h ->
          t.clock <- ev_last_key t;
          if h.cancelled then `Skipped
          else begin
            t.dispatched <- t.dispatched + 1;
            (h.fn ()
            [@osiris.alloc_ok
              "dispatch: what the callback allocates is the callback's \
               budget, not the engine's"]);
            `Dispatched
          end)
  | Some choose ->
      ((match ev_peek t with
       | None -> `Empty
       | Some key -> (
           match pop_instant t key with
           | [] -> `Skipped (* only cancelled events at this instant *)
           | [ (_, h) ] ->
               t.clock <- key;
               t.dispatched <- t.dispatched + 1;
               h.fn ();
               `Dispatched
           | candidates ->
               let n = List.length candidates in
               let i = choose ~now:key ~count:n in
               if i < 0 || i >= n then
                 invalid_arg
                   (Printf.sprintf
                      "Engine: chooser picked %d of %d candidates" i n);
               let _, h = List.nth candidates i in
               List.iteri
                 (fun j (seq, h') -> if j <> i then ev_add t ~key ~seq h')
                 candidates;
               t.clock <- key;
               t.dispatched <- t.dispatched + 1;
               h.fn ();
               `Dispatched))
      [@osiris.alloc_ok
        "schedule-explorer path: a chooser is installed only by \
         Osiris_check interleaving searches, never in production or \
         benchmark runs"])

let step t = step_live t <> `Empty

let stop t = t.stopping <- true

let run ?until ?max_events t =
  t.stopping <- false;
  let executed = ref 0 in
  let continue () =
    (not t.stopping)
    && (match max_events with None -> true | Some m -> !executed < m)
    &&
    match until with
    | None -> pending t > 0
    | Some u -> ev_next_key t <= u (* max_int when empty: never <= u *)
  in
  while continue () do
    match step_live t with
    | `Dispatched -> incr executed
    | `Skipped | `Empty -> ()
  done;
  (* When stopping because of [until], advance the clock to the horizon
     so repeated bounded runs observe monotonic time — including when
     the queue drained mid-run — but never past a still-pending event
     inside the horizon (the [max_events] budget can end the run with
     such events unfired, and firing them later must not move time
     backwards). *)
  match until with
  | Some u when (not t.stopping) && t.clock < u ->
      if ev_next_key t > u then t.clock <- u
  | _ -> ()
