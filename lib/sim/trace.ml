(* The simulator's trace facility is the observability layer's structured
   trace; re-exported here so existing call sites (Osiris_sim.Trace.emitf
   with a Time.t timestamp — Time.t is int nanoseconds, matching the
   event's t_ns) keep working unchanged. *)

include Osiris_obs.Trace
