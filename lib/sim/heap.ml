(* Slots at indices >= len are dead and must hold [Empty]: an array that
   kept popped entries alive (as the first cut of this heap did, both in
   the freshly-[Array.make]d tail and in the slot [pop_min] vacates)
   pins their values — for the engine, event closures and everything
   they capture — for the heap's whole lifetime. *)
type 'a slot = Empty | Entry of { key : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a slot array;
  mutable len : int;
  mutable last_key : int; (* (key, seq) of the entry [take] returned *)
  mutable last_seq : int;
}

let create () = { arr = [||]; len = 0; last_key = 0; last_seq = 0 }

let length h = h.len

let is_empty h = h.len = 0

let lt a b =
  match (a, b) with
  | Entry a, Entry b -> a.key < b.key || (a.key = b.key && a.seq < b.seq)
  | Empty, _ | _, Empty -> assert false (* live slots are never Empty *)

let grow h =
  let cap = Array.length h.arr in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let narr = Array.make ncap Empty in
  Array.blit h.arr 0 narr 0 h.len;
  h.arr <- narr

(* The sift loops live at top level: defined inside [add]/[take] they
   would capture [h] and allocate a closure per operation. *)
let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if lt h.arr.(i) h.arr.(p) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(p);
      h.arr.(p) <- tmp;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.len && lt h.arr.(l) h.arr.(i) then l else i in
  let m = if r < h.len && lt h.arr.(r) h.arr.(m) then r else m in
  if m <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(m);
    h.arr.(m) <- tmp;
    sift_down h m
  end

let add h ~key ~seq value =
  if h.len = Array.length h.arr then grow h;
  (h.arr.(h.len) <- Entry { key; seq; value }
  [@osiris.alloc_ok
    "the heap boxes one Entry per add by design; it is the \
     differential-testing backend, the wheel is the production queue"]);
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let take h =
  if h.len = 0 then raise Not_found
  else
    match h.arr.(0) with
    | Empty -> assert false
    | Entry min ->
        h.len <- h.len - 1;
        if h.len > 0 then begin
          h.arr.(0) <- h.arr.(h.len);
          h.arr.(h.len) <- Empty;
          sift_down h 0
        end
        else h.arr.(0) <- Empty;
        h.last_key <- min.key;
        h.last_seq <- min.seq;
        min.value

let last_key h = h.last_key
let last_seq h = h.last_seq

let pop_min h =
  match take h with
  | exception Not_found -> None
  | v -> Some (h.last_key, h.last_seq, v)

let next_key h =
  if h.len = 0 then max_int
  else match h.arr.(0) with Empty -> assert false | Entry e -> e.key

let peek_key h = if h.len = 0 then None else Some (next_key h)
