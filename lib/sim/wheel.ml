(* Hierarchical timer wheel: the engine's fast event queue.

   13 levels of 32 slots each (5 bits per level) cover the whole
   non-negative OCaml int key space. A node with key [k] lives at the
   highest level where [k]'s base-32 digit differs from the wheel's
   floor [cur] (the last key handed out by [pop_min]); level-0 slots
   therefore hold exactly one key each, and popping from them is O(1).
   When the minimum sits at a higher level, [pop_min] first cascades
   that one slot down ("settle"), advancing [cur] to the slot's base
   time — always <= the pending minimum, so the add floor never
   overtakes a legal key.

   Ordering contract (shared with {!Heap}): pops come out in
   nondecreasing [(key, seq)] order provided adds at any given key are
   made in increasing [seq] order — which the engine guarantees, since
   [seq] is its monotonically increasing schedule counter. Slot lists
   are FIFO, and the cascade preserves list order, so same-key entries
   keep their insertion (= seq) order without ever comparing seqs.

   Allocation discipline: nodes are recycled through a freelist and
   their values overwritten with [dummy] on pop, so a drained wheel
   retains no user data — the property the engine's live-words
   benchmark and weak-pointer tests check. *)

let bits = 5
let slots = 1 lsl bits
let slot_mask = slots - 1

(* ceil(63 / 5): enough digits for any non-negative int key. *)
let levels = 13

type 'a node = {
  mutable key : int;
  mutable seq : int;
  mutable value : 'a;
  mutable next : 'a node; (* slot or freelist link; [nil] terminates *)
}

type 'a t = {
  dummy : 'a;
  nil : 'a node;
  heads : 'a node array; (* [levels * slots] flattened: level*32 + slot *)
  tails : 'a node array;
  occ : int array; (* per-level bitmask of nonempty slots *)
  mutable cur : int; (* floor: adds below this key are rejected *)
  mutable len : int;
  mutable free : 'a node; (* recycled nodes, values cleared to [dummy] *)
  mutable min_valid : bool; (* cache for [next_key]/[peek_key] *)
  mutable min_key : int;
  mutable last_key : int; (* (key, seq) of the entry [take] returned *)
  mutable last_seq : int;
}

let create ~dummy =
  let rec nil = { key = max_int; seq = max_int; value = dummy; next = nil } in
  {
    dummy;
    nil;
    heads = Array.make (levels * slots) nil;
    tails = Array.make (levels * slots) nil;
    occ = Array.make levels 0;
    cur = 0;
    len = 0;
    free = nil;
    min_valid = false;
    min_key = 0;
    last_key = 0;
    last_seq = 0;
  }

let length t = t.len
let is_empty t = t.len = 0

(* Index of the lowest set bit of a nonzero 32-bit mask (De Bruijn). *)
let debruijn = 0x077CB531

let lsb_table =
  let tb = Array.make 32 0 in
  for i = 0 to 31 do
    tb.(((debruijn lsl i) lsr 27) land 31) <- i
  done;
  tb

let lsb_index m = lsb_table.((((m land -m) * debruijn) lsr 27) land 31)

(* Level of [key] relative to the floor: highest differing base-32
   digit; 0 when equal. Tail recursion instead of refs: [ref] allocates,
   and this runs once per add and once per cascaded node (R5-hot). *)
let rec level_loop x l = if x = 0 then l else level_loop (x lsr bits) (l + 1)
let level_for t key = level_loop ((key lxor t.cur) lsr bits) 0

let append t lvl slot node =
  let idx = (lvl lsl bits) lor slot in
  node.next <- t.nil;
  if t.heads.(idx) == t.nil then begin
    t.heads.(idx) <- node;
    t.occ.(lvl) <- t.occ.(lvl) lor (1 lsl slot)
  end
  else t.tails.(idx).next <- node;
  t.tails.(idx) <- node

let place t node =
  let lvl = level_for t node.key in
  append t lvl ((node.key lsr (bits * lvl)) land slot_mask) node

let add t ~key ~seq value =
  if key < t.cur then
    (invalid_arg
       (Printf.sprintf "Wheel.add: key %d below the pop floor %d" key t.cur)
    [@osiris.alloc_ok "cold error path: raises, never returns"]);
  let node =
    if t.free != t.nil then begin
      let n = t.free in
      t.free <- n.next;
      n.key <- key;
      n.seq <- seq;
      n.value <- value;
      n
    end
    else
      ({ key; seq; value; next = t.nil }
      [@osiris.alloc_ok
        "freelist warm-up: one node per steady-state queue depth, then \
         recycled forever"])
  in
  place t node;
  t.len <- t.len + 1;
  if t.len = 1 || (t.min_valid && key < t.min_key) then begin
    t.min_valid <- true;
    t.min_key <- key
  end

(* Lowest nonempty level; the global minimum always lives there (keys at
   a lower level agree with [cur] on strictly more high digits, so they
   compare smaller). Caller guarantees [len > 0]. *)
let rec min_level_from t l = if t.occ.(l) = 0 then min_level_from t (l + 1) else l
let min_level t = min_level_from t 0

let rec slot_min t n best =
  if n == t.nil then best
  else slot_min t n.next (if n.key < best then n.key else best)

let next_key t =
  if t.len = 0 then max_int
  else if t.min_valid then t.min_key
  else begin
    let lvl = min_level t in
    let slot = lsb_index t.occ.(lvl) in
    let k =
      if lvl = 0 then t.heads.(slot).key (* level-0 slots hold one key *)
      else slot_min t t.heads.((lvl lsl bits) lor slot) max_int
    in
    t.min_valid <- true;
    t.min_key <- k;
    k
  end

let peek_key t = if t.len = 0 then None else Some (next_key t)

(* Cascade the lowest nonempty slot down until the minimum reaches
   level 0; each pass strictly lowers the minimum's level. Returns the
   level-0 slot holding the minimum. *)
let rec settle t =
  let lvl = min_level t in
  let slot = lsb_index t.occ.(lvl) in
  if lvl = 0 then slot
  else begin
    let idx = (lvl lsl bits) lor slot in
    (* Advance the floor to the slot's base time: every key here is
       >= base, and base >= cur, so redistribution lands strictly
       below [lvl] and the add floor never passes a pending key. *)
    let shift = bits * lvl in
    let hi = shift + bits in
    let base =
      (if hi >= Sys.int_size then 0 else (t.cur lsr hi) lsl hi)
      lor (slot lsl shift)
    in
    if base > t.cur then t.cur <- base;
    let head = t.heads.(idx) in
    t.heads.(idx) <- t.nil;
    t.tails.(idx) <- t.nil;
    t.occ.(lvl) <- t.occ.(lvl) land lnot (1 lsl slot);
    replace_all t head;
    settle t
  end

and replace_all t n =
  if n != t.nil then begin
    let next = n.next in
    place t n;
    replace_all t next
  end

let take t =
  if t.len = 0 then raise Not_found
  else begin
    let slot = settle t in
    let node = t.heads.(slot) in
    t.heads.(slot) <- node.next;
    if node.next == t.nil then begin
      t.tails.(slot) <- t.nil;
      t.occ.(0) <- t.occ.(0) land lnot (1 lsl slot);
      t.min_valid <- false
    end
    else begin
      (* A level-0 slot holds exactly one key, so whatever remains in
         this slot is still the global minimum. *)
      t.min_valid <- true;
      t.min_key <- node.key
    end;
    t.len <- t.len - 1;
    let key = node.key and seq = node.seq and v = node.value in
    if key > t.cur then t.cur <- key;
    node.value <- t.dummy;
    node.next <- t.free;
    t.free <- node;
    t.last_key <- key;
    t.last_seq <- seq;
    v
  end

let last_key t = t.last_key
let last_seq t = t.last_seq

let pop_min t =
  match take t with
  | exception Not_found -> None
  | v -> Some (t.last_key, t.last_seq, v)

let floor t = t.cur
