(** Binary min-heap used as the engine's event queue.

    Entries are ordered by an integer key (the firing time) with a sequence
    number breaking ties, so that events scheduled for the same instant fire
    in scheduling order (deterministic FIFO semantics). *)

type 'a t

val create : unit -> 'a t
(** A fresh empty heap. *)

val length : 'a t -> int
(** Number of entries currently in the heap. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> seq:int -> 'a -> unit
(** [add h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val pop_min : 'a t -> (int * int * 'a) option
(** Remove and return the entry with the smallest [(key, seq)], or [None] if
    the heap is empty. Allocates the result triple; the engine's dispatch
    loop uses {!take} instead. *)

val take : 'a t -> 'a
(** Allocation-free {!pop_min}: removes the minimum entry and returns its
    value; its key and sequence number are readable from
    {!last_key}/{!last_seq} until the next [take]. Raises [Not_found] on
    an empty heap. *)

val last_key : 'a t -> int
(** Key of the entry the last {!take} returned. 0 before any take. *)

val last_seq : 'a t -> int
(** Sequence number of the entry the last {!take} returned. *)

val peek_key : 'a t -> int option
(** Key of the minimum entry, without removing it. *)

val next_key : 'a t -> int
(** Allocation-free {!peek_key}: the minimum key, or [max_int] when the
    heap is empty. *)
