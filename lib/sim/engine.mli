(** Discrete-event simulation engine.

    An engine owns a virtual clock and an event queue. Callbacks are
    scheduled at absolute or relative simulated times and executed in
    timestamp order; callbacks scheduled for the same instant run in the
    order they were scheduled. The engine is strictly single-threaded and,
    given the same inputs, fully deterministic.

    Same-instant ordering is pluggable: a {!chooser} installed with
    {!set_chooser} is consulted whenever two or more live callbacks are
    runnable at the same instant, turning each such tie into an explicit,
    recordable choice point (the hook {!Osiris_check} schedule exploration
    is built on). Without a chooser the engine keeps its historical FIFO
    tie-break, bit-for-bit.

    The queue behind the engine is pluggable too ({!backend}): the
    default hierarchical timer wheel and the original binary heap
    implement the identical [(time, seq)] dispatch order — the test
    suite proves it event for event — so the choice affects wall-clock
    speed only, never simulation outcomes. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled or, once it has
    fired, rescheduled. *)

type backend =
  | Timer_wheel
      (** Hierarchical timer wheel (default): O(1) for imminent events,
          no per-event allocation in steady state. *)
  | Binary_heap
      (** The original array heap: O(log n) per operation. Kept for
          differential testing against the wheel. *)

val create : ?backend:backend -> unit -> t
(** A fresh engine with the clock at {!Time.zero}. [backend] (default
    [Timer_wheel]) selects the event-queue implementation; dispatch
    order is identical across backends. *)

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] arranges for [f ()] to run at [now t + delay].
    [delay] must be non-negative. *)

val schedule_at : t -> time:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~time f] arranges for [f ()] to run at absolute time
    [time], which must not be in the past. *)

val reschedule : t -> delay:Time.t -> handle -> unit
(** [reschedule t ~delay h] re-arms a handle whose event has already
    fired (or been cancelled), reusing the handle and its callback
    instead of allocating fresh ones — the cheap way to run a periodic
    timer. Consumes a sequence number exactly as {!schedule} does, so
    dispatch order is indistinguishable from a fresh [schedule] of the
    same closure. Raises [Invalid_argument] if [h] is still queued. *)

val reschedule_at : t -> time:Time.t -> handle -> unit
(** {!reschedule} at an absolute time. *)

val cancel : handle -> unit
(** Cancel a pending event. Cancelling an event that has already fired is a
    no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    drained). *)

val events_dispatched : t -> int
(** Total live (non-cancelled) callbacks executed over the engine's
    lifetime — the event count the speed benchmarks report. *)

val step : t -> bool
(** Execute the single next event. Returns [false] when the queue is
    empty. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Run events in order until the queue drains, the clock passes [until],
    or [max_events] {e live} callbacks have executed — popping a
    cancelled handle does not consume budget. Events scheduled exactly
    at [until] still run. On return from a bounded run the clock is at
    [until] unless events at or before [until] remain unfired (a
    [max_events] budget can leave some), in which case it stays at the
    last dispatch so time never runs backwards. *)

exception Stopped

val stop : t -> unit
(** Request that {!run} return after the current callback completes. *)

type chooser = now:Time.t -> count:int -> int
(** [choose ~now ~count] picks which of the [count >= 2] live callbacks
    runnable at instant [now] fires next, by index in scheduling (seq)
    order — index 0 reproduces the FIFO default. Must return a value in
    [\[0, count)]. *)

val set_chooser : t -> chooser option -> unit
(** Install (or, with [None], remove) the same-instant tie-breaker. The
    chooser is only consulted for instants with at least two live
    callbacks; cancelled events are never offered as candidates. *)
