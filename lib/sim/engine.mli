(** Discrete-event simulation engine.

    An engine owns a virtual clock and an event queue. Callbacks are
    scheduled at absolute or relative simulated times and executed in
    timestamp order; callbacks scheduled for the same instant run in the
    order they were scheduled. The engine is strictly single-threaded and,
    given the same inputs, fully deterministic.

    Same-instant ordering is pluggable: a {!chooser} installed with
    {!set_chooser} is consulted whenever two or more live callbacks are
    runnable at the same instant, turning each such tie into an explicit,
    recordable choice point (the hook {!Osiris_check} schedule exploration
    is built on). Without a chooser the engine keeps its historical FIFO
    tie-break, bit-for-bit. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t
(** A fresh engine with the clock at {!Time.zero}. *)

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] arranges for [f ()] to run at [now t + delay].
    [delay] must be non-negative. *)

val schedule_at : t -> time:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~time f] arranges for [f ()] to run at absolute time
    [time], which must not be in the past. *)

val cancel : handle -> unit
(** Cancel a pending event. Cancelling an event that has already fired is a
    no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    drained). *)

val step : t -> bool
(** Execute the single next event. Returns [false] when the queue is
    empty. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Run events in order until the queue drains, the clock passes [until], or
    [max_events] callbacks have executed. Events scheduled exactly at
    [until] still run. *)

exception Stopped

val stop : t -> unit
(** Request that {!run} return after the current callback completes. *)

type chooser = now:Time.t -> count:int -> int
(** [choose ~now ~count] picks which of the [count >= 2] live callbacks
    runnable at instant [now] fires next, by index in scheduling (seq)
    order — index 0 reproduces the FIFO default. Must return a value in
    [\[0, count)]. *)

val set_chooser : t -> chooser option -> unit
(** Install (or, with [None], remove) the same-instant tie-breaker. The
    chooser is only consulted for instants with at least two live
    callbacks; cancelled events are never offered as candidates. *)
