(** Event tracing for the simulation — the observability layer's
    structured trace ({!Osiris_obs.Trace}), re-exported under the name
    simulation code has always used. Timestamps are [Time.t] (= integer
    nanoseconds), supplied by the emitting site. *)

include module type of struct
  include Osiris_obs.Trace
end
