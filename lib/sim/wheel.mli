(** Hierarchical timer wheel: the engine's default event queue.

    Same ordering contract as {!Heap} — entries come out in nondecreasing
    [(key, seq)] order — under two conditions the engine guarantees:
    keys are non-negative and never below the {!floor} (the last popped
    key), and same-key adds arrive in increasing [seq] order. 13 levels
    of 32 slots cover the whole int key space; popping an imminent event
    is O(1) and a far-future event is cascaded down at most 12 times
    over its whole lifetime, against O(log n) comparisons per heap
    operation. Popped nodes are recycled through a freelist with their
    values cleared, so a drained wheel retains no user data. *)

type 'a t

val create : dummy:'a -> 'a t
(** A fresh empty wheel with the floor at 0. [dummy] is written over a
    node's value when it is popped, so recycled nodes never pin user
    data; it is never returned. *)

val length : 'a t -> int
(** Number of entries currently queued. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> seq:int -> 'a -> unit
(** [add t ~key ~seq v] inserts [v] with priority [(key, seq)]. Raises
    [Invalid_argument] if [key] is below {!floor} — the wheel, unlike
    the heap, cannot travel back in time. *)

val pop_min : 'a t -> (int * int * 'a) option
(** Remove and return the entry with the smallest [(key, seq)], or
    [None] if the wheel is empty. Advances {!floor} to the popped key.
    Allocates the result triple; the engine's dispatch loop uses
    {!take} instead. *)

val take : 'a t -> 'a
(** Allocation-free {!pop_min}: removes the minimum entry and returns
    its value; its key and sequence number are readable from
    {!last_key}/{!last_seq} until the next [take]. Raises [Not_found]
    on an empty wheel. *)

val last_key : 'a t -> int
(** Key of the entry the last {!take} returned. 0 before any take. *)

val last_seq : 'a t -> int
(** Sequence number of the entry the last {!take} returned. *)

val peek_key : 'a t -> int option
(** Key of the minimum entry, without removing it or moving {!floor}. *)

val next_key : 'a t -> int
(** Allocation-free {!peek_key}: the minimum key, or [max_int] when the
    wheel is empty (keys are non-negative and [max_int] is rejected by
    the engine's clock arithmetic long before it could be scheduled). *)

val floor : 'a t -> int
(** Smallest key currently accepted by {!add}: the largest key ever
    popped (or a cascade boundary at most that large). 0 when nothing
    has been popped. *)
