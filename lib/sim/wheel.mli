(** Hierarchical timer wheel: the engine's default event queue.

    Same ordering contract as {!Heap} — entries come out in nondecreasing
    [(key, seq)] order — under two conditions the engine guarantees:
    keys are non-negative and never below the {!floor} (the last popped
    key), and same-key adds arrive in increasing [seq] order. 13 levels
    of 32 slots cover the whole int key space; popping an imminent event
    is O(1) and a far-future event is cascaded down at most 12 times
    over its whole lifetime, against O(log n) comparisons per heap
    operation. Popped nodes are recycled through a freelist with their
    values cleared, so a drained wheel retains no user data. *)

type 'a t

val create : dummy:'a -> 'a t
(** A fresh empty wheel with the floor at 0. [dummy] is written over a
    node's value when it is popped, so recycled nodes never pin user
    data; it is never returned. *)

val length : 'a t -> int
(** Number of entries currently queued. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> seq:int -> 'a -> unit
(** [add t ~key ~seq v] inserts [v] with priority [(key, seq)]. Raises
    [Invalid_argument] if [key] is below {!floor} — the wheel, unlike
    the heap, cannot travel back in time. *)

val pop_min : 'a t -> (int * int * 'a) option
(** Remove and return the entry with the smallest [(key, seq)], or
    [None] if the wheel is empty. Advances {!floor} to the popped key. *)

val peek_key : 'a t -> int option
(** Key of the minimum entry, without removing it or moving {!floor}. *)

val floor : 'a t -> int
(** Smallest key currently accepted by {!add}: the largest key ever
    popped (or a cascade boundary at most that large). 0 when nothing
    has been popped. *)
