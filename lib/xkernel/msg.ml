module Vspace = Osiris_mem.Vspace
module Pbuf = Osiris_mem.Pbuf

type seg = { vaddr : int; len : int }

type t = {
  vs : Vspace.t;
  mutable hdr_base : int; (* vaddr of the header page; -1 when absent *)
  mutable hdr_off : int; (* first used byte within the header page *)
  mutable data : seg list;
  mutable owned : int list; (* region base vaddrs to free on dispose *)
  mutable finalizers : (unit -> unit) list;
  mutable disposed : bool;
  mutable congestion_marked : bool;
      (* out-of-band congestion signal: set by the driver when any cell
         of the delivered PDU carried the switch's mark bit *)
}

let vspace t = t.vs

let of_segs vs segs =
  List.iter
    (fun s -> if s.len < 0 || s.vaddr < 0 then invalid_arg "Msg.of_segs")
    segs;
  let data = List.filter (fun s -> s.len > 0) segs in
  { vs; hdr_base = -1; hdr_off = 0; data; owned = []; finalizers = [];
    disposed = false; congestion_marked = false }

let create vs ~vaddr ~len = of_segs vs [ { vaddr; len } ]

let write_region vs ~vaddr b =
  let len = Bytes.length b in
  let rec go off remaining =
    if remaining > 0 then begin
      let ps = Vspace.page_size vs in
      let va = vaddr + off in
      let in_page = ps - (va mod ps) in
      let chunk = min remaining in_page in
      Osiris_mem.Phys_mem.blit_from_bytes (Vspace.mem vs) ~src:b ~src_off:off
        ~dst:(Vspace.translate vs va) ~len:chunk;
      go (off + chunk) (remaining - chunk)
    end
  in
  go 0 len

let read_region vs ~vaddr ~len =
  let out = Bytes.create len in
  let rec go off remaining =
    if remaining > 0 then begin
      let ps = Vspace.page_size vs in
      let va = vaddr + off in
      let in_page = ps - (va mod ps) in
      let chunk = min remaining in_page in
      Osiris_mem.Phys_mem.blit_to_bytes (Vspace.mem vs)
        ~src:(Vspace.translate vs va) ~dst:out ~dst_off:off ~len:chunk;
      go (off + chunk) (remaining - chunk)
    end
  in
  go 0 len;
  out

let alloc vs ~len ?(page_offset = 0) ?fill () =
  let vaddr = Vspace.alloc_offset vs ~len ~offset:page_offset in
  (match fill with
  | None -> ()
  | Some f -> write_region vs ~vaddr (Bytes.init len f));
  {
    vs;
    hdr_base = -1;
    hdr_off = 0;
    data = [ { vaddr; len } ];
    owned = [ vaddr ];
    finalizers = [];
    disposed = false;
    congestion_marked = false;
  }

let segs t =
  if t.hdr_base >= 0 && t.hdr_off < Vspace.page_size t.vs then
    { vaddr = t.hdr_base + t.hdr_off;
      len = Vspace.page_size t.vs - t.hdr_off }
    :: t.data
  else t.data

let length t = List.fold_left (fun acc s -> acc + s.len) 0 (segs t)

let push t ~len writer =
  if len <= 0 then invalid_arg "Msg.push: non-positive header length";
  if t.hdr_base < 0 then begin
    let ps = Vspace.page_size t.vs in
    let base = Vspace.alloc t.vs ~len:ps in
    t.hdr_base <- base;
    t.hdr_off <- ps;
    t.owned <- base :: t.owned
  end;
  if t.hdr_off - len < 0 then failwith "Msg.push: header area overflow";
  let b = Bytes.make len '\000' in
  writer b;
  t.hdr_off <- t.hdr_off - len;
  write_region t.vs ~vaddr:(t.hdr_base + t.hdr_off) b

let peek t ~off ~len =
  let out = Bytes.create len in
  let rec go segs off out_off remaining =
    if remaining > 0 then
      match segs with
      | [] -> invalid_arg "Msg.peek: beyond message end"
      | s :: rest ->
          if off >= s.len then go rest (off - s.len) out_off remaining
          else begin
            let chunk = min remaining (s.len - off) in
            let piece = read_region t.vs ~vaddr:(s.vaddr + off) ~len:chunk in
            Bytes.blit piece 0 out out_off chunk;
            go (s :: rest) (off + chunk) (out_off + chunk) (remaining - chunk)
          end
  in
  go (segs t) off 0 len;
  out

let pop t ~len =
  let b = peek t ~off:0 ~len in
  (* Strip from the header area first, then from data segments. *)
  let remaining = ref len in
  if t.hdr_base >= 0 then begin
    let ps = Vspace.page_size t.vs in
    let avail = ps - t.hdr_off in
    let strip = min avail !remaining in
    t.hdr_off <- t.hdr_off + strip;
    remaining := !remaining - strip
  end;
  let rec strip_data segs n =
    if n = 0 then segs
    else
      match segs with
      | [] -> invalid_arg "Msg.pop: beyond message end"
      | s :: rest ->
          if n >= s.len then strip_data rest (n - s.len)
          else { vaddr = s.vaddr + n; len = s.len - n } :: rest
  in
  t.data <- strip_data t.data !remaining;
  b

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > length t then
    invalid_arg "Msg.sub: range out of bounds";
  let rec take segs off len acc =
    if len = 0 then List.rev acc
    else
      match segs with
      | [] -> List.rev acc
      | s :: rest ->
          if off >= s.len then take rest (off - s.len) len acc
          else begin
            let chunk = min len (s.len - off) in
            take rest 0 (len - chunk)
              ({ vaddr = s.vaddr + off; len = chunk } :: acc)
          end
  in
  { vs = t.vs; hdr_base = -1; hdr_off = 0;
    data = take (segs t) off len []; owned = []; finalizers = [];
    disposed = false; congestion_marked = t.congestion_marked }

let pbufs t =
  Pbuf.coalesce
    (List.concat_map
       (fun s -> Vspace.phys_buffers t.vs ~vaddr:s.vaddr ~len:s.len)
       (segs t))

let read_all t = peek t ~off:0 ~len:(length t)

let blit_into t ~off ~src =
  let len = Bytes.length src in
  if off < 0 || off + len > length t then
    invalid_arg "Msg.blit_into: range out of bounds";
  let rec go segs off src_off remaining =
    if remaining > 0 then
      match segs with
      | [] -> ()
      | s :: rest ->
          if off >= s.len then go rest (off - s.len) src_off remaining
          else begin
            let chunk = min remaining (s.len - off) in
            write_region t.vs ~vaddr:(s.vaddr + off)
              (Bytes.sub src src_off chunk);
            go (s :: rest) (off + chunk) (src_off + chunk) (remaining - chunk)
          end
  in
  go (segs t) off 0 len

let add_finalizer t f = t.finalizers <- f :: t.finalizers

let set_marked t = t.congestion_marked <- true

let marked t = t.congestion_marked

let dispose t =
  if not t.disposed then begin
    t.disposed <- true;
    List.iter (fun base -> Vspace.free t.vs base) t.owned;
    t.owned <- [];
    t.data <- [];
    t.hdr_base <- -1;
    let fs = t.finalizers in
    t.finalizers <- [];
    List.iter (fun f -> f ()) fs
  end
