(** The x-kernel message tool.

    A message is a chain of byte ranges in some domain's virtual address
    space: an optional {e header area} plus a list of data segments. Headers
    are pushed into the header area back-to-front, so however many protocol
    layers prepend headers, the header portion stays one virtually (and
    physically) contiguous buffer — the paper's Figure 1, where a PDU is
    "header buffer + data pages".

    Messages never copy payload data: fragmentation ({!sub}) and header
    manipulation only adjust the segment descriptors. The physical shape of
    a message — the list of physical buffers a driver must hand to the
    adaptor — comes from {!pbufs} and exhibits exactly the §2.2
    fragmentation behaviour, because the backing pages are generally not
    physically contiguous.

    Reads and writes through this module move real simulated-memory bytes
    but are not charged simulated time; protocol layers charge their own
    CPU/cache costs explicitly. *)

type seg = { vaddr : int; len : int }

type t

val vspace : t -> Osiris_mem.Vspace.t

val of_segs : Osiris_mem.Vspace.t -> seg list -> t
(** A message viewing existing mapped ranges (e.g. driver receive
    buffers). *)

val create : Osiris_mem.Vspace.t -> vaddr:int -> len:int -> t
(** Single-segment view. *)

val alloc : Osiris_mem.Vspace.t -> len:int -> ?page_offset:int -> ?fill:(int -> char) -> unit -> t
(** Allocate a fresh [len]-byte payload in the address space (starting
    [page_offset] bytes into its first page, default 0) and optionally fill
    it. The allocation is owned by the message and released by
    {!dispose}. *)

val length : t -> int
(** Total bytes, headers included. *)

val push : t -> len:int -> (Bytes.t -> unit) -> unit
(** Prepend a [len]-byte header: the writer callback fills a scratch buffer
    that is then stored in front of the current contents. The header area
    (one page, allocated on first push) grows downward. Raises [Failure] if
    the header area overflows. *)

val pop : t -> len:int -> Bytes.t
(** Read and strip the first [len] bytes (a received header). *)

val peek : t -> off:int -> len:int -> Bytes.t
(** Read without stripping. *)

val sub : t -> off:int -> len:int -> t
(** A zero-copy view of a byte range of the message (headers included in
    the offset space) — the fragmentation primitive. The view shares the
    parent's memory and owns no allocations. *)

val pbufs : t -> Osiris_mem.Pbuf.t list
(** Physical buffers covering the message in order: what the driver hands
    to the adaptor. *)

val segs : t -> seg list
(** Current virtual segments, header area first. *)

val read_all : t -> Bytes.t
(** Copy of the whole contents (for checks and tests). *)

val blit_into : t -> off:int -> src:Bytes.t -> unit
(** Overwrite part of the message contents in place. *)

val set_marked : t -> unit
(** Latch the out-of-band congestion flag: the driver calls this when any
    cell of the delivered PDU carried the switch's congestion-mark bit
    (ECN-like threshold marking). Out-of-band so every existing
    {!Osiris_xkernel.Demux} handler keeps its signature; transports that
    care read it with {!marked}. *)

val marked : t -> bool
(** Did this message's PDU cross a congested switch queue? [sub] views
    inherit the parent's flag. *)

val add_finalizer : t -> (unit -> unit) -> unit
(** Run the callback when the message is disposed. This is how driver
    receive buffers are recycled once the protocol stack and application
    are done with a zero-copy delivery chain. *)

val dispose : t -> unit
(** Free every region this message allocated (header area, {!alloc}
    payload) and run finalizers. Views created by {!sub} must not be used
    afterwards. Idempotent. *)
