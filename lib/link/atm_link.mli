(** The striped physical link (paper §2.6).

    OSIRIS reaches 622 Mb/s by striping cells round-robin over four 155.52
    Mb/s channels. Each channel delivers its own cells in FIFO order, but
    the channels are mutually skewed by fixed path/multiplexing differences
    and by per-cell queueing jitter — the paper's "skew" class of
    misordering: cell [k] goes to link [k mod n]; relative order is
    preserved within a link and arbitrary (within the configured bound)
    across links.

    A link object is unidirectional. Sending blocks the calling process for
    serialization backpressure (each channel transmits one 53-byte cell at a
    time, with a small on-board output FIFO of bookable slots); delivery
    pushes cells into the receiving adaptor's input FIFO, dropping (and
    counting) cells when that FIFO overflows.

    Beyond the static error knobs in {!config}, every fault dimension is
    adjustable at runtime (see [Osiris_fault.Injector]): loss, payload and
    header corruption, duplication, per-channel carrier loss (the stripe
    narrows to the surviving channels) and a receive-FIFO squeeze. All
    runtime knobs default to the config values, and the random draw
    sequence is unchanged while the extra fault features stay disabled —
    seeded runs from before this layer existed replay identically. *)

type config = {
  nlinks : int;  (** stripe width; 1 disables striping *)
  link_rate_bps : int;  (** line rate of each channel (155.52 Mb/s) *)
  propagation_delay : Osiris_sim.Time.t;
  skew : Osiris_sim.Time.t array;
      (** fixed extra delay per channel (length [nlinks]); models path-length
          and multiplexing-equipment differences *)
  jitter_mean : Osiris_sim.Time.t;
      (** mean of exponential per-cell queueing jitter (switch ports); 0
          disables *)
  corrupt_prob : float;  (** per-cell probability of a flipped data byte *)
  drop_prob : float;  (** per-cell probability of loss in the network *)
  dup_prob : float;  (** per-cell probability of duplicate delivery *)
  corrupt_header_prob : float;
      (** per-cell probability of a flipped header field (VCI or AAL seq) —
          misdelivery rather than payload damage *)
  tx_fifo_cells : int;  (** bookable output slots per channel *)
  rx_fifo_cells : int;  (** receiving adaptor's input FIFO capacity *)
}

val default_config : config
(** 4 × 155.52 Mb/s, 10 µs propagation, no skew, no jitter, no errors,
    2-cell output FIFOs, 32-cell input FIFO. *)

val oc12_aggregate : config -> float
(** Aggregate user-data bandwidth in Mb/s: nlinks × rate × 44/53 — the
    paper's "516 Mb/s data bandwidth in a 622 Mb/s link". *)

type t

val create : Osiris_sim.Engine.t -> Osiris_util.Rng.t -> config -> t

val config : t -> config

val send : t -> Osiris_atm.Cell.t -> unit
(** Transmit the next cell (striped round-robin over the live channels).
    Blocks the calling process when the target channel's output FIFO is
    fully booked. With every channel down the cell is counted as
    [dropped_link_down] and vanishes. *)

val recv : t -> int * Osiris_atm.Cell.t
(** Next arrived cell with the channel it arrived on, in arrival order.
    Blocks when none is pending. *)

val try_recv : t -> (int * Osiris_atm.Cell.t) option

val pending : t -> int
(** Cells currently waiting in the receive FIFO. *)

(** {2 Runtime fault injection}

    Setters for the probabilistic knobs take effect for the next cell
    sent; they are safe to call from engine callbacks. *)

val set_drop_prob : t -> float -> unit
val set_corrupt_prob : t -> float -> unit
val set_dup_prob : t -> float -> unit
val set_corrupt_header_prob : t -> float -> unit

val set_link_state : t -> link:int -> bool -> unit
(** Raise or cut one channel's carrier. Cells in flight on a cut channel
    are dropped on arrival ([dropped_link_down]); newly sent cells
    re-stripe over the surviving channels in ascending order. Registered
    {!on_link_change} callbacks run synchronously on every transition. *)

val link_is_up : t -> int -> bool

val nlive : t -> int
(** Channels currently carrying traffic (= [nlinks] when healthy). *)

val live_links : t -> int list
(** Physical indices of the live channels, ascending. *)

val on_link_change : t -> (unit -> unit) -> unit
(** Subscribe to carrier transitions (both directions). Callbacks must not
    suspend; spawn a process for work that does. *)

val set_rx_fifo_limit : t -> int -> unit
(** Squeeze (or restore) the receive FIFO's effective capacity; clamped to
    [1, rx_fifo_cells]. Arrivals beyond the limit count as
    [dropped_fifo]. *)

val rx_fifo_limit : t -> int

val set_cell_filter : t -> (int -> Osiris_atm.Cell.t -> bool) option -> unit
(** Deterministic per-cell drop hook for targeted fault injection: called
    at delivery with the channel and cell; returning [false] discards the
    cell (counted as [dropped_net]). [None] removes the hook. *)

type stats = {
  mutable cells_sent : int;
  mutable cells_delivered : int;
  mutable dropped_fifo : int;  (** lost to receive-FIFO overflow/squeeze *)
  mutable dropped_net : int;  (** lost in the network (drop_prob/filter) *)
  mutable corrupted : int;
  mutable reordered : int;
      (** deliveries that overtook a cell sent earlier on another channel *)
  mutable duplicated : int;  (** duplicate deliveries injected *)
  mutable header_corrupted : int;  (** VCI/seq mangles injected *)
  mutable dropped_link_down : int;  (** lost to a dead channel *)
}

val stats : t -> stats

val offered : t -> int
(** [cells_sent + duplicated]: the total the conservation parts must sum
    to once the trunk has drained. *)

val conservation : t -> (string * int) list
(** Disposition buckets for every offered cell — delivered, fifo drop,
    network drop, dead-link drop. Feed to [Invariants.balance] with
    [offered] as the total at quiescence. Corruption/reordering/header
    mangles tag cells without changing their disposition and so are
    deliberately absent. *)
