open Osiris_sim
module Cell = Osiris_atm.Cell
module Rng = Osiris_util.Rng
module Metrics = Osiris_obs.Metrics
module Trace = Osiris_sim.Trace

type config = {
  nlinks : int;
  link_rate_bps : int;
  propagation_delay : Time.t;
  skew : Time.t array;
  jitter_mean : Time.t;
  corrupt_prob : float;
  drop_prob : float;
  dup_prob : float;
  corrupt_header_prob : float;
  tx_fifo_cells : int;
  rx_fifo_cells : int;
}

let default_config =
  {
    nlinks = 4;
    link_rate_bps = 155_520_000;
    propagation_delay = Time.us 1;
    skew = [| 0; 0; 0; 0 |];
    jitter_mean = 0;
    corrupt_prob = 0.0;
    drop_prob = 0.0;
    dup_prob = 0.0;
    corrupt_header_prob = 0.0;
    tx_fifo_cells = 2;
    rx_fifo_cells = 32;
  }

let oc12_aggregate cfg =
  float_of_int (cfg.nlinks * cfg.link_rate_bps)
  /. 1e6
  *. float_of_int Cell.data_size
  /. float_of_int Cell.wire_size

type stats = {
  mutable cells_sent : int;
  mutable cells_delivered : int;
  mutable dropped_fifo : int;
  mutable dropped_net : int;
  mutable corrupted : int;
  mutable reordered : int;
  mutable duplicated : int;
  mutable header_corrupted : int;
  mutable dropped_link_down : int;
}

(* Registry handles behind [stats]; [stats t] snapshots them. *)
type m = {
  m_sent : Metrics.counter;
  m_delivered : Metrics.counter;
  m_dropped_fifo : Metrics.counter;
  m_dropped_net : Metrics.counter;
  m_corrupted : Metrics.counter;
  m_reordered : Metrics.counter;
  m_duplicated : Metrics.counter;
  m_header_corrupted : Metrics.counter;
  m_dropped_link_down : Metrics.counter;
  m_link_transitions : Metrics.counter;
}

type t = {
  eng : Engine.t;
  rng : Rng.t;
  cfg : config;
  cell_time : Time.t;
  mutable send_seq : int;
  mutable max_delivered_seq : int;
  busy_until : Time.t array; (* per-channel serializer booking *)
  last_delivery : Time.t array; (* per-channel FIFO enforcement *)
  inbox : (int * Cell.t) Mailbox.t;
  (* Fault-injection state, adjustable at runtime (Osiris_fault.Injector).
     Initialized from [cfg]; when every knob matches the config the RNG
     draw sequence is identical to a build without fault support. *)
  mutable drop_prob : float;
  mutable corrupt_prob : float;
  mutable dup_prob : float;
  mutable corrupt_header_prob : float;
  link_up : bool array; (* per-channel carrier state *)
  mutable live : int array; (* channels with carrier, ascending *)
  mutable rx_limit : int; (* rx FIFO squeeze (<= rx_fifo_cells) *)
  mutable cell_filter : (int -> Cell.t -> bool) option;
  mutable on_change : (unit -> unit) list;
  m : m;
}

let create eng rng cfg =
  if cfg.nlinks < 1 then invalid_arg "Atm_link.create: nlinks must be >= 1";
  if Array.length cfg.skew <> cfg.nlinks then
    invalid_arg "Atm_link.create: skew array must have nlinks entries";
  if cfg.tx_fifo_cells < 1 || cfg.rx_fifo_cells < 1 then
    invalid_arg "Atm_link.create: FIFOs need at least one slot";
  let cell_time =
    Cell.wire_size * 8 * 1_000_000_000 / cfg.link_rate_bps
  in
  {
    eng;
    rng;
    cfg;
    cell_time;
    send_seq = 0;
    max_delivered_seq = -1;
    busy_until = Array.make cfg.nlinks 0;
    last_delivery = Array.make cfg.nlinks 0;
    inbox = Mailbox.create eng ~capacity:cfg.rx_fifo_cells ();
    drop_prob = cfg.drop_prob;
    corrupt_prob = cfg.corrupt_prob;
    dup_prob = cfg.dup_prob;
    corrupt_header_prob = cfg.corrupt_header_prob;
    link_up = Array.make cfg.nlinks true;
    live = Array.init cfg.nlinks (fun i -> i);
    rx_limit = cfg.rx_fifo_cells;
    cell_filter = None;
    on_change = [];
    m =
      {
        m_sent = Metrics.counter "link.cells_sent";
        m_delivered = Metrics.counter "link.cells_delivered";
        m_dropped_fifo = Metrics.counter "link.dropped_fifo";
        m_dropped_net = Metrics.counter "link.dropped_net";
        m_corrupted = Metrics.counter "link.corrupted";
        m_reordered = Metrics.counter "link.reordered";
        m_duplicated = Metrics.counter "link.duplicated";
        m_header_corrupted = Metrics.counter "link.header_corrupted";
        m_dropped_link_down = Metrics.counter "link.dropped_link_down";
        m_link_transitions = Metrics.counter "link.link_transitions";
      };
  }

let config t = t.cfg

(* ---------------------------------------------------------------- *)
(* Runtime fault knobs.                                             *)

let set_drop_prob t p = t.drop_prob <- p
let set_corrupt_prob t p = t.corrupt_prob <- p
let set_dup_prob t p = t.dup_prob <- p
let set_corrupt_header_prob t p = t.corrupt_header_prob <- p

let set_rx_fifo_limit t n =
  t.rx_limit <- max 1 (min n t.cfg.rx_fifo_cells)

let rx_fifo_limit t = t.rx_limit
let set_cell_filter t f = t.cell_filter <- f
let on_link_change t f = t.on_change <- f :: t.on_change
let link_is_up t link = t.link_up.(link)
let nlive t = Array.length t.live
let live_links t = Array.to_list t.live

let set_link_state t ~link up =
  if link < 0 || link >= t.cfg.nlinks then
    invalid_arg "Atm_link.set_link_state: link out of range";
  if t.link_up.(link) <> up then begin
    t.link_up.(link) <- up;
    t.live <-
      Array.of_list
        (List.filter
           (fun i -> t.link_up.(i))
           (List.init t.cfg.nlinks (fun i -> i)));
    Metrics.incr t.m.m_link_transitions;
    Trace.emitf Trace.Fault ~now:(Engine.now t.eng) "link %d %s (%d/%d live)"
      link
      (if up then "up" else "down")
      (Array.length t.live) t.cfg.nlinks;
    List.iter (fun f -> f ()) t.on_change
  end

let deliver t link seq ~dup cell =
  if not t.link_up.(link) then begin
    (* Carrier dropped while the cell was in flight. *)
    Metrics.incr t.m.m_dropped_link_down;
    Trace.emitf Trace.Fault ~now:(Engine.now t.eng)
      "cell lost to dead link %d trunk_seq=%d" link seq
  end
  else
    match t.cell_filter with
    | Some f when not (f link cell) ->
        Metrics.incr t.m.m_dropped_net;
        Trace.emitf Trace.Fault ~now:(Engine.now t.eng)
          "cell filtered on link %d trunk_seq=%d" link seq
    | _ ->
        if dup then Metrics.incr t.m.m_duplicated
        else if seq > t.max_delivered_seq then t.max_delivered_seq <- seq
        else begin
          Metrics.incr t.m.m_reordered;
          Trace.emitf Trace.Link ~now:(Engine.now t.eng)
            "reordered arrival link=%d trunk_seq=%d" link seq
        end;
        if
          Mailbox.length t.inbox < t.rx_limit
          && Mailbox.try_send t.inbox (link, cell)
        then Metrics.incr t.m.m_delivered
        else begin
          Metrics.incr t.m.m_dropped_fifo;
          Trace.emitf Trace.Link ~now:(Engine.now t.eng)
            "rx fifo overflow link=%d trunk_seq=%d" link seq
        end

let send t cell =
  (* Cell k of a PDU travels on link k mod n (paper 2.6): the link choice
     is a deterministic function of the cell's AAL sequence number, so the
     receiver's per-link reassembly can reconstruct each cell's position
     from (link, per-link arrival index) alone, even when PDUs of several
     VCs are interleaved on the striped trunk. Under link failure the
     stripe narrows to the surviving channels (in ascending order), and
     the sender's segmentation is expected to use [nlive] for the stripe
     width so both ends agree. *)
  let nlive = Array.length t.live in
  let seq = t.send_seq in
  t.send_seq <- seq + 1;
  Metrics.incr t.m.m_sent;
  if nlive = 0 then begin
    Metrics.incr t.m.m_dropped_link_down;
    Trace.emitf Trace.Fault ~now:(Engine.now t.eng)
      "cell lost: all links down trunk_seq=%d" seq
  end
  else begin
    let l = t.live.(cell.Cell.seq mod nlive) in
    Trace.emitf Trace.Link ~now:(Engine.now t.eng)
      "cell vci=%d seq=%d -> link %d" cell.Cell.vci cell.Cell.seq l;
    (* Backpressure: the channel's output FIFO lets us book at most
       [tx_fifo_cells] cell-times ahead of the present. *)
    let horizon () = Engine.now t.eng + (t.cfg.tx_fifo_cells * t.cell_time) in
    if t.busy_until.(l) > horizon () then
      Process.sleep t.eng (t.busy_until.(l) - horizon ());
    let now = Engine.now t.eng in
    let start = max now t.busy_until.(l) in
    let finish = start + t.cell_time in
    t.busy_until.(l) <- finish;
    if Rng.float t.rng 1.0 < t.drop_prob then begin
      Metrics.incr t.m.m_dropped_net;
      Trace.emitf Trace.Link ~now:(Engine.now t.eng)
        "cell lost on link %d trunk_seq=%d" l seq
    end
    else begin
      let cell =
        if Rng.float t.rng 1.0 < t.corrupt_prob then begin
          Metrics.incr t.m.m_corrupted;
          Cell.corrupt cell ~byte:(Rng.int t.rng Cell.data_size)
        end
        else cell
      in
      (* Header corruption mangles the VCI (misdelivery to another VC) or
         the AAL sequence number (mis-striping) rather than the payload;
         both escapes are caught downstream — unknown-VC drop or CRC.
         Guarded so the draw sequence is unchanged when disabled. *)
      let cell =
        if
          t.corrupt_header_prob > 0.0
          && Rng.float t.rng 1.0 < t.corrupt_header_prob
        then begin
          Metrics.incr t.m.m_header_corrupted;
          let flip = 1 + Rng.int t.rng 7 in
          if Rng.bool t.rng then begin
            Trace.emitf Trace.Fault ~now:(Engine.now t.eng)
              "header corrupt vci %d -> %d trunk_seq=%d" cell.Cell.vci
              (cell.Cell.vci lxor flip) seq;
            { cell with Cell.vci = cell.Cell.vci lxor flip }
          end
          else begin
            Trace.emitf Trace.Fault ~now:(Engine.now t.eng)
              "header corrupt seq %d -> %d trunk_seq=%d" cell.Cell.seq
              (cell.Cell.seq lxor flip) seq;
            { cell with Cell.seq = cell.Cell.seq lxor flip }
          end
        end
        else cell
      in
      let jitter =
        if t.cfg.jitter_mean = 0 then 0
        else
          Time.of_float_us
            (Rng.exponential t.rng
               ~mean:(Time.to_float_us t.cfg.jitter_mean))
      in
      let arrival = finish + t.cfg.propagation_delay + t.cfg.skew.(l) + jitter in
      (* Cells on one channel arrive in order and no faster than the wire. *)
      let arrival = max arrival (t.last_delivery.(l) + t.cell_time) in
      t.last_delivery.(l) <- arrival;
      ignore
        (Engine.schedule_at t.eng ~time:arrival (fun () ->
             deliver t l seq ~dup:false cell));
      if t.dup_prob > 0.0 && Rng.float t.rng 1.0 < t.dup_prob then begin
        (* A duplicated cell follows its original on the same channel one
           cell-time later, respecting per-channel FIFO order. *)
        let arrival2 = t.last_delivery.(l) + t.cell_time in
        t.last_delivery.(l) <- arrival2;
        Trace.emitf Trace.Fault ~now:(Engine.now t.eng)
          "cell duplicated on link %d trunk_seq=%d" l seq;
        ignore
          (Engine.schedule_at t.eng ~time:arrival2 (fun () ->
               deliver t l seq ~dup:true cell))
      end
    end
  end

let recv t = Mailbox.recv t.inbox
let try_recv t = Mailbox.try_recv t.inbox
let pending t = Mailbox.length t.inbox

let stats t : stats =
  {
    cells_sent = Metrics.counter_value t.m.m_sent;
    cells_delivered = Metrics.counter_value t.m.m_delivered;
    dropped_fifo = Metrics.counter_value t.m.m_dropped_fifo;
    dropped_net = Metrics.counter_value t.m.m_dropped_net;
    corrupted = Metrics.counter_value t.m.m_corrupted;
    reordered = Metrics.counter_value t.m.m_reordered;
    duplicated = Metrics.counter_value t.m.m_duplicated;
    header_corrupted = Metrics.counter_value t.m.m_header_corrupted;
    dropped_link_down = Metrics.counter_value t.m.m_dropped_link_down;
  }

(* Every cell sent (plus every duplicate the fault model manufactures)
   must land in exactly one disposition bucket once the trunk drains:
   delivered into the rx mailbox, dropped at the full fifo, eaten by the
   network (drop draw or cell filter), or lost to a dead link.
   Corruption, reordering and header mangling tag a cell without
   changing its disposition, so they do not appear in the equation. *)
let offered t =
  let s = stats t in
  s.cells_sent + s.duplicated

let conservation t =
  let s = stats t in
  [
    ("cells_delivered", s.cells_delivered);
    ("dropped_fifo", s.dropped_fifo);
    ("dropped_net", s.dropped_net);
    ("dropped_link_down", s.dropped_link_down);
  ]
