open Osiris_sim
module Cell = Osiris_atm.Cell
module Rng = Osiris_util.Rng
module Metrics = Osiris_obs.Metrics
module Trace = Osiris_sim.Trace

type config = {
  nlinks : int;
  link_rate_bps : int;
  propagation_delay : Time.t;
  skew : Time.t array;
  jitter_mean : Time.t;
  corrupt_prob : float;
  drop_prob : float;
  tx_fifo_cells : int;
  rx_fifo_cells : int;
}

let default_config =
  {
    nlinks = 4;
    link_rate_bps = 155_520_000;
    propagation_delay = Time.us 1;
    skew = [| 0; 0; 0; 0 |];
    jitter_mean = 0;
    corrupt_prob = 0.0;
    drop_prob = 0.0;
    tx_fifo_cells = 2;
    rx_fifo_cells = 32;
  }

let oc12_aggregate cfg =
  float_of_int (cfg.nlinks * cfg.link_rate_bps)
  /. 1e6
  *. float_of_int Cell.data_size
  /. float_of_int Cell.wire_size

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_fifo : int;
  mutable dropped_net : int;
  mutable corrupted : int;
  mutable reordered : int;
}

(* Registry handles behind [stats]; [stats t] snapshots them. *)
type m = {
  m_sent : Metrics.counter;
  m_delivered : Metrics.counter;
  m_dropped_fifo : Metrics.counter;
  m_dropped_net : Metrics.counter;
  m_corrupted : Metrics.counter;
  m_reordered : Metrics.counter;
}

type t = {
  eng : Engine.t;
  rng : Rng.t;
  cfg : config;
  cell_time : Time.t;
  mutable send_seq : int;
  mutable max_delivered_seq : int;
  busy_until : Time.t array; (* per-channel serializer booking *)
  last_delivery : Time.t array; (* per-channel FIFO enforcement *)
  inbox : (int * Cell.t) Mailbox.t;
  m : m;
}

let create eng rng cfg =
  if cfg.nlinks < 1 then invalid_arg "Atm_link.create: nlinks must be >= 1";
  if Array.length cfg.skew <> cfg.nlinks then
    invalid_arg "Atm_link.create: skew array must have nlinks entries";
  if cfg.tx_fifo_cells < 1 || cfg.rx_fifo_cells < 1 then
    invalid_arg "Atm_link.create: FIFOs need at least one slot";
  let cell_time =
    Cell.wire_size * 8 * 1_000_000_000 / cfg.link_rate_bps
  in
  {
    eng;
    rng;
    cfg;
    cell_time;
    send_seq = 0;
    max_delivered_seq = -1;
    busy_until = Array.make cfg.nlinks 0;
    last_delivery = Array.make cfg.nlinks 0;
    inbox = Mailbox.create eng ~capacity:cfg.rx_fifo_cells ();
    m =
      {
        m_sent = Metrics.counter "link.cells_sent";
        m_delivered = Metrics.counter "link.cells_delivered";
        m_dropped_fifo = Metrics.counter "link.dropped_fifo";
        m_dropped_net = Metrics.counter "link.dropped_net";
        m_corrupted = Metrics.counter "link.corrupted";
        m_reordered = Metrics.counter "link.reordered";
      };
  }

let config t = t.cfg

let deliver t link seq cell =
  if seq > t.max_delivered_seq then t.max_delivered_seq <- seq
  else begin
    Metrics.incr t.m.m_reordered;
    Trace.emitf Trace.Link ~now:(Engine.now t.eng)
      "reordered arrival link=%d trunk_seq=%d" link seq
  end;
  if Mailbox.try_send t.inbox (link, cell) then
    Metrics.incr t.m.m_delivered
  else begin
    Metrics.incr t.m.m_dropped_fifo;
    Trace.emitf Trace.Link ~now:(Engine.now t.eng)
      "rx fifo overflow link=%d trunk_seq=%d" link seq
  end

let send t cell =
  (* Cell k of a PDU travels on link k mod n (paper 2.6): the link choice
     is a deterministic function of the cell's AAL sequence number, so the
     receiver's per-link reassembly can reconstruct each cell's position
     from (link, per-link arrival index) alone, even when PDUs of several
     VCs are interleaved on the striped trunk. *)
  let l = cell.Cell.seq mod t.cfg.nlinks in
  let seq = t.send_seq in
  t.send_seq <- seq + 1;
  Metrics.incr t.m.m_sent;
  Trace.emitf Trace.Link ~now:(Engine.now t.eng)
    "cell vci=%d seq=%d -> link %d" cell.Cell.vci cell.Cell.seq l;
  (* Backpressure: the channel's output FIFO lets us book at most
     [tx_fifo_cells] cell-times ahead of the present. *)
  let horizon () = Engine.now t.eng + (t.cfg.tx_fifo_cells * t.cell_time) in
  if t.busy_until.(l) > horizon () then
    Process.sleep t.eng (t.busy_until.(l) - horizon ());
  let now = Engine.now t.eng in
  let start = max now t.busy_until.(l) in
  let finish = start + t.cell_time in
  t.busy_until.(l) <- finish;
  if Rng.float t.rng 1.0 < t.cfg.drop_prob then begin
    Metrics.incr t.m.m_dropped_net;
    Trace.emitf Trace.Link ~now:(Engine.now t.eng)
      "cell lost on link %d trunk_seq=%d" l seq
  end
  else begin
    let cell =
      if Rng.float t.rng 1.0 < t.cfg.corrupt_prob then begin
        Metrics.incr t.m.m_corrupted;
        Cell.corrupt cell ~byte:(Rng.int t.rng Cell.data_size)
      end
      else cell
    in
    let jitter =
      if t.cfg.jitter_mean = 0 then 0
      else
        Time.of_float_us
          (Rng.exponential t.rng
             ~mean:(Time.to_float_us t.cfg.jitter_mean))
    in
    let arrival = finish + t.cfg.propagation_delay + t.cfg.skew.(l) + jitter in
    (* Cells on one channel arrive in order and no faster than the wire. *)
    let arrival = max arrival (t.last_delivery.(l) + t.cell_time) in
    t.last_delivery.(l) <- arrival;
    ignore
      (Engine.schedule_at t.eng ~time:arrival (fun () ->
           deliver t l seq cell))
  end

let recv t = Mailbox.recv t.inbox
let try_recv t = Mailbox.try_recv t.inbox
let pending t = Mailbox.length t.inbox

let stats t : stats =
  {
    sent = Metrics.counter_value t.m.m_sent;
    delivered = Metrics.counter_value t.m.m_delivered;
    dropped_fifo = Metrics.counter_value t.m.m_dropped_fifo;
    dropped_net = Metrics.counter_value t.m.m_dropped_net;
    corrupted = Metrics.counter_value t.m.m_corrupted;
    reordered = Metrics.counter_value t.m.m_reordered;
  }
