open Osiris_sim

type t = {
  eng : Engine.t;
  hz : int;
  res : Resource.t;
  mutable mem_load : Time.t -> unit;
}

let create eng ~hz =
  if hz <= 0 then invalid_arg "Cpu.create: hz must be positive";
  let t = { eng; hz; res = Resource.create eng ~capacity:1; mem_load = ignore } in
  Osiris_obs.Metrics.gauge_fn "cpu.busy_ns" (fun () ->
      float_of_int (Resource.stats t.res).Resource.busy_time);
  t

let set_memory_load t hook = t.mem_load <- hook

let hz t = t.hz
let engine t = t.eng

let cycles_ns t cycles = ((cycles * 1_000_000_000) + t.hz - 1) / t.hz

let thread_priority = 10
let interrupt_priority = 0

let consume_with t ~priority duration =
  if duration > 0 then begin
    Resource.acquire ~priority t.res;
    Fun.protect
      ~finally:(fun () -> Resource.release t.res)
      (fun () ->
        Process.sleep t.eng duration;
        (* Background memory traffic stretches the slice while holding the
           CPU: the thread is stalled on its own cache misses. *)
        t.mem_load duration)
  end

let consume t duration = consume_with t ~priority:thread_priority duration
let consume_prio t ~priority duration = consume_with t ~priority duration

let consume_cycles t cycles = consume t (cycles_ns t cycles)

let consume_interrupt t duration =
  consume_with t ~priority:interrupt_priority duration

let with_held t f =
  Resource.acquire ~priority:thread_priority t.res;
  Fun.protect ~finally:(fun () -> Resource.release t.res) f

let stall t duration = if duration > 0 then Process.sleep t.eng duration

let busy_stats t = Resource.stats t.res
