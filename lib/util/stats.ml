type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = nan; max = nan; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let sum t = t.sum

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n t.mean
    (stddev t) t.min t.max

(* Chan et al.'s parallel combination of Welford accumulators: exact in n,
   mean and sum, numerically stable in m2. *)
let merge ts =
  let acc = create () in
  List.iter
    (fun t ->
      if t.n > 0 then begin
        let na = float_of_int acc.n and nb = float_of_int t.n in
        let nt = na +. nb in
        let delta = t.mean -. acc.mean in
        acc.m2 <- acc.m2 +. t.m2 +. (delta *. delta *. na *. nb /. nt);
        acc.mean <- acc.mean +. (delta *. nb /. nt);
        acc.sum <- acc.sum +. t.sum;
        acc.min <- (if acc.n = 0 then t.min else Float.min acc.min t.min);
        acc.max <- (if acc.n = 0 then t.max else Float.max acc.max t.max);
        acc.n <- acc.n + t.n
      end)
    ts;
  acc

module Histogram = struct
  type h = {
    lo : float;
    hi : float;
    width : float;
    counts : int array; (* buckets + 2 overflow cells *)
    mutable total : int;
  }

  let create ~lo ~hi ~buckets =
    if buckets < 1 || hi <= lo then invalid_arg "Histogram.create";
    {
      lo;
      hi;
      width = (hi -. lo) /. float_of_int buckets;
      counts = Array.make (buckets + 2) 0;
      total = 0;
    }

  let bucket_of h x =
    if x < h.lo then 0
    else if x >= h.hi then Array.length h.counts - 1
    else 1 + int_of_float ((x -. h.lo) /. h.width)

  let add h x =
    let i = bucket_of h x in
    let i = Stdlib.min i (Array.length h.counts - 1) in
    h.counts.(i) <- h.counts.(i) + 1;
    h.total <- h.total + 1

  let count h = h.total

  let percentile h p =
    if h.total = 0 then nan
    else begin
      let target = int_of_float (ceil (p /. 100.0 *. float_of_int h.total)) in
      let target = Stdlib.max 1 (Stdlib.min target h.total) in
      let acc = ref 0 and result = ref h.hi in
      (try
         for i = 0 to Array.length h.counts - 1 do
           acc := !acc + h.counts.(i);
           if !acc >= target then begin
             result :=
               (if i = 0 then h.lo
                else if i = Array.length h.counts - 1 then h.hi
                else h.lo +. (float_of_int i *. h.width));
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let pp fmt h =
    Format.fprintf fmt "hist[%g,%g) n=%d p50=%g p99=%g" h.lo h.hi h.total
      (percentile h 50.0) (percentile h 99.0)

  (* Sum same-shape histograms (the shape of the first one); differently
     shaped inputs are skipped, since their buckets are incomparable. *)
  let merge hs =
    match hs with
    | [] -> invalid_arg "Histogram.merge: empty list"
    | first :: _ ->
        let merged =
          create ~lo:first.lo ~hi:first.hi
            ~buckets:(Array.length first.counts - 2)
        in
        List.iter
          (fun h ->
            if
              h.lo = first.lo && h.hi = first.hi
              && Array.length h.counts = Array.length first.counts
            then begin
              Array.iteri
                (fun i c -> merged.counts.(i) <- merged.counts.(i) + c)
                h.counts;
              merged.total <- merged.total + h.total
            end)
          hs;
        merged
end
