(** Streaming statistics (Welford) and fixed-bucket histograms, used by the
    experiment harness to summarize latencies, queue depths and rates. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Sample variance; 0 for fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Smallest observation; [nan] when empty. *)

val max : t -> float
(** Largest observation; [nan] when empty. *)

val sum : t -> float

val pp : Format.formatter -> t -> unit
(** "n=… mean=… sd=… min=… max=…". *)

val merge : t list -> t
(** Combine accumulators as if every observation had been fed to one
    (Chan's parallel Welford combination). The inputs are not modified. *)

(** Histogram with uniform buckets over [\[lo, hi)]; out-of-range samples go
    to the two overflow buckets. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  val count : h -> int

  val percentile : h -> float -> float
  (** [percentile h p] for [p] in [\[0,100\]]: the upper edge of the bucket
      containing the [p]-th percentile observation. *)

  val pp : Format.formatter -> h -> unit

  val merge : h list -> h
  (** Sum same-shape histograms into a fresh one (the shape of the first;
      differently shaped inputs are skipped). Raises [Invalid_argument] on
      an empty list. *)
end
