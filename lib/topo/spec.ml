type t =
  | Star of { hosts : int }
  | Chain of { hosts : int }
  | Leaf_spine of { leaves : int; spines : int; hosts_per_leaf : int }
  | Fat_tree of { k : int; hosts_per_edge : int }

let validate = function
  | Star { hosts } ->
      if hosts < 2 then invalid_arg "Topo.Spec: star needs at least 2 hosts"
  | Chain { hosts } ->
      if hosts < 2 then invalid_arg "Topo.Spec: chain needs at least 2 hosts"
  | Leaf_spine { leaves; spines; hosts_per_leaf } ->
      if leaves < 1 || spines < 1 || hosts_per_leaf < 1 then
        invalid_arg "Topo.Spec: leaf-spine dimensions must be positive"
  | Fat_tree { k; hosts_per_edge } ->
      if k < 2 || k mod 2 <> 0 then
        invalid_arg "Topo.Spec: fat-tree radix must be even and >= 2";
      if hosts_per_edge < 1 || hosts_per_edge > k / 2 then
        invalid_arg "Topo.Spec: fat-tree hosts_per_edge out of [1, k/2]"

let nhosts = function
  | Star { hosts } | Chain { hosts } -> hosts
  | Leaf_spine { leaves; hosts_per_leaf; _ } -> leaves * hosts_per_leaf
  | Fat_tree { k; hosts_per_edge } -> k * (k / 2) * hosts_per_edge

let nswitches = function
  | Star _ -> 1
  | Chain _ -> 2
  | Leaf_spine { leaves; spines; _ } -> leaves + spines
  | Fat_tree { k; _ } -> (k * (k / 2) * 2) + (k / 2 * (k / 2))

let oversubscription = function
  | Star _ | Chain _ -> 0.0
  | Leaf_spine { spines; hosts_per_leaf; _ } ->
      float_of_int hosts_per_leaf /. float_of_int spines
  | Fat_tree { k; hosts_per_edge } ->
      float_of_int hosts_per_edge /. float_of_int (k / 2)

let to_string = function
  | Star { hosts } -> Printf.sprintf "star(%d)" hosts
  | Chain { hosts } -> Printf.sprintf "chain(%d)" hosts
  | Leaf_spine { leaves; spines; hosts_per_leaf } ->
      Printf.sprintf "leaf-spine(%dx%d, %d hosts/leaf)" leaves spines
        hosts_per_leaf
  | Fat_tree { k; hosts_per_edge } ->
      Printf.sprintf "fat-tree(k=%d, %d hosts/edge)" k hosts_per_edge

let pp fmt t = Format.pp_print_string fmt (to_string t)
