type port_ref = { pr_sw : int; pr_port : int }
type trunk = { t_a : port_ref; t_b : port_ref }

type fabric = {
  f_spec : Spec.t;
  switch_nports : int array;
  switch_names : string array;
  switch_tier : int array;
  hosts : port_ref array;
  trunks : trunk array;
}

type hop = { h_sw : int; h_in : int; h_out : int }

let nswitches f = Array.length f.switch_nports
let nhosts f = Array.length f.hosts

(* ------------------------------------------------------------------ *)
(* Expansion. The element ORDER of [trunks] and [hosts] is part of the
   contract: instantiation creates links and attaches ports in exactly
   this order, so a given spec always draws the same RNG stream and the
   degenerate families reproduce the historical star/chain wiring
   bit for bit. *)

let build_star hosts =
  {
    f_spec = Spec.Star { hosts };
    switch_nports = [| hosts |];
    switch_names = [| "sw0" |];
    switch_tier = [| 0 |];
    hosts = Array.init hosts (fun i -> { pr_sw = 0; pr_port = i });
    trunks = [||];
  }

let build_chain hosts =
  let h0 = (hosts + 1) / 2 in
  let h1 = hosts - h0 in
  {
    f_spec = Spec.Chain { hosts };
    switch_nports = [| h0 + 1; h1 + 1 |];
    switch_names = [| "sw0"; "sw1" |];
    switch_tier = [| 0; 0 |];
    hosts =
      Array.init hosts (fun i ->
          if i < h0 then { pr_sw = 0; pr_port = i }
          else { pr_sw = 1; pr_port = i - h0 });
    trunks =
      [|
        {
          t_a = { pr_sw = 0; pr_port = h0 };
          t_b = { pr_sw = 1; pr_port = h1 };
        };
      |];
  }

let build_leaf_spine leaves spines hosts_per_leaf =
  let nsw = leaves + spines in
  let switch_nports =
    Array.init nsw (fun s ->
        if s < leaves then hosts_per_leaf + spines else leaves)
  in
  let switch_names =
    Array.init nsw (fun s ->
        if s < leaves then Printf.sprintf "leaf%d" s
        else Printf.sprintf "spine%d" (s - leaves))
  in
  let switch_tier = Array.init nsw (fun s -> if s < leaves then 0 else 1) in
  let hosts =
    Array.init (leaves * hosts_per_leaf) (fun h ->
        { pr_sw = h / hosts_per_leaf; pr_port = h mod hosts_per_leaf })
  in
  let trunks =
    Array.init (leaves * spines) (fun i ->
        let l = i / spines and s = i mod spines in
        {
          t_a = { pr_sw = l; pr_port = hosts_per_leaf + s };
          t_b = { pr_sw = leaves + s; pr_port = l };
        })
  in
  {
    f_spec = Spec.Leaf_spine { leaves; spines; hosts_per_leaf };
    switch_nports;
    switch_names;
    switch_tier;
    hosts;
    trunks;
  }

(* k-ary fat-tree, switches indexed edges first (pod-major), then
   aggregations (pod-major), then cores (group-major): edge(p,e) uses
   ports [0, hosts_per_edge) for hosts and [hosts_per_edge + a] for
   agg(p,a); agg(p,a) uses port [e] down to edge(p,e) and [k/2 + j] up
   to core(a,j); core(a,j) uses port [p] down to pod [p]'s agg #a. An
   inter-pod path therefore picks one (a, j) pair: (k/2)^2 equal-cost
   routes. *)
let build_fat_tree k hosts_per_edge =
  let h = k / 2 in
  let nedge = k * h in
  let nagg = k * h in
  let ncore = h * h in
  let edge p e = (p * h) + e in
  let agg p a = nedge + (p * h) + a in
  let core a j = nedge + nagg + (a * h) + j in
  let nsw = nedge + nagg + ncore in
  let switch_nports =
    Array.init nsw (fun s ->
        if s < nedge then hosts_per_edge + h else if s < nedge + nagg then k
        else k)
  in
  let switch_names =
    Array.init nsw (fun s ->
        if s < nedge then Printf.sprintf "edge%d.%d" (s / h) (s mod h)
        else if s < nedge + nagg then
          Printf.sprintf "agg%d.%d" ((s - nedge) / h) ((s - nedge) mod h)
        else
          Printf.sprintf "core%d.%d"
            ((s - nedge - nagg) / h)
            ((s - nedge - nagg) mod h))
  in
  let switch_tier =
    Array.init nsw (fun s ->
        if s < nedge then 0 else if s < nedge + nagg then 1 else 2)
  in
  let hosts =
    Array.init (nedge * hosts_per_edge) (fun i ->
        { pr_sw = i / hosts_per_edge; pr_port = i mod hosts_per_edge })
  in
  (* Edge-to-agg trunks (pod-major, edge-major), then agg-to-core
     (pod-major, agg-major). *)
  let edge_agg =
    Array.init (k * h * h) (fun i ->
        let p = i / (h * h) in
        let e = i mod (h * h) / h in
        let a = i mod h in
        {
          t_a = { pr_sw = edge p e; pr_port = hosts_per_edge + a };
          t_b = { pr_sw = agg p a; pr_port = e };
        })
  in
  let agg_core =
    Array.init (k * h * h) (fun i ->
        let p = i / (h * h) in
        let a = i mod (h * h) / h in
        let j = i mod h in
        {
          t_a = { pr_sw = agg p a; pr_port = h + j };
          t_b = { pr_sw = core a j; pr_port = p };
        })
  in
  {
    f_spec = Spec.Fat_tree { k; hosts_per_edge };
    switch_nports;
    switch_names;
    switch_tier;
    hosts;
    trunks = Array.append edge_agg agg_core;
  }

let build spec =
  Spec.validate spec;
  match spec with
  | Spec.Star { hosts } -> build_star hosts
  | Spec.Chain { hosts } -> build_chain hosts
  | Spec.Leaf_spine { leaves; spines; hosts_per_leaf } ->
      build_leaf_spine leaves spines hosts_per_leaf
  | Spec.Fat_tree { k; hosts_per_edge } -> build_fat_tree k hosts_per_edge

(* ------------------------------------------------------------------ *)
(* Shortest-path enumeration over the switch graph. Fabrics are a few
   hundred switches at most, so a per-query BFS + DFS is cheap; path
   order is deterministic (adjacency lists follow trunk index order). *)

(* (peer switch, my egress port, peer ingress port) per switch. *)
let adjacency f =
  let adj = Array.make (nswitches f) [] in
  Array.iter
    (fun t ->
      adj.(t.t_a.pr_sw) <-
        (t.t_b.pr_sw, t.t_a.pr_port, t.t_b.pr_port) :: adj.(t.t_a.pr_sw);
      adj.(t.t_b.pr_sw) <-
        (t.t_a.pr_sw, t.t_b.pr_port, t.t_a.pr_port) :: adj.(t.t_b.pr_sw))
    f.trunks;
  Array.map List.rev adj

let paths f ~src ~dst =
  let nh = nhosts f in
  if src < 0 || src >= nh || dst < 0 || dst >= nh || src = dst then
    invalid_arg "Topo.Builder.paths: bad endpoints";
  let s = f.hosts.(src) and d = f.hosts.(dst) in
  if s.pr_sw = d.pr_sw then
    [ [ { h_sw = s.pr_sw; h_in = s.pr_port; h_out = d.pr_port } ] ]
  else begin
    let adj = adjacency f in
    (* BFS from the destination switch: dist.(sw) = hops to [d.pr_sw]. *)
    let dist = Array.make (nswitches f) max_int in
    dist.(d.pr_sw) <- 0;
    let queue = Queue.create () in
    Queue.add d.pr_sw queue;
    while not (Queue.is_empty queue) do
      let sw = Queue.take queue in
      List.iter
        (fun (peer, _, _) ->
          if dist.(peer) = max_int then begin
            dist.(peer) <- dist.(sw) + 1;
            Queue.add peer queue
          end)
        adj.(sw)
    done;
    if dist.(s.pr_sw) = max_int then []
    else begin
      (* DFS along strictly distance-decreasing trunks enumerates every
         shortest path exactly once. *)
      let acc = ref [] in
      let rec go sw in_port rev_hops =
        if sw = d.pr_sw then
          acc :=
            List.rev
              ({ h_sw = sw; h_in = in_port; h_out = d.pr_port } :: rev_hops)
            :: !acc
        else
          List.iter
            (fun (peer, out, peer_in) ->
              if dist.(peer) = dist.(sw) - 1 then
                go peer peer_in
                  ({ h_sw = sw; h_in = in_port; h_out = out } :: rev_hops))
            adj.(sw)
      in
      go s.pr_sw s.pr_port [];
      List.rev !acc
    end
  end

let path_crosses path ~sw ~port =
  List.exists (fun h -> h.h_sw = sw && (h.h_out = port || h.h_in = port)) path

let path_uses_trunk f path trunk =
  if trunk < 0 || trunk >= Array.length f.trunks then
    invalid_arg "Topo.Builder.path_uses_trunk: trunk out of range";
  let t = f.trunks.(trunk) in
  List.exists
    (fun h ->
      (h.h_sw = t.t_a.pr_sw && h.h_out = t.t_a.pr_port)
      || (h.h_sw = t.t_b.pr_sw && h.h_out = t.t_b.pr_port))
    path

let describe f =
  Printf.sprintf "%s: %d hosts, %d switches, %d trunks, oversub %.2f"
    (Spec.to_string f.f_spec) (nhosts f) (nswitches f)
    (Array.length f.trunks)
    (Spec.oversubscription f.f_spec)
