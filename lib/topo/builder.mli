(** Fabric wiring plans: a {!Spec.t} expanded into concrete switches,
    host attachment points and inter-switch trunks, plus equal-cost
    shortest-path enumeration over the result.

    A plan is still pure data — switch indices, port numbers and trunk
    endpoint pairs — with no engine, link or switch objects behind it.
    [Osiris_core.Network.instantiate] turns a plan into a running fabric;
    experiments query the plan (the "fabric map") for path sets, trunk
    membership and tier structure.

    The array {e order} of [hosts] and [trunks] is part of the contract:
    instantiation creates links and attaches ports in exactly this
    order, so equal specs yield byte-identical fabrics (same RNG draws,
    same port wiring) and the [Star]/[Chain] plans reproduce the
    historical hand-rolled constructors exactly. *)

type port_ref = { pr_sw : int; pr_port : int }

type trunk = { t_a : port_ref; t_b : port_ref }
(** One bidirectional inter-switch trunk. Instantiation creates the
    [t_a → t_b] link before the [t_b → t_a] link and attaches the
    [t_a]-side port first. *)

type fabric = {
  f_spec : Spec.t;
  switch_nports : int array;  (** ports per switch, indexed by switch *)
  switch_names : string array;
  switch_tier : int array;
      (** 0 = host-facing (edge/leaf), 1 = aggregation/spine, 2 = core *)
  hosts : port_ref array;  (** host [i] attaches at [hosts.(i)] *)
  trunks : trunk array;
}

type hop = { h_sw : int; h_in : int; h_out : int }
(** One switch traversal: cells enter switch [h_sw] on port [h_in] and
    leave on port [h_out]. A path is the hop list from the source host's
    edge switch to the destination's. *)

val build : Spec.t -> fabric
(** Validates the spec and expands it. Every switch port is used by
    exactly one occupant (host or trunk endpoint) — the wiring is a
    bijection, which the qcheck suite pins. *)

val nswitches : fabric -> int
val nhosts : fabric -> int

val paths : fabric -> src:int -> dst:int -> hop list list
(** Every shortest path between two distinct hosts, in deterministic
    (trunk-index DFS) order. All returned paths have equal hop counts;
    for a fat-tree's inter-pod pairs there are [(k/2)^2] of them. Raises
    [Invalid_argument] if [src = dst] or either is out of range. *)

val path_crosses : hop list -> sw:int -> port:int -> bool
(** Does the path enter or leave switch [sw] through [port]? (The
    question a port-flap fault plan asks of a path set.) *)

val path_uses_trunk : fabric -> hop list -> int -> bool
(** Does the path traverse trunk [trunk] (in either direction)? *)

val describe : fabric -> string
(** One-line summary: spec, host/switch/trunk counts, oversubscription. *)
