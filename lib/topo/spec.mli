(** Parameterized fabric specifications.

    A spec is pure data naming a topology family and its dimensions; it
    knows nothing about engines, links or switches. {!Builder.build}
    expands a spec into a concrete wiring plan, and
    [Osiris_core.Network.instantiate] stands the plan up as real hosts,
    links and switches.

    [Star] and [Chain] are the degenerate fabrics the repo grew up with
    (one switch; two switches and a trunk) and expand to exactly the
    wiring the historical hand-rolled constructors produced. [Leaf_spine]
    is the two-tier Clos: every leaf connects to every spine, hosts hang
    off leaves, and the leaf's oversubscription is
    [hosts_per_leaf / spines]. [Fat_tree] is the k-ary three-tier Clos of
    Al-Fares et al.: [k] pods of [k/2] edge and [k/2] aggregation
    switches, [(k/2)^2] cores, [hosts_per_edge] hosts per edge switch
    (the canonical tree has [k/2]; fewer underpopulates the pods), and
    [(k/2)^2] equal-cost paths between hosts in different pods. *)

type t =
  | Star of { hosts : int }
  | Chain of { hosts : int }
  | Leaf_spine of { leaves : int; spines : int; hosts_per_leaf : int }
  | Fat_tree of { k : int; hosts_per_edge : int }

val validate : t -> unit
(** Raises [Invalid_argument] on dimensions outside the family's domain
    (fewer than 2 hosts, odd fat-tree radix, [hosts_per_edge] outside
    [1, k/2], non-positive leaf-spine dimensions). *)

val nhosts : t -> int
val nswitches : t -> int

val oversubscription : t -> float
(** Host-to-uplink bandwidth ratio at the host-facing tier, assuming
    equal link rates everywhere: [hosts_per_leaf / spines] for
    leaf-spine, [hosts_per_edge / (k/2)] for fat-tree, 0 for the
    trunkless/degenerate families. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
