(** REPS-style per-connection adaptive path selection: recycled entropy
    packet spraying.

    The balancer never learns the fabric — it learns which {e entropy}
    (path indices, in this fabric's VCI-per-path encoding) recently
    carried a PDU to a clean acknowledgement, and re-uses exactly that.
    Every clean ack recycles its path index into a small FIFO; every
    transmission prefers recycled entropy over anything else. A path the
    fabric is congesting (ECE echo) or losing (retransmission, timeout)
    simply stops producing clean acks, so its entropy drains out of the
    FIFO within one round-trip and the spray migrates to the surviving
    paths — rerouting without any explicit failure signal.

    Two modes, as in the REPS design: {e explore} draws fresh entropy
    (a per-connection LCG over all [npaths]) whenever no recycled
    entropy is buffered, discovering path quality; {e frozen} — entered
    after enough clean acks — stops exploring and falls back to the
    cached-path bitmap instead, pinning the spray to paths known clean.
    An ECE echo evicts just that path from the cached set (the others
    are still good); only a retransmission timeout — every in-flight
    ack in doubt — flushes everything and drops back to explore.

    The whole per-connection state is a few bytes — {!state_bytes}, at
    most 25 with the default FIFO — which is the point: a host can run
    one instance per connection at OSIRIS scale without a flow table.
    (Observability counters in {!stats} are not forwarding state and are
    not counted, the same accounting the transport applies to its own
    stats records.) *)

type t

type stats = {
  mutable picks : int;  (** total path decisions *)
  mutable recycled : int;  (** picks served from the entropy FIFO *)
  mutable cached_picks : int;  (** picks served from the frozen bitmap *)
  mutable fresh : int;  (** picks served by fresh (explore) entropy *)
  mutable acks_clean : int;
  mutable acks_ece : int;
  mutable timeouts : int;
  mutable purged : int;  (** FIFO entries discarded by {!on_loss} *)
}

val create : ?fifo:int -> ?seed:int -> npaths:int -> unit -> t
(** A balancer over paths [0 .. npaths-1] ([npaths] in [1, 256]).
    [fifo] (default 16, max 256) bounds the entropy FIFO — and with it
    both the state size and how much stale entropy can point at a path
    that just died. [seed] scrambles the explore LCG so parallel
    connections don't sweep the path space in lockstep. *)

val npaths : t -> int

val state_bytes : t -> int
(** Size of the forwarding state in bytes: the FIFO ring plus head,
    tail, length, the 16-bit cached-path bitmap, the mode byte, the
    16-bit explore cursor and the freeze countdown. 25 with the default
    FIFO; the test suite pins [state_bytes <= 25]. *)

val pick : t -> int
(** Choose the path for the next PDU: recycled entropy when the FIFO
    holds any, else the cached bitmap when frozen, else fresh explore
    entropy. *)

val on_ack : t -> path:int -> ece:bool -> unit
(** Feed one acknowledgement's recycled entropy. Clean ([ece = false]):
    the path index re-enters the FIFO (displacing the oldest entry when
    full), its cached bit is set, and the freeze countdown steps toward
    frozen mode. Marked ([ece = true]): nothing is recycled and the
    path's cached bit is cleared — the balancer stays frozen on the
    remaining cached paths (falling back to fresh entropy only if marks
    evict them all). Path indices outside [0, npaths) (a garbled
    entropy byte) are ignored. *)

val on_loss : t -> path:int -> unit
(** A segment sent on [path] needed a retransmission: purge that path's
    entries from the FIFO and clear its cached bit, so the retransmission
    and everything behind it steer around it immediately. *)

val on_timeout : t -> unit
(** Retransmission timeout: every in-flight ack is in doubt, so flush
    the FIFO, clear the cached bitmap and re-enter explore. *)

val frozen : t -> bool
val fifo_len : t -> int
val cached_bitmap : t -> int
val stats : t -> stats

val invariants : t -> string list
(** Structural invariants, checkable at any instant: FIFO indices in
    range, length consistent with head/tail, every buffered entropy and
    every cached bit a valid path, pick conservation
    ([picks = recycled + cached_picks + fresh]). Empty when healthy. *)
