(** Multipath transport glue: one reliable connection sprayed across the
    equal-cost path set of a generated fabric.

    The unipath glue ([Osiris_transport.Transport]) binds one data VC
    and one ack VC. Spray instead opens one complete VCI chain per
    equal-cost path ({!Osiris_core.Network.open_vc_paths}) and picks a
    path {e per PDU} at transmission time. Because every path is its own
    VCI, cells of PDUs in flight on different paths never interleave
    within a VCI, so the board's striped reassembly is untouched; the
    receiver learns a PDU's path from which VCI delivered it and echoes
    it as the entropy byte of the (multipath) ack, which closes the
    recycling loop the {!Reps} balancer feeds on.

    Three selection policies, so experiments can compare under identical
    traffic: [Reps] (adaptive, recycled entropy), [Static_hash] (the
    classic ECMP strawman — one hash-chosen path for the connection's
    whole life, collisions and all) and [Single] (path 0, no
    multipath). Acks travel the first reverse path in every mode. *)

type mode = Reps | Static_hash | Single

type t

val connect :
  ?name:string ->
  ?config:Osiris_transport.Sender.config ->
  ?on_state:(Osiris_transport.Sender.state -> unit) ->
  ?mode:mode ->
  ?limit:int ->
  ?seed:int ->
  ?fifo:int ->
  Osiris_core.Network.topology ->
  src:int ->
  dst:int ->
  deliver:(Bytes.t -> unit) ->
  unit ->
  t
(** Open the per-path data VCs [src -> dst] (at most [limit]) and one
    ack VC [dst -> src], wire sender, receiver, demux bindings and the
    send pumps, and return the connection. [seed] scrambles the REPS
    explore order (defaults to a function of the endpoints); [fifo]
    sizes the REPS entropy FIFO. [mode] defaults to [Reps]. *)

val send : t -> Bytes.t -> unit
val close : t -> unit
val state : t -> Osiris_transport.Sender.state
val sender : t -> Osiris_transport.Sender.t
val receiver : t -> Osiris_transport.Receiver.t

val reps : t -> Reps.t option
(** The balancer, in [Reps] mode. *)

val npaths : t -> int
val mvc : t -> Osiris_core.Network.mvc

val path_of_seg : t -> int -> int option
(** Which path segment [seq]'s most recent transmission used. *)

val sends : t -> int -> int
(** Data-PDU hand-offs to path [p] so far (first transmissions and
    retransmissions). *)

val last_send : t -> int -> Osiris_sim.Time.t
(** Instant of the most recent hand-off to path [p] ([Time.zero] if
    never used) — the signal the reroute-latency metric watches: after a
    fault, the last hand-off to a path crossing the failed element dates
    the spray's migration. *)

val garbled : t -> int
(** PDUs that failed wire decoding. *)

val invariants : t -> string list
(** Sender, receiver and balancer invariants plus spray bookkeeping
    (per-path send counts summing to total transmissions). *)
