type stats = {
  mutable picks : int;
  mutable recycled : int;
  mutable cached_picks : int;
  mutable fresh : int;
  mutable acks_clean : int;
  mutable acks_ece : int;
  mutable timeouts : int;
  mutable purged : int;
}

(* The forwarding state is the point of the design: one small ring of
   recycled path indices plus a handful of bytes, no per-path table.
   [state_bytes] accounts for exactly these fields. *)
type t = {
  np : int; (* configuration, like a window size: not state *)
  ent : Bytes.t; (* FIFO ring of recycled path indices, 1 B per slot *)
  mutable ent_head : int; (* ring read index (1 B) *)
  mutable ent_tail : int; (* ring write index (1 B) *)
  mutable ent_len : int; (* buffered entries (1 B) *)
  mutable cached : int; (* 16-bit bitmap: paths recently acked clean *)
  mutable frozen : bool; (* mode (1 B): frozen spray vs explore *)
  mutable cursor : int; (* 16-bit explore LCG state *)
  mutable fresh_left : int; (* clean acks until freeze (1 B) *)
  stats : stats;
}

(* Enough clean acks to have heard from every path a couple of times
   before trusting the cached set; capped so it stays one byte. *)
let freeze_after np = min 255 (2 * np)

let create ?(fifo = 16) ?(seed = 0) ~npaths () =
  if npaths < 1 || npaths > 256 then invalid_arg "Reps.create: npaths";
  if fifo < 1 || fifo > 256 then invalid_arg "Reps.create: fifo";
  {
    np = npaths;
    ent = Bytes.make fifo '\000';
    ent_head = 0;
    ent_tail = 0;
    ent_len = 0;
    cached = 0;
    frozen = false;
    cursor = seed land 0xffff;
    fresh_left = freeze_after npaths;
    stats =
      {
        picks = 0;
        recycled = 0;
        cached_picks = 0;
        fresh = 0;
        acks_clean = 0;
        acks_ece = 0;
        timeouts = 0;
        purged = 0;
      };
  }

let npaths t = t.np
let frozen t = t.frozen
let fifo_len t = t.ent_len
let cached_bitmap t = t.cached
let stats t = t.stats

let state_bytes t =
  Bytes.length t.ent (* entropy FIFO ring *)
  + 1 (* ent_head *)
  + 1 (* ent_tail *)
  + 1 (* ent_len *)
  + 2 (* cached bitmap *)
  + 1 (* frozen *)
  + 2 (* cursor *)
  + 1 (* fresh_left *)

let cap t = Bytes.length t.ent

let push t path =
  if t.ent_len = cap t then begin
    (* Full: displace the oldest recycled entropy — newest wins, it
       reflects the freshest view of the fabric. *)
    t.ent_head <- (t.ent_head + 1) mod cap t;
    t.ent_len <- t.ent_len - 1
  end;
  Bytes.unsafe_set t.ent t.ent_tail (Char.unsafe_chr path);
  t.ent_tail <- (t.ent_tail + 1) mod cap t;
  t.ent_len <- t.ent_len + 1

let pop t =
  let p = Char.code (Bytes.unsafe_get t.ent t.ent_head) in
  t.ent_head <- (t.ent_head + 1) mod cap t;
  t.ent_len <- t.ent_len - 1;
  p

(* Fresh entropy: a 16-bit LCG (Numerical Recipes' ranqd-style odd
   multiplier) — cheap, stateful in two bytes, and different seeds give
   parallel connections different sweep orders. *)
let fresh_pick t =
  t.cursor <- ((t.cursor * 25173) + 13849) land 0xffff;
  t.cursor mod t.np

(* Next set bit of the cached bitmap at or after the cursor, cycling. *)
let cached_pick t =
  let rec scan i left =
    if left = 0 then fresh_pick t
    else
      let p = (t.cursor + i) mod t.np in
      if t.cached land (1 lsl p) <> 0 then begin
        t.cursor <- (p + 1) mod t.np;
        p
      end
      else scan (i + 1) (left - 1)
  in
  scan 0 t.np

let pick t =
  t.stats.picks <- t.stats.picks + 1;
  if t.ent_len > 0 then begin
    t.stats.recycled <- t.stats.recycled + 1;
    pop t
  end
  else if t.frozen && t.cached <> 0 then begin
    t.stats.cached_picks <- t.stats.cached_picks + 1;
    cached_pick t
  end
  else begin
    t.stats.fresh <- t.stats.fresh + 1;
    fresh_pick t
  end

let on_ack t ~path ~ece =
  if path >= 0 && path < t.np then
    if ece then begin
      (* A marked ack means the path is congested: don't recycle its
         entropy and evict it from the cached set, but stay frozen —
         the remaining cached paths are still good, and a global
         re-explore would spray onto paths we already know are bad
         (including dead ones). Only a timeout resets everything. If
         marks evict every cached path, picks naturally fall back to
         fresh exploration. *)
      t.stats.acks_ece <- t.stats.acks_ece + 1;
      t.cached <- t.cached land lnot (1 lsl path) land 0xffff
    end
    else begin
      t.stats.acks_clean <- t.stats.acks_clean + 1;
      push t path;
      if path < 16 then t.cached <- t.cached lor (1 lsl path);
      if not t.frozen then begin
        t.fresh_left <- t.fresh_left - 1;
        if t.fresh_left <= 0 then t.frozen <- true
      end
    end

let on_loss t ~path =
  if path >= 0 && path < t.np then begin
    t.cached <- t.cached land lnot (1 lsl path) land 0xffff;
    (* Compact the ring in place, dropping every entry for [path]. *)
    let kept = ref 0 in
    for i = 0 to t.ent_len - 1 do
      let p = Char.code (Bytes.unsafe_get t.ent ((t.ent_head + i) mod cap t)) in
      if p <> path then begin
        Bytes.unsafe_set t.ent
          ((t.ent_head + !kept) mod cap t)
          (Char.unsafe_chr p);
        incr kept
      end
    done;
    t.stats.purged <- t.stats.purged + (t.ent_len - !kept);
    t.ent_len <- !kept;
    t.ent_tail <- (t.ent_head + !kept) mod cap t
  end

let on_timeout t =
  t.stats.timeouts <- t.stats.timeouts + 1;
  t.ent_head <- 0;
  t.ent_tail <- 0;
  t.ent_len <- 0;
  t.cached <- 0;
  t.frozen <- false;
  t.fresh_left <- freeze_after t.np

let invariants t =
  let errs = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let c = cap t in
  if not (t.ent_head >= 0 && t.ent_head < c) then
    bad "ent_head %d out of ring range %d" t.ent_head c;
  if not (t.ent_tail >= 0 && t.ent_tail < c) then
    bad "ent_tail %d out of ring range %d" t.ent_tail c;
  if not (t.ent_len >= 0 && t.ent_len <= c) then
    bad "ent_len %d out of [0, %d]" t.ent_len c;
  if (t.ent_head + t.ent_len) mod c <> t.ent_tail then
    bad "ring indices inconsistent: head=%d len=%d tail=%d cap=%d" t.ent_head
      t.ent_len t.ent_tail c;
  for i = 0 to t.ent_len - 1 do
    let p = Char.code (Bytes.get t.ent ((t.ent_head + i) mod c)) in
    if p >= t.np then bad "buffered entropy %d is not a path (np=%d)" p t.np
  done;
  for p = 0 to 15 do
    if t.cached land (1 lsl p) <> 0 && p >= t.np then
      bad "cached bit %d set beyond npaths %d" p t.np
  done;
  if t.cached lsr 16 <> 0 then bad "cached bitmap wider than 16 bits";
  if
    t.stats.picks
    <> t.stats.recycled + t.stats.cached_picks + t.stats.fresh
  then
    bad "pick conservation: %d <> %d recycled + %d cached + %d fresh"
      t.stats.picks t.stats.recycled t.stats.cached_picks t.stats.fresh;
  if state_bytes t > 25 && Bytes.length t.ent <= 16 then
    bad "state_bytes %d exceeds 25 with a default-sized FIFO" (state_bytes t);
  List.rev !errs
