module Engine = Osiris_sim.Engine
module Time = Osiris_sim.Time
module Process = Osiris_sim.Process
module Signal = Osiris_sim.Signal
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Host = Osiris_core.Host
module Driver = Osiris_core.Driver
module Network = Osiris_core.Network
module Sender = Osiris_transport.Sender
module Receiver = Osiris_transport.Receiver
module Wire = Osiris_transport.Wire

type mode = Reps | Static_hash | Single

type stats = { mutable garbled : int }

type t = {
  eng : Engine.t;
  name : string;
  mode : mode;
  reps : Reps.t option;
  sender : Sender.t;
  receiver : Receiver.t;
  mv : Network.mvc;
  np : int;
  seg_paths : Bytes.t ref; (* seq -> path of latest transmission *)
  sends : int array;
  last_send : Time.t array;
  stats : stats;
}

(* Per-segment path bookkeeping, 1 B per segment, grown on demand. This
   is transport-side state (like the sender's segment records), not
   balancer state: REPS itself never remembers per-packet anything. *)
let no_path = 255

let seg_path_get cell seq =
  let b = !cell in
  if seq >= 0 && seq < Bytes.length b then
    match Char.code (Bytes.get b seq) with
    | p when p = no_path -> None
    | p -> Some p
  else None

let seg_path_set cell seq p =
  let b = !cell in
  let n = Bytes.length b in
  if seq >= n then begin
    let b' = Bytes.make (max (2 * n) (seq + 1)) (Char.chr no_path) in
    Bytes.blit b 0 b' 0 n;
    cell := b'
  end;
  Bytes.set !cell seq (Char.chr p)

(* Same non-blocking pump discipline as the unipath glue: the sender core
   may run from an engine callback (RTO timer) where [Driver.send] —
   which can sleep on a full transmit queue — is off limits, so PDUs are
   enqueued with their path and a dedicated process performs the sends
   in order. *)
let make_mp_pump eng host ~vcis ~name =
  let q = Queue.create () in
  let nonempty = Signal.create eng in
  Process.spawn eng ~name (fun () ->
      let rec loop () =
        match Queue.take_opt q with
        | Some (path, bytes) ->
            let len = Bytes.length bytes in
            let m = Msg.alloc host.Host.vs ~len () in
            Msg.blit_into m ~off:0 ~src:bytes;
            Driver.send host.Host.driver ~vci:vcis.(path) ~from_user:false m;
            loop ()
        | None ->
            Signal.wait nonempty;
            loop ()
      in
      loop ());
  fun path bytes ->
    Queue.add (path, bytes) q;
    Signal.broadcast nonempty

let connect ?name:(nm = "mp") ?(config = Sender.default_config)
    ?(on_state = fun _ -> ()) ?(mode = Reps) ?limit ?seed ?fifo topo ~src
    ~dst ~deliver () =
  let mv = Network.open_vc_paths ?limit topo ~src ~dst in
  let ack_vc = Network.open_vc topo ~src:dst ~dst:src in
  let np = Array.length mv.Network.src_vcis in
  if np > no_path then invalid_arg "Spray.connect: more than 254 paths";
  let src_host = Network.host topo src in
  let dst_host = Network.host topo dst in
  let eng = src_host.Host.eng in
  let reps =
    match mode with
    | Reps ->
        let seed =
          match seed with Some s -> s | None -> (src * 8191) + dst
        in
        Some (Reps.create ?fifo ~seed ~npaths:np ())
    | Static_hash | Single -> None
  in
  (* The strawman: one hash-chosen path for the connection's lifetime,
     the way VCI-hashed ECMP would pin it. A real avalanche mix, so
     collisions are the honest birthday kind, not artifacts of the
     modulus. *)
  let static_path =
    let h = (src * 0x9e3779b1) lxor (dst * 0x85ebca6b) in
    let h = h lxor (h lsr 13) in
    let h = h * 0xc2b2ae35 in
    let h = h lxor (h lsr 16) in
    h land max_int mod np
  in
  let stats = { garbled = 0 } in
  let seg_paths = ref (Bytes.make 256 (Char.chr no_path)) in
  let sends = Array.make np 0 in
  let last_send = Array.make np Time.zero in
  let data_pump =
    make_mp_pump eng src_host ~vcis:mv.Network.src_vcis ~name:(nm ^ ".data")
  in
  let ack_pump =
    make_mp_pump eng dst_host
      ~vcis:[| ack_vc.Network.src_vci |]
      ~name:(nm ^ ".ack")
  in
  let sender =
    Sender.create eng ~name:(nm ^ ".snd") ~config ~on_state
      ?on_timeout:
        (match reps with
        | Some r -> Some (fun () -> Reps.on_timeout r)
        | None -> None)
      ~tx:(fun ~seq ~retransmit payload ->
        let p =
          match (mode, reps) with
          | Reps, Some r -> (
              (* A retransmission is the loss signal for the path the
                 original took: purge its recycled entropy first, and
                 never send the retry on the very path that just lost
                 it (the purge rules out recycled and cached picks, but
                 a fresh explore pick can still collide). *)
              match (retransmit, seg_path_get seg_paths seq) with
              | true, Some old ->
                  Reps.on_loss r ~path:old;
                  let p = Reps.pick r in
                  if p <> old then p
                  else
                    let p = Reps.pick r in
                    if p <> old then p else (old + 1) mod np
              | _ -> Reps.pick r)
          | Static_hash, _ -> static_path
          | (Single | Reps), _ -> 0
        in
        seg_path_set seg_paths seq p;
        sends.(p) <- sends.(p) + 1;
        last_send.(p) <- Engine.now eng;
        data_pump p (Wire.encode_data ~seq payload))
      ()
  in
  (* Which VCI fired tells the receiver the path; the ack it emits
     synchronously from [on_data] echoes that as its entropy byte. *)
  let cur_path = ref 0 in
  let receiver =
    Receiver.create ~name:(nm ^ ".rcv") ~window:config.Sender.window
      ~deliver:(fun ~seq:_ payload -> deliver payload)
      ~tx_ack:(fun ~ack ~sack ~ece ->
        ack_pump 0 (Wire.encode_ack_mp ~ack ~sack ~ece ~entropy:!cur_path))
      ()
  in
  Array.iteri
    (fun p vci ->
      Demux.bind dst_host.Host.demux ~vci
        ~name:(Printf.sprintf "%s.data%d" nm p)
        (fun ~vci:_ msg ->
          let b = Msg.read_all msg in
          let marked = Msg.marked msg in
          Msg.dispose msg;
          match Wire.decode_data b with
          | Ok (seq, payload) ->
              cur_path := p;
              Receiver.on_data receiver ~seq ~marked payload
          | Error _ -> stats.garbled <- stats.garbled + 1))
    mv.Network.dst_vcis;
  Demux.bind src_host.Host.demux ~vci:ack_vc.Network.dst_vci
    ~name:(nm ^ ".ack")
    (fun ~vci:_ msg ->
      let b = Msg.read_all msg in
      Msg.dispose msg;
      match Wire.decode_ack_mp b with
      | Ok (ack, sack, ece, entropy) ->
          (* Recycle the entropy before the ack can pump new segments,
             so those picks already see it. *)
          (match reps with
          | Some r -> Reps.on_ack r ~path:entropy ~ece
          | None -> ());
          Sender.on_ack sender ~ack ~sack ~ece
      | Error _ -> stats.garbled <- stats.garbled + 1);
  {
    eng;
    name = nm;
    mode;
    reps;
    sender;
    receiver;
    mv;
    np;
    seg_paths;
    sends;
    last_send;
    stats;
  }

let send t data = Sender.offer t.sender data
let close t = Sender.close t.sender
let state t = Sender.state t.sender
let sender t = t.sender
let receiver t = t.receiver
let reps t = t.reps
let npaths t = t.np
let mvc t = t.mv
let path_of_seg t seq = seg_path_get t.seg_paths seq
let sends t p = t.sends.(p)
let last_send t p = t.last_send.(p)
let garbled t = t.stats.garbled

let invariants t =
  let errs =
    Sender.invariants t.sender
    @ Receiver.invariants t.receiver
    @ (match t.reps with
      | Some r -> Reps.invariants r
      | None -> [])
  in
  let total = Array.fold_left ( + ) 0 t.sends in
  if total <> (Sender.stats t.sender).Sender.transmissions then
    errs
    @ [
        Printf.sprintf "%s: per-path sends %d <> transmissions %d" t.name
          total (Sender.stats t.sender).Sender.transmissions;
      ]
  else errs
