type t = {
  scan : string list;
  own : (string * string list) list;
  shared : string list;
  accessors : string list;
  allow : (string * string list) list;
}

let empty = { scan = []; own = []; shared = []; accessors = []; allow = [] }

let add_assoc l key v =
  match List.assoc_opt key l with
  | Some vs -> (key, vs @ [ v ]) :: List.remove_assoc key l
  | None -> l @ [ (key, [ v ]) ]

let of_string s =
  let lines = String.split_on_char '\n' s in
  let parse (n, t) line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let words =
      List.filter
        (fun w -> w <> "")
        (String.split_on_char ' ' (String.trim line))
    in
    let t =
      match words with
      | [] -> t
      | [ "scan"; dir ] -> { t with scan = t.scan @ [ dir ] }
      | "own" :: field :: (_ :: _ as files) ->
          { t with own = List.fold_left (fun o f -> add_assoc o field f) t.own files }
      | [ "shared"; field ] -> { t with shared = t.shared @ [ field ] }
      | [ "accessor"; file ] -> { t with accessors = t.accessors @ [ file ] }
      | [ "allow"; rule; file ] -> { t with allow = add_assoc t.allow rule file }
      | (("scan" | "own" | "shared" | "accessor" | "allow") as w) :: _ ->
          failwith
            (Printf.sprintf "olint policy line %d: malformed '%s' directive" n w)
      | w :: _ ->
          failwith
            (Printf.sprintf "olint policy line %d: unknown directive '%s'" n w)
    in
    (n + 1, t)
  in
  snd (List.fold_left parse (1, empty) lines)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* Compare by whole trailing path components: "lib/board/desc_queue.ml"
   matches "/root/repo/lib/board/desc_queue.ml" and "desc_queue.ml", but
   not "my_desc_queue.ml". *)
let path_matches policy_path file =
  let split p = List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' p) in
  let rec is_suffix suf l =
    if List.length l < List.length suf then false
    else if List.length l = List.length suf then suf = l
    else match l with [] -> false | _ :: tl -> is_suffix suf tl
  in
  is_suffix (split policy_path) (split file)

let owners t field =
  match List.assoc_opt field t.own with
  | Some files -> Some files
  | None -> if List.mem field t.shared then Some t.accessors else None

let exempt t ~rule ~file =
  match List.assoc_opt rule t.allow with
  | None -> false
  | Some files -> List.exists (fun p -> path_matches p file) files
