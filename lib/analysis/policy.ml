type t = {
  scan : string list;
  own : (string * string list) list;
  shared : string list;
  accessors : string list;
  allow : (string * string list) list;
  hot : (string * string) list;
  alloc_free : string list;
  sim_time : string list;
  wall_clock : string list;
  clock_conversion : string list;
  coverage_fns : string list;
  uncovered : string list;
}

let empty =
  {
    scan = [];
    own = [];
    shared = [];
    accessors = [];
    allow = [];
    hot = [];
    alloc_free = [];
    sim_time = [];
    wall_clock = [];
    clock_conversion = [];
    coverage_fns = [];
    uncovered = [];
  }

let add_assoc l key v =
  match List.assoc_opt key l with
  | Some vs -> (key, vs @ [ v ]) :: List.remove_assoc key l
  | None -> l @ [ (key, [ v ]) ]

(* The exemption rule keys R2/R3/R4 understand; anything else in an
   'allow' line is a typo that would silently exempt nothing. *)
let allow_keys = [ "obj"; "catchall"; "exit"; "no-mli" ]

let of_string s =
  let lines = String.split_on_char '\n' s in
  let parse (n, t) line =
    let code, comment =
      match String.index_opt line '#' with
      | Some i ->
          ( String.sub line 0 i,
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          )
      | None -> (line, "")
    in
    let words =
      List.filter
        (fun w -> w <> "")
        (String.split_on_char ' ' (String.trim code))
    in
    (* Exemption directives carry a trailing justification comment or
       they do not parse: an unexplained escape hatch is exactly the
       kind of reviewed-not-checked convention this file exists to
       kill. *)
    let justified directive =
      if comment = "" then
        failwith
          (Printf.sprintf
             "olint policy line %d: '%s' exemption needs a trailing '# why' \
              justification comment"
             n directive)
    in
    let t =
      match words with
      | [] -> t
      | [ "scan"; dir ] -> { t with scan = t.scan @ [ dir ] }
      | "own" :: field :: (_ :: _ as files) ->
          {
            t with
            own = List.fold_left (fun o f -> add_assoc o field f) t.own files;
          }
      | [ "shared"; field ] -> { t with shared = t.shared @ [ field ] }
      | [ "accessor"; file ] -> { t with accessors = t.accessors @ [ file ] }
      | [ "allow"; rule; file ] ->
          if not (List.mem rule allow_keys) then
            failwith
              (Printf.sprintf
                 "olint policy line %d: unknown 'allow' rule key '%s' (valid: \
                  %s)"
                 n rule
                 (String.concat " " allow_keys));
          justified "allow";
          { t with allow = add_assoc t.allow rule file }
      | [ "hot"; spec ] -> (
          match String.index_opt spec ':' with
          | Some i when i > 0 && i < String.length spec - 1 ->
              let file = String.sub spec 0 i in
              let fn = String.sub spec (i + 1) (String.length spec - i - 1) in
              { t with hot = t.hot @ [ (file, fn) ] }
          | _ ->
              failwith
                (Printf.sprintf
                   "olint policy line %d: 'hot' wants <file>:<function>" n))
      | [ "alloc-free"; name ] ->
          justified "alloc-free";
          { t with alloc_free = t.alloc_free @ [ name ] }
      | [ "sim-time"; name ] -> { t with sim_time = t.sim_time @ [ name ] }
      | [ "wall-clock"; name ] ->
          { t with wall_clock = t.wall_clock @ [ name ] }
      | [ "clock-conversion"; name ] ->
          { t with clock_conversion = t.clock_conversion @ [ name ] }
      | [ "coverage-fn"; name ] ->
          { t with coverage_fns = t.coverage_fns @ [ name ] }
      | [ "uncovered"; name ] ->
          justified "uncovered";
          { t with uncovered = t.uncovered @ [ name ] }
      | (( "scan" | "own" | "shared" | "accessor" | "allow" | "hot"
         | "alloc-free" | "sim-time" | "wall-clock" | "clock-conversion"
         | "coverage-fn" | "uncovered" ) as w)
        :: _ ->
          failwith
            (Printf.sprintf "olint policy line %d: malformed '%s' directive" n
               w)
      | w :: _ ->
          failwith
            (Printf.sprintf "olint policy line %d: unknown directive '%s'" n w)
    in
    (n + 1, t)
  in
  snd (List.fold_left parse (1, empty) lines)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* Compare by whole trailing path components: "lib/board/desc_queue.ml"
   matches "/root/repo/lib/board/desc_queue.ml" and "desc_queue.ml", but
   not "my_desc_queue.ml". *)
let path_matches policy_path file =
  let split p =
    List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' p)
  in
  let rec is_suffix suf l =
    if List.length l < List.length suf then false
    else if List.length l = List.length suf then suf = l
    else match l with [] -> false | _ :: tl -> is_suffix suf tl
  in
  is_suffix (split policy_path) (split file)

let owners t field =
  match List.assoc_opt field t.own with
  | Some files -> Some files
  | None -> if List.mem field t.shared then Some t.accessors else None

let exempt t ~rule ~file =
  match List.assoc_opt rule t.allow with
  | None -> false
  | Some files -> List.exists (fun p -> path_matches p file) files

let hot_functions t ~file =
  List.filter_map
    (fun (f, fn) -> if path_matches f file then Some fn else None)
    t.hot

let is_hot t ~file ~fn = List.mem fn (hot_functions t ~file)

let uncovered_ok t name = List.mem name t.uncovered
