(** The checked-in lint policy ([olint.policy] at the repo root).

    The policy is the machine-checked statement of the project's
    interface discipline: which source files own which mutable fields of
    the host/board shared state (paper §3.1's one-writer-per-pointer
    rule), which modules are the declared accessors of board-visible
    state, which directories are scanned, and the (normally empty)
    per-file exemption lists. New modules opt in by appearing under a
    [scan] root; new shared state opts in with [own]/[shared] lines —
    nothing is implicit.

    Line-oriented syntax, [#] comments:
    {v
    scan lib                       # directory root to lint (repeatable)
    own head lib/board/desc_queue.ml   # field 'head': only this file may `<-` it
    shared irq_filter              # field mutable only in accessor files
    accessor lib/board/board.ml    # declared accessor of shared state
    allow catchall lib/foo.ml      # exempt file from rule key
    allow exit lib/foo.ml          #   keys: catchall exit obj no-mli
    v} *)

type t = {
  scan : string list;  (** directory roots to lint *)
  own : (string * string list) list;
      (** field name → files allowed to mutate it (single-writer rule) *)
  shared : string list;  (** fields mutable only inside accessor files *)
  accessors : string list;  (** declared accessor files of shared state *)
  allow : (string * string list) list;  (** rule key → exempt files *)
}

val empty : t

val of_string : string -> t
(** Parse policy text. Raises [Failure] with a [line N:] prefix on
    malformed directives. *)

val load : string -> t
(** [of_string] on a file's contents. Raises [Sys_error] if unreadable. *)

val path_matches : string -> string -> bool
(** [path_matches policy_path file]: does [file] refer to the policy's
    path, comparing by whole trailing components so the lint works from
    any invocation directory? *)

val owners : t -> string -> string list option
(** Files allowed to mutate the field: [Some] of the [own] list, [Some]
    accessors for a [shared] field, [None] when the policy says nothing
    about the field. *)

val exempt : t -> rule:string -> file:string -> bool
