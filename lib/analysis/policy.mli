(** The checked-in lint policy ([olint.policy] at the repo root).

    The policy is the machine-checked statement of the project's
    interface discipline: which source files own which mutable fields of
    the host/board shared state (paper §3.1's one-writer-per-pointer
    rule), which modules are the declared accessors of board-visible
    state, which directories are scanned, which functions form the
    allocation-certified hot set, which names are clock-domain sources,
    and the (normally empty) per-file exemption lists. New modules opt
    in by appearing under a [scan] root; new shared state opts in with
    [own]/[shared] lines — nothing is implicit.

    Line-oriented syntax, [#] comments:
    {v
    scan lib                       # directory root to lint (repeatable)
    own head lib/board/desc_queue.ml   # field 'head': only this file may `<-` it
    shared irq_filter              # field mutable only in accessor files
    accessor lib/board/board.ml    # declared accessor of shared state
    allow catchall lib/foo.ml      # justification required after the '#'
                                   #   keys: catchall exit obj no-mli
    hot lib/sim/wheel.ml:add       # R5: must be transitively allocation-free
    alloc-free Metrics.incr        # R5: certified external callee (# why)
    sim-time Engine.now            # R6: produces simulated time
    wall-clock Unix.gettimeofday   # R6: produces wall-clock time
    clock-conversion Time.to_float_s  # R6: named conversion, launders taint
    coverage-fn conservation       # R7: function counted as a conservation read
    uncovered sar.cells_pushed     # R7: counter exempt from coverage (# why)
    v}

    Exemption directives ([allow], [alloc-free], [uncovered]) must carry
    a trailing [# justification] comment or the policy does not parse. *)

type t = {
  scan : string list;  (** directory roots to lint *)
  own : (string * string list) list;
      (** field name → files allowed to mutate it (single-writer rule) *)
  shared : string list;  (** fields mutable only inside accessor files *)
  accessors : string list;  (** declared accessor files of shared state *)
  allow : (string * string list) list;  (** rule key → exempt files *)
  hot : (string * string) list;
      (** R5 hot set: (file, function) pairs that must be transitively
          allocation-free *)
  alloc_free : string list;
      (** R5: external callees certified allocation-free (["Module.fn"]
          or bare operator names) *)
  sim_time : string list;  (** R6: simulated-time sources (["Module.fn"]) *)
  wall_clock : string list;  (** R6: wall-clock sources *)
  clock_conversion : string list;
      (** R6: named conversions whose application launders clock taint *)
  coverage_fns : string list;
      (** R7: function names whose bodies count as conservation reads *)
  uncovered : string list;
      (** R7: counter names exempt from conservation coverage *)
}

val empty : t

val of_string : string -> t
(** Parse policy text. Raises [Failure] with a [line N:] prefix on
    malformed directives, unknown [allow] rule keys, and exemption lines
    missing their justification comment. *)

val load : string -> t
(** [of_string] on a file's contents. Raises [Sys_error] if unreadable. *)

val path_matches : string -> string -> bool
(** [path_matches policy_path file]: does [file] refer to the policy's
    path, comparing by whole trailing components so the lint works from
    any invocation directory? *)

val owners : t -> string -> string list option
(** Files allowed to mutate the field: [Some] of the [own] list, [Some]
    accessors for a [shared] field, [None] when the policy says nothing
    about the field. *)

val exempt : t -> rule:string -> file:string -> bool

val hot_functions : t -> file:string -> string list
(** Hot-set entries whose file component matches [file]. *)

val is_hot : t -> file:string -> fn:string -> bool

val uncovered_ok : t -> string -> bool
(** Is the counter name exempt from R7 conservation coverage? *)
