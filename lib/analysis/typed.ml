(* Typed analysis passes over the compiler's .cmt artifacts.

   The syntactic lint (R1–R4, {!Lint}) answers "who writes this field";
   these passes answer questions that need types and resolved paths:

   - R5: is this hot-path function transitively allocation-free?
   - R6: does simulated time ever mix arithmetically with wall-clock
     time without a named conversion?
   - R7: is every registered metrics counter read by a conservation or
     invariant check?

   The input is the set of .cmt files the normal dune build already
   produces (dune always compiles with -bin-annot), so the passes see
   exactly what the compiler saw: resolved paths through module
   aliases, inferred types for boxing decisions, and attributes for the
   escape hatches. Nothing here re-runs the typechecker — a .cmt is
   loaded, walked, and dropped. *)

type violation = Lint.violation = {
  rule : string;
  file : string;
  line : int;
  message : string;
}

(* ------------------------------------------------------------------ *)
(* Module index: every loaded implementation .cmt, addressable by the
   short module name so cross-module calls resolve. *)

type modul = {
  m_modname : string;  (* "Osiris_sim__Wheel" *)
  m_key : string;  (* "Wheel" *)
  m_source : string;  (* "lib/sim/wheel.ml" *)
  m_fns : (string * Typedtree.expression) list;  (* top-level lets *)
  m_aliases : (string * string list) list;
      (* local [module M = Path] bindings, name → target path elements *)
  m_structure : Typedtree.structure;
}

(* "Osiris_sim__Wheel" → "Wheel"; "Stdlib__Hashtbl" → "Hashtbl";
   "Osiris_sim__" → "" (the wrapper alias module itself). *)
let strip_lib_prefix name =
  let n = String.length name in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if name.[i] = '_' && name.[i + 1] = '_' then last_sep (i + 1) (Some i)
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some i when i + 2 < n -> String.sub name (i + 2) (n - i - 2)
  | Some _ -> "" (* trailing "__": a wrapper alias module *)
  | None -> name

let rec path_elems (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_elems p @ [ s ]
  | Path.Papply (a, _) -> path_elems a
  | _ -> []

let line_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

(* Top-level value bindings of a structure: the functions the analyses
   can resolve calls into. *)
let index_structure (str : Typedtree.structure) =
  let fns = ref [] and aliases = ref [] in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match vb.vb_pat.pat_desc with
              | Typedtree.Tpat_var (id, _) ->
                  fns := (Ident.name id, vb.vb_expr) :: !fns
              | _ -> ())
            vbs
      | Typedtree.Tstr_module mb -> (
          match (mb.mb_id, mb.mb_expr.mod_desc) with
          | Some id, Typedtree.Tmod_ident (path, _) ->
              aliases := (Ident.name id, path_elems path) :: !aliases
          | _ -> ())
      | _ -> ())
    str.str_items;
  (List.rev !fns, List.rev !aliases)

let load_cmt file =
  match Cmt_format.read_cmt file with
  | exception _ -> None
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some source ->
          let fns, aliases = index_structure str in
          Some
            {
              m_modname = cmt.Cmt_format.cmt_modname;
              m_key = strip_lib_prefix cmt.Cmt_format.cmt_modname;
              m_source = source;
              m_fns = fns;
              m_aliases = aliases;
              m_structure = str;
            }
      | _ -> None)

(* Walk [root] for .cmt files. Unlike the source walk this must descend
   into dot-directories: dune keeps artifacts under .objs. *)
let rec walk_cmts dir =
  if not (Sys.is_directory dir) then
    if Filename.check_suffix dir ".cmt" then [ dir ] else []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry -> walk_cmts (Filename.concat dir entry))

type index = {
  policy : Policy.t;
  mods : modul list;
  by_key : (string, modul list) Hashtbl.t;
  scanned : modul list;  (* modules whose source lives under a scan root *)
}

let lib_prefix modname =
  match String.index_opt modname '_' with
  | Some _ -> (
      (* prefix up to and including the "__" separator, if any *)
      let rec find i =
        if i + 1 >= String.length modname then None
        else if modname.[i] = '_' && modname.[i + 1] = '_' then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i -> Some (String.sub modname 0 i)
      | None -> None)
  | None -> None

(* Resolve a short module key from [caller]: prefer a sibling of the
   caller's own library, else a unique match anywhere. *)
let find_module idx ~caller key =
  match Hashtbl.find_opt idx.by_key key with
  | None -> None
  | Some [ m ] -> Some m
  | Some ms -> (
      match lib_prefix caller.m_modname with
      | Some p -> (
          match
            List.find_opt (fun m -> lib_prefix m.m_modname = Some p) ms
          with
          | Some m -> Some m
          | None -> None)
      | None -> None)

let under_scan policy source =
  List.exists
    (fun root ->
      let root = if Filename.check_suffix root "/" then root else root ^ "/" in
      String.length source > String.length root
      && String.sub source 0 (String.length root) = root)
    policy.Policy.scan

let build_index policy ~cmt_root =
  let mods = List.filter_map load_cmt (walk_cmts cmt_root) in
  let by_key = Hashtbl.create 97 in
  List.iter
    (fun m ->
      if m.m_key <> "" then
        Hashtbl.replace by_key m.m_key
          (m :: (Option.value ~default:[] (Hashtbl.find_opt by_key m.m_key))))
    mods;
  let scanned =
    List.filter (fun m -> under_scan policy m.m_source) mods
  in
  { policy; mods; by_key; scanned }

(* ------------------------------------------------------------------ *)
(* Attributes: the justified escape hatches. *)

let attr_payload_string (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Parsetree.Pstr_eval
              ( { pexp_desc = Parsetree.Pexp_constant (Pconst_string (s, _, _));
                  _ },
                _ );
          _;
        };
      ] ->
      Some s
  | _ -> None

(* [None] — no such attribute; [Some (Some why)] — justified;
   [Some None] — attribute present but missing its justification. *)
let escape_hatch name (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (attr : Parsetree.attribute) ->
      if attr.attr_name.txt = name then Some (attr_payload_string attr)
      else acc)
    None attrs

(* ------------------------------------------------------------------ *)
(* R5 — hot-path allocation freedom. *)

(* External callees certified allocation-free without analysis: integer
   and comparison primitives, array/bytes indexing, and the handful of
   Stdlib entry points that only read or overwrite. Everything else an
   uncertified external call must be justified in the policy
   (alloc-free) or at the call site ([@osiris.alloc_ok "why"]). *)
let builtin_alloc_free =
  [
    "+"; "-"; "*"; "/"; "mod"; "abs"; "land"; "lor"; "lxor"; "lnot"; "lsl";
    "lsr"; "asr"; "~-"; "~+"; "succ"; "pred"; "="; "<>"; "<"; ">"; "<="; ">=";
    "=="; "!="; "not"; "&&"; "||"; "min"; "max"; "compare"; "ignore"; "fst";
    "snd"; "incr"; "decr"; "!"; ":="; "int_of_float"; "truncate"; "raise";
    "raise_notrace"; "int_of_char"; "char_of_int";
    (* %floatofint and float arithmetic are primitives whose results
       stay unboxed in arithmetic/store context; a result that escapes
       into a binding is reported separately by the boxed-binding rule *)
    "float_of_int"; "+."; "-."; "*."; "/."; "~-.";
    "Array.length"; "Array.get"; "Array.set"; "Array.unsafe_get";
    "Array.unsafe_set"; "Array.fill"; "Array.blit";
    "Bytes.length"; "Bytes.get"; "Bytes.set"; "Bytes.unsafe_get";
    "Bytes.unsafe_set"; "Bytes.blit"; "Bytes.blit_string"; "Bytes.fill";
    "String.length"; "String.get"; "String.unsafe_get";
    "Char.code"; "Char.chr"; "Int.equal"; "Int.compare";
    "Hashtbl.find"; "Hashtbl.mem"; "Hashtbl.remove"; "Hashtbl.length";
    "Float.of_int"; "Float.to_int";
  ]

(* Normalize a resolved call path to ("Mod", "fn") / ("", "fn"),
   resolving local [module M = ...] aliases and dropping library
   wrapper components. *)
let normalize_call (m : modul) elems =
  let elems =
    match elems with
    | head :: rest -> (
        match List.assoc_opt head m.m_aliases with
        | Some target -> target @ rest
        | None -> elems)
    | [] -> []
  in
  let rec split acc = function
    | [] -> (acc, "")
    | [ v ] -> (acc, v)
    | e :: tl -> split (acc @ [ e ]) tl
  in
  let mods, v = split [] elems in
  let mods =
    List.filter_map
      (fun e ->
        let s = strip_lib_prefix e in
        if s = "" || s = "Stdlib" || e = "Stdlib" then None else Some s)
      mods
  in
  match List.rev mods with [] -> ("", v) | last :: _ -> (last, v)

let display_name (mk, v) = if mk = "" then v else mk ^ "." ^ v

(* The number of boxed-number types whose bindings we flag. *)
let is_boxed_number (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      Path.same p Predef.path_float
      || Path.same p Predef.path_int32
      || Path.same p Predef.path_int64
      || Path.same p Predef.path_nativeint
  | _ -> false

type r5 = {
  idx : index;
  mutable root : string;  (* "lib/sim/wheel.ml:add", for messages *)
  r5_violations : violation list ref;
  visited : (string, unit) Hashtbl.t;  (* modname ^ "." ^ fn *)
}

(* Strip the curried parameter spine of a definition: the outer
   Texp_function chain is the function's own arrows, not a closure
   allocated on the hot path. A multi-case outer [function] contributes
   every arm's body. *)
let rec fn_bodies (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function { cases = [ { c_rhs; _ } ]; _ } -> fn_bodies c_rhs
  | Typedtree.Texp_function { cases; _ } ->
      List.map (fun (c : Typedtree.value Typedtree.case) -> c.c_rhs) cases
  | _ -> [ e ]

let rec r5_check_fn st (m : modul) fn_name (body : Typedtree.expression) =
  let key = m.m_modname ^ "." ^ fn_name in
  if not (Hashtbl.mem st.visited key) then begin
    Hashtbl.replace st.visited key ();
    List.iter (r5_expr st m fn_name) (fn_bodies body)
  end

and r5_add st m fn ~loc what =
  st.r5_violations :=
    {
      rule = "R5";
      file = m.m_source;
      line = line_of_loc loc;
      message =
        Printf.sprintf "%s in `%s' (hot via %s)" what fn st.root;
    }
    :: !(st.r5_violations)

(* One expression of a hot function body. Sub-expressions are walked
   explicitly so a justified [@osiris.alloc_ok] can prune its whole
   subtree. *)
and r5_expr st m fn (e : Typedtree.expression) =
  match escape_hatch "osiris.alloc_ok" e.exp_attributes with
  | Some (Some _why) -> () (* justified: site accepted, subtree pruned *)
  | Some None ->
      r5_add st m fn ~loc:e.exp_loc
        "[@osiris.alloc_ok] without a justification string"
  | None -> (
      let recurse () = r5_children st m fn e in
      match e.exp_desc with
      | Typedtree.Texp_function _ ->
          r5_add st m fn ~loc:e.exp_loc "closure construction"
      | Typedtree.Texp_tuple _ ->
          r5_add st m fn ~loc:e.exp_loc "tuple construction";
          recurse ()
      | Typedtree.Texp_record _ ->
          r5_add st m fn ~loc:e.exp_loc "record construction";
          recurse ()
      | Typedtree.Texp_array _ ->
          r5_add st m fn ~loc:e.exp_loc "array construction";
          recurse ()
      | Typedtree.Texp_construct (_, cd, args) when args <> [] ->
          r5_add st m fn ~loc:e.exp_loc
            (Printf.sprintf "allocating constructor %s" cd.cstr_name);
          recurse ()
      | Typedtree.Texp_variant (_, Some _) ->
          r5_add st m fn ~loc:e.exp_loc "polymorphic variant allocation";
          recurse ()
      | Typedtree.Texp_lazy _ | Typedtree.Texp_object _
      | Typedtree.Texp_pack _ ->
          r5_add st m fn ~loc:e.exp_loc "lazy/object/module allocation"
      | Typedtree.Texp_letop _ ->
          r5_add st m fn ~loc:e.exp_loc "binding-operator allocation"
      | Typedtree.Texp_let (_, vbs, body) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              (match escape_hatch "osiris.alloc_ok" vb.vb_attributes with
              | Some (Some _) -> ()
              | Some None ->
                  r5_add st m fn ~loc:vb.vb_loc
                    "[@osiris.alloc_ok] without a justification string"
              | None ->
                  (match vb.vb_expr.exp_desc with
                  | Typedtree.Texp_constant _ | Typedtree.Texp_ident _ -> ()
                  | _ ->
                      if is_boxed_number vb.vb_expr.exp_type then
                        r5_add st m fn ~loc:vb.vb_loc
                          "boxed float/int64 binding");
                  r5_expr st m fn vb.vb_expr))
            vbs;
          r5_expr st m fn body
      | Typedtree.Texp_match (scrut, cases, _) ->
          (* [match a, b with ...] never builds the tuple: the compiler
             matches the components in place. Only a tuple that escapes
             the immediate scrutinee position allocates. *)
          (match scrut.exp_desc with
          | Typedtree.Texp_tuple els -> List.iter (r5_expr st m fn) els
          | _ -> r5_expr st m fn scrut);
          List.iter
            (fun (c : Typedtree.computation Typedtree.case) ->
              Option.iter (r5_expr st m fn) c.c_guard;
              r5_expr st m fn c.c_rhs)
            cases
      | Typedtree.Texp_apply (f, args) ->
          if List.exists (fun (_, a) -> a = None) args then
            r5_add st m fn ~loc:e.exp_loc "partial application";
          (match f.exp_desc with
          | Typedtree.Texp_ident (path, _, _) ->
              r5_call st m fn ~loc:e.exp_loc (path_elems path)
          | _ ->
              r5_add st m fn ~loc:e.exp_loc
                "call through a computed function value";
              r5_expr st m fn f);
          List.iter
            (fun (_, a) -> match a with Some a -> r5_expr st m fn a | None -> ())
            args
      | _ -> recurse ())

and r5_call st m fn ~loc elems =
  match elems with
  | [ name ] -> (
      (* Unqualified: a sibling top-level function, or a local value. *)
      match List.assoc_opt name m.m_fns with
      | Some body -> r5_check_fn st m name body
      | None ->
          if
            not
              (List.mem name builtin_alloc_free
              || List.mem name st.idx.policy.Policy.alloc_free)
          then
            r5_add st m fn ~loc
              (Printf.sprintf
                 "call through local function value `%s' (not certifiable)"
                 name))
  | _ -> (
      let mk, v = normalize_call m elems in
      let name = display_name (mk, v) in
      let certified =
        List.mem name builtin_alloc_free
        || List.mem v builtin_alloc_free
        || List.mem name st.idx.policy.Policy.alloc_free
        || List.mem v st.idx.policy.Policy.alloc_free
      in
      if not certified then
        match find_module st.idx ~caller:m mk with
        | Some target -> (
            match List.assoc_opt v target.m_fns with
            | Some body -> r5_check_fn st target v body
            | None ->
                r5_add st m fn ~loc
                  (Printf.sprintf
                     "call into `%s': no analyzable definition (extern or \
                      re-export); certify with 'alloc-free' or \
                      [@osiris.alloc_ok \"why\"]"
                     name))
        | None ->
            r5_add st m fn ~loc
              (Printf.sprintf
                 "call into non-allocation-certified function `%s'" name))

and r5_children st m fn (e : Typedtree.expression) =
  (* Generic traversal that funnels every sub-expression back through
     [r5_expr], so pruning and checks stay consistent. *)
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ sub -> r5_expr st m fn sub);
    }
  in
  Tast_iterator.default_iterator.expr it e

let check_r5 idx =
  let st =
    { idx; root = ""; r5_violations = ref []; visited = Hashtbl.create 97 }
  in
  let missing = ref [] in
  List.iter
    (fun (file, fn) ->
      st.root <- file ^ ":" ^ fn;
      match
        List.find_opt (fun m -> Policy.path_matches file m.m_source) idx.mods
      with
      | None ->
          missing :=
            {
              rule = "R5";
              file;
              line = 1;
              message =
                Printf.sprintf
                  "hot entry %s: no .cmt for this file (stale policy entry, \
                   or the tree was not built)"
                  st.root;
            }
            :: !missing
      | Some m -> (
          match List.assoc_opt fn m.m_fns with
          | None ->
              missing :=
                {
                  rule = "R5";
                  file = m.m_source;
                  line = 1;
                  message =
                    Printf.sprintf
                      "hot entry %s: no top-level function `%s' in %s"
                      st.root fn m.m_source;
                }
                :: !missing
          | Some body -> r5_check_fn st m fn body))
    idx.policy.Policy.hot;
  !missing @ !(st.r5_violations)

(* ------------------------------------------------------------------ *)
(* R6 — clock-domain taint. *)

type domain = Sim | Wall

let arith_ops =
  [
    "+"; "-"; "*"; "/"; "mod"; "+."; "-."; "*."; "/."; "min"; "max"; "=";
    "<>"; "<"; ">"; "<="; ">="; "compare";
    (* Numeric casts preserve the clock domain: they are how simulated
       nanoseconds (int) and wall-clock seconds (float) end up in the
       same numeric type in the first place. Single-argument, so they
       can only propagate a domain, never themselves mix two. *)
    "int_of_float"; "float_of_int"; "truncate"; "Float.of_int";
    "Float.to_int"; "Int.of_float"; "Int.to_float";
  ]

type r6 = {
  r6_policy : Policy.t;
  r6_violations : violation list ref;
  (* let-bound variables known to carry a clock domain, by Ident name;
     scoping is approximated (a lint, not a proof) *)
  env : (string, domain) Hashtbl.t;
}

let r6_source st (m : modul) elems =
  let name = display_name (normalize_call m elems) in
  if List.mem name st.r6_policy.Policy.sim_time then Some Sim
  else if List.mem name st.r6_policy.Policy.wall_clock then Some Wall
  else None

let r6_is_conversion st m elems =
  List.mem
    (display_name (normalize_call m elems))
    st.r6_policy.Policy.clock_conversion

(* The clock domain an expression evaluates in, if the lint can tell. *)
let rec r6_domain st m (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) ->
      Hashtbl.find_opt st.env (Ident.name id)
  | Typedtree.Texp_apply (f, args) -> (
      match f.exp_desc with
      | Typedtree.Texp_ident (path, _, _) -> (
          let elems = path_elems path in
          match r6_source st m elems with
          | Some d -> Some d
          | None ->
              if r6_is_conversion st m elems then None
              else
                let name = display_name (normalize_call m elems) in
                if List.mem name arith_ops then
                  (* propagate through arithmetic *)
                  List.fold_left
                    (fun acc (_, a) ->
                      match (acc, a) with
                      | Some d, _ -> Some d
                      | None, Some a -> r6_domain st m a
                      | None, None -> None)
                    None args
                else None)
      | _ -> None)
  | Typedtree.Texp_let (_, _, body) -> r6_domain st m body
  | Typedtree.Texp_sequence (_, e) -> r6_domain st m e
  | _ -> None

let r6_walk st (m : modul) fn_name body =
  let add ~loc msg =
    st.r6_violations :=
      {
        rule = "R6";
        file = m.m_source;
        line = line_of_loc loc;
        message = Printf.sprintf "%s in `%s'" msg fn_name;
      }
      :: !(st.r6_violations)
  in
  let expr (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    match escape_hatch "osiris.clock_ok" e.exp_attributes with
    | Some (Some _why) -> () (* justified mixing: subtree accepted *)
    | Some None ->
        add ~loc:e.exp_loc "[@osiris.clock_ok] without a justification string"
    | None -> (
        (match e.exp_desc with
        | Typedtree.Texp_apply (f, args) -> (
            match f.exp_desc with
            | Typedtree.Texp_ident (path, _, _) ->
                let name =
                  display_name (normalize_call m (path_elems path))
                in
                if List.mem name arith_ops then begin
                  let domains =
                    List.filter_map
                      (fun (_, a) -> Option.bind a (r6_domain st m))
                      args
                  in
                  if List.mem Sim domains && List.mem Wall domains then
                    add ~loc:e.exp_loc
                      (Printf.sprintf
                         "simulated time mixed arithmetically with \
                          wall-clock time (`%s'); use a named \
                          clock-conversion or [@osiris.clock_ok \"why\"]"
                         name)
                end
            | _ -> ())
        | Typedtree.Texp_let (_, vbs, _) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match vb.vb_pat.pat_desc with
                | Typedtree.Tpat_var (id, _) -> (
                    match r6_domain st m vb.vb_expr with
                    | Some d -> Hashtbl.replace st.env (Ident.name id) d
                    | None -> ())
                | _ -> ())
              vbs
        | _ -> ());
        Tast_iterator.default_iterator.expr it e)
  in
  let it = { Tast_iterator.default_iterator with expr } in
  List.iter (it.expr it) (fn_bodies body)

let check_r6 idx =
  let st =
    { r6_policy = idx.policy; r6_violations = ref []; env = Hashtbl.create 31 }
  in
  List.iter
    (fun m ->
      List.iter
        (fun (fn, body) ->
          Hashtbl.reset st.env;
          r6_walk st m fn body)
        m.m_fns)
    idx.scanned;
  !(st.r6_violations)

(* ------------------------------------------------------------------ *)
(* R7 — conservation coverage of registered counters. *)

type counter_reg = { cr_name : string; cr_key : string; cr_m : modul;
                     cr_loc : Location.t }

let last_component s =
  match String.rindex_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s

(* Every [Metrics.counter "..."] registration in the scanned modules.
   Dynamic prefixes of the form [prefix ^ ".suffix"] register under a
   wildcard display name but keep their suffix as the coverage key. *)
let collect_counters idx =
  let regs = ref [] in
  let reg m (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_apply (f, args) -> (
        match f.exp_desc with
        | Typedtree.Texp_ident (path, _, _)
          when display_name (normalize_call m (path_elems path))
               = "Metrics.counter" -> (
            let arg =
              List.find_map
                (fun (_, a) -> (a : Typedtree.expression option))
                args
            in
            match arg with
            | Some { exp_desc = Typedtree.Texp_constant c; exp_loc; _ } -> (
                match c with
                | Asttypes.Const_string (s, _, _) ->
                    regs :=
                      {
                        cr_name = s;
                        cr_key = last_component s;
                        cr_m = m;
                        cr_loc = exp_loc;
                      }
                      :: !regs
                | _ -> ())
            | Some
                {
                  exp_desc =
                    Typedtree.Texp_apply
                      ( { exp_desc = Typedtree.Texp_ident (op, _, _); _ },
                        [
                          _;
                          ( _,
                            Some
                              {
                                exp_desc =
                                  Typedtree.Texp_constant
                                    (Asttypes.Const_string (suffix, _, _));
                                _;
                              } );
                        ] );
                  exp_loc;
                  _;
                }
              when path_elems op |> List.rev |> List.hd = "^" ->
                let s = String.trim suffix in
                let s =
                  if String.length s > 0 && s.[0] = '.' then
                    String.sub s 1 (String.length s - 1)
                  else s
                in
                regs :=
                  {
                    cr_name = "*." ^ s;
                    cr_key = last_component s;
                    cr_m = m;
                    cr_loc = exp_loc;
                  }
                  :: !regs
            | Some other ->
                regs :=
                  {
                    cr_name = "<dynamic>";
                    cr_key = "";
                    cr_m = m;
                    cr_loc = other.exp_loc;
                  }
                  :: !regs
            | None -> ())
        | _ -> ())
    | _ -> ()
  in
  List.iter
    (fun m ->
      let it =
        {
          Tast_iterator.default_iterator with
          expr =
            (fun it e ->
              reg m e;
              Tast_iterator.default_iterator.expr it e);
        }
      in
      it.structure it m.m_structure)
    idx.scanned;
  List.rev !regs

(* Names read inside the policy's coverage functions: record field
   labels and called accessor names, anywhere under a scan root. *)
let collect_coverage idx =
  let reads = Hashtbl.create 97 in
  let note n = Hashtbl.replace reads n () in
  let walk_body m body =
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun it (e : Typedtree.expression) ->
            (match e.exp_desc with
            | Typedtree.Texp_field (_, _, lbl) -> note lbl.lbl_name
            | Typedtree.Texp_apply (f, _) -> (
                match f.exp_desc with
                | Typedtree.Texp_ident (path, _, _) ->
                    let _, v = normalize_call m (path_elems path) in
                    note v
                | _ -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr it e);
      }
    in
    List.iter (it.expr it) (fn_bodies body)
  in
  List.iter
    (fun m ->
      List.iter
        (fun (fn, body) ->
          if List.mem fn idx.policy.Policy.coverage_fns then walk_body m body)
        m.m_fns)
    idx.scanned;
  reads

let check_r7 idx =
  let regs = collect_counters idx in
  let reads = collect_coverage idx in
  List.filter_map
    (fun cr ->
      let covered = cr.cr_key <> "" && Hashtbl.mem reads cr.cr_key in
      let exempt =
        Policy.uncovered_ok idx.policy cr.cr_name
        || (cr.cr_key <> "" && Policy.uncovered_ok idx.policy cr.cr_key)
      in
      if covered || exempt then None
      else
        Some
          {
            rule = "R7";
            file = cr.cr_m.m_source;
            line = line_of_loc cr.cr_loc;
            message =
              Printf.sprintf
                "counter '%s' is not read by any conservation/invariant \
                 check (coverage-fn set: %s); add a check or an 'uncovered' \
                 policy entry"
                cr.cr_name
                (String.concat ", " idx.policy.Policy.coverage_fns);
          })
    regs

(* ------------------------------------------------------------------ *)

let check_tree policy ~cmt_root =
  let idx = build_index policy ~cmt_root in
  let by_file v = (v.file, v.line, v.rule) in
  check_r5 idx @ check_r6 idx @ check_r7 idx
  |> List.sort (fun a b -> compare (by_file a) (by_file b))
