(** Typed analysis passes (R5–R7) over the compiler's [.cmt] artifacts.

    Where the syntactic lint ({!Lint}, R1–R4) pattern-matches the
    parsetree, these passes load the typedtree the normal dune build
    already wrote ([-bin-annot] is always on), so they see resolved
    module paths, inferred types, and attributes:

    - {b R5 — hot-path allocation freedom.} Every [hot <file>:<fn>]
      policy entry must be transitively allocation-free: no closure,
      tuple, record, array, or non-constant constructor construction;
      no boxed float/int64 bindings; no partial applications; no calls
      into functions that are neither analyzable, listed [alloc-free]
      in the policy, nor on the built-in primitive safe-list. The
      escape hatch is [[@osiris.alloc_ok "why"]] on the expression or
      binding — the justification string is mandatory.
    - {b R6 — clock-domain taint.} Values produced by [sim-time]
      sources (simulated microseconds) must not meet values produced by
      [wall-clock] sources in an arithmetic or comparison operator
      unless laundered through a [clock-conversion] function or
      justified with [[@osiris.clock_ok "why"]].
    - {b R7 — conservation coverage.} Every [Metrics.counter]
      registration in the scanned tree must have its final name
      component read (as a record field or accessor call) inside at
      least one [coverage-fn] function, or carry an [uncovered] policy
      entry with a justification.

    Stale-policy rot is itself an error: a [hot] entry naming a file or
    function that no longer exists is reported as an R5 violation. *)

type violation = Lint.violation = {
  rule : string;
  file : string;
  line : int;
  message : string;
}

val check_tree : Policy.t -> cmt_root:string -> violation list
(** Run R5/R6/R7 over every [.cmt] found under [cmt_root] (typically
    [_build/default]). All loaded modules participate in call
    resolution; R6/R7 verdicts apply only to modules whose recorded
    source file lives under a policy [scan] root, and R5 roots are the
    policy's [hot] entries. Results are sorted by file, line, rule. *)
