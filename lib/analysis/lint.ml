type violation = { rule : string; file : string; line : int; message : string }

let pp_violation fmt v =
  Format.fprintf fmt "%s:%d: [%s] %s" v.file v.line v.rule v.message

let line_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let rec lid_head = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> lid_head l
  | Longident.Lapply (l, _) -> lid_head l

let rec lid_last = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> lid_last l

(* Does this try-with arm match every exception? (Unguarded wildcard or
   variable patterns, possibly under alias/constraint/or.) *)
let rec matches_everything (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> matches_everything p
  | Ppat_or (a, b) -> matches_everything a || matches_everything b
  | _ -> false

let is_exit = function
  | Longident.Lident "exit" -> true
  | Longident.Ldot (Longident.Lident "Stdlib", "exit") -> true
  | _ -> false

let check_structure policy file structure =
  let violations = ref [] in
  let add ~loc rule message =
    violations := { rule; file; line = line_of_loc loc; message } :: !violations
  in
  let allowed rule = Policy.exempt policy ~rule ~file in
  let check_obj ~loc lid =
    if lid_head lid = "Obj" && not (allowed "obj") then
      add ~loc "R2"
        (Printf.sprintf "reference to Obj.%s: unsafe casts are banned in \
                         library code"
           (lid_last lid))
  in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_setfield (_, { txt = lid; loc }, _) -> (
        let field = lid_last lid in
        match Policy.owners policy field with
        | None -> ()
        | Some writers ->
            if not (List.exists (fun w -> Policy.path_matches w file) writers)
            then
              add ~loc "R1"
                (Printf.sprintf
                   "field '%s' assigned outside its declared writer (policy \
                    allows: %s)"
                   field
                   (String.concat ", " writers)))
    | Pexp_ident { txt; loc } ->
        check_obj ~loc txt;
        if is_exit txt && not (allowed "exit") then
          add ~loc "R3"
            "call to exit in library code can swallow invariant violations"
    | Pexp_try (_, cases) ->
        if not (allowed "catchall") then
          List.iter
            (fun (c : Parsetree.case) ->
              if c.pc_guard = None && matches_everything c.pc_lhs then
                add ~loc:c.pc_lhs.ppat_loc "R3"
                  "catch-all exception handler (try ... with _): name the \
                   exceptions instead")
            cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let module_expr (it : Ast_iterator.iterator) (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_obj ~loc txt
    | _ -> ());
    Ast_iterator.default_iterator.module_expr it m
  in
  let iterator = { Ast_iterator.default_iterator with expr; module_expr } in
  iterator.structure iterator structure;
  List.rev !violations

let parse_impl file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_string (really_input_string ic (in_channel_length ic)) in
      Location.init lexbuf file;
      Parse.implementation lexbuf)

let check_file policy file =
  match parse_impl file with
  | structure -> check_structure policy file structure
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      [
        {
          rule = "R0";
          file;
          line = line_of_loc loc;
          message = "syntax error: file does not parse";
        };
      ]
  | exception Lexer.Error (_, loc) ->
      [ { rule = "R0"; file; line = line_of_loc loc; message = "lexer error" } ]

let rec walk dir =
  if not (Sys.is_directory dir) then if Filename.check_suffix dir ".ml" then [ dir ] else []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if String.length entry > 0 && (entry.[0] = '_' || entry.[0] = '.')
           then []
           else walk (Filename.concat dir entry))

let check_missing_mli policy root =
  List.filter_map
    (fun ml ->
      if Sys.file_exists (ml ^ "i") || Policy.exempt policy ~rule:"no-mli" ~file:ml
      then None
      else
        Some
          {
            rule = "R4";
            file = ml;
            line = 1;
            message =
              "module has no .mli: the ownership rules rely on explicit \
               interfaces";
          })
    (walk root)

let check_tree policy roots =
  let by_file v = (v.file, v.line, v.rule) in
  List.concat_map
    (fun root ->
      List.concat_map (check_file policy) (walk root)
      @ check_missing_mli policy root)
    roots
  |> List.sort (fun a b -> compare (by_file a) (by_file b))
