(** Compiler-libs AST lint enforcing the project's interface rules.

    Rules (see {!Policy} for how state opts in):

    - {b R1 single-writer ownership} — a record field named in the
      policy ([own]/[shared]) may be assigned ([<-]) only in its
      declared writer files. This is the paper's lock-free discipline
      (each descriptor-queue pointer has exactly one writer; the other
      side reads a shadow) as machine-checked policy.
    - {b R2 no Obj} — no reference to the [Obj] module: unsafe casts
      could forge descriptors or silently break the ownership model.
    - {b R3 no catch-all / exit} — no [try ... with] arm whose pattern
      matches every exception, and no calls to [exit], in library code:
      either can swallow an [Invariants] violation mid-experiment.
    - {b R4 interfaces} — every [.ml] under a scanned root ships a
      sibling [.mli], so the abstraction boundary the ownership rules
      rely on actually exists.

    The lint is purely syntactic (it parses with the compiler's own
    parser but does not type), so it runs on any tree state and costs
    milliseconds. *)

type violation = { rule : string; file : string; line : int; message : string }

val pp_violation : Format.formatter -> violation -> unit
(** [file:line: [rule] message] — the grep-able one-line form. *)

val check_file : Policy.t -> string -> violation list
(** Lint one [.ml] file (rules R1–R3; unparseable files yield a single
    [R0] violation). *)

val check_missing_mli : Policy.t -> string -> violation list
(** Rule R4 over one directory root, recursively. *)

val check_tree : Policy.t -> string list -> violation list
(** All rules over the given roots (directories are walked recursively;
    arguments naming a single [.ml] file are linted directly). Results
    are sorted by file then line. *)
