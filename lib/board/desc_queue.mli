(** The lock-free single-reader/single-writer descriptor queue in dual-port
    memory (paper §2.1.1), with cost-accurate access accounting.

    The queue is an array of descriptors plus a head pointer (modified only
    by the writer) and a tail pointer (modified only by the reader):

    - [head = tail] — queue empty;
    - [(head + 1) mod size = tail] — queue full.

    Only 32-bit loads and stores of the dual-port memory are atomic, and the
    protocol needs nothing more. Host accesses cross the TURBOchannel and
    are charged as programmed I/O on the bus model; board accesses are local
    i960 work and are charged as i960 time. The host additionally keeps
    {e shadow copies} of the pointers it does not own, refreshing them with
    a real (expensive) read only when the shadow is inconclusive — the
    "minimize the number of load and store operations" discipline.

    The [Spin_lock] mode implements the alternative the paper rejected: a
    test-and-set register serializes every queue operation, both sides read
    both pointers afresh under the lock, and lock contention delays whoever
    comes second. It exists for the ablation benchmark. *)

type locking = Lock_free | Spin_lock

type direction =
  | Host_to_board  (** transmit queue, free-buffer queue *)
  | Board_to_host  (** receive queue *)

(** How queue operations pay for their memory accesses. *)
type hooks = {
  host_pio_read : int -> unit;  (** host reads n dual-port words (blocking) *)
  host_pio_write : int -> unit;  (** host writes n dual-port words *)
  board_access : int -> unit;  (** board touches n dual-port words *)
}

val free_hooks : hooks
(** No-cost hooks, for unit tests of the queue discipline itself. *)

type t

val create :
  Osiris_sim.Engine.t -> ?metrics_prefix:string -> size:int ->
  direction:direction -> locking:locking -> hooks:hooks -> unit -> t
(** [size] is the descriptor capacity ([size] slots, of which [size - 1] are
    usable, as with any head/tail ring). [metrics_prefix] names this queue's
    access counters in the {!Osiris_obs.Metrics} registry (e.g.
    ["board.txq"] registers ["board.txq.host_pio_reads"], ...); defaults to
    ["queue"]. *)

val size : t -> int
val direction : t -> direction

val count : t -> int
(** Occupancy, read without cost (simulation observability). *)

val total_enqueued : t -> int
(** Cumulative successful enqueues over the queue's lifetime. *)

val total_dequeued : t -> int
(** Cumulative dequeues/advances. The host uses this to detect transmit
    completion by tail-pointer advance instead of interrupts (§2.1.2). *)

val is_empty : t -> bool
val is_full : t -> bool

(** {2 Writer/reader operations}

    Host operations are only legal on the side the direction gives the host,
    and likewise for the board; violations raise [Invalid_argument]. All
    operations may block (PIO transactions, lock acquisition) and must run
    in process context. *)

val host_enqueue : t -> Desc.t -> bool
(** [Host_to_board] writer. [false] when full (after refreshing the shadow
    tail). *)

val host_dequeue : t -> Desc.t option
(** [Board_to_host] reader. [None] when empty (after refreshing the shadow
    head). *)

val board_enqueue : t -> Desc.t -> bool
(** [Board_to_host] writer. *)

val board_dequeue : t -> Desc.t option
(** [Host_to_board] reader. *)

val board_peek : t -> int -> Desc.t option
(** [board_peek q i]: read the descriptor [i] entries past the tail without
    consuming ([Host_to_board] side only). Used by the transmit processor to
    read a whole PDU chain before advancing the tail. *)

val board_advance : t -> int -> unit
(** Consume [n] entries previously examined with {!board_peek}. *)

(** {2 Transmit-full protocol (paper §2.1.2)} *)

val host_probe_full : t -> bool
(** Accounted host-side fullness probe for a [Host_to_board] queue: same
    shadow-pointer discipline (and the same PIO charges) as a failing
    {!host_enqueue}, without attempting the enqueue. The transmit-stall
    path uses this so its re-checks appear in the PIO accounting. *)

val host_set_waiting : t -> unit
(** Host found the queue full and suspends transmission; one PIO write. *)

val board_test_waiting : t -> bool
(** Board-side check-and-clear: true when the host had set the waiting flag
    and the queue has drained to half empty — time to interrupt. *)

(** {2 Events} *)

val set_on_enqueue : t -> (unit -> unit) -> unit
(** Install a callback invoked synchronously inside every successful
    enqueue, before the {!enqueued} signal. The board uses this to count
    transmit kicks race-free (a signal alone can fire while the transmit
    processor is mid-scan and be lost). *)

val enqueued : t -> Osiris_sim.Signal.t
(** Broadcast after every enqueue. *)

val dequeued : t -> Osiris_sim.Signal.t
(** Broadcast after every dequeue / advance. *)

(** {2 Accounting} *)

type access_stats = {
  mutable host_reads : int;  (** dual-port words the host read *)
  mutable host_writes : int;
  mutable board_words : int;
  mutable shadow_hits : int;  (** pointer reads avoided by the shadow copy *)
}

val access_stats : t -> access_stats
(** Snapshot of the queue's access counters (also visible in the metrics
    registry under the queue's [metrics_prefix]). *)

(** {2 Invariant checking}

    Cost-free inspection for the fault-recovery invariant checker
    ([Osiris_core.Invariants]); neither function models dual-port
    accesses. *)

val contents : t -> Desc.t list
(** The descriptors currently queued, tail (oldest) first. *)

val check_invariants : ?name:string -> t -> string list
(** Structural consistency: pointers in range, occupancy matching the
    enqueue/dequeue totals, slots populated exactly on [tail, head), and
    shadow pointers stale in the safe direction only. Returns violation
    descriptions prefixed with [name]; empty = consistent. *)

(** {2 Checker-validation seams}

    Seeded discipline mutations used only to validate the
    [Osiris_check] schedule explorer: each one breaks the
    single-writer / stale-but-safe protocol in a way that is invisible
    to straight-line (FIFO-schedule, check-at-quiescence) tests but is
    caught by invariant checks at explored interleaving points. They
    must never be enabled outside checker tests. *)

type test_mutation =
  | No_mutation
  | Torn_tail_publish
      (** [board_dequeue] publishes the advanced tail pointer first and
          clears the slot (and counts the dequeue) in a separate
          same-instant engine event — a non-atomic two-word update. *)
  | Eager_shadow_tail
      (** The host's full-check shadow refresh stores [tail + 1] — an
          optimistic read torn against an in-flight board advance,
          breaking staleness in the unsafe direction. *)

val set_test_mutation : t -> test_mutation -> unit
