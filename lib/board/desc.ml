type t = { addr : int; len : int; vci : int; eop : bool; marked : bool }

let words = 2

let v ~addr ~len ?(vci = 0) ?(eop = true) ?(marked = false) () =
  if len < 0 then invalid_arg "Desc.v: negative length";
  { addr; len; vci; eop; marked }

let of_pbuf ?(vci = 0) ?(eop = true) (b : Osiris_mem.Pbuf.t) =
  { addr = b.Osiris_mem.Pbuf.addr; len = b.Osiris_mem.Pbuf.len; vci; eop;
    marked = false }

let to_pbuf t = Osiris_mem.Pbuf.v ~addr:t.addr ~len:t.len

let chain_of_pbufs ~vci pbufs =
  let n = List.length pbufs in
  List.mapi (fun i b -> of_pbuf ~vci ~eop:(i = n - 1) b) pbufs

let pp fmt t =
  Format.fprintf fmt "desc(%#x,+%d,vci=%d%s%s)" t.addr t.len t.vci
    (if t.eop then ",eop" else "")
    (if t.marked then ",ce" else "")

let equal a b =
  a.addr = b.addr && a.len = b.len && a.vci = b.vci && a.eop = b.eop
  && a.marked = b.marked
