open Osiris_sim
module Metrics = Osiris_obs.Metrics

type locking = Lock_free | Spin_lock

type direction = Host_to_board | Board_to_host

type hooks = {
  host_pio_read : int -> unit;
  host_pio_write : int -> unit;
  board_access : int -> unit;
}

let free_hooks =
  {
    host_pio_read = (fun _ -> ());
    host_pio_write = (fun _ -> ());
    board_access = (fun _ -> ());
  }

type access_stats = {
  mutable host_reads : int;
  mutable host_writes : int;
  mutable board_words : int;
  mutable shadow_hits : int;
}

(* Live accounting lives in registry counters; [access_stats] snapshots
   them into the record callers have always read. *)
type m = {
  m_host_reads : Metrics.counter;
  m_host_writes : Metrics.counter;
  m_board_words : Metrics.counter;
  m_shadow_hits : Metrics.counter;
}

let make_metrics prefix =
  {
    m_host_reads = Metrics.counter (prefix ^ ".host_pio_reads");
    m_host_writes = Metrics.counter (prefix ^ ".host_pio_writes");
    m_board_words = Metrics.counter (prefix ^ ".board_words");
    m_shadow_hits = Metrics.counter (prefix ^ ".shadow_hits");
  }

(* Checker-validation seams (see Osiris_check): each mutation breaks the
   single-writer / stale-but-safe discipline in a way only visible on some
   interleavings, so the schedule explorer can prove it catches what
   straight-line tests miss. Production paths always run [No_mutation]. *)
type test_mutation =
  | No_mutation
  | Torn_tail_publish
      (* board_dequeue publishes the tail pointer first and clears the
         slot (and counts the dequeue) in a separate same-instant event *)
  | Eager_shadow_tail
      (* the host's full-check shadow refresh reads one slot past the
         board's tail — an optimistic/torn read of an in-flight update *)

type t = {
  eng : Engine.t;
  size : int;
  direction : direction;
  locking : locking;
  hooks : hooks;
  slots : Desc.t option array;
  mutable head : int; (* next slot the writer fills *)
  mutable tail : int; (* next slot the reader drains *)
  (* Host-side shadow copies of the pointer the other side owns. *)
  mutable shadow_head : int;
  mutable shadow_tail : int;
  mutable host_waiting : bool;
  mutable n_enq : int;
  mutable n_deq : int;
  lock : Resource.t option;
  mutable on_enqueue : unit -> unit;
  mutable mutation : test_mutation;
  enqueued : Signal.t;
  dequeued : Signal.t;
  m : m;
}

let create eng ?(metrics_prefix = "queue") ~size ~direction ~locking ~hooks ()
    =
  if size < 2 then invalid_arg "Desc_queue.create: size must be >= 2";
  {
    eng;
    size;
    direction;
    locking;
    hooks;
    slots = Array.make size None;
    head = 0;
    tail = 0;
    shadow_head = 0;
    shadow_tail = 0;
    host_waiting = false;
    n_enq = 0;
    n_deq = 0;
    lock =
      (match locking with
      | Lock_free -> None
      | Spin_lock -> Some (Resource.create eng ~capacity:1));
    on_enqueue = (fun () -> ());
    mutation = No_mutation;
    enqueued = Signal.create eng;
    dequeued = Signal.create eng;
    m = make_metrics metrics_prefix;
  }

let size t = t.size
let direction t = t.direction
let count t = (t.head - t.tail + t.size) mod t.size
let total_enqueued t = t.n_enq
let total_dequeued t = t.n_deq
let is_empty t = t.head = t.tail
let is_full t = (t.head + 1) mod t.size = t.tail
let set_on_enqueue t f = t.on_enqueue <- f
let enqueued t = t.enqueued
let dequeued t = t.dequeued

let access_stats t : access_stats =
  {
    host_reads = Metrics.counter_value t.m.m_host_reads;
    host_writes = Metrics.counter_value t.m.m_host_writes;
    board_words = Metrics.counter_value t.m.m_board_words;
    shadow_hits = Metrics.counter_value t.m.m_shadow_hits;
  }

let host_read t n =
  Metrics.add t.m.m_host_reads n;
  t.hooks.host_pio_read n

let host_write t n =
  Metrics.add t.m.m_host_writes n;
  t.hooks.host_pio_write n

let board_touch t n =
  Metrics.add t.m.m_board_words n;
  t.hooks.board_access n

let with_host_lock t f =
  match t.lock with
  | None -> f ()
  | Some lock ->
      host_read t 1 (* test-and-set attempt *);
      Resource.acquire lock;
      Fun.protect ~finally:(fun () ->
          host_write t 1 (* release store *);
          Resource.release lock)
        f

let with_board_lock t f =
  match t.lock with
  | None -> f ()
  | Some lock ->
      board_touch t 1;
      Resource.acquire lock;
      Fun.protect ~finally:(fun () ->
          board_touch t 1;
          Resource.release lock)
        f

(* Host view of fullness: the host owns/caches head, shadows tail. Under
   the spin lock both pointers are re-read every time. *)
let host_sees_full t =
  match t.locking with
  | Spin_lock ->
      host_read t 2;
      is_full t
  | Lock_free ->
      if (t.head + 1) mod t.size <> t.shadow_tail then begin
        Metrics.incr t.m.m_shadow_hits;
        false
      end
      else begin
        host_read t 1;
        (match t.mutation with
        | Eager_shadow_tail -> t.shadow_tail <- (t.tail + 1) mod t.size
        | _ -> t.shadow_tail <- t.tail);
        (* Fullness as the host perceives it: through the just-refreshed
           shadow (identical to [is_full] when the refresh is faithful). *)
        (t.head + 1) mod t.size = t.shadow_tail
      end

let host_sees_empty t =
  match t.locking with
  | Spin_lock ->
      host_read t 2;
      is_empty t
  | Lock_free ->
      if t.shadow_head <> t.tail then begin
        Metrics.incr t.m.m_shadow_hits;
        false
      end
      else begin
        host_read t 1;
        t.shadow_head <- t.head;
        is_empty t
      end

let require t dir what =
  if t.direction <> dir then
    invalid_arg (Printf.sprintf "Desc_queue.%s: wrong direction" what)

let host_enqueue t d =
  require t Host_to_board "host_enqueue";
  with_host_lock t (fun () ->
      if host_sees_full t then false
      else begin
        t.slots.(t.head) <- Some d;
        host_write t Desc.words;
        t.head <- (t.head + 1) mod t.size;
        t.n_enq <- t.n_enq + 1;
        host_write t 1 (* head pointer *);
        t.on_enqueue ();
        Signal.broadcast t.enqueued;
        true
      end)

let host_dequeue t =
  require t Board_to_host "host_dequeue";
  with_host_lock t (fun () ->
      if host_sees_empty t then None
      else begin
        let d = t.slots.(t.tail) in
        host_read t Desc.words;
        t.slots.(t.tail) <- None;
        t.tail <- (t.tail + 1) mod t.size;
        t.n_deq <- t.n_deq + 1;
        host_write t 1 (* tail pointer *);
        Signal.broadcast t.dequeued;
        d
      end)

let board_enqueue t d =
  require t Board_to_host "board_enqueue";
  with_board_lock t (fun () ->
      if is_full t then begin
        board_touch t 1;
        false
      end
      else begin
        t.slots.(t.head) <- Some d;
        t.head <- (t.head + 1) mod t.size;
        t.n_enq <- t.n_enq + 1;
        board_touch t (Desc.words + 2) (* descriptor + both pointers *);
        t.on_enqueue ();
        Signal.broadcast t.enqueued;
        true
      end)

let board_dequeue t =
  require t Host_to_board "board_dequeue";
  with_board_lock t (fun () ->
      if is_empty t then begin
        board_touch t 1;
        None
      end
      else begin
        let d = t.slots.(t.tail) in
        (match t.mutation with
        | Torn_tail_publish ->
            let slot = t.tail in
            t.tail <- (t.tail + 1) mod t.size;
            board_touch t (Desc.words + 2);
            ignore
              (Engine.schedule t.eng ~delay:0 (fun () ->
                   t.slots.(slot) <- None;
                   t.n_deq <- t.n_deq + 1;
                   Signal.broadcast t.dequeued))
        | _ ->
            t.slots.(t.tail) <- None;
            t.tail <- (t.tail + 1) mod t.size;
            t.n_deq <- t.n_deq + 1;
            board_touch t (Desc.words + 2);
            Signal.broadcast t.dequeued);
        d
      end)

let board_peek t i =
  require t Host_to_board "board_peek";
  if i < 0 then invalid_arg "Desc_queue.board_peek: negative index";
  if i >= count t then None
  else begin
    (* Snapshot before charging access time: the tail can advance during
       the suspension (a concurrent completion), and the slot address must
       correspond to the tail observed when the access was issued. *)
    let v = t.slots.((t.tail + i) mod t.size) in
    board_touch t (Desc.words + 1);
    v
  end

let board_advance t n =
  require t Host_to_board "board_advance";
  if n < 0 || n > count t then
    invalid_arg "Desc_queue.board_advance: advancing past the head";
  with_board_lock t (fun () ->
      for _ = 1 to n do
        t.slots.(t.tail) <- None;
        t.tail <- (t.tail + 1) mod t.size;
        t.n_deq <- t.n_deq + 1
      done;
      if n > 0 then begin
        board_touch t 1;
        Signal.broadcast t.dequeued
      end)

let host_probe_full t =
  require t Host_to_board "host_probe_full";
  with_host_lock t (fun () -> host_sees_full t)

let host_set_waiting t =
  require t Host_to_board "host_set_waiting";
  t.host_waiting <- true;
  host_write t 1

let board_test_waiting t =
  require t Host_to_board "board_test_waiting";
  board_touch t 1;
  if t.host_waiting && count t <= t.size / 2 then begin
    t.host_waiting <- false;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Cost-free inspection for Osiris_core.Invariants: neither function
   models dual-port accesses — they are the omniscient checker's view,
   not a host or board operation. *)

let set_test_mutation t m = t.mutation <- m

let contents t =
  let n = count t in
  List.filter_map Fun.id
    (List.init n (fun i -> t.slots.((t.tail + i) mod t.size)))

let check_invariants ?(name = "queue") t =
  let errs = ref [] in
  let err fmt =
    Printf.ksprintf (fun s -> errs := (name ^ ": " ^ s) :: !errs) fmt
  in
  if t.head < 0 || t.head >= t.size then err "head %d out of range" t.head;
  if t.tail < 0 || t.tail >= t.size then err "tail %d out of range" t.tail;
  if t.shadow_head < 0 || t.shadow_head >= t.size then
    err "shadow_head %d out of range" t.shadow_head;
  if t.shadow_tail < 0 || t.shadow_tail >= t.size then
    err "shadow_tail %d out of range" t.shadow_tail;
  let n = count t in
  if (t.n_enq - t.n_deq + t.size) mod t.size <> n mod t.size then
    err "enq/deq totals (%d/%d) disagree with occupancy %d" t.n_enq t.n_deq n;
  if t.n_enq < t.n_deq then err "more dequeues (%d) than enqueues (%d)" t.n_deq t.n_enq;
  (* Occupied slots are exactly [tail, tail+count). *)
  for i = 0 to t.size - 1 do
    let occupied = (i - t.tail + t.size) mod t.size < n in
    match t.slots.(i) with
    | Some _ when not occupied -> err "slot %d populated outside [tail,head)" i
    | None when occupied -> err "slot %d empty inside [tail,head)" i
    | _ -> ()
  done;
  (* Shadow safety: a shadow is a stale copy of the pointer the other side
     owns, so the occupancy computed from it must err toward "fuller"
     (transmit direction) / "emptier" (receive direction) than reality —
     the stale-but-safe discipline the lock-free design rests on. Under
     the spin lock the shadows are never read or refreshed, so their
     staleness is unconstrained and the check does not apply. *)
  (match if t.locking = Spin_lock then None else Some t.direction with
  | None -> ()
  | Some Host_to_board ->
      let perceived = (t.head - t.shadow_tail + t.size) mod t.size in
      if perceived < n then
        err "shadow_tail overtook tail (perceived occupancy %d < actual %d)"
          perceived n
  | Some Board_to_host ->
      let perceived = (t.shadow_head - t.tail + t.size) mod t.size in
      if perceived > n then
        err "shadow_head overtook head (perceived occupancy %d > actual %d)"
          perceived n);
  List.rev !errs
