open Osiris_sim
module Trace = Osiris_sim.Trace
module Metrics = Osiris_obs.Metrics
module Hist = Osiris_util.Stats.Histogram
module Cell = Osiris_atm.Cell
module Atm_link = Osiris_link.Atm_link
module Sar = Osiris_atm.Sar
module Pbuf = Osiris_mem.Pbuf
module Phys_mem = Osiris_mem.Phys_mem
module Tc = Osiris_bus.Turbochannel
module Ctable = Osiris_classify.Table

type dma_mode = Single_cell | Double_cell

type tx_mux = Cell_interleave | Pdu_at_once

type config = {
  dma_mode : dma_mode;
  tx_mux : tx_mux;
  queue_size : int;
  locking : Desc_queue.locking;
  reassembly : Sar.strategy;
  nlinks : int;
  i960_hz : int;
  tx_cycles_per_cell : int;
  rx_cycles_per_cell : int;
  combine_saving_cycles : int;
  tx_combine_saving_cycles : int;
  queue_word_cycles : int;
  n_channels : int;
  max_pdu_cells : int;
  page_size : int;
  rx_fifo_cells : int;
  reassembly_timeout : Time.t;
  irq_reassert : Time.t;
  demux_oracle : bool;
}

let default_config =
  {
    (* The configuration the paper actually ran hosts with: single-cell
       DMA transmit (the longer-transfer transmit hardware was still
       "underway"); receive-side double-cell DMA is an experiment toggle.
       This also keeps a sender slower than a same-generation receiver
       (325 vs 340 Mb/s on the DECstation), which is what made sustained
       host-to-host trains stable. *)
    dma_mode = Single_cell;
    tx_mux = Cell_interleave;
    queue_size = 64;
    locking = Desc_queue.Lock_free;
    reassembly = Sar.Per_link 4;
    nlinks = 4;
    i960_hz = 25_000_000;
    tx_cycles_per_cell = 27;
    rx_cycles_per_cell = 15;
    combine_saving_cycles = 9;
    tx_combine_saving_cycles = 14;
    queue_word_cycles = 2;
    n_channels = 16;
    max_pdu_cells = 8192;
    page_size = 4096;
    rx_fifo_cells = 32;
    (* Both recovery timers default off: enabling them leaves timer events
       in the engine heap, which would shift the quiescence clock of every
       seeded experiment that predates the fault layer. *)
    reassembly_timeout = 0;
    irq_reassert = 0;
    (* The VC demux's Hashtbl mirror: free differential checking in tests
       and experiments, off in the default (performance) configuration. *)
    demux_oracle = false;
  }

type interrupt_reason =
  | Rx_nonempty of int
  | Tx_half_empty of int
  | Protection_violation of int

type stats = {
  mutable cells_sent : int;
  mutable cells_received : int;
  mutable pdus_sent : int;
  mutable pdus_received : int;
  mutable dma_tx_transactions : int;
  mutable dma_rx_transactions : int;
  mutable combined_dmas : int;
  mutable boundary_splits : int;
  mutable pdus_dropped_no_buffer : int;
  mutable cells_dropped : int;
  mutable reassembly_errors : int;
  mutable protection_faults : int;
  mutable unknown_vci_cells : int;
  mutable reassembly_timeouts : int;
  mutable restripe_aborts : int;
  mutable interrupts_suppressed : int;
  mutable irq_reasserts : int;
}

(* Registry handles behind [stats]; [stats t] snapshots them. *)
type m = {
  m_cells_sent : Metrics.counter;
  m_cells_received : Metrics.counter;
  m_pdus_sent : Metrics.counter;
  m_pdus_received : Metrics.counter;
  m_dma_tx : Metrics.counter;
  m_dma_rx : Metrics.counter;
  m_combined_dmas : Metrics.counter;
  m_boundary_splits : Metrics.counter;
  m_pdus_dropped_no_buffer : Metrics.counter;
  m_cells_dropped : Metrics.counter;
  m_reassembly_errors : Metrics.counter;
  m_protection_faults : Metrics.counter;
  m_unknown_vci_cells : Metrics.counter;
  m_reassembly_timeouts : Metrics.counter;
  m_restripe_aborts : Metrics.counter;
  m_interrupts_suppressed : Metrics.counter;
  m_irq_reasserts : Metrics.counter;
  m_dma_bytes : Hist.h;  (** sizes of actual receive bus transactions *)
}

let make_board_metrics () =
  {
    m_cells_sent = Metrics.counter "board.tx.cells_sent";
    m_cells_received = Metrics.counter "board.rx.cells_received";
    m_pdus_sent = Metrics.counter "board.tx.pdus_sent";
    m_pdus_received = Metrics.counter "board.rx.pdus_received";
    m_dma_tx = Metrics.counter "board.tx.dma_transactions";
    m_dma_rx = Metrics.counter "board.rx.dma_transactions";
    m_combined_dmas = Metrics.counter "board.rx.combined_dmas";
    m_boundary_splits = Metrics.counter "board.dma.boundary_splits";
    m_pdus_dropped_no_buffer = Metrics.counter "board.rx.pdus_dropped_no_buffer";
    m_cells_dropped = Metrics.counter "board.rx.cells_dropped";
    m_reassembly_errors = Metrics.counter "board.rx.reassembly_errors";
    m_protection_faults = Metrics.counter "board.tx.protection_faults";
    m_unknown_vci_cells = Metrics.counter "board.rx.unknown_vci_cells";
    m_reassembly_timeouts = Metrics.counter "board.rx.reassembly_timeouts";
    m_restripe_aborts = Metrics.counter "board.rx.restripe_aborts";
    m_interrupts_suppressed = Metrics.counter "board.irq.suppressed";
    m_irq_reasserts = Metrics.counter "board.irq.reasserts";
    m_dma_bytes =
      Metrics.histogram "board.rx.dma_span_bytes" ~lo:0. ~hi:128. ~buckets:16;
  }

type tx_pdu = {
  cells : Cell.t array;
  data_len : int;
  chain : Desc.t list;
  nchain : int;
  mutable next : int;
}

type channel = {
  id : int;
  tx_q : Desc_queue.t;
  free_q : Desc_queue.t;
  rx_q : Desc_queue.t;
  mutable priority : int;
  mutable allowed : Pbuf.t list option;
  mutable txst : tx_pdu option;
  mutable peek_ahead : int; (* descriptors consumed but not yet advanced *)
  mutable reassert_armed : bool; (* rx interrupt watchdog scheduled *)
  mutable reassert_h : Engine.handle option; (* watchdog timer, re-armed in place *)
  mutable free_gated : bool; (* fault injection: free queue yields nothing *)
}

type rxbuf = { bdesc : Desc.t; mutable filled : int; mutable posted : bool }

(* The per-PDU buffer side table. Indices are dense (buffer 0, 1, ... of
   the PDU being reassembled), so a growable option array replaces the
   old per-VC [Hashtbl]: two words per slot instead of a bucket chain,
   and a reset that just refills the array. At thousands of VCs this is
   most of the per-VC resident state. *)
type bufset = { mutable bs_slots : rxbuf option array; mutable bs_set : int }

let bufs_create () = { bs_slots = Array.make 4 None; bs_set = 0 }

let bufs_get bs idx =
  if idx < Array.length bs.bs_slots then bs.bs_slots.(idx) else None

let bufs_set bs idx b =
  let cap = Array.length bs.bs_slots in
  if idx >= cap then begin
    let bigger = Array.make (max (idx + 1) (cap * 2)) None in
    Array.blit bs.bs_slots 0 bigger 0 cap;
    bs.bs_slots <- bigger
  end;
  if bs.bs_slots.(idx) = None then bs.bs_set <- bs.bs_set + 1;
  bs.bs_slots.(idx) <- Some b

let bufs_reset bs =
  if bs.bs_set > 0 then
    Array.fill bs.bs_slots 0 (Array.length bs.bs_slots) None;
  bs.bs_set <- 0

let bufs_iter f bs =
  if bs.bs_set > 0 then
    Array.iter (function Some b -> f b | None -> ()) bs.bs_slots

let bufs_fold f bs init =
  let acc = ref init in
  bufs_iter (fun b -> acc := f b !acc) bs;
  !acc

type vc_state = {
  vci : int;
  mutable channel : channel;
  mutable sar : Sar.t; (* replaced when the stripe narrows/widens *)
  mutable last_progress : Time.t; (* last successful placement (timeout) *)
  bufs : bufset; (* buffer index within current PDU *)
  mutable buf_size : int; (* capacity of this PDU's buffers; 0 = none yet *)
  mutable next_post : int;
  mutable total : int; (* framed total once known; -1 before *)
  mutable dropping : bool;
  fbufs : Desc.t Queue.t; (* per-VCI preallocated buffers (cached fbufs) *)
  stash : (int * Cell.t) Queue.t;
      (* skew: cells of the next PDU arriving on links whose sub-stream of
         the current PDU already finished; replayed after completion *)
}

type dma_cmd = {
  spans : (int * Bytes.t) list; (* (phys addr, data) per bus transaction *)
  ncells : int;
  post : unit -> unit;
}

(* Transmit-side DMA work: fetch these spans from host memory, then emit
   these cells. Queued so the i960's per-cell work overlaps the DMA engine
   (they are separate units on the board). *)
type tx_fetch_cmd = {
  f_spans : (int * int) list; (* (phys addr, len) per bus transaction *)
  f_cells : Cell.t list;
  f_done : (unit -> unit) option; (* runs after the data is fetched *)
}

type t = {
  eng : Engine.t;
  bus : Tc.t;
  mem : Phys_mem.t;
  cfg : config;
  on_interrupt : interrupt_reason -> unit;
  on_dma_write : addr:int -> len:int -> unit;
  channels : channel array;
  mutable n_open : int;
  vcs : vc_state Ctable.t; (* the on-board VC classification table *)
  tx_work : Signal.t;
  mutable tx_kicks : int; (* synchronous enqueue counter; see tx_processor *)
  tx_fetch_q : tx_fetch_cmd Mailbox.t;
  tx_out : Cell.t Mailbox.t;
  rx_dma_q : dma_cmd Mailbox.t;
  mutable tx_link : Atm_link.t option;
  mutable rx_link : Atm_link.t option;
  rx_link_map : int array; (* physical channel -> logical stripe index *)
  mutable rx_strategy : Sar.strategy; (* current (possibly narrowed) *)
  sweep_work : Signal.t; (* wakes the reassembly-timeout sweeper *)
  mutable irq_filter : (interrupt_reason -> bool) option;
  mutable recv_fn : (unit -> int * Cell.t) option;
  mutable try_recv_fn : (unit -> (int * Cell.t) option) option;
  pending_cells : (int * Cell.t) Queue.t;
  mutable rr_cursor : int;
  mutable started : bool;
  m : m;
}

let i960_time t cycles =
  ((cycles * 1_000_000_000) + t.cfg.i960_hz - 1) / t.cfg.i960_hz

let i960_work t cycles = Process.sleep t.eng (i960_time t cycles)

let make_hooks eng bus cfg =
  {
    Desc_queue.host_pio_read = (fun n -> Tc.pio_read_words bus ~words:n);
    host_pio_write = (fun n -> Tc.pio_write_words bus ~words:n);
    board_access =
      (fun n ->
        Process.sleep eng
          (((n * cfg.queue_word_cycles * 1_000_000_000) + cfg.i960_hz - 1)
          / cfg.i960_hz));
  }

let make_channel eng bus cfg id =
  let hooks = make_hooks eng bus cfg in
  let mk metrics_prefix direction =
    Desc_queue.create eng ~metrics_prefix ~size:cfg.queue_size ~direction
      ~locking:cfg.locking ~hooks ()
  in
  {
    id;
    tx_q = mk "board.txq" Desc_queue.Host_to_board;
    free_q = mk "board.freeq" Desc_queue.Host_to_board;
    rx_q = mk "board.rxq" Desc_queue.Board_to_host;
    priority = if id = 0 then 0 else 1;
    allowed = None;
    txst = None;
    peek_ahead = 0;
    reassert_armed = false;
    reassert_h = None;
    free_gated = false;
  }

let create eng ~bus ~mem ~on_interrupt ?(on_dma_write = fun ~addr:_ ~len:_ -> ())
    cfg =
  if cfg.n_channels < 1 then invalid_arg "Board.create: need >= 1 channel";
  let channels =
    Array.init cfg.n_channels (fun id -> make_channel eng bus cfg id)
  in
  (* Fills the classification table's empty value slots; never returned
     by a lookup (its key is the empty sentinel). *)
  let dummy_vc =
    {
      vci = -1;
      channel = channels.(0);
      sar = Sar.create cfg.reassembly ~max_cells:cfg.max_pdu_cells;
      last_progress = 0;
      bufs = bufs_create ();
      buf_size = 0;
      next_post = 0;
      total = -1;
      dropping = false;
      fbufs = Queue.create ();
      stash = Queue.create ();
    }
  in
  let t =
    {
      eng;
      bus;
      mem;
      cfg;
      on_interrupt;
      on_dma_write;
      channels;
      n_open = 1;
      vcs = Ctable.create ~oracle:cfg.demux_oracle ~dummy:dummy_vc 32;
      tx_work = Signal.create eng;
      tx_kicks = 0;
      tx_fetch_q = Mailbox.create eng ~capacity:2 ();
      tx_out = Mailbox.create eng ~capacity:4 ();
      rx_dma_q = Mailbox.create eng ~capacity:4 ();
      tx_link = None;
      rx_link = None;
      rx_link_map = Array.init cfg.nlinks (fun i -> i);
      rx_strategy = cfg.reassembly;
      sweep_work = Signal.create eng;
      irq_filter = None;
      recv_fn = None;
      try_recv_fn = None;
      pending_cells = Queue.create ();
      rr_cursor = 0;
      started = false;
      m = make_board_metrics ();
    }
  in
  t

let config t = t.cfg
let engine t = t.eng

let stats t : stats =
  {
    cells_sent = Metrics.counter_value t.m.m_cells_sent;
    cells_received = Metrics.counter_value t.m.m_cells_received;
    pdus_sent = Metrics.counter_value t.m.m_pdus_sent;
    pdus_received = Metrics.counter_value t.m.m_pdus_received;
    dma_tx_transactions = Metrics.counter_value t.m.m_dma_tx;
    dma_rx_transactions = Metrics.counter_value t.m.m_dma_rx;
    combined_dmas = Metrics.counter_value t.m.m_combined_dmas;
    boundary_splits = Metrics.counter_value t.m.m_boundary_splits;
    pdus_dropped_no_buffer = Metrics.counter_value t.m.m_pdus_dropped_no_buffer;
    cells_dropped = Metrics.counter_value t.m.m_cells_dropped;
    reassembly_errors = Metrics.counter_value t.m.m_reassembly_errors;
    protection_faults = Metrics.counter_value t.m.m_protection_faults;
    unknown_vci_cells = Metrics.counter_value t.m.m_unknown_vci_cells;
    reassembly_timeouts = Metrics.counter_value t.m.m_reassembly_timeouts;
    restripe_aborts = Metrics.counter_value t.m.m_restripe_aborts;
    interrupts_suppressed = Metrics.counter_value t.m.m_interrupts_suppressed;
    irq_reasserts = Metrics.counter_value t.m.m_irq_reasserts;
  }

(* Interrupt delivery with an optional loss filter (fault injection): a
   filter returning false eats the assertion. Recovery from a lost
   Rx_nonempty relies on the [irq_reassert] watchdog below. *)
let raise_interrupt t reason =
  match t.irq_filter with
  | Some f when not (f reason) ->
      Metrics.incr t.m.m_interrupts_suppressed;
      Trace.emitf Trace.Fault ~now:(Engine.now t.eng) "interrupt suppressed"
  | _ -> t.on_interrupt reason

let set_irq_filter t f = t.irq_filter <- f

(* Watchdog for lost receive interrupts: while a channel's receive queue
   stays non-empty, re-assert Rx_nonempty every [irq_reassert] ns. The
   event chain terminates as soon as the host drains the queue, so an
   enabled watchdog adds no events at quiescence. *)
let rec arm_reassert t ch =
  if t.cfg.irq_reassert > 0 && not ch.reassert_armed then begin
    ch.reassert_armed <- true;
    match ch.reassert_h with
    | Some h ->
        (* The previous timer has fired ([reassert_armed] was false), so
           the handle and its closure can be re-armed in place instead
           of allocating fresh ones every watchdog period. *)
        Engine.reschedule t.eng ~delay:t.cfg.irq_reassert h
    | None ->
        ch.reassert_h <-
          Some
            (Engine.schedule t.eng ~delay:t.cfg.irq_reassert (fun () ->
                 ch.reassert_armed <- false;
                 if Desc_queue.count ch.rx_q > 0 then begin
                   Metrics.incr t.m.m_irq_reasserts;
                   raise_interrupt t (Rx_nonempty ch.id);
                   arm_reassert t ch
                 end))
  end

let kernel_channel t = t.channels.(0)

let open_channel t ?(priority = 1) () =
  if t.n_open >= t.cfg.n_channels then
    failwith "Board.open_channel: all queue pages in use";
  let ch = t.channels.(t.n_open) in
  t.n_open <- t.n_open + 1;
  ch.priority <- priority;
  ch

let channel_id ch = ch.id
let tx_queue ch = ch.tx_q
let free_queue ch = ch.free_q
let rx_queue ch = ch.rx_q
let set_allowed_pages ch allowed = ch.allowed <- allowed
let set_priority ch p = ch.priority <- p

let set_free_gate t ~ch gated =
  if ch < 0 || ch >= t.cfg.n_channels then
    invalid_arg "Board.set_free_gate: channel out of range";
  t.channels.(ch).free_gated <- gated

let free_gated t ~ch =
  if ch < 0 || ch >= t.cfg.n_channels then
    invalid_arg "Board.free_gated: channel out of range";
  t.channels.(ch).free_gated

let bind_vci t ~vci ch =
  if vci < 0 then invalid_arg "Board.bind_vci: negative VCI";
  if Ctable.mem t.vcs vci then invalid_arg "Board.bind_vci: VCI in use";
  Ctable.add t.vcs vci
    {
      vci;
      channel = ch;
      sar = Sar.create t.rx_strategy ~max_cells:t.cfg.max_pdu_cells;
      last_progress = 0;
      bufs = bufs_create ();
      buf_size = 0;
      next_post = 0;
      total = -1;
      dropping = false;
      fbufs = Queue.create ();
      stash = Queue.create ();
    }

let unbind_vci t ~vci = Ctable.remove t.vcs vci

let supply_vci_buffer t ~vci desc =
  match Ctable.find t.vcs vci with
  | None -> invalid_arg "Board.supply_vci_buffer: unbound VCI"
  | Some vc ->
      if Queue.length vc.fbufs >= t.cfg.queue_size then false
      else begin
        (* Host writes the descriptor into the VC's buffer list in
           dual-port memory: same cost as a free-queue enqueue. *)
        Tc.pio_write_words t.bus ~words:(Desc.words + 1);
        Queue.add desc vc.fbufs;
        true
      end

let vci_buffer_count t ~vci =
  match Ctable.find t.vcs vci with
  | None -> 0
  | Some vc -> Queue.length vc.fbufs

(* Demultiplexing cost accounting: probe statistics of the on-board VC
   classification table, and its (analytic) resident footprint. *)
let demux_stats t = Ctable.probe_stats t.vcs
let reset_demux_stats t = Ctable.reset_probe_stats t.vcs
let demux_resident_bytes t = Ctable.resident_bytes t.vcs
let demux_vcs t = Ctable.length t.vcs

let demux_check t =
  List.map (fun s -> "board demux: " ^ s) (Ctable.check t.vcs)

(* ------------------------------------------------------------------ *)
(* Span arithmetic: cut a byte range of a PDU into the DMA transactions
   the controller actually issues — one per physical buffer crossing and
   one per page boundary (the §2.5.2 boundary-stop behaviour). *)

let split_at_pages page_size (addr, len) =
  let rec go addr len acc =
    if len = 0 then List.rev acc
    else begin
      let to_boundary = page_size - (addr mod page_size) in
      let chunk = min len to_boundary in
      go (addr + chunk) (len - chunk) ((addr, chunk) :: acc)
    end
  in
  go addr len []

(* Map [off, off+len) of the PDU data (laid out along the descriptor
   chain) to physical (addr, len) spans. *)
let chain_spans chain ~off ~len =
  let rec go chain off len acc =
    if len = 0 then List.rev acc
    else
      match chain with
      | [] -> invalid_arg "Board: range beyond descriptor chain"
      | (d : Desc.t) :: rest ->
          if off >= d.Desc.len then go rest (off - d.Desc.len) len acc
          else begin
            let avail = d.Desc.len - off in
            let chunk = min len avail in
            go ((d : Desc.t) :: rest) (off + chunk) (len - chunk)
              ((d.Desc.addr + off, chunk) :: acc)
          end
  in
  (* A span ending exactly at a descriptor's end advances naturally on the
     next call because off becomes >= d.len. *)
  go chain off len []

(* ------------------------------------------------------------------ *)
(* Transmit side. *)

let validate_chain t ch chain =
  match ch.allowed with
  | None -> true
  | Some ranges ->
      let ok (d : Desc.t) =
        List.exists
          (fun (r : Pbuf.t) ->
            d.Desc.addr >= r.Pbuf.addr
            && d.Desc.addr + d.Desc.len <= r.Pbuf.addr + r.Pbuf.len)
          ranges
      in
      let all_ok = List.for_all ok chain in
      if not all_ok then begin
        Metrics.incr t.m.m_protection_faults;
        raise_interrupt t (Protection_violation ch.id)
      end;
      all_ok

(* Stripe width segmentation targets: the live channels of the outgoing
   trunk, so framing bits land where the receiver's narrowed per-link
   reassembly expects them. Falls back to the configured width when every
   channel is down (the cells vanish at the link anyway). *)
let tx_stripe_width t =
  match t.tx_link with
  | Some l ->
      let n = Atm_link.nlive l in
      if n > 0 then n else t.cfg.nlinks
  | None -> t.cfg.nlinks

(* Read the next PDU chain from a channel's transmit queue (without
   advancing the tail) and set up segmentation state. *)
let try_load_pdu t ch =
  match ch.txst with
  | Some _ -> true
  | None -> (
      match Desc_queue.board_peek ch.tx_q ch.peek_ahead with
      | None -> false
      | Some _first ->
          (* Collect descriptors up to eop. *)
          let rec collect i acc =
            match Desc_queue.board_peek ch.tx_q (ch.peek_ahead + i) with
            | None -> None (* chain incomplete: host still writing it *)
            | Some d ->
                if d.Desc.eop then Some (List.rev (d :: acc))
                else collect (i + 1) (d :: acc)
          in
          (match collect 0 [] with
          | None ->
              Trace.emitf Trace.Board_tx ~now:(Engine.now t.eng)
                "ch%d chain incomplete (ahead=%d count=%d)" ch.id
                ch.peek_ahead (Desc_queue.count ch.tx_q);
              false
          | Some chain ->
              let nchain = List.length chain in
              if not (validate_chain t ch chain) then begin
                (* Faulted chains are discarded immediately; nothing is in
                   flight for them. *)
                Desc_queue.board_advance ch.tx_q nchain;
                false
              end
              else begin
                Trace.emitf Trace.Board_tx ~now:(Engine.now t.eng)
                  "ch%d load chain [%s]" ch.id
                  (String.concat ";"
                     (List.map
                        (fun (d : Desc.t) ->
                          Printf.sprintf "%d%s" d.Desc.len
                            (if d.Desc.eop then "*" else ""))
                        chain));
                ch.peek_ahead <- ch.peek_ahead + nchain;
                let pbufs = List.map Desc.to_pbuf chain in
                let pdu = Phys_mem.bytes_of_pbufs t.mem pbufs in
                let vci = (List.hd chain).Desc.vci in
                let cells =
                  Array.of_list
                    (Sar.segment ~vci ~nlinks:(tx_stripe_width t) pdu)
                in
                ch.txst <-
                  Some
                    {
                      cells;
                      data_len = Bytes.length pdu;
                      chain;
                      nchain;
                      next = 0;
                    };
                true
              end))

(* Physical spans behind cells [k, k+n) of a PDU: what the DMA engine
   must fetch from host memory. *)
let fetch_spans t (pdu : tx_pdu) ~k ~n =
  let lo = k * Cell.data_size in
  let hi = min ((k + n) * Cell.data_size) pdu.data_len in
  if hi > lo then
    List.concat_map
      (split_at_pages t.cfg.page_size)
      (chain_spans pdu.chain ~off:lo ~len:(hi - lo))
  else []

let finish_pdu t ch (pdu : tx_pdu) () =
  (* Update peek_ahead BEFORE the tail advance: board_advance suspends for
     its dual-port accesses after moving the tail, and a transmit-processor
     chain scan overlapping that window must err on the side of reading
     already-consumed (empty) slots — which makes it retry — rather than
     reading slots beyond its chain, which would assemble garbage. *)
  ch.peek_ahead <- ch.peek_ahead - pdu.nchain;
  Desc_queue.board_advance ch.tx_q pdu.nchain;
  Metrics.incr t.m.m_pdus_sent;
  (* A transmit-processor scan can race this completion (board_advance
     sleeps for its dual-port accesses while peek_ahead is still stale);
     kick it so such a scan is retried with consistent state. *)
  t.tx_kicks <- t.tx_kicks + 1;
  Signal.broadcast t.tx_work;
  if Desc_queue.board_test_waiting ch.tx_q then
    raise_interrupt t (Tx_half_empty ch.id)

(* Emit one scheduling quantum (one cell, or a pair under double-cell DMA)
   from the given channel: the i960 computes the DMA command and hands it
   to the transmit DMA engine, overlapping with the previous fetch. *)
let tx_emit t ch =
  match ch.txst with
  | None -> ()
  | Some pdu ->
      let k = pdu.next in
      let remaining = Array.length pdu.cells - k in
      let n =
        match t.cfg.dma_mode with
        | Single_cell -> 1
        | Double_cell -> min 2 remaining
      in
      let cycles =
        if n = 2 then
          max 1
            ((2 * t.cfg.tx_cycles_per_cell) - t.cfg.tx_combine_saving_cycles)
        else t.cfg.tx_cycles_per_cell
      in
      i960_work t cycles;
      let cells = Array.to_list (Array.sub pdu.cells k n) in
      pdu.next <- k + n;
      let last = pdu.next >= Array.length pdu.cells in
      if last then ch.txst <- None;
      Mailbox.send t.tx_fetch_q
        {
          f_spans = fetch_spans t pdu ~k ~n;
          f_cells = cells;
          f_done = (if last then Some (finish_pdu t ch pdu) else None);
        }

let tx_dma_engine t () =
  let rec loop () =
    let cmd = Mailbox.recv t.tx_fetch_q in
    let nspans = List.length cmd.f_spans in
    Metrics.add t.m.m_dma_tx nspans;
    if nspans > 1 then
      Metrics.add t.m.m_boundary_splits (nspans - 1);
    List.iter (fun (_addr, len) -> Tc.dma_read t.bus ~bytes:len) cmd.f_spans;
    List.iter
      (fun cell ->
        Mailbox.send t.tx_out cell;
        Metrics.incr t.m.m_cells_sent)
      cmd.f_cells;
    (match cmd.f_done with Some f -> f () | None -> ());
    loop ()
  in
  loop ()

(* Strict priority, round-robin within a priority level. Under coarse
   multiplexing ([Pdu_at_once]) an in-progress PDU is always finished
   first, regardless of what else is queued. *)
let pick_tx_channel t =
  let in_progress =
    match t.cfg.tx_mux with
    | Cell_interleave -> None
    | Pdu_at_once ->
        Array.fold_left
          (fun acc ch -> if ch.txst <> None then Some ch else acc)
          None t.channels
  in
  match in_progress with
  | Some ch -> Some ch
  | None ->
  let best = ref None in
  for i = 0 to t.cfg.n_channels - 1 do
    let idx = (t.rr_cursor + i) mod t.cfg.n_channels in
    let ch = t.channels.(idx) in
    if try_load_pdu t ch then
      match !best with
      | Some (b, _) when t.channels.(b).priority <= ch.priority -> ()
      | _ -> best := Some (idx, ch)
  done;
  match !best with
  | None -> None
  | Some (idx, ch) ->
      t.rr_cursor <- (idx + 1) mod t.cfg.n_channels;
      Some ch

let tx_processor t () =
  let rec loop () =
    (* Snapshot the kick counter before scanning: if an enqueue lands while
       the scan's dual-port accesses are in progress, the counter moves and
       we rescan instead of sleeping through the (already fired) signal. *)
    let kicks = t.tx_kicks in
    (match pick_tx_channel t with
    | Some ch -> tx_emit t ch
    | None -> if t.tx_kicks = kicks then Signal.wait t.tx_work);
    loop ()
  in
  loop ()

let tx_sender t () =
  match t.tx_link with
  | None -> () (* transmit side unused (receive-only experiments) *)
  | Some link ->
      let rec loop () =
        let cell = Mailbox.recv t.tx_out in
        Atm_link.send link cell;
        loop ()
      in
      loop ()

(* ------------------------------------------------------------------ *)
(* Receive side. *)

let reset_vc vc =
  Sar.reset vc.sar;
  bufs_reset vc.bufs;
  (* buf_size persists: buffer pools are uniform per channel. *)
  vc.next_post <- 0;
  vc.total <- -1;
  vc.dropping <- false

(* Return the PDU's unposted buffers to the VC's private pool. *)
let recycle_buffers vc =
  bufs_iter (fun b -> if not b.posted then Queue.add b.bdesc vc.fbufs) vc.bufs

let take_free_buffer vc =
  match Queue.take_opt vc.fbufs with
  | Some d -> Some d
  | None ->
      (* A gated channel sees an empty free queue (the injected
         starvation fault): descriptors the host enqueued stay put, so
         buffer conservation still holds — the PDU is dropped for want
         of a buffer, not leaked. *)
      if vc.channel.free_gated then None
      else Desc_queue.board_dequeue vc.channel.free_q

(* Make sure buffers 0..idx exist for the current PDU; false on buffer
   exhaustion. *)
let ensure_buffers vc idx =
  let rec go i =
    if i > idx then true
    else if bufs_get vc.bufs i <> None then go (i + 1)
    else
      match take_free_buffer vc with
      | None -> false
      | Some d ->
          if vc.buf_size = 0 then vc.buf_size <- d.Desc.len
          else if d.Desc.len <> vc.buf_size then
            (* The model requires uniform buffer sizes per PDU; drivers
               supply uniform pools, so treat mismatch as exhaustion. *)
            failwith "Board: receive buffers of one PDU must be uniform";
          bufs_set vc.bufs i { bdesc = d; filled = 0; posted = false };
          go (i + 1)
  in
  go 0

(* Enqueue one filled-buffer descriptor to the host. Runs in the DMA
   engine, after the buffer's final bytes have landed in memory. An
   interrupt is asserted only on the receive queue's empty -> non-empty
   transition (paper 2.1.2). *)
let deliver_desc t vc ch desc =
  if Desc_queue.board_enqueue ch.rx_q desc then begin
    (* Assert the interrupt iff ours is the only entry: the queue was empty
       at the instant of insertion (checking afterwards avoids the lost
       wake-up when the host drains while the enqueue is in progress). *)
    if Desc_queue.count ch.rx_q = 1 then raise_interrupt t (Rx_nonempty ch.id);
    (* Under fault injection the assertion above may have been eaten; the
       watchdog (when configured) re-asserts while the queue is backed up. *)
    arm_reassert t ch
  end
  else begin
    (* Receive-queue overflow: the host is hopelessly behind. The data (or
       abort marker) is lost; a real buffer returns to the VC's pool. *)
    Metrics.add t.m.m_cells_dropped (desc.Desc.len / Cell.data_size);
    if desc.Desc.len > 0 && vc.buf_size > 0 then
      Queue.add (Desc.v ~addr:desc.Desc.addr ~len:vc.buf_size ()) vc.fbufs
  end

(* Decide, at reassembly-decision time, which buffer descriptors the
   current DMA command must post once its data has landed: the in-order
   prefix of buffers that are now full and, on PDU completion, all the
   rest. Completion also resets the VC for the next PDU. *)
let collect_posts t vc ~completed_total =
  let posts = ref [] in
  let push_desc idx ~eop ~marked ~len =
    match bufs_get vc.bufs idx with
    | None -> ()
    | Some b ->
        if not b.posted then begin
          b.posted <- true;
          posts :=
            Desc.v ~addr:b.bdesc.Desc.addr ~len ~vci:vc.vci ~eop ~marked ()
            :: !posts
        end
  in
  (match completed_total with
  | None ->
      let continue = ref true in
      while !continue do
        match bufs_get vc.bufs vc.next_post with
        | Some b when vc.buf_size > 0 && b.filled >= vc.buf_size ->
            push_desc vc.next_post ~eop:false ~marked:false ~len:vc.buf_size;
            vc.next_post <- vc.next_post + 1
        | _ -> continue := false
      done
  | Some total ->
      Metrics.incr t.m.m_pdus_received;
      (* The PDU's congestion bit, read before [reset_vc] clears the
         reassembly state, rides on the eop descriptor: one flag per
         PDU, exactly what the host's transport needs to echo. *)
      let pdu_marked = Sar.marked_seen vc.sar in
      let bs = vc.buf_size in
      let nbufs = if bs = 0 then 0 else (total + bs - 1) / bs in
      for idx = vc.next_post to nbufs - 1 do
        let len = min bs (total - (idx * bs)) in
        let eop = idx = nbufs - 1 in
        push_desc idx ~eop ~marked:(eop && pdu_marked) ~len
      done;
      recycle_buffers vc;
      reset_vc vc);
  List.rev !posts

(* Target spans in host memory for a placement at framed-PDU [offset]. *)
let placement_spans vc ~offset ~len =
  let rec go offset len acc =
    if len = 0 then Some (List.rev acc)
    else if vc.buf_size = 0 then
      (* The first buffer taken for a PDU fixes its buffer size. *)
      if ensure_buffers vc 0 then go offset len acc else None
    else begin
      let bs = vc.buf_size in
      let idx = offset / bs in
      if not (ensure_buffers vc idx) then None
      else begin
        let b =
          match bufs_get vc.bufs idx with
          | Some b -> b
          | None -> assert false (* ensure_buffers just filled it *)
        in
        let in_buf = offset mod bs in
        let chunk = min len (bs - in_buf) in
        go (offset + chunk) (len - chunk)
          ((idx, b.bdesc.Desc.addr + in_buf, chunk) :: acc)
      end
    end
  in
  go offset len []

(* Handle a placement decision: update the reassembly bookkeeping
   immediately (the receive processor owns this state) and build the DMA
   command whose post step delivers any now-complete buffers. Returns None
   when the PDU must be dropped for lack of buffers. *)
let dma_cmd_of_placement t vc (p : Sar.placement) ~completed_total =
  match placement_spans vc ~offset:p.Sar.offset ~len:Cell.data_size with
  | None -> None
  | Some spans ->
      let page_spans =
        List.concat_map
          (fun (idx, addr, len) ->
            List.map
              (fun (a, l) -> (idx, a, l))
              (split_at_pages t.cfg.page_size (addr, len)))
          spans
      in
      let data = p.Sar.cell.Cell.data in
      let pieces = ref [] and off = ref 0 in
      List.iter
        (fun (idx, addr, len) ->
          pieces := (addr, Bytes.sub data !off len) :: !pieces;
          (match bufs_get vc.bufs idx with
          | Some b -> b.filled <- b.filled + len
          | None -> ());
          off := !off + len)
        page_spans;
      let posts = collect_posts t vc ~completed_total in
      let ch = vc.channel in
      let post () = List.iter (deliver_desc t vc ch) posts in
      Some { spans = List.rev !pieces; ncells = 1; post }

let release_stash t vc = Queue.transfer vc.stash t.pending_cells

(* Abandon the VC's in-progress PDU: recycle its buffers, reset the
   reassembly and, if the host already holds part of its chain, terminate
   that chain with an abort marker (len 0, eop) so the driver discards it.
   [marker_addr] distinguishes the marker's cause on the host side: 0 for
   board-decision aborts (loss/reject/no-buffer), [timeout_marker_addr]
   for reassembly-timeout sweeps. Must run in process context when a
   marker may be emitted (the enqueue suspends). *)
let timeout_marker_addr = 1

let abort_current_pdu t vc ~marker_addr =
  let partially_posted = vc.next_post > 0 in
  recycle_buffers vc;
  reset_vc vc;
  release_stash t vc;
  if partially_posted then
    deliver_desc t vc vc.channel
      (Desc.v ~addr:marker_addr ~len:0 ~vci:vc.vci ~eop:true ())

let drop_pdu t vc =
  Metrics.incr t.m.m_pdus_dropped_no_buffer;
  abort_current_pdu t vc ~marker_addr:0;
  vc.dropping <- true

(* Process one received cell: reassembly decision plus DMA submission.
   Returns the placement when a further cell could be combined with it. *)
let rx_handle_cell t (phys_link, cell) =
  Metrics.incr t.m.m_cells_received;
  i960_work t t.cfg.rx_cycles_per_cell;
  (* Physical channel -> logical stripe index. Identity while the trunk is
     healthy; narrowed after a carrier loss. -1 = the channel died while
     this cell sat in the input FIFO. Stashed/reprocessed cells keep the
     physical index so they translate against the map current at
     reprocessing time. *)
  let link =
    if phys_link >= 0 && phys_link < Array.length t.rx_link_map then
      t.rx_link_map.(phys_link)
    else phys_link
  in
  if link < 0 then begin
    Metrics.incr t.m.m_cells_dropped;
    None
  end
  else
  (* The paper's on-board early demultiplexing (§3.1), now a hashed
     classification step whose probe count the experiments charge to the
     per-cell budget via the machine's cache-cost model. *)
  match Ctable.find_slot t.vcs cell.Cell.vci with
  | -1 ->
      Metrics.incr t.m.m_unknown_vci_cells;
      None
  | slot ->
      let vc = Ctable.slot_value t.vcs slot in
      if vc.dropping then begin
        Metrics.incr t.m.m_cells_dropped;
        if cell.Cell.last_of_pdu then vc.dropping <- false;
        None
      end
      else if Sar.in_progress vc.sar && Sar.link_finished vc.sar ~link then begin
        if Sar.all_links_finished vc.sar then begin
          (* Every sub-stream has ended but the PDU did not complete: cells
             were lost on the wire. Abandon it so the VC cannot wedge. *)
          Trace.emitf Trace.Board_rx ~now:(Engine.now t.eng)
            "abandon incomplete PDU vci=%d (lost cells)" cell.Cell.vci;
          Metrics.incr t.m.m_reassembly_errors;
          abort_current_pdu t vc ~marker_addr:0;
          (* reprocess this cell against the fresh state, after the
             released stash *)
          Queue.add (phys_link, cell) t.pending_cells;
          None
        end
        else begin
          (* This link's share of the current PDU is done: the cell starts
             the next PDU. Hold it until the current one completes. *)
          Trace.emitf Trace.Board_rx ~now:(Engine.now t.eng)
            "stash vci=%d seq=%d link=%d" cell.Cell.vci cell.Cell.seq link;
          Queue.add (phys_link, cell) vc.stash;
          None
        end
      end
      else begin
        let was_in_progress = Sar.in_progress vc.sar in
        match Sar.push vc.sar ~link cell with
        | Sar.Rejected reason ->
            Trace.emitf Trace.Board_rx ~now:(Engine.now t.eng)
              "reject vci=%d seq=%d link=%d: %s" cell.Cell.vci cell.Cell.seq
              link reason;
            Metrics.incr t.m.m_reassembly_errors;
            Metrics.incr t.m.m_cells_dropped;
            abort_current_pdu t vc ~marker_addr:0;
            None
        | Sar.Placed p -> (
            (* Progress for the timeout sweeper: the timer is an
               inactivity bound, restarted by every placement. Wake the
               sweeper when this VC (re)enters reassembly. *)
            vc.last_progress <- Engine.now t.eng;
            if (not was_in_progress) && t.cfg.reassembly_timeout > 0 then
              Signal.broadcast t.sweep_work;
            match dma_cmd_of_placement t vc p ~completed_total:None with
            | None ->
                drop_pdu t vc;
                None
            | Some cmd -> Some (vc, p, cmd, false))
        | Sar.Completed (p, total) -> (
            (* Release any held next-PDU cells for reprocessing, in
               arrival order, ahead of new arrivals. *)
            let release () = release_stash t vc in
            match
              dma_cmd_of_placement t vc p ~completed_total:(Some total)
            with
            | None ->
                drop_pdu t vc;
                release ();
                None
            | Some cmd ->
                release ();
                Some (vc, p, cmd, true))
      end

(* Can a second cell's DMA be merged with the first's? Only when the two
   payloads are physically consecutive and in the same page. *)
let combinable (cmd1 : dma_cmd) (cmd2 : dma_cmd) ~page_size =
  match (cmd1.spans, cmd2.spans) with
  | [ (a1, d1) ], [ (a2, _) ] ->
      a2 = a1 + Bytes.length d1 && a1 / page_size = (a2 + 43) / page_size
  | _ -> false

let submit_dma t cmd =
  Metrics.add t.m.m_dma_rx (List.length cmd.spans);
  if List.length cmd.spans > 1 then
    Metrics.add t.m.m_boundary_splits (List.length cmd.spans - 1);
  Mailbox.send t.rx_dma_q cmd

let rx_processor t () =
  let recv () =
    match Queue.take_opt t.pending_cells with
    | Some c -> c
    | None -> (
        match t.recv_fn with
        | Some f -> f ()
        | None -> failwith "Board: receive side not attached")
  in
  let rec loop () =
    let c1 = recv () in
    (match rx_handle_cell t c1 with
    | None -> ()
    | Some (_vc, _p, cmd, _done1) -> submit_dma t cmd);
    loop ()
  in
  loop ()

let exec_dma t (cmd : dma_cmd) =
  List.iter
    (fun (addr, data) ->
      Hist.add t.m.m_dma_bytes (float_of_int (Bytes.length data));
      Tc.dma_write t.bus ~bytes:(Bytes.length data);
      Phys_mem.blit_from_bytes t.mem ~src:data ~src_off:0 ~dst:addr
        ~len:(Bytes.length data);
      t.on_dma_write ~addr ~len:(Bytes.length data))
    cmd.spans;
  cmd.post ()

let rx_dma_engine t () =
  let rec loop () =
    let cmd1 = Mailbox.recv t.rx_dma_q in
    (* Double-cell DMA (2.5.1): when the next queued command's payload is
       physically consecutive with this one's (and in the same page), the
       controller moves both in a single, longer bus transaction. This is
       where "looking at two cell headers" pays off: the command queue is
       non-empty whenever cells arrive as fast as they are served. *)
    (match
       if t.cfg.dma_mode = Double_cell then Mailbox.try_recv t.rx_dma_q
       else None
     with
    | Some cmd2 when combinable cmd1 cmd2 ~page_size:t.cfg.page_size ->
        let a1, d1 = List.hd cmd1.spans in
        let _, d2 = List.hd cmd2.spans in
        let merged = Bytes.cat d1 d2 in
        Metrics.incr t.m.m_combined_dmas;
        Hist.add t.m.m_dma_bytes (float_of_int (Bytes.length merged));
        Tc.dma_write t.bus ~bytes:(Bytes.length merged);
        Phys_mem.blit_from_bytes t.mem ~src:merged ~src_off:0 ~dst:a1
          ~len:(Bytes.length merged);
        t.on_dma_write ~addr:a1 ~len:(Bytes.length merged);
        cmd1.post ();
        cmd2.post ()
    | Some cmd2 ->
        exec_dma t cmd1;
        exec_dma t cmd2
    | None -> exec_dma t cmd1);
    loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Reassembly-timeout sweeper: a board process that bounds how long a VC
   may sit mid-reassembly without progress. A cell lost on the wire on a
   quiet VC otherwise wedges that VC forever (no later traffic triggers
   the all-links-finished abandonment). Parks on a signal while nothing
   is in progress, so an enabled sweeper holds no heap events at
   quiescence beyond its final deadline check. *)

let earliest_reassembly_deadline t =
  Ctable.fold
    (fun _ vc acc ->
      if Sar.in_progress vc.sar then begin
        let dl = vc.last_progress + t.cfg.reassembly_timeout in
        match acc with Some d when d <= dl -> acc | _ -> Some dl
      end
      else acc)
    t.vcs None

let sweep_stuck_reassemblies t =
  let now = Engine.now t.eng in
  let stuck =
    Ctable.fold
      (fun _ vc acc ->
        if
          Sar.in_progress vc.sar
          && now - vc.last_progress >= t.cfg.reassembly_timeout
        then vc :: acc
        else acc)
      t.vcs []
  in
  List.iter
    (fun vc ->
      Metrics.incr t.m.m_reassembly_timeouts;
      Trace.emitf Trace.Fault ~now "reassembly timeout vci=%d (idle %d ns)"
        vc.vci (now - vc.last_progress);
      abort_current_pdu t vc ~marker_addr:timeout_marker_addr)
    stuck

let reassembly_sweeper t () =
  let rec loop () =
    (match earliest_reassembly_deadline t with
    | None -> Signal.wait t.sweep_work
    | Some dl ->
        let now = Engine.now t.eng in
        if dl > now then Process.sleep t.eng (dl - now)
        else sweep_stuck_reassemblies t);
    loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Carrier transition on the incoming trunk: narrow (or widen) the
   stripe. In-flight reassemblies cannot survive a width change — cell
   positions were computed under the old width — so they are aborted with
   accounting, stashed next-PDU cells are dropped, and every VC's
   reassembly state is rebuilt for the new width. Boundary PDUs that mix
   widths die by rejection or CRC; the trunk itself never stalls. *)

let handle_rx_restripe t link =
  let live = Atm_link.live_links link in
  Array.fill t.rx_link_map 0 (Array.length t.rx_link_map) (-1);
  List.iteri
    (fun logical phys ->
      if phys < Array.length t.rx_link_map then t.rx_link_map.(phys) <- logical)
    live;
  (match t.cfg.reassembly with
  | Sar.Per_link _ -> t.rx_strategy <- Sar.Per_link (max 1 (List.length live))
  | s -> t.rx_strategy <- s);
  let victims =
    Ctable.fold
      (fun _ vc acc ->
        let busy = Sar.in_progress vc.sar || not (Queue.is_empty vc.stash) in
        (* Stashed cells were striped under the old width; they cannot be
           replayed meaningfully. *)
        Metrics.add t.m.m_cells_dropped (Queue.length vc.stash);
        Queue.clear vc.stash;
        let marker = busy && vc.next_post > 0 in
        if busy then begin
          Metrics.incr t.m.m_restripe_aborts;
          recycle_buffers vc;
          reset_vc vc
        end;
        vc.sar <- Sar.create t.rx_strategy ~max_cells:t.cfg.max_pdu_cells;
        if marker then vc :: acc else acc)
      t.vcs []
  in
  Trace.emitf Trace.Fault ~now:(Engine.now t.eng)
    "restripe to %d live links (%d aborted reassemblies)" (List.length live)
    (List.length victims);
  (* Abort-marker enqueues suspend for dual-port accesses, and carrier
     callbacks may run from an engine callback: hand them to a process. *)
  if victims <> [] then
    Process.spawn t.eng ~name:"restripe-abort" (fun () ->
        List.iter
          (fun vc ->
            deliver_desc t vc vc.channel
              (Desc.v ~addr:0 ~len:0 ~vci:vc.vci ~eop:true ()))
          victims)

(* ------------------------------------------------------------------ *)

let attach t ~tx_link ~rx_link =
  t.tx_link <- Some tx_link;
  t.rx_link <- Some rx_link;
  t.recv_fn <- Some (fun () -> Atm_link.recv rx_link);
  t.try_recv_fn <- Some (fun () -> Atm_link.try_recv rx_link);
  Atm_link.on_link_change rx_link (fun () -> handle_rx_restripe t rx_link)

let start_fictitious_source t ~pdus ?rate_mbps () =
  if pdus = [] then invalid_arg "Board.start_fictitious_source: no PDUs";
  let rate =
    match rate_mbps with
    | Some r -> r
    | None ->
        (* Payload rate of the striped OC-12: 4 x 155.52 x 44/53. *)
        4.0 *. 155.52 *. 44.0 /. 53.0
  in
  let inter_cell_ns =
    int_of_float
      (Float.round (float_of_int (Cell.data_size * 8) /. rate *. 1000.0))
  in
  let cells =
    Array.of_list
      (List.concat_map
         (fun (vci, pdu) -> Sar.segment ~vci ~nlinks:t.cfg.nlinks pdu)
         pdus)
  in
  let mbox = Mailbox.create t.eng ~capacity:t.cfg.rx_fifo_cells () in
  Process.spawn t.eng ~name:"fictitious-source" (fun () ->
      (* Pace against an absolute schedule so transient FIFO backpressure
         does not permanently lower the offered rate. *)
      let rec loop i next =
        let now = Engine.now t.eng in
        if next > now then Process.sleep t.eng (next - now);
        let cell = cells.(i) in
        (* Blocks when the FIFO is full: "as fast as the receiving host
           could absorb them". *)
        Mailbox.send mbox (cell.Cell.seq mod t.cfg.nlinks, cell);
        loop ((i + 1) mod Array.length cells)
          (max next (Engine.now t.eng - (8 * inter_cell_ns)) + inter_cell_ns)
      in
      loop 0 (Engine.now t.eng));
  t.recv_fn <- Some (fun () -> Mailbox.recv mbox);
  t.try_recv_fn <- Some (fun () -> Mailbox.try_recv mbox)

let start t =
  if t.started then invalid_arg "Board.start: already started";
  t.started <- true;
  Process.spawn t.eng ~name:"tx-processor" (tx_processor t);
  Process.spawn t.eng ~name:"tx-dma" (tx_dma_engine t);
  Process.spawn t.eng ~name:"tx-sender" (tx_sender t);
  if t.recv_fn <> None then begin
    Process.spawn t.eng ~name:"rx-processor" (rx_processor t);
    Process.spawn t.eng ~name:"rx-dma" (rx_dma_engine t);
    if t.cfg.reassembly_timeout > 0 then
      Process.spawn t.eng ~name:"reassembly-sweeper" (reassembly_sweeper t)
  end;
  (* Wake the transmit processor whenever any channel gets new work; the
     kick counter is bumped synchronously inside the enqueue so a kick can
     never be lost while the processor is mid-scan. *)
  Array.iter
    (fun ch ->
      Desc_queue.set_on_enqueue ch.tx_q (fun () ->
          t.tx_kicks <- t.tx_kicks + 1;
          Signal.broadcast t.tx_work))
    t.channels

let debug_tx_state t =
  let chs =
    Array.to_list t.channels
    |> List.filter_map (fun ch ->
           let q = Desc_queue.count ch.tx_q in
           let st =
             match ch.txst with
             | None -> "-"
             | Some p -> Printf.sprintf "%d/%d" p.next (Array.length p.cells)
           in
           if q = 0 && ch.txst = None then None
           else Some (Printf.sprintf "ch%d{q=%d ahead=%d pdu=%s}" ch.id q
                        ch.peek_ahead st))
  in
  Printf.sprintf "kicks=%d fetch_q=%d out=%d %s" t.tx_kicks
    (Mailbox.length t.tx_fetch_q)
    (Mailbox.length t.tx_out)
    (String.concat " " chs)

let tx_idle t =
  Array.for_all
    (fun ch -> ch.txst = None && Desc_queue.is_empty ch.tx_q)
    t.channels
  && Mailbox.is_empty t.tx_fetch_q && Mailbox.is_empty t.tx_out

(* ------------------------------------------------------------------ *)
(* Accounting views for Osiris_core.Invariants (meaningful at
   quiescence: buffers inside an in-flight DMA command are counted
   neither here nor host-side until the command posts). *)

let held_buffers t =
  Ctable.fold
    (fun _ vc acc ->
      let unposted =
        bufs_fold (fun b n -> if b.posted then n else n + 1) vc.bufs 0
      in
      acc + unposted + Queue.length vc.fbufs)
    t.vcs 0

let reassemblies_in_progress t =
  Ctable.fold
    (fun _ vc acc -> if Sar.in_progress vc.sar then acc + 1 else acc)
    t.vcs 0

let oldest_reassembly_age t =
  let now = Engine.now t.eng in
  Ctable.fold
    (fun _ vc acc ->
      if Sar.in_progress vc.sar then begin
        let age = now - vc.last_progress in
        match acc with Some a when a >= age -> acc | _ -> Some age
      end
      else acc)
    t.vcs None

