(** The OSIRIS network adaptor.

    Two mostly independent halves — send and receive — each controlled by an
    Intel 80960 (modelled as a simulation process with a per-cell cycle
    budget), communicating with the host through descriptor queues in
    dual-port memory and moving all network data by DMA ({!Osiris_bus}).

    {2 Channels}

    The dual-port memory is partitioned into sixteen 4 KB pages per
    direction, each holding a transmit queue (transmit side) or a
    free-buffer/receive queue pair (receive side). Channel 0 belongs to the
    operating system; the rest can be opened as {e application device
    channels} (paper §3.2) with a VCI set, a transmit priority, and a list
    of authorized physical pages that the on-board processors enforce,
    raising a protection-violation interrupt on an unauthorized buffer
    address.

    {2 Transmit path}

    The host enqueues a PDU as a chain of buffer descriptors. The transmit
    processor reads the chain, segments the (AAL5-framed) PDU into cells,
    fetches each cell's data by DMA — stopping at page boundaries and buffer
    ends, per the modified DMA controller of §2.5.2 — and hands cells to the
    striped link. Channels are served by strict priority and, within a
    priority level, cell-by-cell round-robin (the fine-grained multiplexing
    of §2.5.1). Completion is signalled by tail-pointer advance, never by
    interrupt; a host that found the queue full can request a single
    interrupt at the half-empty mark (§2.1.2).

    {2 Receive path}

    The receive processor reads (link, cell) pairs from the input FIFO,
    demultiplexes on the VCI to a channel and its reassembly state, decides
    the host memory address of the payload (any {!Osiris_atm.Sar.strategy}),
    and issues one DMA command per cell — or one per {e two} cells when
    double-cell DMA is enabled and two successive payloads land contiguously
    (§2.5.1). Filled buffers are posted to the channel's receive queue; an
    interrupt is asserted only on that queue's empty → non-empty transition.
    When a channel has no free buffers, the PDU is dropped on the board,
    before it costs the host anything (§3.1's priority-drop behaviour). *)

module Sar = Osiris_atm.Sar

type dma_mode = Single_cell | Double_cell

type tx_mux = Cell_interleave | Pdu_at_once
(** Transmit multiplexing granularity (§2.5.1): interleave cells of
    different channels' PDUs (fine-grained, good for latency), or finish
    each PDU before starting another (coarse: simpler, but a small message
    waits behind a whole bulk PDU). *)

type config = {
  dma_mode : dma_mode;
  tx_mux : tx_mux;
  queue_size : int;  (** descriptor slots per queue (paper: 64) *)
  locking : Desc_queue.locking;
  reassembly : Sar.strategy;
  nlinks : int;  (** stripe width segmentation targets *)
  i960_hz : int;
  tx_cycles_per_cell : int;  (** transmit processor work per cell *)
  rx_cycles_per_cell : int;  (** receive processor work per cell *)
  combine_saving_cycles : int;
      (** receive cycles saved on the second cell of a combined pair *)
  tx_combine_saving_cycles : int;
      (** transmit cycles saved on the second cell of a double-cell fetch *)
  queue_word_cycles : int;  (** i960 cycles per dual-port word touched *)
  n_channels : int;  (** 16 *)
  max_pdu_cells : int;  (** reassembly window *)
  page_size : int;  (** DMA transactions never cross this boundary *)
  rx_fifo_cells : int;  (** input staging when fed by a generator *)
  reassembly_timeout : Osiris_sim.Time.t;
      (** abort a VC's reassembly after this much time without a placed
          cell (0 = disabled, the default): the recovery path for cells
          lost on an otherwise quiet VC, which no later traffic would
          ever abandon *)
  irq_reassert : Osiris_sim.Time.t;
      (** watchdog period re-asserting [Rx_nonempty] while a receive
          queue stays backed up (0 = disabled, the default): recovery
          from a lost coalesced interrupt *)
  demux_oracle : bool;
      (** mirror the VC classification table in a [Hashtbl] and audit
          the two against each other in {!demux_check} (off by
          default) *)
}

val default_config : config

type interrupt_reason =
  | Rx_nonempty of int  (** channel id *)
  | Tx_half_empty of int
  | Protection_violation of int

type stats = {
  mutable cells_sent : int;
  mutable cells_received : int;
  mutable pdus_sent : int;
  mutable pdus_received : int;
  mutable dma_tx_transactions : int;
  mutable dma_rx_transactions : int;
  mutable combined_dmas : int;  (** receive DMAs that carried two cells *)
  mutable boundary_splits : int;
      (** extra transactions forced by page/buffer boundaries *)
  mutable pdus_dropped_no_buffer : int;
  mutable cells_dropped : int;
  mutable reassembly_errors : int;
  mutable protection_faults : int;
  mutable unknown_vci_cells : int;
  mutable reassembly_timeouts : int;
      (** stuck reassemblies swept by the timeout *)
  mutable restripe_aborts : int;
      (** in-flight reassemblies aborted by a stripe-width change *)
  mutable interrupts_suppressed : int;  (** eaten by the fault filter *)
  mutable irq_reasserts : int;  (** watchdog re-assertions *)
}

type t
type channel

val create :
  Osiris_sim.Engine.t ->
  bus:Osiris_bus.Turbochannel.t ->
  mem:Osiris_mem.Phys_mem.t ->
  on_interrupt:(interrupt_reason -> unit) ->
  ?on_dma_write:(addr:int -> len:int -> unit) ->
  config ->
  t
(** [on_dma_write] is how the host's cache model observes receive DMA (to
    leave stale lines or update them, per its coherence mode). *)

val config : t -> config
val engine : t -> Osiris_sim.Engine.t
val stats : t -> stats

val attach : t -> tx_link:Osiris_link.Atm_link.t -> rx_link:Osiris_link.Atm_link.t -> unit
(** Connect the board to its outgoing and incoming striped links. *)

val start : t -> unit
(** Spawn the transmit and receive processor pipelines. Call once, after
    {!attach} (or before {!start_fictitious_source}). *)

val start_fictitious_source :
  t -> pdus:(int * Bytes.t) list -> ?rate_mbps:float -> unit -> unit
(** Program the receive processor to synthesize the given (VCI, PDU) pairs,
    cyclically, at the given data rate (default: the 516 Mb/s payload rate
    of a striped OC-12), instead of reading the link — the paper's §4
    receive-side experiment. Must be called instead of {!attach}. *)

(** {2 Channels} *)

val kernel_channel : t -> channel

val open_channel : t -> ?priority:int -> unit -> channel
(** Allocate one of the remaining queue-page pairs (an ADC). Lower
    [priority] is served first on transmit. Raises [Failure] when all pages
    are taken. *)

val channel_id : channel -> int
val tx_queue : channel -> Desc_queue.t
val free_queue : channel -> Desc_queue.t
val rx_queue : channel -> Desc_queue.t

val set_allowed_pages : channel -> Osiris_mem.Pbuf.t list option -> unit
(** Physical ranges this channel may name in descriptors; [None] (the
    kernel's setting) means unrestricted. *)

val set_priority : channel -> int -> unit

val bind_vci : t -> vci:int -> channel -> unit
(** Route incoming cells with this VCI to the channel. Each path/connection
    binds its own VCI — VCIs are treated as an abundant resource (§3.1). *)

val unbind_vci : t -> vci:int -> unit

val supply_vci_buffer : t -> vci:int -> Desc.t -> bool
(** Host-side: push a preallocated per-VCI buffer (a cached fbuf, §3.1) that
    the receive processor will prefer over the channel's generic free queue
    for this VCI. Charged like a free-queue enqueue. [false] when the
    per-VCI queue is full. *)

val vci_buffer_count : t -> vci:int -> int

(** {2 Demultiplexing cost accounting}

    The per-cell VCI lookup runs through an {!Osiris_classify.Table};
    these expose its probe statistics (the demux_scale experiment's cost
    inputs), its analytic footprint, and its structural /
    differential-oracle audit. *)

val demux_stats : t -> Osiris_classify.Table.probe_stats
val reset_demux_stats : t -> unit

val demux_resident_bytes : t -> int
(** Analytic resident size of the classification table itself (not the
    per-VC reassembly state behind it). *)

val demux_vcs : t -> int
(** Number of currently bound VCIs. *)

val demux_check : t -> string list
(** Structural invariants of the classification table, plus equivalence
    with the [Hashtbl] mirror when [demux_oracle] is set. Empty =
    clean. *)

val tx_idle : t -> bool
(** True when no channel has transmit work pending or in progress. *)

(** {2 Fault injection and recovery accounting} *)

val set_irq_filter : t -> (interrupt_reason -> bool) option -> unit
(** Install (or remove) an interrupt-loss filter: a filter returning
    [false] eats the assertion (counted as [interrupts_suppressed]).
    Recovery from eaten [Rx_nonempty] assertions requires the
    [irq_reassert] watchdog. *)

val set_free_gate : t -> ch:int -> bool -> unit
(** Gate (or ungate) one channel's generic free queue: while gated, the
    board behaves as if the host had stopped replenishing it — PDU
    arrivals needing a fresh buffer are dropped and counted
    ([pdus_dropped_no_buffer]). Descriptors already in the queue stay
    there (buffer conservation holds), per-VCI private buffers keep
    working, and other channels are unaffected. The per-ADC free-queue
    starvation fault ([freestarve#N] in {!Osiris_fault.Plan}). *)

val free_gated : t -> ch:int -> bool

val timeout_marker_addr : int
(** The [addr] field of abort markers (len 0, eop) emitted by the
    reassembly-timeout sweeper; board-decision aborts use 0. Lets the
    driver account the two causes separately. *)

val held_buffers : t -> int
(** Receive buffers currently owned by the board across all VCs: cached
    per-VCI fbufs plus buffers of in-progress PDUs not yet posted to a
    receive queue. Meaningful at quiescence (buffers riding an in-flight
    DMA command are in neither side's count). *)

val reassemblies_in_progress : t -> int

val oldest_reassembly_age : t -> Osiris_sim.Time.t option
(** Age (now - last placement) of the most-stale in-progress reassembly;
    [None] when all VCs are idle. *)

val debug_tx_state : t -> string
(** One-line dump of the transmit machinery (queue depths, in-progress
    segmentation, staging FIFOs) for diagnosing stalls. *)
