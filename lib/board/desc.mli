(** Buffer descriptors exchanged through the dual-port memory (paper
    §2.1.1).

    Each descriptor names one physical buffer in main memory by physical
    address and length. A PDU is a chain of descriptors whose last element
    carries [eop]. On the transmit side the host fills descriptors and the
    board consumes them; the receive side uses one descriptor stream for
    free buffers (host → board) and one for filled buffers (board → host),
    where [len] is the number of bytes actually stored and [vci] identifies
    the stream for early demultiplexing. *)

type t = { addr : int; len : int; vci : int; eop : bool; marked : bool }

val words : int
(** Dual-port memory words a descriptor occupies (address word plus a
    packed len/vci/flags word): the unit of PIO cost accounting. *)

val v :
  addr:int -> len:int -> ?vci:int -> ?eop:bool -> ?marked:bool -> unit -> t
(** [len = 0] with [eop] is the abort marker the receive processor posts
    when it must abandon a PDU after some of its buffers were already
    handed to the host. [marked] (default [false], flags word bit) is the
    reassembled PDU's congestion bit: the receive processor sets it on the
    [eop] descriptor when any cell of the PDU arrived marked. *)

val of_pbuf : ?vci:int -> ?eop:bool -> Osiris_mem.Pbuf.t -> t

val to_pbuf : t -> Osiris_mem.Pbuf.t

val chain_of_pbufs : vci:int -> Osiris_mem.Pbuf.t list -> t list
(** Descriptor chain for a PDU: one descriptor per physical buffer, [eop]
    set on the last. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
