(** Deterministic, seeded fault plans.

    A plan is a pure description of {e when} each fault dimension is
    active and how hard: probabilistic bursts (cell drop, payload
    corruption, header corruption, duplication, interrupt loss) and timed
    windows (per-channel carrier loss, receive-FIFO squeeze). Plans are
    data — applying one to a running simulation is {!Injector}'s job.

    {!random} derives every choice from its seed, so a soak failure
    reproduces from the seed alone; {!to_string}/{!of_string} round-trip
    a plan through the compact textual form also accepted from the
    [OSIRIS_FAULT_PLAN] environment variable (times are integer
    nanoseconds, with [us]/[ms]/[s] suffixes accepted on input):

    {v seed=7;drop@2ms-5ms=0.002;down#2@3ms-4ms;squeeze#4@1ms-2ms v}

    Interrupt loss comes in two granularities: [irqloss@a-b=p] suppresses
    receive interrupts for every channel, while [irqloss#3@a-b=p] targets
    only ADC channel 3 (the injector takes the max of the two for a
    channel with both active).

    Two further targeted faults: [freestarve#1@2ms-4ms] withholds
    channel 1's free-queue replenishment for the window, and
    [flap#2@2ms-4ms=40us] cycles channel 2's carrier down/up every
    40 µs for the window — a flap storm faster than one PDU's wire time
    (the single clean outage of [down#N] taken to its re-striping
    stress limit). *)

type burst = {
  b_from : Osiris_sim.Time.t;
  b_until : Osiris_sim.Time.t;  (** exclusive *)
  prob : float;  (** per-cell (or per-interrupt) probability while active *)
}

type window = { w_from : Osiris_sim.Time.t; w_until : Osiris_sim.Time.t }

type t = {
  seed : int;
  drop : burst list;
  corrupt : burst list;  (** payload byte flips *)
  corrupt_header : burst list;  (** VCI/seq mangles (misdelivery) *)
  duplicate : burst list;
  link_down : (int * window) list;  (** (channel, outage window) *)
  rx_squeeze : (int * window) list;  (** (fifo capacity, window) *)
  irq_loss : burst list;  (** lost coalesced receive interrupts *)
  irq_loss_ch : (int * burst) list;
      (** (ADC channel, burst): interrupt loss for one channel only *)
  free_starve : (int * window) list;
      (** (channel, window): the channel's generic free queue yields
          nothing — host replenishment withheld ([freestarve#N@a-b]) *)
  flap : (int * window * Osiris_sim.Time.t) list;
      (** (channel, storm window, half-period): carrier flap storm — the
          link toggles down/up every half-period for the whole window,
          starting down ([flap#N@a-b=hp]; pick a half-period shorter
          than one PDU's wire time to stress re-striping) *)
  port_flap : (int * window * Osiris_sim.Time.t) list;
      (** (switch output port, storm window, half-period): fabric-level
          carrier flap — the switch port stops draining on the down
          half-periods, so its queue fills and overflows while transport
          retransmissions ride out the storm ([portflap#N@a-b=hp]).
          Applied by {!Injector.inject_fabric}. *)
  trunk_loss : burst list;
      (** cell-drop bursts on the inter-switch trunk links of a chain
          topology ([trunkloss@a-b=p]); applied by
          {!Injector.inject_fabric} *)
  sw_flap : (int * int * window * Osiris_sim.Time.t) list;
      (** (switch, port, storm window, half-period): the topology-wide
          form of [port_flap], addressing one port of one switch in a
          generated fabric ([swflap#S.P@a-b=hp]); applied by
          {!Injector.inject_topology} *)
  trunk_down : (int * window) list;
      (** (trunk index, outage window): a clean bidirectional cut of one
          fabric trunk — all striped channels of both directed links down
          for the window ([trunkdown#T@a-b]); applied by
          {!Injector.inject_topology} *)
}

val none : t

(** The effective knob values at one instant (overlapping bursts take the
    max probability; overlapping squeezes the tightest capacity). *)
type knobs = {
  k_drop : float;
  k_corrupt : float;
  k_header : float;
  k_dup : float;
  k_irq_loss : float;
  k_irq_loss_ch : (int * float) list;
      (** per-channel interrupt-loss probability; channels with no active
          burst are absent *)
  k_down : int list;
      (** channels whose carrier is cut right now (outages and the down
          half-periods of flap storms) *)
  k_squeeze : int option;
  k_free_starve : int list;  (** channels whose free queue is withheld *)
  k_port_down : int list;
      (** switch output ports down right now (down half-periods of
          port-flap storms) *)
  k_trunk_loss : float;  (** trunk cell-drop probability right now *)
  k_sw_port_down : (int * int) list;
      (** (switch, port) pairs down right now (down half-periods of
          swflap storms) *)
  k_trunk_down : int list;  (** fabric trunks cut right now *)
}

val knobs_at : t -> Osiris_sim.Time.t -> knobs

val boundaries : t -> Osiris_sim.Time.t list
(** Every instant at which some knob changes, sorted, deduplicated — the
    times an injector must re-apply {!knobs_at}. *)

val random : ?nlinks:int -> seed:int -> horizon:Osiris_sim.Time.t -> unit -> t
(** A multi-dimension plan whose windows all end by 90% of [horizon]
    (leaving a fault-free grace period to quiesce in), derived entirely
    from [seed]. *)

val to_string : t -> string
val of_string : string -> t

val of_env : unit -> t option
(** Parse [OSIRIS_FAULT_PLAN] when set and non-empty. *)

val pp : Format.formatter -> t -> unit
