(** Applies a {!Plan} to a running simulation.

    The injector schedules one engine event per plan boundary; each event
    re-derives every knob from the plan at that instant and pushes it
    into the link (loss/corruption/duplication probabilities, carrier
    state, receive-FIFO squeeze) and, when a board is supplied, an
    interrupt-loss filter drawing from the injector's own seeded RNG
    plus the per-channel free-queue starvation gates
    ([Board.set_free_gate], from the plan's [free_starve] windows).
    Interrupt loss resolves per receive channel: a [Rx_nonempty ch]
    interrupt is suppressed with the max of the plan's global
    [irq_loss] probability and the channel-targeted [irq_loss_ch]
    probability for [ch]. Flap storms need no injector support beyond
    their dense boundary list: each toggle re-derives the carrier state
    through the same [set_link_state] path as a clean outage.
    The traffic RNG streams are untouched, so the same traffic seed with
    different plans stays comparable.

    Injection events count into the metrics registry ([fault.*]) and
    trace under [Trace.Fault]. *)

type t

val inject :
  Osiris_sim.Engine.t ->
  plan:Plan.t ->
  link:Osiris_link.Atm_link.t ->
  ?board:Osiris_board.Board.t ->
  unit ->
  t
(** Arm the plan on [link] (the faulted direction) and, optionally, the
    interrupt-loss filter on [board] (the receiving side). Knobs active
    at the current instant are applied immediately; every later boundary
    is scheduled. Call from process context or an engine callback. *)

val disarm : t -> unit
(** Restore every knob to the link's configured baseline, raise all
    carriers, zero the interrupt-loss probability and deactivate pending
    boundary events. Used before measuring quiescence. *)

val plan : t -> Plan.t

(** {2 Fabric faults}

    The plan's switch-level dimensions: [portflap#N@a-b=hp] storms an
    output port's carrier through {!Osiris_switch.Switch.set_port_state}
    (a down port stops draining, so its queue fills and overflows) and
    [trunkloss@a-b=p] raises the cell-drop probability of the
    inter-switch trunk links. One plan can drive host-link injectors and
    a fabric injector side by side; they share its boundary list. *)

type fabric

val inject_fabric :
  Osiris_sim.Engine.t ->
  plan:Plan.t ->
  switch:Osiris_switch.Switch.t ->
  ?trunks:Osiris_link.Atm_link.t array ->
  unit ->
  fabric
(** Arm the plan's fabric dimensions on [switch] and, for chain
    topologies, on its [trunks] (e.g.
    {!Osiris_core.Network.topology.trunks}). *)

val disarm_fabric : fabric -> unit
(** Raise every port and restore the trunks' configured drop
    probabilities; pending boundary events become no-ops. *)

val fabric_plan : fabric -> Plan.t

(** {2 Topology faults}

    The plan's fabric-wide dimensions over a {e generated} topology:
    [swflap#S.P@a-b=hp] storms port [P] of switch [S],
    [trunkdown#T@a-b] cuts every striped channel of both directed links
    of trunk [T] for the window, and [trunkloss@a-b=p] raises the
    cell-drop probability of every trunk link at once. *)

type topo

val inject_topology :
  Osiris_sim.Engine.t ->
  plan:Plan.t ->
  switches:Osiris_switch.Switch.t array ->
  trunks:Osiris_link.Atm_link.t array ->
  unit ->
  topo
(** Arm the plan's topology dimensions on a whole generated fabric —
    [switches] and [trunks] straight from
    {!Osiris_core.Network.topology} ([trunks] holds the two directed
    links of plan trunk [i] at [2i] and [2i+1]). *)

val disarm_topology : topo -> unit
(** Raise every port of every switch, restore every trunk link's
    configured drop probability and carrier; pending boundary events
    become no-ops. *)

val topology_plan : topo -> Plan.t
