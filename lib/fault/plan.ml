module Time = Osiris_sim.Time
module Rng = Osiris_util.Rng

type burst = { b_from : Time.t; b_until : Time.t; prob : float }
type window = { w_from : Time.t; w_until : Time.t }

type t = {
  seed : int;
  drop : burst list;
  corrupt : burst list;
  corrupt_header : burst list;
  duplicate : burst list;
  link_down : (int * window) list;
  rx_squeeze : (int * window) list;
  irq_loss : burst list;
  irq_loss_ch : (int * burst) list;
  free_starve : (int * window) list;
  flap : (int * window * Time.t) list;
  port_flap : (int * window * Time.t) list;
  trunk_loss : burst list;
  sw_flap : (int * int * window * Time.t) list;
  trunk_down : (int * window) list;
}

let none =
  {
    seed = 0;
    drop = [];
    corrupt = [];
    corrupt_header = [];
    duplicate = [];
    link_down = [];
    rx_squeeze = [];
    irq_loss = [];
    irq_loss_ch = [];
    free_starve = [];
    flap = [];
    port_flap = [];
    trunk_loss = [];
    sw_flap = [];
    trunk_down = [];
  }

type knobs = {
  k_drop : float;
  k_corrupt : float;
  k_header : float;
  k_dup : float;
  k_irq_loss : float;
  k_irq_loss_ch : (int * float) list;
      (* per-ADC-channel interrupt-loss probability, max over the
         channel's active bursts; channels without an active burst are
         absent *)
  k_down : int list;  (* channels whose carrier is cut *)
  k_squeeze : int option;  (* tightest active rx-FIFO capacity *)
  k_free_starve : int list;  (* channels whose free queue is withheld *)
  k_port_down : int list;  (* switch output ports with the carrier cut *)
  k_trunk_loss : float;  (* cell-drop probability on inter-switch trunks *)
  k_sw_port_down : (int * int) list;
      (* (switch, port) pairs with the carrier cut — the topology-wide
         form of [k_port_down], addressing a port of a named switch in a
         generated fabric *)
  k_trunk_down : int list;  (* fabric trunk indices whose links are cut *)
}

(* A flapping link is down on even half-periods of its storm window:
   down at [w_from], up one half-period later, and so on until the
   window closes (the injector restores the carrier at [w_until]). *)
let flap_is_down (w, half_period) now =
  now >= w.w_from && now < w.w_until && half_period > 0
  && (now - w.w_from) / half_period mod 2 = 0

let active_prob bursts now =
  List.fold_left
    (fun acc b ->
      if now >= b.b_from && now < b.b_until then Float.max acc b.prob else acc)
    0.0 bursts

let knobs_at t now =
  {
    k_drop = active_prob t.drop now;
    k_corrupt = active_prob t.corrupt now;
    k_header = active_prob t.corrupt_header now;
    k_dup = active_prob t.duplicate now;
    k_irq_loss = active_prob t.irq_loss now;
    k_irq_loss_ch =
      (let chans =
         List.sort_uniq compare (List.map fst t.irq_loss_ch)
       in
       List.filter_map
         (fun ch ->
           let bursts =
             List.filter_map
               (fun (c, b) -> if c = ch then Some b else None)
               t.irq_loss_ch
           in
           match active_prob bursts now with
           | 0.0 -> None
           | p -> Some (ch, p))
         chans);
    k_down =
      List.sort_uniq compare
        (List.filter_map
           (fun (l, w) ->
             if now >= w.w_from && now < w.w_until then Some l else None)
           t.link_down
        @ List.filter_map
            (fun (l, w, hp) ->
              if flap_is_down (w, hp) now then Some l else None)
            t.flap);
    k_squeeze =
      List.fold_left
        (fun acc (cap, w) ->
          if now >= w.w_from && now < w.w_until then
            match acc with Some c when c <= cap -> acc | _ -> Some cap
          else acc)
        None t.rx_squeeze;
    k_free_starve =
      List.sort_uniq compare
        (List.filter_map
           (fun (ch, w) ->
             if now >= w.w_from && now < w.w_until then Some ch else None)
           t.free_starve);
    k_port_down =
      (* Port storms reuse the link-flap half-period model: down on even
         half-periods of the window, restored when it closes. *)
      List.sort_uniq compare
        (List.filter_map
           (fun (p, w, hp) ->
             if flap_is_down (w, hp) now then Some p else None)
           t.port_flap);
    k_trunk_loss = active_prob t.trunk_loss now;
    k_sw_port_down =
      List.sort_uniq compare
        (List.filter_map
           (fun (s, p, w, hp) ->
             if flap_is_down (w, hp) now then Some (s, p) else None)
           t.sw_flap);
    k_trunk_down =
      List.sort_uniq compare
        (List.filter_map
           (fun (tr, w) ->
             if now >= w.w_from && now < w.w_until then Some tr else None)
           t.trunk_down);
  }

let boundaries t =
  let of_burst b = [ b.b_from; b.b_until ] in
  let of_window w = [ w.w_from; w.w_until ] in
  (* A flap storm toggles at every half-period inside its window, so the
     injector must re-derive the carrier state at each toggle. *)
  let of_flap (_, w, hp) =
    if hp <= 0 then of_window w
    else begin
      let toggles = ref [ w.w_until ] in
      let time = ref w.w_from in
      while !time < w.w_until do
        toggles := !time :: !toggles;
        time := !time + hp
      done;
      !toggles
    end
  in
  List.concat
    [
      List.concat_map of_burst t.drop;
      List.concat_map of_burst t.corrupt;
      List.concat_map of_burst t.corrupt_header;
      List.concat_map of_burst t.duplicate;
      List.concat_map of_burst t.irq_loss;
      List.concat_map (fun (_, b) -> of_burst b) t.irq_loss_ch;
      List.concat_map (fun (_, w) -> of_window w) t.link_down;
      List.concat_map (fun (_, w) -> of_window w) t.rx_squeeze;
      List.concat_map (fun (_, w) -> of_window w) t.free_starve;
      List.concat_map of_flap t.flap;
      List.concat_map (fun (p, w, hp) -> of_flap (p, w, hp)) t.port_flap;
      List.concat_map of_burst t.trunk_loss;
      List.concat_map (fun (_, _, w, hp) -> of_flap ((), w, hp)) t.sw_flap;
      List.concat_map (fun (_, w) -> of_window w) t.trunk_down;
    ]
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Randomized plans: every choice below is a pure function of [seed], so
   a soak failure reproduces from the seed alone. *)

let random ?(nlinks = 4) ~seed ~horizon () =
  let rng = Rng.create ~seed in
  let h = float_of_int horizon in
  (* Windows live in [5%, 90%] of the horizon so the post-fault grace
     period is fault-free and the run can quiesce. *)
  let window () =
    let from = 0.05 +. Rng.float rng 0.55 in
    let len = 0.05 +. Rng.float rng 0.30 in
    let w_from = int_of_float (from *. h) in
    let w_until = min (int_of_float ((from +. len) *. h)) (int_of_float (0.9 *. h)) in
    { w_from; w_until = max w_until (w_from + 1) }
  in
  let burst lo spread =
    let w = window () in
    { b_from = w.w_from; b_until = w.w_until; prob = lo +. Rng.float rng spread }
  in
  let bursts n lo spread = List.init n (fun _ -> burst lo spread) in
  {
    seed;
    drop = bursts (1 + Rng.int rng 2) 0.0005 0.0045;
    corrupt = bursts 1 0.0005 0.0025;
    corrupt_header = bursts 1 0.0002 0.0008;
    duplicate = bursts 1 0.0005 0.0045;
    link_down = [ (Rng.int rng nlinks, window ()) ];
    rx_squeeze = [ (4 + Rng.int rng 5, window ()) ];
    irq_loss = bursts 1 (0.2 +. Rng.float rng 0.4) 0.0;
    (* Per-channel interrupt loss, free-queue starvation and flap storms
       are targeted faults (the random soak covers the global
       dimensions); seed them explicitly, e.g. "irqloss#3@2ms-4ms=1",
       "freestarve#1@2ms-4ms", "flap#2@2ms-4ms=40us". *)
    irq_loss_ch = [];
    free_starve = [];
    flap = [];
    port_flap = [];
    trunk_loss = [];
    sw_flap = [];
    trunk_down = [];
  }

(* ------------------------------------------------------------------ *)
(* Compact textual form, round-trippable, usable from OSIRIS_FAULT_PLAN.
   Times are integer ns with optional us/ms/s suffix on input. *)

let sprint_burst key b =
  Printf.sprintf "%s@%d-%d=%g" key b.b_from b.b_until b.prob

let to_string t =
  String.concat ";"
    (Printf.sprintf "seed=%d" t.seed
     :: List.map (sprint_burst "drop") t.drop
    @ List.map (sprint_burst "corrupt") t.corrupt
    @ List.map (sprint_burst "hdr") t.corrupt_header
    @ List.map (sprint_burst "dup") t.duplicate
    @ List.map (sprint_burst "irqloss") t.irq_loss
    @ List.map
        (fun (ch, b) -> sprint_burst (Printf.sprintf "irqloss#%d" ch) b)
        t.irq_loss_ch
    @ List.map
        (fun (l, w) -> Printf.sprintf "down#%d@%d-%d" l w.w_from w.w_until)
        t.link_down
    @ List.map
        (fun (c, w) -> Printf.sprintf "squeeze#%d@%d-%d" c w.w_from w.w_until)
        t.rx_squeeze
    @ List.map
        (fun (c, w) ->
          Printf.sprintf "freestarve#%d@%d-%d" c w.w_from w.w_until)
        t.free_starve
    @ List.map
        (fun (l, w, hp) ->
          Printf.sprintf "flap#%d@%d-%d=%d" l w.w_from w.w_until hp)
        t.flap
    @ List.map
        (fun (p, w, hp) ->
          Printf.sprintf "portflap#%d@%d-%d=%d" p w.w_from w.w_until hp)
        t.port_flap
    @ List.map (sprint_burst "trunkloss") t.trunk_loss
    @ List.map
        (fun (s, p, w, hp) ->
          Printf.sprintf "swflap#%d.%d@%d-%d=%d" s p w.w_from w.w_until hp)
        t.sw_flap
    @ List.map
        (fun (tr, w) ->
          Printf.sprintf "trunkdown#%d@%d-%d" tr w.w_from w.w_until)
        t.trunk_down)

let parse_time s =
  let num mult suffix =
    let body = String.sub s 0 (String.length s - String.length suffix) in
    int_of_float (float_of_string body *. mult)
  in
  if Filename.check_suffix s "us" then num 1e3 "us"
  else if Filename.check_suffix s "ms" then num 1e6 "ms"
  else if Filename.check_suffix s "ns" then num 1.0 "ns"
  else if Filename.check_suffix s "s" then num 1e9 "s"
  else int_of_string s

let parse_range s =
  match String.split_on_char '-' s with
  | [ a; b ] -> (parse_time a, parse_time b)
  | _ -> failwith ("Fault_plan: bad time range " ^ s)

let of_string s =
  let t = ref { none with seed = 0 } in
  let item part =
    match String.index_opt part '=' with
    | _ when String.trim part = "" -> ()
    | _ -> (
        let key, rest =
          match String.index_opt part '@' with
          | Some i ->
              (String.sub part 0 i,
               String.sub part (i + 1) (String.length part - i - 1))
          | None -> (part, "")
        in
        let key, arg =
          match String.index_opt key '#' with
          | Some i ->
              (String.sub key 0 i,
               Some (String.sub key (i + 1) (String.length key - i - 1)))
          | None -> (key, None)
        in
        let req_arg () =
          match arg with
          | Some a -> int_of_string a
          | None -> failwith ("Fault_plan: missing #channel in " ^ part)
        in
        (* swflap addresses a port of a named switch: "#switch.port" *)
        let req_sw_port () =
          match arg with
          | Some a -> (
              match String.split_on_char '.' a with
              | [ s; p ] -> (int_of_string s, int_of_string p)
              | _ -> failwith ("Fault_plan: bad #switch.port in " ^ part))
          | None -> failwith ("Fault_plan: missing #switch.port in " ^ part)
        in
        match key with
        | _ when String.length key >= 5 && String.sub key 0 5 = "seed=" ->
            t := { !t with seed = int_of_string (String.sub key 5 (String.length key - 5)) }
        | "drop" | "corrupt" | "hdr" | "dup" | "irqloss" -> (
            match String.split_on_char '=' rest with
            | [ range; p ] ->
                let b_from, b_until = parse_range range in
                let b = { b_from; b_until; prob = float_of_string p } in
                t :=
                  (match (key, arg) with
                  | "drop", _ -> { !t with drop = !t.drop @ [ b ] }
                  | "corrupt", _ -> { !t with corrupt = !t.corrupt @ [ b ] }
                  | "hdr", _ ->
                      { !t with corrupt_header = !t.corrupt_header @ [ b ] }
                  | "dup", _ -> { !t with duplicate = !t.duplicate @ [ b ] }
                  | _, Some ch ->
                      (* irqloss#ch: interrupt loss for one ADC channel *)
                      {
                        !t with
                        irq_loss_ch =
                          !t.irq_loss_ch @ [ (int_of_string ch, b) ];
                      }
                  | _, None -> { !t with irq_loss = !t.irq_loss @ [ b ] })
            | _ -> failwith ("Fault_plan: bad burst " ^ part))
        | "down" ->
            let w_from, w_until = parse_range rest in
            t :=
              {
                !t with
                link_down = !t.link_down @ [ (req_arg (), { w_from; w_until }) ];
              }
        | "squeeze" ->
            let w_from, w_until = parse_range rest in
            t :=
              {
                !t with
                rx_squeeze = !t.rx_squeeze @ [ (req_arg (), { w_from; w_until }) ];
              }
        | "freestarve" ->
            let w_from, w_until = parse_range rest in
            t :=
              {
                !t with
                free_starve =
                  !t.free_starve @ [ (req_arg (), { w_from; w_until }) ];
              }
        | "portflap" -> (
            match String.split_on_char '=' rest with
            | [ range; hp ] ->
                let w_from, w_until = parse_range range in
                t :=
                  {
                    !t with
                    port_flap =
                      !t.port_flap
                      @ [ (req_arg (), { w_from; w_until }, parse_time hp) ];
                  }
            | _ -> failwith ("Fault_plan: bad portflap " ^ part))
        | "swflap" -> (
            match String.split_on_char '=' rest with
            | [ range; hp ] ->
                let w_from, w_until = parse_range range in
                let s, p = req_sw_port () in
                t :=
                  {
                    !t with
                    sw_flap =
                      !t.sw_flap
                      @ [ (s, p, { w_from; w_until }, parse_time hp) ];
                  }
            | _ -> failwith ("Fault_plan: bad swflap " ^ part))
        | "trunkdown" ->
            let w_from, w_until = parse_range rest in
            t :=
              {
                !t with
                trunk_down = !t.trunk_down @ [ (req_arg (), { w_from; w_until }) ];
              }
        | "trunkloss" -> (
            match String.split_on_char '=' rest with
            | [ range; p ] ->
                let b_from, b_until = parse_range range in
                t :=
                  {
                    !t with
                    trunk_loss =
                      !t.trunk_loss
                      @ [ { b_from; b_until; prob = float_of_string p } ];
                  }
            | _ -> failwith ("Fault_plan: bad trunkloss " ^ part))
        | "flap" -> (
            match String.split_on_char '=' rest with
            | [ range; hp ] ->
                let w_from, w_until = parse_range range in
                t :=
                  {
                    !t with
                    flap =
                      !t.flap
                      @ [ (req_arg (), { w_from; w_until }, parse_time hp) ];
                  }
            | _ -> failwith ("Fault_plan: bad flap " ^ part))
        | _ -> failwith ("Fault_plan: unknown item " ^ part))
  in
  List.iter item (String.split_on_char ';' s);
  !t

let of_env () =
  match Sys.getenv_opt "OSIRIS_FAULT_PLAN" with
  | None | Some "" -> None
  | Some s -> Some (of_string s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
