open Osiris_sim
module Atm_link = Osiris_link.Atm_link
module Board = Osiris_board.Board
module Switch = Osiris_switch.Switch
module Rng = Osiris_util.Rng
module Metrics = Osiris_obs.Metrics
module Trace = Osiris_sim.Trace

type t = {
  eng : Engine.t;
  rng : Rng.t; (* interrupt-loss draws only *)
  plan : Plan.t;
  link : Atm_link.t;
  board : Board.t option;
  base : Atm_link.config;
  mutable irq_prob : float;
  irq_prob_ch : float array;
      (* per-channel interrupt-loss override, indexed by channel id
         (length = the board's n_channels; empty without a board). An
         array, not an assoc list: the lookup runs on every interrupt
         draw, and plans can target any of the 16 channels. *)
  mutable armed : bool;
  m_events : Metrics.counter;
  m_irq_draws : Metrics.counter;
}

(* Re-derive every knob from the plan at [now] and push it into the
   simulation. Idempotent, so overlapping windows and replayed boundaries
   are harmless. *)
let apply t now =
  let k = Plan.knobs_at t.plan now in
  Atm_link.set_drop_prob t.link (Float.max t.base.Atm_link.drop_prob k.Plan.k_drop);
  Atm_link.set_corrupt_prob t.link
    (Float.max t.base.Atm_link.corrupt_prob k.Plan.k_corrupt);
  Atm_link.set_corrupt_header_prob t.link
    (Float.max t.base.Atm_link.corrupt_header_prob k.Plan.k_header);
  Atm_link.set_dup_prob t.link (Float.max t.base.Atm_link.dup_prob k.Plan.k_dup);
  for l = 0 to t.base.Atm_link.nlinks - 1 do
    Atm_link.set_link_state t.link ~link:l (not (List.mem l k.Plan.k_down))
  done;
  Atm_link.set_rx_fifo_limit t.link
    (match k.Plan.k_squeeze with
    | Some cap -> cap
    | None -> t.base.Atm_link.rx_fifo_cells);
  t.irq_prob <- k.Plan.k_irq_loss;
  Array.fill t.irq_prob_ch 0 (Array.length t.irq_prob_ch) 0.0;
  List.iter
    (fun (ch, p) ->
      if ch >= 0 && ch < Array.length t.irq_prob_ch then
        t.irq_prob_ch.(ch) <- p)
    k.Plan.k_irq_loss_ch;
  match t.board with
  | None -> ()
  | Some b ->
      for ch = 0 to (Board.config b).Board.n_channels - 1 do
        Board.set_free_gate b ~ch (List.mem ch k.Plan.k_free_starve)
      done

(* Effective interrupt-loss probability for one receive channel: the
   harsher of the global burst and the channel-targeted one. *)
let irq_loss_prob t ch =
  if ch >= 0 && ch < Array.length t.irq_prob_ch then
    Float.max t.irq_prob t.irq_prob_ch.(ch)
  else t.irq_prob

let inject eng ~plan ~link ?board () =
  let n_ch =
    match board with
    | Some b -> (Board.config b).Board.n_channels
    | None -> 0
  in
  let t =
    {
      eng;
      rng = Rng.create ~seed:(plan.Plan.seed lxor 0x5eed_f417);
      plan;
      link;
      board;
      base = Atm_link.config link;
      irq_prob = 0.0;
      irq_prob_ch = Array.make n_ch 0.0;
      armed = true;
      m_events = Metrics.counter "fault.plan_events";
      m_irq_draws = Metrics.counter "fault.irq_loss_draws";
    }
  in
  (match board with
  | None -> ()
  | Some b ->
      Board.set_irq_filter b
        (Some
           (fun reason ->
             match reason with
             | Board.Rx_nonempty ch when t.armed -> (
                 match irq_loss_prob t ch with
                 | p when p > 0.0 ->
                     Metrics.incr t.m_irq_draws;
                     not (Rng.float t.rng 1.0 < p)
                 | _ -> true)
             | _ -> true)));
  Trace.emitf Trace.Fault ~now:(Engine.now eng) "inject plan [%s]"
    (Plan.to_string plan);
  let now = Engine.now eng in
  List.iter
    (fun time ->
      if time > now then
        ignore
          (Engine.schedule_at eng ~time (fun () ->
               if t.armed then begin
                 Metrics.incr t.m_events;
                 Trace.emitf Trace.Fault ~now:time "plan boundary";
                 apply t time
               end)))
    (Plan.boundaries plan);
  apply t now;
  t

let disarm t =
  if t.armed then begin
    t.armed <- false;
    t.irq_prob <- 0.0;
    Array.fill t.irq_prob_ch 0 (Array.length t.irq_prob_ch) 0.0;
    Atm_link.set_drop_prob t.link t.base.Atm_link.drop_prob;
    Atm_link.set_corrupt_prob t.link t.base.Atm_link.corrupt_prob;
    Atm_link.set_corrupt_header_prob t.link t.base.Atm_link.corrupt_header_prob;
    Atm_link.set_dup_prob t.link t.base.Atm_link.dup_prob;
    Atm_link.set_rx_fifo_limit t.link t.base.Atm_link.rx_fifo_cells;
    for l = 0 to t.base.Atm_link.nlinks - 1 do
      Atm_link.set_link_state t.link ~link:l true
    done;
    (match t.board with
    | None -> ()
    | Some b ->
        for ch = 0 to (Board.config b).Board.n_channels - 1 do
          Board.set_free_gate b ~ch false
        done);
    Trace.emitf Trace.Fault ~now:(Engine.now t.eng) "injector disarmed"
  end

let plan t = t.plan

(* ------------------------------------------------------------------ *)
(* Fabric faults: the plan dimensions that live on a switch (port-flap
   storms) and its trunk links (cell-loss bursts) rather than on a
   host's own link. A separate injector because one plan may drive one
   host-link injector per sender plus a single fabric injector. *)

type fabric = {
  f_eng : Engine.t;
  f_plan : Plan.t;
  f_switch : Switch.t;
  f_trunks : Atm_link.t array;
  f_trunk_base : float array; (* configured drop_prob per trunk *)
  mutable f_armed : bool;
  f_events : Metrics.counter;
}

let apply_fabric t now =
  let k = Plan.knobs_at t.f_plan now in
  let nports = (Switch.config t.f_switch).Switch.nports in
  for p = 0 to nports - 1 do
    Switch.set_port_state t.f_switch ~port:p
      (not (List.mem p k.Plan.k_port_down))
  done;
  Array.iteri
    (fun i link ->
      Atm_link.set_drop_prob link
        (Float.max t.f_trunk_base.(i) k.Plan.k_trunk_loss))
    t.f_trunks

let inject_fabric eng ~plan ~switch ?(trunks = [||]) () =
  let t =
    {
      f_eng = eng;
      f_plan = plan;
      f_switch = switch;
      f_trunks = trunks;
      f_trunk_base =
        Array.map (fun l -> (Atm_link.config l).Atm_link.drop_prob) trunks;
      f_armed = true;
      f_events = Metrics.counter "fault.fabric_events";
    }
  in
  Trace.emitf Trace.Fault ~now:(Engine.now eng) "inject fabric plan [%s]"
    (Plan.to_string plan);
  let now = Engine.now eng in
  List.iter
    (fun time ->
      if time > now then
        ignore
          (Engine.schedule_at eng ~time (fun () ->
               if t.f_armed then begin
                 Metrics.incr t.f_events;
                 apply_fabric t time
               end)))
    (Plan.boundaries plan);
  apply_fabric t now;
  t

let disarm_fabric t =
  if t.f_armed then begin
    t.f_armed <- false;
    let nports = (Switch.config t.f_switch).Switch.nports in
    for p = 0 to nports - 1 do
      Switch.set_port_state t.f_switch ~port:p true
    done;
    Array.iteri
      (fun i link -> Atm_link.set_drop_prob link t.f_trunk_base.(i))
      t.f_trunks;
    Trace.emitf Trace.Fault ~now:(Engine.now t.f_eng)
      "fabric injector disarmed"
  end

let fabric_plan t = t.f_plan

(* ------------------------------------------------------------------ *)
(* Topology faults: the dimensions that address a generated fabric as a
   whole — [swflap#S.P] storms port P of switch S, [trunkdown#T] cuts
   every striped channel of both directed links of trunk T, and
   [trunkloss] raises the drop probability of every trunk link. One
   injector per topology, alongside per-host link injectors. *)

type topo = {
  t_eng : Engine.t;
  t_plan : Plan.t;
  t_switches : Switch.t array;
  t_trunks : Atm_link.t array; (* two directed links per trunk, flat *)
  t_trunk_base : float array;
  mutable t_armed : bool;
  t_events : Metrics.counter;
}

let apply_topology t now =
  let k = Plan.knobs_at t.t_plan now in
  Array.iteri
    (fun s sw ->
      let nports = (Switch.config sw).Switch.nports in
      for p = 0 to nports - 1 do
        Switch.set_port_state sw ~port:p
          (not (List.mem (s, p) k.Plan.k_sw_port_down))
      done)
    t.t_switches;
  Array.iteri
    (fun i link ->
      Atm_link.set_drop_prob link
        (Float.max t.t_trunk_base.(i) k.Plan.k_trunk_loss);
      let up = not (List.mem (i / 2) k.Plan.k_trunk_down) in
      for l = 0 to (Atm_link.config link).Atm_link.nlinks - 1 do
        Atm_link.set_link_state link ~link:l up
      done)
    t.t_trunks

let inject_topology eng ~plan ~switches ~trunks () =
  let t =
    {
      t_eng = eng;
      t_plan = plan;
      t_switches = switches;
      t_trunks = trunks;
      t_trunk_base =
        Array.map (fun l -> (Atm_link.config l).Atm_link.drop_prob) trunks;
      t_armed = true;
      t_events = Metrics.counter "fault.topology_events";
    }
  in
  Trace.emitf Trace.Fault ~now:(Engine.now eng) "inject topology plan [%s]"
    (Plan.to_string plan);
  let now = Engine.now eng in
  List.iter
    (fun time ->
      if time > now then
        ignore
          (Engine.schedule_at eng ~time (fun () ->
               if t.t_armed then begin
                 Metrics.incr t.t_events;
                 apply_topology t time
               end)))
    (Plan.boundaries plan);
  apply_topology t now;
  t

let disarm_topology t =
  if t.t_armed then begin
    t.t_armed <- false;
    Array.iter
      (fun sw ->
        let nports = (Switch.config sw).Switch.nports in
        for p = 0 to nports - 1 do
          Switch.set_port_state sw ~port:p true
        done)
      t.t_switches;
    Array.iteri
      (fun i link ->
        Atm_link.set_drop_prob link t.t_trunk_base.(i);
        for l = 0 to (Atm_link.config link).Atm_link.nlinks - 1 do
          Atm_link.set_link_state link ~link:l true
        done)
      t.t_trunks;
    Trace.emitf Trace.Fault ~now:(Engine.now t.t_eng)
      "topology injector disarmed"
  end

let topology_plan t = t.t_plan
