(** Incast contention through the cell-switch fabric.

    N senders on a {!Osiris_core.Network.star} topology blast one
    receiver in near-synchronized rounds, overloading the receiver port's
    finite output queue on the switch. Every payload byte is a pure
    function of the message index (shared with {!Fault_soak}), so
    deliveries are verified byte-exact; every loss must be explained by
    counted switch drops and absorbed by the receiver's recovery
    machinery (reassembly timeout sweeps, sequence aborts, CRC rejects) —
    the run reports a violation if PDUs vanish without that evidence, if
    the switch's cell-conservation equation breaks, or if any host fails
    the {!Osiris_core.Invariants} quiescence checks. *)

type outcome = {
  senders : int;
  queue_cells : int;  (** switch output-queue capacity used for the run *)
  offered_pdus : int;
  delivered_pdus : int;
  corrupted_delivered : int;  (** must be 0: CRC must catch damage *)
  offered_mbps : float;
  goodput_mbps : float;  (** byte-verified deliveries only *)
  cells_in : int;  (** cells the switch accepted *)
  forwarded_cells : int;
  switch_dropped : int;  (** overflow + no-route drops *)
  max_occupancy : int;  (** switch queue high-water mark, cells *)
  residual_queued : int;  (** must be 0 after the grace period *)
  timeout_aborts : int;  (** receiver driver timeout-marker chains *)
  reassembly_timeouts : int;  (** receiver board sweeper firings *)
  reassembly_errors : int;
  pdus_dropped_no_buffer : int;
  residual_reassemblies : int;  (** must be 0 at quiescence *)
  violations : string list;  (** must be empty *)
}

val run :
  ?machine:Osiris_core.Machine.t ->
  ?senders:int ->
  ?queue_cells:int ->
  ?rounds:int ->
  ?msg_size:int ->
  ?seed:int ->
  ?round_gap:Osiris_sim.Time.t ->
  ?stagger:Osiris_sim.Time.t ->
  ?grace:Osiris_sim.Time.t ->
  unit ->
  outcome
(** One seeded incast run: [senders] (default 3) each send [rounds]
    (default 10) PDUs of [msg_size] (default 2 KB) bytes to host 0, one
    per [round_gap] (default 400 µs), with sender [i] offset by
    [i * stagger] (default 30 µs). Recovery timers are enabled on every
    host (2 ms reassembly timeout, 500 µs interrupt re-assert); [grace]
    (default 8 ms) runs after the last send so they can drain. *)

val pp_outcome : Format.formatter -> outcome -> unit

val sweep_queues : int list
(** Queue capacities the figure sweeps. *)

val figure_goodput_vs_queue : unit -> Report.figure
(** The BENCH.json curve: offered vs delivered PDUs, receiver timeout
    aborts, switch cell drops and byte-verified goodput as the output
    queue grows from burst-crushing to burst-absorbing. Raises on any
    accounting violation — the conservation contract is load-bearing,
    not advisory. *)
