(** Randomized multi-fault soak over the full host-to-host path.

    Each run builds two hosts with recovery machinery enabled (board
    reassembly timeout 2 ms, interrupt re-assert 500 µs), streams raw-VCI
    PDUs whose every byte is a pure function of the message index, and
    applies a seeded {!Osiris_fault.Plan} (cell drop, payload and header
    corruption, duplication, a carrier outage, an rx-FIFO squeeze, and
    lost receive interrupts) to the forward link and receiving board.
    After a fault-free grace period it checks the outcome against the
    robustness contract: goodput above zero, nothing delivered that is
    not byte-identical to a sent PDU, and {!Osiris_core.Invariants}
    clean at quiescence. *)

val pattern_byte : msg:int -> off:int -> int
(** Byte [off] of message [msg]: a pure function of both, with the message
    index carried in the first two bytes, so deliveries verify without
    keeping sent copies. Shared with the incast experiment. *)

val fill_pattern : msg:int -> len:int -> Bytes.t
val intact : msg:int -> Bytes.t -> bool

type outcome = {
  seed : int;
  plan : string;  (** {!Osiris_fault.Plan.to_string}, for reproduction *)
  sent : int;
  delivered : int;
  corrupted_delivered : int;  (** must be 0: CRC must catch every fault *)
  goodput_mbps : float;  (** byte-verified payload over the whole run *)
  timeout_aborts : int;  (** driver-side, from timeout marker chains *)
  board_timeouts : int;  (** board sweeper firings *)
  restripe_aborts : int;  (** PDUs sacrificed to carrier-loss re-striping *)
  duplicated_cells : int;
  residual_reassemblies : int;  (** must be 0 at quiescence *)
  violations : string list;  (** must be empty *)
}

val run :
  ?machine:Osiris_core.Machine.t ->
  ?seed:int ->
  ?msgs:int ->
  ?msg_size:int ->
  ?horizon:Osiris_sim.Time.t ->
  ?grace:Osiris_sim.Time.t ->
  ?plan:Osiris_fault.Plan.t ->
  unit ->
  outcome
(** One soak iteration. [plan] defaults to
    [Osiris_fault.Plan.random ~seed ~horizon]; [grace] runs after the
    injector is disarmed so timeout sweeps and re-asserted interrupts can
    finish recovery. *)

val pp_outcome : Format.formatter -> outcome -> unit

val figure_goodput_vs_drop : unit -> Report.figure
(** The BENCH.json curve: byte-verified goodput as a whole-run cell-drop
    burst sweeps [0 .. 0.008]. *)
