(** Connection-dense demultiplexing sweep: thousands of VCs terminate at
    one receiver, every cell pays a classification lookup, and the
    hashed tables' probe counters are converted to per-cell nanoseconds
    on both paper machines against a linear-scan baseline. *)

type point = {
  nvcs : int;  (** concurrent VCs opened at the receiver *)
  offered_pdus : int;  (** one flow per VC *)
  delivered_pdus : int;
  offered_bytes : int;
  delivered_bytes : int;
  demux : Osiris_classify.Table.probe_stats;
      (** receiver board's VC-classification probes *)
  route : Osiris_classify.Table.probe_stats;
      (** switch routing-table probes *)
  nroutes : int;
  resident_bytes_per_vc : int;  (** demux-table state per live VC *)
  path_enums : int;  (** topology path enumerations (cache misses) *)
  violations : string list;
}

val run :
  ?machine:Osiris_core.Machine.t -> ?seed:int -> nvcs:int -> unit -> point
(** Open [nvcs] VCs between one host pair, drive one web-search-CDF
    flow per VC, and audit conservation, host invariants, both
    classification oracles, and bulk-setup path-cache behavior. *)

val pp_point : Format.formatter -> point -> unit

val sweep_vcs : int list

val figure : unit -> Report.figure
(** The BENCH figure: sweeps {!sweep_vcs}, fails on any violation, on a
    hashed cost ratio above 1.5x between the sweep's ends, or on a
    linear baseline that failed to grow. *)
