(* Engine macro-benchmark: how fast does the event core chew through a
   realistic million-event workload?

   Not a paper figure — a self-measurement, in the spirit of the paper's
   own obsession with keeping the per-cell software path cheap enough to
   track the hardware. Every ROADMAP scale item (hundreds of hosts,
   incast sweeps into the hundreds of senders) is bounded by raw engine
   throughput, so the trajectory must be visible in BENCH.json.

   The workload is the full datapath, not a microloop: several senders
   stream PDUs through the cell switch to one receiver over a star
   topology — segmentation, link striping, switch contention, DMA,
   reassembly, demux — and the engine dispatches a fixed budget of live
   events. The identical seeded workload runs on both scheduler
   backends; any divergence in final clock or traffic counters is
   reported as a violation (the macro-scale companion to the test
   suite's event-for-event differential check). *)

open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Cell = Osiris_atm.Cell
module Switch = Osiris_switch.Switch
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux

type outcome = {
  backend : Engine.backend;
  events : int;  (** live events dispatched in the timed segment *)
  wall_s : float;
  cpu_s : float;  (** user CPU time; the rates below use this *)
  events_per_s : float;
  cells_forwarded : int;
  cells_per_s : float;
  bytes_per_s : float;  (** forwarded cell payload bytes per wall second *)
  delivered_pdus : int;
  delivered_bytes : int;
  final_clock : Time.t;
  cells_in : int;
  dropped : int;
  live_words_growth : int;
      (** major-heap words retained across all timed segments of both
          backends (they share the process heap) *)
  minor_words_per_event : float;
      (** minor-heap words allocated per dispatched event, best segment:
          the R5 hot-path allocation lint's rent, in numbers *)
}

(* Retained major-heap words after a full collection: the timed segment
   must not grow this by more than in-flight state — a scheduler that
   pins dead handles (as the first heap did) shows up here. *)
let live_words () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words

(* Generous ceiling for [live_words_growth]: in-flight PDUs, queues and
   warmup-to-steady-state drift are a few hundred kwords; an O(events)
   leak at 1M events is tens of Mwords. *)
let growth_ceiling = 4_000_000

let warmup_events = 20_000

(* One backend's workload, built and warmed up, ready for timed
   segments. Both backends are prepared before either is timed, and
   their segments interleave (wheel, heap, wheel, heap, ...) so that
   machine-load phases — a noisy neighbour, a slow disk sync — hit both
   schedulers alike instead of biasing whichever ran second. *)
type setup = {
  s_backend : Engine.backend;
  s_eng : Engine.t;
  s_stats : Switch.stats;
  s_delivered : int ref;
  s_delivered_bytes : int ref;
}

let prepare ~backend ~senders ~msg_size ~seed () =
  let cfg = { Host.default_config with Host.seed = 9000 + seed } in
  let switch = { Switch.default_config with Switch.queue_cells = 128 } in
  let eng, topo =
    Network.star ~backend ~n:(senders + 1) ~config:cfg ~switch
      ~seed:(200 + seed) ()
  in
  let recv = Network.host topo 0 in
  let vcs =
    Array.init senders (fun i -> Network.open_vc topo ~src:(i + 1) ~dst:0)
  in
  let delivered = ref 0 and delivered_bytes = ref 0 in
  Array.iter
    (fun vc ->
      Demux.bind recv.Host.demux ~vci:vc.Network.dst_vci ~name:"speed-sink"
        (fun ~vci:_ m ->
          incr delivered;
          delivered_bytes := !delivered_bytes + Msg.length m;
          Msg.dispose m))
    vcs;
  (* Senders stream forever (the event budget ends the run): one PDU
     every [gap], staggered so instants stay spread. The aggregate rate
     sits below the OC-3 line rate, so queues reach a steady state
     instead of growing without bound. *)
  let gap = Time.us 100 in
  Array.iteri
    (fun i vc ->
      let sender = Network.host topo (i + 1) in
      Process.spawn eng
        ~name:(Printf.sprintf "speed-tx%d" i)
        (fun () ->
          Process.sleep eng (Time.us 5 * i);
          let payload = Fault_soak.fill_pattern ~msg:i ~len:msg_size in
          let rec loop () =
            let m = Msg.alloc sender.Host.vs ~len:msg_size () in
            Msg.blit_into m ~off:0 ~src:payload;
            Driver.send sender.Host.driver ~vci:vc.Network.src_vci m;
            Process.sleep eng gap;
            loop ()
          in
          loop ()))
    vcs;
  (* Let the pipeline fill before measuring. *)
  Engine.run ~max_events:warmup_events eng;
  {
    s_backend = backend;
    s_eng = eng;
    s_stats = Switch.stats topo.Network.switches.(0);
    s_delivered = delivered;
    s_delivered_bytes = delivered_bytes;
  }

(* One timed segment of [events] live events: (user CPU seconds, cells
   forwarded). Rate over user CPU time, not wall time: the workload's
   effect handlers keep the kernel busy mapping fiber stacks, and that
   system-time component is machine noise (it dwarfs user time on some
   hosts). *)
let segment s ~events =
  let fwd0 = s.s_stats.Switch.forwarded in
  let mw0 = Gc.minor_words () in
  let t0_cpu = (Unix.times ()).Unix.tms_utime in
  Engine.run ~max_events:events s.s_eng;
  let cpu_s = (Unix.times ()).Unix.tms_utime -. t0_cpu in
  (cpu_s, s.s_stats.Switch.forwarded - fwd0, Gc.minor_words () -. mw0)

let outcome_of s ~events ~wall_s ~best_cpu ~best_fwd ~best_mw
    ~live_words_growth =
  let cpu = if best_cpu > 0. then best_cpu else 1e-9 in
  let st = s.s_stats in
  {
    backend = s.s_backend;
    events;
    wall_s;
    cpu_s = best_cpu;
    events_per_s = float_of_int events /. cpu;
    cells_forwarded = st.Switch.forwarded;
    cells_per_s = float_of_int best_fwd /. cpu;
    bytes_per_s = float_of_int (best_fwd * Cell.data_size) /. cpu;
    delivered_pdus = !(s.s_delivered);
    delivered_bytes = !(s.s_delivered_bytes);
    final_clock = Engine.now s.s_eng;
    cells_in = st.Switch.cells_in;
    dropped = st.Switch.dropped_overflow + st.Switch.dropped_no_route;
    live_words_growth;
    minor_words_per_event = best_mw /. float_of_int events;
  }

(* The two backends ran the same seeded workload for the same event
   budget: every simulation-side observable must match exactly. *)
let compare_outcomes w h =
  let d name f =
    if f w <> f h then
      [
        Printf.sprintf
          "engine_speed: %s diverges across backends (wheel %d, heap %d)"
          name (f w) (f h);
      ]
    else []
  in
  d "final clock" (fun o -> o.final_clock)
  @ d "cells into the switch" (fun o -> o.cells_in)
  @ d "cells forwarded" (fun o -> o.cells_forwarded)
  @ d "cells dropped" (fun o -> o.dropped)
  @ d "delivered PDUs" (fun o -> o.delivered_pdus)
  @ d "delivered bytes" (fun o -> o.delivered_bytes)

let leak_check o =
  if o.live_words_growth > growth_ceiling then
    [
      Printf.sprintf
        "engine_speed: %d live words retained across the %d-event timed \
         segments (ceiling %d) — a scheduler is pinning dead events"
        o.live_words_growth o.events growth_ceiling;
    ]
  else []

let run ?(events = 1_000_000) ?(senders = 4) ?(msg_size = 2048) ?(seed = 3)
    () =
  let go backend = prepare ~backend ~senders ~msg_size ~seed () in
  let w = go Engine.Timer_wheel in
  let h = go Engine.Binary_heap in
  let base_words = live_words () in
  (* Each backend is rated on its best of [reps] segments — major-GC
     slices land unevenly across segments, and the best one is the
     least polluted look at the scheduler itself. Wall time (all of a
     backend's segments) is still reported. *)
  let reps = 3 in
  let best_cpu_w = ref infinity and best_fwd_w = ref 0 in
  let best_cpu_h = ref infinity and best_fwd_h = ref 0 in
  let best_mw_w = ref infinity and best_mw_h = ref infinity in
  let wall_w = ref 0. and wall_h = ref 0. in
  let timed s best_cpu best_fwd best_mw wall =
    let t0 = Unix.gettimeofday () in
    let cpu_s, fwd, mw = segment s ~events in
    wall := !wall +. (Unix.gettimeofday () -. t0);
    if cpu_s < !best_cpu then begin
      best_cpu := cpu_s;
      best_fwd := fwd
    end;
    (* Best segment independently of the CPU best: allocation is exactly
       reproducible per segment, timing is not. *)
    if mw < !best_mw then best_mw := mw
  in
  for _ = 1 to reps do
    timed w best_cpu_w best_fwd_w best_mw_w wall_w;
    timed h best_cpu_h best_fwd_h best_mw_h wall_h
  done;
  (* Both engines share the process heap, so retention is measured once
     across all segments of both: a scheduler pinning dead events at
     either end shows up (both dispatched the same event count). *)
  let growth = live_words () - base_words in
  let wheel =
    outcome_of w ~events ~wall_s:!wall_w ~best_cpu:!best_cpu_w
      ~best_fwd:!best_fwd_w ~best_mw:!best_mw_w ~live_words_growth:growth
  in
  let heap =
    outcome_of h ~events ~wall_s:!wall_h ~best_cpu:!best_cpu_h
      ~best_fwd:!best_fwd_h ~best_mw:!best_mw_h ~live_words_growth:growth
  in
  let violations = compare_outcomes wheel heap @ leak_check wheel in
  (wheel, heap, violations)

let sweep_events = [ 250_000; 1_000_000 ]

let figure () =
  let outs = List.map (fun n -> run ~events:n ()) sweep_events in
  List.iter
    (fun (_, _, violations) ->
      if violations <> [] then
        failwith
          ("engine_speed: invariant violation: "
          ^ String.concat "; " violations))
    outs;
  let kevents (w, _, _) = w.events / 1000 in
  let pt f = List.map (fun o -> (kevents o, f o)) outs in
  {
    Report.title =
      "engine_speed: live events dispatched per wall-clock second, \
       4-sender star-topology datapath workload, timer wheel vs binary \
       heap (identical dispatch order enforced)";
    xlabel = "live events dispatched (thousands)";
    ylabel = "events/s, cells/s, bytes/s, words (see series)";
    series =
      [
        { Report.label = "events/s (timer wheel)";
          points = pt (fun (w, _, _) -> w.events_per_s) };
        { Report.label = "events/s (binary heap)";
          points = pt (fun (_, h, _) -> h.events_per_s) };
        { Report.label = "wheel speedup over heap (pct)";
          points =
            pt (fun (w, h, _) ->
                100. *. w.events_per_s /. h.events_per_s) };
        { Report.label = "sim cells forwarded/s (wheel)";
          points = pt (fun (w, _, _) -> w.cells_per_s) };
        { Report.label = "sim payload bytes/s (wheel)";
          points = pt (fun (w, _, _) -> w.bytes_per_s) };
        { Report.label = "live-words growth (both backends)";
          points = pt (fun (w, _, _) -> float_of_int w.live_words_growth) };
        (* The R5 hot-path allocation lint's rent: minor-heap words per
           dispatched event. The backends legitimately differ — the heap
           boxes one entry per add — so both are reported, neither is
           cross-checked. *)
        { Report.label = "minor words per event (timer wheel)";
          points = pt (fun (w, _, _) -> w.minor_words_per_event) };
        { Report.label = "minor words per event (binary heap)";
          points = pt (fun (_, h, _) -> h.minor_words_per_event) };
      ];
    paper_note =
      "self-benchmark, no paper counterpart: the engine must stay fast \
       enough that reproducing the paper's sweeps at testbed scale is \
       cheap; both backends replay the identical seeded workload and \
       must agree on every traffic counter and the final clock";
  }
