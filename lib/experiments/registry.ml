type kind =
  | Table of (unit -> Report.table)
  | Figure of (unit -> Report.figure)

type entry = { id : string; description : string; kind : kind }

let all =
  [
    {
      id = "table1";
      description = "Table 1: round-trip latencies (ATM & UDP/IP, both machines)";
      kind = Table (fun () -> Table1.table ());
    };
    {
      id = "figure2";
      description =
        "Figure 2: DEC 5000/200 receive-side throughput (DMA length, cache \
         invalidation)";
      kind = Figure (fun () -> Receive_side.figure2 ());
    };
    {
      id = "figure3";
      description =
        "Figure 3: DEC 3000/600 receive-side throughput (DMA length x UDP \
         checksum)";
      kind = Figure (fun () -> Receive_side.figure3 ());
    };
    {
      id = "figure4";
      description = "Figure 4: transmit-side throughput (both machines)";
      kind = Figure (fun () -> Transmit_side.figure4 ());
    };
    {
      id = "host-to-host";
      description = "4 (closing prediction): double-cell host-to-host throughput";
      kind = Table Host_to_host.table;
    };
    {
      id = "dma-bounds";
      description = "2.5.1: closed-form and simulated TURBOchannel DMA bounds";
      kind = Table Dma_bounds.table;
    };
    {
      id = "ablation-interrupts";
      description = "2.1.2: interrupts per PDU vs packet spacing";
      kind = Table Ablation_interrupts.table;
    };
    {
      id = "ablation-lockfree";
      description = "2.1.1: lock-free queues vs spin-locked dual-port access";
      kind = Table Ablation_lockfree.table;
    };
    {
      id = "ablation-fragmentation";
      description = "2.2: physical buffers per message vs MTU/alignment policy";
      kind = Table Ablation_fragmentation.table;
    };
    {
      id = "ablation-lazy-cache";
      description = "2.3: lazy vs eager cache invalidation, real stale data";
      kind = Table Ablation_lazy_cache.table;
    };
    {
      id = "ablation-wiring";
      description = "2.4: Mach vs low-level page wiring";
      kind = Table Ablation_wiring.table;
    };
    {
      id = "ablation-multiplexing";
      description = "2.5.1: transmit multiplexing granularity vs small-message latency";
      kind = Table Ablation_multiplexing.table;
    };
    {
      id = "ablation-skew";
      description = "2.6: reassembly strategies and combining under skew";
      kind = Table Ablation_skew.table;
    };
    {
      id = "ablation-dma-pio";
      description = "2.7: DMA vs PIO application-access rates";
      kind = Table Ablation_dma_pio.table;
    };
    {
      id = "ablation-fbufs";
      description = "3.1: cached vs uncached fbuf transfers";
      kind = Table Ablation_fbufs.table;
    };
    {
      id = "ablation-priority";
      description = "3.1: priority drop under receiver overload";
      kind = Table Ablation_priority.table;
    };
    {
      id = "ablation-ethernet";
      description = "4: Ethernet baseline vs OSIRIS latency/throughput";
      kind = Table Ablation_ethernet.table;
    };
    {
      id = "ablation-adc";
      description = "3.2: ADC vs kernel paths; protection check";
      kind = Table Ablation_adc.table;
    };
    {
      id = "fault-sweep";
      description =
        "robustness: byte-verified goodput vs cell-drop probability, \
         recovery timers on";
      kind = Figure (fun () -> Fault_soak.figure_goodput_vs_drop ());
    };
    {
      id = "incast";
      description =
        "fabric: N-sender incast through one switch port vs output-queue \
         capacity, losses fully accounted";
      kind = Figure (fun () -> Incast.figure_goodput_vs_queue ());
    };
    {
      id = "congestion";
      description =
        "transport: windowed senders incast one switch port; retransmitted \
         bytes vs queue capacity, ECN marking off vs on, goodput held \
         within 10% of a lossless baseline";
      kind = Figure (fun () -> Congestion.figure_retransmits_vs_queue ());
    };
    {
      id = "multipath";
      description =
        "fabric: permutation + incast on an 8-pod fat-tree; REPS recycled-\
         entropy spraying vs static-hash ECMP vs single path, mid-run trunk \
         cut rerouted within 100us simulated";
      kind = Figure (fun () -> Multipath.figure ());
    };
    {
      id = "demux_scale";
      description =
        "adaptor: per-cell classification cost vs concurrent VCs (64 -> \
         8192), hashed board demux + switch routing vs linear-scan \
         baseline, both machines, CDF-driven flows, oracles audited";
      kind = Figure (fun () -> Demux_scale.figure ());
    };
    {
      id = "engine_speed";
      description =
        "simulator: engine events/sec on a 1M-event star workload, timer \
         wheel vs binary heap, identical dispatch enforced";
      kind = Figure (fun () -> Engine_speed.figure ());
    };
  ]

let quick =
  List.filter
    (fun e ->
      not
        (List.mem e.id
           [ "figure2"; "figure3"; "figure4"; "incast"; "congestion";
             "multipath"; "engine_speed"; "demux_scale" ]))
    all

let find id = List.find_opt (fun e -> e.id = id) all

type result = R_table of Report.table | R_figure of Report.figure

let eval e =
  match e.kind with
  | Table f -> R_table (f ())
  | Figure f -> R_figure (f ())

let print_result = function
  | R_table t -> Report.print_table t
  | R_figure f -> Report.print_figure f

let result_json = function
  | R_table t -> Report.table_json t
  | R_figure f -> Report.figure_json f

let run e = print_result (eval e)

let ids () = List.map (fun e -> e.id) all
