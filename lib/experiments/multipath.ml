open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Invariants = Osiris_core.Invariants
module Switch = Osiris_switch.Switch
module Builder = Osiris_topo.Builder
module Plan = Osiris_fault.Plan
module Injector = Osiris_fault.Injector
module Rng = Osiris_util.Rng
module Board = Osiris_board.Board
module Sar = Osiris_atm.Sar
module Wire = Osiris_transport.Wire
module Sender = Osiris_transport.Sender
module Spray = Osiris_lb.Spray
module Reps = Osiris_lb.Reps

(* The multipath figure: an 8-pod fat-tree ((k/2)^2 = 16 equal-cost
   inter-pod paths) under a full permutation and an inter-pod incast,
   with the same reliable transport sprayed three ways — pinned to path
   0 (no multipath), static-hash ECMP (one hash-chosen path per
   connection, collisions and all) and REPS (adaptive recycled-entropy
   spraying). The questions: how much of the fabric's cross-section each
   policy realizes (aggregate goodput, p99 flow completion), and how
   fast REPS steers around a trunk that dies mid-run (reroute latency,
   goodput retention) with no failure signal beyond its own acks. *)

(* Hosts as in the congestion sweep: provisioned Alphas scaled to 8 MB
   so 32 of them stand up cheaply, with enough circulating receive
   buffers that the adaptor's no-buffer drop (3.1) never confounds the
   fabric variables under study. *)
let small_machine = Congestion.small_machine

(* Full striped OC-3 everywhere, unlike the congestion sweep's OC-1:
   the reroute bound under test is 100 us simulated, and the spray can
   only steer per PDU — at OC-1 a single 4-cell PDU serializes for
   ~130 us and no per-PDU policy could meet the bound. At line rate a
   PDU hand-off happens every ~11 us, so the bound is ~9 decisions. *)

let transport_config =
  {
    Sender.default_config with
    (* 1 KB segments amortize the adaptor's fixed per-PDU host cost
       (~50 us: interrupts, wiring, protocol processing — the paper's
       whole subject) far enough that one flow sustains ~134 Mb/s of
       the 155.52 line — so a trunk carrying two colliding flows is a
       real bottleneck, which is the phenomenon under study. The
       window is ~4x the ~250 us-RTT bandwidth-delay product. *)
    Sender.seg_size = 1024;
    window = 16;
    init_cwnd = 8;
    rto_init = Time.ms 2;
    rto_min = Time.ms 1;
    rto_max = Time.ms 50;
    max_retries = 20;
    (* Spraying reorders across paths by design (each path queues
       independently); a sack run must mean a hole, not skew, so the
       fast-retransmit threshold sits above the worst equal-cost queue
       differential (a few PDUs) instead of the unipath 3. *)
    dup_ack_threshold = 6;
  }

type workload = Permutation | Incast of int | Single_flow

let workload_name = function
  | Permutation -> "permutation"
  | Incast n -> Printf.sprintf "incast-%d" n
  | Single_flow -> "single-flow"

let mode_name = function
  | Spray.Single -> "single-path"
  | Spray.Static_hash -> "ecmp-static"
  | Spray.Reps -> "reps"

type outcome = {
  mode : Spray.mode;
  workload : workload;
  nconns : int;
  offered_bytes : int;
  delivered_bytes : int;
  byte_exact : bool;
  finished : int;
  failed : int;
  completion : Time.t option;  (** last finish; None if any didn't *)
  fct_p99 : Time.t;  (** 99th-percentile flow completion time *)
  goodput_mbps : float;  (** delivered bytes over the span of the run *)
  retransmits : int;
  timeouts : int;
  recycled_picks : int;  (** REPS picks served from recycled entropy *)
  switch_dropped : int;  (** over every switch in the fabric *)
  reroute : Time.t option;
      (** failure runs: last hand-off to a path crossing the dead trunk,
          counted from the cut instant (zero = nothing sent on it after
          the cut) *)
  violations : string list;
}

(* Pairs of one workload over an [n]-host fabric with [per_pod] hosts
   per pod: the permutation shifts every host one pod forward (all
   traffic inter-pod, one flow per host), the incast points [m] hosts
   from other pods at host 0. *)
let pairs ~nh ~per_pod = function
  | Permutation -> List.init nh (fun i -> (i, (i + per_pod) mod nh))
  | Incast m ->
      if m > nh - per_pod then invalid_arg "Multipath: incast too wide";
      List.init m (fun j -> (per_pod + j, 0))
  | Single_flow -> [ (0, per_pod) ]

let run ?(k = 8) ?(mode = Spray.Reps) ?(workload = Permutation)
    ?(bytes_per_flow = 64 * 1024) ?(queue_cells = 256) ?(seed = 5)
    ?(config = transport_config) ?fail_at ?(cap = Time.s 4) () =
  let mark_threshold = max 2 (queue_cells / 3) in
  let epd_reserve =
    min queue_cells
      (Sar.cells_per_pdu (config.Sender.seg_size + Wire.data_header_size))
  in
  let switch =
    { Switch.default_config with
      Switch.queue_cells; mark_threshold; epd_reserve }
  in
  let host_cfg =
    {
      Host.default_config with
      Host.seed = 11000 + seed;
      board =
        {
          Host.default_config.Host.board with
          Board.reassembly_timeout = Time.ms 2;
          queue_size = 256;
        };
    }
  in
  let eng, topo =
    Network.fat_tree ~k ~hosts_per_edge:1 ~machine:small_machine
      ~config:host_cfg ~switch ~seed:(700 + seed) ()
  in
  let fabric = Network.fabric topo in
  let nh = Network.nhosts topo in
  let per_pod = k / 2 in
  let flows = Array.of_list (pairs ~nh ~per_pod workload) in
  let n = Array.length flows in
  (* The trunk that dies in failure runs: an aggregation-to-core uplink
     of pod 0 in core group [h/2] — paths through core group 0 (path 0
     of every connection, and thus every ack VC) never cross it, so the
     cut exercises the spray, not the ack channel. *)
  let h = k / 2 in
  let target_trunk = (k * h * h) + (h / 2 * h) + 1 in
  let plan =
    match fail_at with
    | None -> None
    | Some t ->
        Some
          {
            Plan.none with
            Plan.trunk_down = [ (target_trunk, { Plan.w_from = t; w_until = cap }) ];
          }
  in
  let sinks = Array.init n (fun _ -> Buffer.create bytes_per_flow) in
  let finish_times = Array.make n None in
  let start_times = Array.make n Time.zero in
  let conns =
    Array.init n (fun i ->
        let src, dst = flows.(i) in
        let config =
          (* Desync the timer constants per flow, as in the congestion
             sweep: a shared RTO ceiling phase-locks backed-off senders. *)
          {
            config with
            Sender.rto_init = config.Sender.rto_init + Time.us (137 * i);
            rto_max = config.Sender.rto_max + Time.us (613 * i);
          }
        in
        Spray.connect topo
          ~name:(Printf.sprintf "mp%d" i)
          ~config ~mode ~src ~dst
          ~on_state:(fun st ->
            if st = Sender.Finished then
              finish_times.(i) <- Some (Engine.now eng))
          ~deliver:(fun b -> Buffer.add_bytes sinks.(i) b)
          ())
  in
  (match plan with
  | None -> ()
  | Some p ->
      ignore
        (Injector.inject_topology eng ~plan:p ~switches:topo.Network.switches
           ~trunks:topo.Network.trunks ()));
  let jitter = Rng.create ~seed:(0x4af7_11cc lxor seed) in
  Array.iteri
    (fun i conn ->
      let at = Time.us ((i * 10) + Rng.int jitter 30) in
      start_times.(i) <- at;
      ignore
        (Engine.schedule_at eng ~time:at (fun () ->
             Spray.send conn
               (Fault_soak.fill_pattern ~msg:i ~len:bytes_per_flow);
             Spray.close conn)))
    conns;
  let terminal () =
    Array.for_all (fun c -> Spray.state c <> Sender.Active) conns
  in
  (* Completion times are data: run in slices until every connection is
     terminal (or the hard cap passes), as the congestion sweep does. *)
  let slice = Time.ms 5 in
  let rec drive () =
    let now = Engine.now eng in
    if (not (terminal ())) && now < cap then begin
      Engine.run ~until:(min cap (now + slice)) eng;
      drive ()
    end
  in
  drive ();
  Engine.run ~until:(Engine.now eng + Time.ms 10) eng;
  let byte_exact =
    Array.for_all
      (fun i ->
        Bytes.equal (Buffer.to_bytes sinks.(i))
          (Fault_soak.fill_pattern ~msg:i ~len:bytes_per_flow))
      (Array.init n (fun i -> i))
  in
  let finished =
    Array.fold_left
      (fun a c -> if Spray.state c = Sender.Finished then a + 1 else a)
      0 conns
  in
  let failed =
    Array.fold_left
      (fun a c ->
        match Spray.state c with Sender.Failed _ -> a + 1 | _ -> a)
      0 conns
  in
  let completion =
    Array.fold_left
      (fun acc ft ->
        match (acc, ft) with
        | Some a, Some b -> Some (max a b)
        | _ -> None)
      (Some Time.zero) finish_times
  in
  let fcts =
    Array.to_list
      (Array.mapi
         (fun i ft ->
           match ft with
           | Some t -> t - start_times.(i)
           | None -> cap)
         finish_times)
  in
  let fct_p99 =
    let sorted = List.sort compare fcts in
    let idx =
      max 0 (int_of_float (ceil (0.99 *. float_of_int n)) - 1)
    in
    List.nth sorted (min idx (n - 1))
  in
  let delivered_bytes =
    Array.fold_left (fun a b -> a + Buffer.length b) 0 sinks
  in
  let goodput_mbps =
    match completion with
    | Some t when t > Time.zero ->
        Report.mbps ~bytes_count:delivered_bytes ~ns:t
    | _ -> 0.0
  in
  (* Every switch in the generated fabric must conserve cells and marks
     on every run — the audit the hand-wired topologies always had, now
     over all 80. *)
  let violations =
    List.concat
      (List.init
         (Array.length topo.Network.switches)
         (fun s ->
           let sw = topo.Network.switches.(s) in
           let st = Switch.stats sw in
           Invariants.balance
             ~what:
               (Printf.sprintf "switch %s cell conservation"
                  fabric.Builder.switch_names.(s))
             ~total:st.Switch.cells_in ~parts:(Switch.conservation sw)
           @ Invariants.balance
               ~what:
                 (Printf.sprintf "switch %s mark conservation"
                    fabric.Builder.switch_names.(s))
               ~total:st.Switch.marked
               ~parts:(Switch.mark_conservation sw)))
    @ List.concat_map (fun c -> Spray.invariants c) (Array.to_list conns)
    @ List.concat
        (List.init nh (fun i ->
             let hst = Network.host topo i in
             Invariants.check ~quiescent:true ~board:hst.Host.board
               ~driver:hst.Host.driver ()))
  in
  let sum f =
    Array.fold_left (fun a c -> a + f (Sender.stats (Spray.sender c))) 0 conns
  in
  let switch_dropped =
    Array.fold_left
      (fun a sw ->
        let st = Switch.stats sw in
        a + st.Switch.dropped_overflow + st.Switch.dropped_no_route
        + st.Switch.dropped_epd)
      0 topo.Network.switches
  in
  let reroute =
    match fail_at with
    | None -> None
    | Some t_cut ->
        (* How long the spray kept feeding the dead trunk: the latest
           hand-off, over every connection, to a path crossing it. *)
        Some
          (Array.fold_left
             (fun acc c ->
               let mv = Spray.mvc c in
               let worst = ref acc in
               Array.iteri
                 (fun p path ->
                   if Builder.path_uses_trunk fabric path target_trunk then begin
                     let last = Spray.last_send c p in
                     if last > t_cut then begin
                       if Sys.getenv_opt "OSIRIS_MP_DEBUG" <> None then
                         Printf.eprintf
                           "DBG conn %d->%d path %d last dead send +%.1fus \
                            sends=%d frozen=%b rtos=%d rtx=%d\n%!"
                           mv.Network.mv_src mv.Network.mv_dst p
                           (Time.to_float_us (last - t_cut))
                           (Spray.sends c p)
                           (match Spray.reps c with
                           | Some r -> Reps.frozen r
                           | None -> false)
                           (Sender.stats (Spray.sender c)).Sender.timeouts
                           (Sender.stats (Spray.sender c)).Sender.retransmits;
                       worst := max !worst (last - t_cut)
                     end
                   end)
                 mv.Network.mv_paths;
               !worst)
             Time.zero conns)
  in
  {
    mode;
    workload;
    nconns = n;
    offered_bytes = n * bytes_per_flow;
    delivered_bytes;
    byte_exact;
    finished;
    failed;
    completion;
    fct_p99;
    goodput_mbps;
    retransmits = sum (fun s -> s.Sender.retransmits);
    timeouts = sum (fun s -> s.Sender.timeouts);
    recycled_picks =
      Array.fold_left
        (fun a c ->
          match Spray.reps c with
          | Some r -> a + (Reps.stats r).Reps.recycled
          | None -> a)
        0 conns;
    switch_dropped;
    reroute;
    violations;
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s/%s: %d flows, %d/%d bytes%s, %d fin / %d failed%s, p99 FCT %.0f us, \
     %.1f Mb/s, %d rtx / %d RTOs, %d recycled picks, %d switch drops%s, %d \
     violations"
    (mode_name o.mode)
    (workload_name o.workload)
    o.nconns o.delivered_bytes o.offered_bytes
    (if o.byte_exact then "" else " MISMATCH")
    o.finished o.failed
    (match o.completion with
    | Some t -> Printf.sprintf " in %.2f ms" (Time.to_float_us t /. 1000.)
    | None -> "")
    (Time.to_float_us o.fct_p99)
    o.goodput_mbps o.retransmits o.timeouts o.recycled_picks o.switch_dropped
    (match o.reroute with
    | Some r -> Printf.sprintf ", reroute %.1f us" (Time.to_float_us r)
    | None -> "")
    (List.length o.violations)

(* ------------------------------------------------------------------ *)
(* The figure and its acceptance bars. *)

let reroute_budget = Time.us 100

let check_figure ~perm ~inc ~fail_free ~failed_run ~reroute_run =
  let errs = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let each o =
    let tag =
      Printf.sprintf "%s/%s" (mode_name o.mode) (workload_name o.workload)
    in
    List.iter (fun v -> bad "%s: %s" tag v) o.violations;
    if not o.byte_exact then bad "%s: delivered streams not byte-exact" tag;
    if o.finished <> o.nconns then
      bad "%s: %d of %d flows finished (%d failed)" tag o.finished o.nconns
        o.failed
  in
  List.iter each (perm @ inc @ [ fail_free; failed_run; reroute_run ]);
  (* REPS must beat the static-hash strawman where it matters: the slow
     tail of the permutation (collision victims). *)
  (match
     ( List.find_opt (fun o -> o.mode = Spray.Reps) perm,
       List.find_opt (fun o -> o.mode = Spray.Static_hash) perm )
   with
  | Some r, Some e ->
      if r.fct_p99 >= e.fct_p99 then
        bad
          "permutation: REPS p99 FCT %.0f us not better than static ECMP \
           %.0f us"
          (Time.to_float_us r.fct_p99)
          (Time.to_float_us e.fct_p99)
  | _ -> bad "permutation: missing REPS or ECMP run");
  (* The reroute bar is measured where the REPS claim applies: a flow
     actively cycling the dead path when it dies. (In the permutation
     run a frozen connection may not sample a path for hundreds of
     microseconds — no end-to-end scheme can learn a path died before
     next touching it, so that run carries the goodput bar instead.) *)
  (match reroute_run.reroute with
  | Some r when r > reroute_budget ->
      bad "reroute: last hand-off to the dead trunk %.1f us after the cut \
           (budget %.0f us)"
        (Time.to_float_us r)
        (Time.to_float_us reroute_budget)
  | Some _ -> ()
  | None -> bad "reroute: no measurement");
  (match reroute_run.reroute with
  | Some r when r = Time.zero ->
      bad "reroute: flow never used the dead trunk after the cut — the \
           cut landed outside the flow or the path set; not a measurement"
  | _ -> ());
  (match (fail_free.completion, failed_run.completion) with
  | Some t0, Some t ->
      let ratio = float_of_int t0 /. float_of_int (max 1 t) in
      if ratio < 0.9 then
        bad "failure: goodput ratio %.2f below 0.9 of failure-free" ratio
  | _ -> bad "failure: a run did not complete");
  List.rev !errs

let modes = [ Spray.Single; Spray.Static_hash; Spray.Reps ]
let mode_x = function
  | Spray.Single -> 0
  | Spray.Static_hash -> 1
  | Spray.Reps -> 2

let figure ?(bytes_per_flow = 64 * 1024) () =
  let perm =
    List.map (fun mode -> run ~mode ~workload:Permutation ~bytes_per_flow ())
      modes
  in
  let inc =
    List.map
      (fun mode -> run ~mode ~workload:(Incast 8) ~bytes_per_flow ())
      modes
  in
  let fail_free = List.nth perm 2 in
  let failed_run =
    (* Goodput retention: the same permutation with the trunk cut once
       every flow has started, while the late flows are still mid-
       transfer. *)
    run ~mode:Spray.Reps ~workload:Permutation ~bytes_per_flow
      ~fail_at:(Time.us 800) ()
  in
  let reroute_run =
    (* Reroute latency, measured where the claim applies: one saturated
       inter-pod flow that is actively cycling all 16 paths (frozen by
       ~300 us) when the trunk under one of them dies mid-transfer.
       Small segments, so the spray makes a hand-off decision every
       ~10 us (the 100 us budget is ~10 decisions; a 1 KB PDU
       serializes for ~60 us and would leave no room), and a
       fast-retransmit threshold of 4 — with a single flow the
       equal-cost queue differential is nil, so loss detection, which
       paces the reroute, can run that hot without spurious firing. *)
    run ~mode:Spray.Reps ~workload:Single_flow ~bytes_per_flow:(16 * 1024)
      ~config:
        {
          transport_config with
          Sender.seg_size = 128;
          window = 16;
          init_cwnd = 2;
          dup_ack_threshold = 4;
        }
      ~fail_at:(Time.us 500) ()
  in
  (match check_figure ~perm ~inc ~fail_free ~failed_run ~reroute_run with
  | [] -> ()
  | errs -> failwith ("multipath: " ^ String.concat "; " errs));
  let pt outs f = List.map (fun o -> (mode_x o.mode, f o)) outs in
  {
    Report.title =
      "multipath: 8-pod fat-tree (32 hosts, 80 switches, 16 equal-cost \
       paths); permutation + inter-pod incast under single-path vs \
       static-hash ECMP vs REPS spraying, plus a mid-run trunk cut \
       (REPS)";
    xlabel = "path selection (0 = single path, 1 = static-hash ECMP, 2 = REPS)";
    ylabel = "Mb/s / us (see series)";
    series =
      [
        {
          Report.label = "permutation aggregate goodput (Mb/s)";
          points = pt perm (fun o -> o.goodput_mbps);
        };
        {
          Report.label = "permutation p99 FCT (us)";
          points = pt perm (fun o -> Time.to_float_us o.fct_p99);
        };
        {
          Report.label = "incast-8 aggregate goodput (Mb/s)";
          points = pt inc (fun o -> o.goodput_mbps);
        };
        {
          Report.label = "permutation retransmitted segments";
          points = pt perm (fun o -> float_of_int o.retransmits);
        };
        {
          Report.label = "trunk-cut reroute latency (us, REPS, saturated flow)";
          points =
            [
              ( mode_x Spray.Reps,
                match reroute_run.reroute with
                | Some r -> Time.to_float_us r
                | None -> Float.nan );
            ];
        };
        {
          Report.label = "trunk-cut goodput ratio vs failure-free (REPS)";
          points =
            [
              ( mode_x Spray.Reps,
                match (fail_free.completion, failed_run.completion) with
                | Some t0, Some t -> float_of_int t0 /. float_of_int (max 1 t)
                | _ -> Float.nan );
            ];
        };
      ];
    paper_note =
      "testbed extension, not a paper figure: the adaptor stack of the \
       paper scaled up to a Clos fabric. Static-hash ECMP pins each \
       connection to one of the 16 equal-cost paths, so a permutation \
       draws birthday collisions and the victims' completions stretch; \
       REPS sprays per PDU on recycled ack entropy, evening the load \
       (lower p99) and — because dead paths simply stop yielding clean \
       acks — steering off a cut trunk within a ~100 us budget while \
       keeping at least 90% of failure-free goodput.";
  }
