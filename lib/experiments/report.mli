(** Result containers and plain-text rendering for the experiment suite.

    Every paper table or figure is regenerated as one of these values; the
    bench harness prints them in a stable format that EXPERIMENTS.md quotes
    next to the paper's numbers. *)

type series = { label : string; points : (int * float) list }
(** One curve: (x, y) points, x typically a message size in bytes. *)

type figure = {
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  paper_note : string;  (** what the paper reports, for eyeball comparison *)
}

type table = {
  t_title : string;
  header : string list;
  rows : string list list;
  t_paper_note : string;
}

val print_figure : figure -> unit
val print_table : table -> unit

(** {2 Machine-readable rendering} *)

val table_json : table -> Osiris_obs.Json.t
(** [{kind:"table"; title; header; rows; paper_note}] — every datum the
    textual rendering prints. *)

val figure_json : figure -> Osiris_obs.Json.t
(** [{kind:"figure"; title; xlabel; ylabel; series; paper_note}], each
    series as [{label; points:[{x;y}]}]. *)

val schema : string
(** The BENCH.json schema tag (["osiris-bench/7"]); bumped whenever an
    experiment's series set or semantics change. *)

val bench_json :
  mode:string ->
  experiments:(string * string * Osiris_obs.Json.t) list ->
  micro:(string * float option) list ->
  Osiris_obs.Json.t
(** The BENCH.json document (schema {!schema}): the run [mode],
    every experiment as [(id, description, result_json)], Bechamel results
    as [(name, ns_per_run)], and a full {!Osiris_obs.Metrics} snapshot
    taken at call time. *)

val mbps : bytes_count:int -> ns:int -> float
(** Rate of [bytes_count] bytes over [ns] simulated nanoseconds, in Mb/s. *)

val sizes_1k_to_256k : int list
(** The x-axis of figures 2-4: 1,2,4,...,256 KB. *)
