open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Invariants = Osiris_core.Invariants
module Board = Osiris_board.Board
module Switch = Osiris_switch.Switch
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Ctable = Osiris_classify.Table
module Cost = Osiris_classify.Cost
module Cdf = Osiris_traffic.Cdf
module Matrix = Osiris_traffic.Matrix
module Rng = Osiris_util.Rng
module Data_cache = Osiris_cache.Data_cache

(* Connection-dense demultiplexing: one receiver terminates thousands of
   VCs at once and every arriving cell must be classified to its VC
   state before a byte can move. The sweep opens [nvcs] VCs between one
   host pair, drives one short flow per VC (sizes from a scaled
   web-search CDF), and reads the classification tables' probe counters
   back out. Probe counts are machine-independent; the cost model turns
   them into nanoseconds per cell for both paper machines. The linear
   baseline is the pre-hashing strawman: an association list scanned
   front to back, whose expected cost grows with the table. *)

type point = {
  nvcs : int;
  offered_pdus : int;
  delivered_pdus : int;
  offered_bytes : int;
  delivered_bytes : int;
  demux : Ctable.probe_stats;
  route : Ctable.probe_stats;
  nroutes : int;
  resident_bytes_per_vc : int;
  path_enums : int;
  violations : string list;
}

let avg_probes (s : Ctable.probe_stats) =
  if s.Ctable.lookups = 0 then 0.
  else float_of_int s.Ctable.probes /. float_of_int s.Ctable.lookups

(* Modeled per-cell classification cost on [profile]: the board's VC
   demux plus the switch's routing lookup, each charged per probe. *)
let hashed_ns profile p =
  Cost.lookup_ns profile ~probes:(avg_probes p.demux +. avg_probes p.route)

(* Linear-scan baseline: an unsorted list probes (n+1)/2 entries on
   average for a uniformly used table of n live keys. *)
let linear_ns profile p =
  let scan n = (float_of_int n +. 1.) /. 2. in
  Cost.lookup_ns profile
    ~probes:(scan p.nvcs +. scan p.nroutes)

let profile_of machine =
  let c = machine.Machine.cache in
  Cost.of_cache ~name:machine.Machine.name
    ~cpu_hz:c.Data_cache.cpu_hz
    ~fill_overhead_cycles:c.Data_cache.fill_overhead_cycles
    ~hit_cycles_per_word:c.Data_cache.hit_cycles_per_word

let run ?(machine = Machine.ds5000_200) ?(seed = 11) ~nvcs () =
  (* A host terminating thousands of connections provisions receive
     buffers for the burst depth the connection count implies; the stock
     63-buffer pool is sized for the paper's few-VC benchmarks. *)
  let machine = { machine with Machine.rx_pool_buffers = 255 } in
  (* The descriptor queues must be deepened to match: the driver caps
     circulating buffers at [queue_size - 1]. *)
  let board =
    {
      Board.default_config with
      Board.demux_oracle = true;
      queue_size = 256;
    }
  in
  let cfg = { Host.default_config with Host.board; seed = 7000 + seed } in
  let switch =
    {
      Switch.default_config with
      Switch.queue_cells = 512;
      route_oracle = true;
    }
  in
  let eng, topo =
    Network.star ~n:2 ~machine ~config:cfg ~switch ~seed:(300 + seed) ()
  in
  let recv = Network.host topo 0 and sender = Network.host topo 1 in
  (* Bulk VC setup: every (1 -> 0) circuit after the first must come out
     of the topology's path cache, so opening thousands stays O(1)
     amortized. *)
  let vcs = Array.init nvcs (fun _ -> Network.open_vc topo ~src:1 ~dst:0) in
  let path_enums = Network.path_enumerations topo in
  let delivered = ref 0 and delivered_bytes = ref 0 in
  Array.iter
    (fun vc ->
      Demux.bind recv.Host.demux ~vci:vc.Network.dst_vci ~name:"demux-sink"
        (fun ~vci:_ m ->
          incr delivered;
          delivered_bytes := !delivered_bytes + Msg.length m;
          Msg.dispose m))
    vcs;
  (* One flow per VC, sizes from a web-search CDF shrunk to single-PDU
     scale, starts spread across a window wide enough that the single
     155 Mb/s access link never saturates. *)
  let rng = Rng.create ~seed:(900 + seed + nvcs) in
  let cdf =
    Cdf.scale Cdf.websearch ~factor:1e-4 ~min_bytes:44 ~max_bytes:4096
  in
  let window = Time.us (40 * nvcs) in
  let flows = Matrix.pair_burst rng ~src:1 ~dst:0 ~flows:nvcs ~cdf ~window in
  let offered_bytes = Matrix.total_bytes flows in
  let flows = List.mapi (fun i f -> (i, f)) flows in
  Process.spawn eng ~name:"demux-tx" (fun () ->
      List.iter
        (fun (i, f) ->
          let gap = f.Matrix.f_start - Engine.now eng in
          if gap > 0 then Process.sleep eng gap;
          let m = Msg.alloc sender.Host.vs ~len:f.Matrix.f_bytes () in
          Driver.send sender.Host.driver ~vci:vcs.(i).Network.src_vci m)
        flows);
  (* Setup itself exercised the tables (binds, route installs); the
     figure charges only the steady-state per-cell lookups. *)
  Board.reset_demux_stats recv.Host.board;
  Switch.reset_route_stats topo.Network.switches.(0);
  Engine.run ~until:(window + Time.ms 20) eng;
  let sw = topo.Network.switches.(0) in
  let st = Switch.stats sw in
  let violations =
    Invariants.balance ~what:"switch cell conservation"
      ~total:st.Switch.cells_in ~parts:(Switch.conservation sw)
    @ List.concat
        (List.init (Network.nhosts topo) (fun i ->
             let h = Network.host topo i in
             Invariants.check ~quiescent:true ~board:h.Host.board
               ~driver:h.Host.driver ()))
    @ Board.demux_check recv.Host.board
    @ Switch.route_check sw
    @ (let bstats = Board.stats recv.Host.board in
       let explained =
         bstats.Board.pdus_dropped_no_buffer
         + bstats.Board.reassembly_timeouts
         + bstats.Board.reassembly_errors
       in
       let lost = nvcs - !delivered in
       (if lost <> explained then
          [
            Printf.sprintf
              "demux_scale: %d of %d flows lost but receiver counters \
               explain %d"
              lost nvcs explained;
          ]
        else [])
       @
       if lost = 0 && !delivered_bytes <> offered_bytes then
         [
           Printf.sprintf "demux_scale: %d of %d bytes delivered"
             !delivered_bytes offered_bytes;
         ]
       else [])
    @
    if path_enums > 4 then
      [
        Printf.sprintf
          "demux_scale: %d path enumerations for one (src,dst) pair — bulk \
           VC setup is not O(1) amortized"
          path_enums;
      ]
    else []
  in
  {
    nvcs;
    offered_pdus = nvcs;
    delivered_pdus = !delivered;
    offered_bytes;
    delivered_bytes = !delivered_bytes;
    demux = Board.demux_stats recv.Host.board;
    route = Switch.route_stats sw;
    nroutes = Switch.nroutes sw;
    resident_bytes_per_vc =
      Board.demux_resident_bytes recv.Host.board / max 1 nvcs;
    path_enums;
    violations;
  }

let pp_point fmt p =
  Format.fprintf fmt
    "%d VCs: %d/%d PDUs (%d/%d bytes), demux %.2f avg / %d p99 / %d max \
     probes over %d lookups, routes %.2f avg probes (%d entries), %d B/VC \
     resident, %d path enums, %d violations"
    p.nvcs p.delivered_pdus p.offered_pdus p.delivered_bytes p.offered_bytes
    (avg_probes p.demux) p.demux.Ctable.p99_probe p.demux.Ctable.max_probe
    p.demux.Ctable.lookups (avg_probes p.route) p.nroutes
    p.resident_bytes_per_vc p.path_enums
    (List.length p.violations)

(* ------------------------------------------------------------------ *)
(* The BENCH figure: per-cell classification cost vs concurrent VCs.
   The hashed tables hold the cost flat from 64 to 8192 VCs on both
   machines while the linear-scan baseline grows with the table; the
   probe bound, the Hashtbl oracles, cell conservation, and the host
   invariants are audited at every sweep point. *)

let sweep_vcs = [ 64; 256; 1024; 4096; 8192 ]

let figure () =
  let pts = List.map (fun nvcs -> run ~nvcs ()) sweep_vcs in
  List.iter
    (fun p ->
      if p.violations <> [] then
        failwith
          ("demux_scale: invariant violation: "
          ^ String.concat "; " p.violations))
    pts;
  let first = List.hd pts and last = List.nth pts (List.length pts - 1) in
  let ds = profile_of Machine.ds5000_200
  and alpha = profile_of Machine.dec3000_600 in
  (* The acceptance gates: hashed cost stays within 1.5x of the 64-VC
     cost out to 8192 VCs, while the linear baseline has grown by well
     over an order of magnitude. Probe ratios are machine-independent,
     so one gate covers both profiles. *)
  if hashed_ns ds last > 1.5 *. hashed_ns ds first then
    failwith
      (Printf.sprintf
         "demux_scale: hashed cost not flat: %.1f ns/cell at %d VCs vs %.1f \
          at %d"
         (hashed_ns ds last) last.nvcs (hashed_ns ds first) first.nvcs);
  if linear_ns ds last < 4. *. linear_ns ds first then
    failwith "demux_scale: linear baseline failed to grow with table size";
  let pt f = List.map (fun p -> (p.nvcs, f p)) pts in
  {
    Report.title =
      "demux scale: per-cell classification cost (board VC demux + switch \
       routing) vs concurrent VCs, hashed tables vs linear-scan baseline, \
       web-search-CDF flows, oracles and conservation audited";
    xlabel = "concurrent VCs at one receiver";
    ylabel = "ns per cell / probes / bytes (see series)";
    series =
      [
        { Report.label = "hashed ns/cell (5000/200)"; points = pt (hashed_ns ds) };
        { Report.label = "linear-scan ns/cell (5000/200)"; points = pt (linear_ns ds) };
        { Report.label = "hashed ns/cell (3000/600)"; points = pt (hashed_ns alpha) };
        { Report.label = "linear-scan ns/cell (3000/600)"; points = pt (linear_ns alpha) };
        { Report.label = "demux p99 probes"; points = pt (fun p -> float_of_int p.demux.Ctable.p99_probe) };
        { Report.label = "demux max probes"; points = pt (fun p -> float_of_int p.demux.Ctable.max_probe) };
        { Report.label = "resident bytes per VC"; points = pt (fun p -> float_of_int p.resident_bytes_per_vc) };
        { Report.label = "delivered PDUs"; points = pt (fun p -> float_of_int p.delivered_pdus) };
      ];
    paper_note =
      "software-perspective extension, not a paper figure: OSIRIS left \
       demultiplexing to the host, and §2.5's lesson that per-cell work \
       must stay constant motivates the hashed on-board classification \
       modeled here — Robin-Hood probing keeps cost flat to 8192 VCs \
       where a scanned list's cost tracks the connection count";
  }
