open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Invariants = Osiris_core.Invariants
module Board = Osiris_board.Board
module Switch = Osiris_switch.Switch
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux

type outcome = {
  senders : int;
  queue_cells : int;
  offered_pdus : int;
  delivered_pdus : int;
  corrupted_delivered : int;
  offered_mbps : float;
  goodput_mbps : float;
  cells_in : int;
  forwarded_cells : int;
  switch_dropped : int;
  max_occupancy : int;
  residual_queued : int;
  timeout_aborts : int;
  reassembly_timeouts : int;
  reassembly_errors : int;
  pdus_dropped_no_buffer : int;
  residual_reassemblies : int;
  violations : string list;
}

(* The accounting contract behind the figure: every offered PDU must be
   delivered byte-exact, or its loss must be explained by switch drops
   with the receiver's recovery path (reassembly timeout sweeps, sequence
   aborts, CRC rejects) having absorbed the damage — never by a leak. *)
let accounting o =
  let lost = o.offered_pdus - o.delivered_pdus in
  (if lost > 0 && o.switch_dropped = 0 then
     [
       Printf.sprintf
         "incast accounting: %d PDUs lost but the switch dropped no cells"
         lost;
     ]
   else [])
  @ (if
       lost > 0
       && o.reassembly_timeouts + o.reassembly_errors + o.timeout_aborts
          + o.pdus_dropped_no_buffer
          = 0
       && o.switch_dropped < o.cells_in / max 1 o.offered_pdus
     then
       [
         Printf.sprintf
           "incast accounting: %d PDUs lost with no recovery-path \
            evidence at the receiver"
           lost;
       ]
     else [])
  @
  if o.residual_queued > 0 then
    [
      Printf.sprintf
        "incast accounting: %d cells still queued in the switch after the \
         grace period"
        o.residual_queued;
    ]
  else []

let run ?(machine = Machine.ds5000_200) ?(senders = 3) ?(queue_cells = 48)
    ?(rounds = 10) ?(msg_size = 2048) ?(seed = 5) ?(round_gap = Time.us 400)
    ?(stagger = Time.us 30) ?(grace = Time.ms 8) () =
  let board =
    {
      Board.default_config with
      Board.reassembly_timeout = Time.ms 2;
      irq_reassert = Time.us 500;
    }
  in
  let cfg = { Host.default_config with Host.board; seed = 4000 + seed } in
  let switch = { Switch.default_config with Switch.queue_cells } in
  let eng, topo =
    Network.star ~n:(senders + 1) ~machine ~config:cfg ~switch
      ~seed:(100 + seed) ()
  in
  let recv = Network.host topo 0 in
  let vcs =
    Array.init senders (fun i -> Network.open_vc topo ~src:(i + 1) ~dst:0)
  in
  let delivered = ref 0 and corrupted = ref 0 and bytes_ok = ref 0 in
  Array.iter
    (fun vc ->
      Demux.bind recv.Host.demux ~vci:vc.Network.dst_vci ~name:"incast-sink"
        (fun ~vci:_ m ->
          let data = Msg.read_all m in
          let len = Bytes.length data in
          incr delivered;
          if len = msg_size && len >= 2 then begin
            let msg =
              Char.code (Bytes.get data 0)
              lor (Char.code (Bytes.get data 1) lsl 8)
            in
            if Fault_soak.intact ~msg data then bytes_ok := !bytes_ok + len
            else incr corrupted
          end
          else incr corrupted;
          Msg.dispose m))
    vcs;
  (* All senders blast the same receiver port in near-synchronized rounds
     (a small per-sender stagger keeps the contention partial rather than
     all-or-nothing), one PDU per round, paced so the output port can
     drain between rounds — loss comes from burst contention at the
     switch's output queue, not from a saturated steady state. *)
  Array.iteri
    (fun i vc ->
      let sender = Network.host topo (i + 1) in
      Process.spawn eng
        ~name:(Printf.sprintf "incast-tx%d" i)
        (fun () ->
          Process.sleep eng (stagger * i);
          for r = 0 to rounds - 1 do
            let id = (i * rounds) + r in
            let m = Msg.alloc sender.Host.vs ~len:msg_size () in
            Msg.blit_into m ~off:0
              ~src:(Fault_soak.fill_pattern ~msg:id ~len:msg_size);
            Driver.send sender.Host.driver ~vci:vc.Network.src_vci m;
            Process.sleep eng round_gap
          done))
    vcs;
  let horizon = (round_gap * rounds) + (stagger * senders) + Time.ms 2 in
  Engine.run ~until:(horizon + grace) eng;
  let sw = topo.Network.switches.(0) in
  let st = Switch.stats sw in
  let dstats = Driver.stats recv.Host.driver in
  let bstats = Board.stats recv.Host.board in
  let offered_pdus = senders * rounds in
  let active_ns = max 1 horizon in
  let violations =
    Invariants.balance ~what:"switch cell conservation"
      ~total:st.Switch.cells_in ~parts:(Switch.conservation sw)
    @ List.concat
        (List.init (Network.nhosts topo) (fun i ->
             let h = Network.host topo i in
             Invariants.check ~quiescent:true ~board:h.Host.board
               ~driver:h.Host.driver ()))
  in
  let o =
    {
      senders;
      queue_cells;
      offered_pdus;
      delivered_pdus = !delivered;
      corrupted_delivered = !corrupted;
      offered_mbps =
        Report.mbps ~bytes_count:(offered_pdus * msg_size) ~ns:active_ns;
      goodput_mbps = Report.mbps ~bytes_count:!bytes_ok ~ns:active_ns;
      cells_in = st.Switch.cells_in;
      forwarded_cells = st.Switch.forwarded;
      switch_dropped =
        st.Switch.dropped_overflow + st.Switch.dropped_no_route;
      max_occupancy = st.Switch.max_occupancy;
      residual_queued = Switch.occupancy sw;
      timeout_aborts = dstats.Driver.timeout_aborts;
      reassembly_timeouts = bstats.Board.reassembly_timeouts;
      reassembly_errors = bstats.Board.reassembly_errors;
      pdus_dropped_no_buffer = bstats.Board.pdus_dropped_no_buffer;
      residual_reassemblies = Board.reassemblies_in_progress recv.Host.board;
      violations;
    }
  in
  { o with violations = o.violations @ accounting o }

let pp_outcome fmt o =
  Format.fprintf fmt
    "%d senders, q=%d: %d/%d delivered (%d corrupt), %.1f of %.1f Mb/s, \
     switch %d in / %d fwd / %d dropped (peak occ %d), rx %d board \
     timeouts + %d seq errors + %d drv timeout aborts, %d residual, %d \
     violations"
    o.senders o.queue_cells o.delivered_pdus o.offered_pdus
    o.corrupted_delivered o.goodput_mbps o.offered_mbps o.cells_in
    o.forwarded_cells o.switch_dropped o.max_occupancy o.reassembly_timeouts
    o.reassembly_errors o.timeout_aborts o.residual_reassemblies
    (List.length o.violations)

(* ------------------------------------------------------------------ *)
(* The BENCH figure: sweep the output-queue capacity under a fixed
   3-sender burst pattern. Small queues damage most PDUs (every drop
   kills a whole PDU at reassembly); once the queue covers a full round's
   burst, everything gets through. *)

let sweep_queues = [ 12; 24; 48; 96; 144; 192 ]

let figure_goodput_vs_queue () =
  let outs = List.map (fun q -> run ~queue_cells:q ()) sweep_queues in
  List.iter
    (fun o ->
      if o.violations <> [] then
        failwith
          ("incast: invariant violation: " ^ String.concat "; " o.violations))
    outs;
  let pt f = List.map (fun o -> (o.queue_cells, f o)) outs in
  {
    Report.title =
      "incast: 3 senders blast 1 receiver through one switch output port \
       (2 KB PDUs, synchronized rounds, recovery timers on)";
    xlabel = "output queue capacity (cells)";
    ylabel = "PDUs / cells / Mb/s (see series)";
    series =
      [
        { Report.label = "offered PDUs"; points = pt (fun o -> float_of_int o.offered_pdus) };
        { Report.label = "delivered PDUs"; points = pt (fun o -> float_of_int o.delivered_pdus) };
        { Report.label = "rx timeout aborts"; points = pt (fun o -> float_of_int (o.reassembly_timeouts + o.timeout_aborts)) };
        { Report.label = "switch cell drops"; points = pt (fun o -> float_of_int o.switch_dropped) };
        { Report.label = "goodput (Mb/s)"; points = pt (fun o -> o.goodput_mbps) };
      ];
    paper_note =
      "testbed extension, not a paper figure: AURORA's switches sat \
       between the OSIRIS boards; output-queue overflow during \
       many-to-one bursts is absorbed by the adaptor's reassembly \
       timeout and CRC machinery — every loss is accounted (cells in = \
       forwarded + queued + dropped; lost PDUs imply switch drops), \
       nothing leaks";
  }
