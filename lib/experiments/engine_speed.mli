(** Engine macro-benchmark: events per wall-clock second over the full
    star-topology datapath, timer wheel vs binary heap.

    Runs the identical seeded workload on both scheduler backends for a
    fixed budget of live events, measures wall-clock dispatch rate,
    simulated cells forwarded per second and simulated payload bytes
    per second, and checks that (a) the two backends agree on every
    traffic counter and the final clock and (b) neither scheduler
    retains memory proportional to the number of dispatched events. *)

type outcome = {
  backend : Osiris_sim.Engine.backend;
  events : int;  (** live events dispatched per timed segment *)
  wall_s : float;  (** wall time across all timed segments *)
  cpu_s : float;
      (** user CPU time of the best (fastest) segment; the rates below
          use this *)
  events_per_s : float;
  cells_forwarded : int;
  cells_per_s : float;
  bytes_per_s : float;  (** forwarded cell payload bytes per wall second *)
  delivered_pdus : int;
  delivered_bytes : int;
  final_clock : Osiris_sim.Time.t;
  cells_in : int;
  dropped : int;
  live_words_growth : int;
      (** major-heap words retained across all timed segments of both
          backends (they share the process heap, so retention is
          measured once and reported in both outcomes) *)
  minor_words_per_event : float;
      (** minor-heap words allocated per dispatched event, best
          segment: the R5 hot-path allocation lint's rent, in numbers.
          Not cross-checked between backends — the heap legitimately
          boxes one entry per scheduled event. *)
}

val run :
  ?events:int ->
  ?senders:int ->
  ?msg_size:int ->
  ?seed:int ->
  unit ->
  outcome * outcome * string list
(** One measurement at a given event budget (default 1M): the timer
    wheel outcome, the binary heap outcome, and the violations —
    cross-backend divergence or a live-words leak. *)

val figure : unit -> Report.figure
(** The BENCH.json figure: both backends' events/s over the event-budget
    sweep, the wheel's speedup, forwarded-cell and payload-byte rates,
    and the wheel's live-words growth. Raises [Failure] on any
    violation. *)
