(** Congestion sweep: windowed transports incast one switch port.

    {!Incast} measures raw damage from open-loop bursts; this experiment
    reruns the many-to-one pattern with {!Osiris_transport} doing
    end-to-end recovery and congestion control, and asks what the fabric
    {e wastes}: retransmitted bytes and completion-time inflation vs the
    output queue's capacity, with the switch's ECN-style threshold
    marking off or on. Every byte is eventually delivered exactly once
    (the runs audit this), so the cliff shows up as work, not loss.

    {!soak} replays the transfer under seeded random fault plans — link
    bursts, carrier outages, receive squeezes, plus a port-flap storm on
    the receiver's switch port and a trunk-loss burst — requiring every
    stream to finish byte-exact with bounded retransmission and zero
    invariant violations. *)

val small_machine : Osiris_core.Machine.t
(** The Alpha profile with memory scaled to 8 MB and the receive pool
    provisioned for the incast (the driver caps circulating buffers at
    the descriptor-queue depth, and eight windowed senders can have more
    PDUs in flight than the paper's 64-slot queue admits): fast enough,
    and buffered enough, that the switch queue — not the adaptor's
    no-buffer drop — is the loss point. *)

val transport_config : Osiris_transport.Sender.config
(** Short (128 B, four-cell) segments — so a whole PDU fits even the
    shallowest swept queue several times over — window 16, RTO floor
    above the congested round-trip. *)

type outcome = {
  senders : int;
  queue_cells : int;
  mark_threshold : int;  (** 0 = marking off *)
  offered_bytes : int;  (** total, all senders *)
  delivered_bytes : int;
  byte_exact : bool;  (** every stream delivered exactly, in order *)
  finished : int;  (** connections that reached Finished *)
  failed : int;  (** connections that aborted (max retries) *)
  completion : Osiris_sim.Time.t option;
      (** last Finished instant; [None] if any stream didn't finish *)
  unique_sent : int;  (** segments, all senders *)
  retransmits : int;
  retransmit_bytes : int;
  timeouts : int;
  fast_retransmits : int;
  ece_acks : int;
  marked_cells : int;
  marked_pdus : int;
  switch_dropped : int;
  host_dropped : int;
      (** PDUs the boards dropped for want of a receive buffer (§3.1) *)
  cells_in : int;
  max_occupancy : int;
  violations : string list;
      (** switch cell + mark conservation, transport state-machine
          invariants, host invariants, traffic accounting *)
}

val run :
  ?senders:int ->
  ?queue_cells:int ->
  ?marking:bool ->
  ?bytes_per_sender:int ->
  ?seed:int ->
  ?machine:Osiris_core.Machine.t ->
  ?config:Osiris_transport.Sender.config ->
  ?plan:Osiris_fault.Plan.t ->
  ?cap:Osiris_sim.Time.t ->
  unit ->
  outcome
(** One transfer: [senders] hosts each push [bytes_per_sender] through
    their own reliable connection to host 0, all crossing the same
    switch output port ([queue_cells] deep; [marking] sets the threshold
    to [max 2 (queue_cells / 3)]). [machine] (default {!small_machine})
    profiles every host. The switch runs early/partial packet
    discard sized to one segment PDU, so contention sheds whole PDUs
    (clean losses the sack machinery recovers in a round trip) instead
    of cutting cells out of the middle of them. [plan] additionally arms
    a host-link injector on the receiver's downlink and a fabric
    injector on the switch. The engine runs until every connection is
    terminal (or [cap]), then a grace period, then the audit. *)

val pp_outcome : Format.formatter -> outcome -> unit

val sweep_queues : int list

val goodput_ratio : baseline:outcome -> outcome -> float
(** Completion-time ratio (baseline over run) — both runs deliver all
    bytes, so relative wall-clock is the goodput measure. *)

val figure_retransmits_vs_queue :
  ?senders:int -> ?bytes_per_sender:int -> unit -> Report.figure
(** The BENCH figure (marking off vs on vs lossless baseline), plus one
    64-sender marking-on point at a fan-in-scaled queue — the [senders]
    series is untouched; the wide point's bar is byte-exact delivery
    with zero violations. Raises [Failure] if any run violates an
    invariant, if a marking-on run's goodput falls below 90% of the
    baseline, or if marking-on retransmitted bytes fail to decrease
    (within noise) as the queue grows. *)

val soak :
  ?seeds:int ->
  ?senders:int ->
  ?bytes_per_sender:int ->
  unit ->
  (int * outcome) list
(** The seeded fault soak (default 8 seeds), each seed a different
    random plan + port-flap storm. *)

val soak_violations : (int * outcome) list -> string list
(** Empty iff every soak stream finished byte-exact with bounded
    retransmission and no invariant violations. *)
