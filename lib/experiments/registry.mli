(** Registry of every reproduced paper result and ablation, keyed by the
    identifiers the CLI and the bench harness use. *)

type kind =
  | Table of (unit -> Report.table)
  | Figure of (unit -> Report.figure)

type entry = { id : string; description : string; kind : kind }

val all : entry list
(** Every experiment, in paper order. *)

val quick : entry list
(** The subset cheap enough for a default bench run (everything except the
    full-size figure sweeps). *)

val find : string -> entry option

type result = R_table of Report.table | R_figure of Report.figure

val eval : entry -> result
(** Execute without printing, so one run can feed both the textual report
    and BENCH.json. *)

val print_result : result -> unit
val result_json : result -> Osiris_obs.Json.t

val run : entry -> unit
(** [eval] then [print_result]. *)

val ids : unit -> string list
