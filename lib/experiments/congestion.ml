open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Invariants = Osiris_core.Invariants
module Switch = Osiris_switch.Switch
module Plan = Osiris_fault.Plan
module Injector = Osiris_fault.Injector
module Rng = Osiris_util.Rng
module Atm_link = Osiris_link.Atm_link
module Board = Osiris_board.Board
module Sar = Osiris_atm.Sar
module Wire = Osiris_transport.Wire
module Sender = Osiris_transport.Sender
module Transport = Osiris_transport.Transport

(* Incast revisited with a real transport: where [Incast] blasts open-loop
   PDUs into one switch output port and reads the damage off the queue
   capacity, here every sender runs the windowed, congestion-controlled
   transport and the question becomes how much work the fabric wastes —
   retransmitted bytes vs queue depth — and whether ECN-style marking
   removes the cliff. *)

(* The sweep hosts are provisioned Alphas with memory scaled down to
   8 MB (each host backs its simulated memory with a real [Bytes.t], and
   a sweep stands up dozens of them). The fast profile is deliberate:
   on the DECstation the adaptor's no-buffer drop (§3.1) throttles every
   sender long before the switch queue fills, so a queue-capacity sweep
   would only re-measure the host bottleneck that Figures 2-4 already
   characterize. Provisioned hosts isolate the variable under study —
   the fabric's output queue. *)
let small_machine =
  {
    Machine.dec3000_600 with
    Machine.mem_size = 8 * 1024 * 1024;
    (* Enough circulating receive buffers that eight concurrent streams
       of short PDUs (up to 8 x window = 128 PDUs in flight) never
       exhaust the pool: a no-buffer drop at the receiving board would
       be a second, host-side loss point confounding the queue-capacity
       sweep. The descriptor queues must be deepened to match — the
       driver caps circulating buffers at [queue_size - 1]. *)
    rx_pool_buffers = 192;
  }

(* OC-1 aggregate (still striped four ways, matching the boards) instead
   of OC-12: at 51.84 Mb/s the bandwidth-delay product is a few dozen
   cells, the same order as the queue capacities under study, so a
   12-cell queue is a meaningfully shallow buffer rather than a rounding
   error against the pipe. (At the full striped rate the BDP alone is
   ~300 cells and no feedback, however prompt, could hold 90%
   utilization over a 12-cell queue.) *)
let sweep_link =
  { Atm_link.default_config with Atm_link.link_rate_bps = 12_960_000 }

(* Transport tuning for a fabric whose bottleneck queue may hold barely
   two segments: short segments keep the per-segment cell burst (4 cells
   framed) small enough that two PDUs fit even the shallowest queue
   under packet-discard admission, and the RTO floor sits above the
   congested round-trip so timeouts mean loss, not queueing. *)
let transport_config =
  {
    Sender.default_config with
    Sender.seg_size = 128;
    window = 16;
    init_cwnd = 2;
    (* The RTO floor sits above the worst queueing round-trip (dozens of
       16-segment windows draining one port inflate the RTT past 2 ms),
       so a timeout means loss, never mere queueing. *)
    rto_init = Time.ms 6;
    rto_min = Time.ms 3;
    rto_max = Time.ms 100;
    max_retries = 12;
  }

type outcome = {
  senders : int;
  queue_cells : int;
  mark_threshold : int;  (** 0 = marking off *)
  offered_bytes : int;  (** total, all senders *)
  delivered_bytes : int;
  byte_exact : bool;  (** every stream delivered exactly, in order *)
  finished : int;  (** connections that reached Finished *)
  failed : int;  (** connections that aborted (max retries) *)
  completion : Time.t option;  (** last Finished instant; None if any didn't *)
  unique_sent : int;  (** segments, all senders *)
  retransmits : int;
  retransmit_bytes : int;
  timeouts : int;
  fast_retransmits : int;
  ece_acks : int;
  marked_cells : int;
  marked_pdus : int;
  switch_dropped : int;
  host_dropped : int;
      (** PDUs the boards dropped for want of a receive buffer (§3.1) *)
  cells_in : int;
  max_occupancy : int;
  violations : string list;
}

(* The traffic contract: every offered byte delivered exactly once, and
   every retransmission traceable to fabric damage — on a fault-free
   fabric a sender only retransmits because the switch dropped cells. *)
let accounting ~fault_free o =
  (if o.delivered_bytes <> o.offered_bytes || not o.byte_exact then
     [
       Printf.sprintf
         "congestion accounting: %d of %d bytes delivered%s" o.delivered_bytes
         o.offered_bytes
         (if o.byte_exact then "" else " (stream mismatch)");
     ]
   else [])
  @ (if
       fault_free && o.retransmits > 0
       && o.switch_dropped = 0 && o.host_dropped = 0
     then
       [
         Printf.sprintf
           "congestion accounting: %d retransmits though neither fabric nor \
            adaptor dropped anything"
           o.retransmits;
       ]
     else [])
  @
  if fault_free && o.marked_cells = 0 && o.mark_threshold > 0 && o.ece_acks > 0
  then [ "congestion accounting: ECE echoes without any marked cell" ]
  else []

(* Drive the engine in slices until every connection is terminal (or the
   hard cap passes): completion times are data here, so the run cannot
   stop at a fixed horizon. *)
let run_until_done eng ~cap ~terminal =
  let slice = Time.ms 5 in
  let rec go () =
    let now = Engine.now eng in
    if (not (terminal ())) && now < cap then begin
      Engine.run ~until:(min cap (now + slice)) eng;
      go ()
    end
  in
  go ()

let run ?(senders = 6) ?(queue_cells = 48) ?(marking = false)
    ?(bytes_per_sender = 16 * 1024) ?(seed = 5) ?(machine = small_machine)
    ?(config = transport_config) ?plan ?(cap = Time.s 4) () =
  let mark_threshold = if marking then max 2 (queue_cells / 3) else 0 in
  (* The fabric runs packet-discard (EPD/PPD) admission sized to the
     transport's data PDU: a congested queue sheds whole PDUs, never
     tails. Without it a shallow queue clips cells out of the middle of
     PDUs, and every clipped PDU costs far more than itself — the
     receiving board's stripe phase stays rotated until a reassembly
     timeout, so the loss of one cell silently CRC-kills the rest of the
     burst and only an RTO recovers. Whole-PDU losses leave the following
     PDUs deliverable, the receiver's sacks expose the hole, and fast
     retransmission repairs it in about a round trip. *)
  let epd_reserve =
    min queue_cells
      (Sar.cells_per_pdu (config.Sender.seg_size + Wire.data_header_size))
  in
  let switch =
    { Switch.default_config with
      Switch.queue_cells; mark_threshold; epd_reserve }
  in
  (* The board's reassembly-timeout sweep is load-bearing here: a cell
     dropped mid-PDU leaves the VC's stripe phase rotated, and every
     later PDU on that VC reassembles permuted (a steady CRC-drop trickle
     that no retransmission can outrun). The sweep fires during the
     sender's RTO pause and resets the phase, so the retransmission
     finds a clean reassembler. Keep it well under the RTO floor and
     well over a PDU's intra-queue spread. *)
  let host_cfg =
    {
      Host.default_config with
      Host.seed = 9000 + seed;
      board =
        {
          Host.default_config.Host.board with
          Board.reassembly_timeout = Time.ms 2;
          (* Deep enough for [small_machine]'s full buffer complement
             (the paper's 64-slot queues cap circulating buffers below
             the 128 PDUs eight windowed senders keep in flight). *)
          queue_size = 256;
        };
    }
  in
  let eng, topo =
    Network.star ~n:(senders + 1) ~machine ~config:host_cfg
      ~link:sweep_link ~switch ~seed:(300 + seed) ()
  in
  let sinks = Array.init senders (fun _ -> Buffer.create bytes_per_sender) in
  let finish_times = Array.make senders None in
  let conns =
    Array.init senders (fun i ->
        (* Slightly different timer constants per sender: a shared RTO
           ceiling phase-locks backed-off senders (every retry collides
           with every other retry, forever). Real stacks are desynced by
           clock granularity and scheduling noise; the simulator must do
           it explicitly. *)
        let config =
          {
            config with
            Sender.rto_init = config.Sender.rto_init + Time.us (137 * i);
            rto_max = config.Sender.rto_max + Time.us (613 * i);
          }
        in
        Transport.connect_via topo
          ~name:(Printf.sprintf "cc%d" i)
          ~config ~src:(i + 1) ~dst:0
          ~on_state:(fun st ->
            if st = Sender.Finished then
              finish_times.(i) <- Some (Engine.now eng))
          ~deliver:(fun b -> Buffer.add_bytes sinks.(i) b)
          ())
  in
  (* Optional fault plan: host-link faults ride the receiver's downlink
     (every stream crosses it), fabric faults (port flaps) the switch. *)
  let injectors =
    match plan with
    | None -> []
    | Some p ->
        let sw = topo.Network.switches.(0) in
        let down = topo.Network.endpoints.(0).Network.from_fabric in
        [
          `Link (Injector.inject eng ~plan:p ~link:down ());
          `Fabric
            (Injector.inject_fabric eng ~plan:p ~switch:sw
               ~trunks:topo.Network.trunks ());
        ]
  in
  ignore injectors;
  (* Stagger the starts: simultaneous senders would synchronize their
     slow-start bursts and retransmission timers (everyone overflows the
     queue, everyone times out together, everyone collides again), which
     no real incast exhibits past the first RTT. A seeded jitter breaks
     the phase; after that, ack clocking keeps the senders interleaved. *)
  let jitter = Rng.create ~seed:(0x57a6_6e2d lxor seed) in
  Array.iteri
    (fun i conn ->
      let at = Time.us ((i * 400) + Rng.int jitter 300) in
      ignore
        (Engine.schedule_at eng ~time:at (fun () ->
             Transport.send conn
               (Fault_soak.fill_pattern ~msg:i ~len:bytes_per_sender);
             Transport.close conn)))
    conns;
  let terminal () =
    Array.for_all (fun c -> Transport.state c <> Sender.Active) conns
  in
  run_until_done eng ~cap ~terminal;
  (* Grace: let acks, sweeps and pumps quiesce before auditing. *)
  Engine.run ~until:(Engine.now eng + Time.ms 10) eng;
  let sw = topo.Network.switches.(0) in
  let st = Switch.stats sw in
  let sum f =
    Array.fold_left (fun a c -> a + f (Sender.stats (Transport.sender c))) 0
      conns
  in
  let byte_exact =
    Array.for_all
      (fun i ->
        Bytes.equal (Buffer.to_bytes sinks.(i))
          (Fault_soak.fill_pattern ~msg:i ~len:bytes_per_sender))
      (Array.init senders (fun i -> i))
  in
  let finished =
    Array.fold_left
      (fun a c -> if Transport.state c = Sender.Finished then a + 1 else a)
      0 conns
  in
  let failed =
    Array.fold_left
      (fun a c ->
        match Transport.state c with Sender.Failed _ -> a + 1 | _ -> a)
      0 conns
  in
  let completion =
    Array.fold_left
      (fun acc ft ->
        match (acc, ft) with
        | Some a, Some b -> Some (max a b)
        | _ -> None)
      (Some Time.zero) finish_times
  in
  let violations =
    Invariants.balance ~what:"switch cell conservation"
      ~total:st.Switch.cells_in ~parts:(Switch.conservation sw)
    @ Invariants.balance ~what:"switch mark conservation"
        ~total:st.Switch.marked ~parts:(Switch.mark_conservation sw)
    @ List.concat_map
        (fun c -> Transport.invariants c)
        (Array.to_list conns)
  in
  let violations =
    violations
    @ List.concat
        (List.init (Network.nhosts topo) (fun i ->
             let h = Network.host topo i in
             Invariants.check ~quiescent:true ~board:h.Host.board
               ~driver:h.Host.driver ()))
  in
  let o =
    {
      senders;
      queue_cells;
      mark_threshold;
      offered_bytes = senders * bytes_per_sender;
      delivered_bytes =
        Array.fold_left (fun a b -> a + Buffer.length b) 0 sinks;
      byte_exact;
      finished;
      failed;
      completion;
      unique_sent = sum (fun s -> s.Sender.unique_sent);
      retransmits = sum (fun s -> s.Sender.retransmits);
      retransmit_bytes = sum (fun s -> s.Sender.retransmit_bytes);
      timeouts = sum (fun s -> s.Sender.timeouts);
      fast_retransmits = sum (fun s -> s.Sender.fast_retransmits);
      ece_acks = sum (fun s -> s.Sender.ece_acks);
      marked_cells = st.Switch.marked;
      marked_pdus =
        Array.fold_left
          (fun a c ->
            a
            + (Osiris_transport.Receiver.stats (Transport.receiver c))
                .Osiris_transport.Receiver.marked_pdus)
          0 conns;
      switch_dropped =
        st.Switch.dropped_overflow + st.Switch.dropped_no_route
        + st.Switch.dropped_epd;
      host_dropped =
        List.fold_left
          (fun a i ->
            let h = Network.host topo i in
            a
            + (Osiris_board.Board.stats h.Host.board)
                .Osiris_board.Board.pdus_dropped_no_buffer)
          0
          (List.init (Network.nhosts topo) Fun.id);
      cells_in = st.Switch.cells_in;
      max_occupancy = st.Switch.max_occupancy;
      violations;
    }
  in
  { o with violations = o.violations @ accounting ~fault_free:(plan = None) o }

let pp_outcome fmt o =
  Format.fprintf fmt
    "%d senders, q=%d mark=%d: %d/%d bytes%s, %d fin / %d failed%s, %d uniq \
     + %d rtx segs (%d B rtx), %d RTOs / %d fast, %d ECE of %d marked PDUs \
     (%d cells), switch %d in / %d dropped / %d host-dropped (peak %d), %d \
     violations"
    o.senders o.queue_cells o.mark_threshold o.delivered_bytes o.offered_bytes
    (if o.byte_exact then "" else " MISMATCH")
    o.finished o.failed
    (match o.completion with
    | Some t -> Printf.sprintf " in %.2f ms" (Time.to_float_us t /. 1000.)
    | None -> "")
    o.unique_sent o.retransmits o.retransmit_bytes o.timeouts
    o.fast_retransmits o.ece_acks o.marked_pdus o.marked_cells o.cells_in
    o.switch_dropped o.host_dropped o.max_occupancy
    (List.length o.violations)

(* ------------------------------------------------------------------ *)
(* The BENCH figure: retransmitted bytes and completion time vs queue
   capacity, marking off vs on, against a provisioned-lossless baseline.
   Marking off shows the incast cliff (shallow queues burn the wire on
   retransmissions); marking on must hold goodput at >= 90% of the
   baseline at every capacity and waste monotonically less as the queue
   grows. *)

let sweep_queues = [ 12; 24; 48; 96; 144; 192 ]

(* Goodput ratio: all runs deliver every byte eventually, so "goodput"
   compares completion times — baseline wall-clock over this run's. *)
let goodput_ratio ~baseline o =
  match (baseline.completion, o.completion) with
  | Some t0, Some t -> float_of_int t0 /. float_of_int (max 1 t)
  | _ -> 0.0

let check_figure ~baseline ~marked outs =
  let errs = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun o ->
      List.iter (fun v -> bad "q=%d: %s" o.queue_cells v) o.violations)
    (baseline :: outs @ marked);
  List.iter
    (fun o ->
      let r = goodput_ratio ~baseline o in
      if r < 0.9 then
        bad "marking on, q=%d: goodput ratio %.2f below 0.9" o.queue_cells r)
    marked;
  (* Retransmitted bytes must fall (within noise) as the queue deepens. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        if
          float_of_int b.retransmit_bytes
          > (1.10 *. float_of_int a.retransmit_bytes) +. 512.
        then
          bad "marking on: retransmit bytes rise from q=%d (%d) to q=%d (%d)"
            a.queue_cells a.retransmit_bytes b.queue_cells b.retransmit_bytes;
        monotone rest
    | _ -> ()
  in
  monotone marked;
  List.rev !errs

let figure_retransmits_vs_queue ?(senders = 8) ?(bytes_per_sender = 32 * 1024)
    () =
  let baseline =
    run ~senders ~queue_cells:4096 ~marking:false ~bytes_per_sender ()
  in
  let plain =
    List.map
      (fun q -> run ~senders ~queue_cells:q ~marking:false ~bytes_per_sender ())
      sweep_queues
  in
  let marked =
    List.map
      (fun q -> run ~senders ~queue_cells:q ~marking:true ~bytes_per_sender ())
      sweep_queues
  in
  (* One point an order of magnitude wider (ROADMAP: "sweep sender counts
     into the hundreds"): 64 senders incast the same port, marking on,
     queue scaled with the fan-in. Smaller per-sender transfers keep the
     run's wall time in budget; the bar is the absolute one — everything
     delivered byte-exact with zero invariant violations — not the
     8-sender series' goodput ratios, which assume mild overcommit. *)
  let wide =
    run ~senders:64 ~queue_cells:256 ~marking:true
      ~bytes_per_sender:(8 * 1024) ~cap:(Time.s 16) ()
  in
  (let werrs = ref [] in
   List.iter
     (fun v -> werrs := Printf.sprintf "64 senders: %s" v :: !werrs)
     wide.violations;
   if not wide.byte_exact then
     werrs := "64 senders: delivered streams not byte-exact" :: !werrs;
   if wide.finished <> wide.senders then
     werrs :=
       Printf.sprintf "64 senders: %d of %d finished" wide.finished
         wide.senders
       :: !werrs;
   match check_figure ~baseline ~marked plain @ List.rev !werrs with
   | [] -> ()
   | errs -> failwith ("congestion: " ^ String.concat "; " errs));
  let pt outs f = List.map (fun o -> (o.queue_cells, f o)) outs in
  {
    Report.title =
      Printf.sprintf
        "congestion: %d windowed senders incast one switch port; \
         retransmitted bytes and completion vs queue capacity, ECN marking \
         off vs on (baseline: lossless 4096-cell queue)"
        senders;
    xlabel = "output queue capacity (cells)";
    ylabel = "bytes / ms / ratio (see series)";
    series =
      [
        {
          Report.label = "retransmitted bytes (marking off)";
          points = pt plain (fun o -> float_of_int o.retransmit_bytes);
        };
        {
          Report.label = "retransmitted bytes (marking on)";
          points = pt marked (fun o -> float_of_int o.retransmit_bytes);
        };
        {
          Report.label = "completion ms (marking off)";
          points =
            pt plain (fun o ->
                match o.completion with
                | Some t -> Time.to_float_us t /. 1000.
                | None -> Float.nan);
        };
        {
          Report.label = "completion ms (marking on)";
          points =
            pt marked (fun o ->
                match o.completion with
                | Some t -> Time.to_float_us t /. 1000.
                | None -> Float.nan);
        };
        {
          Report.label = "goodput ratio vs lossless (marking on)";
          points = pt marked (goodput_ratio ~baseline);
        };
        {
          Report.label = "switch cell drops (marking on)";
          points = pt marked (fun o -> float_of_int o.switch_dropped);
        };
        {
          Report.label = "retransmitted bytes (64 senders, marking on)";
          points = [ (wide.queue_cells, float_of_int wide.retransmit_bytes) ];
        };
        {
          Report.label = "completion ms (64 senders, marking on)";
          points =
            [
              ( wide.queue_cells,
                match wide.completion with
                | Some t -> Time.to_float_us t /. 1000.
                | None -> Float.nan );
            ];
        };
      ];
    paper_note =
      "testbed extension, not a paper figure: the adaptor's reassembly \
       machinery turns any cell drop into a whole-PDU loss (2.6), so an \
       unmarked shallow queue makes the transport resend multiples of the \
       offered bytes — the incast cliff. Threshold marking carried in the \
       cell header (EFCI-style), surfaced by the SAR and echoed in acks \
       lets senders back off before overflow: goodput stays within 10% of \
       the provisioned-lossless baseline at every capacity and the wasted \
       bytes fall monotonically with queue depth.";
  }

(* ------------------------------------------------------------------ *)
(* Seeded fault soak: every seed derives a random host-link plan plus a
   port-flap storm and (harmless on a star) a trunk-loss burst, and the
   acceptance bar is byte-exact delivery on every stream with bounded
   retransmission work and zero invariant violations. *)

let soak_plan ~seed ~horizon ~port =
  let base = Plan.random ~seed ~horizon () in
  let rng = Rng.create ~seed:(seed lxor 0x0f1a_9001) in
  let from = horizon / 10 * (1 + Rng.int rng 4) in
  let len = horizon / 10 * (1 + Rng.int rng 3) in
  let w = { Plan.w_from = from; w_until = min (from + len) (horizon * 9 / 10) } in
  let hp = Time.us (50 + Rng.int rng 400) in
  {
    base with
    Plan.port_flap = [ (port, w, hp) ];
    trunk_loss =
      [ { Plan.b_from = w.Plan.w_from; b_until = w.Plan.w_until; prob = 0.001 } ];
  }

let soak ?(seeds = 8) ?(senders = 3) ?(bytes_per_sender = 8 * 1024) () =
  List.init seeds (fun i ->
      let seed = 40 + i in
      let horizon = Time.ms 40 in
      (* The flap targets the receiver's output port — every stream's
         bottleneck — so each seed exercises stall + recovery. *)
      let plan = soak_plan ~seed ~horizon ~port:0 in
      let o =
        run ~senders ~queue_cells:96 ~marking:true ~bytes_per_sender ~seed
          ~plan
          ~config:
            {
              transport_config with
              Sender.max_retries = 20;
              rto_max = Time.ms 30;
            }
          ~cap:(Time.s 8) ()
      in
      (seed, o))

let soak_violations results =
  List.concat_map
    (fun (seed, o) ->
      let tag = Printf.sprintf "soak seed %d" seed in
      List.map (fun v -> tag ^ ": " ^ v) o.violations
      @ (if o.finished <> o.senders then
           [
             Printf.sprintf "%s: %d of %d streams finished (%d failed)" tag
               o.finished o.senders o.failed;
           ]
         else [])
      @
      if o.retransmit_bytes > 2 * o.offered_bytes then
        [
          Printf.sprintf "%s: unbounded retransmission (%d B for %d offered)"
            tag o.retransmit_bytes o.offered_bytes;
        ]
      else [])
    results
