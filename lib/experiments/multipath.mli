(** Multipath sweep: the reliable transport sprayed across a generated
    fat-tree's equal-cost paths.

    An 8-pod fat-tree (32 hosts, 80 switches, 16 equal-cost inter-pod
    paths) carries a full permutation and an inter-pod incast under
    three path-selection policies — pinned single path, static-hash
    ECMP (one hash-chosen path per connection) and REPS adaptive
    spraying ({!Osiris_lb.Reps}) — plus a failure run that cuts one
    aggregation-to-core trunk mid-transfer and measures how fast the
    spray abandons it. Every run audits cell and mark conservation on
    {e every} switch in the fabric, byte-exact delivery on every
    stream, and the transport/balancer invariants. *)

type workload =
  | Permutation
  | Incast of int  (** that many senders into host 0 *)
  | Single_flow
      (** one saturated inter-pod flow — the reroute-latency probe *)

type outcome = {
  mode : Osiris_lb.Spray.mode;
  workload : workload;
  nconns : int;
  offered_bytes : int;
  delivered_bytes : int;
  byte_exact : bool;
  finished : int;
  failed : int;
  completion : Osiris_sim.Time.t option;
      (** last Finished instant; [None] if any stream didn't finish *)
  fct_p99 : Osiris_sim.Time.t;  (** 99th-percentile flow completion *)
  goodput_mbps : float;
  retransmits : int;
  timeouts : int;
  recycled_picks : int;  (** REPS picks served from recycled entropy *)
  switch_dropped : int;  (** summed over every switch in the fabric *)
  reroute : Osiris_sim.Time.t option;
      (** failure runs: the latest hand-off to a path crossing the dead
          trunk, counted from the cut instant *)
  violations : string list;
}

val transport_config : Osiris_transport.Sender.config
(** The congestion sweep's short-segment tuning at OC-3 round-trips,
    with the fast-retransmit threshold raised above the equal-cost
    queue differential (spraying reorders across paths by design). *)

val run :
  ?k:int ->
  ?mode:Osiris_lb.Spray.mode ->
  ?workload:workload ->
  ?bytes_per_flow:int ->
  ?queue_cells:int ->
  ?seed:int ->
  ?config:Osiris_transport.Sender.config ->
  ?fail_at:Osiris_sim.Time.t ->
  ?cap:Osiris_sim.Time.t ->
  unit ->
  outcome
(** One transfer over a freshly generated [k]-ary fat-tree (default 8,
    one host per edge switch). [fail_at] arms a topology injector that
    cuts one pod-0 aggregation-to-core trunk — chosen in a core group
    that path 0 (and therefore every ack VC) never crosses — from that
    instant to the end of the run. *)

val pp_outcome : Format.formatter -> outcome -> unit

val reroute_budget : Osiris_sim.Time.t
(** 100 us simulated: the bound the failure run must beat. *)

val figure : ?bytes_per_flow:int -> unit -> Report.figure
(** The BENCH figure: goodput and p99 FCT per policy under both
    workloads, plus the trunk-cut reroute latency and goodput retention.
    Raises [Failure] if any run breaks an invariant or misses a bar:
    every stream byte-exact and finished, REPS p99 strictly better than
    static-hash ECMP on the permutation, reroute within
    {!reroute_budget}, and at least 90% of failure-free goodput under
    the cut. *)
