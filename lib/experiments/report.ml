type series = { label : string; points : (int * float) list }

type figure = {
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  paper_note : string;
}

type table = {
  t_title : string;
  header : string list;
  rows : string list list;
  t_paper_note : string;
}

let hr = String.make 72 '-'

let print_figure f =
  Printf.printf "\n%s\n%s\n%s\n" hr f.title hr;
  Printf.printf "%-10s" f.xlabel;
  List.iter (fun s -> Printf.printf "%16s" s.label) f.series;
  Printf.printf "   (%s)\n" f.ylabel;
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.points) f.series)
  in
  List.iter
    (fun x ->
      Printf.printf "%-10s"
        (if x >= 1024 && x mod 1024 = 0 then
           Printf.sprintf "%dKB" (x / 1024)
         else Printf.sprintf "%dB" x);
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some y -> Printf.printf "%16.1f" y
          | None -> Printf.printf "%16s" "-")
        f.series;
      print_newline ())
    xs;
  Printf.printf "paper: %s\n" f.paper_note

let print_table t =
  Printf.printf "\n%s\n%s\n%s\n" hr t.t_title hr;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) t.rows)
      t.header
  in
  let print_row cells =
    List.iteri
      (fun i c -> Printf.printf "%-*s  " (List.nth widths i) c)
      cells;
    print_newline ()
  in
  print_row t.header;
  List.iter print_row t.rows;
  Printf.printf "paper: %s\n" t.t_paper_note

(* ------------------------------------------------------------------ *)
(* Machine-readable rendering (BENCH.json).                            *)

module Json = Osiris_obs.Json

let table_json t =
  Json.Assoc
    [
      ("kind", Json.String "table");
      ("title", Json.String t.t_title);
      ("header", Json.List (List.map (fun h -> Json.String h) t.header));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun c -> Json.String c) row))
             t.rows) );
      ("paper_note", Json.String t.t_paper_note);
    ]

let series_json s =
  Json.Assoc
    [
      ("label", Json.String s.label);
      ( "points",
        Json.List
          (List.map
             (fun (x, y) ->
               Json.Assoc [ ("x", Json.Int x); ("y", Json.Float y) ])
             s.points) );
    ]

let figure_json f =
  Json.Assoc
    [
      ("kind", Json.String "figure");
      ("title", Json.String f.title);
      ("xlabel", Json.String f.xlabel);
      ("ylabel", Json.String f.ylabel);
      ("series", Json.List (List.map series_json f.series));
      ("paper_note", Json.String f.paper_note);
    ]

let schema = "osiris-bench/8"

let bench_json ~mode ~experiments ~micro =
  Json.Assoc
    [
      ("schema", Json.String schema);
      ("mode", Json.String mode);
      ( "experiments",
        Json.List
          (List.map
             (fun (id, description, result) ->
               Json.Assoc
                 [
                   ("id", Json.String id);
                   ("description", Json.String description);
                   ("result", result);
                 ])
             experiments) );
      ( "micro",
        Json.List
          (List.map
             (fun (name, ns) ->
               Json.Assoc
                 [
                   ("name", Json.String name);
                   ( "ns_per_run",
                     match ns with Some v -> Json.Float v | None -> Json.Null
                   );
                 ])
             micro) );
      ("metrics", Osiris_obs.Metrics.to_json ());
    ]

let mbps ~bytes_count ~ns =
  if ns <= 0 then 0.0 else float_of_int bytes_count *. 8.0 *. 1e3 /. float_of_int ns

let sizes_1k_to_256k =
  List.map (fun k -> k * 1024) [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
