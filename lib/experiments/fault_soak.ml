open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Invariants = Osiris_core.Invariants
module Board = Osiris_board.Board
module Atm_link = Osiris_link.Atm_link
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Plan = Osiris_fault.Plan
module Injector = Osiris_fault.Injector

let raw_vci = 9

type outcome = {
  seed : int;
  plan : string;
  sent : int;
  delivered : int;
  corrupted_delivered : int;
  goodput_mbps : float;
  timeout_aborts : int;
  board_timeouts : int;
  restripe_aborts : int;
  duplicated_cells : int;
  residual_reassemblies : int;
  violations : string list;
}

(* Every payload byte is a pure function of (message index, offset), with
   the index itself carried in the first two bytes — so a delivered PDU
   can be checked byte-for-byte against exactly what was sent without
   keeping the sent copies around. *)
let pattern_byte ~msg ~off =
  if off = 0 then msg land 0xff
  else if off = 1 then (msg lsr 8) land 0xff
  else ((msg * 131) + (off * 7) + 23) land 0xff

let fill_pattern ~msg ~len =
  Bytes.init len (fun off -> Char.chr (pattern_byte ~msg ~off))

let intact ~msg data =
  let ok = ref true in
  Bytes.iteri
    (fun off c -> if Char.code c <> pattern_byte ~msg ~off then ok := false)
    data;
  !ok

let run ?(machine = Machine.ds5000_200) ?(seed = 1) ?(msgs = 60)
    ?(msg_size = 8192) ?(horizon = Time.ms 20) ?(grace = Time.ms 10) ?plan ()
    =
  let eng = Engine.create () in
  let board =
    {
      Board.default_config with
      Board.reassembly_timeout = Time.ms 2;
      irq_reassert = Time.us 500;
    }
  in
  let cfg = { Host.default_config with Host.board; seed = 1000 + seed } in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b =
    Host.create eng machine ~addr:0x0a000002l { cfg with seed = 2000 + seed }
  in
  let net = Network.connect eng ~seed:(3000 + seed) a b in
  let plan =
    match plan with
    | Some p -> p
    | None -> (
        match Plan.of_env () with
        | Some p -> p
        | None ->
            Plan.random
              ~nlinks:(Atm_link.config net.Network.a_to_b).Atm_link.nlinks
              ~seed ~horizon ())
  in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let delivered = ref 0 and corrupted = ref 0 and bytes_ok = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"soak-sink" (fun ~vci:_ m ->
      let data = Msg.read_all m in
      let len = Bytes.length data in
      incr delivered;
      if len = msg_size && len >= 2 then begin
        let msg =
          Char.code (Bytes.get data 0)
          lor (Char.code (Bytes.get data 1) lsl 8)
        in
        if intact ~msg data then bytes_ok := !bytes_ok + len
        else incr corrupted
      end
      else incr corrupted;
      Msg.dispose m);
  (* Spread the sends over 70% of the horizon so every fault window sees
     traffic, leaving the tail for recovery timers to drain. *)
  let gap = max 1 (horizon * 7 / 10 / max 1 msgs) in
  Process.spawn eng ~name:"soak-tx" (fun () ->
      for i = 0 to msgs - 1 do
        let m = Msg.alloc a.Host.vs ~len:msg_size () in
        Msg.blit_into m ~off:0 ~src:(fill_pattern ~msg:i ~len:msg_size);
        Driver.send a.Host.driver ~vci:raw_vci m;
        Process.sleep eng gap
      done);
  let inj =
    Injector.inject eng ~plan ~link:net.Network.a_to_b ~board:b.Host.board ()
  in
  Engine.run ~until:horizon eng;
  Injector.disarm inj;
  Engine.run ~until:(horizon + grace) eng;
  let dstats = Driver.stats b.Host.driver in
  let bstats = Board.stats b.Host.board in
  let lstats = Atm_link.stats net.Network.a_to_b in
  {
    seed;
    plan = Plan.to_string plan;
    sent = msgs;
    delivered = !delivered;
    corrupted_delivered = !corrupted;
    goodput_mbps =
      Report.mbps ~bytes_count:!bytes_ok ~ns:(max 1 (Engine.now eng));
    timeout_aborts = dstats.Driver.timeout_aborts;
    board_timeouts = bstats.Board.reassembly_timeouts;
    restripe_aborts = bstats.Board.restripe_aborts;
    duplicated_cells = lstats.Atm_link.duplicated;
    residual_reassemblies = Board.reassemblies_in_progress b.Host.board;
    violations =
      Invariants.balance ~what:"link cell conservation"
        ~total:(Atm_link.offered net.Network.a_to_b)
        ~parts:(Atm_link.conservation net.Network.a_to_b)
      @ Invariants.check ~quiescent:true ~board:b.Host.board
          ~driver:b.Host.driver ();
  }

let pp_outcome fmt o =
  Format.fprintf fmt
    "seed %d: %d/%d delivered (%d corrupt), %.1f Mb/s, %d drv timeout \
     aborts, %d board timeouts, %d restripe aborts, %d dup cells, %d \
     residual, %d violations [%s]"
    o.seed o.delivered o.sent o.corrupted_delivered o.goodput_mbps
    o.timeout_aborts o.board_timeouts o.restripe_aborts o.duplicated_cells
    o.residual_reassemblies
    (List.length o.violations)
    o.plan

(* ------------------------------------------------------------------ *)
(* Goodput vs drop probability: a single whole-run drop burst per point,
   recovery timers on. *)

let sweep_probs = [ 0.0; 0.0005; 0.001; 0.002; 0.004; 0.008 ]

let figure_goodput_vs_drop () =
  (* Sends are spaced wider than one PDU's wire time (~300 µs at 8 KB)
     so PDUs stay discrete; even so, a CRC reject swallows the rest of
     the offending train on that VC, which correlates failures — hence
     each point averages a few traffic seeds to tame the variance. *)
  let horizon = Time.ms 60 in
  let seeds = [ 7; 8; 9 ] in
  let points =
    List.map
      (fun prob ->
        let plan seed =
          {
            Plan.none with
            Plan.seed;
            drop = [ { Plan.b_from = 0; b_until = horizon; prob } ];
          }
        in
        let goodputs =
          List.map
            (fun seed ->
              (run ~seed ~plan:(plan seed) ~msgs:80 ~horizon ()).goodput_mbps)
            seeds
        in
        let mean =
          List.fold_left ( +. ) 0.0 goodputs
          /. float_of_int (List.length seeds)
        in
        (int_of_float ((prob *. 10_000.) +. 0.5), mean))
      sweep_probs
  in
  {
    Report.title =
      "goodput vs per-cell drop probability (8 KB raw PDUs, reassembly \
       timeout + interrupt re-assert enabled)";
    xlabel = "per-cell drop probability (x 1e-4)";
    ylabel = "delivered goodput (Mb/s)";
    series = [ { Report.label = "byte-verified goodput"; points } ];
    paper_note =
      "robustness extension, not a paper figure: the AAL5-style CRC \
       discards every damaged PDU, so goodput decays roughly as \
       (1-p)^cells_per_pdu while everything delivered stays byte-exact";
  }
