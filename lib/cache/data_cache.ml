open Osiris_sim
module Phys_mem = Osiris_mem.Phys_mem
module Tc = Osiris_bus.Turbochannel
module Metrics = Osiris_obs.Metrics

type coherence = Software | Hardware_update

type config = {
  size : int;
  line_size : int;
  coherence : coherence;
  cpu_hz : int;
  hit_cycles_per_word : int;
  fill_overhead_cycles : int;
  invalidate_cycles_per_word : int;
}

type line = { mutable tag : int; mutable valid : bool; data : Bytes.t }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidated_lines : int;
  mutable stale_overlaps : int;
  mutable stale_reads : int;
}

(* Registry handles behind [stats]; [stats t] snapshots them. *)
type m = {
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_invalidated_lines : Metrics.counter;
  m_stale_overlaps : Metrics.counter;
  m_stale_reads : Metrics.counter;
}

type t = {
  eng : Engine.t;
  mem : Phys_mem.t;
  bus : Tc.t;
  cfg : config;
  lines : line array;
  nlines : int;
  mutable pressure_cursor : int;
  m : m;
}

let create eng ~mem ~bus cfg =
  if cfg.size <= 0 || cfg.line_size <= 0 || cfg.size mod cfg.line_size <> 0
  then invalid_arg "Data_cache.create: size must be a multiple of line_size";
  let nlines = cfg.size / cfg.line_size in
  {
    eng;
    mem;
    bus;
    cfg;
    nlines;
    pressure_cursor = 0;
    lines =
      Array.init nlines (fun _ ->
          { tag = -1; valid = false; data = Bytes.create cfg.line_size });
    m =
      {
        m_hits = Metrics.counter "cache.hits";
        m_misses = Metrics.counter "cache.misses";
        m_invalidated_lines = Metrics.counter "cache.invalidated_lines";
        m_stale_overlaps = Metrics.counter "cache.stale_overlaps";
        m_stale_reads = Metrics.counter "cache.stale_reads";
      };
  }

let config t = t.cfg

let cpu_cycles_ns t cycles =
  (* Round up so a nonzero cost never vanishes. *)
  ((cycles * 1_000_000_000) + t.cfg.cpu_hz - 1) / t.cfg.cpu_hz

let line_index t addr = addr / t.cfg.line_size mod t.nlines
let line_tag addr line_size = addr / line_size
let line_base tag line_size = tag * line_size

(* Ensure the line containing [addr] is resident; charge fill cost on miss
   and hit cost for consuming [words_used] words. *)
let touch_line t addr ~words_used =
  let tag = line_tag addr t.cfg.line_size in
  let line = t.lines.(line_index t addr) in
  if line.valid && line.tag = tag then Metrics.incr t.m.m_hits
  else begin
    Metrics.incr t.m.m_misses;
    (* Fill from main memory across the bus (contends on a shared bus). *)
    Tc.cpu_access t.bus ~bytes:t.cfg.line_size
      ~overhead_cycles:t.cfg.fill_overhead_cycles;
    Phys_mem.blit_to_bytes t.mem
      ~src:(line_base tag t.cfg.line_size)
      ~dst:line.data ~dst_off:0 ~len:t.cfg.line_size;
    line.tag <- tag;
    line.valid <- true
  end;
  Process.sleep t.eng
    (cpu_cycles_ns t (words_used * t.cfg.hit_cycles_per_word));
  line

let read_into t ~addr ~len ~dst ~dst_off =
  if len < 0 then invalid_arg "Data_cache.read_into: negative length";
  let pos = ref addr and out = ref dst_off and remaining = ref len in
  while !remaining > 0 do
    let in_line = t.cfg.line_size - (!pos mod t.cfg.line_size) in
    let chunk = min !remaining in_line in
    let words = (chunk + 3) / 4 in
    let line = touch_line t !pos ~words_used:words in
    Bytes.blit line.data (!pos mod t.cfg.line_size) dst !out chunk;
    pos := !pos + chunk;
    out := !out + chunk;
    remaining := !remaining - chunk
  done;
  (* Stale-read detection (model bookkeeping, not charged time). *)
  let truth = Phys_mem.bytes_of_region t.mem ~addr ~len in
  if not (Bytes.equal truth (Bytes.sub dst dst_off len)) then
    Metrics.incr t.m.m_stale_reads

let read t ~addr ~len =
  let out = Bytes.create len in
  read_into t ~addr ~len ~dst:out ~dst_off:0;
  out

let write t ~addr ~src =
  let len = Bytes.length src in
  (* Write-through: memory is updated and resident lines refreshed. *)
  Phys_mem.blit_from_bytes t.mem ~src ~src_off:0 ~dst:addr ~len;
  let pos = ref addr and off = ref 0 and remaining = ref len in
  while !remaining > 0 do
    let in_line = t.cfg.line_size - (!pos mod t.cfg.line_size) in
    let chunk = min !remaining in_line in
    let tag = line_tag !pos t.cfg.line_size in
    let line = t.lines.(line_index t !pos) in
    if line.valid && line.tag = tag then
      Bytes.blit src !off line.data (!pos mod t.cfg.line_size) chunk;
    pos := !pos + chunk;
    off := !off + chunk;
    remaining := !remaining - chunk
  done;
  (* Write-through bus traffic: one word-sized write per word, amortized by
     the write buffer into a burst. *)
  Tc.cpu_access t.bus ~bytes:len ~overhead_cycles:1

let iter_lines t ~addr ~len f =
  if len > 0 then begin
    let first = line_tag addr t.cfg.line_size in
    let last = line_tag (addr + len - 1) t.cfg.line_size in
    for tag = first to last do
      f tag t.lines.(line_index t (line_base tag t.cfg.line_size))
    done
  end

let invalidate t ~addr ~len =
  let words = (len + 3) / 4 in
  Process.sleep t.eng
    (cpu_cycles_ns t (words * t.cfg.invalidate_cycles_per_word));
  iter_lines t ~addr ~len (fun tag line ->
      if line.valid && line.tag = tag then begin
        line.valid <- false;
        Metrics.incr t.m.m_invalidated_lines
      end)

let invalidate_all t =
  Array.iter
    (fun line ->
      if line.valid then begin
        line.valid <- false;
        Metrics.incr t.m.m_invalidated_lines
      end)
    t.lines

let pressure t ~lines =
  for _ = 1 to lines do
    let line = t.lines.(t.pressure_cursor) in
    line.valid <- false;
    t.pressure_cursor <- (t.pressure_cursor + 1) mod t.nlines
  done

let dma_wrote t ~addr ~len =
  iter_lines t ~addr ~len (fun tag line ->
      match t.cfg.coherence with
      | Hardware_update ->
          (* The 3000/600's second-level cache is updated (and, as modelled
             here, allocated) by DMA writes, so arriving network data can
             be read back at cache speed (paper §2.7/§4). *)
          Phys_mem.blit_to_bytes t.mem
            ~src:(line_base tag t.cfg.line_size)
            ~dst:line.data ~dst_off:0 ~len:t.cfg.line_size;
          line.tag <- tag;
          line.valid <- true
      | Software ->
          if line.valid && line.tag = tag then
            Metrics.incr t.m.m_stale_overlaps)

let resident t ~addr =
  let line = t.lines.(line_index t addr) in
  line.valid && line.tag = line_tag addr t.cfg.line_size

let stats t : stats =
  {
    hits = Metrics.counter_value t.m.m_hits;
    misses = Metrics.counter_value t.m.m_misses;
    invalidated_lines = Metrics.counter_value t.m.m_invalidated_lines;
    stale_overlaps = Metrics.counter_value t.m.m_stale_overlaps;
    stale_reads = Metrics.counter_value t.m.m_stale_reads;
  }
