module Crc32 = Osiris_util.Crc32
module Metrics = Osiris_obs.Metrics

type strategy = In_order | Seq_number | Per_link of int

let pp_strategy fmt = function
  | In_order -> Format.pp_print_string fmt "in-order"
  | Seq_number -> Format.pp_print_string fmt "seq-number"
  | Per_link n -> Format.fprintf fmt "per-link(%d)" n

let trailer_size = 8

let framed_len n =
  let needed = n + trailer_size in
  (needed + Cell.data_size - 1) / Cell.data_size * Cell.data_size

let cells_per_pdu n = framed_len n / Cell.data_size

let frame pdu =
  let n = Bytes.length pdu in
  let total = framed_len n in
  let out = Bytes.make total '\000' in
  Bytes.blit pdu 0 out 0 n;
  Bytes.set_int32_be out (total - 8) (Int32.of_int n);
  let crc = Crc32.compute out ~off:0 ~len:(total - 4) in
  Bytes.set_int32_be out (total - 4) crc;
  out

let check_framed framed =
  let total = Bytes.length framed in
  if total < trailer_size || total mod Cell.data_size <> 0 then
    Error "deframe: bad framed length"
  else begin
    let crc_stored = Bytes.get_int32_be framed (total - 4) in
    let crc = Crc32.compute framed ~off:0 ~len:(total - 4) in
    if crc <> crc_stored then Error "deframe: CRC mismatch"
    else begin
      let n = Int32.to_int (Bytes.get_int32_be framed (total - 8)) in
      if n < 0 || framed_len n <> total then Error "deframe: bad length field"
      else Ok n
    end
  end

let deframe_check = check_framed

let deframe framed =
  match check_framed framed with
  | Error _ as e -> e
  | Ok n -> Ok (Bytes.sub framed 0 n)

let segment ~vci ~nlinks pdu =
  if nlinks < 1 then invalid_arg "Sar.segment: nlinks must be >= 1";
  let framed = frame pdu in
  let ncells = Bytes.length framed / Cell.data_size in
  List.init ncells (fun k ->
      (* The framing (eom) bit marks the last cell of each per-link
         sub-stream: cell k is last on its link iff no later cell maps to
         the same link. *)
      let eom = k + nlinks >= ncells in
      let last_of_pdu = k = ncells - 1 in
      Cell.make ~vci ~seq:k ~eom ~last_of_pdu
        (Bytes.sub framed (k * Cell.data_size) Cell.data_size))

type placement = { offset : int; cell : Cell.t }

type outcome =
  | Placed of placement
  | Completed of placement * int
  | Rejected of string

type t = {
  strategy : strategy;
  max_cells : int;
  mutable received : int;
  mutable total_cells : int; (* -1 until known *)
  mutable next_offset : int; (* In_order *)
  seen : (int, unit) Hashtbl.t; (* Seq_number: seqs received *)
  mutable link_counts : int array; (* Per_link: arrivals per link *)
  mutable link_eom : bool array; (* Per_link: framing bit seen per link *)
  mutable saw_marked : bool; (* any cell of the current PDU carried the
                                congestion bit *)
}

let create strategy ~max_cells =
  if max_cells <= 0 then invalid_arg "Sar.create: max_cells must be positive";
  (match strategy with
  | Per_link n when n < 1 -> invalid_arg "Sar.create: Per_link needs >= 1 link"
  | _ -> ());
  let nlinks = match strategy with Per_link n -> n | _ -> 1 in
  {
    strategy;
    max_cells;
    received = 0;
    total_cells = -1;
    next_offset = 0;
    seen = Hashtbl.create 64;
    link_counts = Array.make nlinks 0;
    link_eom = Array.make nlinks false;
    saw_marked = false;
  }

let cells_received t = t.received

let marked_seen t = t.saw_marked

let in_progress t = t.received > 0

let all_links_finished t =
  match t.strategy with
  | Per_link _ -> Array.for_all (fun b -> b) t.link_eom
  | In_order | Seq_number -> false

let link_finished t ~link =
  match t.strategy with
  | Per_link _ ->
      link >= 0 && link < Array.length t.link_eom && t.link_eom.(link)
  | In_order | Seq_number -> false

let reset t =
  t.received <- 0;
  t.total_cells <- -1;
  t.next_offset <- 0;
  Hashtbl.reset t.seen;
  Array.fill t.link_counts 0 (Array.length t.link_counts) 0;
  Array.fill t.link_eom 0 (Array.length t.link_eom) false;
  t.saw_marked <- false

(* Outcome boxing is concentrated in these three constructors: every
   push returns one freshly boxed outcome (placement record plus its
   variant), which is the reassembly API's unit of work per cell.
   ROADMAP lists arena-allocated placements as the known headroom; until
   then these are the only certified allocations on the push path. *)
let placed ~offset cell =
  (Placed { offset; cell }
  [@osiris.alloc_ok
    "one boxed placement per pushed cell is the reassembly API's \
     contract; arena-allocated placements are tracked ROADMAP headroom"])

let rejected msg =
  (Rejected msg
  [@osiris.alloc_ok
    "rejects happen only for faulted or overflowing cells and carry a \
     static reason string; only the constructor box allocates"])

let completed t ~offset cell =
  (Completed ({ offset; cell }, t.total_cells * Cell.data_size)
  [@osiris.alloc_ok
    "completion fires once per PDU, not per cell; boxes the final \
     placement and the byte count"])

let push_in_order t (cell : Cell.t) =
  if t.received >= t.max_cells then rejected "reassembly overflow"
  else begin
    let offset = t.next_offset in
    t.next_offset <- t.next_offset + Cell.data_size;
    t.received <- t.received + 1;
    if cell.Cell.last_of_pdu || cell.Cell.eom then begin
      t.total_cells <- t.received;
      completed t ~offset cell
    end
    else placed ~offset cell
  end

let push_seq t (cell : Cell.t) =
  let seq = cell.Cell.seq in
  if seq >= t.max_cells then rejected "sequence number out of window"
  else if Hashtbl.mem t.seen seq then rejected "duplicate sequence number"
  else begin
    (Hashtbl.replace t.seen seq ()
    [@osiris.alloc_ok
      "dedup table grows one bucket per distinct sequence number and is \
       recycled at PDU reset"]);
    t.received <- t.received + 1;
    if cell.Cell.last_of_pdu then t.total_cells <- seq + 1;
    let offset = seq * Cell.data_size in
    if t.total_cells >= 0 && t.received = t.total_cells then
      completed t ~offset cell
    else if t.total_cells >= 0 && t.received > t.total_cells then
      rejected "more cells than the PDU length allows"
    else placed ~offset cell
  end

(* True when links [l..n-1] have all shown their framing bit. Top level
   so the completion test allocates no closure. *)
let rec links_framed t l n = l >= n || (t.link_eom.(l) && links_framed t (l + 1) n)

let push_per_link t ~link (cell : Cell.t) =
  let nlinks = Array.length t.link_counts in
  if link < 0 || link >= nlinks then rejected "unknown physical link"
  else if t.received >= t.max_cells then rejected "reassembly overflow"
  else begin
    let arrival = t.link_counts.(link) in
    let k = (arrival * nlinks) + link in
    (if k <> cell.Cell.seq && Sys.getenv_opt "OSIRIS_SARDEBUG" <> None then
       Printf.eprintf
         "sar: misplaced seq=%d at k=%d (link=%d recv=%d total=%d)\n%!"
         cell.Cell.seq k link t.received t.total_cells)
    [@osiris.alloc_ok
      "opt-in misplacement diagnostics behind an environment probe; \
       never taken in benchmark runs"];
    t.link_counts.(link) <- arrival + 1;
    t.received <- t.received + 1;
    if cell.Cell.eom then t.link_eom.(link) <- true;
    if cell.Cell.last_of_pdu then t.total_cells <- k + 1;
    let offset = k * Cell.data_size in
    (* Complete when the total is known, every cell has arrived, and every
       link that carries cells of this PDU has shown its framing bit. *)
    if t.total_cells >= 0 && t.received >= t.total_cells then begin
      let links_used = min nlinks t.total_cells in
      if t.received > t.total_cells then
        rejected "more cells than the PDU length allows"
      else if links_framed t 0 links_used then completed t ~offset cell
      else placed ~offset cell
    end
    else placed ~offset cell
  end

(* Reassembly is per-VC, with many short-lived instances; account at the
   module level rather than per instance. *)
let m_cells_pushed = Metrics.counter "sar.cells_pushed"
let m_pdus_completed = Metrics.counter "sar.pdus_completed"
let m_rejects = Metrics.counter "sar.rejects"

let push t ~link cell =
  Metrics.incr m_cells_pushed;
  if cell.Cell.marked then t.saw_marked <- true;
  let outcome =
    match t.strategy with
    | In_order -> push_in_order t cell
    | Seq_number -> push_seq t cell
    | Per_link _ -> push_per_link t ~link cell
  in
  (match outcome with
  | Completed _ -> Metrics.incr m_pdus_completed
  | Rejected _ -> Metrics.incr m_rejects
  | Placed _ -> ());
  outcome
