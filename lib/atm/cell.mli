(** ATM cells as the OSIRIS adaptor sees them.

    A cell is 53 bytes on the wire: a 5-byte ATM header and a 48-byte
    payload of which the adaptation layer (AAL) claims 4 bytes, leaving
    {!data_size} = 44 bytes of user data per cell — the paper's "44 bytes,
    because of AAL overhead".

    The AAL header carries the per-cell sequence number used by the
    sequence-number reassembly strategy of §2.6 and the per-stream framing
    (end-of-message) bit used by the AAL5-style strategies. The ATM header
    carries the VCI — the early-demultiplexing key — and the extra
    "very last cell of the PDU" framing bit that §2.6 proposes for striped
    PDUs shorter than the stripe width. *)

type t = {
  vci : int;  (** virtual circuit identifier, 16 bits *)
  seq : int;  (** AAL sequence number: index of this cell within its PDU *)
  eom : bool;  (** AAL framing bit: last cell of its (per-link) stream *)
  last_of_pdu : bool;  (** ATM-header framing bit: very last cell of the PDU *)
  marked : bool;
      (** ATM-header congestion bit (the EFCI/ECN-CE analogue): set by a
          switch that enqueues the cell into a deep output queue, carried
          through reassembly to the receiving host so its transport can
          echo congestion back to the sender *)
  data : Bytes.t;  (** exactly {!data_size} bytes of user data *)
}

val wire_size : int
(** 53. *)

val header_size : int
(** 5. *)

val payload_size : int
(** 48. *)

val aal_overhead : int
(** 4. *)

val data_size : int
(** 44 = [payload_size - aal_overhead]. *)

val make :
  vci:int ->
  seq:int ->
  eom:bool ->
  last_of_pdu:bool ->
  ?marked:bool ->
  Bytes.t ->
  t
(** Build a cell; the data must be exactly {!data_size} bytes and the vci
    and seq must fit 16 bits. [marked] (default [false]) is the congestion
    bit — hosts never set it at origin; switches do. *)

val serialize : t -> Bytes.t
(** 53-byte wire image, including the header check byte. *)

val parse : Bytes.t -> (t, string) result
(** Parse a 53-byte wire image; fails on bad length or check byte. *)

val corrupt : t -> byte:int -> t
(** Copy of the cell with one data byte XORed with [0x5a] — the link-error
    injection primitive. [byte] is an index into [data]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
