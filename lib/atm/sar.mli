(** Segmentation and reassembly (the job of the OSIRIS i960 firmware).

    {2 Framing}

    A PDU is framed AAL5-style before segmentation: the payload is padded so
    that the total is a whole number of 44-byte cell datas, with the last 8
    bytes holding a trailer of [payload length (u32 BE)] and [CRC-32] over
    everything that precedes the CRC field. The CRC is the end-to-end error
    check that the lazy cache-invalidation scheme (paper §2.3) and the link
    error injection exercises rely on.

    {2 Reassembly strategies (paper §2.6)}

    - [In_order]: cells of a VC are assumed to arrive in order; each cell's
      data goes right after the previous one. Correct without striping;
      silently mis-places data when skewed (the CRC then catches it).
    - [Seq_number]: the AAL sequence number addresses each cell's data at
      [seq × 44]; tolerates arbitrary reordering within the 16-bit sequence
      space at the price of more per-cell work.
    - [Per_link n]: the strategy the authors implemented — view a PDU
      striped over [n] links as [n] interleaved sub-streams, each in order;
      a cell that is the [i]-th arrival of its PDU on link [l] carries data
      for offset [(i·n + l) × 44]. Completion is declared when every
      sub-stream has seen its framing bit (the ATM-header "very last cell"
      bit covers PDUs shorter than [n] cells). *)

type strategy = In_order | Seq_number | Per_link of int

val pp_strategy : Format.formatter -> strategy -> unit

(** {2 Segmentation} *)

val trailer_size : int
(** 8 bytes: length (u32) + CRC-32 (u32). *)

val framed_len : int -> int
(** [framed_len n] is the total framed size (payload + pad + trailer) of an
    [n]-byte PDU: the smallest multiple of 44 that fits [n + 8]. *)

val cells_per_pdu : int -> int
(** [framed_len n / 44]. *)

val frame : Bytes.t -> Bytes.t
(** Pad and append the trailer. *)

val deframe : Bytes.t -> (Bytes.t, string) result
(** Check length + CRC of a framed PDU and return the original payload.
    Errors on bad CRC (corrupted, mis-placed or stale data). *)

val deframe_check : Bytes.t -> (int, string) result
(** Like {!deframe} but returns just the payload length, avoiding the
    copy. *)

val segment : vci:int -> nlinks:int -> Bytes.t -> Cell.t list
(** Frame a PDU and cut it into cells. [nlinks] is the stripe width the
    cells will be sent over (1 = no striping): it determines which cells
    carry the per-stream framing bit. Cells are returned in transmission
    order with consecutive [seq] numbers; cell [k] belongs to link
    [k mod nlinks]. *)

(** {2 Reassembly} *)

type placement = {
  offset : int;  (** byte offset of this cell's data within the framed PDU *)
  cell : Cell.t;
}

type outcome =
  | Placed of placement  (** store the data; PDU not complete yet *)
  | Completed of placement * int
      (** store the data; the framed PDU is complete with the given total
          framed length *)
  | Rejected of string  (** drop the cell (overflow, duplicate, bad state) *)

type t
(** Reassembly state for one PDU of one VC. *)

val create : strategy -> max_cells:int -> t

val push : t -> link:int -> Cell.t -> outcome
(** Feed the next cell as received ([link] is the physical link it arrived
    on, used by [Per_link]). The caller is responsible for actually storing
    [placement.cell.data] at [placement.offset] (the receive processor turns
    this into a DMA command). *)

val cells_received : t -> int

val marked_seen : t -> bool
(** Has any cell of the current PDU carried the congestion (marked) bit?
    Latched by {!push} — including cells whose placement was rejected —
    and cleared by {!reset}. The receive processor copies it onto the
    PDU's final filled-buffer descriptor so the congestion signal
    survives reassembly. *)

val in_progress : t -> bool
(** Cells of a PDU have arrived but the PDU is not yet complete. *)

val all_links_finished : t -> bool
(** [Per_link] only: every sub-stream of the current PDU has shown its
    framing bit. If the PDU is still incomplete at that point, cells were
    lost and the reassembly can never finish. *)

val link_finished : t -> link:int -> bool
(** [Per_link] only: has this link's sub-stream of the current PDU shown
    its framing bit? A further cell on that link belongs to the {e next}
    PDU and must be held back until the current one completes. *)

val reset : t -> unit
(** Make the state ready for the next PDU of the same VC. *)
