type t = {
  vci : int;
  seq : int;
  eom : bool;
  last_of_pdu : bool;
  marked : bool;
  data : Bytes.t;
}

let wire_size = 53
let header_size = 5
let payload_size = 48
let aal_overhead = 4
let data_size = payload_size - aal_overhead

let make ~vci ~seq ~eom ~last_of_pdu ?(marked = false) data =
  if Bytes.length data <> data_size then
    invalid_arg "Cell.make: data must be exactly 44 bytes";
  if vci < 0 || vci > 0xffff then invalid_arg "Cell.make: vci out of range";
  if seq < 0 || seq > 0xffff then invalid_arg "Cell.make: seq out of range";
  { vci; seq; eom; last_of_pdu; marked; data }

let header_check b =
  (* XOR of the first four header bytes: a poor man's HEC, enough to catch
     single-byte header corruption in tests. *)
  Char.code (Bytes.get b 0)
  lxor Char.code (Bytes.get b 1)
  lxor Char.code (Bytes.get b 2)
  lxor Char.code (Bytes.get b 3)

let aal_check b off =
  Char.code (Bytes.get b off)
  lxor Char.code (Bytes.get b (off + 1))
  lxor Char.code (Bytes.get b (off + 2))

let serialize t =
  let b = Bytes.create wire_size in
  (* ATM header: vci (2B), PT flags, reserved, check. *)
  Bytes.set b 0 (Char.chr (t.vci lsr 8));
  Bytes.set b 1 (Char.chr (t.vci land 0xff));
  Bytes.set b 2
    (Char.chr
       ((if t.last_of_pdu then 1 else 0) lor if t.marked then 2 else 0));
  Bytes.set b 3 '\000';
  Bytes.set b 4 (Char.chr (header_check b));
  (* AAL header: seq (2B), flags, check. *)
  Bytes.set b 5 (Char.chr (t.seq lsr 8));
  Bytes.set b 6 (Char.chr (t.seq land 0xff));
  Bytes.set b 7 (Char.chr (if t.eom then 1 else 0));
  Bytes.set b 8 (Char.chr (aal_check b 5));
  Bytes.blit t.data 0 b 9 data_size;
  b

let parse b =
  if Bytes.length b <> wire_size then Error "cell: bad wire size"
  else if Char.code (Bytes.get b 4) <> header_check b then
    Error "cell: ATM header check failed"
  else if Char.code (Bytes.get b 8) <> aal_check b 5 then
    Error "cell: AAL header check failed"
  else begin
    let vci = (Char.code (Bytes.get b 0) lsl 8) lor Char.code (Bytes.get b 1) in
    let last_of_pdu = Char.code (Bytes.get b 2) land 1 = 1 in
    let marked = Char.code (Bytes.get b 2) land 2 = 2 in
    let seq = (Char.code (Bytes.get b 5) lsl 8) lor Char.code (Bytes.get b 6) in
    let eom = Char.code (Bytes.get b 7) land 1 = 1 in
    Ok { vci; seq; eom; last_of_pdu; marked; data = Bytes.sub b 9 data_size }
  end

let corrupt t ~byte =
  if byte < 0 || byte >= data_size then invalid_arg "Cell.corrupt: bad index";
  let data = Bytes.copy t.data in
  Bytes.set data byte (Char.chr (Char.code (Bytes.get data byte) lxor 0x5a));
  { t with data }

let pp fmt t =
  Format.fprintf fmt "cell(vci=%d seq=%d%s%s%s)" t.vci t.seq
    (if t.eom then " eom" else "")
    (if t.last_of_pdu then " last" else "")
    (if t.marked then " ce" else "")

let equal a b =
  a.vci = b.vci && a.seq = b.seq && a.eom = b.eom
  && a.last_of_pdu = b.last_of_pdu && a.marked = b.marked
  && Bytes.equal a.data b.data
