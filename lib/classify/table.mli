(** Open-addressed, bounded-probe classification table.

    The connection-dense demux structure: packed non-negative int keys
    (VCIs, or [(port lsl 16) lor vci] routing keys), values in a flat
    parallel array, power-of-two capacity, Robin-Hood linear probing
    with backward-shift deletion. {!find_slot} — the per-cell lookup —
    allocates nothing and probes at most [probe_bound] slots; inserts
    that would break that bound double the capacity instead, so the
    bound is structural.

    Lookup costs are recorded (count, probe sum, histogram) for the
    cycle-cost model in {!Cost}; an optional [Hashtbl] differential
    oracle mirrors every mutation and is audited by {!check}, the same
    pattern as [Binary_heap] backing the engine's timer wheel. *)

type 'a t

type probe_stats = {
  lookups : int;  (** {!find_slot} calls since the last reset *)
  probes : int;  (** total slots probed across those lookups *)
  max_probe : int;  (** structural worst case right now *)
  p99_probe : int;  (** 99th-percentile probes per lookup *)
}

val create : ?oracle:bool -> ?probe_bound:int -> dummy:'a -> int -> 'a t
(** A table sized for [n] entries (rounded up to a power of two, at
    least 8). [dummy] fills vacant value slots so removed values are
    not pinned. [probe_bound] (default 16, minimum 4) caps lookup
    probes. [oracle] (default false) maintains the [Hashtbl] mirror. *)

val length : 'a t -> int
val capacity : 'a t -> int
val probe_bound : 'a t -> int
val has_oracle : 'a t -> bool

val find_slot : 'a t -> int -> int
(** Slot index of the key, or [-1]. The hot path: allocation-free,
    at most [probe_bound] probes, recorded in the probe statistics. *)

val slot_value : 'a t -> int -> 'a
(** Value at a slot returned by {!find_slot}. Allocation-free. *)

val slot_key : 'a t -> int -> int

val mem : 'a t -> int -> bool
(** Membership without touching the probe statistics. *)

val find : 'a t -> int -> 'a option
(** Convenience lookup (allocates the option); statistics untouched. *)

val add : 'a t -> int -> 'a -> unit
(** Insert or replace. Raises [Invalid_argument] on a negative key
    (negative keys are the empty-slot encoding). May grow the table. *)

val remove : 'a t -> int -> unit
(** Backward-shift removal; no tombstones. Absent keys are ignored. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val probe_stats : 'a t -> probe_stats
val reset_probe_stats : 'a t -> unit

val resident_bytes : 'a t -> int
(** Analytic memory footprint of the table proper (slot arrays, record,
    histogram; 8-byte words) — the per-VC state-size axis of the
    demux_scale figure. *)

val check : 'a t -> string list
(** Structural invariants (count, displacements within bound, every
    present key reachable) plus, when the oracle is on, two-way
    equivalence with the mirror (values compared physically). Empty =
    clean. *)
