(* Per-machine-profile cost of a classification lookup.

   The table is far bigger than a 1990s L1 line budget, so the honest
   model charges every probe as one cache-line fill: the line-fill
   overhead plus one word read, at the machine's clock. The profiles are
   built by the experiments from [Machine.t] cache configs — this
   library stays below [Osiris_core] in the dependency order. *)

type profile = { p_name : string; p_access_ns : float }

let profile ~name ~access_ns = { p_name = name; p_access_ns = access_ns }

let of_cache ~name ~cpu_hz ~fill_overhead_cycles ~hit_cycles_per_word =
  if cpu_hz <= 0 then invalid_arg "Classify.Cost.of_cache: cpu_hz <= 0";
  let cycles = float_of_int (fill_overhead_cycles + hit_cycles_per_word) in
  { p_name = name; p_access_ns = cycles *. 1e9 /. float_of_int cpu_hz }

let name p = p.p_name
let access_ns p = p.p_access_ns
let lookup_ns p ~probes = probes *. p.p_access_ns
