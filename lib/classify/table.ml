(* Open-addressed classification table: the board's VC demux and the
   switch's routing lookup at connection-dense scale.

   The paper's early-demultiplexing argument (§3.1) assumed a handful of
   VCs; at thousands of concurrent VCs the classification step itself is
   the per-cell hot path, so it gets the same treatment the descriptor
   queues got: a flat, preallocated structure whose lookup allocates
   nothing and whose worst case is bounded.

   Layout: two parallel arrays (packed int keys, values), power-of-two
   capacity, linear probing with Robin-Hood insertion — an arriving key
   that has probed further than the incumbent steals the slot, which
   bounds the variance of probe lengths — and backward-shift deletion,
   so no tombstones ever accumulate. [c_maxd] is the largest
   displacement present; a lookup gives up after [c_maxd + 1] probes,
   and inserts that would push the displacement to [c_bound] force a
   capacity doubling, so the probe bound is a structural invariant, not
   a hope.

   An optional {!Hashtbl} mirror (the differential oracle, same pattern
   as [Binary_heap] backing [Wheel]) records every mutation; [check]
   compares the two directions and the structural invariants. *)

type 'a t = {
  mutable c_keys : int array; (* -1 = empty slot *)
  mutable c_vals : 'a array;
  mutable c_mask : int; (* capacity - 1 (capacity is a power of two) *)
  mutable c_count : int;
  mutable c_maxd : int; (* max displacement among present keys *)
  c_bound : int; (* displacements must stay < c_bound (else grow) *)
  c_dummy : 'a; (* fills empty value slots so removals don't pin *)
  mutable c_lookups : int;
  mutable c_probe_sum : int;
  c_hist : int array; (* probe-length histogram: c_hist.(probes-1) *)
  c_oracle : (int, 'a) Hashtbl.t option;
}

type probe_stats = {
  lookups : int;
  probes : int;
  max_probe : int;  (** worst case possible right now: c_maxd + 1 *)
  p99_probe : int;  (** 99th percentile of recorded lookups *)
}

(* splitmix64-style finalizer on the packed key; constants truncated to
   OCaml's 63-bit int range. Top bit cleared so [land mask] is safe. *)
let hash key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let rec pow2_ge n acc = if acc >= n then acc else pow2_ge n (acc * 2)

let create ?(oracle = false) ?(probe_bound = 16) ~dummy n =
  if probe_bound < 4 then
    invalid_arg "Classify.Table.create: probe_bound < 4";
  if n < 0 then invalid_arg "Classify.Table.create: negative capacity";
  let cap = pow2_ge (max 8 n) 8 in
  {
    c_keys = Array.make cap (-1);
    c_vals = Array.make cap dummy;
    c_mask = cap - 1;
    c_count = 0;
    c_maxd = 0;
    c_bound = probe_bound;
    c_dummy = dummy;
    c_lookups = 0;
    c_probe_sum = 0;
    c_hist = Array.make probe_bound 0;
    c_oracle = (if oracle then Some (Hashtbl.create cap) else None);
  }

let length t = t.c_count
let capacity t = t.c_mask + 1
let probe_bound t = t.c_bound

(* The probe loop is a top-level function (not a local closure: R5) and
   returns the final displacement — [d >= 0] when the key sits at
   [home + d], [-(probes)] on a miss — so the caller can account probe
   costs without boxing a result pair. *)
let rec probe_loop keys mask maxd key i d =
  let k = Array.unsafe_get keys i in
  if k = key then d
  else if k = -1 || d >= maxd then -d - 1
  else probe_loop keys mask maxd key ((i + 1) land mask) (d + 1)

let record t probes =
  t.c_lookups <- t.c_lookups + 1;
  t.c_probe_sum <- t.c_probe_sum + probes;
  let h = t.c_hist in
  let b = if probes > Array.length h then Array.length h - 1 else probes - 1 in
  Array.unsafe_set h b (Array.unsafe_get h b + 1)

(* The per-cell classification step. Negative keys collide with the
   empty sentinel, so they are a structural miss by definition. *)
let find_slot t key =
  if key < 0 then -1
  else begin
    let home = hash key land t.c_mask in
    let d = probe_loop t.c_keys t.c_mask t.c_maxd key home 0 in
    if d >= 0 then begin
      record t (d + 1);
      (home + d) land t.c_mask
    end
    else begin
      record t (-d);
      -1
    end
  end

let slot_value t slot = t.c_vals.(slot)
let slot_key t slot = t.c_keys.(slot)

(* Membership and reads that must not perturb the probe accounting. *)
let quiet_find t key =
  if key < 0 then -1
  else
    let home = hash key land t.c_mask in
    let d = probe_loop t.c_keys t.c_mask t.c_maxd key home 0 in
    if d >= 0 then (home + d) land t.c_mask else -1

let mem t key = quiet_find t key >= 0

let find t key =
  let s = quiet_find t key in
  if s >= 0 then Some t.c_vals.(s) else None

let displacement t k i = (i - (hash k land t.c_mask)) land t.c_mask

(* Robin-Hood insert of a key known to fit (capacity > count). Replaces
   in place when the key is present. *)
let rec insert_loop t key value i d =
  let k = t.c_keys.(i) in
  if k = key then t.c_vals.(i) <- value
  else if k = -1 then begin
    t.c_keys.(i) <- key;
    t.c_vals.(i) <- value;
    t.c_count <- t.c_count + 1;
    if d > t.c_maxd then t.c_maxd <- d
  end
  else begin
    let kd = displacement t k i in
    if kd < d then begin
      (* the incumbent is closer to home: steal its slot and carry it *)
      let v = t.c_vals.(i) in
      t.c_keys.(i) <- key;
      t.c_vals.(i) <- value;
      if d > t.c_maxd then t.c_maxd <- d;
      insert_loop t k v ((i + 1) land t.c_mask) (kd + 1)
    end
    else insert_loop t key value ((i + 1) land t.c_mask) (d + 1)
  end

let raw_insert t key value = insert_loop t key value (hash key land t.c_mask) 0

(* Double the capacity (repeatedly, if a pathological key set keeps the
   displacement at the bound) and reinsert everything. *)
let grow t =
  let rec attempt cap =
    let old_keys = t.c_keys and old_vals = t.c_vals in
    t.c_keys <- Array.make cap (-1);
    t.c_vals <- Array.make cap t.c_dummy;
    t.c_mask <- cap - 1;
    t.c_count <- 0;
    t.c_maxd <- 0;
    Array.iteri
      (fun i k -> if k >= 0 then raw_insert t k old_vals.(i))
      old_keys;
    if t.c_maxd >= t.c_bound then begin
      (* undo is unnecessary: reinserting into a bigger table only needs
         the new arrays; restart from the freshly built state *)
      attempt (cap * 2)
    end
  in
  attempt ((t.c_mask + 1) * 2)

let add t key value =
  if key < 0 then invalid_arg "Classify.Table.add: negative key";
  (match t.c_oracle with
  | Some o -> Hashtbl.replace o key value
  | None -> ());
  raw_insert t key value;
  (* Load factor capped at 7/8; the displacement bound usually triggers
     first. Either way the table after [add] satisfies maxd < bound. *)
  if t.c_maxd >= t.c_bound || t.c_count * 8 > (t.c_mask + 1) * 7 then grow t

(* Backward-shift deletion: pull successors with non-zero displacement
   one slot back until a hole or a home-positioned key. Top-level rec so
   a hot caller (the switch's per-cell EPD bookkeeping) stays
   closure-free. *)
let rec shift_back t i =
  let j = (i + 1) land t.c_mask in
  let k = Array.unsafe_get t.c_keys j in
  if k = -1 || (j - (hash k land t.c_mask)) land t.c_mask = 0 then begin
    t.c_keys.(i) <- -1;
    t.c_vals.(i) <- t.c_dummy
  end
  else begin
    t.c_keys.(i) <- k;
    t.c_vals.(i) <- t.c_vals.(j);
    shift_back t j
  end

let remove t key =
  (match t.c_oracle with Some o -> Hashtbl.remove o key | None -> ());
  let s = quiet_find t key in
  if s >= 0 then begin
    t.c_count <- t.c_count - 1;
    shift_back t s
  end

let iter f t =
  Array.iteri (fun i k -> if k >= 0 then f k t.c_vals.(i)) t.c_keys

let fold f t init =
  let acc = ref init in
  Array.iteri (fun i k -> if k >= 0 then acc := f k t.c_vals.(i) !acc) t.c_keys;
  !acc

(* ------------------------------------------------------------------ *)
(* Probe accounting: the cost-model inputs of the demux_scale figure. *)

let probe_stats t =
  let p99 =
    if t.c_lookups = 0 then 0
    else begin
      let want =
        (* smallest k with cum(k) >= 99% of lookups *)
        t.c_lookups - (t.c_lookups / 100)
      in
      let rec scan i cum =
        if i >= Array.length t.c_hist then Array.length t.c_hist
        else begin
          let cum = cum + t.c_hist.(i) in
          if cum >= want then i + 1 else scan (i + 1) cum
        end
      in
      scan 0 0
    end
  in
  {
    lookups = t.c_lookups;
    probes = t.c_probe_sum;
    max_probe = t.c_maxd + 1;
    p99_probe = p99;
  }

let reset_probe_stats t =
  t.c_lookups <- 0;
  t.c_probe_sum <- 0;
  Array.fill t.c_hist 0 (Array.length t.c_hist) 0

(* Analytic footprint (R2 forbids Obj-based measurement): two data words
   per slot plus one array header each, the record's dozen words, and
   the histogram. 8-byte words. *)
let resident_bytes t =
  let cap = t.c_mask + 1 in
  let words = (2 * (cap + 1)) + (Array.length t.c_hist + 1) + 14 in
  words * 8

(* ------------------------------------------------------------------ *)
(* Structural + differential-oracle audit. Cold path: runs at sweep
   points and in tests, never per cell. *)

let check t =
  let v = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
  let occupied = ref 0 in
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        incr occupied;
        let d = displacement t k i in
        if d > t.c_maxd then
          bad "key %d at slot %d: displacement %d exceeds maxd %d" k i d
            t.c_maxd;
        if d >= t.c_bound then
          bad "key %d at slot %d: displacement %d breaks the bound %d" k i d
            t.c_bound;
        let s = quiet_find t k in
        if s <> i then bad "key %d at slot %d not found there (probe hit %d)" k i s
      end)
    t.c_keys;
  if !occupied <> t.c_count then
    bad "count %d but %d occupied slots" t.c_count !occupied;
  (match t.c_oracle with
  | None -> ()
  | Some o ->
      if Hashtbl.length o <> t.c_count then
        bad "oracle holds %d bindings, table %d" (Hashtbl.length o) t.c_count;
      Hashtbl.iter
        (fun k ov ->
          match find t k with
          | None -> bad "oracle key %d missing from the table" k
          | Some tv ->
              if not (tv == ov) then
                bad "oracle key %d bound to a different value" k)
        o);
  List.rev !v

let has_oracle t = t.c_oracle <> None
