(** Cycle-cost model for classification lookups: probes × the machine's
    memory-access cost. Profiles are derived from a machine's cache
    parameters by the experiments (this library sits below
    [Osiris_core]). *)

type profile

val profile : name:string -> access_ns:float -> profile

val of_cache :
  name:string ->
  cpu_hz:int ->
  fill_overhead_cycles:int ->
  hit_cycles_per_word:int ->
  profile
(** One probe = one cache-line fill: [(fill_overhead_cycles +
    hit_cycles_per_word) / cpu_hz], in nanoseconds. *)

val name : profile -> string
val access_ns : profile -> float

val lookup_ns : profile -> probes:float -> float
(** Modeled lookup cost of [probes] (possibly an average) probes. *)
