(** Output-queued ATM cell switch.

    The paper's OSIRIS boards sat on the AURORA testbed behind Sunshine-class
    ATM switches; this module supplies the fabric the reproduction was
    missing so that more than two hosts can contend for a link. The model is
    the classic output-queued switch: each of [nports] ports hosts a pair of
    {!Osiris_link.Atm_link} endpoints (one carrying cells {e into} the
    switch, one carrying cells {e out}), a per-input-port routing table maps
    [(in_port, in_vci)] to [(out_port, out_vci)] — rewriting the VCI as a
    real ATM switch does — and every output port owns a finite cell queue
    drained at one cell per {!config.forward_latency}.

    Cells that arrive for a full output queue are dropped and counted
    ([dropped_overflow]), as are cells with no routing entry
    ([dropped_no_route]). Forwarding preserves the AAL sequence number, so
    the egress link's [seq mod nlive] striping re-derives a consistent
    channel assignment and per-link FIFO order survives the hop.

    {b Conservation invariant} (holds at {e every} simulated instant, not
    just at quiescence):
    [cells_in = forwarded + occupancy + dropped_overflow + dropped_no_route].
    A cell is counted [forwarded] when it is committed to the egress pipe
    (dequeued), even while it still serializes onto the output link. The
    counters are registered in the {!Osiris_obs.Metrics} registry under
    [switch.*]. *)

type config = {
  nports : int;  (** number of ports (each bidirectional) *)
  queue_cells : int;  (** per-output-port queue capacity, in cells *)
  forward_latency : Osiris_sim.Time.t;
      (** per-cell switching latency: the output scheduler holds each
          dequeued cell this long before handing it to the egress link *)
  drain_batch : int;
      (** cells the output scheduler pulls from its queue per wakeup
          (>= 1). Purely a simulator-speed knob: each batched cell is
          still committed — counted forwarded, removed from the logical
          occupancy — at the exact instant a one-cell-per-wakeup drain
          would commit it, so drops, occupancy and timing are identical
          for every value. *)
  mark_threshold : int;
      (** ECN-like congestion marking (DCTCP-style, queue-occupancy
          threshold): a cell admitted to an output queue whose occupancy
          already stands at this many cells or more gets its
          {!Osiris_atm.Cell.t.marked} bit set, so receivers see standing
          congestion before the queue overflows. 0 (the default)
          disables marking; otherwise must be <= [queue_cells]. *)
  epd_reserve : int;
      (** Packet-discard mode (the early/partial packet discard of
          Romanow & Floyd, SIGCOMM '94): 0 (the default) keeps plain
          cell-granularity tail drop; a positive value decides each
          PDU's fate at its {e first} cell ([seq] 0), admitting it only
          when the output queue has this many cells of room beyond
          everything queued or reserved for other admitted PDUs, and
          shedding it whole otherwise. Admitted PDUs hold their unused
          reservation until the framing bit; a PDU that outgrows its
          reservation into a full queue loses its remaining cells
          (partial packet discard, counted like the rest under
          [dropped_epd]). Size it to the largest PDU the experiment
          sends so drops are always whole PDUs — a partial PDU
          desynchronizes the receiving board's striped reassembly until
          its reassembly timeout fires, turning one lost cell into a
          blackout. Must be <= [queue_cells]. *)
  route_oracle : bool;
      (** mirror the routing and packet-discard tables in [Hashtbl]s and
          audit them against the classification tables in {!route_check}
          (off by default) *)
}

val default_config : config
(** 4 ports, 32-cell output queues, 2 µs per-cell forwarding latency —
    roughly one OC-3 cell time through the fabric — draining 8 cells
    per scheduler wakeup, congestion marking off. *)

type t

val create :
  Osiris_sim.Engine.t -> ?name:string -> config -> t
(** A switch with no ports attached and an empty routing table. [name]
    (default ["sw"]) labels trace output. *)

val config : t -> config
val name : t -> string

val attach_port :
  t -> port:int -> ingress:Osiris_link.Atm_link.t ->
  egress:Osiris_link.Atm_link.t -> unit
(** Bind port [port]: [ingress] is the link whose receive side the switch
    consumes (host/trunk → switch), [egress] the link the switch transmits
    on (switch → host/trunk). Must be called before {!start}; attaching a
    port twice or out of range raises [Invalid_argument]. *)

val add_route :
  t -> in_port:int -> in_vci:int -> out_port:int -> out_vci:int -> unit
(** Program one routing-table entry. Cells arriving on [in_port] with VCI
    [in_vci] leave on [out_port] rewritten to [out_vci]. Replaces any
    previous entry for [(in_port, in_vci)]; ports must be in range and VCIs
    must fit 16 bits or [Invalid_argument] is raised. *)

val route : t -> in_port:int -> in_vci:int -> (int * int) option
(** Current table entry, as [(out_port, out_vci)]. *)

(** {2 Classification cost accounting}

    Routing runs through an {!Osiris_classify.Table} keyed by packed
    [(in_port, in_vci)]; these expose its per-cell probe statistics,
    its analytic footprint, and its structural / differential-oracle
    audit (see [route_oracle]). *)

val route_stats : t -> Osiris_classify.Table.probe_stats
val reset_route_stats : t -> unit
val route_resident_bytes : t -> int

val nroutes : t -> int
(** Number of programmed routing entries. *)

val route_check : t -> string list
(** Structural invariants of the routing and packet-discard tables,
    plus equivalence with their [Hashtbl] mirrors when [route_oracle]
    is set. Empty = clean. *)

val start : t -> unit
(** Spawn the per-port forwarding processes (one ingress consumer and one
    output scheduler per attached port). Idempotent per switch is {e not}
    supported: starting twice raises [Invalid_argument]. *)

val set_port_state : t -> port:int -> bool -> unit
(** Raise ([true]) or cut ([false]) an output port's carrier — the
    fabric-level fault dimension ([portflap#N] plans). A down port stops
    draining: cells routed to it still enqueue, and once the queue
    stands full they are overflow-dropped, so the conservation law is
    untouched. Cells already pulled into the egress pipe finish
    serializing. Raising the port wakes its scheduler. Idempotent. *)

val port_up : t -> port:int -> bool

(** {2 Synchronous datapath (tests and the schedule explorer)}

    The two halves of the datapath are exposed directly so tests and
    {!Osiris_check} scenarios can drive enqueue/dequeue interleavings
    without links or processes. The port processes spawned by {!start} use
    exactly these functions. *)

val ingress_cell : t -> port:int -> Osiris_atm.Cell.t -> unit
(** Run the routing + output-enqueue step for one cell arriving on
    [port]: counts it in, looks up the route, rewrites the VCI and either
    queues it on the output port or counts the drop. *)

val drain_one : t -> port:int -> Osiris_atm.Cell.t option
(** Dequeue the next cell from [port]'s output queue, counting it as
    forwarded; [None] when the queue is empty. Does {e not} apply
    [forward_latency] or touch the egress link. *)

(** {2 Accounting} *)

type stats = {
  mutable cells_in : int;  (** cells accepted from ingress links *)
  mutable forwarded : int;  (** cells committed to an egress link *)
  mutable dropped_overflow : int;  (** lost to a full output queue *)
  mutable dropped_no_route : int;  (** no routing-table entry *)
  mutable dropped_epd : int;
      (** cells shed by packet-discard admission ([epd_reserve] > 0):
          whole refused PDUs plus the cut-off tails of PDUs that outgrew
          their reservation *)
  mutable max_occupancy : int;
      (** high-water mark of the total queued-cell count *)
  mutable marked : int;
      (** cells admitted with the congestion bit set (threshold marking;
          counted under [switch.marked] in the metrics registry) *)
  mutable marked_forwarded : int;
      (** marked cells committed to an egress link *)
}

val stats : t -> stats

val occupancy : t -> int
(** Total cells currently queued across all output ports. *)

val port_occupancy : t -> port:int -> int

val conservation : t -> (string * int) list
(** The invariant's parts, for [Osiris_core.Invariants.balance]-style
    checks: [("forwarded", _); ("queued", _); ("dropped_overflow", _);
    ("dropped_no_route", _); ("dropped_epd", _)] — their sum must equal
    [(stats t).cells_in] at every instant. *)

val mark_conservation : t -> (string * int) list
(** The marking side of the conservation law:
    [("marked_forwarded", _); ("marked_queued", _)] — their sum must
    equal [(stats t).marked] at every instant. Marking happens at
    admission (never to an already-queued cell) and a queued cell can
    only leave forwarded, so marked cells are never dropped. *)
