module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Signal = Osiris_sim.Signal
module Time = Osiris_sim.Time
module Trace = Osiris_sim.Trace
module Cell = Osiris_atm.Cell
module Atm_link = Osiris_link.Atm_link
module Metrics = Osiris_obs.Metrics

type config = {
  nports : int;
  queue_cells : int;
  forward_latency : Time.t;
  drain_batch : int;
}

let default_config =
  { nports = 4; queue_cells = 32; forward_latency = Time.us 2;
    drain_batch = 8 }

(* Placeholder stored in vacated ring slots so forwarded cells are not
   pinned by the preallocated arrays. *)
let no_cell =
  Cell.make ~vci:0 ~seq:0 ~eom:false ~last_of_pdu:false
    (Bytes.make Cell.data_size '\000')

(* The output queue is a preallocated ring: enqueue and dequeue allocate
   nothing. [in_flight] counts cells the egress scheduler has pulled out
   of the ring as a batch but whose drain instant has not arrived yet —
   logically they are still queued, so occupancy and the overflow check
   use [q_len + in_flight]. The ring itself never overflows: admission
   is bounded by the same sum. *)
type port = {
  mutable ingress : Atm_link.t option;
  mutable egress : Atm_link.t option;
  ring : Cell.t array;
  mutable q_head : int;
  mutable q_len : int;
  mutable in_flight : int;
  out_nonempty : Signal.t;
}

type stats = {
  mutable cells_in : int;
  mutable forwarded : int;
  mutable dropped_overflow : int;
  mutable dropped_no_route : int;
  mutable max_occupancy : int;
}

type t = {
  eng : Engine.t;
  cfg : config;
  sw_name : string;
  ports : port array;
  routes : (int * int, int * int) Hashtbl.t;
  stats : stats;
  mutable queued : int; (* total logical occupancy, all output ports *)
  m_in : Metrics.counter;
  m_fwd : Metrics.counter;
  m_drop_ovf : Metrics.counter;
  m_drop_route : Metrics.counter;
  mutable started : bool;
}

let occupancy t = t.queued

let create eng ?(name = "sw") cfg =
  if cfg.nports < 1 then invalid_arg "Switch.create: nports < 1";
  if cfg.queue_cells < 1 then invalid_arg "Switch.create: queue_cells < 1";
  if cfg.drain_batch < 1 then invalid_arg "Switch.create: drain_batch < 1";
  let ports =
    Array.init cfg.nports (fun _ ->
        {
          ingress = None;
          egress = None;
          ring = Array.make cfg.queue_cells no_cell;
          q_head = 0;
          q_len = 0;
          in_flight = 0;
          out_nonempty = Signal.create eng;
        })
  in
  let t =
    {
      eng;
      cfg;
      sw_name = name;
      ports;
      routes = Hashtbl.create 31;
      stats =
        {
          cells_in = 0;
          forwarded = 0;
          dropped_overflow = 0;
          dropped_no_route = 0;
          max_occupancy = 0;
        };
      queued = 0;
      m_in = Metrics.counter "switch.cells_in";
      m_fwd = Metrics.counter "switch.forwarded";
      m_drop_ovf = Metrics.counter "switch.dropped_overflow";
      m_drop_route = Metrics.counter "switch.dropped_no_route";
      started = false;
    }
  in
  Metrics.gauge_fn "switch.queued" (fun () -> float_of_int (occupancy t));
  t

let config t = t.cfg
let name t = t.sw_name
let stats t = t.stats

let check_port t fn port =
  if port < 0 || port >= t.cfg.nports then
    invalid_arg (Printf.sprintf "Switch.%s: port %d out of range" fn port)

let attach_port t ~port ~ingress ~egress =
  check_port t "attach_port" port;
  if t.started then invalid_arg "Switch.attach_port: switch already started";
  let p = t.ports.(port) in
  if p.ingress <> None || p.egress <> None then
    invalid_arg (Printf.sprintf "Switch.attach_port: port %d in use" port);
  p.ingress <- Some ingress;
  p.egress <- Some egress

let add_route t ~in_port ~in_vci ~out_port ~out_vci =
  check_port t "add_route" in_port;
  check_port t "add_route" out_port;
  if in_vci < 0 || in_vci > 0xffff || out_vci < 0 || out_vci > 0xffff then
    invalid_arg "Switch.add_route: vci out of range";
  Hashtbl.replace t.routes (in_port, in_vci) (out_port, out_vci)

let route t ~in_port ~in_vci = Hashtbl.find_opt t.routes (in_port, in_vci)

let port_occupancy t ~port =
  check_port t "port_occupancy" port;
  let p = t.ports.(port) in
  p.q_len + p.in_flight

let ring_push p cell =
  let cap = Array.length p.ring in
  let i = p.q_head + p.q_len in
  p.ring.(if i >= cap then i - cap else i) <- cell;
  p.q_len <- p.q_len + 1

let ring_take p =
  let cell = p.ring.(p.q_head) in
  p.ring.(p.q_head) <- no_cell;
  p.q_head <- (if p.q_head + 1 = Array.length p.ring then 0 else p.q_head + 1);
  p.q_len <- p.q_len - 1;
  cell

let ingress_cell t ~port cell =
  check_port t "ingress_cell" port;
  t.stats.cells_in <- t.stats.cells_in + 1;
  Metrics.incr t.m_in;
  match Hashtbl.find_opt t.routes (port, cell.Cell.vci) with
  | None ->
      t.stats.dropped_no_route <- t.stats.dropped_no_route + 1;
      Metrics.incr t.m_drop_route;
      Trace.emitf Trace.Link ~now:(Engine.now t.eng)
        "%s: no route for vci %d on port %d, cell dropped" t.sw_name
        cell.Cell.vci port
  | Some (out_port, out_vci) ->
      let p = t.ports.(out_port) in
      if p.q_len + p.in_flight >= t.cfg.queue_cells then begin
        t.stats.dropped_overflow <- t.stats.dropped_overflow + 1;
        Metrics.incr t.m_drop_ovf;
        Trace.emitf Trace.Link ~now:(Engine.now t.eng)
          "%s: output queue %d full (%d cells), cell vci %d dropped"
          t.sw_name out_port t.cfg.queue_cells cell.Cell.vci
      end
      else begin
        (* Cells are immutable records shared with in-flight deliveries
           (fault injection can alias one cell across two arrivals), so
           the VCI rewrite must copy — but only when it changes
           anything. *)
        let cell =
          if cell.Cell.vci = out_vci then cell
          else { cell with Cell.vci = out_vci }
        in
        ring_push p cell;
        t.queued <- t.queued + 1;
        if t.queued > t.stats.max_occupancy then
          t.stats.max_occupancy <- t.queued;
        Signal.broadcast p.out_nonempty
      end

(* The per-cell forwarding commitment: this is the instant the cell
   stops being "queued" and becomes "forwarded" in the conservation
   invariant, whether it is drained directly or as part of a batch. *)
let commit_forward t =
  t.queued <- t.queued - 1;
  t.stats.forwarded <- t.stats.forwarded + 1;
  Metrics.incr t.m_fwd

let drain_one t ~port =
  check_port t "drain_one" port;
  let p = t.ports.(port) in
  if p.q_len = 0 then None
  else begin
    let cell = ring_take p in
    commit_forward t;
    Some cell
  end

(* One consumer per ingress link: every arriving cell runs the routing +
   output-enqueue step the instant the link delivers it (input queueing is
   the link's receive FIFO; contention lives in the output queues). *)
let ingress_loop t port link () =
  let rec loop () =
    let _ch, cell = Atm_link.recv link in
    ingress_cell t ~port cell;
    loop ()
  in
  loop ()

(* One scheduler per output port: dequeue, hold the cell for the fabric's
   per-cell forwarding latency, then hand it to the egress link (whose
   [send] models serialization backpressure and re-stripes by AAL seq).

   Cells are pulled from the ring up to [drain_batch] at a time to save
   one queue round-trip per cell, but each one is committed (counted
   forwarded, removed from the logical occupancy) only when its own
   latency slot starts — exactly the instants a one-cell-per-wakeup
   drain would commit them — so drop decisions, occupancy readings and
   the conservation invariant are untouched by the batch size. *)
let egress_loop t port link () =
  let p = t.ports.(port) in
  let batch = Array.make t.cfg.drain_batch no_cell in
  let rec loop () =
    let n = min t.cfg.drain_batch p.q_len in
    if n = 0 then begin
      Signal.wait p.out_nonempty;
      loop ()
    end
    else begin
      for i = 0 to n - 1 do
        batch.(i) <- ring_take p
      done;
      p.in_flight <- p.in_flight + n;
      for i = 0 to n - 1 do
        p.in_flight <- p.in_flight - 1;
        commit_forward t;
        Process.sleep t.eng t.cfg.forward_latency;
        Atm_link.send link batch.(i);
        batch.(i) <- no_cell
      done;
      loop ()
    end
  in
  loop ()

let start t =
  if t.started then invalid_arg "Switch.start: already started";
  t.started <- true;
  Array.iteri
    (fun i p ->
      (match p.ingress with
      | Some link ->
          Process.spawn t.eng
            ~name:(Printf.sprintf "%s.in%d" t.sw_name i)
            (ingress_loop t i link)
      | None -> ());
      match p.egress with
      | Some link ->
          Process.spawn t.eng
            ~name:(Printf.sprintf "%s.out%d" t.sw_name i)
            (egress_loop t i link)
      | None -> ())
    t.ports

let conservation t =
  [
    ("forwarded", t.stats.forwarded);
    ("queued", occupancy t);
    ("dropped_overflow", t.stats.dropped_overflow);
    ("dropped_no_route", t.stats.dropped_no_route);
  ]
