module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Signal = Osiris_sim.Signal
module Time = Osiris_sim.Time
module Trace = Osiris_sim.Trace
module Cell = Osiris_atm.Cell
module Atm_link = Osiris_link.Atm_link
module Metrics = Osiris_obs.Metrics
module Ctable = Osiris_classify.Table

type config = {
  nports : int;
  queue_cells : int;
  forward_latency : Time.t;
  drain_batch : int;
  mark_threshold : int;
  epd_reserve : int;
  route_oracle : bool;
}

let default_config =
  { nports = 4; queue_cells = 32; forward_latency = Time.us 2;
    drain_batch = 8; mark_threshold = 0; epd_reserve = 0;
    route_oracle = false }

(* Placeholder stored in vacated ring slots so forwarded cells are not
   pinned by the preallocated arrays. *)
let no_cell =
  Cell.make ~vci:0 ~seq:0 ~eom:false ~last_of_pdu:false
    (Bytes.make Cell.data_size '\000')

(* The output queue is a preallocated ring: enqueue and dequeue allocate
   nothing. [in_flight] counts cells the egress scheduler has pulled out
   of the ring as a batch but whose drain instant has not arrived yet —
   logically they are still queued, so occupancy and the overflow check
   use [q_len + in_flight]. The ring itself never overflows: admission
   is bounded by the same sum. *)
type port = {
  mutable ingress : Atm_link.t option;
  mutable egress : Atm_link.t option;
  ring : Cell.t array;
  mutable q_head : int;
  mutable q_len : int;
  mutable in_flight : int;
  mutable reserved : int;
      (* cells of queue capacity held back for PDUs already admitted in
         packet-discard mode; occupancy + reserved <= queue_cells always *)
  mutable up : bool;
  out_nonempty : Signal.t;
}

(* Packet-discard (EPD/PPD) bookkeeping, keyed by packed
   (in_port, in_vci): the admission verdict for the PDU currently
   arriving on that input VC. A verdict [>= 0] means admitted with that
   many reserved cells still unclaimed ([Pass r]); [shed] (-1) means
   refused at its first cell (early packet discard) or cut off mid-PDU
   (partial packet discard), every remaining cell dropped. Plain ints —
   like the packed routing values — so the per-cell admission lookup
   allocates nothing (a [Pass of int] box plus a tuple key cost two
   allocations per cell; R5 flagged both). *)
let shed = -1

(* Routing keys and values are packed [(port lsl 16) lor vci]: VCIs are
   validated to 16 bits at [add_route], so the encoding is lossless and
   the per-cell [Hashtbl.find] hashes an immediate int instead of
   allocating a tuple key per cell. *)
let pack port vci = (port lsl 16) lor vci

type stats = {
  mutable cells_in : int;
  mutable forwarded : int;
  mutable dropped_overflow : int;
  mutable dropped_no_route : int;
  mutable dropped_epd : int;
  mutable max_occupancy : int;
  mutable marked : int;
  mutable marked_forwarded : int;
}

type t = {
  eng : Engine.t;
  cfg : config;
  sw_name : string;
  ports : port array;
  routes : int Ctable.t; (* pack in_port in_vci → pack out ... *)
  pdus : int Ctable.t; (* pack in_port in_vci → verdict *)
  stats : stats;
  mutable queued : int; (* total logical occupancy, all output ports *)
  mutable marked_queued : int; (* marked cells among [queued] *)
  m_in : Metrics.counter;
  m_fwd : Metrics.counter;
  m_drop_ovf : Metrics.counter;
  m_drop_route : Metrics.counter;
  m_drop_epd : Metrics.counter;
  m_marked : Metrics.counter;
  mutable started : bool;
}

let occupancy t = t.queued

let create eng ?(name = "sw") cfg =
  if cfg.nports < 1 then invalid_arg "Switch.create: nports < 1";
  if cfg.queue_cells < 1 then invalid_arg "Switch.create: queue_cells < 1";
  if cfg.drain_batch < 1 then invalid_arg "Switch.create: drain_batch < 1";
  if cfg.mark_threshold < 0 || cfg.mark_threshold > cfg.queue_cells then
    invalid_arg "Switch.create: mark_threshold out of range";
  if cfg.epd_reserve < 0 || cfg.epd_reserve > cfg.queue_cells then
    invalid_arg "Switch.create: epd_reserve out of range";
  let ports =
    Array.init cfg.nports (fun _ ->
        {
          ingress = None;
          egress = None;
          ring = Array.make cfg.queue_cells no_cell;
          q_head = 0;
          q_len = 0;
          in_flight = 0;
          reserved = 0;
          up = true;
          out_nonempty = Signal.create eng;
        })
  in
  let t =
    {
      eng;
      cfg;
      sw_name = name;
      ports;
      (* Dummy 0 is a routing value / verdict shape, never returned: the
         empty sentinel lives in the key array. *)
      routes = Ctable.create ~oracle:cfg.route_oracle ~dummy:0 32;
      pdus = Ctable.create ~oracle:cfg.route_oracle ~dummy:0 32;
      stats =
        {
          cells_in = 0;
          forwarded = 0;
          dropped_overflow = 0;
          dropped_no_route = 0;
          dropped_epd = 0;
          max_occupancy = 0;
          marked = 0;
          marked_forwarded = 0;
        };
      queued = 0;
      marked_queued = 0;
      m_in = Metrics.counter "switch.cells_in";
      m_fwd = Metrics.counter "switch.forwarded";
      m_drop_ovf = Metrics.counter "switch.dropped_overflow";
      m_drop_route = Metrics.counter "switch.dropped_no_route";
      m_drop_epd = Metrics.counter "switch.dropped_epd";
      m_marked = Metrics.counter "switch.marked";
      started = false;
    }
  in
  Metrics.gauge_fn "switch.queued" (fun () -> float_of_int (occupancy t));
  t

let config t = t.cfg
let name t = t.sw_name
let stats t = t.stats

let check_port t fn port =
  if port < 0 || port >= t.cfg.nports then
    (invalid_arg (Printf.sprintf "Switch.%s: port %d out of range" fn port)
    [@osiris.alloc_ok "cold error path: raises, never returns"])

let attach_port t ~port ~ingress ~egress =
  check_port t "attach_port" port;
  if t.started then invalid_arg "Switch.attach_port: switch already started";
  let p = t.ports.(port) in
  if p.ingress <> None || p.egress <> None then
    invalid_arg (Printf.sprintf "Switch.attach_port: port %d in use" port);
  p.ingress <- Some ingress;
  p.egress <- Some egress

let add_route t ~in_port ~in_vci ~out_port ~out_vci =
  check_port t "add_route" in_port;
  check_port t "add_route" out_port;
  if in_vci < 0 || in_vci > 0xffff || out_vci < 0 || out_vci > 0xffff then
    invalid_arg "Switch.add_route: vci out of range";
  Ctable.add t.routes (pack in_port in_vci) (pack out_port out_vci)

let route t ~in_port ~in_vci =
  match Ctable.find t.routes (pack in_port in_vci) with
  | None -> None
  | Some rv -> Some (rv lsr 16, rv land 0xffff)

(* Routing-lookup cost accounting (demux_scale): probe statistics of the
   per-cell classification step, and the table's analytic footprint. *)
let route_stats t = Ctable.probe_stats t.routes
let reset_route_stats t = Ctable.reset_probe_stats t.routes
let route_resident_bytes t = Ctable.resident_bytes t.routes
let nroutes t = Ctable.length t.routes

let route_check t =
  List.map (fun s -> "switch routes: " ^ s) (Ctable.check t.routes)
  @ List.map (fun s -> "switch pdus: " ^ s) (Ctable.check t.pdus)

let port_occupancy t ~port =
  check_port t "port_occupancy" port;
  let p = t.ports.(port) in
  p.q_len + p.in_flight

let ring_push p cell =
  let cap = Array.length p.ring in
  let i = p.q_head + p.q_len in
  p.ring.(if i >= cap then i - cap else i) <- cell;
  p.q_len <- p.q_len + 1

let ring_take p =
  let cell = p.ring.(p.q_head) in
  p.ring.(p.q_head) <- no_cell;
  p.q_head <- (if p.q_head + 1 = Array.length p.ring then 0 else p.q_head + 1);
  p.q_len <- p.q_len - 1;
  cell

let enqueue t p ~out_vci cell =
  (* ECN-like congestion signal: a cell admitted while the output
     queue already stands at [mark_threshold] or deeper gets the
     congestion bit, so the receiver learns of the standing queue
     before it overflows (0 disables marking). Marking happens at
     admission, never after: once a cell is queued marked it can
     only leave forwarded, which is what [mark_conservation]
     checks. *)
  let mark =
    t.cfg.mark_threshold > 0 && p.q_len + p.in_flight >= t.cfg.mark_threshold
  in
  (* Cells are immutable records shared with in-flight deliveries
     (fault injection can alias one cell across two arrivals), so
     the VCI rewrite and the mark must copy — but only when they
     change anything. *)
  let cell =
    if cell.Cell.vci = out_vci && (cell.Cell.marked || not mark) then cell
    else
      ({ cell with Cell.vci = out_vci; marked = cell.Cell.marked || mark }
      [@osiris.alloc_ok
        "header rewrite must copy: cells are immutable and may be aliased \
         by in-flight deliveries; skipped when nothing changes"])
  in
  if cell.Cell.marked then begin
    t.stats.marked <- t.stats.marked + 1;
    t.marked_queued <- t.marked_queued + 1;
    Metrics.incr t.m_marked
  end;
  ring_push p cell;
  t.queued <- t.queued + 1;
  if t.queued > t.stats.max_occupancy then t.stats.max_occupancy <- t.queued;
  (Signal.broadcast p.out_nonempty
  [@osiris.alloc_ok
    "waking the port scheduler resumes suspended processes (engine \
     handles); cost is per wakeup of a sleeping drain loop, not per cell"])

let drop_overflow t out_port (cell : Cell.t) =
  t.stats.dropped_overflow <- t.stats.dropped_overflow + 1;
  Metrics.incr t.m_drop_ovf;
  (Trace.emitf Trace.Link ~now:(Engine.now t.eng)
     "%s: output queue %d full (%d cells), cell vci %d dropped" t.sw_name
     out_port t.cfg.queue_cells cell.Cell.vci
  [@osiris.alloc_ok
    "drop diagnostics: format value, off in benchmark runs"])

let drop_epd t out_port (cell : Cell.t) ~why =
  t.stats.dropped_epd <- t.stats.dropped_epd + 1;
  Metrics.incr t.m_drop_epd;
  (Trace.emitf Trace.Link ~now:(Engine.now t.eng)
     "%s: %s on output queue %d, cell vci %d seq %d dropped" t.sw_name why
     out_port cell.Cell.vci cell.Cell.seq
  [@osiris.alloc_ok
    "drop diagnostics: format value, off in benchmark runs"])

(* Packet-discard (EPD/PPD) admission, Romanow & Floyd style: the fate of
   a PDU is decided once, at its first cell. Admission requires room for
   [epd_reserve] cells over and above everything queued or already
   promised, and holds that reservation until the PDU's cells claim it
   (releasing any excess at the framing bit), so an admitted PDU of up to
   [epd_reserve] cells can never lose a tail cell to interleaved traffic.
   A PDU refused at its first cell is shed whole — early packet discard —
   and one that outgrows its reservation into a full queue loses its
   remaining cells — partial packet discard. Whole-PDU losses are what
   make the discipline worth its queue space: the receiving board's
   striped reassembly never sees a partial PDU, so a drop costs exactly
   one PDU instead of desynchronizing the VC's stripe phase until a
   reassembly timeout fires. *)
let ingress_cell_epd t ~in_port ~out_port ~out_vci (cell : Cell.t) =
  let p = t.ports.(out_port) in
  let key = pack in_port cell.Cell.vci in
  (* seq 0 always opens a fresh PDU: if the previous PDU's tail was lost
     upstream of the switch, its stale verdict (and reservation) would
     otherwise pin this VC forever. Verdicts are ints ([shed] or a
     non-negative reservation); [min_int] stands for "no verdict". *)
  let state =
    if cell.Cell.seq = 0 then begin
      (match Ctable.find_slot t.pdus key with
      | -1 -> ()
      | s ->
          let r = Ctable.slot_value t.pdus s in
          if r > 0 then p.reserved <- p.reserved - r);
      Ctable.remove t.pdus key;
      min_int
    end
    else
      match Ctable.find_slot t.pdus key with
      | -1 -> min_int
      | s -> Ctable.slot_value t.pdus s
  in
  let last = cell.Cell.last_of_pdu in
  let occ = p.q_len + p.in_flight in
  if state = min_int then begin
    (* First cell: admit or shed the whole PDU. *)
    if occ + p.reserved + t.cfg.epd_reserve <= t.cfg.queue_cells then begin
      enqueue t p ~out_vci cell;
      if not last then begin
        let remaining = t.cfg.epd_reserve - 1 in
        p.reserved <- p.reserved + remaining;
        (Ctable.add t.pdus key remaining
        [@osiris.alloc_ok
          "per-PDU bookkeeping: amortized table growth, one insert per \
           open PDU"])
      end
    end
    else begin
      drop_epd t out_port cell ~why:"early packet discard";
      if not last then
        (Ctable.add t.pdus key shed
        [@osiris.alloc_ok "per-PDU bookkeeping, as above"])
    end
  end
  else if state > 0 then begin
    (* Admitted PDU claiming its reservation: room is guaranteed. *)
    let r = state in
    enqueue t p ~out_vci cell;
    p.reserved <- p.reserved - 1;
    if last then begin
      p.reserved <- p.reserved - (r - 1);
      Ctable.remove t.pdus key
    end
    else
      (Ctable.add t.pdus key (r - 1)
      [@osiris.alloc_ok "overwrites the PDU's existing int binding"])
  end
  else if state = 0 then begin
    (* PDU longer than its reservation: take free (unreserved) space
       while it lasts, cut the PDU off (PPD) when it runs out. *)
    if occ + p.reserved < t.cfg.queue_cells then begin
      enqueue t p ~out_vci cell;
      if last then Ctable.remove t.pdus key
    end
    else begin
      drop_epd t out_port cell ~why:"partial packet discard";
      if last then Ctable.remove t.pdus key
      else
        (Ctable.add t.pdus key shed
        [@osiris.alloc_ok "overwrites the PDU's existing int binding"])
    end
  end
  else begin
    (* [shed]: the PDU lost its admission; drop the rest of it. *)
    drop_epd t out_port cell ~why:"packet discard";
    if last then Ctable.remove t.pdus key
  end

let ingress_cell t ~port cell =
  check_port t "ingress_cell" port;
  t.stats.cells_in <- t.stats.cells_in + 1;
  Metrics.incr t.m_in;
  (* Hashed classification, cost-accounted: this probe sequence is what
     the demux_scale figure charges per forwarded cell. *)
  match Ctable.find_slot t.routes (pack port cell.Cell.vci) with
  | -1 ->
      t.stats.dropped_no_route <- t.stats.dropped_no_route + 1;
      Metrics.incr t.m_drop_route;
      (Trace.emitf Trace.Link ~now:(Engine.now t.eng)
         "%s: no route for vci %d on port %d, cell dropped" t.sw_name
         cell.Cell.vci port
      [@osiris.alloc_ok
        "drop diagnostics: emitf builds a format value; tracing is off in \
         benchmark runs"])
  | slot ->
      let rv = Ctable.slot_value t.routes slot in
      let out_port = rv lsr 16 and out_vci = rv land 0xffff in
      if t.cfg.epd_reserve > 0 then
        ingress_cell_epd t ~in_port:port ~out_port ~out_vci cell
      else begin
        let p = t.ports.(out_port) in
        if p.q_len + p.in_flight >= t.cfg.queue_cells then
          drop_overflow t out_port cell
        else enqueue t p ~out_vci cell
      end

(* The per-cell forwarding commitment: this is the instant the cell
   stops being "queued" and becomes "forwarded" in the conservation
   invariant, whether it is drained directly or as part of a batch. *)
let commit_forward t (cell : Cell.t) =
  t.queued <- t.queued - 1;
  t.stats.forwarded <- t.stats.forwarded + 1;
  if cell.Cell.marked then begin
    t.marked_queued <- t.marked_queued - 1;
    t.stats.marked_forwarded <- t.stats.marked_forwarded + 1
  end;
  Metrics.incr t.m_fwd

let drain_one t ~port =
  check_port t "drain_one" port;
  let p = t.ports.(port) in
  if p.q_len = 0 then None
  else begin
    let cell = ring_take p in
    commit_forward t cell;
    (Some cell
    [@osiris.alloc_ok
      "option box for the synchronous test/explorer surface; the egress \
       loop spawned by start uses ring_take directly"])
  end

(* Output-port carrier state (the fabric-fault dimension): a down port
   stops draining — arrivals still enqueue and, once the queue stands
   full, overflow-drop, so conservation is untouched. Raising the port
   wakes its scheduler. *)
let set_port_state t ~port up =
  check_port t "set_port_state" port;
  let p = t.ports.(port) in
  if p.up <> up then begin
    p.up <- up;
    Trace.emitf Trace.Link ~now:(Engine.now t.eng) "%s: port %d %s" t.sw_name
      port
      (if up then "up" else "down");
    if up then Signal.broadcast p.out_nonempty
  end

let port_up t ~port =
  check_port t "port_up" port;
  t.ports.(port).up

(* One consumer per ingress link: every arriving cell runs the routing +
   output-enqueue step the instant the link delivers it (input queueing is
   the link's receive FIFO; contention lives in the output queues). *)
let ingress_loop t port link () =
  let rec loop () =
    let _ch, cell = Atm_link.recv link in
    ingress_cell t ~port cell;
    loop ()
  in
  loop ()

(* One scheduler per output port: dequeue, hold the cell for the fabric's
   per-cell forwarding latency, then hand it to the egress link (whose
   [send] models serialization backpressure and re-stripes by AAL seq).

   Cells are pulled from the ring up to [drain_batch] at a time to save
   one queue round-trip per cell, but each one is committed (counted
   forwarded, removed from the logical occupancy) only when its own
   latency slot starts — exactly the instants a one-cell-per-wakeup
   drain would commit them — so drop decisions, occupancy readings and
   the conservation invariant are untouched by the batch size. *)
let egress_loop t port link () =
  let p = t.ports.(port) in
  let batch = Array.make t.cfg.drain_batch no_cell in
  let rec loop () =
    let n = if p.up then min t.cfg.drain_batch p.q_len else 0 in
    if n = 0 then begin
      Signal.wait p.out_nonempty;
      loop ()
    end
    else begin
      for i = 0 to n - 1 do
        batch.(i) <- ring_take p
      done;
      p.in_flight <- p.in_flight + n;
      for i = 0 to n - 1 do
        p.in_flight <- p.in_flight - 1;
        commit_forward t batch.(i);
        Process.sleep t.eng t.cfg.forward_latency;
        Atm_link.send link batch.(i);
        batch.(i) <- no_cell
      done;
      loop ()
    end
  in
  loop ()

let start t =
  if t.started then invalid_arg "Switch.start: already started";
  t.started <- true;
  Array.iteri
    (fun i p ->
      (match p.ingress with
      | Some link ->
          Process.spawn t.eng
            ~name:(Printf.sprintf "%s.in%d" t.sw_name i)
            (ingress_loop t i link)
      | None -> ());
      match p.egress with
      | Some link ->
          Process.spawn t.eng
            ~name:(Printf.sprintf "%s.out%d" t.sw_name i)
            (egress_loop t i link)
      | None -> ())
    t.ports

let conservation t =
  [
    ("forwarded", t.stats.forwarded);
    ("queued", occupancy t);
    ("dropped_overflow", t.stats.dropped_overflow);
    ("dropped_no_route", t.stats.dropped_no_route);
    ("dropped_epd", t.stats.dropped_epd);
  ]

(* Marked cells are admitted marked and can only leave forwarded (there
   is no drop-from-queue path), so at every instant
   marked = marked_forwarded + marked cells still queued. *)
let mark_conservation t =
  [
    ("marked_forwarded", t.stats.marked_forwarded);
    ("marked_queued", t.marked_queued);
  ]
