(** Empirical flow-size distributions as piecewise-linear CDFs, sampled
    by inverse-transform: a flow size is the {!quantile} of a uniform
    draw. The named workloads ({!websearch}, {!datamining}) are coarse
    approximations of published datacenter measurements, there to give
    experiments realistic size dispersion. *)

open Osiris_util

type t

val name : t -> string

val of_points : name:string -> (float * float) list -> t
(** [(size_bytes, cum_prob)] pairs: sizes strictly increasing,
    probabilities non-decreasing from exactly 0 to exactly 1.
    Raises [Invalid_argument] otherwise. *)

val quantile : t -> float -> float
(** Inverse CDF by linear interpolation; monotone in its argument.
    Arguments outside [0,1] clamp to the support's endpoints. *)

val sample : t -> Rng.t -> int
(** One flow size in bytes (at least 1): [quantile] of a uniform draw,
    rounded to the nearest byte. *)

val mean : t -> float
(** Analytic expectation: segment mass times segment midpoint, summed.
    The qcheck suite holds empirical means to this value. *)

val websearch : t
(** Web-search-like workload (DCTCP-flavored): mostly tens of kilobytes
    with a multi-megabyte tail. *)

val datamining : t
(** Data-mining-like workload (VL2-flavored): dominated by sub-2KB
    flows, tail out to a gigabyte. *)

val uniform : lo:int -> hi:int -> t
val fixed : int -> t

val by_name : string -> t
(** ["websearch"] or ["datamining"]; raises [Invalid_argument] on
    anything else. *)

val scale : t -> factor:float -> min_bytes:int -> max_bytes:int -> t
(** Rescale the size axis by [factor] and clamp the support into
    [[min_bytes, max_bytes]], keeping it strictly increasing — how the
    demux experiment shrinks datacenter distributions to bench scale. *)
