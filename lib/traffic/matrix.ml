(* Connection matrices: who talks to whom, how much, and when.

   A matrix is just a start-time-ordered flow list; the generators pick
   endpoint patterns (permutation, uniform random pairs, a single
   many-flow pair for demux stress) and draw sizes from a {!Cdf} and
   start times uniformly over a window, all from an explicit Rng so runs
   reproduce. Experiments map each flow onto a VC via
   [Network.open_vc]. *)

open Osiris_util
open Osiris_sim

type flow = { f_src : int; f_dst : int; f_bytes : int; f_start : Time.t }

let by_start flows =
  List.stable_sort (fun a b -> compare a.f_start b.f_start) flows

let total_bytes flows = List.fold_left (fun a f -> a + f.f_bytes) 0 flows

let start_in rng window =
  if window <= 0 then Time.zero else Rng.int rng window

let flow rng cdf ~window ~src ~dst =
  { f_src = src; f_dst = dst; f_bytes = Cdf.sample cdf rng; f_start = start_in rng window }

(* One flow per source to a distinct destination: a random derangement-ish
   permutation (fixed points re-rolled by swapping with a neighbour). *)
let permutation rng ~nhosts ~cdf ~window =
  if nhosts < 2 then invalid_arg "Matrix.permutation: need at least 2 hosts";
  let dst = Array.init nhosts (fun i -> i) in
  Rng.shuffle rng dst;
  for i = 0 to nhosts - 1 do
    if dst.(i) = i then begin
      let j = (i + 1) mod nhosts in
      let tmp = dst.(i) in
      dst.(i) <- dst.(j);
      dst.(j) <- tmp
    end
  done;
  by_start
    (List.init nhosts (fun src -> flow rng cdf ~window ~src ~dst:dst.(src)))

let random_pairs rng ~nhosts ~nflows ~cdf ~window =
  if nhosts < 2 then invalid_arg "Matrix.random_pairs: need at least 2 hosts";
  if nflows < 0 then invalid_arg "Matrix.random_pairs: negative flow count";
  by_start
    (List.init nflows (fun _ ->
         let src = Rng.int rng nhosts in
         let dst = (src + 1 + Rng.int rng (nhosts - 1)) mod nhosts in
         flow rng cdf ~window ~src ~dst))

(* The connection-dense demux workload: [flows] flows between one pair
   of hosts, each destined for its own VC at the receiver. *)
let pair_burst rng ~src ~dst ~flows ~cdf ~window =
  if src = dst then invalid_arg "Matrix.pair_burst: src = dst";
  if flows < 0 then invalid_arg "Matrix.pair_burst: negative flow count";
  by_start (List.init flows (fun _ -> flow rng cdf ~window ~src ~dst))
