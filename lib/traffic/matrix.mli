(** Connection matrices: start-time-ordered flow lists drawn from a
    {!Cdf} by an explicit [Rng], ready for an experiment to map onto
    VCs. *)

open Osiris_util
open Osiris_sim

type flow = {
  f_src : int;  (** source host index *)
  f_dst : int;  (** destination host index *)
  f_bytes : int;  (** flow size in bytes, drawn from the CDF *)
  f_start : Time.t;  (** start offset, uniform in the window *)
}

val by_start : flow list -> flow list
(** Stable sort by start time. *)

val total_bytes : flow list -> int

val permutation : Rng.t -> nhosts:int -> cdf:Cdf.t -> window:Time.t -> flow list
(** One flow per source along a random fixed-point-free permutation. *)

val random_pairs :
  Rng.t -> nhosts:int -> nflows:int -> cdf:Cdf.t -> window:Time.t -> flow list
(** [nflows] flows between uniformly random distinct pairs. *)

val pair_burst :
  Rng.t -> src:int -> dst:int -> flows:int -> cdf:Cdf.t -> window:Time.t ->
  flow list
(** Many flows between one host pair — the connection-dense demux
    workload, one VC per flow at the receiver. *)
