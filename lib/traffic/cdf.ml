(* Empirical flow-size distributions, sampled by inverse transform.

   A distribution is a piecewise-linear CDF over flow sizes in bytes:
   points (x_i, p_i) with x strictly increasing, p non-decreasing,
   p_0 = 0 and p_last = 1. [quantile] inverts it by linear
   interpolation inside the bracketing segment, so [sample] is just the
   quantile of a uniform draw — the standard inverse-transform recipe.

   The named distributions are coarse piecewise-linear approximations of
   the web-search and data-mining workloads measured in production
   datacenters (DCTCP / VL2); they are meant to exercise the demux with
   realistic size dispersion, not to reproduce those papers' tails
   digit-for-digit. *)

open Osiris_util

type t = { name : string; xs : float array; ps : float array }

let name t = t.name

let of_points ~name points =
  let n = List.length points in
  if n < 2 then invalid_arg "Cdf.of_points: need at least two points";
  let xs = Array.make n 0. and ps = Array.make n 0. in
  List.iteri
    (fun i (x, p) ->
      xs.(i) <- x;
      ps.(i) <- p)
    points;
  if ps.(0) <> 0. then invalid_arg "Cdf.of_points: first probability not 0";
  if ps.(n - 1) <> 1. then invalid_arg "Cdf.of_points: last probability not 1";
  if xs.(0) < 0. then invalid_arg "Cdf.of_points: negative flow size";
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg "Cdf.of_points: sizes not strictly increasing";
    if ps.(i) < ps.(i - 1) then
      invalid_arg "Cdf.of_points: probabilities decreasing"
  done;
  { name; xs; ps }

let quantile t u =
  if u <= 0. then t.xs.(0)
  else if u >= 1. then t.xs.(Array.length t.xs - 1)
  else begin
    (* find the first i with ps.(i) >= u; segment (i-1, i) brackets u *)
    let n = Array.length t.ps in
    let i = ref 1 in
    while t.ps.(!i) < u do
      incr i
    done;
    let i = if !i >= n then n - 1 else !i in
    let p0 = t.ps.(i - 1) and p1 = t.ps.(i) in
    let x0 = t.xs.(i - 1) and x1 = t.xs.(i) in
    if p1 = p0 then x1 else x0 +. ((u -. p0) /. (p1 -. p0) *. (x1 -. x0))
  end

let sample t rng =
  let x = quantile t (Rng.float rng 1.0) in
  let b = int_of_float (Float.round x) in
  if b < 1 then 1 else b

(* Expectation of the piecewise-linear CDF: each segment contributes its
   probability mass times the segment midpoint. *)
let mean t =
  let acc = ref 0. in
  for i = 1 to Array.length t.xs - 1 do
    acc :=
      !acc +. ((t.ps.(i) -. t.ps.(i - 1)) *. (t.xs.(i) +. t.xs.(i - 1)) /. 2.)
  done;
  !acc

let websearch =
  of_points ~name:"websearch"
    [
      (1., 0.0);
      (10_000., 0.15);
      (20_000., 0.20);
      (30_000., 0.30);
      (50_000., 0.40);
      (80_000., 0.53);
      (200_000., 0.60);
      (1_000_000., 0.70);
      (2_000_000., 0.80);
      (5_000_000., 0.90);
      (10_000_000., 0.97);
      (30_000_000., 1.0);
    ]

let datamining =
  of_points ~name:"datamining"
    [
      (1., 0.0);
      (300., 0.30);
      (1_000., 0.50);
      (2_000., 0.60);
      (10_000., 0.80);
      (100_000., 0.85);
      (1_000_000., 0.90);
      (10_000_000., 0.95);
      (100_000_000., 0.99);
      (1_000_000_000., 1.0);
    ]

let uniform ~lo ~hi =
  if lo < 1 || hi <= lo then invalid_arg "Cdf.uniform: need 1 <= lo < hi";
  of_points
    ~name:(Printf.sprintf "uniform[%d,%d]" lo hi)
    [ (float_of_int lo, 0.0); (float_of_int hi, 1.0) ]

let fixed bytes =
  if bytes < 1 then invalid_arg "Cdf.fixed: need a positive size";
  (* a hair's width of support keeps the x axis strictly increasing *)
  let b = float_of_int bytes in
  of_points ~name:(Printf.sprintf "fixed[%d]" bytes) [ (b, 0.0); (b +. 1e-6, 1.0) ]

let by_name = function
  | "websearch" -> websearch
  | "datamining" -> datamining
  | s -> invalid_arg ("Cdf.by_name: unknown distribution " ^ s)

(* Rescale the size axis so the distribution's shape survives at bench
   scale: demux experiments want thousands of flows per run, not
   multi-megabyte transfers. *)
let scale t ~factor ~min_bytes ~max_bytes =
  if factor <= 0. then invalid_arg "Cdf.scale: factor <= 0";
  if min_bytes < 1 || max_bytes <= min_bytes then
    invalid_arg "Cdf.scale: need 1 <= min_bytes < max_bytes";
  let lo = float_of_int min_bytes and hi = float_of_int max_bytes in
  let n = Array.length t.xs in
  let pts = ref [] and last = ref neg_infinity in
  for i = 0 to n - 1 do
    let x = Float.min hi (Float.max lo (t.xs.(i) *. factor)) in
    (* clamping can collapse consecutive points: keep x strictly rising *)
    let x = if x <= !last then !last +. 1. else x in
    last := x;
    pts := (x, t.ps.(i)) :: !pts
  done;
  of_points
    ~name:(Printf.sprintf "%s/%g" t.name factor)
    (List.rev !pts)
