(** Reliable-transport send side: sliding window, slow start + AIMD
    congestion control, adaptive RTO and loss recovery.

    The sender is a pure state machine over an abstract transmit hook: it
    never touches hosts, boards or links, which is what lets the
    {!Osiris_check} schedule explorer drive it directly. Segmentation
    happens at {!offer} ([seg_size]-byte segments, a short tail segment
    per offer); transmission is clocked by acks ({!on_ack}) and by the
    engine-scheduled retransmission timer.

    Congestion control: [cwnd] (in segments) starts at [init_cwnd], grows
    by one segment per new ack below [ssthresh] (slow start) and by
    [1/cwnd] above it (additive increase). Three duplicate acks {e or}
    [dup_ack_threshold] selective acks above the first hole trigger a
    fast retransmit with a multiplicative cut, fenced NewReno-style so
    each recovery episode cuts once. An ECE echo (the fabric's
    ECN-style mark) cuts multiplicatively at most once per [srtt]. A
    retransmission timeout collapses [cwnd] to one segment, doubles the
    timer (Karn's rule keeps the backoff until an unambiguous sample),
    and after [max_retries] consecutive timeouts without cumulative-ack
    progress the connection moves to [Failed] — the graceful-degradation
    path faults are expected to hit. *)

type config = {
  seg_size : int;  (** payload bytes per segment *)
  window : int;  (** flow-control window, segments (<= 33: SACK reach) *)
  init_cwnd : int;  (** initial congestion window, segments *)
  rto_init : Osiris_sim.Time.t;  (** RTO before the first RTT sample *)
  rto_min : Osiris_sim.Time.t;
  rto_max : Osiris_sim.Time.t;
  max_retries : int;
      (** consecutive timeouts without progress before [Failed] *)
  dup_ack_threshold : int;  (** dup/selective acks arming fast retransmit *)
  ecn : bool;  (** react to ECE echoes (marks are counted regardless) *)
}

val default_config : config
(** 1 KiB segments, window 32, initial cwnd 2, RTO 1 ms initial /
    200 µs floor / 100 ms ceiling, 10 retries, dup-ack threshold 3,
    ECN on. *)

type state = Active | Finished | Failed of string

type stats = {
  mutable offered_bytes : int;
  mutable acked_bytes : int;
  mutable unique_sent : int;  (** segments first transmissions *)
  mutable retransmits : int;
  mutable retransmit_bytes : int;
  mutable transmissions : int;  (** unique_sent + retransmits, always *)
  mutable fast_retransmits : int;
  mutable tail_probes : int;
      (** retransmissions sent by the tail-loss probe: after ~two round
          trips of ack silence with data outstanding, the highest
          unsacked segment is resent (no cwnd cut, no timer backoff) so
          a whole-window loss can rejoin the sack-driven fast path
          instead of waiting out a backed-off RTO *)
  mutable timeouts : int;
  mutable acks_received : int;
  mutable dup_acks : int;
  mutable ece_acks : int;  (** acks carrying the congestion echo *)
  mutable cwnd_cuts : int;
  mutable rtt_samples : int;
}

type t

val create :
  Osiris_sim.Engine.t ->
  ?name:string ->
  ?config:config ->
  ?on_state:(state -> unit) ->
  ?on_timeout:(unit -> unit) ->
  tx:(seq:int -> retransmit:bool -> Bytes.t -> unit) ->
  unit ->
  t
(** [tx] is called for every (re)transmission with the segment payload
    (header encoding is the glue layer's job). It runs in whatever
    context drove the sender — possibly a plain engine callback (the RTO
    timer) — so it must not block; enqueue and signal instead. [on_state]
    fires on the [Active -> Finished] and [Active -> Failed] edges.
    [on_timeout] fires at every retransmission-timeout expiry with data
    outstanding, before the recovery retransmission — the hook a
    multipath load balancer uses to stop trusting its cached paths. *)

val offer : t -> Bytes.t -> unit
(** Append data to the stream and transmit as far as the windows allow.
    Raises [Invalid_argument] after {!close} or once not [Active]. *)

val close : t -> unit
(** No more data will be offered; the sender moves to [Finished] once
    everything offered is cumulatively acked. *)

val on_ack : t -> ack:int -> sack:int -> ece:bool -> unit
(** Feed one acknowledgement: cumulative ack [ack], selective-ack bitmap
    [sack] (bit [i] = segment [ack+1+i] received), congestion echo
    [ece]. *)

val state : t -> state
val stats : t -> stats
val config : t -> config
val cwnd : t -> float
val ssthresh : t -> float
val rto : t -> Rto.t
val snd_una : t -> int
val snd_nxt : t -> int
val nsegs : t -> int
val outstanding : t -> int

val invariants : t -> string list
(** The transport-state-machine invariant probe, checkable at {e any}
    instant: sequence-pointer order, window bound, sacked-count
    consistency, transmission conservation
    ([transmissions = unique_sent + retransmits]), byte conservation
    ([acked + unacked = offered]), timer discipline (armed iff data
    outstanding while [Active]; disarmed once [Finished]/[Failed]).
    Empty when healthy. *)
