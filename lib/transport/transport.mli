(** One reliable unidirectional connection over the host stack.

    This is the glue tying the pure {!Sender} / {!Receiver} state
    machines to real hosts: data segments flow on one virtual circuit
    (src → dst), acknowledgements on a second (dst → src), each encoded
    by {!Wire} and carried as ordinary PDUs through driver, board, SAR
    and (for multi-host topologies) switches. The receive handlers hang
    off each host's {!Osiris_xkernel.Demux}; the congestion echo is read
    from {!Osiris_xkernel.Msg.marked}, which the driver sets when any
    cell of the PDU crossed a switch queue past its marking threshold.

    Because the sender's retransmission timer fires in a plain engine
    callback — where the driver's potentially-blocking [send] must not
    be called — each direction owns a {e pump} process: the state
    machines enqueue encoded PDUs synchronously and the pump performs
    the actual [Driver.send]s in order. *)

type t

val attach :
  ?name:string ->
  ?config:Sender.config ->
  ?on_state:(Sender.state -> unit) ->
  Osiris_sim.Engine.t ->
  src:Osiris_core.Host.t ->
  dst:Osiris_core.Host.t ->
  data_tx_vci:int ->
  data_rx_vci:int ->
  ack_tx_vci:int ->
  ack_rx_vci:int ->
  deliver:(Bytes.t -> unit) ->
  unit ->
  t
(** Wire a connection over already-bound VCIs (for {!Osiris_core.Network}
    pair topologies, where the two hosts are linked back to back and the
    data/ack VCIs coincide on both sides: bind them with
    [Board.bind_vci] first). [deliver] receives the byte stream in
    order, one segment at a time. Hosts must already be started. *)

val connect_via :
  ?name:string ->
  ?config:Sender.config ->
  ?on_state:(Sender.state -> unit) ->
  Osiris_core.Network.topology ->
  src:int ->
  dst:int ->
  deliver:(Bytes.t -> unit) ->
  unit ->
  t
(** Open the two virtual circuits through the fabric
    ({!Osiris_core.Network.open_vc} in each direction) and {!attach}
    over them. *)

val send : t -> Bytes.t -> unit
(** Offer bytes to the send side (segmented, windowed, retransmitted as
    needed). *)

val close : t -> unit
(** Mark the stream complete; the connection reaches
    [Sender.Finished] once every offered byte is acked. *)

val state : t -> Sender.state
val sender : t -> Sender.t
val receiver : t -> Receiver.t
val name : t -> string

val garbled : t -> int
(** PDUs that reached the connection's demux bindings but failed
    {!Wire} decoding (e.g. a corrupted cell header surviving the AAL
    checks and landing on the wrong VC). *)

val invariants : t -> string list
(** {!Sender.invariants} plus {!Receiver.invariants}. *)
