module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Signal = Osiris_sim.Signal
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Host = Osiris_core.Host
module Driver = Osiris_core.Driver
module Network = Osiris_core.Network

type stats = { mutable garbled : int }

type t = {
  eng : Engine.t;
  name : string;
  sender : Sender.t;
  receiver : Receiver.t;
  stats : stats;
}

(* The sender/receiver cores must never block (the RTO timer drives the
   sender from a plain engine callback, where [Driver.send] — which can
   sleep on a full transmit queue — is off limits). Each direction gets
   a pump: cores enqueue encoded PDUs here and a dedicated process
   performs the actual sends in order. *)
let make_pump eng host ~vci ~name =
  let q = Queue.create () in
  let nonempty = Signal.create eng in
  Process.spawn eng ~name (fun () ->
      let rec loop () =
        match Queue.take_opt q with
        | Some bytes ->
            let len = Bytes.length bytes in
            let m = Msg.alloc host.Host.vs ~len () in
            Msg.blit_into m ~off:0 ~src:bytes;
            Driver.send host.Host.driver ~vci ~from_user:false m;
            loop ()
        | None ->
            Signal.wait nonempty;
            loop ()
      in
      loop ());
  fun bytes ->
    Queue.add bytes q;
    Signal.broadcast nonempty

let attach ?name:(nm = "tp") ?(config = Sender.default_config)
    ?(on_state = fun _ -> ()) eng ~src ~dst ~data_tx_vci ~data_rx_vci
    ~ack_tx_vci ~ack_rx_vci ~deliver () =
  let stats = { garbled = 0 } in
  let data_pump = make_pump eng src ~vci:data_tx_vci ~name:(nm ^ ".data") in
  let ack_pump = make_pump eng dst ~vci:ack_tx_vci ~name:(nm ^ ".ack") in
  let sender =
    Sender.create eng ~name:(nm ^ ".snd") ~config ~on_state
      ~tx:(fun ~seq ~retransmit:_ payload ->
        data_pump (Wire.encode_data ~seq payload))
      ()
  in
  let receiver =
    Receiver.create ~name:(nm ^ ".rcv") ~window:config.Sender.window
      ~deliver:(fun ~seq:_ payload -> deliver payload)
      ~tx_ack:(fun ~ack ~sack ~ece ->
        ack_pump (Wire.encode_ack ~ack ~sack ~ece))
      ()
  in
  Demux.bind dst.Host.demux ~vci:data_rx_vci ~name:(nm ^ ".data")
    (fun ~vci:_ msg ->
      let b = Msg.read_all msg in
      let marked = Msg.marked msg in
      Msg.dispose msg;
      match Wire.decode_data b with
      | Ok (seq, payload) -> Receiver.on_data receiver ~seq ~marked payload
      | Error _ -> stats.garbled <- stats.garbled + 1);
  Demux.bind src.Host.demux ~vci:ack_rx_vci ~name:(nm ^ ".ack")
    (fun ~vci:_ msg ->
      let b = Msg.read_all msg in
      Msg.dispose msg;
      match Wire.decode_ack b with
      | Ok (ack, sack, ece) -> Sender.on_ack sender ~ack ~sack ~ece
      | Error _ -> stats.garbled <- stats.garbled + 1);
  { eng; name = nm; sender; receiver; stats }

let connect_via ?name ?config ?on_state topo ~src ~dst ~deliver () =
  let data = Network.open_vc topo ~src ~dst in
  let ack = Network.open_vc topo ~src:dst ~dst:src in
  let src_host = Network.host topo src in
  attach ?name ?config ?on_state src_host.Host.eng ~src:src_host
    ~dst:(Network.host topo dst)
    ~data_tx_vci:data.Network.src_vci ~data_rx_vci:data.Network.dst_vci
    ~ack_tx_vci:ack.Network.src_vci ~ack_rx_vci:ack.Network.dst_vci ~deliver
    ()

let send t data = Sender.offer t.sender data
let close t = Sender.close t.sender
let state t = Sender.state t.sender
let sender t = t.sender
let receiver t = t.receiver
let name t = t.name
let garbled t = t.stats.garbled

let invariants t =
  Sender.invariants t.sender @ Receiver.invariants t.receiver
