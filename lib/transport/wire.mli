(** Wire format of the reliable transport.

    Data segments travel on the forward VC as an 8-byte header ([magic],
    flags, 30-bit sequence number) followed by the payload.
    Acknowledgements travel on the reverse VC as a fixed 12-byte PDU:
    cumulative ack [ack] (the next sequence number the receiver expects),
    a 32-bit selective-ack bitmap whose bit [i] reports segment
    [ack + 1 + i] as buffered out of order, and an ECE flag echoing the
    fabric's congestion mark ({!Osiris_xkernel.Msg.marked}) of the PDU
    being acknowledged.

    Both PDU types start with a magic byte so a PDU landing on the wrong
    VC (a corrupted cell header that survived the AAL checks) is rejected
    by [decode_*] instead of being misparsed. *)

val data_header_size : int
val ack_size : int

val encode_data : seq:int -> Bytes.t -> Bytes.t
val decode_data : Bytes.t -> (int * Bytes.t, string) result
(** [Ok (seq, payload)]. *)

val encode_ack : ack:int -> sack:int -> ece:bool -> Bytes.t
val decode_ack : Bytes.t -> (int * int * bool, string) result
(** [Ok (ack, sack_bitmap, ece)]. *)

val encode_ack_mp : ack:int -> sack:int -> ece:bool -> entropy:int -> Bytes.t
(** Multipath ack: the same 12-byte PDU with [entropy] (the path index
    the acknowledged PDU arrived on, 0–255) echoed in byte 10 — the
    unipath codec writes zero there, so the two forms interoperate. *)

val decode_ack_mp : Bytes.t -> (int * int * bool * int, string) result
(** [Ok (ack, sack_bitmap, ece, entropy)]. *)
