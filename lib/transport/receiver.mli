(** Reliable-transport receive side: in-order delivery with a bounded
    out-of-order buffer, cumulative + selective acks, congestion echo.

    Like {!Sender} this is a pure state machine over abstract hooks, so
    tests and the schedule explorer can drive it without a host stack.
    Segments at [rcv_nxt] are delivered (in order) immediately; segments
    ahead of it are buffered up to [window]; every arrival is answered
    with an ack carrying the cumulative edge, a 32-bit selective-ack
    bitmap over the buffer, and the ECE bit echoing whether {e this}
    PDU crossed a congested switch queue
    ({!Osiris_xkernel.Msg.marked}). *)

type stats = {
  mutable segs_received : int;
  mutable delivered_segs : int;
  mutable delivered_bytes : int;
  mutable duplicates : int;  (** below [rcv_nxt] or already buffered *)
  mutable out_of_window : int;  (** beyond [rcv_nxt + window]; dropped *)
  mutable marked_pdus : int;  (** arrivals carrying the congestion mark *)
  mutable acks_sent : int;
}

type t

val create :
  ?name:string ->
  window:int ->
  deliver:(seq:int -> Bytes.t -> unit) ->
  tx_ack:(ack:int -> sack:int -> ece:bool -> unit) ->
  unit ->
  t

val on_data : t -> seq:int -> marked:bool -> Bytes.t -> unit

val rcv_nxt : t -> int
val buffered : t -> int
val stats : t -> stats

val invariants : t -> string list
(** Checkable at any instant: [delivered_segs = rcv_nxt], buffer bounded
    by [window] and strictly inside [(rcv_nxt, rcv_nxt + window)]. Empty
    when healthy. *)
