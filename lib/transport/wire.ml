(* Two PDU types ride the fabric: data segments (8-byte header + payload)
   on the forward VC and fixed-size acknowledgements on the reverse VC.
   Each carries a magic byte so that a PDU demultiplexed onto the wrong
   VC (e.g. by a corrupted cell header that still passed the AAL check)
   is rejected instead of being misread. *)

let data_header_size = 8
let ack_size = 12
let data_magic = 0xD5
let ack_magic = 0xAC
let flag_ece = 0x01

let put_u32 b off v =
  Bytes.set_uint8 b off ((v lsr 24) land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 3) (v land 0xff)

let get_u32 b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let encode_data ~seq payload =
  if seq < 0 || seq > 0x3FFFFFFF then invalid_arg "Wire.encode_data: seq";
  let b = Bytes.create (data_header_size + Bytes.length payload) in
  Bytes.set_uint8 b 0 data_magic;
  Bytes.set_uint8 b 1 0;
  put_u32 b 2 seq;
  Bytes.set_uint8 b 6 0;
  Bytes.set_uint8 b 7 0;
  Bytes.blit payload 0 b data_header_size (Bytes.length payload);
  b

let decode_data b =
  if Bytes.length b < data_header_size then Error "data pdu too short"
  else if Bytes.get_uint8 b 0 <> data_magic then Error "bad data magic"
  else
    let seq = get_u32 b 2 in
    let payload =
      Bytes.sub b data_header_size (Bytes.length b - data_header_size)
    in
    Ok (seq, payload)

let encode_ack ~ack ~sack ~ece =
  if ack < 0 || ack > 0x3FFFFFFF then invalid_arg "Wire.encode_ack: ack";
  let b = Bytes.create ack_size in
  Bytes.set_uint8 b 0 ack_magic;
  Bytes.set_uint8 b 1 (if ece then flag_ece else 0);
  put_u32 b 2 ack;
  put_u32 b 6 (sack land 0xFFFFFFFF);
  Bytes.set_uint8 b 10 0;
  Bytes.set_uint8 b 11 0;
  b

(* Multipath variant: same 12-byte ack PDU with the path entropy echoed
   in byte 10 (zero padding in the unipath transport, so both codecs
   accept both forms). *)
let encode_ack_mp ~ack ~sack ~ece ~entropy =
  if entropy < 0 || entropy > 0xff then
    invalid_arg "Wire.encode_ack_mp: entropy";
  let b = encode_ack ~ack ~sack ~ece in
  Bytes.set_uint8 b 10 entropy;
  b

let decode_ack b =
  if Bytes.length b <> ack_size then Error "ack pdu wrong size"
  else if Bytes.get_uint8 b 0 <> ack_magic then Error "bad ack magic"
  else
    let flags = Bytes.get_uint8 b 1 in
    Ok (get_u32 b 2, get_u32 b 6, flags land flag_ece <> 0)

let decode_ack_mp b =
  match decode_ack b with
  | Error e -> Error e
  | Ok (ack, sack, ece) -> Ok (ack, sack, ece, Bytes.get_uint8 b 10)
