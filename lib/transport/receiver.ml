type stats = {
  mutable segs_received : int;
  mutable delivered_segs : int;
  mutable delivered_bytes : int;
  mutable duplicates : int;
  mutable out_of_window : int;
  mutable marked_pdus : int;
  mutable acks_sent : int;
}

type t = {
  name : string;
  window : int;
  deliver : seq:int -> Bytes.t -> unit;
  tx_ack : ack:int -> sack:int -> ece:bool -> unit;
  mutable rcv_nxt : int;
  buf : (int, Bytes.t) Hashtbl.t; (* out-of-order segments > rcv_nxt *)
  stats : stats;
}

let create ?(name = "rcv") ~window ~deliver ~tx_ack () =
  if window < 1 then invalid_arg "Receiver.create: window < 1";
  {
    name;
    window;
    deliver;
    tx_ack;
    rcv_nxt = 0;
    buf = Hashtbl.create 64;
    stats =
      {
        segs_received = 0;
        delivered_segs = 0;
        delivered_bytes = 0;
        duplicates = 0;
        out_of_window = 0;
        marked_pdus = 0;
        acks_sent = 0;
      };
  }

let rcv_nxt t = t.rcv_nxt
let stats t = t.stats
let buffered t = Hashtbl.length t.buf

(* Every data arrival — including duplicates — is answered with one ack
   carrying the cumulative edge, the selective-ack bitmap over the
   out-of-order buffer, and the congestion echo of exactly this PDU. *)
let on_data t ~seq ~marked payload =
  t.stats.segs_received <- t.stats.segs_received + 1;
  if marked then t.stats.marked_pdus <- t.stats.marked_pdus + 1;
  if seq < t.rcv_nxt || Hashtbl.mem t.buf seq then
    t.stats.duplicates <- t.stats.duplicates + 1
  else if seq >= t.rcv_nxt + t.window then
    (* The sender's window never outruns ours (same [window] config), so
       this only fires on garbage sequence numbers. Drop; the cumulative
       ack below still tells the sender where we stand. *)
    t.stats.out_of_window <- t.stats.out_of_window + 1
  else begin
    Hashtbl.replace t.buf seq payload;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt t.buf t.rcv_nxt with
      | None -> continue := false
      | Some p ->
          Hashtbl.remove t.buf t.rcv_nxt;
          t.stats.delivered_segs <- t.stats.delivered_segs + 1;
          t.stats.delivered_bytes <- t.stats.delivered_bytes + Bytes.length p;
          t.deliver ~seq:t.rcv_nxt p;
          t.rcv_nxt <- t.rcv_nxt + 1
    done
  end;
  let sack = ref 0 in
  for i = 0 to 31 do
    if Hashtbl.mem t.buf (t.rcv_nxt + 1 + i) then sack := !sack lor (1 lsl i)
  done;
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  t.tx_ack ~ack:t.rcv_nxt ~sack:!sack ~ece:marked

let invariants t =
  let errs = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if t.stats.delivered_segs <> t.rcv_nxt then
    bad "%s: delivered_segs=%d <> rcv_nxt=%d" t.name t.stats.delivered_segs
      t.rcv_nxt;
  if Hashtbl.length t.buf > t.window then
    bad "%s: %d buffered segments exceed window %d" t.name
      (Hashtbl.length t.buf) t.window;
  Hashtbl.iter
    (fun q _ ->
      if q <= t.rcv_nxt || q >= t.rcv_nxt + t.window then
        bad "%s: buffered seq %d outside (rcv_nxt=%d, +window=%d)" t.name q
          t.rcv_nxt t.window)
    t.buf;
  List.rev !errs
