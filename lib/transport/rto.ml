module Time = Osiris_sim.Time

(* RFC 6298 retransmission-timeout estimator with Karn's algorithm.
   Times are engine nanoseconds; the integer shifts implement the
   classic 1/8 (srtt gain) and 1/4 (rttvar gain) filters. *)

type t = {
  rto_init : Time.t;
  rto_min : Time.t;
  rto_max : Time.t;
  mutable srtt : Time.t; (* < 0 until the first sample *)
  mutable rttvar : Time.t;
  mutable base : Time.t; (* un-backed-off RTO *)
  mutable shift : int; (* backoff exponent *)
  mutable nsamples : int;
}

let create ~init ~min:rto_min ~max:rto_max =
  if rto_min > init || init > rto_max then
    invalid_arg "Rto.create: need min <= init <= max";
  { rto_init = init; rto_min; rto_max; srtt = -1; rttvar = 0; base = init;
    shift = 0; nsamples = 0 }

let clamp t v = max t.rto_min (min t.rto_max v)

let sample t rtt =
  let rtt = max rtt 1 in
  if t.srtt < 0 then begin
    t.srtt <- rtt;
    t.rttvar <- rtt / 2
  end
  else begin
    let err = abs (t.srtt - rtt) in
    t.rttvar <- ((3 * t.rttvar) + err) / 4;
    t.srtt <- ((7 * t.srtt) + rtt) / 8
  end;
  t.base <- clamp t (t.srtt + max (4 * t.rttvar) 1);
  (* A fresh sample of an un-retransmitted segment ends any backoff
     episode (Karn's algorithm: ambiguous samples never got here). *)
  t.shift <- 0;
  t.nsamples <- t.nsamples + 1

let current t =
  let shift = min t.shift 16 in
  min t.rto_max (t.base lsl shift)

let backoff t = if t.shift < 16 then t.shift <- t.shift + 1
let srtt t = if t.srtt < 0 then None else Some t.srtt
let rttvar t = t.rttvar
let samples t = t.nsamples
let backoff_shift t = t.shift
