module Engine = Osiris_sim.Engine
module Time = Osiris_sim.Time
module Trace = Osiris_sim.Trace

type config = {
  seg_size : int;
  window : int;
  init_cwnd : int;
  rto_init : Time.t;
  rto_min : Time.t;
  rto_max : Time.t;
  max_retries : int;
  dup_ack_threshold : int;
  ecn : bool;
}

let default_config =
  {
    seg_size = 1024;
    window = 32;
    init_cwnd = 2;
    rto_init = Time.ms 1;
    rto_min = Time.us 200;
    rto_max = Time.ms 100;
    max_retries = 10;
    dup_ack_threshold = 3;
    ecn = true;
  }

type state = Active | Finished | Failed of string

type seg = {
  mutable payload : Bytes.t;
  len : int; (* payload length, kept after the acked payload is dropped *)
  mutable tx_count : int;
  mutable sacked : bool;
  mutable last_tx : Time.t;
}

type stats = {
  mutable offered_bytes : int;
  mutable acked_bytes : int;
  mutable unique_sent : int;
  mutable retransmits : int;
  mutable retransmit_bytes : int;
  mutable transmissions : int;
  mutable fast_retransmits : int;
  mutable tail_probes : int;
  mutable timeouts : int;
  mutable acks_received : int;
  mutable dup_acks : int;
  mutable ece_acks : int;
  mutable cwnd_cuts : int;
  mutable rtt_samples : int;
}

(* Congestion state lives in its own all-float record: a float field in
   the mixed record [t] would be boxed, costing one minor allocation per
   store — and [on_ack] stores cwnd on every ack. An all-float record is
   flat (unboxed fields), so the per-ack window arithmetic allocates
   nothing. Numerics are bit-identical: same IEEE doubles, one less
   indirection. *)
type cc = { mutable cwnd : float; mutable ssthresh : float (* segments *) }

type t = {
  eng : Engine.t;
  cfg : config;
  name : string;
  tx : seq:int -> retransmit:bool -> Bytes.t -> unit;
  on_state : state -> unit;
  on_timeout : unit -> unit;
  rto : Rto.t;
  mutable segs : seg option array;
  mutable nsegs : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable sacked_count : int; (* sacked segments in [snd_una, snd_nxt) *)
  cc : cc;
  mutable dupacks : int;
  mutable recover : int; (* NewReno recovery fence: snd_nxt at last cut *)
  mutable ece_hold_until : Time.t; (* no second ECE cut before this *)
  mutable rto_count : int; (* consecutive timeouts without progress *)
  mutable timer : Engine.handle option;
  mutable timer_armed : bool;
  mutable probe : Engine.handle option;
  mutable probe_armed : bool;
  mutable probe_pending : bool;
      (* a tail probe went out and no cumulative ack has advanced since:
         don't probe again, let the (backed-off) RTO be the backstop *)
  mutable closed : bool;
  mutable state : state;
  stats : stats;
}

let state t = t.state
let stats t = t.stats
let cwnd t = t.cc.cwnd
let ssthresh t = t.cc.ssthresh
let rto t = t.rto
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let nsegs t = t.nsegs

let outstanding t = t.snd_nxt - t.snd_una

let seg t q =
  match t.segs.(q) with
  | Some s -> s
  | None ->
      (invalid_arg (Printf.sprintf "Sender.%s: no segment %d" t.name q)
      [@osiris.alloc_ok "cold error path: raises, never returns"])

(* Timer management. A cancelled handle stays in the engine's queue until
   drained, so [Engine.reschedule] cannot re-arm it; each arming schedules
   a fresh event and [disarm] cancels the pending one. *)
let rec arm t =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    (t.timer <-
       Some
         (Engine.schedule t.eng ~delay:(Rto.current t.rto)
            (fun () -> on_rto t))
    [@osiris.alloc_ok
      "arming allocates closure + handle + option: a cancelled handle \
       stays queued until drained, so the engine's reschedule cannot \
       reuse it — see the comment above; bounded by one arming per ack"])
  end

and restart t =
  disarm t;
  arm t

and disarm t =
  if t.timer_armed then begin
    t.timer_armed <- false;
    match t.timer with
    | Some h ->
        Engine.cancel h;
        t.timer <- None
    | None -> ()
  end

(* Tail-loss probe: with a window of one or two segments, losing the
   whole window leaves nothing in flight to draw a selective ack, so
   fast retransmission can never trigger and the connection sits out a
   full (often backed-off) RTO — the dominant cost of operating against
   a queue holding barely one PDU. After ~two round trips of silence,
   resend the highest unsacked outstanding segment without touching
   cwnd, ssthresh or the timer backoff: if it lands, its ack (or the
   sack it draws above a surviving hole) puts recovery back on the fast
   path; if the silence was real persistent congestion, the RTO still
   fires as before. One probe per silence episode. *)
and probe_timeout t =
  (* Three quarters of the adaptive RTO: anything keyed to srtt alone
     fires spuriously while the bottleneck queue is growing (the RTT a
     probe must outwait is the one the acks will have, not the one the
     samples had), and every spurious probe is a wasted retransmission.
     The RTO already carries the variance margin; the probe just
     undercuts it enough to win the race when the silence is real. *)
  Rto.current t.rto * 3 / 4

and arm_probe t =
  disarm_probe t;
  (* Only worth arming when the pipe is too thin for sack-driven
     recovery: with more unsacked segments in flight than the
     duplicate-ack threshold, any real loss will draw enough acks to
     trigger fast retransmission, and a probe could only fire
     spuriously (e.g. while a deep queue inflates the RTT faster than
     the estimator tracks it). *)
  if
    t.state = Active
    && (not t.probe_pending)
    && t.snd_una < t.snd_nxt
    && t.snd_nxt - t.snd_una - t.sacked_count <= t.cfg.dup_ack_threshold
  then begin
    t.probe_armed <- true;
    (t.probe <-
       Some
         (Engine.schedule t.eng ~delay:(probe_timeout t)
            (fun () -> on_probe t))
    [@osiris.alloc_ok
      "probe arming: closure + handle + option, same engine constraint \
       as the RTO timer; only taken on thin-pipe flows"])
  end

and disarm_probe t =
  if t.probe_armed then begin
    t.probe_armed <- false;
    match t.probe with
    | Some h ->
        Engine.cancel h;
        t.probe <- None
    | None -> ()
  end

and on_probe t =
  t.probe_armed <- false;
  if t.state = Active && t.snd_una < t.snd_nxt then begin
    let q = ref (t.snd_nxt - 1) in
    while !q > t.snd_una && (seg t !q).sacked do
      decr q
    done;
    if not (seg t !q).sacked then begin
      t.probe_pending <- true;
      t.stats.tail_probes <- t.stats.tail_probes + 1;
      Trace.emitf Trace.Protocol ~now:(Engine.now t.eng)
        "%s: tail-loss probe, seg %d" t.name !q;
      transmit t !q ~retransmit:true
    end
  end

and transmit t q ~retransmit =
  let s = seg t q in
  s.tx_count <- s.tx_count + 1;
  s.last_tx <- Engine.now t.eng;
  t.stats.transmissions <- t.stats.transmissions + 1;
  if retransmit then begin
    t.stats.retransmits <- t.stats.retransmits + 1;
    t.stats.retransmit_bytes <- t.stats.retransmit_bytes + s.len
  end
  else t.stats.unique_sent <- t.stats.unique_sent + 1;
  (t.tx ~seq:q ~retransmit s.payload
  [@osiris.alloc_ok
    "handoff to the wired transmit callback: what the datapath below \
     allocates is its own hot-set entry's business"])

(* Fill the window: transmit new segments while the flow-control window
   and the congestion window both have room. Tail recursion instead of a
   [ref] flag: [ref] allocates a block per call and pump runs on every
   ack (R5-hot via [on_ack]). *)
and pump t = if t.state = Active then pump_loop t

and pump_loop t =
  let pipe = t.snd_nxt - t.snd_una - t.sacked_count in
  if
    t.snd_nxt < t.nsegs
    && t.snd_nxt - t.snd_una < t.cfg.window
    && float_of_int pipe < t.cc.cwnd
  then begin
    transmit t t.snd_nxt ~retransmit:false;
    t.snd_nxt <- t.snd_nxt + 1;
    arm t;
    arm_probe t;
    pump_loop t
  end

and finish t =
  disarm t;
  disarm_probe t;
  t.state <- Finished;
  ((Trace.emitf Trace.Protocol ~now:(Engine.now t.eng)
      "%s: finished (%d segs)" t.name t.nsegs;
    t.on_state Finished)
  [@osiris.alloc_ok
    "connection teardown: runs once per connection, never per ack"])

and fail t reason =
  disarm t;
  disarm_probe t;
  let st = Failed reason in
  t.state <- st;
  Trace.emitf Trace.Protocol ~now:(Engine.now t.eng) "%s: FAILED: %s" t.name
    reason;
  t.on_state st

(* Retransmission timeout: multiplicative decrease to one segment,
   back off the timer, resend the oldest unacked segment. [rto_count]
   only resets when the cumulative ack advances, so [max_retries]
   consecutive fruitless timeouts abort the connection. *)
and on_rto t =
  t.timer_armed <- false;
  disarm_probe t;
  if t.state = Active && t.snd_una < t.snd_nxt then begin
    t.rto_count <- t.rto_count + 1;
    t.stats.timeouts <- t.stats.timeouts + 1;
    t.on_timeout ();
    if t.rto_count > t.cfg.max_retries then
      fail t
        (Printf.sprintf "no progress after %d retransmission timeouts"
           t.cfg.max_retries)
    else begin
      let pipe = float_of_int (t.snd_nxt - t.snd_una - t.sacked_count) in
      t.cc.ssthresh <- Float.max 2.0 (pipe /. 2.0);
      t.cc.cwnd <- 1.0;
      t.stats.cwnd_cuts <- t.stats.cwnd_cuts + 1;
      Rto.backoff t.rto;
      t.recover <- t.snd_nxt;
      t.dupacks <- 0;
      transmit t t.snd_una ~retransmit:true;
      arm t
    end
  end

(* Multiplicative decrease. Loss recovery restarts from [ssthresh]
   (NewReno), but the window itself may fall to one segment: with a
   shallow bottleneck queue and many senders, even one segment per
   sender can overfill the fabric, and a floor of two would pin the
   aggregate above the queue capacity no matter how hard ECN pushes
   back. *)
let cut_cwnd t =
  t.cc.ssthresh <- Float.max 2.0 (t.cc.cwnd /. 2.0);
  t.cc.cwnd <- Float.max 1.0 (t.cc.cwnd /. 2.0);
  t.stats.cwnd_cuts <- t.stats.cwnd_cuts + 1

let create eng ?(name = "snd") ?(config = default_config)
    ?(on_state = fun _ -> ()) ?(on_timeout = fun () -> ()) ~tx () =
  if config.seg_size < 1 then invalid_arg "Sender.create: seg_size < 1";
  if config.window < 1 then invalid_arg "Sender.create: window < 1";
  if config.init_cwnd < 1 || config.init_cwnd > config.window then
    invalid_arg "Sender.create: init_cwnd out of range";
  if config.dup_ack_threshold < 1 then
    invalid_arg "Sender.create: dup_ack_threshold < 1";
  if config.max_retries < 1 then invalid_arg "Sender.create: max_retries < 1";
  {
    eng;
    cfg = config;
    name;
    tx;
    on_state;
    on_timeout;
    rto = Rto.create ~init:config.rto_init ~min:config.rto_min
        ~max:config.rto_max;
    segs = Array.make 64 None;
    nsegs = 0;
    snd_una = 0;
    snd_nxt = 0;
    sacked_count = 0;
    cc =
      {
        cwnd = float_of_int config.init_cwnd;
        ssthresh = float_of_int config.window;
      };
    dupacks = 0;
    recover = 0;
    ece_hold_until = Time.zero;
    rto_count = 0;
    timer = None;
    timer_armed = false;
    probe = None;
    probe_armed = false;
    probe_pending = false;
    closed = false;
    state = Active;
    stats =
      {
        offered_bytes = 0;
        acked_bytes = 0;
        unique_sent = 0;
        retransmits = 0;
        retransmit_bytes = 0;
        transmissions = 0;
        fast_retransmits = 0;
        tail_probes = 0;
        timeouts = 0;
        acks_received = 0;
        dup_acks = 0;
        ece_acks = 0;
        cwnd_cuts = 0;
        rtt_samples = 0;
      };
  }

let config t = t.cfg

let add_seg t payload =
  if t.nsegs = Array.length t.segs then begin
    let bigger = Array.make (2 * t.nsegs) None in
    Array.blit t.segs 0 bigger 0 t.nsegs;
    t.segs <- bigger
  end;
  t.segs.(t.nsegs) <-
    Some
      {
        payload;
        len = Bytes.length payload;
        tx_count = 0;
        sacked = false;
        last_tx = Time.zero;
      };
  t.nsegs <- t.nsegs + 1

let offer t data =
  if t.closed then invalid_arg "Sender.offer: already closed";
  if t.state <> Active then invalid_arg "Sender.offer: not active";
  let len = Bytes.length data in
  t.stats.offered_bytes <- t.stats.offered_bytes + len;
  let off = ref 0 in
  while !off < len do
    let n = min t.cfg.seg_size (len - !off) in
    add_seg t (Bytes.sub data !off n);
    off := !off + n
  done;
  pump t

let close t =
  if not t.closed then begin
    t.closed <- true;
    if t.state = Active && t.snd_una >= t.nsegs then finish t
  end

(* Acknowledgement processing: cumulative advance (with Karn-filtered RTT
   sampling and additive increase), SACK bookkeeping, once-per-RTT ECE
   multiplicative decrease, and NewReno-fenced fast retransmit driven by
   either a duplicate-ack run or selective acks above the hole. *)
let on_ack t ~ack ~sack ~ece =
  if t.state = Active then begin
    t.stats.acks_received <- t.stats.acks_received + 1;
    if ece then begin
      t.stats.ece_acks <- t.stats.ece_acks + 1;
      if t.cfg.ecn && Engine.now t.eng >= t.ece_hold_until then begin
        cut_cwnd t;
        let hold =
          match
            (Rto.srtt t.rto
            [@osiris.alloc_ok
              "option box on the once-per-RTT ECE cut path, not per ack"])
          with
          | Some s -> s
          | None -> t.cfg.rto_init
        in
        t.ece_hold_until <- Engine.now t.eng + hold
      end
    end;
    let ack = min ack t.snd_nxt in
    if ack > t.snd_una then begin
      (* Karn: sample only segments transmitted exactly once. *)
      (match t.segs.(ack - 1) with
      | Some s when s.tx_count = 1 ->
          Rto.sample t.rto (Engine.now t.eng - s.last_tx);
          t.stats.rtt_samples <- t.stats.rtt_samples + 1
      | _ -> ());
      (* [newly] is just the cumulative advance — no [ref] counter (a
         [ref] is a heap block, and this runs per ack). *)
      let newly = ack - t.snd_una in
      for q = t.snd_una to ack - 1 do
        let s = seg t q in
        if s.sacked then begin
          s.sacked <- false;
          t.sacked_count <- t.sacked_count - 1
        end;
        t.stats.acked_bytes <- t.stats.acked_bytes + s.len;
        s.payload <- Bytes.empty
      done;
      t.snd_una <- ack;
      t.dupacks <- 0;
      t.rto_count <- 0;
      t.probe_pending <- false;
      (* No growth inside an ECE hold window: the fabric signalled
         congestion within the last round-trip, and against a queue of a
         dozen cells the overshoot from even one extra segment per
         sender is what tips marking into loss. Probing resumes after a
         mark-free round-trip. *)
      if t.cfg.ecn && Engine.now t.eng < t.ece_hold_until then ()
      else begin
        if t.cc.cwnd < t.cc.ssthresh then
          (* slow start *)
          t.cc.cwnd <- Float.min (t.cc.cwnd +. float_of_int newly) t.cc.ssthresh
        else
          (* congestion avoidance: ~one segment per window per RTT *)
          t.cc.cwnd <- t.cc.cwnd +. (float_of_int newly /. t.cc.cwnd)
      end;
      t.cc.cwnd <- Float.min t.cc.cwnd (float_of_int t.cfg.window);
      (* NewReno partial ack: an advance that stops short of [recover]
         exposes the next hole of the same loss episode. Resend it now —
         waiting would recover a burst loss one segment per (backed-off)
         timeout, since nothing behind a dead window ever produces a
         duplicate ack. No further cwnd cut: one episode, one cut. *)
      if
        t.snd_una < t.recover
        && t.snd_una < t.snd_nxt
        && not (seg t t.snd_una).sacked
      then begin
        transmit t t.snd_una ~retransmit:true;
        restart t
      end
    end
    else if ack = t.snd_una && t.snd_una < t.snd_nxt then begin
      t.dupacks <- t.dupacks + 1;
      t.stats.dup_acks <- t.stats.dup_acks + 1
    end;
    for i = 0 to 31 do
      if sack land (1 lsl i) <> 0 then begin
        let q = ack + 1 + i in
        if q >= t.snd_una && q < t.snd_nxt then begin
          let s = seg t q in
          if not s.sacked then begin
            s.sacked <- true;
            t.sacked_count <- t.sacked_count + 1
          end
        end
      end
    done;
    if t.state = Active then begin
      let hole_sacked =
        t.snd_una < t.snd_nxt && (seg t t.snd_una).sacked
      in
      (* Early retransmit (RFC 5827 in spirit): when fewer segments are
         outstanding than the duplicate-ack threshold needs, a window's
         worth of duplicates can never accumulate and every small-window
         loss would wait out a full RTO. Shrink the threshold to
         outstanding - 1 (floor one). The fabric preserves order within
         a VC, so even a single ack above the hole is proof of loss, not
         reordering. *)
      let dup_thr =
        min t.cfg.dup_ack_threshold (max 1 (t.snd_nxt - t.snd_una - 1))
      in
      if
        t.snd_una < t.snd_nxt
        && (not hole_sacked)
        && t.snd_una >= t.recover
        && (t.dupacks >= dup_thr || t.sacked_count >= dup_thr)
      then begin
        t.stats.fast_retransmits <- t.stats.fast_retransmits + 1;
        cut_cwnd t;
        t.recover <- t.snd_nxt;
        t.dupacks <- 0;
        transmit t t.snd_una ~retransmit:true;
        restart t
      end;
      if t.closed && t.snd_una >= t.nsegs then finish t
      else begin
        if t.snd_una = t.snd_nxt then begin
          disarm t;
          disarm_probe t
        end
        else begin
          restart t;
          arm_probe t
        end;
        pump t
      end
    end
  end

let invariants t =
  let errs = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if not (0 <= t.snd_una && t.snd_una <= t.snd_nxt && t.snd_nxt <= t.nsegs)
  then
    bad "%s: sequence order broken: una=%d nxt=%d nsegs=%d" t.name t.snd_una
      t.snd_nxt t.nsegs;
  if t.snd_nxt - t.snd_una > t.cfg.window then
    bad "%s: outstanding %d exceeds window %d" t.name (t.snd_nxt - t.snd_una)
      t.cfg.window;
  let sacked = ref 0 in
  for q = t.snd_una to t.snd_nxt - 1 do
    match t.segs.(q) with
    | Some s -> if s.sacked then incr sacked
    | None -> bad "%s: segment %d in window has no record" t.name q
  done;
  if !sacked <> t.sacked_count then
    bad "%s: sacked_count=%d but %d segments are sacked" t.name t.sacked_count
      !sacked;
  if t.stats.transmissions <> t.stats.unique_sent + t.stats.retransmits then
    bad "%s: transmissions=%d <> unique=%d + retransmits=%d" t.name
      t.stats.transmissions t.stats.unique_sent t.stats.retransmits;
  if t.stats.unique_sent <> t.snd_nxt then
    bad "%s: unique_sent=%d <> snd_nxt=%d" t.name t.stats.unique_sent t.snd_nxt;
  let unacked = ref 0 in
  for q = t.snd_una to t.nsegs - 1 do
    match t.segs.(q) with
    | Some s -> unacked := !unacked + s.len
    | None -> bad "%s: segment %d has no record" t.name q
  done;
  if t.stats.acked_bytes + !unacked <> t.stats.offered_bytes then
    bad "%s: byte conservation: acked=%d + unacked=%d <> offered=%d" t.name
      t.stats.acked_bytes !unacked t.stats.offered_bytes;
  (match t.state with
  | Finished ->
      if t.snd_una <> t.nsegs then
        bad "%s: Finished with una=%d < nsegs=%d" t.name t.snd_una t.nsegs;
      if t.timer_armed || t.probe_armed then
        bad "%s: Finished with a timer armed" t.name
  | Failed _ ->
      if t.timer_armed || t.probe_armed then
        bad "%s: Failed with a timer armed" t.name
  | Active ->
      if t.cc.cwnd < 1.0 then bad "%s: cwnd %.2f < 1" t.name t.cc.cwnd;
      if t.snd_una < t.snd_nxt && not t.timer_armed then
        bad "%s: data outstanding but no timer armed" t.name;
      if t.rto_count > t.cfg.max_retries then
        bad "%s: rto_count %d exceeds max_retries while Active" t.name
          t.rto_count);
  List.rev !errs
