(** Adaptive retransmission timeout (RFC 6298 + Karn's algorithm).

    [srtt] and [rttvar] follow the classic exponentially weighted filters
    (gains 1/8 and 1/4); the timeout is [srtt + 4*rttvar] clamped to
    [\[min, max\]]. Until the first sample the timeout is [init].

    Karn's algorithm is split across the caller and this module: the
    {e caller} must only feed {!sample} round-trip times of segments
    transmitted exactly once (a retransmitted segment's ack is ambiguous);
    this module keeps the exponential {!backoff} applied by timeouts in
    force until the next unambiguous sample arrives. *)

type t

val create : init:Osiris_sim.Time.t -> min:Osiris_sim.Time.t ->
  max:Osiris_sim.Time.t -> t

val sample : t -> Osiris_sim.Time.t -> unit
(** Fold in one unambiguous RTT measurement; resets any backoff. *)

val current : t -> Osiris_sim.Time.t
(** The timeout to arm now, backoff included. *)

val backoff : t -> unit
(** Double the timeout (cap at [max]); called on each retransmission
    timeout. *)

val srtt : t -> Osiris_sim.Time.t option
val rttvar : t -> Osiris_sim.Time.t
val samples : t -> int
val backoff_shift : t -> int
