open Osiris_sim
module Cpu = Osiris_os.Cpu
module Cache = Osiris_cache.Data_cache
module Wiring = Osiris_os.Wiring
module Board = Osiris_board.Board
module Desc = Osiris_board.Desc
module Desc_queue = Osiris_board.Desc_queue
module Vspace = Osiris_mem.Vspace
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Sar = Osiris_atm.Sar
module Metrics = Osiris_obs.Metrics
module Stats = Osiris_util.Stats

type invalidation = Lazy | Eager | Eager_full

type stats = {
  mutable pdus_sent : int;
  mutable pdus_received : int;
  mutable bytes_received : int;
  mutable aborted_chains : int;
  mutable timeout_aborts : int;
  mutable crc_drops : int;
  mutable undeliverable : int;
  mutable tx_full_stalls : int;
  mutable rx_wakeups : int;
}

(* Registry handles behind [stats]; [stats t] snapshots them. *)
type m = {
  m_pdus_sent : Metrics.counter;
  m_pdus_received : Metrics.counter;
  m_bytes_received : Metrics.counter;
  m_aborted_chains : Metrics.counter;
  m_timeout_aborts : Metrics.counter;
  m_crc_drops : Metrics.counter;
  m_undeliverable : Metrics.counter;
  m_tx_full_stalls : Metrics.counter;
  m_rx_wakeups : Metrics.counter;
  m_pdu_bytes : Stats.t;  (** distribution of delivered PDU payloads *)
}

let make_driver_metrics () =
  {
    m_pdus_sent = Metrics.counter "driver.tx.pdus_sent";
    m_pdus_received = Metrics.counter "driver.rx.pdus_received";
    m_bytes_received = Metrics.counter "driver.rx.bytes";
    m_aborted_chains = Metrics.counter "driver.rx.aborted_chains";
    m_timeout_aborts = Metrics.counter "driver.rx.timeout_aborts";
    m_crc_drops = Metrics.counter "driver.rx.crc_drops";
    m_undeliverable = Metrics.counter "driver.rx.undeliverable";
    m_tx_full_stalls = Metrics.counter "driver.tx.full_stalls";
    m_rx_wakeups = Metrics.counter "driver.rx.wakeups";
    m_pdu_bytes = Metrics.dist "driver.rx.pdu_bytes";
  }

type pending_tx = {
  upto : int; (* complete when tx_q total_dequeued >= upto *)
  cleanup : unit -> unit;
}

type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  cache : Cache.t;
  wiring : Wiring.t;
  board : Board.t;
  channel : Board.channel;
  vs : Vspace.t;
  costs : Machine.driver_costs;
  cpu_priority : int;
  demux : Demux.t;
  mutable invalidation : invalidation;
  buf_size : int;
  pool : int Queue.t; (* idle buffer vaddrs *)
  by_paddr : (int, int) Hashtbl.t; (* buffer paddr -> vaddr *)
  mutable replenishing : bool; (* one replenisher at a time; see below *)
  mutable outstanding : int;
  tx_lock : Resource.t; (* serializes concurrent senders' descriptor chains *)
  rx_sig : Signal.t;
  tx_space : Signal.t;
  pending : pending_tx Queue.t;
  pending_sig : Signal.t;
  m : m;
}

let alloc_buffer vs ~size ~contiguous =
  if contiguous then
    match Vspace.alloc_contiguous vs ~len:size with
    | Some v -> v
    | None -> failwith "Driver: no physically contiguous memory for buffers"
  else Vspace.alloc vs ~len:size

let create ~cpu ~cache ~wiring ~board ~channel ~vs ~costs ~demux ~invalidation
    ~rx_buffer_size ~rx_pool_buffers ~contiguous_buffers ?(cpu_priority = 10)
    () =
  let buf_size =
    if contiguous_buffers then rx_buffer_size
    else Vspace.page_size vs (* §2.2: page is the largest contiguous unit *)
  in
  let t =
    {
      eng = Board.engine board;
      cpu;
      cache;
      wiring;
      board;
      channel;
      vs;
      costs;
      cpu_priority;
      demux;
      invalidation;
      buf_size;
      pool = Queue.create ();
      replenishing = false;
      outstanding = 0;
      tx_lock = Resource.create (Board.engine board) ~capacity:1;
      by_paddr = Hashtbl.create 64;
      rx_sig = Signal.create (Board.engine board);
      tx_space = Signal.create (Board.engine board);
      pending = Queue.create ();
      pending_sig = Signal.create (Board.engine board);
      m = make_driver_metrics ();
    }
  in
  Metrics.gauge_fn "driver.rx.pool_available" (fun () ->
      float_of_int (Queue.length t.pool));
  (* When the buffers are page-fragments, keep at least [rx_pool_buffers]
     pages circulating: for [rx_buffer_size < page_size] the ratio rounds
     down to zero, which used to leave the pool empty and the receive path
     permanently stalled. *)
  let n_bufs =
    if contiguous_buffers then rx_pool_buffers
    else max rx_pool_buffers (rx_pool_buffers * (rx_buffer_size / buf_size))
  in
  (* The receive queue must be able to hold every circulating buffer
     (paper: 64-entry queues and 64 buffers): otherwise a slow host can
     make the board drop descriptors from a full receive queue, losing
     end-of-PDU markers. *)
  let n_bufs =
    min n_bufs (Desc_queue.size (Board.rx_queue channel) - 1)
  in
  for _ = 1 to n_bufs do
    let vaddr = alloc_buffer vs ~size:buf_size ~contiguous:contiguous_buffers in
    Vspace.wire vs ~vaddr ~len:buf_size;
    Hashtbl.replace t.by_paddr (Vspace.translate vs vaddr) vaddr;
    Queue.add vaddr t.pool
  done;
  t

let free_desc_of t vaddr =
  Desc.v ~addr:(Vspace.translate t.vs vaddr) ~len:t.buf_size ()

(* Keep the free queue stocked from the pool (no cost beyond the queue's
   own PIO accounting; runs in the calling process). Take the buffer out
   of the pool before the (suspending) enqueue: several processes can
   call this at once (init, receive thread, disposal finalizers), and a
   peek-then-pop discipline would hand the same buffer out twice.

   Only one of them may actually drive the enqueue loop: the host is the
   free queue's single writer, and [host_enqueue] charges PIO time — a
   suspension point — between its fullness check, its slot store and its
   head-pointer publish. Two interleaved enqueuers would store into the
   same slot (leaking one buffer) and advance the head twice (leaving a
   hole the board later reads as empty). The active replenisher re-polls
   the pool after every enqueue, so buffers recycled by the processes
   that found the flag set are picked up before it exits. *)
let replenish_free_queue t =
  if not t.replenishing then begin
    t.replenishing <- true;
    Fun.protect
      ~finally:(fun () -> t.replenishing <- false)
      (fun () ->
        let continue = ref true in
        while !continue do
          match Queue.take_opt t.pool with
          | None -> continue := false
          | Some vaddr ->
              if
                not
                  (Desc_queue.host_enqueue (Board.free_queue t.channel)
                     (free_desc_of t vaddr))
              then begin
                Queue.add vaddr t.pool;
                continue := false
              end
        done)
  end

let recycle t vaddrs =
  t.outstanding <- t.outstanding - List.length vaddrs;
  List.iter (fun v -> Queue.add v t.pool) vaddrs

let claim t n = t.outstanding <- t.outstanding + n

let outstanding_buffers t = t.outstanding
let on_rx_nonempty t = Signal.broadcast t.rx_sig
let on_tx_half_empty t = Signal.broadcast t.tx_space
let set_invalidation t p = t.invalidation <- p

let stats t : stats =
  {
    pdus_sent = Metrics.counter_value t.m.m_pdus_sent;
    pdus_received = Metrics.counter_value t.m.m_pdus_received;
    bytes_received = Metrics.counter_value t.m.m_bytes_received;
    aborted_chains = Metrics.counter_value t.m.m_aborted_chains;
    timeout_aborts = Metrics.counter_value t.m.m_timeout_aborts;
    crc_drops = Metrics.counter_value t.m.m_crc_drops;
    undeliverable = Metrics.counter_value t.m.m_undeliverable;
    tx_full_stalls = Metrics.counter_value t.m.m_tx_full_stalls;
    rx_wakeups = Metrics.counter_value t.m.m_rx_wakeups;
  }

let pool_available t = Queue.length t.pool
let total_buffers t = Hashtbl.length t.by_paddr
let rx_buf_size t = t.buf_size
let channel t = t.channel

let buffer_regions t =
  Hashtbl.fold
    (fun paddr _ acc -> Osiris_mem.Pbuf.v ~addr:paddr ~len:t.buf_size :: acc)
    t.by_paddr []

let supply_vci_buffers t ~vci ~n =
  for _ = 1 to n do
    match Queue.take_opt t.pool with
    | None -> ()
    | Some vaddr ->
        if
          not
            (Board.supply_vci_buffer t.board ~vci (free_desc_of t vaddr))
        then Queue.add vaddr t.pool
  done

(* ------------------------------------------------------------------ *)
(* Receive path. *)

let recycle_chain t chain =
  recycle t
    (List.filter_map
       (fun (d : Desc.t) ->
         if d.Desc.len = 0 then None
         else Hashtbl.find_opt t.by_paddr d.Desc.addr)
       chain);
  replenish_free_queue t

(* Process one complete PDU whose buffers (descriptor order) are in
   [chain]; [last] is its final descriptor (the receive thread already has
   it at hand, so the trailer read below need not walk the chain). *)
let process_pdu t chain ~last =
  Cpu.consume_prio t.cpu ~priority:t.cpu_priority t.costs.rx_per_pdu;
  if List.exists (fun (d : Desc.t) -> d.Desc.len = 0) chain then begin
    (* Abort marker: the board abandoned this PDU after posting part of
       it; discard and recycle. The marker's addr distinguishes a
       reassembly-timeout sweep from a board-decision abort. *)
    if
      List.exists
        (fun (d : Desc.t) ->
          d.Desc.len = 0 && d.Desc.addr = Board.timeout_marker_addr)
        chain
    then Metrics.incr t.m.m_timeout_aborts
    else Metrics.incr t.m.m_aborted_chains;
    recycle_chain t chain;
    raise Exit
  end;
  let vci = (List.hd chain).Desc.vci in
  let framed_len =
    List.fold_left (fun a (d : Desc.t) -> a + d.Desc.len) 0 chain
  in
  Cpu.consume_prio t.cpu ~priority:t.cpu_priority
    (framed_len * t.costs.rx_per_kb / 1024);
  let vaddrs =
    List.map
      (fun (d : Desc.t) ->
        match Hashtbl.find_opt t.by_paddr d.Desc.addr with
        | Some v -> v
        | None -> failwith "Driver: receive descriptor names unknown buffer")
      chain
  in
  (* The AAL trailer CRC was checked by the adaptor as the cells flowed
     through (hardware CRC); the driver only reads the length field. That
     read goes through the cache like any CPU access. *)
  let framed = Osiris_mem.Phys_mem.bytes_of_pbufs (Vspace.mem t.vs)
      (List.map Desc.to_pbuf chain) in
  match Sar.deframe_check framed with
  | Error _ ->
      Metrics.incr t.m.m_crc_drops;
      recycle t vaddrs;
      replenish_free_queue t
  | Ok payload_len ->
      (* Read the trailer's length word through the cache (8 bytes). *)
      ignore
        (Cpu.with_held t.cpu (fun () ->
             Cache.read t.cache
               ~addr:(last.Desc.addr + last.Desc.len - 8)
               ~len:8));
      (match t.invalidation with
      | Eager ->
          Cpu.with_held t.cpu (fun () ->
              List.iter
                (fun (d : Desc.t) ->
                  Cache.invalidate t.cache ~addr:d.Desc.addr ~len:d.Desc.len)
                chain)
      | Eager_full ->
          (* The DECstation's cache-swap instruction: essentially free to
             issue, but everything the host had cached now misses. *)
          Cache.invalidate_all t.cache
      | Lazy -> ());
      (* Zero-copy delivery: a message viewing the buffers, which recycles
         them when the stack is done. *)
      let segs =
        let rec build vaddrs remaining =
          match vaddrs with
          | [] -> []
          | v :: rest ->
              if remaining <= 0 then []
              else begin
                let len = min remaining t.buf_size in
                { Msg.vaddr = v; len } :: build rest (remaining - len)
              end
        in
        build vaddrs payload_len
      in
      let msg = Msg.of_segs t.vs segs in
      (* The board copies the PDU's congestion bit onto its eop
         descriptor; surface it out-of-band on the message so a
         transport above the demux can echo it. *)
      if List.exists (fun (d : Desc.t) -> d.Desc.marked) chain then
        Msg.set_marked msg;
      Msg.add_finalizer msg (fun () ->
          recycle t vaddrs;
          replenish_free_queue t);
      Metrics.incr t.m.m_pdus_received;
      Metrics.add t.m.m_bytes_received payload_len;
      Stats.add t.m.m_pdu_bytes (float_of_int payload_len);
      if not (Demux.deliver t.demux ~vci msg) then begin
        Metrics.incr t.m.m_undeliverable;
        Msg.dispose msg
      end

let process_pdu t chain ~last =
  try process_pdu t chain ~last with Exit -> ()

let rx_thread t () =
  let rx_q = Board.rx_queue t.channel in
  (* [chain] accumulates in reverse; its length rides along so a long
     descriptor chain costs O(n) to drain, not O(n²). *)
  let rec drain chain nchain =
    match Desc_queue.host_dequeue rx_q with
    | None ->
        (* A PDU should never be split across wakeups for long: partial
           chains are kept and continued on the next buffer. *)
        (chain, nchain)
    | Some d ->
        Cpu.consume_prio t.cpu ~priority:t.cpu_priority t.costs.rx_per_buffer;
        (* Only real buffers count as outstanding: abort markers (len 0)
           name no buffer, and claiming them would inflate the count by
           one per abort, breaking buffer-conservation accounting. *)
        if d.Desc.len > 0 then claim t 1;
        replenish_free_queue t;
        let chain = d :: chain in
        let nchain = nchain + 1 in
        if d.Desc.eop then begin
          process_pdu t (List.rev chain) ~last:d;
          drain [] 0
        end
        else if nchain > Desc_queue.size rx_q / 2 then begin
          (* Defensive: a chain this long means end-of-PDU markers were
             lost; reclaim the buffers instead of hoarding them. *)
          Metrics.incr t.m.m_aborted_chains;
          recycle_chain t chain;
          drain [] 0
        end
        else drain chain nchain
  in
  let rec loop chain nchain =
    Signal.wait t.rx_sig;
    Metrics.incr t.m.m_rx_wakeups;
    Cpu.consume_prio t.cpu ~priority:t.cpu_priority t.costs.sched_latency;
    let chain, nchain = drain chain nchain in
    loop chain nchain
  in
  loop [] 0

(* ------------------------------------------------------------------ *)
(* Transmit path. *)

let send t ~vci ?(from_user = false) msg =
  if from_user then Cpu.consume t.cpu t.costs.syscall;
  Cpu.consume t.cpu t.costs.tx_per_pdu;
  (* One PDU's descriptor chain must reach the transmit queue contiguously
     even when several threads send concurrently (the real driver masks
     interrupts / takes a spl lock here). *)
  Resource.acquire t.tx_lock;
  Fun.protect ~finally:(fun () -> Resource.release t.tx_lock) @@ fun () ->
  let segs = Msg.segs msg in
  List.iter
    (fun (s : Msg.seg) ->
      Wiring.wire t.wiring t.vs ~vaddr:s.Msg.vaddr ~len:s.Msg.len)
    segs;
  let pbufs = Msg.pbufs msg in
  let descs = Desc.chain_of_pbufs ~vci pbufs in
  Osiris_sim.Trace.emitf Osiris_sim.Trace.Driver ~now:(Engine.now t.eng)
    "enqueue vci=%d chain=[%s]" vci
    (String.concat ";"
       (List.map
          (fun (d : Desc.t) ->
            Printf.sprintf "%d%s" d.Desc.len
              (if d.Desc.eop then "*" else ""))
          descs));
  let tx_q = Board.tx_queue t.channel in
  List.iter
    (fun d ->
      Cpu.consume t.cpu t.costs.tx_per_buffer;
      while not (Desc_queue.host_enqueue tx_q d) do
        (* Full: suspend transmit activity and ask for the half-empty
           interrupt (§2.1.2). The re-check is a real host probe of the
           queue pointers and must be charged as PIO like any other. *)
        Metrics.incr t.m.m_tx_full_stalls;
        Desc_queue.host_set_waiting tx_q;
        if Desc_queue.host_probe_full tx_q then Signal.wait t.tx_space
      done)
    descs;
  Metrics.incr t.m.m_pdus_sent;
  let upto = Desc_queue.total_enqueued tx_q in
  let cleanup () =
    List.iter
      (fun (s : Msg.seg) ->
        Wiring.unwire t.wiring t.vs ~vaddr:s.Msg.vaddr ~len:s.Msg.len)
      segs;
    Msg.dispose msg
  in
  Queue.add { upto; cleanup } t.pending;
  Signal.broadcast t.pending_sig

(* Transmit completion is detected by tail-pointer advance, as part of
   other driver activity — modelled as a background watcher that reacts to
   the queue's dequeue events. *)
let tx_watcher t () =
  let tx_q = Board.tx_queue t.channel in
  let rec loop () =
    (match Queue.peek_opt t.pending with
    | None -> Signal.wait t.pending_sig
    | Some p ->
        if Desc_queue.total_dequeued tx_q >= p.upto then begin
          ignore (Queue.pop t.pending);
          p.cleanup ()
        end
        else Signal.wait (Desc_queue.dequeued tx_q));
    loop ()
  in
  loop ()

let start t =
  (* Stocking the free queue performs PIO, so it needs process context. *)
  Process.spawn t.eng ~name:"driver-init" (fun () -> replenish_free_queue t);
  Process.spawn t.eng ~name:"driver-rx" (rx_thread t);
  Process.spawn t.eng ~name:"driver-tx-watch" (tx_watcher t)
