(** The OSIRIS channel driver.

    One instance drives one board channel (the kernel's channel 0, or an
    application device channel): it owns the receive buffer pool, keeps the
    free-buffer queue stocked, turns transmit messages into wired descriptor
    chains, detects transmit completion by tail-pointer advance, and drains
    the receive queue from a thread woken by the (coalesced) receive
    interrupt. "Linked with the application is an ADC channel driver, which
    performs essentially the same functions as the in-kernel OSIRIS device
    driver" (paper §3.2) — hence a single implementation used by both.

    Cache invalidation policy (paper §2.3): [Eager] invalidates every
    received buffer before use (one CPU cycle per word); [Lazy] relies on
    end-to-end checks — here the UDP checksum and, for raw-ATM test traffic,
    the application's own verification. *)

type invalidation =
  | Lazy  (** rely on end-to-end checksums; invalidate only on failure *)
  | Eager  (** invalidate each received buffer (1 cycle/word, §2.3) *)
  | Eager_full
      (** §2.3's footnote: swap/flush the entire cache per received PDU —
          a fast instruction whose true cost is every subsequent miss *)

type stats = {
  mutable pdus_sent : int;
  mutable pdus_received : int;
  mutable bytes_received : int;
  mutable aborted_chains : int;
      (** partial chains discarded after a board-side PDU abort *)
  mutable timeout_aborts : int;
      (** partial chains discarded after a board reassembly-timeout sweep
          (distinguished by the marker's address; see
          {!Osiris_board.Board.timeout_marker_addr}) *)
  mutable crc_drops : int;
  mutable undeliverable : int;  (** PDUs whose VCI had no demux binding *)
  mutable tx_full_stalls : int;  (** times send found the transmit queue full *)
  mutable rx_wakeups : int;  (** receive-thread wakeups (≈ interrupts taken) *)
}

type t

val create :
  cpu:Osiris_os.Cpu.t ->
  cache:Osiris_cache.Data_cache.t ->
  wiring:Osiris_os.Wiring.t ->
  board:Osiris_board.Board.t ->
  channel:Osiris_board.Board.channel ->
  vs:Osiris_mem.Vspace.t ->
  costs:Machine.driver_costs ->
  demux:Osiris_xkernel.Demux.t ->
  invalidation:invalidation ->
  rx_buffer_size:int ->
  rx_pool_buffers:int ->
  contiguous_buffers:bool ->
  ?cpu_priority:int ->
  unit ->
  t
(** Allocates the receive pool ([contiguous_buffers] selects best-effort
    physically contiguous buffers of [rx_buffer_size]; otherwise buffers are
    page-sized, reproducing the §2.2 restriction) and pre-fills the
    channel's free queue. *)

val start : t -> unit
(** Spawn the receive thread and the transmit-completion watcher. *)

val send : t -> vci:int -> ?from_user:bool -> Osiris_xkernel.Msg.t -> unit
(** Queue a PDU for transmission; blocks while the transmit queue is full
    (requesting the half-empty interrupt, §2.1.2). Ownership of the message
    passes to the driver, which disposes it after the board has fetched the
    data. [from_user] charges the kernel-entry cost — false for in-kernel
    tests and ADC channel drivers. *)

val on_rx_nonempty : t -> unit
(** To be called by the host's interrupt handler for this channel's
    receive-queue empty→non-empty interrupt. *)

val on_tx_half_empty : t -> unit
(** To be called for the transmit half-empty interrupt. *)

val supply_vci_buffers : t -> vci:int -> n:int -> unit
(** Move [n] pool buffers into the board's per-VCI preallocated list (the
    cached-fbuf fast path of §3.1). *)

val set_invalidation : t -> invalidation -> unit

val stats : t -> stats

val pool_available : t -> int
(** Buffers currently idle in the pool. *)

val outstanding_buffers : t -> int
(** Buffers delivered upstream and not yet recycled (observability). *)

val buffer_regions : t -> Osiris_mem.Pbuf.t list
(** Physical extents of every receive buffer this driver owns — the pages
    an ADC's on-board protection list must authorize. *)

val total_buffers : t -> int
(** Size of the circulating receive pool: the conserved quantity of the
    buffer-conservation invariant. *)

val rx_buf_size : t -> int
(** Capacity of each pool buffer (after the page-size clamp). *)

val channel : t -> Osiris_board.Board.channel
(** The board channel this driver serves. *)
