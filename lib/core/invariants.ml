module Board = Osiris_board.Board
module Desc = Osiris_board.Desc
module Desc_queue = Osiris_board.Desc_queue

(* A violation is a human-readable sentence; an empty list means clean.
   Checks are read-only and cost-free (no simulated cycles charged), so
   they may run mid-experiment — but the buffer-conservation equation
   only balances at quiescence, when no buffer is riding an in-flight
   DMA or sitting in a half-drained receive batch. *)

let queue_violations channel =
  List.concat
    [
      Desc_queue.check_invariants ~name:"tx" (Board.tx_queue channel);
      Desc_queue.check_invariants ~name:"free" (Board.free_queue channel);
      Desc_queue.check_invariants ~name:"rx" (Board.rx_queue channel);
    ]

let real_descs q =
  List.length (List.filter (fun d -> d.Desc.len > 0) (Desc_queue.contents q))

let conservation_violations ~board ~driver =
  let channel = Driver.channel driver in
  let total = Driver.total_buffers driver in
  let pool = Driver.pool_available driver in
  let outstanding = Driver.outstanding_buffers driver in
  let in_free = real_descs (Board.free_queue channel) in
  let in_rx = real_descs (Board.rx_queue channel) in
  let on_board = Board.held_buffers board in
  let accounted = pool + outstanding + in_free + in_rx + on_board in
  if accounted <> total then
    [
      Printf.sprintf
        "buffer conservation: pool %d + outstanding %d + free-q %d + rx-q %d \
         + board-held %d = %d, expected %d (leaked %d)"
        pool outstanding in_free in_rx on_board accounted total
        (total - accounted);
    ]
  else []

let reassembly_violations ~board =
  let cfg = Board.config board in
  let timeout = cfg.Board.reassembly_timeout in
  if timeout <= 0 then []
  else
    match Board.oldest_reassembly_age board with
    | Some age when age > timeout ->
        [
          Printf.sprintf
            "reassembly older than timeout: oldest age %dns > %dns" age
            timeout;
        ]
    | _ -> []

let quiescence_violations ~board =
  match Board.reassemblies_in_progress board with
  | 0 -> []
  | n -> [ Printf.sprintf "%d reassemblies still in progress at quiescence" n ]

let check ?(quiescent = false) ~board ~driver () =
  List.concat
    [
      queue_violations (Driver.channel driver);
      conservation_violations ~board ~driver;
      reassembly_violations ~board;
      (if quiescent then quiescence_violations ~board else []);
    ]

let assert_clean ?quiescent ~board ~driver () =
  match check ?quiescent ~board ~driver () with
  | [] -> ()
  | vs ->
      failwith
        (Printf.sprintf "invariant violations:\n  %s"
           (String.concat "\n  " vs))
