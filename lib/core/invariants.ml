module Board = Osiris_board.Board
module Desc = Osiris_board.Desc
module Desc_queue = Osiris_board.Desc_queue

(* A violation is a human-readable sentence; an empty list means clean.
   Checks are read-only and cost-free (no simulated cycles charged), so
   they may run mid-experiment — but the buffer-conservation equation
   only balances at quiescence, when no buffer is riding an in-flight
   DMA or sitting in a half-drained receive batch. *)

let queue_violations channel =
  List.concat
    [
      Desc_queue.check_invariants ~name:"tx" (Board.tx_queue channel);
      Desc_queue.check_invariants ~name:"free" (Board.free_queue channel);
      Desc_queue.check_invariants ~name:"rx" (Board.rx_queue channel);
    ]

let real_descs q =
  List.length (List.filter (fun d -> d.Desc.len > 0) (Desc_queue.contents q))

let balance ~what ~total ~parts =
  let accounted = List.fold_left (fun a (_, n) -> a + n) 0 parts in
  if accounted = total then []
  else
    [
      Printf.sprintf "%s: %s = %d, expected %d (leaked %d)" what
        (String.concat " + "
           (List.map (fun (name, n) -> Printf.sprintf "%s %d" name n) parts))
        accounted total (total - accounted);
    ]

let conservation_violations ~board ~driver =
  let channel = Driver.channel driver in
  balance ~what:"buffer conservation" ~total:(Driver.total_buffers driver)
    ~parts:
      [
        ("pool", Driver.pool_available driver);
        ("outstanding", Driver.outstanding_buffers driver);
        ("free-q", real_descs (Board.free_queue channel));
        ("rx-q", real_descs (Board.rx_queue channel));
        ("board-held", Board.held_buffers board);
      ]

let reassembly_violations ~board =
  let cfg = Board.config board in
  let timeout = cfg.Board.reassembly_timeout in
  if timeout <= 0 then []
  else
    match Board.oldest_reassembly_age board with
    | Some age when age > timeout ->
        [
          Printf.sprintf
            "reassembly older than timeout: oldest age %dns > %dns" age
            timeout;
        ]
    | _ -> []

let quiescence_violations ~board =
  match Board.reassemblies_in_progress board with
  | 0 -> []
  | n -> [ Printf.sprintf "%d reassemblies still in progress at quiescence" n ]

let check ?(quiescent = false) ~board ~driver () =
  List.concat
    [
      queue_violations (Driver.channel driver);
      conservation_violations ~board ~driver;
      reassembly_violations ~board;
      (if quiescent then quiescence_violations ~board else []);
    ]

let assert_clean ?quiescent ~board ~driver () =
  match check ?quiescent ~board ~driver () with
  | [] -> ()
  | vs ->
      failwith
        (Printf.sprintf "invariant violations:\n  %s"
           (String.concat "\n  " vs))
