(** Host topologies: the paper's back-to-back pair, and multi-host
    fabrics built from {!Osiris_switch.Switch}.

    The original testbed is §4's "pair of workstations connected by a
    pair of OSIRIS boards linked back-to-back" — {!connect}/{!pair},
    unchanged. {!star} and {!chain} generalize it: every host keeps its
    own transmit and receive striped links, but they now terminate on
    switch ports instead of directly on the peer, and {!open_vc}
    allocates per-hop VCIs and programs the switches' routing tables end
    to end. *)

type t = {
  a : Host.t;
  b : Host.t;
  a_to_b : Osiris_link.Atm_link.t;
  b_to_a : Osiris_link.Atm_link.t;
}

val connect :
  Osiris_sim.Engine.t ->
  ?link:Osiris_link.Atm_link.config ->
  ?seed:int ->
  Host.t ->
  Host.t ->
  t
(** Create the two unidirectional striped links, attach the boards, and
    start both hosts. *)

val pair :
  ?machine_a:Machine.t ->
  ?machine_b:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  unit ->
  Osiris_sim.Engine.t * t
(** Convenience: a fresh engine and two identical hosts (DECstation
    5000/200 by default) already connected and started. *)

(** {2 Multi-host topologies} *)

type endpoint = {
  host : Host.t;
  to_fabric : Osiris_link.Atm_link.t;  (** host tx → switch ingress *)
  from_fabric : Osiris_link.Atm_link.t;  (** switch egress → host rx *)
  sw : int;  (** index into {!topology.switches} *)
  port : int;  (** this host's port on that switch *)
}

type topology = {
  endpoints : endpoint array;
  switches : Osiris_switch.Switch.t array;
  trunk_ports : int option array;
      (** per-switch port of the inter-switch trunk, when one exists *)
  trunks : Osiris_link.Atm_link.t array;
      (** the trunk links themselves ([\[| sw0->sw1; sw1->sw0 |\]] for
          {!chain}, empty for {!star}) — the targets of [trunkloss]
          fault bursts *)
  mutable next_vci : int;  (** next VCI {!open_vc} will hand out *)
}

type vc = {
  vc_src : int;  (** sending host index *)
  vc_dst : int;  (** receiving host index *)
  src_vci : int;  (** VCI the sender transmits on ([Driver.send ~vci]) *)
  dst_vci : int;
      (** VCI the cells carry on the receiver's link after per-hop
          rewriting — already bound to the receiver's kernel channel *)
}

val star :
  ?backend:Osiris_sim.Engine.backend ->
  ?n:int ->
  ?machine:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  ?switch:Osiris_switch.Switch.config ->
  ?seed:int ->
  unit ->
  Osiris_sim.Engine.t * topology
(** [n] hosts (default 3, minimum 2) on the [n] ports of one switch, all
    started. Host [i] gets IP [10.0.0.(i+1)] and host seed
    [config.seed + i]; [seed] (default 7) seeds the link RNGs. The
    [switch] config's [nports] is overridden to [n]. [backend] selects
    the engine's event queue (for the scheduler speed benchmark, which
    races both backends over this topology). *)

val chain :
  ?n:int ->
  ?machine:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  ?switch:Osiris_switch.Switch.config ->
  ?seed:int ->
  unit ->
  Osiris_sim.Engine.t * topology
(** [n] hosts (default 4) split across two switches joined by a striped
    trunk link per direction: the first [ceil(n/2)] hosts sit on switch
    0, the rest on switch 1, and each switch's last port is the trunk. *)

val host : topology -> int -> Host.t
val nhosts : topology -> int

val open_vc : topology -> src:int -> dst:int -> vc
(** Allocate a fresh virtual circuit from host [src] to host [dst]:
    fresh VCIs for every hop (starting at 32, clear of the kernel IP VCI
    and hand-bound test VCIs), routing-table entries with VCI rewriting
    on each traversed switch (one for same-switch circuits, two across
    the trunk), and a receive binding of the final VCI to [dst]'s kernel
    channel. The caller sends with [Driver.send ~vci:vc.src_vci] and
    receives by binding [vc.dst_vci] in [dst]'s demux. *)
