(** Host topologies: the paper's back-to-back pair, and multi-host
    fabrics built from {!Osiris_switch.Switch} via the
    {!Osiris_topo} generator.

    The original testbed is §4's "pair of workstations connected by a
    pair of OSIRIS boards linked back-to-back" — {!connect}/{!pair},
    unchanged. Every multi-host fabric is an {!Osiris_topo.Builder}
    wiring plan stood up by {!instantiate}: every host keeps its own
    transmit and receive striped links, but they terminate on switch
    ports instead of directly on the peer, and {!open_vc} allocates
    per-hop VCIs and programs the switches' routing tables end to end.
    {!star} and {!chain} are the degenerate plans (bit-for-bit the
    fabrics their hand-rolled predecessors built); {!leaf_spine} and
    {!fat_tree} scale the same machinery to multi-tier Clos fabrics with
    equal-cost multipath, which {!open_vc_paths} exposes as one VCI
    chain per path. *)

type t = {
  a : Host.t;
  b : Host.t;
  a_to_b : Osiris_link.Atm_link.t;
  b_to_a : Osiris_link.Atm_link.t;
}

val connect :
  Osiris_sim.Engine.t ->
  ?link:Osiris_link.Atm_link.config ->
  ?seed:int ->
  Host.t ->
  Host.t ->
  t
(** Create the two unidirectional striped links, attach the boards, and
    start both hosts. *)

val pair :
  ?machine_a:Machine.t ->
  ?machine_b:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  unit ->
  Osiris_sim.Engine.t * t
(** Convenience: a fresh engine and two identical hosts (DECstation
    5000/200 by default) already connected and started. *)

(** {2 Multi-host topologies} *)

type endpoint = {
  host : Host.t;
  to_fabric : Osiris_link.Atm_link.t;  (** host tx → switch ingress *)
  from_fabric : Osiris_link.Atm_link.t;  (** switch egress → host rx *)
  sw : int;  (** index into {!topology.switches} *)
  port : int;  (** this host's port on that switch *)
}

type topology = {
  endpoints : endpoint array;
  switches : Osiris_switch.Switch.t array;
  trunk_ports : int option array;
      (** per-switch port of the switch's {e first} trunk, when one
          exists (kept for the chain-era fault plans; multi-tier fabrics
          have many trunk ports per switch — consult {!fabric}) *)
  trunks : Osiris_link.Atm_link.t array;
      (** the trunk links, two per {!Osiris_topo.Builder.trunk} in trunk
          order: [trunks.(2i)] carries trunk [i]'s [t_a → t_b] direction
          and [trunks.(2i+1)] the reverse ([\[| sw0->sw1; sw1->sw0 |\]]
          for {!chain}, empty for {!star}) — the targets of [trunkloss]
          fault bursts *)
  fabric : Osiris_topo.Builder.fabric;
      (** the wiring plan this topology was instantiated from — the
          queryable fabric map (tiers, trunk endpoints, path sets) *)
  mutable next_vci : int;  (** next VCI {!open_vc} will hand out *)
  path_cache : (int, Osiris_topo.Builder.hop list list) Hashtbl.t;
      (** memoized {!Osiris_topo.Builder.paths} results, keyed
          [(src lsl 16) lor dst]: the fabric never changes after
          {!instantiate}, so each ordered pair is enumerated at most
          once and opening the Nth VC of a pair is O(path length) —
          bulk connection setup at thousands of VCs *)
  mutable path_enums : int;
      (** number of path enumerations actually performed (cache
          misses); see {!path_enumerations} *)
}

type vc = {
  vc_src : int;  (** sending host index *)
  vc_dst : int;  (** receiving host index *)
  src_vci : int;  (** VCI the sender transmits on ([Driver.send ~vci]) *)
  dst_vci : int;
      (** VCI the cells carry on the receiver's link after per-hop
          rewriting — already bound to the receiver's kernel channel *)
}

type mvc = {
  mv_src : int;
  mv_dst : int;
  src_vcis : int array;  (** per-path sender VCIs: sending on
      [src_vcis.(p)] routes the PDU along path [p] *)
  dst_vcis : int array;
      (** per-path receiver VCIs, each bound to the kernel channel —
          which VCI fired tells the receiver which path a PDU took *)
  mv_paths : Osiris_topo.Builder.hop list array;
      (** the equal-cost hop lists, aligned with the VCI arrays *)
}
(** A multipath virtual circuit: one complete per-hop VCI chain per
    equal-cost path, so a sender-side load balancer picks a path per PDU
    by picking a VCI — cells of one PDU never interleave with another
    path's cells on the same VCI, keeping striped reassembly sound. *)

val instantiate :
  ?backend:Osiris_sim.Engine.backend ->
  ?machine:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  ?trunk_link:Osiris_link.Atm_link.config ->
  ?switch:Osiris_switch.Switch.config ->
  ?seed:int ->
  Osiris_topo.Builder.fabric ->
  Osiris_sim.Engine.t * topology
(** Stand a wiring plan up: one engine, one switch per plan entry (the
    plan's port counts override the [switch] config's [nports]), one
    host per attachment point (host [i] gets IP [10.0.0.(i+1)] and host
    seed [config.seed + i]), a striped link pair per host and per trunk
    ([trunk_link] defaults to [link]; use a faster config to model
    undersubscribed uplinks), everything attached and started. [seed]
    (default 7) seeds the link RNGs. Creation order is deterministic —
    equal plans and seeds yield identical fabrics. *)

val star :
  ?backend:Osiris_sim.Engine.backend ->
  ?n:int ->
  ?machine:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  ?switch:Osiris_switch.Switch.config ->
  ?seed:int ->
  unit ->
  Osiris_sim.Engine.t * topology
(** [n] hosts (default 3, minimum 2) on the [n] ports of one switch —
    [instantiate] of [Spec.Star]. [backend] selects the engine's event
    queue (for the scheduler speed benchmark, which races both backends
    over this topology). *)

val chain :
  ?n:int ->
  ?machine:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  ?switch:Osiris_switch.Switch.config ->
  ?seed:int ->
  unit ->
  Osiris_sim.Engine.t * topology
(** [n] hosts (default 4) split across two switches joined by a striped
    trunk link per direction: the first [ceil(n/2)] hosts sit on switch
    0, the rest on switch 1, and each switch's last port is the trunk. *)

val leaf_spine :
  ?backend:Osiris_sim.Engine.backend ->
  ?leaves:int ->
  ?spines:int ->
  ?hosts_per_leaf:int ->
  ?machine:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  ?trunk_link:Osiris_link.Atm_link.config ->
  ?switch:Osiris_switch.Switch.config ->
  ?seed:int ->
  unit ->
  Osiris_sim.Engine.t * topology
(** Two-tier Clos (default 2x2, 2 hosts per leaf): every leaf trunked to
    every spine, [spines] equal-cost paths between hosts on different
    leaves. *)

val fat_tree :
  ?backend:Osiris_sim.Engine.backend ->
  ?k:int ->
  ?hosts_per_edge:int ->
  ?machine:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  ?trunk_link:Osiris_link.Atm_link.config ->
  ?switch:Osiris_switch.Switch.config ->
  ?seed:int ->
  unit ->
  Osiris_sim.Engine.t * topology
(** k-ary fat-tree (default k=4 with one host per edge switch):
    [(k/2)^2] equal-cost paths between hosts in different pods. An
    8-pod tree ([k]=8) with one host per edge stands up 32 hosts and 80
    switches. *)

val host : topology -> int -> Host.t
val nhosts : topology -> int

val fabric : topology -> Osiris_topo.Builder.fabric
(** The wiring plan — path sets via {!Osiris_topo.Builder.paths}, trunk
    endpoints, switch tiers. *)

val spec : topology -> Osiris_topo.Spec.t

val trunk_links : topology -> int -> Osiris_link.Atm_link.t * Osiris_link.Atm_link.t
(** The two directed links of plan trunk [i], as [(a_to_b, b_to_a)]. *)

val open_vc : topology -> src:int -> dst:int -> vc
(** Allocate a fresh virtual circuit from host [src] to host [dst] along
    the {e first} shortest path: fresh VCIs for every hop (starting at
    32, clear of the kernel IP VCI and hand-bound test VCIs),
    routing-table entries with VCI rewriting on each traversed switch,
    and a receive binding of the final VCI to [dst]'s kernel channel.
    The caller sends with [Driver.send ~vci:vc.src_vci] and receives by
    binding [vc.dst_vci] in [dst]'s demux. *)

val path_enumerations : topology -> int
(** How many times the topology has run shortest-path enumeration
    ([Builder.paths]) — at most one per ordered (src, dst) pair, however
    many VCs are opened. The bulk-setup regression test pins this. *)

val open_vc_paths : ?limit:int -> topology -> src:int -> dst:int -> mvc
(** Allocate one complete VCI chain per equal-cost shortest path
    (at most [limit] of them, in {!Osiris_topo.Builder.paths} order),
    binding every receiver-side VCI to [dst]'s kernel channel. Raises
    [Invalid_argument] on bad endpoints or [limit < 1]. *)
