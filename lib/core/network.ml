module Atm_link = Osiris_link.Atm_link
module Board = Osiris_board.Board
module Rng = Osiris_util.Rng
module Switch = Osiris_switch.Switch
module Spec = Osiris_topo.Spec
module Builder = Osiris_topo.Builder

type t = {
  a : Host.t;
  b : Host.t;
  a_to_b : Atm_link.t;
  b_to_a : Atm_link.t;
}

let connect eng ?(link = Atm_link.default_config) ?(seed = 7) (a : Host.t) (b : Host.t) =
  let rng = Rng.create ~seed in
  let a_to_b = Atm_link.create eng (Rng.split rng) link in
  let b_to_a = Atm_link.create eng (Rng.split rng) link in
  Board.attach a.Host.board ~tx_link:a_to_b ~rx_link:b_to_a;
  Board.attach b.Host.board ~tx_link:b_to_a ~rx_link:a_to_b;
  Host.start a;
  Host.start b;
  { a; b; a_to_b; b_to_a }

let pair ?(machine_a = Machine.ds5000_200) ?(machine_b = Machine.ds5000_200)
    ?(config = Host.default_config) ?link () =
  let eng = Osiris_sim.Engine.create () in
  let a = Host.create eng machine_a ~addr:0x0a000001l config in
  let b =
    Host.create eng machine_b ~addr:0x0a000002l
      { config with seed = config.seed + 1 }
  in
  let net = connect eng ?link a b in
  (eng, net)

(* ------------------------------------------------------------------ *)
(* Multi-host topologies through the cell-switch fabric.               *)
(* ------------------------------------------------------------------ *)

type endpoint = {
  host : Host.t;
  to_fabric : Atm_link.t;
  from_fabric : Atm_link.t;
  sw : int;
  port : int;
}

type topology = {
  endpoints : endpoint array;
  switches : Switch.t array;
  trunk_ports : int option array;
  trunks : Atm_link.t array;
  fabric : Builder.fabric;
  mutable next_vci : int;
  path_cache : (int, Builder.hop list list) Hashtbl.t;
      (* (src lsl 16) lor dst → Builder.paths result. The fabric is
         immutable after instantiate, so shortest-path enumeration is a
         pure function of the pair; caching it makes opening the Nth VC
         of a pair O(path length), which is what lets experiments stand
         up thousands of connections. *)
  mutable path_enums : int; (* Builder.paths calls actually made *)
}

type vc = { vc_src : int; vc_dst : int; src_vci : int; dst_vci : int }

type mvc = {
  mv_src : int;
  mv_dst : int;
  src_vcis : int array;
  dst_vcis : int array;
  mv_paths : Builder.hop list array;
}

(* First VCI handed out by [open_vc]: clear of the kernel IP VCI (5) and
   of the small raw VCIs the test suites bind by hand. *)
let first_user_vci = 32

let host topo i = topo.endpoints.(i).host
let nhosts topo = Array.length topo.endpoints
let fabric topo = topo.fabric
let spec topo = topo.fabric.Builder.f_spec

let trunk_links topo i =
  if i < 0 || 2 * i + 1 >= Array.length topo.trunks then
    invalid_arg "Network.trunk_links: trunk out of range";
  (topo.trunks.(2 * i), topo.trunks.((2 * i) + 1))

let fresh_vci topo =
  let v = topo.next_vci in
  if v > 0xffff then invalid_arg "Network.open_vc: VCI space exhausted";
  topo.next_vci <- v + 1;
  v

(* Build one host and wire it to [port] of [sw_idx]/[sw]: the host's tx
   link is the switch port's ingress and vice versa. *)
let make_endpoint eng machine config link rng sw sw_idx ~port ~index =
  let host =
    Host.create eng machine
      ~addr:(Int32.of_int (0x0a000001 + index))
      { config with Host.seed = config.Host.seed + index }
  in
  let to_fabric = Atm_link.create eng (Rng.split rng) link in
  let from_fabric = Atm_link.create eng (Rng.split rng) link in
  Board.attach host.Host.board ~tx_link:to_fabric ~rx_link:from_fabric;
  Switch.attach_port sw ~port ~ingress:to_fabric ~egress:from_fabric;
  Host.start host;
  { host; to_fabric; from_fabric; sw = sw_idx; port }

(* Stand a wiring plan up: engine, switches (in index order), hosts (in
   index order, two RNG splits each), trunk link pairs (in trunk order,
   a->b before b->a), then start every switch. The order is load-bearing:
   it reproduces the RNG stream and creation sequence of the historical
   hand-rolled star/chain constructors exactly. *)
let instantiate ?backend ?(machine = Machine.ds5000_200)
    ?(config = Host.default_config) ?(link = Atm_link.default_config)
    ?trunk_link ?(switch = Switch.default_config) ?(seed = 7) fabric =
  let eng = Osiris_sim.Engine.create ?backend () in
  let switches =
    Array.init (Builder.nswitches fabric) (fun s ->
        Switch.create eng
          ~name:fabric.Builder.switch_names.(s)
          { switch with Switch.nports = fabric.Builder.switch_nports.(s) })
  in
  let rng = Rng.create ~seed in
  let endpoints =
    Array.init (Builder.nhosts fabric) (fun i ->
        let p = fabric.Builder.hosts.(i) in
        make_endpoint eng machine config link rng
          switches.(p.Builder.pr_sw)
          p.Builder.pr_sw ~port:p.Builder.pr_port ~index:i)
  in
  let tl = match trunk_link with Some l -> l | None -> link in
  let trunks =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (t : Builder.trunk) ->
              let a = t.Builder.t_a and b = t.Builder.t_b in
              let l_ab = Atm_link.create eng (Rng.split rng) tl in
              let l_ba = Atm_link.create eng (Rng.split rng) tl in
              Switch.attach_port switches.(a.Builder.pr_sw)
                ~port:a.Builder.pr_port ~ingress:l_ba ~egress:l_ab;
              Switch.attach_port switches.(b.Builder.pr_sw)
                ~port:b.Builder.pr_port ~ingress:l_ab ~egress:l_ba;
              [| l_ab; l_ba |])
            fabric.Builder.trunks))
  in
  let trunk_ports =
    Array.init (Builder.nswitches fabric) (fun s ->
        Array.fold_left
          (fun acc (t : Builder.trunk) ->
            match acc with
            | Some _ -> acc
            | None ->
                if t.Builder.t_a.Builder.pr_sw = s then
                  Some t.Builder.t_a.Builder.pr_port
                else if t.Builder.t_b.Builder.pr_sw = s then
                  Some t.Builder.t_b.Builder.pr_port
                else None)
          None fabric.Builder.trunks)
  in
  Array.iter Switch.start switches;
  ( eng,
    {
      endpoints;
      switches;
      trunk_ports;
      trunks;
      fabric;
      next_vci = first_user_vci;
      path_cache = Hashtbl.create 64;
      path_enums = 0;
    } )

let star ?backend ?(n = 3) ?(machine = Machine.ds5000_200)
    ?(config = Host.default_config) ?(link = Atm_link.default_config)
    ?(switch = Switch.default_config) ?(seed = 7) () =
  if n < 2 then invalid_arg "Network.star: need at least 2 hosts";
  instantiate ?backend ~machine ~config ~link ~switch ~seed
    (Builder.build (Spec.Star { hosts = n }))

let chain ?(n = 4) ?(machine = Machine.ds5000_200)
    ?(config = Host.default_config) ?(link = Atm_link.default_config)
    ?(switch = Switch.default_config) ?(seed = 7) () =
  if n < 2 then invalid_arg "Network.chain: need at least 2 hosts";
  instantiate ~machine ~config ~link ~switch ~seed
    (Builder.build (Spec.Chain { hosts = n }))

let leaf_spine ?backend ?(leaves = 2) ?(spines = 2) ?(hosts_per_leaf = 2)
    ?(machine = Machine.ds5000_200) ?(config = Host.default_config)
    ?(link = Atm_link.default_config) ?trunk_link
    ?(switch = Switch.default_config) ?(seed = 7) () =
  instantiate ?backend ~machine ~config ~link ?trunk_link ~switch ~seed
    (Builder.build (Spec.Leaf_spine { leaves; spines; hosts_per_leaf }))

let fat_tree ?backend ?(k = 4) ?(hosts_per_edge = 1)
    ?(machine = Machine.ds5000_200) ?(config = Host.default_config)
    ?(link = Atm_link.default_config) ?trunk_link
    ?(switch = Switch.default_config) ?(seed = 7) () =
  instantiate ?backend ~machine ~config ~link ?trunk_link ~switch ~seed
    (Builder.build (Spec.Fat_tree { k; hosts_per_edge }))

(* Program one path's per-hop routes, allocating a fresh VCI per hop;
   returns the final (receiver-side) VCI. *)
let add_path_routes topo path ~src_vci =
  List.fold_left
    (fun in_vci (h : Builder.hop) ->
      let out_vci = fresh_vci topo in
      Switch.add_route topo.switches.(h.Builder.h_sw) ~in_port:h.Builder.h_in
        ~in_vci ~out_port:h.Builder.h_out ~out_vci;
      out_vci)
    src_vci path

let check_endpoints topo ~what ~src ~dst =
  let nh = nhosts topo in
  if src < 0 || src >= nh || dst < 0 || dst >= nh || src = dst then
    invalid_arg (Printf.sprintf "Network.%s: bad endpoints" what)

(* Shortest-path enumeration, memoized per (src, dst): at most one
   [Builder.paths] call per ordered pair for the topology's lifetime. *)
let cached_paths topo ~src ~dst =
  let key = (src lsl 16) lor dst in
  match Hashtbl.find_opt topo.path_cache key with
  | Some paths -> paths
  | None ->
      let paths = Builder.paths topo.fabric ~src ~dst in
      topo.path_enums <- topo.path_enums + 1;
      Hashtbl.replace topo.path_cache key paths;
      paths

let path_enumerations topo = topo.path_enums

let open_vc topo ~src ~dst =
  check_endpoints topo ~what:"open_vc" ~src ~dst;
  match cached_paths topo ~src ~dst with
  | [] -> invalid_arg "Network.open_vc: no path between endpoints"
  | path :: _ ->
      let d = topo.endpoints.(dst) in
      let src_vci = fresh_vci topo in
      let dst_vci = add_path_routes topo path ~src_vci in
      Board.bind_vci d.host.Host.board ~vci:dst_vci
        (Board.kernel_channel d.host.Host.board);
      { vc_src = src; vc_dst = dst; src_vci; dst_vci }

let open_vc_paths ?limit topo ~src ~dst =
  check_endpoints topo ~what:"open_vc_paths" ~src ~dst;
  let all = cached_paths topo ~src ~dst in
  let all =
    match limit with
    | None -> all
    | Some n ->
        if n < 1 then invalid_arg "Network.open_vc_paths: limit < 1";
        List.filteri (fun i _ -> i < n) all
  in
  if all = [] then invalid_arg "Network.open_vc_paths: no path";
  let d = topo.endpoints.(dst) in
  let mv_paths = Array.of_list all in
  let n = Array.length mv_paths in
  let src_vcis = Array.make n 0 and dst_vcis = Array.make n 0 in
  for p = 0 to n - 1 do
    let src_vci = fresh_vci topo in
    let dst_vci = add_path_routes topo mv_paths.(p) ~src_vci in
    Board.bind_vci d.host.Host.board ~vci:dst_vci
      (Board.kernel_channel d.host.Host.board);
    src_vcis.(p) <- src_vci;
    dst_vcis.(p) <- dst_vci
  done;
  { mv_src = src; mv_dst = dst; src_vcis; dst_vcis; mv_paths }
