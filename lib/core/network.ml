module Atm_link = Osiris_link.Atm_link
module Board = Osiris_board.Board
module Rng = Osiris_util.Rng
module Switch = Osiris_switch.Switch

type t = {
  a : Host.t;
  b : Host.t;
  a_to_b : Atm_link.t;
  b_to_a : Atm_link.t;
}

let connect eng ?(link = Atm_link.default_config) ?(seed = 7) (a : Host.t) (b : Host.t) =
  let rng = Rng.create ~seed in
  let a_to_b = Atm_link.create eng (Rng.split rng) link in
  let b_to_a = Atm_link.create eng (Rng.split rng) link in
  Board.attach a.Host.board ~tx_link:a_to_b ~rx_link:b_to_a;
  Board.attach b.Host.board ~tx_link:b_to_a ~rx_link:a_to_b;
  Host.start a;
  Host.start b;
  { a; b; a_to_b; b_to_a }

let pair ?(machine_a = Machine.ds5000_200) ?(machine_b = Machine.ds5000_200)
    ?(config = Host.default_config) ?link () =
  let eng = Osiris_sim.Engine.create () in
  let a = Host.create eng machine_a ~addr:0x0a000001l config in
  let b =
    Host.create eng machine_b ~addr:0x0a000002l
      { config with seed = config.seed + 1 }
  in
  let net = connect eng ?link a b in
  (eng, net)

(* ------------------------------------------------------------------ *)
(* Multi-host topologies through the cell-switch fabric.               *)
(* ------------------------------------------------------------------ *)

type endpoint = {
  host : Host.t;
  to_fabric : Atm_link.t;
  from_fabric : Atm_link.t;
  sw : int;
  port : int;
}

type topology = {
  endpoints : endpoint array;
  switches : Switch.t array;
  trunk_ports : int option array;
  trunks : Atm_link.t array;
  mutable next_vci : int;
}

type vc = { vc_src : int; vc_dst : int; src_vci : int; dst_vci : int }

(* First VCI handed out by [open_vc]: clear of the kernel IP VCI (5) and
   of the small raw VCIs the test suites bind by hand. *)
let first_user_vci = 32

let host topo i = topo.endpoints.(i).host
let nhosts topo = Array.length topo.endpoints

let fresh_vci topo =
  let v = topo.next_vci in
  if v > 0xffff then invalid_arg "Network.open_vc: VCI space exhausted";
  topo.next_vci <- v + 1;
  v

(* Build one host and wire it to [port] of [sw_idx]/[sw]: the host's tx
   link is the switch port's ingress and vice versa. *)
let make_endpoint eng machine config link rng sw sw_idx ~port ~index =
  let host =
    Host.create eng machine
      ~addr:(Int32.of_int (0x0a000001 + index))
      { config with Host.seed = config.Host.seed + index }
  in
  let to_fabric = Atm_link.create eng (Rng.split rng) link in
  let from_fabric = Atm_link.create eng (Rng.split rng) link in
  Board.attach host.Host.board ~tx_link:to_fabric ~rx_link:from_fabric;
  Switch.attach_port sw ~port ~ingress:to_fabric ~egress:from_fabric;
  Host.start host;
  { host; to_fabric; from_fabric; sw = sw_idx; port }

let star ?backend ?(n = 3) ?(machine = Machine.ds5000_200)
    ?(config = Host.default_config) ?(link = Atm_link.default_config)
    ?(switch = Switch.default_config) ?(seed = 7) () =
  if n < 2 then invalid_arg "Network.star: need at least 2 hosts";
  let eng = Osiris_sim.Engine.create ?backend () in
  let sw = Switch.create eng ~name:"sw0" { switch with Switch.nports = n } in
  let rng = Rng.create ~seed in
  let endpoints =
    Array.init n (fun i ->
        make_endpoint eng machine config link rng sw 0 ~port:i ~index:i)
  in
  Switch.start sw;
  ( eng,
    {
      endpoints;
      switches = [| sw |];
      trunk_ports = [| None |];
      trunks = [||];
      next_vci = first_user_vci;
    } )

let chain ?(n = 4) ?(machine = Machine.ds5000_200)
    ?(config = Host.default_config) ?(link = Atm_link.default_config)
    ?(switch = Switch.default_config) ?(seed = 7) () =
  if n < 2 then invalid_arg "Network.chain: need at least 2 hosts";
  let eng = Osiris_sim.Engine.create () in
  let h0 = (n + 1) / 2 in
  (* hosts on sw0; the rest sit on sw1 *)
  let h1 = n - h0 in
  let trunk0 = h0 and trunk1 = h1 in
  let sw0 =
    Switch.create eng ~name:"sw0" { switch with Switch.nports = h0 + 1 }
  in
  let sw1 =
    Switch.create eng ~name:"sw1" { switch with Switch.nports = h1 + 1 }
  in
  let rng = Rng.create ~seed in
  let endpoints =
    Array.init n (fun i ->
        if i < h0 then
          make_endpoint eng machine config link rng sw0 0 ~port:i ~index:i
        else
          make_endpoint eng machine config link rng sw1 1 ~port:(i - h0)
            ~index:i)
  in
  (* The inter-switch trunk: one striped link per direction, each the
     egress of one switch and the ingress of the other. *)
  let trunk_01 = Atm_link.create eng (Rng.split rng) link in
  let trunk_10 = Atm_link.create eng (Rng.split rng) link in
  Switch.attach_port sw0 ~port:trunk0 ~ingress:trunk_10 ~egress:trunk_01;
  Switch.attach_port sw1 ~port:trunk1 ~ingress:trunk_01 ~egress:trunk_10;
  Switch.start sw0;
  Switch.start sw1;
  ( eng,
    {
      endpoints;
      switches = [| sw0; sw1 |];
      trunk_ports = [| Some trunk0; Some trunk1 |];
      trunks = [| trunk_01; trunk_10 |];
      next_vci = first_user_vci;
    } )

let open_vc topo ~src ~dst =
  let nh = nhosts topo in
  if src < 0 || src >= nh || dst < 0 || dst >= nh || src = dst then
    invalid_arg "Network.open_vc: bad endpoints";
  let s = topo.endpoints.(src) and d = topo.endpoints.(dst) in
  let src_vci = fresh_vci topo in
  let dst_vci =
    if s.sw = d.sw then begin
      let out_vci = fresh_vci topo in
      Switch.add_route topo.switches.(s.sw) ~in_port:s.port ~in_vci:src_vci
        ~out_port:d.port ~out_vci;
      out_vci
    end
    else begin
      let trunk_vci = fresh_vci topo in
      let out_vci = fresh_vci topo in
      let trunk_s =
        match topo.trunk_ports.(s.sw) with
        | Some p -> p
        | None -> invalid_arg "Network.open_vc: source switch has no trunk"
      in
      let trunk_d =
        match topo.trunk_ports.(d.sw) with
        | Some p -> p
        | None ->
            invalid_arg "Network.open_vc: destination switch has no trunk"
      in
      Switch.add_route topo.switches.(s.sw) ~in_port:s.port ~in_vci:src_vci
        ~out_port:trunk_s ~out_vci:trunk_vci;
      Switch.add_route topo.switches.(d.sw) ~in_port:trunk_d
        ~in_vci:trunk_vci ~out_port:d.port ~out_vci;
      out_vci
    end
  in
  Board.bind_vci d.host.Host.board ~vci:dst_vci
    (Board.kernel_channel d.host.Host.board);
  { vc_src = src; vc_dst = dst; src_vci; dst_vci }
