(** Whole-path sanity checks for fault-injection runs.

    Each check returns human-readable violation sentences (empty = clean)
    and performs no simulated work, so they can run at any instant. The
    buffer-conservation equation, however, only balances at quiescence:
    every circulating receive buffer must then be in exactly one of five
    places — the driver's idle pool, delivered upstream and not yet
    recycled, queued as a free descriptor, posted to the receive queue,
    or held on the board (per-VC staging or preallocated fbuf lists).
    A shortfall is a leak; an excess is double-accounting. *)

val balance :
  what:string -> total:int -> parts:(string * int) list -> string list
(** Generic conservation equation: the named [parts] must sum to [total].
    Returns the single violation sentence (naming every part and the
    leak) or []. Shared by {!conservation_violations} and the
    [Osiris_check] scenario harnesses, so explorer counterexamples read
    like fault-soak reports. *)

val queue_violations : Osiris_board.Board.channel -> string list
(** Descriptor-queue structural checks (pointer ranges, occupancy
    arithmetic, shadow-pointer safety) on the channel's transmit, free
    and receive queues. *)

val conservation_violations :
  board:Osiris_board.Board.t -> driver:Driver.t -> string list
(** The buffer-conservation equation above. Only meaningful at
    quiescence, and for configurations in which [driver]'s pool is the
    only one circulating through [board]. *)

val reassembly_violations : board:Osiris_board.Board.t -> string list
(** No partial reassembly may be older than the configured
    [reassembly_timeout] (vacuously clean when the sweeper is off). *)

val quiescence_violations : board:Osiris_board.Board.t -> string list
(** After traffic has stopped and timeouts have swept, no reassembly
    may remain in progress. *)

val check :
  ?quiescent:bool ->
  board:Osiris_board.Board.t ->
  driver:Driver.t ->
  unit ->
  string list
(** All of the above ([quiescent] additionally demands zero residual
    reassemblies). *)

val assert_clean :
  ?quiescent:bool ->
  board:Osiris_board.Board.t ->
  driver:Driver.t ->
  unit ->
  unit
(** [failwith] with every violation listed, for test use. *)
