(** Replayable interleaving schedules.

    A schedule is the sequence of picks an {!Explore} run made at its
    engine choice points (see [Osiris_sim.Engine.set_chooser]): the k-th
    element is the index, in scheduling order, of the callback that fired
    at the k-th instant with more than one runnable callback. Schedules
    print in a compact dotted form (["0.2.1"], or ["-"] when empty) meant
    to be pasted back into {!Explore.replay} — the same
    counterexample-from-a-string workflow as [OSIRIS_FAULT_PLAN]. *)

type t = int list

val to_string : t -> string
val of_string : string -> t
(** Raises [Failure] on malformed input (non-numeric or negative picks). *)

val pp : Format.formatter -> t -> unit
