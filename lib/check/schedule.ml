type t = int list

let to_string = function
  | [] -> "-"
  | picks -> String.concat "." (List.map string_of_int picks)

let of_string s =
  match String.trim s with
  | "" | "-" -> []
  | s ->
      List.map
        (fun part ->
          match int_of_string_opt (String.trim part) with
          | Some n when n >= 0 -> n
          | Some _ -> failwith "Schedule.of_string: negative pick"
          | None ->
              failwith ("Schedule.of_string: bad pick " ^ String.trim part))
        (String.split_on_char '.' s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
