(** Canned host↔board scenarios for the schedule explorer.

    Each scenario drives one descriptor queue with a host process on one
    end and a board process on the other, both stepping at the same
    simulated instants so that every step is an engine choice point. The
    invariant probes are the production ones: [Desc_queue.check_invariants]
    (pointer ranges, occupancy, shadow safety) plus a descriptor
    conservation equation built on [Osiris_core.Invariants.balance], and,
    at the end, a liveness check that everything produced was consumed.

    The [mutation] parameter seeds a protocol bug
    ({!Osiris_board.Desc_queue.test_mutation}) so tests can demonstrate
    that exploration catches discipline violations the FIFO schedule and
    quiescence-only checks miss. *)

type t = Explore.scenario

val host_to_board :
  ?locking:Osiris_board.Desc_queue.locking ->
  ?size:int ->
  ?items:int ->
  ?mutation:Osiris_board.Desc_queue.test_mutation ->
  unit ->
  t
(** Transmit-direction scenario: the host enqueues [items] descriptors
    (default 8) into a [size]-slot (default 4) [Host_to_board] queue,
    yielding after each attempt; the board dequeues likewise. Default
    [locking] is [Lock_free], default [mutation] is [No_mutation]. *)

val board_to_host :
  ?locking:Osiris_board.Desc_queue.locking ->
  ?size:int ->
  ?items:int ->
  ?mutation:Osiris_board.Desc_queue.test_mutation ->
  unit ->
  t
(** Receive-direction scenario: the board enqueues, the host dequeues —
    exercising the [shadow_head] side of the discipline. *)

val transport : ?segs:int -> ?drop_seg:int -> ?drop_first_ack:bool -> unit -> t
(** Transport state-machine scenario: an {!Osiris_transport.Sender} and
    {!Osiris_transport.Receiver} joined by two queues, with a data
    process and an ack process delivering across them on a shared time
    quantum — every delivery a choice point against the other direction
    and the sender's retransmission timer. The first transmission of
    segment [drop_seg] (default 2, of [segs] = 6) is dropped, as is the
    first ack when [drop_first_ack] (default true), so every schedule
    exercises loss recovery. Probes: the production sender/receiver
    invariants (window bounds, byte/transmission conservation, timer
    discipline) at every choice point; at_end, liveness ([Finished]) and
    a byte-exact check of the delivered stream. *)

val switch_datapath : ?queue_cells:int -> ?items:int -> unit -> t
(** Switch output-queue scenario: an ingress process pushes [items]
    (default 8) cells for one routed VC while an egress process drains
    the output port, both yielding after every step. Probes: the
    switch's conservation equation (cells in = forwarded + queued +
    dropped) at every choice point, VCI rewriting on every drained
    cell, and at_end liveness — every cell forwarded or dropped to a
    full queue. [queue_cells] (default 3, deliberately smaller than
    the burst) sizes the output queue so overflow drops occur under
    some schedules. *)
