(** Exhaustive and randomized schedule exploration.

    The paper's lock-free host/board protocol is argued correct for {e
    every} interleaving of single-word accesses; the repo's tests only
    ever run the engine's FIFO schedule. This module drives a scenario
    under many same-instant orderings instead — bounded depth-first
    enumeration or seeded random walks over the engine's choice points —
    asserting the scenario's invariants at every choice point and at the
    end of every run. A failure comes back with the {!Schedule.t} that
    produced it, which {!replay} re-executes deterministically.

    Scope: this explores orderings of {e engine callbacks} at equal
    timestamps. Code holding the discipline (one callback = one atomic
    protocol step) is exactly the code the paper's argument covers;
    multi-callback (torn) updates are what the checker exists to catch. *)

type checks = {
  check : unit -> string list;
      (** Invariant probe run at every choice point (between callbacks,
          never mid-callback). Non-empty = violations; the run aborts. *)
  at_end : unit -> string list;
      (** Probe run once after the engine drains (or hits the event
          bound): quiescence checks, conservation, liveness. *)
}

type scenario = Osiris_sim.Engine.t -> checks
(** A scenario builds its world on a fresh engine (spawning processes,
    scheduling events) and returns its invariant probes. It must be a
    pure function of the engine: exploration re-runs it many times. *)

type failure = {
  schedule : Schedule.t;
      (** Picks taken before the violation — feed to {!replay}. *)
  violations : string list;
  at : [ `Choice_point of int | `End ];
}

val pp_failure : Format.formatter -> failure -> unit

val run_once :
  ?max_events:int -> ?schedule:Schedule.t -> scenario -> failure option
(** Run one schedule: follow [schedule] (default []) at the first
    choice points, FIFO (pick 0) beyond its end. [max_events] (default
    2000) bounds runaway runs; the run then finishes through
    [at_end]. *)

val replay : ?max_events:int -> scenario -> Schedule.t -> failure option
(** [replay s sched = run_once ~schedule:sched s] — named for intent:
    re-execute a recorded counterexample. *)

val dfs :
  ?max_depth:int ->
  ?max_runs:int ->
  ?max_events:int ->
  scenario ->
  failure option * int
(** Bounded depth-first exploration: enumerate every schedule that
    deviates from FIFO within the first [max_depth] (default 12) choice
    points, stopping at the first failure or after [max_runs] (default
    4096) runs. Returns the failure (if any) and the number of runs
    executed. Exhaustive up to the depth bound: a [None] means no
    explored interleaving violated the scenario's invariants. *)

val random_walks :
  seed:int -> runs:int -> ?max_events:int -> scenario -> failure option * int
(** [runs] uniformly random schedules drawn from a generator seeded with
    [seed] — the long-tail complement to {!dfs}'s systematic prefix.
    Failures carry the concrete recorded schedule, so they replay
    deterministically regardless of the seed. Returns the failure and
    the number of runs executed. *)
