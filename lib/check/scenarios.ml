module Process = Osiris_sim.Process
module Desc = Osiris_board.Desc
module Desc_queue = Osiris_board.Desc_queue
module Invariants = Osiris_core.Invariants

type t = Explore.scenario

(* Both processes yield after every attempt, so host and board steps are
   always runnable at the same instant — every step of the protocol is a
   choice point for the explorer. *)
let queue_scenario ~direction ~name ~locking ~size ~items ~mutation eng =
  let q =
    Desc_queue.create eng ~metrics_prefix:("check." ^ name) ~size ~direction
      ~locking ~hooks:Desc_queue.free_hooks ()
  in
  Desc_queue.set_test_mutation q mutation;
  let produced = ref 0 and consumed = ref 0 in
  let enqueue, dequeue =
    match direction with
    | Desc_queue.Host_to_board ->
        (Desc_queue.host_enqueue, Desc_queue.board_dequeue)
    | Desc_queue.Board_to_host ->
        (Desc_queue.board_enqueue, Desc_queue.host_dequeue)
  in
  let writer_name, reader_name =
    match direction with
    | Desc_queue.Host_to_board -> ("host", "board")
    | Desc_queue.Board_to_host -> ("board", "host")
  in
  (* Retry caps keep every schedule terminating: a side that sees the
     queue full (resp. empty) this many times in a row gives up, the
     engine drains, and the stall surfaces as an at_end liveness
     violation instead of an event-budget cutoff. Any fair schedule
     finishes orders of magnitude below the cap. *)
  let max_stalls = (4 * items) + 16 in
  Process.spawn eng ~name:writer_name (fun () ->
      let fulls = ref 0 in
      while !produced < items && !fulls <= max_stalls do
        if enqueue q (Desc.v ~addr:(0x1000 + !produced) ~len:1 ()) then begin
          incr produced;
          fulls := 0
        end
        else incr fulls;
        Process.yield eng
      done);
  Process.spawn eng ~name:reader_name (fun () ->
      let empties = ref 0 in
      while !consumed < items && !empties <= max_stalls do
        (match dequeue q with
        | Some _ ->
            incr consumed;
            empties := 0
        | None -> incr empties);
        Process.yield eng
      done);
  let conservation () =
    Invariants.balance
      ~what:(name ^ " descriptor conservation")
      ~total:!produced
      ~parts:
        [
          ("consumed", !consumed);
          ("queued", List.length (Desc_queue.contents q));
        ]
  in
  {
    Explore.check =
      (fun () -> Desc_queue.check_invariants ~name q @ conservation ());
    at_end =
      (fun () ->
        Desc_queue.check_invariants ~name q
        @ conservation ()
        @
        if !consumed = items then []
        else
          [
            Printf.sprintf "%s liveness: consumed %d of %d" name !consumed
              items;
          ]);
  }

let host_to_board ?(locking = Desc_queue.Lock_free) ?(size = 4) ?(items = 8)
    ?(mutation = Desc_queue.No_mutation) () eng =
  queue_scenario ~direction:Desc_queue.Host_to_board ~name:"h2b" ~locking
    ~size ~items ~mutation eng

let board_to_host ?(locking = Desc_queue.Lock_free) ?(size = 4) ?(items = 8)
    ?(mutation = Desc_queue.No_mutation) () eng =
  queue_scenario ~direction:Desc_queue.Board_to_host ~name:"b2h" ~locking
    ~size ~items ~mutation eng
