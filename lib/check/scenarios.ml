module Process = Osiris_sim.Process
module Time = Osiris_sim.Time
module Desc = Osiris_board.Desc
module Desc_queue = Osiris_board.Desc_queue
module Invariants = Osiris_core.Invariants
module Cell = Osiris_atm.Cell
module Switch = Osiris_switch.Switch
module Sender = Osiris_transport.Sender
module Receiver = Osiris_transport.Receiver

type t = Explore.scenario

(* Both processes yield after every attempt, so host and board steps are
   always runnable at the same instant — every step of the protocol is a
   choice point for the explorer. *)
let queue_scenario ~direction ~name ~locking ~size ~items ~mutation eng =
  let q =
    Desc_queue.create eng ~metrics_prefix:("check." ^ name) ~size ~direction
      ~locking ~hooks:Desc_queue.free_hooks ()
  in
  Desc_queue.set_test_mutation q mutation;
  let produced = ref 0 and consumed = ref 0 in
  let enqueue, dequeue =
    match direction with
    | Desc_queue.Host_to_board ->
        (Desc_queue.host_enqueue, Desc_queue.board_dequeue)
    | Desc_queue.Board_to_host ->
        (Desc_queue.board_enqueue, Desc_queue.host_dequeue)
  in
  let writer_name, reader_name =
    match direction with
    | Desc_queue.Host_to_board -> ("host", "board")
    | Desc_queue.Board_to_host -> ("board", "host")
  in
  (* Retry caps keep every schedule terminating: a side that sees the
     queue full (resp. empty) this many times in a row gives up, the
     engine drains, and the stall surfaces as an at_end liveness
     violation instead of an event-budget cutoff. Any fair schedule
     finishes orders of magnitude below the cap. *)
  let max_stalls = (4 * items) + 16 in
  Process.spawn eng ~name:writer_name (fun () ->
      let fulls = ref 0 in
      while !produced < items && !fulls <= max_stalls do
        if enqueue q (Desc.v ~addr:(0x1000 + !produced) ~len:1 ()) then begin
          incr produced;
          fulls := 0
        end
        else incr fulls;
        Process.yield eng
      done);
  Process.spawn eng ~name:reader_name (fun () ->
      let empties = ref 0 in
      while !consumed < items && !empties <= max_stalls do
        (match dequeue q with
        | Some _ ->
            incr consumed;
            empties := 0
        | None -> incr empties);
        Process.yield eng
      done);
  let conservation () =
    Invariants.balance
      ~what:(name ^ " descriptor conservation")
      ~total:!produced
      ~parts:
        [
          ("consumed", !consumed);
          ("queued", List.length (Desc_queue.contents q));
        ]
  in
  {
    Explore.check =
      (fun () -> Desc_queue.check_invariants ~name q @ conservation ());
    at_end =
      (fun () ->
        Desc_queue.check_invariants ~name q
        @ conservation ()
        @
        if !consumed = items then []
        else
          [
            Printf.sprintf "%s liveness: consumed %d of %d" name !consumed
              items;
          ]);
  }

(* The switch's output-queue datapath under arbitrary enqueue/dequeue
   interleavings: an ingress process feeds cells for one VC through the
   routing table while an egress process drains the output port, both
   yielding after every step. The probe is the switch's own conservation
   equation — cells in = forwarded + queued + dropped at {e every} choice
   point, not just at quiescence — plus VCI-rewrite correctness on each
   drained cell and an at_end liveness check that every cell was either
   forwarded or dropped to a full queue (the queue is deliberately
   smaller than the burst so both outcomes occur under FIFO). *)
let switch_datapath ?(queue_cells = 3) ?(items = 8) () eng =
  let cfg =
    { Switch.default_config with Switch.nports = 2; Switch.queue_cells }
  in
  let sw = Switch.create eng ~name:"chk-sw" cfg in
  Switch.add_route sw ~in_port:0 ~in_vci:10 ~out_port:1 ~out_vci:20;
  let produced = ref 0 and drained = ref 0 in
  let bad_rewrites = ref 0 in
  let max_stalls = (4 * items) + 16 in
  Process.spawn eng ~name:"ingress" (fun () ->
      while !produced < items do
        Switch.ingress_cell sw ~port:0
          (Cell.make ~vci:10 ~seq:!produced ~eom:true ~last_of_pdu:true
             (Bytes.make Cell.data_size '\000'));
        incr produced;
        Process.yield eng
      done);
  Process.spawn eng ~name:"egress" (fun () ->
      let empties = ref 0 in
      let settled () =
        let s = Switch.stats sw in
        !drained + s.Switch.dropped_overflow >= items
        && Switch.occupancy sw = 0
      in
      while (not (settled ())) && !empties <= max_stalls do
        (match Switch.drain_one sw ~port:1 with
        | Some cell ->
            if cell.Cell.vci <> 20 then incr bad_rewrites;
            incr drained;
            empties := 0
        | None -> incr empties);
        Process.yield eng
      done);
  let conservation () =
    Invariants.balance ~what:"switch cell conservation"
      ~total:(Switch.stats sw).Switch.cells_in
      ~parts:(Switch.conservation sw)
  in
  let rewrites () =
    if !bad_rewrites = 0 then []
    else [ Printf.sprintf "switch: %d cells escaped unrewritten" !bad_rewrites ]
  in
  {
    Explore.check = (fun () -> conservation () @ rewrites ());
    at_end =
      (fun () ->
        let s = Switch.stats sw in
        conservation () @ rewrites ()
        @ (if s.Switch.dropped_no_route = 0 then []
           else
             [
               Printf.sprintf "switch: %d cells dropped on a programmed route"
                 s.Switch.dropped_no_route;
             ])
        @
        if !drained + s.Switch.dropped_overflow = items then []
        else
          [
            Printf.sprintf
              "switch liveness: drained %d + dropped %d of %d cells" !drained
              s.Switch.dropped_overflow items;
          ]);
  }

(* The transport sender/receiver state machines across a two-queue wire:
   a data process delivers segments to the receiver, an ack process
   delivers acks back to the sender, both stepping on the same fixed
   quantum so every delivery is an engine choice point against the other
   direction (and against the sender's retransmission timer once it
   fires). One mid-stream segment's first transmission and the first ack
   are dropped, so every explored schedule crosses the loss-recovery
   machinery — duplicate-sack fast retransmit, cumulative-ack catch-up,
   possibly an RTO — not just the happy path. The probes are the
   production invariants ({!Osiris_transport.Sender.invariants} /
   {!Osiris_transport.Receiver.invariants}: window bounds, byte and
   transmission conservation, timer discipline) at every choice point,
   plus at_end liveness and a byte-exact check of the delivered
   stream. *)
let transport ?(segs = 6) ?(drop_seg = 2) ?(drop_first_ack = true) () eng =
  let config =
    {
      Sender.seg_size = 16;
      window = 4;
      init_cwnd = 2;
      rto_init = Time.us 500;
      rto_min = Time.us 100;
      rto_max = Time.ms 2;
      max_retries = 8;
      dup_ack_threshold = 2;
      ecn = false;
    }
  in
  let total = segs * config.Sender.seg_size in
  let pattern = Bytes.init total (fun i -> Char.chr ((i * 13 + 5) land 0xff)) in
  let data_q = Queue.create () and ack_q = Queue.create () in
  let got = Buffer.create total in
  let receiver =
    Receiver.create ~name:"chk-rcv" ~window:config.Sender.window
      ~deliver:(fun ~seq:_ payload -> Buffer.add_bytes got payload)
      ~tx_ack:(fun ~ack ~sack ~ece -> Queue.add (ack, sack, ece) ack_q)
      ()
  in
  let sender =
    Sender.create eng ~name:"chk-snd" ~config
      ~tx:(fun ~seq ~retransmit payload ->
        Queue.add (seq, retransmit, payload) data_q)
      ()
  in
  Sender.offer sender (Bytes.copy pattern);
  Sender.close sender;
  (* Step caps keep every schedule terminating even if recovery wedges;
     a stall then surfaces as the at_end liveness violation. A healthy
     run finishes far below the cap (the RTO floor is ~50 quanta). *)
  let quantum = Time.us 10 in
  let max_steps = 600 in
  let ack_dropped = ref (not drop_first_ack) in
  Process.spawn eng ~name:"net-data" (fun () ->
      let steps = ref 0 in
      while Sender.state sender = Sender.Active && !steps <= max_steps do
        incr steps;
        (match Queue.take_opt data_q with
        | Some (seq, retransmit, _) when seq = drop_seg && not retransmit ->
            () (* the scripted loss: first transmission only *)
        | Some (seq, _, payload) ->
            Receiver.on_data receiver ~seq ~marked:false payload
        | None -> ());
        Process.sleep eng quantum
      done);
  Process.spawn eng ~name:"net-ack" (fun () ->
      let steps = ref 0 in
      while Sender.state sender = Sender.Active && !steps <= max_steps do
        incr steps;
        (match Queue.take_opt ack_q with
        | Some _ when not !ack_dropped -> ack_dropped := true
        | Some (ack, sack, ece) -> Sender.on_ack sender ~ack ~sack ~ece
        | None -> ());
        Process.sleep eng quantum
      done);
  let invs () = Sender.invariants sender @ Receiver.invariants receiver in
  {
    Explore.check = invs;
    at_end =
      (fun () ->
        invs ()
        @ (match Sender.state sender with
          | Sender.Finished -> []
          | Sender.Active -> [ "transport liveness: sender still Active" ]
          | Sender.Failed r ->
              [ Printf.sprintf "transport liveness: sender failed: %s" r ])
        @
        if Buffer.length got = total && Bytes.equal (Buffer.to_bytes got) pattern
        then []
        else
          [
            Printf.sprintf
              "transport delivery: %d of %d bytes delivered%s"
              (Buffer.length got) total
              (if Buffer.length got = total then ", corrupted" else "");
          ]);
  }

let host_to_board ?(locking = Desc_queue.Lock_free) ?(size = 4) ?(items = 8)
    ?(mutation = Desc_queue.No_mutation) () eng =
  queue_scenario ~direction:Desc_queue.Host_to_board ~name:"h2b" ~locking
    ~size ~items ~mutation eng

let board_to_host ?(locking = Desc_queue.Lock_free) ?(size = 4) ?(items = 8)
    ?(mutation = Desc_queue.No_mutation) () eng =
  queue_scenario ~direction:Desc_queue.Board_to_host ~name:"b2h" ~locking
    ~size ~items ~mutation eng
