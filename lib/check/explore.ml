module Engine = Osiris_sim.Engine
module Rng = Osiris_util.Rng

type checks = { check : unit -> string list; at_end : unit -> string list }

type scenario = Engine.t -> checks

type failure = {
  schedule : Schedule.t;
  violations : string list;
  at : [ `Choice_point of int | `End ];
}

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>schedule %s (%s):@,%a@]" (Schedule.to_string f.schedule)
    (match f.at with
    | `Choice_point k -> Printf.sprintf "choice point %d" k
    | `End -> "at end")
    (Format.pp_print_list Format.pp_print_string)
    f.violations

(* A violation found at a choice point aborts the run from inside the
   engine chooser; [trace] is (pick, candidate-count) pairs, newest
   first, for the choice points already taken. *)
exception Violation_found of string list

(* [decide k ~count] picks the callback index for choice point [k]. *)
let run_traced ?(max_events = 2000) ~decide scenario =
  let eng = Engine.create () in
  let checks = scenario eng in
  let trace = ref [] in
  Engine.set_chooser eng
    (Some
       (fun ~now:_ ~count ->
         (match checks.check () with
         | [] -> ()
         | vs -> raise (Violation_found vs));
         let k = List.length !trace in
         let pick = decide k ~count in
         let pick = if pick < 0 || pick >= count then 0 else pick in
         trace := (pick, count) :: !trace;
         pick));
  let schedule () = List.rev_map fst !trace in
  match Engine.run ~max_events eng with
  | () -> (
      let trace = List.rev !trace in
      match checks.at_end () with
      | [] -> (trace, None)
      | vs ->
          (trace, Some { schedule = List.map fst trace; violations = vs; at = `End }))
  | exception Violation_found vs ->
      let at = `Choice_point (List.length !trace) in
      (List.rev !trace, Some { schedule = schedule (); violations = vs; at })

let decide_prefix prefix k ~count:_ =
  match List.nth_opt prefix k with Some p -> p | None -> 0

let run_once ?max_events ?(schedule = []) scenario =
  snd (run_traced ?max_events ~decide:(decide_prefix schedule) scenario)

let replay ?max_events scenario schedule = run_once ?max_events ~schedule scenario

let take n l = List.filteri (fun i _ -> i < n) l

let dfs ?(max_depth = 12) ?(max_runs = 4096) ?max_events scenario =
  let runs = ref 0 in
  let result = ref None in
  let stack = ref [ [] ] in
  while !result = None && !stack <> [] && !runs < max_runs do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        incr runs;
        let trace, failure =
          run_traced ?max_events ~decide:(decide_prefix prefix) scenario
        in
        (match failure with
        | Some f -> result := Some f
        | None ->
            (* Branch on every choice point this run reached beyond the
               prefix (it followed FIFO there), newest alternatives on
               top so the search goes depth-first. *)
            let picks = List.map fst trace in
            let base = List.length prefix in
            let horizon = min (List.length trace) max_depth in
            for k = base to horizon - 1 do
              let count = snd (List.nth trace k) in
              for alt = 1 to count - 1 do
                stack := (take k picks @ [ alt ]) :: !stack
              done
            done)
  done;
  (!result, !runs)

let random_walks ~seed ~runs ?max_events scenario =
  let rng = Rng.create ~seed in
  let result = ref None in
  let executed = ref 0 in
  while !result = None && !executed < runs do
    incr executed;
    let _, failure =
      run_traced ?max_events ~decide:(fun _ ~count -> Rng.int rng count) scenario
    in
    match failure with Some f -> result := Some f | None -> ()
  done;
  (!result, !executed)
