(* Command-line driver for the OSIRIS reproduction: list and run the
   paper's tables, figures and ablations. *)

open Cmdliner
module Registry = Osiris_experiments.Registry

let list_cmd =
  let doc = "List every reproducible experiment." in
  let run () =
    List.iter
      (fun (e : Registry.entry) ->
        Printf.printf "%-24s %s\n" e.Registry.id e.Registry.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment by id (see $(b,list))." in
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID")
  in
  let run id =
    match Registry.find id with
    | Some e ->
        Registry.run e;
        `Ok ()
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown experiment %S; known: %s" id
              (String.concat ", " (Registry.ids ())) )
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ id))

let all_cmd =
  let doc = "Run every experiment (figures included; takes a while)." in
  let run () = List.iter Registry.run Registry.all in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ const ())

let quick_cmd =
  let doc = "Run the quick set (all tables and ablations, no full figure sweeps)." in
  let run () = List.iter Registry.run Registry.quick in
  Cmd.v (Cmd.info "quick" ~doc) Term.(const run $ const ())

let () =
  let doc =
    "Reproduction of 'Experiences with a High-Speed Network Adaptor' \
     (SIGCOMM '94) on a simulated OSIRIS/TURBOchannel platform"
  in
  let info = Cmd.info "osiris_repro" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd; quick_cmd ]))
