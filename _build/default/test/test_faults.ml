(* Failure-injection and stress tests: the system must stay correct (no
   corruption, no leaks, no wedges) under lossy links, jittery striping,
   and concurrent streams. *)

open Osiris_sim
open Osiris_core
module Board = Osiris_board.Board
module Atm_link = Osiris_link.Atm_link
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Udp = Osiris_proto.Udp

let raw_vci = 9

let pair ?link ?(machine = Machine.ds5000_200) () =
  let eng = Engine.create () in
  let a = Host.create eng machine ~addr:0x0a000001l Host.default_config in
  let b =
    Host.create eng machine ~addr:0x0a000002l
      { Host.default_config with seed = 43 }
  in
  ignore (Network.connect eng ?link a b);
  (eng, a, b)

(* Heavy cell loss: most PDUs die, but every delivered byte is correct and
   the system keeps flowing (no buffer leaks, no reassembly wedge). *)
let test_lossy_link_no_corruption () =
  let link =
    { Atm_link.default_config with Atm_link.drop_prob = 0.003 }
  in
  let eng, a, b = pair ~link () in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let template = Bytes.init 8192 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let good = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      if not (Bytes.equal (Msg.read_all msg) template) then
        Alcotest.fail "corrupted PDU delivered despite cell loss";
      incr good;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 60 do
        let m = Msg.alloc a.Host.vs ~len:8192 () in
        Msg.blit_into m ~off:0 ~src:template;
        Driver.send a.Host.driver ~vci:raw_vci m
      done);
  Engine.run ~until:(Time.s 1) eng;
  let bstats = Board.stats b.Host.board in
  Alcotest.(check bool)
    (Printf.sprintf "losses occurred (%d reasm errors)"
       bstats.Board.reassembly_errors)
    true
    (bstats.Board.reassembly_errors > 0
    || (Driver.stats b.Host.driver).Driver.crc_drops > 0
    || (Driver.stats b.Host.driver).Driver.aborted_chains > 0);
  Alcotest.(check bool)
    (Printf.sprintf "flow survived (%d delivered)" !good)
    true (!good > 10);
  (* No leak: the receive pool must be reusable afterwards. *)
  Alcotest.(check bool) "buffers recovered" true
    (Driver.pool_available b.Host.driver
     + Osiris_board.Desc_queue.count
         (Board.free_queue (Board.kernel_channel b.Host.board))
    > 40)

(* Random per-cell queueing jitter (switch-port delays, §2.6's third cause
   of skew): per-link order is preserved by construction, and per-link
   reassembly keeps delivering intact PDUs. *)
let test_jittery_striping_end_to_end () =
  let link =
    { Atm_link.default_config with Atm_link.jitter_mean = Time.us 3 }
  in
  let eng, a, b = pair ~link () in
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let template = Bytes.init 12000 (fun i -> Char.chr ((i * 13) land 0xff)) in
  let good = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      Alcotest.(check bool) "intact under jitter" true
        (Bytes.equal (Msg.read_all msg) template);
      incr good;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 20 do
        let m = Msg.alloc a.Host.vs ~len:12000 () in
        Msg.blit_into m ~off:0 ~src:template;
        Driver.send a.Host.driver ~vci:raw_vci m;
        Process.sleep eng (Time.us 500)
      done);
  Engine.run ~until:(Time.s 1) eng;
  Alcotest.(check int) "all delivered" 20 !good

(* Several VCIs interleaving on one link: streams never bleed into each
   other. *)
let test_concurrent_streams_isolation () =
  let eng, a, b = pair () in
  let streams = [ (11, 'A', 3000); (12, 'B', 9000); (13, 'C', 500) ] in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun (vci, tag, size) ->
      Board.bind_vci a.Host.board ~vci (Board.kernel_channel a.Host.board);
      Board.bind_vci b.Host.board ~vci (Board.kernel_channel b.Host.board);
      Demux.bind b.Host.demux ~vci ~name:"sink" (fun ~vci:_ msg ->
          let data = Msg.read_all msg in
          Alcotest.(check int) (Printf.sprintf "stream %c size" tag) size
            (Bytes.length data);
          Bytes.iter
            (fun c ->
              if c <> tag then
                Alcotest.fail
                  (Printf.sprintf "stream %c polluted with %c" tag c))
            data;
          Hashtbl.replace counts vci
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts vci));
          Msg.dispose msg))
    streams;
  List.iter
    (fun (vci, tag, size) ->
      Process.spawn eng ~name:"tx" (fun () ->
          for _ = 1 to 12 do
            Driver.send a.Host.driver ~vci
              (Msg.alloc a.Host.vs ~len:size ~fill:(fun _ -> tag) ());
            Process.sleep eng (Time.us 150)
          done))
    streams;
  Engine.run ~until:(Time.s 1) eng;
  List.iter
    (fun (vci, tag, _) ->
      Alcotest.(check int)
        (Printf.sprintf "stream %c complete" tag)
        12
        (Option.value ~default:0 (Hashtbl.find_opt counts vci)))
    streams

(* UDP checksum on over a corrupting link: corrupt datagrams are dropped
   by the CRC at the adaptor (never billed to UDP), clean ones verify. *)
let test_udp_over_corrupting_link () =
  let link =
    { Atm_link.default_config with Atm_link.corrupt_prob = 0.001 }
  in
  let eng, a, b = pair ~link () in
  let ok = ref 0 in
  Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
      incr ok;
      Msg.dispose msg);
  Process.spawn eng ~name:"tx" (fun () ->
      for _ = 1 to 40 do
        Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7
          (Msg.alloc a.Host.vs ~len:4096 ());
        Process.sleep eng (Time.us 300)
      done);
  Engine.run ~until:(Time.s 1) eng;
  let crc = (Driver.stats b.Host.driver).Driver.crc_drops in
  Alcotest.(check bool)
    (Printf.sprintf "some dropped by CRC (%d), most delivered (%d)" crc !ok)
    true
    (crc > 0 && !ok > 25 && !ok + crc = 40);
  Alcotest.(check int) "UDP never saw corrupt data" 0
    (Udp.stats b.Host.udp).Udp.checksum_errors

(* Determinism: two identical runs produce byte-identical outcomes. *)
let test_network_determinism () =
  let run () =
    let link =
      { Atm_link.default_config with
        Atm_link.jitter_mean = Time.us 2; drop_prob = 0.002 }
    in
    let eng, a, b = pair ~link () in
    let n = ref 0 in
    Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
        incr n;
        Msg.dispose msg);
    Process.spawn eng ~name:"tx" (fun () ->
        for _ = 1 to 30 do
          Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7
            (Msg.alloc a.Host.vs ~len:6000 ());
          Process.sleep eng (Time.us 200)
        done);
    Engine.run ~until:(Time.ms 500) eng;
    ( !n,
      (Board.stats b.Host.board).Board.cells_received,
      (Driver.stats b.Host.driver).Driver.crc_drops,
      Engine.now eng )
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "identical outcomes" true (r1 = r2)

let suite =
  [
    Alcotest.test_case "lossy link: no corruption, no wedge" `Quick
      test_lossy_link_no_corruption;
    Alcotest.test_case "jittery striping end-to-end" `Quick
      test_jittery_striping_end_to_end;
    Alcotest.test_case "concurrent streams stay isolated" `Quick
      test_concurrent_streams_isolation;
    Alcotest.test_case "udp over a corrupting link" `Quick
      test_udp_over_corrupting_link;
    Alcotest.test_case "whole-network determinism" `Quick
      test_network_determinism;
  ]
