(* Tests for checksums, CRC, RNG and statistics. *)

open Osiris_util

let bytes_gen = QCheck.(map Bytes.of_string (string_of_size Gen.(0 -- 200)))

let checksum_verify_roundtrip =
  QCheck.Test.make ~name:"checksum: computed region verifies" ~count:300
    QCheck.(map Bytes.of_string (string_of_size Gen.(2 -- 200)))
    (fun b ->
      (* Place a checksum over the whole region in its first two bytes. *)
      Bytes.set b 0 '\000';
      Bytes.set b 1 '\000';
      let c = Checksum.compute b ~off:0 ~len:(Bytes.length b) in
      Bytes.set b 0 (Char.chr (c lsr 8));
      Bytes.set b 1 (Char.chr (c land 0xff));
      Checksum.verify b ~off:0 ~len:(Bytes.length b))

let checksum_detects_corruption =
  QCheck.Test.make ~name:"checksum: single-byte corruption detected"
    ~count:300
    QCheck.(pair (map Bytes.of_string (string_of_size Gen.(4 -- 100))) small_nat)
    (fun (b, i) ->
      Bytes.set b 0 '\000';
      Bytes.set b 1 '\000';
      let c = Checksum.compute b ~off:0 ~len:(Bytes.length b) in
      Bytes.set b 0 (Char.chr (c lsr 8));
      Bytes.set b 1 (Char.chr (c land 0xff));
      let i = 2 + (i mod (Bytes.length b - 2)) in
      let orig = Char.code (Bytes.get b i) in
      (* One's-complement arithmetic cannot distinguish 0x00 from 0xff in
         some positions; flip to a guaranteed-different class. *)
      let flipped = orig lxor 0x55 in
      QCheck.assume (flipped <> orig && not (orig = 0x00 && flipped = 0xff)
                     && not (orig = 0xff && flipped = 0x00));
      Bytes.set b i (Char.chr flipped);
      not (Checksum.verify b ~off:0 ~len:(Bytes.length b)))

let checksum_combine =
  QCheck.Test.make ~name:"checksum: split = whole" ~count:300
    QCheck.(pair bytes_gen small_nat)
    (fun (b, cut) ->
      let n = Bytes.length b in
      (* Split on an even boundary: one's-complement sums compose at
         16-bit granularity. *)
      let cut = if n < 2 then 0 else (cut mod (n / 2)) * 2 in
      let whole = Checksum.ones_complement_sum b ~off:0 ~len:n in
      let a = Checksum.ones_complement_sum b ~off:0 ~len:cut in
      let c = Checksum.ones_complement_sum b ~off:cut ~len:(n - cut) in
      Checksum.combine a c = whole)

let test_crc32_vector () =
  (* Standard test vector: CRC-32("123456789") = 0xCBF43926. *)
  let b = Bytes.of_string "123456789" in
  Alcotest.(check int32) "known vector" 0xCBF43926l
    (Crc32.compute b ~off:0 ~len:9)

let crc32_incremental =
  QCheck.Test.make ~name:"crc32: incremental = one-shot" ~count:200
    QCheck.(pair bytes_gen small_nat)
    (fun (b, cut) ->
      let n = Bytes.length b in
      let cut = if n = 0 then 0 else cut mod (n + 1) in
      let oneshot = Crc32.compute b ~off:0 ~len:n in
      let acc = Crc32.update Crc32.init b ~off:0 ~len:cut in
      let acc = Crc32.update acc b ~off:cut ~len:(n - cut) in
      Crc32.finalize acc = oneshot)

let crc32_detects_corruption =
  QCheck.Test.make ~name:"crc32: corruption detected" ~count:200
    QCheck.(pair (map Bytes.of_string (string_of_size Gen.(1 -- 100))) small_nat)
    (fun (b, i) ->
      let n = Bytes.length b in
      let before = Crc32.compute b ~off:0 ~len:n in
      let i = i mod n in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
      Crc32.compute b ~off:0 ~len:n <> before)

let test_rng_determinism () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.float r 3.0 in
    Alcotest.(check bool) "float range" true (v >= 0.0 && v < 3.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create ~seed:1 in
  let child = Rng.split parent in
  let a = Rng.bits64 parent and b = Rng.bits64 child in
  Alcotest.(check bool) "distinct streams" true (a <> b)

let test_shuffle_permutation () =
  let r = Rng.create ~seed:3 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_stats_reference () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "variance (sample)" (32.0 /. 7.0)
    (Stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max s);
  Alcotest.(check int) "count" 8 (Stats.count s)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:100 in
  for i = 1 to 100 do
    Stats.Histogram.add h (float_of_int i -. 0.5)
  done;
  Alcotest.(check (float 1.01)) "median" 50.0
    (Stats.Histogram.percentile h 50.0);
  Alcotest.(check (float 1.01)) "p99" 99.0
    (Stats.Histogram.percentile h 99.0)

let test_units () =
  Alcotest.(check (float 1e-6)) "mbps" 8.0
    (Units.mbps ~bytes_count:1_000_000 ~seconds:1.0)

let suite =
  [
    QCheck_alcotest.to_alcotest checksum_verify_roundtrip;
    QCheck_alcotest.to_alcotest checksum_detects_corruption;
    QCheck_alcotest.to_alcotest checksum_combine;
    Alcotest.test_case "crc32: known vector" `Quick test_crc32_vector;
    QCheck_alcotest.to_alcotest crc32_incremental;
    QCheck_alcotest.to_alcotest crc32_detects_corruption;
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick
      test_shuffle_permutation;
    Alcotest.test_case "stats: reference values" `Quick test_stats_reference;
    Alcotest.test_case "stats: histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "units: mbps" `Quick test_units;
  ]
