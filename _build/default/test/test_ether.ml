(* Tests for the Ethernet baseline adaptor. *)

open Osiris_sim
module Ether = Osiris_ether.Ether
module Machine = Osiris_core.Machine
module Cpu = Osiris_os.Cpu
module Irq = Osiris_os.Irq
module Tc = Osiris_bus.Turbochannel

let pair () =
  let machine = Machine.ds5000_200 in
  let eng = Engine.create () in
  let mk () =
    let cpu = Cpu.create eng ~hz:machine.Machine.cpu_hz in
    let bus = Tc.create eng machine.Machine.bus in
    let irq =
      Irq.create eng ~cpu ~dispatch_cost:machine.Machine.interrupt_cost
    in
    (Ether.create eng ~cpu ~bus ~irq ~irq_line:1 Ether.default_config, irq)
  in
  let a, _ = mk () and b, irq_b = mk () in
  Ether.connect a b;
  (eng, a, b, irq_b)

let test_message_integrity () =
  let eng, a, b, _ = pair () in
  let got = ref [] in
  Ether.set_receiver b (fun msg -> got := msg :: !got);
  let small = Bytes.init 100 (fun i -> Char.chr (i land 0xff)) in
  let big = Bytes.init 4000 (fun i -> Char.chr ((i * 3) land 0xff)) in
  Process.spawn eng ~name:"tx" (fun () ->
      Ether.send a small;
      Ether.send a big);
  Engine.run ~until:(Time.ms 50) eng;
  match List.rev !got with
  | [ m1; m2 ] ->
      Alcotest.(check bytes) "small intact" small m1;
      Alcotest.(check bytes) "big intact (chunked at MTU)" big m2
  | l -> Alcotest.fail (Printf.sprintf "expected 2 messages, got %d"
                          (List.length l))

let test_per_frame_interrupts () =
  let eng, a, b, irq_b = pair () in
  Ether.set_receiver b ignore;
  Process.spawn eng ~name:"tx" (fun () ->
      Ether.send a (Bytes.create 4000) (* 3 frames *));
  Engine.run ~until:(Time.ms 50) eng;
  Alcotest.(check int) "3 frames" 3 (Ether.stats b).Ether.frames_received;
  (* No coalescing on this hardware: one interrupt per frame. *)
  Alcotest.(check int) "one interrupt per frame" 3 (Irq.count irq_b)

let test_wire_rate () =
  (* 10 Mb/s: a 1500-byte frame takes ~1.2 ms on the wire. *)
  let eng, a, b, _ = pair () in
  let t_got = ref 0 in
  Ether.set_receiver b (fun _ -> t_got := Engine.now eng);
  Process.spawn eng ~name:"tx" (fun () -> Ether.send a (Bytes.create 1500));
  Engine.run ~until:(Time.ms 50) eng;
  let expected = (1500 + 38) * 8 * 100 in
  Alcotest.(check bool)
    (Printf.sprintf "arrival %d ~ wire time %d" !t_got expected)
    true
    (!t_got > expected && !t_got < expected + Time.us 300)

let test_copy_accounting () =
  let eng, a, b, _ = pair () in
  Ether.set_receiver b ignore;
  Process.spawn eng ~name:"tx" (fun () -> Ether.send a (Bytes.create 3000));
  Engine.run ~until:(Time.ms 50) eng;
  Alcotest.(check int) "every byte copied on receive" 3000
    (Ether.stats b).Ether.bytes_copied

let suite =
  [
    Alcotest.test_case "message integrity across MTU chunking" `Quick
      test_message_integrity;
    Alcotest.test_case "per-frame interrupts (no coalescing)" `Quick
      test_per_frame_interrupts;
    Alcotest.test_case "10 Mb/s wire rate" `Quick test_wire_rate;
    Alcotest.test_case "receive copies" `Quick test_copy_accounting;
  ]
