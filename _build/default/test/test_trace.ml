(* Tests for the trace facility. *)

module Trace = Osiris_sim.Trace

let test_enable_disable () =
  Trace.disable Trace.Driver;
  Alcotest.(check bool) "off by default" false (Trace.enabled Trace.Driver);
  Trace.enable Trace.Driver;
  Alcotest.(check bool) "on after enable" true (Trace.enabled Trace.Driver);
  Trace.disable Trace.Driver;
  Alcotest.(check bool) "off after disable" false (Trace.enabled Trace.Driver)

let test_emit_disabled_is_cheap () =
  Trace.disable Trace.Link;
  (* Must not raise and must not evaluate into visible output. *)
  Trace.emitf Trace.Link ~now:0 "never shown %d" 42;
  Trace.emit Trace.Link ~now:0 "never shown"

let test_category_names () =
  List.iter
    (fun (c, n) -> Alcotest.(check string) "name" n (Trace.category_name c))
    [ (Trace.Board_tx, "board-tx"); (Trace.Board_rx, "board-rx");
      (Trace.Driver, "driver"); (Trace.Protocol, "protocol");
      (Trace.Link, "link") ]

let suite =
  [
    Alcotest.test_case "enable/disable" `Quick test_enable_disable;
    Alcotest.test_case "disabled emit is silent" `Quick
      test_emit_disabled_is_cheap;
    Alcotest.test_case "category names" `Quick test_category_names;
  ]
