(* Tests for the data-cache model: hits, misses, write-through, stale data
   under software coherence, hardware update, invalidation. *)

open Osiris_sim
module Cache = Osiris_cache.Data_cache
module Phys_mem = Osiris_mem.Phys_mem
module Tc = Osiris_bus.Turbochannel

let setup ?(coherence = Cache.Software) () =
  let eng = Engine.create () in
  let mem = Phys_mem.create ~size:(1 lsl 20) ~page_size:4096 () in
  let bus = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let cache =
    Cache.create eng ~mem ~bus
      {
        Cache.size = 64 * 1024;
        line_size = 16;
        coherence;
        cpu_hz = 25_000_000;
        hit_cycles_per_word = 1;
        fill_overhead_cycles = 13;
        invalidate_cycles_per_word = 1;
      }
  in
  (eng, mem, cache)

let in_process eng f =
  let r = ref None in
  Process.spawn eng ~name:"t" (fun () -> r := Some (f ()));
  Engine.run eng;
  Option.get !r

let test_read_returns_memory () =
  let eng, mem, cache = setup () in
  in_process eng (fun () ->
      Phys_mem.fill mem ~addr:512 ~len:64 'Q';
      let b = Cache.read cache ~addr:512 ~len:64 in
      Alcotest.(check bytes) "fill read" (Bytes.make 64 'Q') b)

let test_hit_vs_miss_cost () =
  let eng, _, cache = setup () in
  in_process eng (fun () ->
      let t0 = Engine.now eng in
      ignore (Cache.read cache ~addr:0 ~len:64);
      let t_miss = Engine.now eng - t0 in
      let t1 = Engine.now eng in
      ignore (Cache.read cache ~addr:0 ~len:64);
      let t_hit = Engine.now eng - t1 in
      Alcotest.(check bool) "miss costs more" true (t_miss > 2 * t_hit);
      let st = Cache.stats cache in
      Alcotest.(check int) "misses" 4 st.Cache.misses;
      Alcotest.(check int) "hits" 4 st.Cache.hits)

let test_stale_data_software () =
  let eng, mem, cache = setup () in
  in_process eng (fun () ->
      Phys_mem.fill mem ~addr:0 ~len:64 'A';
      ignore (Cache.read cache ~addr:0 ~len:64);
      (* DMA overwrites memory; the cache is not told to update. *)
      Phys_mem.fill mem ~addr:0 ~len:64 'B';
      Cache.dma_wrote cache ~addr:0 ~len:64;
      let b = Cache.read cache ~addr:0 ~len:64 in
      Alcotest.(check bytes) "stale bytes returned" (Bytes.make 64 'A') b;
      let st = Cache.stats cache in
      Alcotest.(check bool) "overlaps counted" true (st.Cache.stale_overlaps > 0);
      Alcotest.(check bool) "stale read counted" true (st.Cache.stale_reads > 0);
      (* Invalidate, then the truth is visible. *)
      Cache.invalidate cache ~addr:0 ~len:64;
      let b2 = Cache.read cache ~addr:0 ~len:64 in
      Alcotest.(check bytes) "fresh after invalidate" (Bytes.make 64 'B') b2)

let test_hardware_update () =
  let eng, mem, cache = setup ~coherence:Cache.Hardware_update () in
  in_process eng (fun () ->
      Phys_mem.fill mem ~addr:0 ~len:64 'A';
      ignore (Cache.read cache ~addr:0 ~len:64);
      Phys_mem.fill mem ~addr:0 ~len:64 'B';
      Cache.dma_wrote cache ~addr:0 ~len:64;
      let b = Cache.read cache ~addr:0 ~len:64 in
      Alcotest.(check bytes) "coherent" (Bytes.make 64 'B') b;
      Alcotest.(check int) "no stale reads"
        0 (Cache.stats cache).Cache.stale_reads)

let test_hardware_update_allocates () =
  (* The 3000/600's L2 takes DMA data in: the first CPU read hits. *)
  let eng, mem, cache = setup ~coherence:Cache.Hardware_update () in
  in_process eng (fun () ->
      Phys_mem.fill mem ~addr:1024 ~len:16 'Z';
      Cache.dma_wrote cache ~addr:1024 ~len:16;
      Alcotest.(check bool) "resident after DMA" true
        (Cache.resident cache ~addr:1024))

let test_write_through () =
  let eng, mem, cache = setup () in
  in_process eng (fun () ->
      ignore (Cache.read cache ~addr:0 ~len:16);
      Cache.write cache ~addr:0 ~src:(Bytes.make 16 'W');
      (* memory updated immediately *)
      Alcotest.(check bytes) "memory updated" (Bytes.make 16 'W')
        (Phys_mem.bytes_of_region mem ~addr:0 ~len:16);
      (* resident line updated too: a read hits and agrees *)
      let b = Cache.read cache ~addr:0 ~len:16 in
      Alcotest.(check bytes) "cache coherent with own write"
        (Bytes.make 16 'W') b)

let test_invalidation_cost () =
  let eng, _, cache = setup () in
  in_process eng (fun () ->
      let t0 = Engine.now eng in
      (* 16 KB = 4096 words at 1 cycle each at 25 MHz = 163.84 us *)
      Cache.invalidate cache ~addr:0 ~len:(16 * 1024);
      let dt = Engine.now eng - t0 in
      Alcotest.(check int) "one cycle per word" 163_840 dt)

let test_direct_mapped_eviction () =
  let eng, mem, cache = setup () in
  in_process eng (fun () ->
      Phys_mem.fill mem ~addr:0 ~len:16 'A';
      ignore (Cache.read cache ~addr:0 ~len:16);
      Alcotest.(check bool) "resident" true (Cache.resident cache ~addr:0);
      (* Same index, different tag: 64 KB away. *)
      ignore (Cache.read cache ~addr:(64 * 1024) ~len:16);
      Alcotest.(check bool) "evicted by alias" false
        (Cache.resident cache ~addr:0))

let suite =
  [
    Alcotest.test_case "read returns memory" `Quick test_read_returns_memory;
    Alcotest.test_case "hit vs miss cost" `Quick test_hit_vs_miss_cost;
    Alcotest.test_case "stale data under software coherence" `Quick
      test_stale_data_software;
    Alcotest.test_case "hardware update mode" `Quick test_hardware_update;
    Alcotest.test_case "hardware update allocates" `Quick
      test_hardware_update_allocates;
    Alcotest.test_case "write-through" `Quick test_write_through;
    Alcotest.test_case "invalidation cost (1 cycle/word)" `Quick
      test_invalidation_cost;
    Alcotest.test_case "direct-mapped eviction" `Quick
      test_direct_mapped_eviction;
  ]
