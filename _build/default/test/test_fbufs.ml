(* Tests for the fbuf allocator: cached pools, LRU, costs. *)

open Osiris_sim
module Fbufs = Osiris_fbufs.Fbufs
module Cpu = Osiris_os.Cpu
module Vspace = Osiris_mem.Vspace
module Phys_mem = Osiris_mem.Phys_mem

let setup ?(max_cached_paths = 4) ?(bufs_per_path = 2) () =
  let eng = Engine.create () in
  let mem = Phys_mem.create ~size:(16 lsl 20) ~page_size:4096 () in
  let vs = Vspace.create mem in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let fb =
    Fbufs.create cpu vs Fbufs.default_costs ~max_cached_paths ~bufs_per_path
      ~buf_size:8192
  in
  (eng, fb)

let in_process eng f =
  let r = ref None in
  Process.spawn eng ~name:"t" (fun () -> r := Some (f ()));
  Engine.run eng;
  Option.get !r

let test_cached_pool_hits () =
  let eng, fb = setup () in
  in_process eng (fun () ->
      let f1 = Fbufs.get fb ~path:1 in
      Alcotest.(check bool) "first get cached" true (Fbufs.is_cached f1);
      let f2 = Fbufs.get fb ~path:1 in
      Alcotest.(check bool) "pool of 2" true (Fbufs.is_cached f2);
      let f3 = Fbufs.get fb ~path:1 in
      Alcotest.(check bool) "pool exhausted: uncached" false
        (Fbufs.is_cached f3);
      Fbufs.release fb f1;
      let f4 = Fbufs.get fb ~path:1 in
      Alcotest.(check bool) "release replenishes" true (Fbufs.is_cached f4);
      let st = Fbufs.stats fb in
      Alcotest.(check int) "cached gets" 3 st.Fbufs.cached_gets;
      Alcotest.(check int) "uncached gets" 1 st.Fbufs.uncached_gets)

let test_cached_much_faster () =
  let eng, fb = setup () in
  in_process eng (fun () ->
      let c = Fbufs.get fb ~path:1 in
      let t_cached = Fbufs.transfer fb c ~domains:2 in
      Fbufs.release fb c;
      let hold = Fbufs.get fb ~path:1 and hold2 = Fbufs.get fb ~path:1 in
      let u = Fbufs.get fb ~path:1 in
      Alcotest.(check bool) "uncached" false (Fbufs.is_cached u);
      let t_uncached = Fbufs.transfer fb u ~domains:2 in
      Fbufs.release fb hold;
      Fbufs.release fb hold2;
      Fbufs.release fb u;
      Alcotest.(check bool)
        (Printf.sprintf "order of magnitude: %d vs %d" t_cached t_uncached)
        true
        (t_uncached > 5 * t_cached))

let test_lru_eviction () =
  let eng, fb = setup ~max_cached_paths:3 () in
  in_process eng (fun () ->
      List.iter
        (fun p ->
          let f = Fbufs.get fb ~path:p in
          Fbufs.release fb f)
        [ 1; 2; 3 ];
      (* Touch 1 so 2 becomes the LRU, then add a fourth path. *)
      let f = Fbufs.get fb ~path:1 in
      Fbufs.release fb f;
      let f = Fbufs.get fb ~path:4 in
      Fbufs.release fb f;
      let cached = Fbufs.cached_paths fb in
      Alcotest.(check bool) "2 evicted" true (not (List.mem 2 cached));
      Alcotest.(check bool) "1 kept" true (List.mem 1 cached);
      Alcotest.(check int) "evictions" 1 (Fbufs.stats fb).Fbufs.evictions)

let test_release_after_eviction () =
  let eng, fb = setup ~max_cached_paths:1 () in
  in_process eng (fun () ->
      let f = Fbufs.get fb ~path:1 in
      (* Evict path 1's pool while we still hold one of its buffers. *)
      let g = Fbufs.get fb ~path:2 in
      Fbufs.release fb g;
      (* Releasing the orphan must not crash or corrupt the allocator. *)
      Fbufs.release fb f;
      let h = Fbufs.get fb ~path:2 in
      Alcotest.(check bool) "allocator still sane" true (Fbufs.is_cached h))

let suite =
  [
    Alcotest.test_case "cached pool hits and exhaustion" `Quick
      test_cached_pool_hits;
    Alcotest.test_case "cached ≫ uncached" `Quick test_cached_much_faster;
    Alcotest.test_case "16-path LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "release after eviction" `Quick
      test_release_after_eviction;
  ]
