(* Tests for IP fragmentation/reassembly and UDP. *)

open Osiris_sim
module Ctx = Osiris_proto.Ctx
module Ip = Osiris_proto.Ip
module Udp = Osiris_proto.Udp
module Msg = Osiris_xkernel.Msg
module Vspace = Osiris_mem.Vspace
module Phys_mem = Osiris_mem.Phys_mem
module Cache = Osiris_cache.Data_cache
module Tc = Osiris_bus.Turbochannel
module Cpu = Osiris_os.Cpu
module Checksum = Osiris_util.Checksum

let page_size = 4096

type world = {
  eng : Engine.t;
  vs : Vspace.t;
  ctx : Ctx.t;
}

let mk_world () =
  let eng = Engine.create () in
  let mem = Phys_mem.create ~size:(16 lsl 20) ~page_size () in
  let vs = Vspace.create mem in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let bus = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let cache =
    Cache.create eng ~mem ~bus
      {
        Cache.size = 64 * 1024;
        line_size = 16;
        coherence = Cache.Software;
        cpu_hz = 25_000_000;
        hit_cycles_per_word = 1;
        fill_overhead_cycles = 13;
        invalidate_cycles_per_word = 1;
      }
  in
  { eng; vs; ctx = Ctx.create ~cpu ~cache Ctx.default_costs }

let run_in w f =
  let r = ref None in
  Process.spawn w.eng ~name:"t" (fun () -> r := Some (f ()));
  Engine.run w.eng;
  Option.get !r

(* An IP pair whose output is looped straight into input, optionally
   permuting or dropping fragments first. *)
let ip_roundtrip ?(mangle = fun l -> l) ?(cfg = Ip.default_config) w payload =
  let delivered = ref None in
  let fragments = ref [] in
  let sender =
    Ip.create w.ctx cfg ~src:1l ~page_size
      ~send:(fun frag -> fragments := frag :: !fragments)
      ~deliver:(fun ~proto:_ ~src:_ msg -> Msg.dispose msg)
  in
  let receiver =
    Ip.create w.ctx cfg ~src:2l ~page_size
      ~send:(fun _ -> ())
      ~deliver:(fun ~proto ~src msg ->
        delivered := Some (proto, src, Msg.read_all msg);
        Msg.dispose msg)
  in
  let msg = Msg.alloc w.vs ~len:(Bytes.length payload) () in
  Msg.blit_into msg ~off:0 ~src:payload;
  Ip.output sender ~dst:2l ~proto:99 msg;
  List.iter (Ip.input receiver) (mangle (List.rev !fragments));
  (!delivered, Ip.stats sender, Ip.stats receiver)

let test_ip_single_fragment () =
  let w = mk_world () in
  let payload = Bytes.init 1000 (fun i -> Char.chr (i land 0xff)) in
  run_in w (fun () ->
      match ip_roundtrip w payload with
      | Some (proto, src, data), s_tx, _ ->
          Alcotest.(check int) "proto" 99 proto;
          Alcotest.(check int32) "src" 1l src;
          Alcotest.(check bytes) "payload" payload data;
          Alcotest.(check int) "one fragment" 1 s_tx.Ip.fragments_sent
      | None, _, _ -> Alcotest.fail "not delivered")

let ip_identity =
  QCheck.Test.make ~name:"ip: fragment/reassemble identity" ~count:40
    QCheck.(pair (int_range 1 100_000) (int_range 2 17))
    (fun (len, mtu_kb) ->
      let w = mk_world () in
      let payload = Bytes.init len (fun i -> Char.chr ((i * 11) land 0xff)) in
      let cfg = { Ip.mtu = mtu_kb * 1024; aligned_mtu = false } in
      run_in w (fun () ->
          match ip_roundtrip ~cfg w payload with
          | Some (_, _, data), _, _ -> Bytes.equal data payload
          | None, _, _ -> false))

let ip_identity_any_order =
  QCheck.Test.make ~name:"ip: reassembly independent of fragment order"
    ~count:40
    QCheck.(pair (int_range 10_000 80_000) (int_range 0 1000))
    (fun (len, seed) ->
      let w = mk_world () in
      let payload = Bytes.init len (fun i -> Char.chr ((i * 13) land 0xff)) in
      let cfg = { Ip.mtu = 8 * 1024; aligned_mtu = false } in
      let rng = Osiris_util.Rng.create ~seed in
      let mangle l =
        let arr = Array.of_list l in
        Osiris_util.Rng.shuffle rng arr;
        Array.to_list arr
      in
      run_in w (fun () ->
          match ip_roundtrip ~cfg ~mangle w payload with
          | Some (_, _, data), _, _ -> Bytes.equal data payload
          | None, _, _ -> false))

let test_ip_header_corruption_dropped () =
  let w = mk_world () in
  let payload = Bytes.make 500 'p' in
  run_in w (fun () ->
      let mangle = function
        | [ frag ] ->
            (* flip a header byte (the version/IHL field) *)
            let b = Msg.pop frag ~len:1 in
            Msg.push frag ~len:1 (fun out ->
                Bytes.set out 0
                  (Char.chr (Char.code (Bytes.get b 0) lxor 0xff)));
            [ frag ]
        | l -> l
      in
      match ip_roundtrip ~mangle w payload with
      | None, _, s_rx ->
          Alcotest.(check int) "counted" 1 s_rx.Ip.header_checksum_errors
      | Some _, _, _ -> Alcotest.fail "corrupt header accepted")

let test_ip_lost_fragment_no_delivery_no_leak () =
  let w = mk_world () in
  let payload = Bytes.make 20000 'q' in
  let cfg = { Ip.mtu = 8 * 1024; aligned_mtu = false } in
  run_in w (fun () ->
      let mangle = function _ :: rest -> rest | [] -> [] in
      (match ip_roundtrip ~cfg ~mangle w payload with
      | None, _, s_rx ->
          Alcotest.(check int) "no datagram" 0 s_rx.Ip.datagrams_delivered
      | Some _, _, _ -> Alcotest.fail "incomplete datagram delivered"))

let test_ip_eviction_bounds_state () =
  let w = mk_world () in
  let cfg = { Ip.mtu = 8 * 1024; aligned_mtu = false } in
  run_in w (fun () ->
      let receiver =
        Ip.create w.ctx cfg ~src:2l ~page_size
          ~send:(fun _ -> ())
          ~deliver:(fun ~proto:_ ~src:_ msg -> Msg.dispose msg)
      in
      (* 40 first-fragments that never complete. *)
      for id = 1 to 40 do
        let imgs =
          Ip.fragment_images ~id cfg ~page_size ~src:1l ~dst:2l ~proto:99
            (Bytes.make 20000 'z')
        in
        match imgs with
        | first :: _ ->
            let m = Msg.alloc w.vs ~len:(Bytes.length first) () in
            Msg.blit_into m ~off:0 ~src:first;
            Ip.input receiver m
        | [] -> ()
      done;
      Alcotest.(check bool) "partial state bounded" true
        (Ip.partial_reassemblies receiver <= 8);
      Alcotest.(check bool) "evictions counted" true
        ((Ip.stats receiver).Ip.reassembly_drops > 0))

let test_fragment_data_size_policy () =
  let aligned = { Ip.mtu = 4096 + 20; aligned_mtu = true } in
  Alcotest.(check int) "aligned: exactly one page" 4096
    (Ip.fragment_data_size aligned ~page_size);
  let naive = { Ip.mtu = 4096; aligned_mtu = false } in
  Alcotest.(check int) "naive: 4076 rounded to 8" 4072
    (Ip.fragment_data_size naive ~page_size)

(* UDP over a looped IP. *)
let udp_pair ?(checksum = false) w =
  let inbox = ref [] in
  let rcv_ip = ref None in
  let sender_ip =
    Ip.create w.ctx Ip.default_config ~src:1l ~page_size
      ~send:(fun frag ->
        match !rcv_ip with Some ip -> Ip.input ip frag | None -> ())
      ~deliver:(fun ~proto:_ ~src:_ m -> Msg.dispose m)
  in
  let udp_rx = ref None in
  let receiver_ip =
    Ip.create w.ctx Ip.default_config ~src:2l ~page_size
      ~send:(fun _ -> ())
      ~deliver:(fun ~proto ~src msg ->
        match !udp_rx with
        | Some udp when proto = Udp.protocol_number -> Udp.input udp ~src msg
        | _ -> Msg.dispose msg)
  in
  rcv_ip := Some receiver_ip;
  let udp_tx = Udp.create w.ctx ~checksum ~ip:sender_ip in
  let udp = Udp.create w.ctx ~checksum ~ip:receiver_ip in
  udp_rx := Some udp;
  Udp.bind udp ~port:7 (fun ~src:_ ~src_port msg ->
      inbox := (src_port, Msg.read_all msg) :: !inbox;
      Msg.dispose msg);
  (udp_tx, udp, inbox)

let test_udp_roundtrip () =
  let w = mk_world () in
  run_in w (fun () ->
      let udp_tx, _, inbox = udp_pair w in
      let payload = Bytes.init 5000 (fun i -> Char.chr ((i * 3) land 0xff)) in
      let m = Msg.alloc w.vs ~len:5000 () in
      Msg.blit_into m ~off:0 ~src:payload;
      Udp.output udp_tx ~dst:2l ~src_port:9 ~dst_port:7 m;
      match !inbox with
      | [ (9, data) ] -> Alcotest.(check bytes) "payload" payload data
      | _ -> Alcotest.fail "expected exactly one delivery")

let test_udp_checksum_catches_corruption () =
  let w = mk_world () in
  run_in w (fun () ->
      let delivered = ref 0 in
      let udp_rx = ref None in
      let ip =
        Ip.create w.ctx Ip.default_config ~src:2l ~page_size
          ~send:(fun _ -> ())
          ~deliver:(fun ~proto:_ ~src msg ->
            match !udp_rx with
            | Some u -> Udp.input u ~src msg
            | None -> Msg.dispose msg)
      in
      let udp = Udp.create w.ctx ~checksum:true ~ip in
      udp_rx := Some udp;
      Udp.bind udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
          incr delivered;
          Msg.dispose msg);
      (* Build a datagram image, corrupt the payload, feed it through IP. *)
      let img =
        Udp.datagram_image ~src_port:9 ~dst_port:7 ~checksum:true
          (Bytes.make 500 'v')
      in
      Bytes.set img 100 'X';
      let frag =
        List.hd
          (Ip.fragment_images Ip.default_config ~page_size ~src:1l ~dst:2l
             ~proto:Udp.protocol_number img)
      in
      let m = Msg.alloc w.vs ~len:(Bytes.length frag) () in
      Msg.blit_into m ~off:0 ~src:frag;
      Ip.input ip m;
      Alcotest.(check int) "dropped" 0 !delivered;
      Alcotest.(check int) "counted" 1 (Udp.stats udp).Udp.checksum_errors)

let test_udp_large_datagram () =
  let w = mk_world () in
  run_in w (fun () ->
      let udp_tx, _, inbox = udp_pair w in
      (* > 64 KB: the length field overflows; footnote-5 extension. *)
      let len = 100_000 in
      let payload = Bytes.init len (fun i -> Char.chr ((i * 7) land 0xff)) in
      let m = Msg.alloc w.vs ~len () in
      Msg.blit_into m ~off:0 ~src:payload;
      Udp.output udp_tx ~dst:2l ~src_port:9 ~dst_port:7 m;
      match !inbox with
      | [ (_, data) ] -> Alcotest.(check bytes) "100KB intact" payload data
      | _ -> Alcotest.fail "large datagram lost")

let test_udp_unbound_port () =
  let w = mk_world () in
  run_in w (fun () ->
      let udp_tx, udp, _ = udp_pair w in
      let m = Msg.alloc w.vs ~len:100 () in
      Udp.output udp_tx ~dst:2l ~src_port:9 ~dst_port:99 m;
      Alcotest.(check int) "no-port drop" 1 (Udp.stats udp).Udp.no_port_drops)

let test_udp_image_matches_stack () =
  let w = mk_world () in
  run_in w (fun () ->
      (* The pure datagram_image helper must be bit-identical to what the
         stack emits for the same payload. *)
      let payload = Bytes.init 777 (fun i -> Char.chr ((i * 9) land 0xff)) in
      let img =
        Udp.datagram_image ~src_port:9 ~dst_port:7 ~checksum:true payload
      in
      let captured = ref None in
      let ip =
        Ip.create w.ctx
          { Ip.mtu = 60_000; aligned_mtu = false }
          ~src:1l ~page_size
          ~send:(fun frag ->
            let all = Msg.read_all frag in
            captured := Some (Bytes.sub all Ip.header_size
                                (Bytes.length all - Ip.header_size)))
          ~deliver:(fun ~proto:_ ~src:_ m -> Msg.dispose m)
      in
      let udp = Udp.create w.ctx ~checksum:true ~ip in
      let m = Msg.alloc w.vs ~len:777 () in
      Msg.blit_into m ~off:0 ~src:payload;
      Udp.output udp ~dst:2l ~src_port:9 ~dst_port:7 m;
      match !captured with
      | Some wire -> Alcotest.(check bytes) "identical" img wire
      | None -> Alcotest.fail "nothing sent")

let suite =
  [
    Alcotest.test_case "ip: single fragment roundtrip" `Quick
      test_ip_single_fragment;
    QCheck_alcotest.to_alcotest ip_identity;
    QCheck_alcotest.to_alcotest ip_identity_any_order;
    Alcotest.test_case "ip: corrupt header dropped" `Quick
      test_ip_header_corruption_dropped;
    Alcotest.test_case "ip: lost fragment => no delivery" `Quick
      test_ip_lost_fragment_no_delivery_no_leak;
    Alcotest.test_case "ip: reassembly state bounded" `Quick
      test_ip_eviction_bounds_state;
    Alcotest.test_case "ip: MTU alignment policy" `Quick
      test_fragment_data_size_policy;
    Alcotest.test_case "udp: roundtrip over ip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp: checksum catches corruption" `Quick
      test_udp_checksum_catches_corruption;
    Alcotest.test_case "udp: >64KB datagrams" `Quick test_udp_large_datagram;
    Alcotest.test_case "udp: unbound port" `Quick test_udp_unbound_port;
    Alcotest.test_case "udp: image = stack output" `Quick
      test_udp_image_matches_stack;
  ]
