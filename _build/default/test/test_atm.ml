(* Tests for cells and segmentation/reassembly, including the §2.6 skew
   tolerance properties. *)

open Osiris_atm
module Rng = Osiris_util.Rng

let cell_gen =
  QCheck.make
    ~print:(fun c -> Format.asprintf "%a" Cell.pp c)
    QCheck.Gen.(
      let* vci = 0 -- 0xffff in
      let* seq = 0 -- 0xffff in
      let* eom = bool in
      let* last = bool in
      let* s = string_size (return Cell.data_size) in
      return (Cell.make ~vci ~seq ~eom ~last_of_pdu:last (Bytes.of_string s)))

let cell_wire_roundtrip =
  QCheck.Test.make ~name:"cell: serialize/parse roundtrip" ~count:300 cell_gen
    (fun c ->
      match Cell.parse (Cell.serialize c) with
      | Ok c' -> Cell.equal c c'
      | Error _ -> false)

let test_cell_header_check () =
  let c =
    Cell.make ~vci:42 ~seq:7 ~eom:true ~last_of_pdu:false
      (Bytes.make Cell.data_size 'x')
  in
  let w = Cell.serialize c in
  Bytes.set w 1 (Char.chr (Char.code (Bytes.get w 1) lxor 1));
  (match Cell.parse w with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted header accepted");
  Alcotest.(check int) "wire size" 53 Cell.wire_size

let test_cell_sizes () =
  Alcotest.(check int) "payload" 48 Cell.payload_size;
  Alcotest.(check int) "data" 44 Cell.data_size;
  Alcotest.(check int) "aal overhead" 4 Cell.aal_overhead

let test_framed_len () =
  Alcotest.(check int) "1 byte fits one cell" 44 (Sar.framed_len 1);
  Alcotest.(check int) "36 bytes fit one cell" 44 (Sar.framed_len 36);
  Alcotest.(check int) "37 bytes need two" 88 (Sar.framed_len 37);
  Alcotest.(check int) "cells per pdu" 2 (Sar.cells_per_pdu 37)

let frame_roundtrip =
  QCheck.Test.make ~name:"sar: frame/deframe identity" ~count:300
    QCheck.(map Bytes.of_string (string_of_size Gen.(0 -- 500)))
    (fun pdu ->
      match Sar.deframe (Sar.frame pdu) with
      | Ok pdu' -> Bytes.equal pdu pdu'
      | Error _ -> false)

let frame_detects_corruption =
  QCheck.Test.make ~name:"sar: CRC catches corruption" ~count:300
    QCheck.(pair (map Bytes.of_string (string_of_size Gen.(1 -- 300))) small_nat)
    (fun (pdu, i) ->
      let framed = Sar.frame pdu in
      let i = i mod Bytes.length framed in
      Bytes.set framed i
        (Char.chr (Char.code (Bytes.get framed i) lxor 0x5a));
      match Sar.deframe framed with Error _ -> true | Ok _ -> false)

(* Reassemble a list of (link, cell) arrivals and return the recovered
   payload (if the PDU completes and deframes). *)
let reassemble strategy arrivals pdu_len =
  let sar = Sar.create strategy ~max_cells:4096 in
  let framed = Bytes.make (Sar.framed_len pdu_len) '\000' in
  let result = ref None in
  List.iter
    (fun (link, cell) ->
      match Sar.push sar ~link cell with
      | Sar.Rejected r -> failwith ("rejected: " ^ r)
      | Sar.Placed p ->
          Bytes.blit p.Sar.cell.Cell.data 0 framed p.Sar.offset Cell.data_size
      | Sar.Completed (p, total) ->
          Bytes.blit p.Sar.cell.Cell.data 0 framed p.Sar.offset Cell.data_size;
          result := Some total)
    arrivals;
  match !result with
  | None -> Error "incomplete"
  | Some total -> Sar.deframe (Bytes.sub framed 0 total)

let in_order_arrivals ~nlinks cells =
  List.map (fun (c : Cell.t) -> (c.Cell.seq mod nlinks, c)) cells

(* A random member of the skew class: per-link FIFO preserved, links
   interleaved arbitrarily. *)
let skewed_arrivals ~nlinks ~rng cells =
  let queues = Array.make nlinks [] in
  List.iter
    (fun (c : Cell.t) ->
      let l = c.Cell.seq mod nlinks in
      queues.(l) <- c :: queues.(l))
    cells;
  let queues = Array.map List.rev queues in
  let out = ref [] in
  let remaining () =
    Array.exists (fun q -> q <> []) queues
  in
  while remaining () do
    let l = Rng.int rng nlinks in
    match queues.(l) with
    | [] -> ()
    | c :: rest ->
        queues.(l) <- rest;
        out := (l, c) :: !out
  done;
  List.rev !out

let pdu_of_len n = Bytes.init n (fun i -> Char.chr ((i * 7) land 0xff))

let sar_identity_in_order =
  QCheck.Test.make ~name:"sar: segment |> reassemble = id (in order)"
    ~count:100
    QCheck.(int_range 1 2000)
    (fun n ->
      let pdu = pdu_of_len n in
      let cells = Sar.segment ~vci:5 ~nlinks:1 pdu in
      match reassemble Sar.In_order (in_order_arrivals ~nlinks:1 cells) n with
      | Ok out -> Bytes.equal out pdu
      | Error _ -> false)

let sar_identity_per_link_skewed =
  QCheck.Test.make ~name:"sar: per-link reassembly tolerates any skew"
    ~count:100
    QCheck.(pair (int_range 1 2000) (int_range 0 1000))
    (fun (n, seed) ->
      let pdu = pdu_of_len n in
      let cells = Sar.segment ~vci:5 ~nlinks:4 pdu in
      let arrivals = skewed_arrivals ~nlinks:4 ~rng:(Rng.create ~seed) cells in
      match reassemble (Sar.Per_link 4) arrivals n with
      | Ok out -> Bytes.equal out pdu
      | Error _ -> false)

let sar_identity_seq_skewed =
  QCheck.Test.make ~name:"sar: seq-number reassembly tolerates any skew"
    ~count:100
    QCheck.(pair (int_range 1 2000) (int_range 0 1000))
    (fun (n, seed) ->
      let pdu = pdu_of_len n in
      let cells = Sar.segment ~vci:5 ~nlinks:4 pdu in
      let arrivals = skewed_arrivals ~nlinks:4 ~rng:(Rng.create ~seed) cells in
      match reassemble Sar.Seq_number arrivals n with
      | Ok out -> Bytes.equal out pdu
      | Error _ -> false)

let test_in_order_breaks_under_skew () =
  (* A deterministically skewed 10-cell PDU mis-placed by in-order
     reassembly: either the CRC catches it or the PDU never completes —
     data is never silently corrupted only if the CRC fails. *)
  let n = 400 in
  let pdu = pdu_of_len n in
  let cells = Sar.segment ~vci:5 ~nlinks:4 pdu in
  let arrivals = skewed_arrivals ~nlinks:4 ~rng:(Rng.create ~seed:2) cells in
  Alcotest.(check bool) "arrival order differs" true
    (arrivals <> in_order_arrivals ~nlinks:4 cells);
  match
    try reassemble Sar.In_order arrivals n with Failure _ -> Error "rejected"
  with
  | Ok out -> Alcotest.(check bool) "if it passes CRC it is the PDU" true
                (Bytes.equal out pdu)
  | Error _ -> ()

let test_per_link_framing_bits () =
  let pdu = pdu_of_len 400 in
  (* 400 bytes -> 10 cells on 4 links: last cell of each link is framed. *)
  let cells = Sar.segment ~vci:5 ~nlinks:4 pdu in
  Alcotest.(check int) "cell count" 10 (List.length cells);
  let eoms =
    List.filter_map
      (fun (c : Cell.t) -> if c.Cell.eom then Some c.Cell.seq else None)
      cells
  in
  Alcotest.(check (list int)) "framing on last cell per link" [ 6; 7; 8; 9 ]
    eoms;
  let last = List.nth cells 9 in
  Alcotest.(check bool) "very-last bit" true last.Cell.last_of_pdu

let test_short_pdu_single_cell () =
  (* A PDU shorter than the stripe width: the ATM-header last-of-pdu bit
     covers it (paper §2.6). *)
  let pdu = pdu_of_len 10 in
  let cells = Sar.segment ~vci:5 ~nlinks:4 pdu in
  Alcotest.(check int) "one cell" 1 (List.length cells);
  match reassemble (Sar.Per_link 4) (in_order_arrivals ~nlinks:4 cells) 10 with
  | Ok out -> Alcotest.(check bool) "roundtrip" true (Bytes.equal out pdu)
  | Error e -> Alcotest.fail e

let test_seq_duplicate_rejected () =
  let pdu = pdu_of_len 100 in
  let cells = Sar.segment ~vci:5 ~nlinks:1 pdu in
  let sar = Sar.create Sar.Seq_number ~max_cells:64 in
  let first = List.hd cells in
  (match Sar.push sar ~link:0 first with
  | Sar.Placed _ -> ()
  | _ -> Alcotest.fail "first cell placed");
  match Sar.push sar ~link:0 first with
  | Sar.Rejected _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let test_link_finished () =
  let pdu = pdu_of_len 400 in
  let cells = Array.of_list (Sar.segment ~vci:5 ~nlinks:4 pdu) in
  let sar = Sar.create (Sar.Per_link 4) ~max_cells:64 in
  (* Feed link 2's cells only: 2 and 6 (framed). *)
  ignore (Sar.push sar ~link:2 cells.(2));
  Alcotest.(check bool) "not finished yet" false
    (Sar.link_finished sar ~link:2);
  ignore (Sar.push sar ~link:2 cells.(6));
  Alcotest.(check bool) "finished after framing bit" true
    (Sar.link_finished sar ~link:2);
  Alcotest.(check bool) "in progress" true (Sar.in_progress sar)

let suite =
  [
    QCheck_alcotest.to_alcotest cell_wire_roundtrip;
    Alcotest.test_case "cell: header check byte" `Quick test_cell_header_check;
    Alcotest.test_case "cell: sizes" `Quick test_cell_sizes;
    Alcotest.test_case "sar: framed length arithmetic" `Quick test_framed_len;
    QCheck_alcotest.to_alcotest frame_roundtrip;
    QCheck_alcotest.to_alcotest frame_detects_corruption;
    QCheck_alcotest.to_alcotest sar_identity_in_order;
    QCheck_alcotest.to_alcotest sar_identity_per_link_skewed;
    QCheck_alcotest.to_alcotest sar_identity_seq_skewed;
    Alcotest.test_case "sar: in-order is unsafe under skew" `Quick
      test_in_order_breaks_under_skew;
    Alcotest.test_case "sar: per-link framing bits" `Quick
      test_per_link_framing_bits;
    Alcotest.test_case "sar: sub-stripe PDU" `Quick test_short_pdu_single_cell;
    Alcotest.test_case "sar: duplicate seq rejected" `Quick
      test_seq_duplicate_rejected;
    Alcotest.test_case "sar: link_finished tracking" `Quick test_link_finished;
  ]
