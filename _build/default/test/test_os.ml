(* Tests for CPU scheduling, interrupt dispatch and page wiring. *)

open Osiris_sim
module Cpu = Osiris_os.Cpu
module Irq = Osiris_os.Irq
module Wiring = Osiris_os.Wiring
module Domain = Osiris_os.Domain
module Vspace = Osiris_mem.Vspace
module Phys_mem = Osiris_mem.Phys_mem

let test_cpu_serializes () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let done_at = Array.make 2 0 in
  for i = 0 to 1 do
    Process.spawn eng ~name:"t" (fun () ->
        Cpu.consume cpu 1000;
        done_at.(i) <- Engine.now eng)
  done;
  Engine.run eng;
  Alcotest.(check int) "first slice" 1000 done_at.(0);
  Alcotest.(check int) "second slice queued" 2000 done_at.(1)

let test_cpu_priorities () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let order = ref [] in
  Process.spawn eng ~name:"holder" (fun () -> Cpu.consume cpu 1000);
  Process.spawn eng ~name:"low" (fun () ->
      Process.sleep eng 10;
      Cpu.consume_prio cpu ~priority:15 100;
      order := "low" :: !order);
  Process.spawn eng ~name:"high" (fun () ->
      Process.sleep eng 20;
      Cpu.consume_prio cpu ~priority:5 100;
      order := "high" :: !order);
  Engine.run eng;
  Alcotest.(check (list string)) "high first" [ "high"; "low" ]
    (List.rev !order)

let test_cpu_interrupt_preference () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let order = ref [] in
  Process.spawn eng ~name:"holder" (fun () -> Cpu.consume cpu 1000);
  Process.spawn eng ~name:"thread" (fun () ->
      Process.sleep eng 1;
      Cpu.consume cpu 100;
      order := "thread" :: !order);
  Process.spawn eng ~name:"irq" (fun () ->
      Process.sleep eng 2;
      Cpu.consume_interrupt cpu 50;
      order := "irq" :: !order);
  Engine.run eng;
  Alcotest.(check (list string)) "interrupt ahead of thread"
    [ "irq"; "thread" ] (List.rev !order)

let test_cpu_memory_load_hook () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let charged = ref 0 in
  Cpu.set_memory_load cpu (fun slice -> charged := !charged + slice);
  Process.spawn eng ~name:"t" (fun () -> Cpu.consume cpu 12345);
  Engine.run eng;
  Alcotest.(check int) "hook saw the slice" 12345 !charged

let test_irq_dispatch_and_coalescing () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let irq = Irq.create eng ~cpu ~dispatch_cost:75_000 in
  let handled = ref 0 in
  Irq.register irq ~line:3 ~name:"rx" (fun () -> incr handled);
  (* Three asserts before the handler runs: coalesced into one. *)
  Irq.assert_line irq ~line:3;
  Irq.assert_line irq ~line:3;
  Irq.assert_line irq ~line:3;
  Engine.run eng;
  Alcotest.(check int) "one dispatch" 1 !handled;
  Alcotest.(check int) "asserts recorded" 3 (Irq.asserted irq);
  Alcotest.(check int) "dispatch cost charged" 75_000 (Engine.now eng);
  (* A later assert dispatches again. *)
  Irq.assert_line irq ~line:3;
  Engine.run eng;
  Alcotest.(check int) "second dispatch" 2 !handled;
  Alcotest.(check int) "per line" 2 (Irq.count_line irq ~line:3)

let test_irq_unregistered_line () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let irq = Irq.create eng ~cpu ~dispatch_cost:100 in
  Alcotest.(check bool) "unknown line rejected" true
    (try
       Irq.assert_line irq ~line:9;
       false
     with Invalid_argument _ -> true)

let test_wiring_policies () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~hz:25_000_000 in
  let mem = Phys_mem.create ~size:(1 lsl 20) ~page_size:4096 () in
  let vs = Vspace.create mem in
  let w = Wiring.create cpu Wiring.default_costs Wiring.Mach_full in
  let mach_4 = Wiring.cost_of w ~pages:4 in
  Wiring.set_policy w Wiring.Low_level;
  let low_4 = Wiring.cost_of w ~pages:4 in
  Alcotest.(check bool) "Mach much slower" true (mach_4 > 10 * low_4);
  let v = Vspace.alloc vs ~len:(4 * 4096) in
  Process.spawn eng ~name:"t" (fun () ->
      Wiring.wire w vs ~vaddr:v ~len:(4 * 4096));
  Engine.run eng;
  Alcotest.(check int) "pages wired" 4 (Vspace.wired_pages vs);
  Alcotest.(check int) "time = cost_of" low_4 (Engine.now eng);
  Alcotest.(check int) "calls counted" 1 (Wiring.calls w)

let test_domains () =
  let mem = Phys_mem.create ~size:(1 lsl 20) ~page_size:4096 () in
  let vs1 = Vspace.create mem and vs2 = Vspace.create mem in
  let k = Domain.create ~name:"kernel" ~kind:Domain.Kernel vs1 in
  let u = Domain.create ~name:"app" ~kind:Domain.User vs2 in
  Alcotest.(check bool) "distinct ids" true (not (Domain.equal k u));
  Alcotest.(check string) "name" "app" (Domain.name u);
  (* Separate address spaces: same vaddr can map different frames. *)
  let a1 = Vspace.alloc vs1 ~len:4096 and a2 = Vspace.alloc vs2 ~len:4096 in
  Alcotest.(check bool) "independent translations" true
    (Vspace.translate vs1 a1 <> Vspace.translate vs2 a2
     || a1 <> a2 (* extremely unlikely to collide, but allow *))

let suite =
  [
    Alcotest.test_case "cpu: serializes threads" `Quick test_cpu_serializes;
    Alcotest.test_case "cpu: priorities" `Quick test_cpu_priorities;
    Alcotest.test_case "cpu: interrupt priority" `Quick
      test_cpu_interrupt_preference;
    Alcotest.test_case "cpu: memory-load hook" `Quick test_cpu_memory_load_hook;
    Alcotest.test_case "irq: dispatch & coalescing" `Quick
      test_irq_dispatch_and_coalescing;
    Alcotest.test_case "irq: unknown line" `Quick test_irq_unregistered_line;
    Alcotest.test_case "wiring: policies & accounting" `Quick
      test_wiring_policies;
    Alcotest.test_case "domains" `Quick test_domains;
  ]
