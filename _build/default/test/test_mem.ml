(* Tests for physical memory, address spaces and physical buffers. *)

open Osiris_mem
module Rng = Osiris_util.Rng

let mk_mem ?scramble () =
  Phys_mem.create ?scramble ~size:(1 lsl 20) ~page_size:4096 ()

let test_alloc_free_cycle () =
  let mem = mk_mem () in
  let n = Phys_mem.free_frames mem in
  let a = Phys_mem.alloc_frame mem in
  let b = Phys_mem.alloc_frame mem in
  Alcotest.(check bool) "distinct frames" true (a <> b);
  Alcotest.(check int) "two allocated" (n - 2) (Phys_mem.free_frames mem);
  Phys_mem.free_frame mem a;
  Phys_mem.free_frame mem b;
  Alcotest.(check int) "all returned" n (Phys_mem.free_frames mem)

let test_double_free_rejected () =
  let mem = mk_mem () in
  let a = Phys_mem.alloc_frame mem in
  Phys_mem.free_frame mem a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Phys_mem.free_frame: double free") (fun () ->
      Phys_mem.free_frame mem a)

let test_exhaustion () =
  let mem = Phys_mem.create ~size:(4 * 4096) ~page_size:4096 () in
  for _ = 1 to 4 do
    ignore (Phys_mem.alloc_frame mem)
  done;
  Alcotest.check_raises "out of memory" Out_of_memory (fun () ->
      ignore (Phys_mem.alloc_frame mem))

let test_contiguous_alloc () =
  let mem = mk_mem () in
  match Phys_mem.alloc_contiguous mem ~nframes:4 with
  | None -> Alcotest.fail "empty memory must satisfy contiguous alloc"
  | Some base ->
      Alcotest.(check int) "page aligned" 0 (base mod 4096);
      (* The run must really be allocated: freeing each page works once. *)
      for i = 0 to 3 do
        Phys_mem.free_frame mem (base + (i * 4096))
      done

let test_rw_roundtrip () =
  let mem = mk_mem () in
  Phys_mem.write_u32 mem 100 0xDEADBEEFl;
  Alcotest.(check int32) "u32 roundtrip" 0xDEADBEEFl (Phys_mem.read_u32 mem 100);
  Phys_mem.write_byte mem 200 0xAB;
  Alcotest.(check int) "byte roundtrip" 0xAB (Phys_mem.read_byte mem 200)

let test_bounds_checked () =
  let mem = mk_mem () in
  Alcotest.(check bool) "oob read raises" true
    (try
       ignore (Phys_mem.read_byte mem (1 lsl 20));
       false
     with Invalid_argument _ -> true)

(* Pbuf properties. *)

let pbuf_split_preserves =
  QCheck.Test.make ~name:"pbuf: split preserves extent" ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 2 5000))
    (fun (addr, len) ->
      let b = Pbuf.v ~addr ~len in
      let at = 1 + (addr mod (len - 1)) in
      let x, y = Pbuf.split b ~at in
      x.Pbuf.addr = addr && x.Pbuf.len = at
      && y.Pbuf.addr = addr + at
      && x.Pbuf.len + y.Pbuf.len = len)

let pbuf_coalesce_inverse_of_split =
  QCheck.Test.make ~name:"pbuf: coalesce undoes split" ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 2 5000))
    (fun (addr, len) ->
      let b = Pbuf.v ~addr ~len in
      let at = 1 + (addr mod (len - 1)) in
      let x, y = Pbuf.split b ~at in
      match Pbuf.coalesce [ x; y ] with
      | [ c ] -> Pbuf.equal c b
      | _ -> false)

let test_coalesce_non_adjacent () =
  let a = Pbuf.v ~addr:0 ~len:10 and b = Pbuf.v ~addr:20 ~len:10 in
  Alcotest.(check int) "gap not merged" 2 (List.length (Pbuf.coalesce [ a; b ]))

(* Vspace: the §2.2 facts. *)

let test_vspace_translate_roundtrip () =
  let mem = mk_mem () in
  let vs = Vspace.create mem in
  let v = Vspace.alloc vs ~len:10000 in
  (* Write through virtual translation, read back. *)
  let pa = Vspace.translate vs (v + 5000) in
  Phys_mem.write_byte mem pa 0x7e;
  Alcotest.(check int) "translated access" 0x7e
    (Phys_mem.read_byte mem (Vspace.translate vs (v + 5000)))

let test_vspace_scrambled_fragmentation () =
  (* With a scrambled allocator, a 4-page region decomposes into (almost
     certainly) 4 physical buffers; paper §2.2. *)
  let mem = mk_mem ~scramble:(Rng.create ~seed:5) () in
  let vs = Vspace.create mem in
  let v = Vspace.alloc vs ~len:(4 * 4096) in
  let bufs = Vspace.phys_buffers vs ~vaddr:v ~len:(4 * 4096) in
  Alcotest.(check bool) "fragmented" true (List.length bufs >= 3);
  Alcotest.(check int) "extent preserved" (4 * 4096) (Pbuf.total_len bufs)

let test_vspace_sequential_is_contiguous () =
  (* Without scrambling, frames come out in order and coalesce. *)
  let mem = mk_mem () in
  let vs = Vspace.create mem in
  let v = Vspace.alloc vs ~len:(4 * 4096) in
  let bufs = Vspace.phys_buffers vs ~vaddr:v ~len:(4 * 4096) in
  Alcotest.(check int) "one physical buffer" 1 (List.length bufs)

let test_vspace_contiguous_alloc () =
  let mem = mk_mem ~scramble:(Rng.create ~seed:5) () in
  let vs = Vspace.create mem in
  match Vspace.alloc_contiguous vs ~len:(4 * 4096) with
  | None -> Alcotest.fail "contiguous alloc must succeed on fresh memory"
  | Some v ->
      let bufs = Vspace.phys_buffers vs ~vaddr:v ~len:(4 * 4096) in
      Alcotest.(check int) "one physical buffer" 1 (List.length bufs)

let test_vspace_offset_alloc () =
  let mem = mk_mem () in
  let vs = Vspace.create mem in
  let v = Vspace.alloc_offset vs ~len:100 ~offset:256 in
  Alcotest.(check int) "offset honoured" 256 (v mod 4096)

let test_vspace_free_returns_frames () =
  let mem = mk_mem () in
  let vs = Vspace.create mem in
  let before = Phys_mem.free_frames mem in
  let v = Vspace.alloc vs ~len:(8 * 4096) in
  Alcotest.(check int) "frames taken" (before - 8) (Phys_mem.free_frames mem);
  Vspace.free vs v;
  Alcotest.(check int) "frames back" before (Phys_mem.free_frames mem)

let test_page_fault () =
  let mem = mk_mem () in
  let vs = Vspace.create mem in
  Alcotest.(check bool) "unmapped faults" true
    (try
       ignore (Vspace.translate vs 12345);
       false
     with Vspace.Page_fault _ -> true)

let test_wiring_counts () =
  let mem = mk_mem () in
  let vs = Vspace.create mem in
  let v = Vspace.alloc vs ~len:(3 * 4096) in
  Vspace.wire vs ~vaddr:v ~len:(3 * 4096);
  Alcotest.(check int) "three wired" 3 (Vspace.wired_pages vs);
  Vspace.wire vs ~vaddr:v ~len:4096;
  Alcotest.(check int) "recount not double" 3 (Vspace.wired_pages vs);
  Vspace.unwire vs ~vaddr:v ~len:4096;
  Alcotest.(check bool) "still wired once" true (Vspace.is_wired vs ~vaddr:v);
  Vspace.unwire vs ~vaddr:v ~len:(3 * 4096);
  Alcotest.(check int) "all unwired" 0 (Vspace.wired_pages vs)

let test_sg_map_loads_accumulate () =
  let sg = Sg_map.create ~slots:16 ~page_size:4096 in
  ignore (Sg_map.program sg [ Pbuf.v ~addr:0 ~len:8192 ]);
  ignore (Sg_map.program sg [ Pbuf.v ~addr:16384 ~len:4096 ]);
  Alcotest.(check int) "loads accumulate across transfers" 3 (Sg_map.loads sg);
  Sg_map.clear sg;
  Alcotest.(check bool) "cleared map rejects lookups" true
    (try ignore (Sg_map.translate sg 0); false
     with Invalid_argument _ -> true)

let test_sg_map () =
  let sg = Sg_map.create ~slots:8 ~page_size:4096 in
  let bufs = [ Pbuf.v ~addr:40960 ~len:4096; Pbuf.v ~addr:8192 ~len:4096 ] in
  (match Sg_map.program sg bufs with
  | None -> Alcotest.fail "two buffers fit eight slots"
  | Some base ->
      Alcotest.(check int) "first page maps" 40960
        (Sg_map.translate sg (base + 0));
      Alcotest.(check int) "second page maps" (8192 + 100)
        (Sg_map.translate sg (base + 4096 + 100)));
  Alcotest.(check int) "loads counted" 2 (Sg_map.loads sg);
  let big = List.init 9 (fun i -> Pbuf.v ~addr:(i * 4096) ~len:4096) in
  Alcotest.(check bool) "overflow rejected" true (Sg_map.program sg big = None)

let suite =
  [
    Alcotest.test_case "phys_mem: alloc/free" `Quick test_alloc_free_cycle;
    Alcotest.test_case "phys_mem: double free" `Quick test_double_free_rejected;
    Alcotest.test_case "phys_mem: exhaustion" `Quick test_exhaustion;
    Alcotest.test_case "phys_mem: contiguous" `Quick test_contiguous_alloc;
    Alcotest.test_case "phys_mem: read/write" `Quick test_rw_roundtrip;
    Alcotest.test_case "phys_mem: bounds" `Quick test_bounds_checked;
    QCheck_alcotest.to_alcotest pbuf_split_preserves;
    QCheck_alcotest.to_alcotest pbuf_coalesce_inverse_of_split;
    Alcotest.test_case "pbuf: gaps stay split" `Quick test_coalesce_non_adjacent;
    Alcotest.test_case "vspace: translate" `Quick test_vspace_translate_roundtrip;
    Alcotest.test_case "vspace: scrambled frames fragment" `Quick
      test_vspace_scrambled_fragmentation;
    Alcotest.test_case "vspace: sequential frames coalesce" `Quick
      test_vspace_sequential_is_contiguous;
    Alcotest.test_case "vspace: contiguous alloc" `Quick
      test_vspace_contiguous_alloc;
    Alcotest.test_case "vspace: offset alloc" `Quick test_vspace_offset_alloc;
    Alcotest.test_case "vspace: free returns frames" `Quick
      test_vspace_free_returns_frames;
    Alcotest.test_case "vspace: page fault" `Quick test_page_fault;
    Alcotest.test_case "vspace: wiring counts" `Quick test_wiring_counts;
    Alcotest.test_case "sg_map: program/translate" `Quick test_sg_map;
    Alcotest.test_case "sg_map: load accounting" `Quick
      test_sg_map_loads_accumulate;
  ]
