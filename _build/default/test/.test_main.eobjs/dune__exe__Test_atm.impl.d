test/test_atm.ml: Alcotest Array Bytes Cell Char Format Gen List Osiris_atm Osiris_util QCheck QCheck_alcotest Sar
