test/test_faults.ml: Alcotest Bytes Char Driver Engine Hashtbl Host List Machine Network Option Osiris_board Osiris_core Osiris_link Osiris_proto Osiris_sim Osiris_xkernel Printf Process Time
