test/test_fbufs.ml: Alcotest Engine List Option Osiris_fbufs Osiris_mem Osiris_os Osiris_sim Printf Process
