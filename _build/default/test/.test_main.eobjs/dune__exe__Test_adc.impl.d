test/test_adc.ml: Alcotest Bytes Char Engine Host Machine Network Osiris_adc Osiris_board Osiris_core Osiris_proto Osiris_sim Osiris_xkernel Printf Process Time
