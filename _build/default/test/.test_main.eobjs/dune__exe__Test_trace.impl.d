test/test_trace.ml: Alcotest List Osiris_sim
