test/test_mem.ml: Alcotest List Osiris_mem Osiris_util Pbuf Phys_mem QCheck QCheck_alcotest Sg_map Vspace
