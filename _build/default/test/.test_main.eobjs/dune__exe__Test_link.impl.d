test/test_link.ml: Alcotest Bytes Char Engine List Osiris_atm Osiris_link Osiris_sim Osiris_util Printf Process
