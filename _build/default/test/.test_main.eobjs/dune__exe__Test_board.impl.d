test/test_board.ml: Alcotest Bytes Char Engine List Option Osiris_atm Osiris_board Osiris_bus Osiris_link Osiris_mem Osiris_sim Osiris_util Printf Process QCheck QCheck_alcotest
