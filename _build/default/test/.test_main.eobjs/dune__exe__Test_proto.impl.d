test/test_proto.ml: Alcotest Array Bytes Char Engine List Option Osiris_bus Osiris_cache Osiris_mem Osiris_os Osiris_proto Osiris_sim Osiris_util Osiris_xkernel Process QCheck QCheck_alcotest
