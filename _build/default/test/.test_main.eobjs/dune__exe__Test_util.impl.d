test/test_util.ml: Alcotest Array Bytes Char Checksum Crc32 Gen List Osiris_util QCheck QCheck_alcotest Rng Stats Units
