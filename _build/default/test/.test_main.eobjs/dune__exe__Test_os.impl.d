test/test_os.ml: Alcotest Array Engine List Osiris_mem Osiris_os Osiris_sim Process
