test/test_ether.ml: Alcotest Bytes Char Engine List Osiris_bus Osiris_core Osiris_ether Osiris_os Osiris_sim Printf Process Time
