test/test_cache.ml: Alcotest Bytes Engine Option Osiris_bus Osiris_cache Osiris_mem Osiris_sim Process
