test/test_sim.ml: Alcotest Buffer Engine Heap List Mailbox Osiris_sim Process QCheck QCheck_alcotest Resource Signal
