test/test_bus.ml: Alcotest Engine Osiris_bus Osiris_sim Process QCheck QCheck_alcotest
