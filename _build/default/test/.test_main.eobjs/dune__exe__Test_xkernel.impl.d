test/test_xkernel.ml: Alcotest Bytes Char Gen List Osiris_mem Osiris_os Osiris_util Osiris_xkernel QCheck QCheck_alcotest
