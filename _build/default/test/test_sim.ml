(* Tests for the discrete-event engine and its process layer. *)

open Osiris_sim

let check = Alcotest.(check int)

let test_engine_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Engine.schedule eng ~delay:30 (record 3));
  ignore (Engine.schedule eng ~delay:10 (record 1));
  ignore (Engine.schedule eng ~delay:20 (record 2));
  Engine.run eng;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  check "clock at last event" 30 (Engine.now eng)

let test_engine_fifo_same_time () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~delay:7 (fun () -> log := i :: !log))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "same-instant FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~delay:5 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run eng;
  Alcotest.(check bool) "cancelled event silent" false !fired

let test_engine_until () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule eng ~delay:10 tick)
  in
  ignore (Engine.schedule eng ~delay:10 tick);
  Engine.run ~until:100 eng;
  check "bounded run" 10 !count;
  check "clock clamped to horizon" 100 (Engine.now eng)

let test_engine_stop () =
  let eng = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Engine.schedule eng ~delay:1 (fun () ->
           incr count;
           if !count = 3 then Engine.stop eng))
  done;
  Engine.run eng;
  check "stopped after third" 3 !count

let test_schedule_past_rejected () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~delay:10 (fun () -> ()));
  ignore (Engine.step eng);
  Alcotest.check_raises "past time" (Invalid_argument
    "Engine.schedule_at: time 5 is in the past (now 10)")
    (fun () -> ignore (Engine.schedule_at eng ~time:5 (fun () -> ())))

let test_process_sleep () =
  let eng = Engine.create () in
  let log = ref [] in
  Process.spawn eng ~name:"p" (fun () ->
      log := Engine.now eng :: !log;
      Process.sleep eng 100;
      log := Engine.now eng :: !log;
      Process.sleep eng 50;
      log := Engine.now eng :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "sleep advances time" [ 0; 100; 150 ]
    (List.rev !log)

let test_process_exception_named () =
  let eng = Engine.create () in
  Process.spawn eng ~name:"boom" (fun () -> failwith "bang");
  Alcotest.check_raises "process failure surfaces"
    (Process.Process_failure ("boom", Failure "bang"))
    (fun () -> Engine.run eng)

let test_not_in_process () =
  let eng = Engine.create () in
  Alcotest.check_raises "sleep outside process" Process.Not_in_process
    (fun () -> Process.sleep eng 5)

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng () in
  let got = ref [] in
  Process.spawn eng ~name:"rx" (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Process.spawn eng ~name:"tx" (fun () ->
      List.iter (fun v -> Mailbox.send mb v) [ 1; 2; 3 ]);
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_capacity_blocks () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng ~capacity:2 () in
  let sent = ref 0 in
  Process.spawn eng ~name:"tx" (fun () ->
      for i = 1 to 4 do
        Mailbox.send mb i;
        sent := i
      done);
  Process.spawn eng ~name:"rx" (fun () ->
      Process.sleep eng 100;
      ignore (Mailbox.recv mb);
      Process.sleep eng 100;
      ignore (Mailbox.recv mb));
  Engine.run ~until:50 eng;
  check "sender blocked at capacity" 2 !sent;
  Engine.run ~until:250 eng;
  check "sender progressed per receive" 4 !sent

let test_mailbox_try_ops () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng ~capacity:1 () in
  Alcotest.(check bool) "send into empty" true (Mailbox.try_send mb 1);
  Alcotest.(check bool) "send into full" false (Mailbox.try_send mb 2);
  Alcotest.(check (option int)) "recv" (Some 1) (Mailbox.try_recv mb);
  Alcotest.(check (option int)) "recv empty" None (Mailbox.try_recv mb)

let test_resource_mutual_exclusion () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 in
  let active = ref 0 and max_active = ref 0 in
  for _ = 1 to 5 do
    Process.spawn eng ~name:"u" (fun () ->
        Resource.acquire res;
        incr active;
        if !active > !max_active then max_active := !active;
        Process.sleep eng 10;
        decr active;
        Resource.release res)
  done;
  Engine.run eng;
  check "never concurrent" 1 !max_active;
  check "all served, serialized" 50 (Engine.now eng)

let test_resource_priority () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 in
  let order = ref [] in
  Process.spawn eng ~name:"holder" (fun () ->
      Resource.acquire res;
      Process.sleep eng 100;
      Resource.release res);
  Process.spawn eng ~name:"low" (fun () ->
      Process.sleep eng 1;
      Resource.acquire ~priority:10 res;
      order := "low" :: !order;
      Resource.release res);
  Process.spawn eng ~name:"high" (fun () ->
      Process.sleep eng 2;
      Resource.acquire ~priority:0 res;
      order := "high" :: !order;
      Resource.release res);
  Engine.run eng;
  Alcotest.(check (list string)) "priority served first" [ "high"; "low" ]
    (List.rev !order)

let test_resource_utilization () =
  let eng = Engine.create () in
  let res = Resource.create eng ~capacity:1 in
  Process.spawn eng ~name:"u" (fun () ->
      Resource.use res ~duration:40;
      Process.sleep eng 60;
      Resource.use res ~duration:20);
  Engine.run eng;
  let st = Resource.stats res in
  check "busy time" 60 st.Resource.busy_time;
  check "acquisitions" 2 st.Resource.acquisitions

let test_signal_broadcast () =
  let eng = Engine.create () in
  let s = Signal.create eng in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Process.spawn eng ~name:"w" (fun () ->
        Signal.wait s;
        incr woken)
  done;
  Process.spawn eng ~name:"b" (fun () ->
      Process.sleep eng 10;
      Signal.broadcast s);
  Engine.run eng;
  check "all woken" 3 !woken

let test_determinism () =
  let run () =
    let eng = Engine.create () in
    let trace = Buffer.create 64 in
    let mb = Mailbox.create eng ~capacity:3 () in
    for p = 1 to 3 do
      Process.spawn eng ~name:"p" (fun () ->
          for i = 1 to 5 do
            Mailbox.send mb ((p * 10) + i);
            Process.sleep eng p
          done)
    done;
    Process.spawn eng ~name:"c" (fun () ->
        for _ = 1 to 15 do
          Buffer.add_string trace (string_of_int (Mailbox.recv mb));
          Buffer.add_char trace ' ';
          Process.sleep eng 2
        done);
    Engine.run eng;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

(* Heap property: popping returns keys in nondecreasing order. *)
let heap_prop =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (k, v) -> Heap.add h ~key:k ~seq:i v) entries;
      let rec drain last acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (k, _, v) ->
            if k < last then raise Exit;
            drain k (v :: acc)
      in
      let popped = try drain min_int [] with Exit -> [] in
      List.length popped = List.length entries)

let suite =
  [
    Alcotest.test_case "engine: timestamp order" `Quick test_engine_ordering;
    Alcotest.test_case "engine: same-instant FIFO" `Quick
      test_engine_fifo_same_time;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: bounded run" `Quick test_engine_until;
    Alcotest.test_case "engine: stop" `Quick test_engine_stop;
    Alcotest.test_case "engine: no scheduling in the past" `Quick
      test_schedule_past_rejected;
    Alcotest.test_case "process: sleep" `Quick test_process_sleep;
    Alcotest.test_case "process: named failure" `Quick
      test_process_exception_named;
    Alcotest.test_case "process: blocking outside process" `Quick
      test_not_in_process;
    Alcotest.test_case "mailbox: FIFO" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox: capacity blocks sender" `Quick
      test_mailbox_capacity_blocks;
    Alcotest.test_case "mailbox: try operations" `Quick test_mailbox_try_ops;
    Alcotest.test_case "resource: mutual exclusion" `Quick
      test_resource_mutual_exclusion;
    Alcotest.test_case "resource: priority" `Quick test_resource_priority;
    Alcotest.test_case "resource: utilization stats" `Quick
      test_resource_utilization;
    Alcotest.test_case "signal: broadcast wakes all" `Quick
      test_signal_broadcast;
    Alcotest.test_case "whole-sim determinism" `Quick test_determinism;
    QCheck_alcotest.to_alcotest heap_prop;
  ]
