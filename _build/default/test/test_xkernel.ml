(* Tests for the message tool and the early-demultiplexing table. *)

module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Vspace = Osiris_mem.Vspace
module Phys_mem = Osiris_mem.Phys_mem
module Rng = Osiris_util.Rng

let mk_vs ?scramble () =
  Vspace.create (Phys_mem.create ?scramble ~size:(4 lsl 20) ~page_size:4096 ())

let test_alloc_read_all () =
  let vs = mk_vs () in
  let m = Msg.alloc vs ~len:1000 ~fill:(fun i -> Char.chr (i land 0xff)) () in
  Alcotest.(check int) "length" 1000 (Msg.length m);
  Alcotest.(check bytes) "contents"
    (Bytes.init 1000 (fun i -> Char.chr (i land 0xff)))
    (Msg.read_all m)

let test_push_pop_headers () =
  let vs = mk_vs () in
  let m = Msg.alloc vs ~len:100 ~fill:(fun _ -> 'd') () in
  Msg.push m ~len:8 (fun b -> Bytes.fill b 0 8 'U');
  Msg.push m ~len:20 (fun b -> Bytes.fill b 0 20 'I');
  Alcotest.(check int) "length with headers" 128 (Msg.length m);
  (* Headers share one physical buffer (paper fig. 1). *)
  Alcotest.(check int) "segments: header area + data" 2
    (List.length (Msg.segs m));
  Alcotest.(check bytes) "outermost header" (Bytes.make 20 'I')
    (Msg.pop m ~len:20);
  Alcotest.(check bytes) "inner header" (Bytes.make 8 'U') (Msg.pop m ~len:8);
  Alcotest.(check bytes) "payload intact" (Bytes.make 100 'd') (Msg.read_all m)

let test_pop_across_boundary () =
  let vs = mk_vs () in
  let m = Msg.alloc vs ~len:100 ~fill:(fun _ -> 'd') () in
  Msg.push m ~len:10 (fun b -> Bytes.fill b 0 10 'h');
  let head = Msg.pop m ~len:15 in
  Alcotest.(check bytes) "header + 5 data"
    (Bytes.cat (Bytes.make 10 'h') (Bytes.make 5 'd'))
    head;
  Alcotest.(check int) "remaining" 95 (Msg.length m)

let test_sub_views () =
  let vs = mk_vs () in
  let m =
    Msg.alloc vs ~len:200 ~fill:(fun i -> Char.chr ((i * 5) land 0xff)) ()
  in
  let view = Msg.sub m ~off:50 ~len:100 in
  Alcotest.(check bytes) "view contents"
    (Bytes.init 100 (fun i -> Char.chr (((i + 50) * 5) land 0xff)))
    (Msg.read_all view);
  (* Views are zero-copy: writing through the parent shows in the view. *)
  Msg.blit_into m ~off:50 ~src:(Bytes.make 10 '!');
  Alcotest.(check bytes) "shared memory" (Bytes.make 10 '!')
    (Msg.peek view ~off:0 ~len:10)

let msg_header_roundtrip =
  QCheck.Test.make ~name:"msg: arbitrary push/pop roundtrip" ~count:100
    QCheck.(pair (list_of_size Gen.(1 -- 8) (int_range 1 64)) (int_range 1 500))
    (fun (headers, body_len) ->
      let vs = mk_vs () in
      let m = Msg.alloc vs ~len:body_len ~fill:(fun _ -> 'b') () in
      let tags =
        List.mapi
          (fun i len ->
            let c = Char.chr (Char.code 'A' + (i mod 26)) in
            Msg.push m ~len (fun b -> Bytes.fill b 0 len c);
            (len, c))
          headers
      in
      List.for_all
        (fun (len, c) -> Bytes.equal (Msg.pop m ~len) (Bytes.make len c))
        (List.rev tags)
      && Msg.length m = body_len)

let msg_sub_matches_read_all =
  QCheck.Test.make ~name:"msg: sub = slice of read_all" ~count:100
    QCheck.(triple (int_range 1 400) small_nat small_nat)
    (fun (len, off, sublen) ->
      let vs = mk_vs ~scramble:(Rng.create ~seed:11) () in
      let m = Msg.alloc vs ~len ~fill:(fun i -> Char.chr (i land 0xff)) () in
      let off = off mod len in
      let sublen = sublen mod (len - off + 1) in
      QCheck.assume (sublen > 0);
      let view = Msg.sub m ~off ~len:sublen in
      Bytes.equal (Msg.read_all view)
        (Bytes.sub (Msg.read_all m) off sublen))

let msg_pbufs_cover_message =
  QCheck.Test.make ~name:"msg: pbufs cover exactly the message" ~count:100
    QCheck.(int_range 1 30000)
    (fun len ->
      let vs = mk_vs ~scramble:(Rng.create ~seed:12) () in
      let m = Msg.alloc vs ~len ~fill:(fun _ -> 'x') () in
      Msg.push m ~len:20 (fun b -> Bytes.fill b 0 20 'h');
      Osiris_mem.Pbuf.total_len (Msg.pbufs m) = Msg.length m)

let test_dispose_frees_and_finalizes () =
  let mem = Phys_mem.create ~size:(1 lsl 20) ~page_size:4096 () in
  let vs = Vspace.create mem in
  let before = Phys_mem.free_frames mem in
  let m = Msg.alloc vs ~len:8192 () in
  Msg.push m ~len:4 (fun _ -> ());
  let finalized = ref 0 in
  Msg.add_finalizer m (fun () -> incr finalized);
  Msg.dispose m;
  Alcotest.(check int) "finalizer ran" 1 !finalized;
  Msg.dispose m;
  Alcotest.(check int) "idempotent" 1 !finalized;
  Alcotest.(check int) "frames returned" before (Phys_mem.free_frames mem)

let test_demux () =
  let d = Demux.create () in
  let got = ref 0 in
  Demux.bind d ~vci:5 ~name:"x" (fun ~vci msg ->
      got := vci + Msg.length msg;
      Msg.dispose msg);
  let vs = mk_vs () in
  Alcotest.(check bool) "delivered" true
    (Demux.deliver d ~vci:5 (Msg.alloc vs ~len:10 ()));
  Alcotest.(check int) "handler saw vci+len" 15 !got;
  Alcotest.(check bool) "unbound ignored" false
    (Demux.deliver d ~vci:6 (Msg.alloc vs ~len:10 ()));
  Alcotest.(check bool) "double bind rejected" true
    (try
       Demux.bind d ~vci:5 ~name:"y" (fun ~vci:_ m -> Msg.dispose m);
       false
     with Invalid_argument _ -> true);
  let v1 = Demux.fresh_vci d in
  Demux.bind d ~vci:v1 ~name:"a" (fun ~vci:_ m -> Msg.dispose m);
  let v2 = Demux.fresh_vci d in
  Alcotest.(check bool) "fresh vcis distinct" true (v1 <> v2);
  Demux.unbind d ~vci:5;
  Alcotest.(check bool) "unbound after unbind" false (Demux.bound d ~vci:5)

let test_paths () =
  let mem = Phys_mem.create ~size:(1 lsl 20) ~page_size:4096 () in
  let d = Demux.create () in
  let reg = Osiris_xkernel.Path.create_registry d in
  let dom k n = Osiris_os.Domain.create ~name:n ~kind:k (Vspace.create mem) in
  let driver = dom Osiris_os.Domain.Kernel "driver" in
  let app = dom Osiris_os.Domain.User "app" in
  let got = ref 0 in
  let p =
    Osiris_xkernel.Path.establish reg ~name:"conn-1" ~domains:[ driver; app ]
      ~handler:(fun path msg ->
        got := Osiris_xkernel.Path.crossings path + Msg.length msg;
        Msg.dispose msg)
  in
  Alcotest.(check int) "one boundary" 1 (Osiris_xkernel.Path.crossings p);
  Alcotest.(check bool) "registered" true
    (Osiris_xkernel.Path.find reg ~vci:p.Osiris_xkernel.Path.vci <> None);
  let vs = mk_vs () in
  Alcotest.(check bool) "delivery through the demux" true
    (Demux.deliver d ~vci:p.Osiris_xkernel.Path.vci (Msg.alloc vs ~len:10 ()));
  Alcotest.(check int) "handler saw crossings + len" 11 !got;
  let q =
    Osiris_xkernel.Path.establish reg ~name:"conn-2" ~domains:[ driver ]
      ~handler:(fun _ msg -> Msg.dispose msg)
  in
  Alcotest.(check bool) "fresh vci per path" true
    (p.Osiris_xkernel.Path.vci <> q.Osiris_xkernel.Path.vci);
  Alcotest.(check int) "two active" 2
    (List.length (Osiris_xkernel.Path.active reg));
  Osiris_xkernel.Path.tear_down reg p;
  Alcotest.(check bool) "vci released" false
    (Demux.bound d ~vci:p.Osiris_xkernel.Path.vci);
  Alcotest.(check int) "one active" 1
    (List.length (Osiris_xkernel.Path.active reg))

let suite =
  [
    Alcotest.test_case "msg: alloc/read_all" `Quick test_alloc_read_all;
    Alcotest.test_case "msg: headers share one buffer" `Quick
      test_push_pop_headers;
    Alcotest.test_case "msg: pop across header boundary" `Quick
      test_pop_across_boundary;
    Alcotest.test_case "msg: sub views" `Quick test_sub_views;
    QCheck_alcotest.to_alcotest msg_header_roundtrip;
    QCheck_alcotest.to_alcotest msg_sub_matches_read_all;
    QCheck_alcotest.to_alcotest msg_pbufs_cover_message;
    Alcotest.test_case "msg: dispose" `Quick test_dispose_frees_and_finalizes;
    Alcotest.test_case "demux table" `Quick test_demux;
    Alcotest.test_case "paths: establish/deliver/tear down" `Quick test_paths;
  ]
