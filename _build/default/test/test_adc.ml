(* Tests for application device channels: kernel bypass, protection,
   isolation. *)

open Osiris_sim
open Osiris_core
module Adc = Osiris_adc.Adc
module Board = Osiris_board.Board
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux
module Udp = Osiris_proto.Udp

let pair () =
  let eng = Engine.create () in
  let a = Host.create eng Machine.ds5000_200 ~addr:0x0a000001l
      Host.default_config in
  let b = Host.create eng Machine.ds5000_200 ~addr:0x0a000002l
      { Host.default_config with seed = 43 } in
  ignore (Network.connect eng a b);
  (eng, a, b)

let test_adc_end_to_end () =
  let eng, a, b = pair () in
  let app_a = Adc.open_ a ~name:"app-a" () in
  let app_b = Adc.open_ b ~name:"app-b" () in
  let vci = 40 in
  Board.bind_vci a.Host.board ~vci (Adc.channel app_a);
  Board.bind_vci b.Host.board ~vci (Adc.channel app_b);
  let got = ref None in
  Demux.bind (Adc.demux app_b) ~vci ~name:"sink" (fun ~vci:_ msg ->
      got := Some (Msg.read_all msg);
      Msg.dispose msg);
  let payload = Bytes.init 6000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  Process.spawn eng ~name:"app" (fun () ->
      let m = Adc.alloc_msg app_a ~len:6000 () in
      Msg.blit_into m ~off:0 ~src:payload;
      Adc.send app_a ~vci m);
  Engine.run ~until:(Time.ms 50) eng;
  match !got with
  | Some data -> Alcotest.(check bytes) "user-to-user intact" payload data
  | None -> Alcotest.fail "ADC message lost"

let test_adc_does_not_disturb_kernel () =
  let eng, a, b = pair () in
  let app_a = Adc.open_ a ~name:"app-a" () in
  let app_b = Adc.open_ b ~name:"app-b" () in
  let vci = 40 in
  Board.bind_vci a.Host.board ~vci (Adc.channel app_a);
  Board.bind_vci b.Host.board ~vci (Adc.channel app_b);
  Demux.bind (Adc.demux app_b) ~vci ~name:"sink" (fun ~vci:_ msg ->
      Msg.dispose msg);
  let kernel_got = ref 0 in
  Udp.bind b.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
      incr kernel_got;
      Msg.dispose msg);
  Process.spawn eng ~name:"mix" (fun () ->
      for _ = 1 to 10 do
        Adc.send app_a ~vci (Adc.alloc_msg app_a ~len:4096 ());
        Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7
          (Msg.alloc a.Host.vs ~len:4096 ())
      done);
  Engine.run ~until:(Time.ms 100) eng;
  Alcotest.(check int) "kernel traffic unaffected" 10 !kernel_got

let test_protection_violation () =
  let eng, a, _b = pair () in
  let rogue = Adc.open_ a ~name:"rogue" () in
  let vci = 41 in
  Board.bind_vci a.Host.board ~vci (Adc.channel rogue);
  let violations = ref 0 in
  Host.set_violation_handler a (fun () -> incr violations);
  let sent0 = (Board.stats a.Host.board).Board.pdus_sent in
  Process.spawn eng ~name:"rogue" (fun () ->
      Adc.send_unauthorized rogue ~vci ~len:4096);
  Engine.run ~until:(Time.ms 20) eng;
  Alcotest.(check int) "violation interrupt" 1 !violations;
  Alcotest.(check int) "nothing transmitted" sent0
    (Board.stats a.Host.board).Board.pdus_sent;
  Alcotest.(check int) "board counted the fault" 1
    (Board.stats a.Host.board).Board.protection_faults

let test_authorized_pages_pass () =
  (* The same board check allows properly authorized buffers through. *)
  let eng, a, b = pair () in
  let app_a = Adc.open_ a ~name:"app-a" () in
  let app_b = Adc.open_ b ~name:"app-b" () in
  let vci = 42 in
  Board.bind_vci a.Host.board ~vci (Adc.channel app_a);
  Board.bind_vci b.Host.board ~vci (Adc.channel app_b);
  let n = ref 0 in
  Demux.bind (Adc.demux app_b) ~vci ~name:"sink" (fun ~vci:_ msg ->
      incr n;
      Msg.dispose msg);
  Process.spawn eng ~name:"app" (fun () ->
      for _ = 1 to 5 do
        Adc.send app_a ~vci (Adc.alloc_msg app_a ~len:1024 ())
      done);
  Engine.run ~until:(Time.ms 50) eng;
  Alcotest.(check int) "all authorized PDUs through" 5 !n;
  Alcotest.(check int) "no faults" 0
    (Board.stats a.Host.board).Board.protection_faults

let test_channel_exhaustion () =
  let eng, a, _ = pair () in
  ignore eng;
  (* Channel 0 is the kernel's; 15 ADC pages remain. *)
  for i = 1 to 15 do
    ignore (Adc.open_ a ~name:(Printf.sprintf "app%d" i) ())
  done;
  Alcotest.(check bool) "16th open fails" true
    (try
       ignore (Adc.open_ a ~name:"too-many" ());
       false
     with Failure _ -> true)

let suite =
  [
    Alcotest.test_case "user-to-user message" `Quick test_adc_end_to_end;
    Alcotest.test_case "coexists with kernel traffic" `Quick
      test_adc_does_not_disturb_kernel;
    Alcotest.test_case "protection violation trapped" `Quick
      test_protection_violation;
    Alcotest.test_case "authorized buffers pass" `Quick
      test_authorized_pages_pass;
    Alcotest.test_case "queue pages are finite" `Quick test_channel_exhaustion;
  ]
