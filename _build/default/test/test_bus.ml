(* Tests for the TURBOchannel model: the paper's exact §2.5.1 numbers and
   the arbitration topologies. *)

open Osiris_sim
module Tc = Osiris_bus.Turbochannel

let mk topology = Tc.create (Engine.create ()) (Tc.turbochannel_config topology)

let test_paper_bounds () =
  let bus = mk Tc.Shared_bus in
  let chk label expected dir burst =
    Alcotest.(check (float 0.5)) label expected (Tc.max_dma_mbps bus ~dir ~burst)
  in
  chk "44B read = 367" 366.7 `Read 44;
  chk "44B write = 463" 463.2 `Write 44;
  chk "88B read = 503" 502.9 `Read 88;
  chk "88B write = 587" 586.7 `Write 88

let test_transaction_times () =
  let bus = mk Tc.Shared_bus in
  (* 44 bytes = 11 words; read = 13 + 11 = 24 cycles at 40ns. *)
  Alcotest.(check int) "44B read ns" 960
    (Tc.dma_transaction_ns bus ~dir:`Read ~bytes:44);
  Alcotest.(check int) "44B write ns" 760
    (Tc.dma_transaction_ns bus ~dir:`Write ~bytes:44);
  Alcotest.(check int) "cycle" 40 (Tc.cycle_ns bus);
  Alcotest.(check (float 0.01)) "peak" 800.0 (Tc.peak_mbps bus)

let run_two eng f g =
  let t_f = ref 0 and t_g = ref 0 in
  Process.spawn eng ~name:"f" (fun () ->
      f ();
      t_f := Engine.now eng);
  Process.spawn eng ~name:"g" (fun () ->
      g ();
      t_g := Engine.now eng);
  Engine.run eng;
  (!t_f, !t_g)

let test_shared_bus_contention () =
  (* On the shared bus, a CPU access and a DMA serialize. *)
  let eng = Engine.create () in
  let bus = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let t_dma, t_cpu =
    run_two eng
      (fun () -> Tc.dma_write bus ~bytes:44)
      (fun () -> Tc.cpu_access bus ~bytes:44 ~overhead_cycles:8)
  in
  Alcotest.(check int) "dma first" 760 t_dma;
  Alcotest.(check int) "cpu waits for dma" (760 + 760) t_cpu

let test_crossbar_concurrency () =
  (* On the crossbar, the same two transactions overlap. *)
  let eng = Engine.create () in
  let bus = Tc.create eng (Tc.turbochannel_config Tc.Crossbar) in
  let t_dma, t_cpu =
    run_two eng
      (fun () -> Tc.dma_write bus ~bytes:44)
      (fun () -> Tc.cpu_access bus ~bytes:44 ~overhead_cycles:8)
  in
  Alcotest.(check int) "dma" 760 t_dma;
  Alcotest.(check int) "cpu concurrent" 760 t_cpu

let test_pio_costs () =
  let eng = Engine.create () in
  let bus = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let t = ref 0 in
  Process.spawn eng ~name:"pio" (fun () ->
      Tc.pio_read_words bus ~words:10;
      t := Engine.now eng);
  Engine.run eng;
  (* 10 words x 15 cycles x 40ns *)
  Alcotest.(check int) "pio reads" 6000 !t

let dma_rate_matches_closed_form =
  QCheck.Test.make ~name:"bus: sustained rate = closed form" ~count:20
    QCheck.(pair (int_range 1 8) bool)
    (fun (cells, write) ->
      let burst = cells * 44 in
      let dir = if write then `Write else `Read in
      let eng = Engine.create () in
      let bus = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
      let n = 500 in
      Process.spawn eng ~name:"dma" (fun () ->
          for _ = 1 to n do
            match dir with
            | `Read -> Tc.dma_read bus ~bytes:burst
            | `Write -> Tc.dma_write bus ~bytes:burst
          done);
      Engine.run eng;
      let measured =
        float_of_int (n * burst * 8) /. float_of_int (Engine.now eng) *. 1e3
      in
      abs_float (measured -. Tc.max_dma_mbps bus ~dir ~burst) < 1.0)

let suite =
  [
    Alcotest.test_case "paper 2.5.1 bounds" `Quick test_paper_bounds;
    Alcotest.test_case "transaction durations" `Quick test_transaction_times;
    Alcotest.test_case "shared bus serializes" `Quick test_shared_bus_contention;
    Alcotest.test_case "crossbar overlaps" `Quick test_crossbar_concurrency;
    Alcotest.test_case "pio word costs" `Quick test_pio_costs;
    QCheck_alcotest.to_alcotest dma_rate_matches_closed_form;
  ]
