(* Fbufs end to end (§3.1): a microkernel-style delivery pipeline.

   In a microkernel, network data may traverse several protection domains
   on its way to the application: device driver -> user-level protocol
   server -> application. This example builds that pipeline twice over the
   public API — once delivering each message in a cached fbuf (the path is
   one of the 16 hottest, so its buffers are premapped end-to-end), once
   with uncached buffers that must be remapped at every boundary — and
   compares sustained delivery throughput. It also shows the path
   abstraction the VCI is bound to, and the LRU behaviour when more than
   16 paths are live.

   Run with: dune exec examples/fbuf_pipeline.exe *)

open Osiris_core
module Fbufs = Osiris_fbufs.Fbufs
module Path = Osiris_xkernel.Path
module Demux = Osiris_xkernel.Demux
module Domain = Osiris_os.Domain
module Cpu = Osiris_os.Cpu
module Vspace = Osiris_mem.Vspace
module Phys_mem = Osiris_mem.Phys_mem
module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Time = Osiris_sim.Time

let machine = Machine.ds5000_200
let msg_size = 16 * 1024
let messages = 200

(* Deliver [messages] buffers through a 3-domain pipeline; [cached]
   selects whether the path's fbuf pool is allowed to exist. *)
let run_pipeline ~cached =
  let eng = Engine.create () in
  let mem =
    Phys_mem.create ~size:(64 lsl 20) ~page_size:machine.Machine.page_size ()
  in
  let cpu = Cpu.create eng ~hz:machine.Machine.cpu_hz in
  let kernel_vs = Vspace.create mem in
  let driver_dom = Domain.create ~name:"driver" ~kind:Domain.Kernel kernel_vs in
  let proto_dom =
    Domain.create ~name:"udp-server" ~kind:Domain.User (Vspace.create mem)
  in
  let app_dom =
    Domain.create ~name:"app" ~kind:Domain.User (Vspace.create mem)
  in
  let fb =
    Fbufs.create cpu kernel_vs Fbufs.default_costs ~max_cached_paths:16
      ~bufs_per_path:4 ~buf_size:msg_size
  in
  let demux = Demux.create () in
  let reg = Path.create_registry demux in
  let delivered = ref 0 in
  let path =
    Path.establish reg ~name:"video-feed"
      ~domains:[ driver_dom; proto_dom; app_dom ]
      ~handler:(fun _ msg ->
        incr delivered;
        Osiris_xkernel.Msg.dispose msg)
  in
  (* The "adaptor + driver": every 40 us a 16KB PDU lands in a buffer
     chosen by the early-demultiplexing decision, then crosses the path's
     domain boundaries. With a cached pool the get and both crossings are
     pointer work; otherwise pages are remapped at each boundary. *)
  Process.spawn eng ~name:"delivery" (fun () ->
      (* To show the uncached regime, exhaust the path's pool up front (as
         if its four buffers were all still held upstream). *)
      let hoard =
        if cached then []
        else List.init 4 (fun _ -> Fbufs.get fb ~path:path.Path.id)
      in
      ignore hoard;
      for _ = 1 to messages do
        Process.sleep eng (Time.us 40);
        let f = Fbufs.get fb ~path:path.Path.id in
        ignore (Fbufs.transfer fb f ~domains:(Path.crossings path));
        (* hand a message view to the path's handler *)
        let msg =
          Osiris_xkernel.Msg.create kernel_vs ~vaddr:(Fbufs.vaddr f)
            ~len:msg_size
        in
        ignore (Demux.deliver demux ~vci:path.Path.vci msg);
        Fbufs.release fb f
      done);
  Engine.run ~until:(Time.s 5) eng;
  let elapsed = Engine.now eng in
  ( !delivered,
    Osiris_util.Units.mbps
      ~bytes_count:(!delivered * msg_size)
      ~seconds:(Time.to_float_s elapsed),
    Fbufs.stats fb )

let () =
  let n_cached, mbps_cached, st_c = run_pipeline ~cached:true in
  let n_uncached, mbps_uncached, st_u = run_pipeline ~cached:false in
  Printf.printf
    "3-domain delivery pipeline (driver -> protocol server -> app), 16KB \
     messages:\n";
  Printf.printf "  cached fbufs:   %3d delivered, %6.1f Mbps (%d pool hits)\n"
    n_cached mbps_cached st_c.Fbufs.cached_gets;
  Printf.printf
    "  uncached fbufs: %3d delivered, %6.1f Mbps (%d allocations, %d \
     evictions)\n"
    n_uncached mbps_uncached st_u.Fbufs.uncached_gets st_u.Fbufs.evictions;
  Printf.printf
    "early demultiplexing lets the adaptor pick a premapped buffer, so the \
     cached path transfers at pointer cost\n";
  if mbps_cached < 1.5 *. mbps_uncached then exit 1
