(* Quickstart: bring up two simulated hosts with OSIRIS adaptors linked
   back-to-back, send a few UDP messages from A to B, and print what the
   hardware did along the way.

   Run with: dune exec examples/quickstart.exe *)

open Osiris_core
module Msg = Osiris_xkernel.Msg
module Udp = Osiris_proto.Udp
module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Time = Osiris_sim.Time
module Board = Osiris_board.Board

let () =
  (* Two DECstation 5000/200s, default (paper) configuration. *)
  let eng, net = Network.pair () in
  let a = net.Network.a and b = net.Network.b in

  (* A UDP sink on host B. *)
  Host.new_udp_test_receiver b ~port:7 ~on_msg:(fun ~len ->
      Printf.printf "[%8.1f us] B received %d bytes\n"
        (Time.to_float_us (Engine.now eng))
        len);

  (* A sender process on host A: allocate a message in the (simulated)
     kernel address space, fill it, and push it down the UDP/IP stack. *)
  Process.spawn eng ~name:"sender" (fun () ->
      List.iter
        (fun size ->
          let msg =
            Msg.alloc a.Host.vs ~len:size
              ~fill:(fun i -> Char.chr (i land 0xff))
              ()
          in
          Printf.printf "[%8.1f us] A sends %d bytes\n"
            (Time.to_float_us (Engine.now eng))
            size;
          Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7 msg)
        [ 512; 4096; 16 * 1024; 64 * 1024 ]);

  Engine.run ~until:(Time.ms 20) eng;

  print_newline ();
  Snapshot.print (Snapshot.take ~name:"host A (sender)" a);
  Snapshot.print (Snapshot.take ~name:"host B (receiver)" b)
