(* A bulk-transfer scenario: host A streams a 4 MB "file" to host B over
   UDP/IP with a simple fixed-window, per-block acknowledgement protocol
   built on the public API — the kind of workload (remote file service)
   the paper's NFS discussion motivates.

   The interesting systems behaviour to watch: interrupt coalescing under
   back-to-back blocks, double-cell DMA combining on the receive side, and
   end-to-end integrity of every block (the receiver re-verifies each
   block's contents against the sender's pattern).

   Run with: dune exec examples/udp_file_transfer.exe *)

open Osiris_core
module Msg = Osiris_xkernel.Msg
module Udp = Osiris_proto.Udp
module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Mailbox = Osiris_sim.Mailbox
module Time = Osiris_sim.Time
module Board = Osiris_board.Board
module Irq = Osiris_os.Irq

let block_size = 32 * 1024
let file_size = 4 * 1024 * 1024
let window = 4
let data_port = 20
let ack_port = 21

(* Deterministic file contents: byte i of block b. *)
let block_byte b i = Char.chr ((i + (b * 131)) land 0xff)

let () =
  let eng, net = Network.pair ~machine_a:Machine.dec3000_600
      ~machine_b:Machine.dec3000_600 () in
  let a = net.Network.a and b = net.Network.b in
  let nblocks = file_size / block_size in

  (* Receiver on B: verify each block, ack it. *)
  let received = Array.make nblocks false in
  let corrupt = ref 0 in
  Udp.bind b.Host.udp ~port:data_port (fun ~src ~src_port:_ msg ->
      let data = Msg.read_all msg in
      let blk = Char.code (Bytes.get data 0)
                lor (Char.code (Bytes.get data 1) lsl 8) in
      let ok = ref true in
      for i = 4 to Bytes.length data - 1 do
        if Bytes.get data i <> block_byte blk (i - 4) then ok := false
      done;
      if not !ok then incr corrupt;
      if blk < nblocks then received.(blk) <- true;
      Msg.dispose msg;
      let ack = Msg.alloc b.Host.vs ~len:4 () in
      Msg.blit_into ack ~off:0
        ~src:(Bytes.init 4 (fun i -> Char.chr ((blk lsr (8 * i)) land 0xff)));
      Udp.output b.Host.udp ~dst:src ~src_port:ack_port ~dst_port:ack_port ack);

  (* Ack collector on A. *)
  let acks = Mailbox.create eng () in
  Udp.bind a.Host.udp ~port:ack_port (fun ~src:_ ~src_port:_ msg ->
      Msg.dispose msg;
      ignore (Mailbox.try_send acks ()));

  (* Sender on A: fixed window of [window] unacknowledged blocks. *)
  let t_start = ref 0 and t_end = ref 0 in
  Process.spawn eng ~name:"sender" (fun () ->
      t_start := Engine.now eng;
      let in_flight = ref 0 in
      for blk = 0 to nblocks - 1 do
        while !in_flight >= window do
          let () = Mailbox.recv acks in
          decr in_flight
        done;
        let msg =
          Msg.alloc a.Host.vs ~len:(block_size + 4) ~fill:(fun i ->
              if i < 4 then Char.chr ((blk lsr (8 * i)) land 0xff)
              else block_byte blk (i - 4)) ()
        in
        Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:data_port
          ~dst_port:data_port msg;
        incr in_flight
      done;
      while !in_flight > 0 do
        let () = Mailbox.recv acks in
        decr in_flight
      done;
      t_end := Engine.now eng;
      Engine.stop eng);

  Engine.run ~until:(Time.s 10) eng;

  let missing = Array.fold_left (fun n r -> if r then n else n + 1) 0 received in
  let elapsed = !t_end - !t_start in
  Printf.printf "transferred %d KB in %.2f ms simulated: %.1f Mbps goodput\n"
    (file_size / 1024)
    (Time.to_float_us elapsed /. 1000.)
    (Osiris_util.Units.mbps ~bytes_count:file_size
       ~seconds:(Time.to_float_s elapsed));
  Printf.printf "blocks: %d ok, %d missing, %d corrupt\n"
    (nblocks - missing) missing !corrupt;
  let sb = Board.stats b.Host.board in
  Printf.printf
    "receiver hardware: %d cells, %d DMA writes (%d double-cell), %d \
     interrupts for %d PDUs\n"
    sb.Board.cells_received sb.Board.dma_rx_transactions sb.Board.combined_dmas
    (Irq.count b.Host.irq) sb.Board.pdus_received;
  if missing > 0 || !corrupt > 0 then exit 1
