(* Kernel bypass with application device channels (§3.2): two user-level
   applications on two hosts get direct, protected access to their OSIRIS
   adaptors and ping-pong messages without any kernel involvement on the
   data path. A third, rogue application demonstrates the on-board
   protection check.

   Run with: dune exec examples/kernel_bypass.exe *)

open Osiris_core
module Adc = Osiris_adc.Adc
module Msg = Osiris_xkernel.Msg
module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Mailbox = Osiris_sim.Mailbox
module Time = Osiris_sim.Time
module Board = Osiris_board.Board
module Demux = Osiris_xkernel.Demux
module Stats = Osiris_util.Stats

let () =
  let eng, net = Network.pair () in
  let a = net.Network.a and b = net.Network.b in

  (* The OS maps a queue-page pair into each application: after this, the
     kernel is only involved when an interrupt needs dispatching. *)
  let app_a = Adc.open_ a ~name:"app-a" () in
  let app_b = Adc.open_ b ~name:"app-b" () in
  let vci = 60 in
  Board.bind_vci a.Host.board ~vci (Adc.channel app_a);
  Board.bind_vci b.Host.board ~vci (Adc.channel app_b);

  (* app-b echoes; app-a measures. *)
  Demux.bind (Adc.demux app_b) ~vci ~name:"echo" (fun ~vci:_ msg ->
      let len = Msg.length msg in
      Msg.dispose msg;
      Adc.send app_b ~vci (Msg.alloc (Adc.vspace app_b) ~len ()));
  let pong = Mailbox.create eng () in
  Demux.bind (Adc.demux app_a) ~vci ~name:"pong" (fun ~vci:_ msg ->
      Msg.dispose msg;
      ignore (Mailbox.try_send pong ()));

  let rtt = Stats.create () in
  Process.spawn eng ~name:"app-a" (fun () ->
      for i = 1 to 24 do
        let t0 = Engine.now eng in
        Adc.send app_a ~vci (Adc.alloc_msg app_a ~len:1024 ());
        let () = Mailbox.recv pong in
        if i > 4 then Stats.add rtt (Time.to_float_us (Engine.now eng - t0))
      done;
      Engine.stop eng);
  Engine.run ~until:(Time.s 5) eng;
  Printf.printf "user-to-user over ADCs, 1KB RTT: mean %.0f us (n=%d)\n"
    (Stats.mean rtt) (Stats.count rtt);

  (* The protection story: a rogue app names physical pages it does not
     own; the board refuses to transmit and the kernel is notified. *)
  let rogue = Adc.open_ a ~name:"rogue" () in
  let vci_r = 61 in
  Board.bind_vci a.Host.board ~vci:vci_r (Adc.channel rogue);
  let violations = ref 0 in
  Host.set_violation_handler a (fun () -> incr violations);
  let sent_before = (Board.stats a.Host.board).Board.pdus_sent in
  Process.spawn eng ~name:"rogue" (fun () ->
      Adc.send_unauthorized rogue ~vci:vci_r ~len:4096);
  Engine.run ~until:(Engine.now eng + Time.ms 10) eng;
  let sent_after = (Board.stats a.Host.board).Board.pdus_sent in
  Printf.printf
    "rogue transmit attempt: %d violation interrupt(s), %d PDUs leaked\n"
    !violations (sent_after - sent_before);
  if !violations = 0 || sent_after <> sent_before then exit 1
