(* A multimedia scenario (the paper's §3.2 motivation: "in many
   distributed applications, such as multimedia, network I/O is a frequent
   and common component"): a video-like flow with a latency budget shares
   the receiving host with a bulk background flow.

   Both flows get their own application device channel, so the adaptor
   demultiplexes them onto separate buffer pools: under overload the bulk
   flow is dropped on the board while the video flow keeps its frame rate
   — the §3.1 priority behaviour, end to end.

   Run with: dune exec examples/multimedia_priority.exe *)

open Osiris_core
module Adc = Osiris_adc.Adc
module Msg = Osiris_xkernel.Msg
module Engine = Osiris_sim.Engine
module Time = Osiris_sim.Time
module Board = Osiris_board.Board
module Demux = Osiris_xkernel.Demux
module Cpu = Osiris_os.Cpu
module Stats = Osiris_util.Stats

let frame_size = 8 * 1024
let bulk_pdu = 16 * 1024

let () =
  let eng = Engine.create () in
  let host =
    Host.create eng Machine.ds5000_200 ~addr:0x0a000002l Host.default_config
  in
  (* The video application: high traffic priority, high thread priority. *)
  let video = Adc.open_ host ~name:"video" ~priority:0 ~cpu_priority:5 () in
  (* The bulk consumer: background priority and expensive processing. *)
  let bulk = Adc.open_ host ~name:"bulk" ~priority:2 ~cpu_priority:15 () in
  let vci_video = 50 and vci_bulk = 51 in
  Board.bind_vci host.Host.board ~vci:vci_video (Adc.channel video);
  Board.bind_vci host.Host.board ~vci:vci_bulk (Adc.channel bulk);

  let frames = ref 0 and bulk_bytes = ref 0 in
  let jitter = Stats.create () in
  let last_frame = ref 0 in
  Demux.bind (Adc.demux video) ~vci:vci_video ~name:"video"
    (fun ~vci:_ msg ->
      incr frames;
      if !last_frame > 0 then
        Stats.add jitter
          (Time.to_float_us (Engine.now eng - !last_frame));
      last_frame := Engine.now eng;
      Msg.dispose msg);
  Demux.bind (Adc.demux bulk) ~vci:vci_bulk ~name:"bulk" (fun ~vci:_ msg ->
      bulk_bytes := !bulk_bytes + Msg.length msg;
      (* bulk post-processing, in scheduler quanta *)
      for _ = 1 to 10 do
        Cpu.consume_prio host.Host.cpu ~priority:20 (Time.us 100)
      done;
      Msg.dispose msg);

  (* Offered traffic: a paced frame every 500 us on the video VCI, bulk
     PDUs as fast as the link carries them on the other. *)
  let frame = Bytes.init frame_size (fun i -> Char.chr (i land 0xff)) in
  let bulk_data = Bytes.init bulk_pdu (fun i -> Char.chr (i land 0xff)) in
  (* Interleave: one frame per N bulk PDUs to approximate both schedules:
     frame every 500us; bulk pdu every ~286us at link rate. *)
  Board.start_fictitious_source host.Host.board
    ~pdus:[ (vci_video, frame); (vci_bulk, bulk_data); (vci_bulk, bulk_data) ]
    ();
  Host.start host;

  let horizon = Time.ms 100 in
  Engine.run ~until:horizon eng;

  let drops = (Board.stats host.Host.board).Board.pdus_dropped_no_buffer in
  Printf.printf "over %.0f ms simulated:\n" (Time.to_float_us horizon /. 1e3);
  Printf.printf "  video: %d frames delivered, inter-frame %s\n" !frames
    (Format.asprintf "%a" (fun fmt s ->
         Format.fprintf fmt "mean %.0fus sd %.0fus max %.0fus"
           (Stats.mean s) (Stats.stddev s) (Stats.max s)) jitter);
  Printf.printf "  bulk: %.1f Mbps delivered, %d PDUs dropped on the board\n"
    (Osiris_util.Units.mbps ~bytes_count:!bulk_bytes
       ~seconds:(Time.to_float_s horizon))
    drops;
  Printf.printf
    "the board dropped overload before it cost the host anything; the \
     video flow kept its cadence\n"
