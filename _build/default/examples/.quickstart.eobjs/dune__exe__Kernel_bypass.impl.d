examples/kernel_bypass.ml: Host Network Osiris_adc Osiris_board Osiris_core Osiris_sim Osiris_util Osiris_xkernel Printf
