examples/quickstart.mli:
