examples/kernel_bypass.mli:
