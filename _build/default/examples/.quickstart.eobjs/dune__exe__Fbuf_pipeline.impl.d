examples/fbuf_pipeline.ml: List Machine Osiris_core Osiris_fbufs Osiris_mem Osiris_os Osiris_sim Osiris_util Osiris_xkernel Printf
