examples/multimedia_priority.ml: Bytes Char Format Host Machine Osiris_adc Osiris_board Osiris_core Osiris_os Osiris_sim Osiris_util Osiris_xkernel Printf
