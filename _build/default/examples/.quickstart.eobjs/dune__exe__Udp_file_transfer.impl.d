examples/udp_file_transfer.ml: Array Bytes Char Host Machine Network Osiris_board Osiris_core Osiris_os Osiris_proto Osiris_sim Osiris_util Osiris_xkernel Printf
