examples/udp_file_transfer.mli:
