examples/quickstart.ml: Char Host List Network Osiris_board Osiris_core Osiris_proto Osiris_sim Osiris_xkernel Printf Snapshot
