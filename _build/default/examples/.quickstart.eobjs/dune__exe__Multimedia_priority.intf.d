examples/multimedia_priority.mli:
