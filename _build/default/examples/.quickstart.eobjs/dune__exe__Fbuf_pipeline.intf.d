examples/fbuf_pipeline.mli:
