open Effect
open Effect.Deep

exception Not_in_process
exception Process_failure of string * exn

type resumer = unit -> unit

type _ Effect.t += Suspend : ((resumer -> unit) * Engine.t) -> unit Effect.t

let spawn eng ?(name = "anon") f =
  let body () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = (fun exn -> raise (Process_failure (name, exn)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend (register, eng') ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let resumed = ref false in
                    let resumer () =
                      if !resumed then
                        invalid_arg "Process: resumer invoked twice";
                      resumed := true;
                      ignore
                        (Engine.schedule eng' ~delay:0 (fun () ->
                             continue k ()))
                    in
                    register resumer)
            | _ -> None);
      }
  in
  ignore (Engine.schedule eng ~delay:0 body)

let suspend eng register =
  try perform (Suspend (register, eng))
  with Effect.Unhandled _ -> raise Not_in_process

let sleep eng d =
  if d < 0 then invalid_arg "Process.sleep: negative duration";
  suspend eng (fun resume ->
      ignore (Engine.schedule eng ~delay:d (fun () -> resume ())))

let yield eng = sleep eng 0
