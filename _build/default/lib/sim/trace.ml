type category = Board_tx | Board_rx | Driver | Protocol | Link

let category_name = function
  | Board_tx -> "board-tx"
  | Board_rx -> "board-rx"
  | Driver -> "driver"
  | Protocol -> "protocol"
  | Link -> "link"

let all = [ Board_tx; Board_rx; Driver; Protocol; Link ]

let state = Hashtbl.create 8

let enable c = Hashtbl.replace state c ()
let disable c = Hashtbl.remove state c
let enable_all () = List.iter enable all

let initialized = ref false

let init_from_env () =
  if not !initialized then begin
    initialized := true;
    match Sys.getenv_opt "OSIRIS_TRACE" with
    | None | Some "" -> ()
    | Some "all" -> enable_all ()
    | Some spec ->
        String.split_on_char ',' spec
        |> List.iter (fun name ->
               List.iter
                 (fun c ->
                   if category_name c = String.trim name then enable c)
                 all)
  end

let enabled c =
  init_from_env ();
  Hashtbl.mem state c

let emit c ~now msg =
  if enabled c then
    Printf.eprintf "[%10.2fus %s] %s\n%!" (Time.to_float_us now)
      (category_name c) msg

let emitf c ~now fmt =
  if enabled c then
    Format.kasprintf (fun msg -> emit c ~now msg) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
