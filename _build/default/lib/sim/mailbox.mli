(** Bounded FIFO channels between simulation processes.

    A mailbox with capacity [c] blocks senders once [c] items are queued and
    blocks receivers while it is empty. With [c = max_int] it degenerates to
    an unbounded queue. Blocked processes are served in FIFO order. *)

type 'a t

val create : Engine.t -> ?capacity:int -> unit -> 'a t
(** [create eng ~capacity ()] makes an empty mailbox. [capacity] defaults to
    [max_int] and must be at least 1. *)

val send : 'a t -> 'a -> unit
(** Enqueue a value, blocking the calling process while the mailbox is
    full. *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking enqueue; [false] if the mailbox is full. Usable from any
    context. *)

val recv : 'a t -> 'a
(** Dequeue the oldest value, blocking the calling process while the mailbox
    is empty. *)

val try_recv : 'a t -> 'a option
(** Non-blocking dequeue. Usable from any context. *)

val length : 'a t -> int
(** Number of queued values. *)

val is_empty : 'a t -> bool
val is_full : 'a t -> bool
