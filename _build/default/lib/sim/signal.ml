type t = { eng : Engine.t; mutable queue : Process.resumer list }

let create eng = { eng; queue = [] }

let wait t =
  Process.suspend t.eng (fun resume -> t.queue <- resume :: t.queue)

let broadcast t =
  let woken = List.rev t.queue in
  t.queue <- [];
  List.iter (fun resume -> resume ()) woken

let waiters t = List.length t.queue
