type 'a t = {
  eng : Engine.t;
  capacity : int;
  items : 'a Queue.t;
  senders : Process.resumer Queue.t;
  receivers : Process.resumer Queue.t;
}

let create eng ?(capacity = max_int) () =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity < 1";
  {
    eng;
    capacity;
    items = Queue.create ();
    senders = Queue.create ();
    receivers = Queue.create ();
  }

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
let is_full t = Queue.length t.items >= t.capacity

let wake q = match Queue.take_opt q with None -> () | Some r -> r ()

let try_send t v =
  if is_full t then false
  else begin
    Queue.add v t.items;
    wake t.receivers;
    true
  end

let rec send t v =
  if try_send t v then ()
  else begin
    Process.suspend t.eng (fun resume -> Queue.add resume t.senders);
    send t v
  end

let try_recv t =
  match Queue.take_opt t.items with
  | None -> None
  | Some v ->
      wake t.senders;
      Some v

let rec recv t =
  match try_recv t with
  | Some v -> v
  | None ->
      Process.suspend t.eng (fun resume -> Queue.add resume t.receivers);
      recv t
