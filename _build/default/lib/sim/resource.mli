(** Counted resources with FIFO (optionally prioritized) waiting.

    A resource with capacity [c] admits at most [c] concurrent holders;
    further {!acquire} calls block. This models exclusive hardware shared by
    several actors — most importantly the TURBOchannel / memory bus, which
    on the DECstation 5000/200 is held for the full duration of each DMA
    transaction and each CPU cache fill. *)

type t

val create : Engine.t -> capacity:int -> t

val acquire : ?priority:int -> t -> unit
(** Block until a unit of the resource is available, then take it. Lower
    [priority] values are served first; equal priorities are FIFO. The
    default priority is 0. *)

val try_acquire : t -> bool
(** Take a unit if one is free; never blocks. *)

val release : t -> unit
(** Return one unit and wake the best waiter, if any. *)

val use : ?priority:int -> t -> duration:Time.t -> unit
(** [use t ~duration] acquires, holds the resource for [duration] of
    simulated time, and releases. This is the shape of a bus transaction. *)

val in_use : t -> int
(** Units currently held. *)

val waiting : t -> int
(** Number of blocked acquirers. *)

type stats = {
  mutable busy_time : Time.t;  (** total (unit × time) the resource was held *)
  mutable acquisitions : int;  (** completed acquires *)
  mutable wait_time : Time.t;  (** total time acquirers spent blocked *)
}

val stats : t -> stats
(** Live counters for utilization reporting; [busy_time] divided by elapsed
    time and capacity gives utilization. *)
