type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000
let of_float_us x = int_of_float (Float.round (x *. 1e3))
let of_float_s x = int_of_float (Float.round (x *. 1e9))
let to_float_us t = float_of_int t /. 1e3
let to_float_s t = float_of_int t /. 1e9

let pp fmt t =
  let f = float_of_int t in
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (f /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)
