type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  let cap = Array.length h.arr in
  let ncap = if cap = 0 then 64 else cap * 2 in
  (* The dummy cell is never read: slots >= len are dead. *)
  let dummy = h.arr.(0) in
  let narr = Array.make ncap dummy in
  Array.blit h.arr 0 narr 0 h.len;
  h.arr <- narr

let add h ~key ~seq value =
  let e = { key; seq; value } in
  if h.len = Array.length h.arr then
    if h.len = 0 then h.arr <- Array.make 64 e else grow h;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  (* Sift up. *)
  let rec up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if lt h.arr.(i) h.arr.(p) then begin
        let tmp = h.arr.(i) in
        h.arr.(i) <- h.arr.(p);
        h.arr.(p) <- tmp;
        up p
      end
    end
  in
  up (h.len - 1)

let pop_min h =
  if h.len = 0 then None
  else begin
    let min = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      (* Sift down. *)
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = if l < h.len && lt h.arr.(l) h.arr.(i) then l else i in
        let m = if r < h.len && lt h.arr.(r) h.arr.(m) then r else m in
        if m <> i then begin
          let tmp = h.arr.(i) in
          h.arr.(i) <- h.arr.(m);
          h.arr.(m) <- tmp;
          down m
        end
      in
      down 0
    end;
    Some (min.key, min.seq, min.value)
  end

let peek_key h = if h.len = 0 then None else Some h.arr.(0).key
