(** Lightweight event tracing for the simulation.

    Subsystems emit categorized one-line events; tracing is off by default
    and costs one branch when disabled. Enable programmatically or through
    the [OSIRIS_TRACE] environment variable (comma-separated category
    names, or ["all"]). Events go to [stderr] prefixed with the simulated
    timestamp, which the emitting site supplies (the tracer itself has no
    clock, so pure modules can trace too). *)

type category =
  | Board_tx  (** transmit processor: chain loads, completions *)
  | Board_rx  (** receive processor: reassembly outcomes, drops *)
  | Driver  (** host channel drivers *)
  | Protocol  (** IP/UDP events *)
  | Link  (** striping, skew, loss *)

val category_name : category -> string

val enable : category -> unit
val disable : category -> unit
val enable_all : unit -> unit

val enabled : category -> bool
(** Cheap guard for call sites that would otherwise build strings. *)

val emit : category -> now:Time.t -> string -> unit
(** Emit one event line (no trailing newline needed). *)

val emitf :
  category -> now:Time.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format is only evaluated when the category is
    enabled. *)

val init_from_env : unit -> unit
(** Parse [OSIRIS_TRACE]. Called lazily by the first {!emit}, but can be
    invoked explicitly. *)
