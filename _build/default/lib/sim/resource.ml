type stats = {
  mutable busy_time : Time.t;
  mutable acquisitions : int;
  mutable wait_time : Time.t;
}

type waiter = { priority : int; seq : int; resume : Process.resumer }

type t = {
  eng : Engine.t;
  capacity : int;
  mutable held : int;
  mutable wseq : int;
  mutable waiters : waiter list; (* sorted by (priority, seq) *)
  mutable last_change : Time.t;
  stats : stats;
}

let create eng ~capacity =
  if capacity < 1 then invalid_arg "Resource.create: capacity < 1";
  {
    eng;
    capacity;
    held = 0;
    wseq = 0;
    waiters = [];
    last_change = Engine.now eng;
    stats = { busy_time = 0; acquisitions = 0; wait_time = 0 };
  }

let account t =
  let now = Engine.now t.eng in
  t.stats.busy_time <- t.stats.busy_time + (t.held * (now - t.last_change));
  t.last_change <- now

let insert_waiter t w =
  let rec ins = function
    | [] -> [ w ]
    | x :: rest ->
        if
          w.priority < x.priority
          || (w.priority = x.priority && w.seq < x.seq)
        then w :: x :: rest
        else x :: ins rest
  in
  t.waiters <- ins t.waiters

let try_acquire t =
  if t.held < t.capacity && t.waiters = [] then begin
    account t;
    t.held <- t.held + 1;
    t.stats.acquisitions <- t.stats.acquisitions + 1;
    true
  end
  else false

let acquire ?(priority = 0) t =
  if t.held < t.capacity && t.waiters = [] then begin
    account t;
    t.held <- t.held + 1;
    t.stats.acquisitions <- t.stats.acquisitions + 1
  end
  else begin
    let started = Engine.now t.eng in
    Process.suspend t.eng (fun resume ->
        let w = { priority; seq = t.wseq; resume } in
        t.wseq <- t.wseq + 1;
        insert_waiter t w);
    (* Woken by [release], which transferred the unit to us directly. *)
    t.stats.wait_time <- t.stats.wait_time + (Engine.now t.eng - started);
    t.stats.acquisitions <- t.stats.acquisitions + 1
  end

let release t =
  if t.held <= 0 then invalid_arg "Resource.release: not held";
  account t;
  match t.waiters with
  | [] -> t.held <- t.held - 1
  | w :: rest ->
      (* Hand the unit straight to the first waiter: [held] stays. *)
      t.waiters <- rest;
      w.resume ()

let use ?priority t ~duration =
  acquire ?priority t;
  Process.sleep t.eng duration;
  release t

let in_use t = t.held
let waiting t = List.length t.waiters

let stats t =
  account t;
  t.stats
