(** Simulated time.

    All simulation timestamps and durations are integer nanoseconds, which
    keeps event ordering exact (no floating-point comparison hazards) and is
    fine-grained enough to express single bus cycles (a 25 MHz TURBOchannel
    cycle is 40 ns). *)

type t = int
(** A point in simulated time, or a duration, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val of_float_us : float -> t
(** [of_float_us x] is [x] microseconds, rounded to the nearest ns. *)

val of_float_s : float -> t
(** [of_float_s x] is [x] seconds, rounded to the nearest ns. *)

val to_float_us : t -> float
(** [to_float_us t] is [t] expressed in microseconds. *)

val to_float_s : t -> float
(** [to_float_s t] is [t] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns, us, ms, s). *)
