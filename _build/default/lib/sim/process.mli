(** Cooperative simulation processes.

    A process is an ordinary OCaml function run under an effect handler that
    lets it suspend itself and be resumed later by the engine. Processes
    model the concurrent actors of the simulated system: the host CPU
    threads, the adaptor's transmit and receive microprocessors, the DMA
    controller, link pipelines, and so on.

    All suspension primitives ({!sleep}, and the blocking operations of
    {!Mailbox}, {!Resource}, {!Signal}) may only be called from inside a
    function started with {!spawn}; calling them elsewhere raises
    [Not_in_process]. *)

exception Not_in_process

type resumer = unit -> unit
(** A one-shot thunk that reschedules a suspended process. Primitives must
    call it at most once; the resumed process runs as a fresh engine event
    at the time the resumer is invoked. *)

val spawn : Engine.t -> ?name:string -> (unit -> unit) -> unit
(** [spawn eng f] starts [f] as a process at the current simulated time.
    Uncaught exceptions from [f] are re-raised out of the engine loop with
    the process [name] attached for diagnosis. *)

val suspend : Engine.t -> ((resumer -> unit) -> unit)
(** [suspend eng register] suspends the calling process. [register] is
    called with the process's resumer, which some other actor must later
    invoke to resume it. This is the single primitive from which all
    blocking constructs are built. *)

val sleep : Engine.t -> Time.t -> unit
(** Suspend the calling process for the given simulated duration. *)

val yield : Engine.t -> unit
(** Suspend and immediately reschedule at the same simulated time, letting
    other events at this instant run first. *)

exception Process_failure of string * exn
(** Raised out of the engine loop when a named process dies with an
    uncaught exception. *)
