(** Broadcast condition variables for simulation processes.

    A signal carries no value; it wakes every process blocked in {!wait} at
    the simulated instant {!broadcast} is called. Typical uses: "transmit
    queue is no longer full", "an interrupt was raised". *)

type t

val create : Engine.t -> t

val wait : t -> unit
(** Block the calling process until the next {!broadcast}. *)

val broadcast : t -> unit
(** Wake all processes currently blocked in {!wait}. May be called from any
    context (process or plain event callback). *)

val waiters : t -> int
(** Number of processes currently blocked on the signal. *)
