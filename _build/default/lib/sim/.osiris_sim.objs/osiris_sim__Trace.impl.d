lib/sim/trace.ml: Format Hashtbl List Printf String Sys Time
