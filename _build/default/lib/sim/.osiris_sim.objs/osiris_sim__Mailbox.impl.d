lib/sim/mailbox.ml: Engine Process Queue
