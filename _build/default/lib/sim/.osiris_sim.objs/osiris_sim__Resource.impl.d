lib/sim/resource.ml: Engine List Process Time
