lib/sim/heap.mli:
