lib/sim/signal.mli: Engine
