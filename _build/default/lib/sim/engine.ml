type handle = { mutable cancelled : bool; fn : unit -> unit }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable stopping : bool;
  events : handle Heap.t;
}

exception Stopped

let create () =
  { clock = Time.zero; seq = 0; stopping = false; events = Heap.create () }

let now t = t.clock

let schedule_at t ~time fn =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)"
         time t.clock);
  let h = { cancelled = false; fn } in
  Heap.add t.events ~key:time ~seq:t.seq h;
  t.seq <- t.seq + 1;
  h

let schedule t ~delay fn =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) fn

let cancel h = h.cancelled <- true

let pending t = Heap.length t.events

let step t =
  match Heap.pop_min t.events with
  | None -> false
  | Some (time, _seq, h) ->
      t.clock <- time;
      if not h.cancelled then h.fn ();
      true

let stop t = t.stopping <- true

let run ?until ?max_events t =
  t.stopping <- false;
  let executed = ref 0 in
  let continue () =
    (not t.stopping)
    && (match max_events with None -> true | Some m -> !executed < m)
    &&
    match Heap.peek_key t.events with
    | None -> false
    | Some k -> ( match until with None -> true | Some u -> k <= u)
  in
  while continue () do
    ignore (step t);
    incr executed
  done;
  (* When stopping early because of [until], advance the clock to the
     horizon so that repeated bounded runs observe monotonic time. *)
  match until with
  | Some u when Heap.peek_key t.events <> None && not t.stopping ->
      if t.clock < u then t.clock <- u
  | _ -> ()
