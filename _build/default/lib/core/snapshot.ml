open Osiris_sim
module Board = Osiris_board.Board
module Ip = Osiris_proto.Ip
module Udp = Osiris_proto.Udp
module Cache = Osiris_cache.Data_cache
module Irq = Osiris_os.Irq
module Cpu = Osiris_os.Cpu
module Tc = Osiris_bus.Turbochannel

type t = {
  name : string;
  now : Time.t;
  board : Board.stats;
  driver : Driver.stats;
  ip : Ip.stats;
  udp : Udp.stats;
  cache : Cache.stats;
  interrupts : int;
  interrupt_asserts : int;
  bus_busy : Time.t;
  cpu_busy : Time.t;
}

let take ?(name = "host") (host : Host.t) =
  {
    name;
    now = Engine.now host.Host.eng;
    board = Board.stats host.Host.board;
    driver = Driver.stats host.Host.driver;
    ip = Ip.stats host.Host.ip;
    udp = Udp.stats host.Host.udp;
    cache = Cache.stats host.Host.cache;
    interrupts = Irq.count host.Host.irq;
    interrupt_asserts = Irq.asserted host.Host.irq;
    bus_busy = (Tc.busy_stats host.Host.bus).Resource.busy_time;
    cpu_busy = (Cpu.busy_stats host.Host.cpu).Resource.busy_time;
  }

let pct part whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp fmt t =
  let b = t.board and d = t.driver and i = t.ip and u = t.udp in
  Format.fprintf fmt "@[<v>%s at %a:@," t.name Time.pp t.now;
  Format.fprintf fmt
    "  adaptor: %d PDUs out (%d cells, %d DMA reads), %d PDUs in (%d cells, \
     %d DMA writes, %d combined)@,"
    b.Board.pdus_sent b.Board.cells_sent b.Board.dma_tx_transactions
    b.Board.pdus_received b.Board.cells_received b.Board.dma_rx_transactions
    b.Board.combined_dmas;
  if
    b.Board.pdus_dropped_no_buffer + b.Board.cells_dropped
    + b.Board.reassembly_errors + b.Board.protection_faults > 0
  then
    Format.fprintf fmt
      "  adaptor drops: %d PDUs (no buffer), %d cells, %d reassembly \
       errors, %d protection faults@,"
      b.Board.pdus_dropped_no_buffer b.Board.cells_dropped
      b.Board.reassembly_errors b.Board.protection_faults;
  Format.fprintf fmt
    "  driver: %d sent / %d received PDUs, %d tx stalls, %d wakeups, %d \
     CRC drops, %d aborted chains@,"
    d.Driver.pdus_sent d.Driver.pdus_received d.Driver.tx_full_stalls
    d.Driver.rx_wakeups d.Driver.crc_drops d.Driver.aborted_chains;
  Format.fprintf fmt
    "  ip: %d/%d datagrams out/in, %d fragments out, %d header errors, %d \
     reassembly evictions@,"
    i.Ip.datagrams_sent i.Ip.datagrams_delivered i.Ip.fragments_sent
    i.Ip.header_checksum_errors i.Ip.reassembly_drops;
  Format.fprintf fmt
    "  udp: %d sent, %d delivered, %d checksum drops, %d stale recoveries@,"
    u.Udp.sent u.Udp.delivered u.Udp.checksum_errors u.Udp.stale_recoveries;
  Format.fprintf fmt
    "  cache: %d hits / %d misses (%.1f%%), %d stale overlaps, %d stale \
     reads@,"
    t.cache.Cache.hits t.cache.Cache.misses
    (pct t.cache.Cache.hits (t.cache.Cache.hits + t.cache.Cache.misses))
    t.cache.Cache.stale_overlaps t.cache.Cache.stale_reads;
  Format.fprintf fmt
    "  interrupts: %d taken (%d asserts coalesced); bus busy %.1f%%, cpu \
     busy %.1f%%@]"
    t.interrupts
    (t.interrupt_asserts - t.interrupts)
    (pct t.bus_busy t.now) (pct t.cpu_busy t.now)

let print t = Format.printf "%a@." pp t
