module Atm_link = Osiris_link.Atm_link
module Board = Osiris_board.Board
module Rng = Osiris_util.Rng

type t = {
  a : Host.t;
  b : Host.t;
  a_to_b : Atm_link.t;
  b_to_a : Atm_link.t;
}

let connect eng ?(link = Atm_link.default_config) ?(seed = 7) (a : Host.t) (b : Host.t) =
  let rng = Rng.create ~seed in
  let a_to_b = Atm_link.create eng (Rng.split rng) link in
  let b_to_a = Atm_link.create eng (Rng.split rng) link in
  Board.attach a.Host.board ~tx_link:a_to_b ~rx_link:b_to_a;
  Board.attach b.Host.board ~tx_link:b_to_a ~rx_link:a_to_b;
  Host.start a;
  Host.start b;
  { a; b; a_to_b; b_to_a }

let pair ?(machine_a = Machine.ds5000_200) ?(machine_b = Machine.ds5000_200)
    ?(config = Host.default_config) ?link () =
  let eng = Osiris_sim.Engine.create () in
  let a = Host.create eng machine_a ~addr:0x0a000001l config in
  let b =
    Host.create eng machine_b ~addr:0x0a000002l
      { config with seed = config.seed + 1 }
  in
  let net = connect eng ?link a b in
  (eng, net)
