lib/core/network.ml: Host Machine Osiris_board Osiris_link Osiris_sim Osiris_util
