lib/core/host.mli: Driver Hashtbl Machine Osiris_board Osiris_bus Osiris_cache Osiris_fbufs Osiris_mem Osiris_os Osiris_proto Osiris_sim Osiris_xkernel
