lib/core/snapshot.mli: Driver Format Host Osiris_board Osiris_cache Osiris_proto Osiris_sim
