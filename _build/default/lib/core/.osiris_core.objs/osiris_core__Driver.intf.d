lib/core/driver.mli: Machine Osiris_board Osiris_cache Osiris_mem Osiris_os Osiris_xkernel
