lib/core/network.mli: Host Machine Osiris_link Osiris_sim
