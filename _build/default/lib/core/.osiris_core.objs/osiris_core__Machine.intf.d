lib/core/machine.mli: Osiris_bus Osiris_cache Osiris_os Osiris_proto Osiris_sim
