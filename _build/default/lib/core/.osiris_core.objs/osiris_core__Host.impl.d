lib/core/host.ml: Driver Engine Hashtbl Machine Osiris_board Osiris_bus Osiris_cache Osiris_fbufs Osiris_mem Osiris_os Osiris_proto Osiris_sim Osiris_util Osiris_xkernel Printf Sys
