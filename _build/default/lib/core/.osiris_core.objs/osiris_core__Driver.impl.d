lib/core/driver.ml: Engine Fun Hashtbl List Machine Osiris_atm Osiris_board Osiris_cache Osiris_mem Osiris_os Osiris_sim Osiris_xkernel Printf Process Queue Resource Signal String
