lib/core/snapshot.ml: Driver Engine Format Host Osiris_board Osiris_bus Osiris_cache Osiris_os Osiris_proto Osiris_sim Resource Time
