lib/core/machine.ml: List Osiris_bus Osiris_cache Osiris_os Osiris_proto Osiris_sim String Time
