(** Machine profiles: every hardware constant and calibrated software cost
    for the two workstation generations of the paper's §4.

    Hardware-derived values (bus overheads, clock rates, cache geometry) are
    taken directly from the paper or the machines' specifications; software
    costs (interrupt dispatch, driver and protocol per-PDU work, scheduling
    latency, background memory-traffic fraction) are calibrated so that
    Table 1 and the end points of Figures 2-4 are reproduced — see
    EXPERIMENTS.md for the calibration notes. *)

type driver_costs = {
  tx_per_pdu : Osiris_sim.Time.t;  (** fixed driver cost to queue one PDU *)
  tx_per_buffer : Osiris_sim.Time.t;  (** per physical buffer (descriptor) *)
  rx_per_pdu : Osiris_sim.Time.t;
  rx_per_buffer : Osiris_sim.Time.t;
  rx_per_kb : Osiris_sim.Time.t;
      (** per-KB receive-path cost (buffer management, VM bookkeeping);
          calibrated against Table 1's latency slope and the Figure 2/3
          plateaus *)
  sched_latency : Osiris_sim.Time.t;
      (** interrupt handler → driver thread running *)
  syscall : Osiris_sim.Time.t;
      (** kernel entry/exit, charged to user-domain clients of the kernel
          driver (zero for in-kernel tests and for ADC clients) *)
}

type t = {
  name : string;
  cpu_hz : int;
  page_size : int;
  mem_size : int;
  bus : Osiris_bus.Turbochannel.config;
  cache : Osiris_cache.Data_cache.config;
  interrupt_cost : Osiris_sim.Time.t;  (** paper §2.1.2: 75 µs on the 5000/200 *)
  wiring : Osiris_os.Wiring.costs;
  wiring_policy : Osiris_os.Wiring.policy;
  proto_costs : Osiris_proto.Ctx.costs;
  driver_costs : driver_costs;
  mem_traffic_fraction : float;
      (** fraction of executed CPU time that reappears as memory-bus traffic
          (cache fills / write-backs of ordinary execution); on the shared
          bus this contends with DMA (§4) *)
  rx_buffer_size : int;  (** receive buffer size (paper: 16 KB) *)
  rx_pool_buffers : int;  (** receive buffers the driver preallocates *)
}

val ds5000_200 : t
(** DECstation 5000/200: 25 MHz R3000, shared TURBOchannel, 64 KB
    direct-mapped write-through data cache, no DMA coherence. *)

val dec3000_600 : t
(** DEC 3000/600: 175 MHz Alpha, crossbar between TURBOchannel / memory /
    cache, DMA updates the cache. *)

val by_name : string -> t option
val all : t list
