(** One-stop observability: a consistent snapshot of every counter a host
    exposes — adaptor, driver, protocols, cache, bus, interrupts — with a
    compact printer. Examples and debugging sessions use this instead of
    fishing statistics out of six subsystems. *)

type t = {
  name : string;
  now : Osiris_sim.Time.t;
  board : Osiris_board.Board.stats;
  driver : Driver.stats;
  ip : Osiris_proto.Ip.stats;
  udp : Osiris_proto.Udp.stats;
  cache : Osiris_cache.Data_cache.stats;
  interrupts : int;
  interrupt_asserts : int;
  bus_busy : Osiris_sim.Time.t;
  cpu_busy : Osiris_sim.Time.t;
}

val take : ?name:string -> Host.t -> t
(** Capture the host's counters now. The record aliases the live mutable
    stats records; treat it as a point-in-time view for printing. *)

val pp : Format.formatter -> t -> unit
(** Multi-line, human-oriented rendering. *)

val print : t -> unit
(** [pp] to stdout. *)
