(** Two hosts with their OSIRIS boards linked back-to-back, as in the
    paper's §4 testbed ("a pair of workstations connected by a pair of
    OSIRIS boards linked back-to-back"). *)

type t = {
  a : Host.t;
  b : Host.t;
  a_to_b : Osiris_link.Atm_link.t;
  b_to_a : Osiris_link.Atm_link.t;
}

val connect :
  Osiris_sim.Engine.t ->
  ?link:Osiris_link.Atm_link.config ->
  ?seed:int ->
  Host.t ->
  Host.t ->
  t
(** Create the two unidirectional striped links, attach the boards, and
    start both hosts. *)

val pair :
  ?machine_a:Machine.t ->
  ?machine_b:Machine.t ->
  ?config:Host.config ->
  ?link:Osiris_link.Atm_link.config ->
  unit ->
  Osiris_sim.Engine.t * t
(** Convenience: a fresh engine and two identical hosts (DECstation
    5000/200 by default) already connected and started. *)
