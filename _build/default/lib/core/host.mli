(** A complete simulated host: machine, memory, cache, bus, OSIRIS board,
    kernel driver, and the UDP/IP protocol stack, assembled from a
    {!Machine} profile.

    The kernel's channel 0 is driven by an in-kernel {!Driver}; further
    channels (ADCs) can be opened and given their own driver instances via
    {!register_channel}. *)

type t = {
  eng : Osiris_sim.Engine.t;
  machine : Machine.t;
  mem : Osiris_mem.Phys_mem.t;
  vs : Osiris_mem.Vspace.t;  (** kernel address space *)
  kernel : Osiris_os.Domain.t;
  cpu : Osiris_os.Cpu.t;
  bus : Osiris_bus.Turbochannel.t;
  cache : Osiris_cache.Data_cache.t;
  irq : Osiris_os.Irq.t;
  wiring : Osiris_os.Wiring.t;
  board : Osiris_board.Board.t;
  demux : Osiris_xkernel.Demux.t;
  driver : Driver.t;  (** the kernel channel's driver *)
  ctx : Osiris_proto.Ctx.t;
  ip : Osiris_proto.Ip.t;
  udp : Osiris_proto.Udp.t;
  addr : Osiris_proto.Ip.addr;
  fbufs : Osiris_fbufs.Fbufs.t;
  handlers : (int, unit -> unit) Hashtbl.t;
      (** interrupt-line dispatch table (internal; use {!register_channel}) *)
}

type config = {
  board : Osiris_board.Board.config;
  ip : Osiris_proto.Ip.config;
  udp_checksum : bool;
  invalidation : Driver.invalidation;
  contiguous_buffers : bool;
  seed : int;
}

val default_config : config
(** Paper defaults: 16 KB aligned MTU, UDP checksum off, lazy invalidation,
    contiguous 16 KB receive buffers, double-cell DMA, per-link
    reassembly. *)

val create : Osiris_sim.Engine.t -> Machine.t -> addr:Osiris_proto.Ip.addr -> config -> t

val start : t -> unit
(** Start the board processors and the kernel driver threads. Call after
    {!Osiris_board.Board.attach} (or
    {!Osiris_board.Board.start_fictitious_source}). *)

val ip_vci : t -> int
(** The VCI the kernel IP stack sends and receives on. Bind the same value
    on the peer. *)

val register_channel :
  t -> Osiris_board.Board.channel -> Driver.t -> unit
(** Wire a (user) channel's interrupts to its driver: receive-queue
    non-empty and transmit half-empty for that channel id. The kernel
    channel is wired automatically. *)

val set_violation_handler : t -> (unit -> unit) -> unit
(** Install the handler run (at interrupt priority) when the board reports
    a protection violation on an ADC. The OS would raise an access
    violation exception in the offending process (§3.2). *)

val new_udp_test_receiver :
  t -> port:int -> on_msg:(len:int -> unit) -> unit
(** Bind a UDP port to a sink that records each delivered payload length,
    touching no data, then disposes the message — the receive-side test
    program of §4. *)
