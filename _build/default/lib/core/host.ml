open Osiris_sim
module Tc = Osiris_bus.Turbochannel
module Cache = Osiris_cache.Data_cache
module Cpu = Osiris_os.Cpu
module Irq = Osiris_os.Irq
module Wiring = Osiris_os.Wiring
module Domain = Osiris_os.Domain
module Board = Osiris_board.Board
module Phys_mem = Osiris_mem.Phys_mem
module Vspace = Osiris_mem.Vspace
module Demux = Osiris_xkernel.Demux
module Msg = Osiris_xkernel.Msg
module Ctx = Osiris_proto.Ctx
module Ip = Osiris_proto.Ip
module Udp = Osiris_proto.Udp
module Fbufs = Osiris_fbufs.Fbufs
module Rng = Osiris_util.Rng

type t = {
  eng : Engine.t;
  machine : Machine.t;
  mem : Phys_mem.t;
  vs : Vspace.t;
  kernel : Domain.t;
  cpu : Cpu.t;
  bus : Tc.t;
  cache : Cache.t;
  irq : Irq.t;
  wiring : Wiring.t;
  board : Board.t;
  demux : Demux.t;
  driver : Driver.t;
  ctx : Ctx.t;
  ip : Ip.t;
  udp : Udp.t;
  addr : Ip.addr;
  fbufs : Fbufs.t;
  handlers : (int, unit -> unit) Hashtbl.t;
}

type config = {
  board : Board.config;
  ip : Ip.config;
  udp_checksum : bool;
  invalidation : Driver.invalidation;
  contiguous_buffers : bool;
  seed : int;
}

let default_config =
  {
    board = Board.default_config;
    (* The paper's 16 KB IP MTU, taken literally: fragment boundaries are
       not page-aligned (that policy is the 2.2 ablation). *)
    ip = { Ip.default_config with Ip.aligned_mtu = false };
    udp_checksum = false;
    invalidation = Driver.Lazy;
    contiguous_buffers = true;
    seed = 42;
  }

let rx_irq_line ch_id = ch_id
let tx_irq_line ch_id = 100 + ch_id
let violation_irq_line = 200

(* The kernel IP stack's connection uses a fixed well-known VCI. *)
let kernel_ip_vci = 5

let ip_vci _t = kernel_ip_vci

(* Background memory traffic of ordinary execution: a fraction of every
   executed slice re-appears as bus transactions in small chunks, so DMA
   and CPU execution steal bandwidth from each other on a shared bus. *)
let install_memory_load cpu bus cache fraction =
  if fraction > 0.0 then
    Cpu.set_memory_load cpu (fun slice ->
        let cycle = Tc.cycle_ns bus in
        let total_cycles =
          int_of_float (fraction *. float_of_int slice /. float_of_int cycle)
        in
        let chunk_words = 64 in
        let nchunks = total_cycles / (chunk_words + 1) in
        for _ = 1 to min nchunks 1024 do
          Tc.cpu_access bus ~bytes:(chunk_words * 4) ~overhead_cycles:1
        done;
        (* The same activity displaces cached network data ("these accesses
           are likely to evict all previously cached data", §2.3). *)
        let line_size = (Cache.config cache).Cache.line_size in
        if Sys.getenv_opt "OSIRIS_NOPRESSURE" = None then
          Cache.pressure cache
            ~lines:(min 4096 (total_cycles * 4 / line_size)))

let create eng (machine : Machine.t) ~addr cfg =
  let rng = Rng.create ~seed:cfg.seed in
  let mem =
    Phys_mem.create ~scramble:(Rng.split rng) ~size:machine.Machine.mem_size
      ~page_size:machine.Machine.page_size ()
  in
  let vs = Vspace.create mem in
  let kernel = Domain.create ~name:"kernel" ~kind:Domain.Kernel vs in
  let cpu = Cpu.create eng ~hz:machine.Machine.cpu_hz in
  let bus = Tc.create eng machine.Machine.bus in
  let cache = Cache.create eng ~mem ~bus machine.Machine.cache in
  install_memory_load cpu bus cache machine.Machine.mem_traffic_fraction;
  let irq = Irq.create eng ~cpu ~dispatch_cost:machine.Machine.interrupt_cost in
  let wiring =
    Wiring.create cpu machine.Machine.wiring machine.Machine.wiring_policy
  in
  let demux = Demux.create () in
  let handlers : (int, unit -> unit) Hashtbl.t = Hashtbl.create 16 in
  let dispatch line () =
    match Hashtbl.find_opt handlers line with Some f -> f () | None -> ()
  in
  let board_cfg =
    { cfg.board with Board.page_size = machine.Machine.page_size }
  in
  let on_interrupt reason =
    let line =
      match reason with
      | Board.Rx_nonempty id -> rx_irq_line id
      | Board.Tx_half_empty id -> tx_irq_line id
      | Board.Protection_violation _ -> violation_irq_line
    in
    Irq.assert_line irq ~line
  in
  let board =
    Board.create eng ~bus ~mem ~on_interrupt
      ~on_dma_write:(fun ~addr ~len -> Cache.dma_wrote cache ~addr ~len)
      board_cfg
  in
  for id = 0 to board_cfg.Board.n_channels - 1 do
    Irq.register irq ~line:(rx_irq_line id)
      ~name:(Printf.sprintf "rx%d" id)
      (dispatch (rx_irq_line id));
    Irq.register irq ~line:(tx_irq_line id)
      ~name:(Printf.sprintf "tx%d" id)
      (dispatch (tx_irq_line id))
  done;
  Irq.register irq ~line:violation_irq_line ~name:"violation"
    (dispatch violation_irq_line);
  let driver =
    Driver.create ~cpu ~cache ~wiring ~board ~channel:(Board.kernel_channel board)
      ~vs ~costs:machine.Machine.driver_costs ~demux
      ~invalidation:cfg.invalidation
      ~rx_buffer_size:machine.Machine.rx_buffer_size
      ~rx_pool_buffers:machine.Machine.rx_pool_buffers
      ~contiguous_buffers:cfg.contiguous_buffers ()
  in
  Hashtbl.replace handlers (rx_irq_line 0) (fun () ->
      Driver.on_rx_nonempty driver);
  Hashtbl.replace handlers (tx_irq_line 0) (fun () ->
      Driver.on_tx_half_empty driver);
  let ctx = Ctx.create ~cpu ~cache machine.Machine.proto_costs in
  (* IP and UDP reference each other; tie the knot through a ref. *)
  let udp_ref = ref None in
  let ip =
    Ip.create ctx cfg.ip ~src:addr ~page_size:machine.Machine.page_size
      ~send:(fun frag -> Driver.send driver ~vci:kernel_ip_vci frag)
      ~deliver:(fun ~proto ~src msg ->
        match !udp_ref with
        | Some udp when proto = Udp.protocol_number -> Udp.input udp ~src msg
        | _ -> Msg.dispose msg)
  in
  let udp = Udp.create ctx ~checksum:cfg.udp_checksum ~ip in
  udp_ref := Some udp;
  Board.bind_vci board ~vci:kernel_ip_vci (Board.kernel_channel board);
  Demux.bind demux ~vci:kernel_ip_vci ~name:"ip" (fun ~vci:_ msg ->
      Ip.input ip msg);
  let fbufs =
    Fbufs.create cpu vs Fbufs.default_costs ~max_cached_paths:16
      ~bufs_per_path:4 ~buf_size:machine.Machine.rx_buffer_size
  in
  {
    eng;
    machine;
    mem;
    vs;
    kernel;
    cpu;
    bus;
    cache;
    irq;
    wiring;
    board;
    demux;
    driver;
    ctx;
    ip;
    udp;
    addr;
    fbufs;
    handlers;
  }

let start (t : t) =
  Board.start t.board;
  Driver.start t.driver

let register_channel (t : t) ch drv =
  let id = Board.channel_id ch in
  Hashtbl.replace t.handlers (rx_irq_line id) (fun () ->
      Driver.on_rx_nonempty drv);
  Hashtbl.replace t.handlers (tx_irq_line id) (fun () ->
      Driver.on_tx_half_empty drv)

let set_violation_handler (t : t) f =
  Hashtbl.replace t.handlers violation_irq_line f

let new_udp_test_receiver (t : t) ~port ~on_msg =
  Udp.bind t.udp ~port (fun ~src:_ ~src_port:_ msg ->
      on_msg ~len:(Msg.length msg);
      Msg.dispose msg)
