open Osiris_sim
module Tc = Osiris_bus.Turbochannel
module Cache = Osiris_cache.Data_cache

type driver_costs = {
  tx_per_pdu : Time.t;
  tx_per_buffer : Time.t;
  rx_per_pdu : Time.t;
  rx_per_buffer : Time.t;
  rx_per_kb : Time.t;
  sched_latency : Time.t;
  syscall : Time.t;
}

type t = {
  name : string;
  cpu_hz : int;
  page_size : int;
  mem_size : int;
  bus : Tc.config;
  cache : Cache.config;
  interrupt_cost : Time.t;
  wiring : Osiris_os.Wiring.costs;
  wiring_policy : Osiris_os.Wiring.policy;
  proto_costs : Osiris_proto.Ctx.costs;
  driver_costs : driver_costs;
  mem_traffic_fraction : float;
  rx_buffer_size : int;
  rx_pool_buffers : int;
}

let ds5000_200 =
  let cpu_hz = 25_000_000 in
  {
    name = "DEC 5000/200";
    cpu_hz;
    page_size = 4096;
    mem_size = 64 * 1024 * 1024;
    bus = Tc.turbochannel_config Tc.Shared_bus;
    cache =
      {
        Cache.size = 64 * 1024;
        line_size = 16;
        coherence = Cache.Software;
        cpu_hz;
        hit_cycles_per_word = 1;
        fill_overhead_cycles = 13;
        invalidate_cycles_per_word = 1;
      };
    (* Raw CPU occupancy; the memory-traffic fraction below stretches
       every executed slice by ~1.5x on this shared-bus machine, so the
       effective interrupt cost is the paper's 75 us. *)
    interrupt_cost = Time.us 50;
    wiring = {
      Osiris_os.Wiring.mach_fixed = Time.us 55;
      mach_per_page = Time.us 30;
      low_fixed = Time.us 3;
      low_per_page = Time.us 2;
    };
    wiring_policy = Osiris_os.Wiring.Low_level;
    proto_costs =
      {
        Osiris_proto.Ctx.ip_output_per_fragment = Time.us 17;
        ip_input_per_fragment = Time.us 28;
        udp_output = Time.us 23;
        udp_input = Time.us 12;
        checksum_cycles_per_word = 1;
      };
    driver_costs =
      {
        tx_per_pdu = Time.us 13;
        tx_per_buffer = Time.us 3;
        rx_per_pdu = Time.us 20;
        rx_per_buffer = Time.us 7;
        rx_per_kb = Time.us 2;
        sched_latency = Time.us 7;
        syscall = Time.us 20;
      };
    mem_traffic_fraction = 0.5;
    rx_buffer_size = 16 * 1024;
    rx_pool_buffers = 63;
  }

let dec3000_600 =
  let cpu_hz = 175_000_000 in
  {
    name = "DEC 3000/600";
    cpu_hz;
    page_size = 8192;
    mem_size = 128 * 1024 * 1024;
    bus = Tc.turbochannel_config Tc.Crossbar;
    cache =
      {
        Cache.size = 2 * 1024 * 1024;
        line_size = 32;
        coherence = Cache.Hardware_update;
        cpu_hz;
        hit_cycles_per_word = 1;
        fill_overhead_cycles = 2;
        invalidate_cycles_per_word = 1;
      };
    interrupt_cost = Time.us 25;
    wiring = {
      Osiris_os.Wiring.mach_fixed = Time.us 35;
      mach_per_page = Time.us 20;
      low_fixed = Time.us 2;
      low_per_page = Time.ns 1500;
    };
    wiring_policy = Osiris_os.Wiring.Low_level;
    proto_costs =
      {
        Osiris_proto.Ctx.ip_output_per_fragment = Time.us 16;
        ip_input_per_fragment = Time.us 30;
        udp_output = Time.us 21;
        udp_input = Time.us 14;
        checksum_cycles_per_word = 1;
      };
    driver_costs =
      {
        tx_per_pdu = Time.us 9;
        tx_per_buffer = Time.us 2;
        rx_per_pdu = Time.us 13;
        rx_per_buffer = Time.us 4;
        rx_per_kb = Time.us 9;
        sched_latency = Time.us 4;
        syscall = Time.us 12;
      };
    mem_traffic_fraction = 0.0;
    rx_buffer_size = 16 * 1024;
    rx_pool_buffers = 63;
  }

let all = [ ds5000_200; dec3000_600 ]

let by_name n =
  List.find_opt
    (fun m -> String.lowercase_ascii m.name = String.lowercase_ascii n)
    all
