module Host = Osiris_core.Host
module Driver = Osiris_core.Driver
module Machine = Osiris_core.Machine
module Board = Osiris_board.Board
module Desc = Osiris_board.Desc
module Desc_queue = Osiris_board.Desc_queue
module Domain = Osiris_os.Domain
module Vspace = Osiris_mem.Vspace
module Pbuf = Osiris_mem.Pbuf
module Msg = Osiris_xkernel.Msg
module Demux = Osiris_xkernel.Demux

type t = {
  host : Host.t;
  domain : Domain.t;
  vs : Vspace.t;
  channel : Board.channel;
  driver : Driver.t;
  demux : Demux.t;
  mutable allowed : Pbuf.t list;
}

let refresh_allowed t =
  Board.set_allowed_pages t.channel (Some t.allowed)

let open_ (host : Host.t) ~name ?(priority = 1) ?cpu_priority () =
  let vs = Vspace.create host.Host.mem in
  let domain = Domain.create ~name ~kind:Domain.User vs in
  let channel = Board.open_channel host.Host.board ~priority () in
  let demux = Demux.create () in
  let machine = host.Host.machine in
  let driver =
    Driver.create ~cpu:host.Host.cpu ~cache:host.Host.cache
      ~wiring:host.Host.wiring ~board:host.Host.board ~channel ~vs
      ~costs:machine.Machine.driver_costs ~demux ~invalidation:Driver.Lazy
      ~rx_buffer_size:machine.Machine.rx_buffer_size
      ~rx_pool_buffers:(machine.Machine.rx_pool_buffers / 2)
      ~contiguous_buffers:true ?cpu_priority ()
  in
  Host.register_channel host channel driver;
  Driver.start driver;
  let t =
    { host; domain; vs; channel; driver; demux;
      allowed = Driver.buffer_regions driver }
  in
  refresh_allowed t;
  t

let host t = t.host
let domain t = t.domain
let vspace t = t.vs
let channel t = t.channel
let driver t = t.driver
let demux t = t.demux

let bind_vci t =
  let vci = Demux.fresh_vci t.demux in
  Board.bind_vci t.host.Host.board ~vci t.channel;
  vci

let on_receive t ~vci handler =
  if not (Demux.bound t.demux ~vci) then
    Demux.bind t.demux ~vci ~name:"adc" (fun ~vci:_ msg -> handler msg)
  else invalid_arg "Adc.on_receive: VCI already has a handler"

let authorize t msg =
  t.allowed <- Msg.pbufs msg @ t.allowed;
  refresh_allowed t

let authorize_region t ~vaddr ~len =
  t.allowed <- Vspace.phys_buffers t.vs ~vaddr ~len @ t.allowed;
  refresh_allowed t

let alloc_msg t ~len ?fill () =
  let msg = Msg.alloc t.vs ~len ?fill () in
  authorize t msg;
  msg

let send t ~vci msg =
  (* Header pushes allocate new pages after [alloc_msg]'s authorization;
     cover whatever the message spans now. *)
  List.iter
    (fun (s : Msg.seg) -> authorize_region t ~vaddr:s.Msg.vaddr ~len:s.Msg.len)
    (Msg.segs msg);
  Driver.send t.driver ~vci msg

let send_unauthorized t ~vci ~len =
  let vaddr = Vspace.alloc t.vs ~len in
  let pbufs = Vspace.phys_buffers t.vs ~vaddr ~len in
  let descs = Desc.chain_of_pbufs ~vci pbufs in
  List.iter
    (fun d -> ignore (Desc_queue.host_enqueue (Board.tx_queue t.channel) d))
    descs

let violations t =
  (Board.stats t.host.Host.board).Board.protection_faults
