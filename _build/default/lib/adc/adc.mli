(** Application device channels (paper §3.2).

    An ADC gives an application restricted but direct access to the OSIRIS
    adaptor: the OS maps one transmit queue page and one free/receive queue
    page pair into the application's address space, assigns it a set of
    VCIs, a transmit priority, and a list of authorized physical pages, and
    then gets out of the way. Data-path operations (queueing buffers,
    draining the receive queue) cross no protection boundary; only
    interrupts still arrive via the kernel, whose handler directly signals
    the ADC channel driver's thread.

    The channel driver linked into the application "performs essentially
    the same functions as the in-kernel OSIRIS device driver", so this
    module instantiates {!Osiris_core.Driver} in the application's domain
    with the kernel-crossing cost set to zero, and registers the channel's
    interrupt lines with the host. Protection is enforced by the board:
    descriptors naming unauthorized pages raise a violation interrupt
    instead of being transmitted. *)

type t

val open_ :
  Osiris_core.Host.t ->
  name:string ->
  ?priority:int ->
  ?cpu_priority:int ->
  unit ->
  t
(** Open an ADC on the host: create the application's protection domain and
    address space, take one of the board's channel pages, set up its channel
    driver (with its own receive-buffer pool, authorized to the board), and
    wire the channel's interrupts. *)

val host : t -> Osiris_core.Host.t
val domain : t -> Osiris_os.Domain.t
val vspace : t -> Osiris_mem.Vspace.t
val channel : t -> Osiris_board.Board.channel
val driver : t -> Osiris_core.Driver.t
val demux : t -> Osiris_xkernel.Demux.t

val bind_vci : t -> int
(** Allocate a fresh VCI, route it to this ADC on the board, and return
    it. *)

val on_receive : t -> vci:int -> (Osiris_xkernel.Msg.t -> unit) -> unit
(** Register the application's receive upcall for a VCI of this ADC (the
    handler owns the message). *)

val send : t -> vci:int -> Osiris_xkernel.Msg.t -> unit
(** Transmit directly from user space — no kernel crossing. The message's
    pages must have been {!authorize}d, or the board raises a protection
    violation and drops the PDU. *)

val alloc_msg : t -> len:int -> ?fill:(int -> char) -> unit -> Osiris_xkernel.Msg.t
(** Allocate an application buffer in the ADC's address space and authorize
    its pages for transmission. *)

val authorize : t -> Osiris_xkernel.Msg.t -> unit
(** Add the message's physical pages to the channel's authorized list. *)

val send_unauthorized : t -> vci:int -> len:int -> unit
(** Deliberately queue a descriptor naming pages outside the authorized
    list — the protection-violation test. *)

val violations : t -> int
(** Protection violations this host's board has raised (all channels). *)
