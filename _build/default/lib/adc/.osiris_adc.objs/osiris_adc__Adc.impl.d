lib/adc/adc.ml: List Osiris_board Osiris_core Osiris_mem Osiris_os Osiris_xkernel
