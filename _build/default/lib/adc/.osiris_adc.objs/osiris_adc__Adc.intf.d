lib/adc/adc.mli: Osiris_board Osiris_core Osiris_mem Osiris_os Osiris_xkernel
