lib/xkernel/path.ml: Demux List Osiris_os
