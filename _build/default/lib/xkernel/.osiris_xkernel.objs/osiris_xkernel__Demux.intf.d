lib/xkernel/demux.mli: Msg
