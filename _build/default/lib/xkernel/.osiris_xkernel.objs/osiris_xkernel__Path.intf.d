lib/xkernel/path.mli: Demux Msg Osiris_os
