lib/xkernel/msg.mli: Bytes Osiris_mem
