lib/xkernel/msg.ml: Bytes List Osiris_mem
