lib/xkernel/demux.ml: Hashtbl Msg Printf
