(** Paths through the protocol graph (paper §3.1).

    "The x-kernel provides a mechanism for establishing a path through the
    protocol graph, where a path is given by the sequence of sessions that
    will process incoming and outgoing messages on behalf of a particular
    application-level connection. Each path is then bound to an unused VCI
    by the device driver."

    A path here records that binding: a stable id (the key fbuf pools are
    cached under), the VCI the adaptor demultiplexes on, and the chain of
    protection domains its messages traverse (driver → protocol server(s)
    → application), which is what the fbuf transfer costs depend on. VCIs
    are treated as an abundant resource: every connection gets one for its
    lifetime. *)

type t = {
  id : int;  (** stable identifier; the fbuf path-cache key *)
  name : string;
  vci : int;
  domains : Osiris_os.Domain.t list;
      (** protection domains the path crosses, in delivery order *)
}

type registry

val create_registry : Demux.t -> registry
(** Paths allocate their VCIs from (and bind their handlers into) this
    demultiplexing table. *)

val establish :
  registry ->
  name:string ->
  domains:Osiris_os.Domain.t list ->
  handler:(t -> Msg.t -> unit) ->
  t
(** Open a path: allocate a fresh VCI, bind the handler (which receives
    the path itself, so it can consult [domains] for transfer costs), and
    register the path for its lifetime. *)

val tear_down : registry -> t -> unit
(** Release the path and its VCI. *)

val find : registry -> vci:int -> t option
val crossings : t -> int
(** Protection-domain boundaries a delivered message must cross. *)

val active : registry -> t list
(** Currently established paths, most recent first. *)
