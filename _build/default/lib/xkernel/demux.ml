type handler = vci:int -> Msg.t -> unit

type t = {
  table : (int, string * handler) Hashtbl.t;
  mutable next_vci : int;
}

let create () = { table = Hashtbl.create 32; next_vci = 32 }

let bind t ~vci ~name handler =
  if Hashtbl.mem t.table vci then
    invalid_arg (Printf.sprintf "Demux.bind: VCI %d already bound" vci);
  Hashtbl.replace t.table vci (name, handler)

let unbind t ~vci = Hashtbl.remove t.table vci

let deliver t ~vci msg =
  match Hashtbl.find_opt t.table vci with
  | None -> false
  | Some (_, h) ->
      h ~vci msg;
      true

let bound t ~vci = Hashtbl.mem t.table vci
let bindings t = Hashtbl.length t.table

let fresh_vci t =
  while Hashtbl.mem t.table t.next_vci do
    t.next_vci <- t.next_vci + 1
  done;
  let v = t.next_vci in
  t.next_vci <- t.next_vci + 1;
  v
