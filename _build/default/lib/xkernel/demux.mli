(** Early-demultiplexing table: VCI → path.

    The x-kernel establishes a {e path} through the protocol graph for each
    application-level connection and binds it to an otherwise unused VCI for
    the connection's lifetime — treating VCIs as an abundant resource (paper
    §3.1). This table is the host-side image of that binding: the driver
    looks up the VCI of a received PDU and upcalls the bound handler, which
    is the entry point of the connection's session chain. *)

type t

type handler = vci:int -> Msg.t -> unit

val create : unit -> t

val bind : t -> vci:int -> name:string -> handler -> unit
(** Raises [Invalid_argument] if the VCI is already bound. *)

val unbind : t -> vci:int -> unit

val deliver : t -> vci:int -> Msg.t -> bool
(** Upcall the handler bound to [vci]; [false] (message ignored) when
    unbound. *)

val bound : t -> vci:int -> bool
val bindings : t -> int

val fresh_vci : t -> int
(** An unused VCI (abundant-resource allocation). *)
