type t = {
  id : int;
  name : string;
  vci : int;
  domains : Osiris_os.Domain.t list;
}

type registry = {
  demux : Demux.t;
  mutable next_id : int;
  mutable paths : t list;
}

let create_registry demux = { demux; next_id = 1; paths = [] }

let establish reg ~name ~domains ~handler =
  let vci = Demux.fresh_vci reg.demux in
  let path = { id = reg.next_id; name; vci; domains } in
  reg.next_id <- reg.next_id + 1;
  Demux.bind reg.demux ~vci ~name (fun ~vci:_ msg -> handler path msg);
  reg.paths <- path :: reg.paths;
  path

let tear_down reg path =
  Demux.unbind reg.demux ~vci:path.vci;
  reg.paths <- List.filter (fun p -> p.id <> path.id) reg.paths

let find reg ~vci = List.find_opt (fun p -> p.vci = vci) reg.paths

let crossings path = max 0 (List.length path.domains - 1)

let active reg = reg.paths
