let mbps ~bytes_count ~seconds =
  if seconds <= 0.0 then 0.0
  else float_of_int bytes_count *. 8.0 /. seconds /. 1e6

let pp_mbps fmt r = Format.fprintf fmt "%.1f Mbps" r

let pp_size fmt n =
  if n < 1024 then Format.fprintf fmt "%dB" n
  else if n < 1024 * 1024 then
    if n mod 1024 = 0 then Format.fprintf fmt "%dKB" (n / 1024)
    else Format.fprintf fmt "%.1fKB" (float_of_int n /. 1024.0)
  else Format.fprintf fmt "%.1fMB" (float_of_int n /. (1024.0 *. 1024.0))
