lib/util/rng.mli:
