let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let init = 0xFFFFFFFFl

let update crc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32: region out of bounds";
  let t = Lazy.force table in
  let c = ref crc in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  !c

let finalize crc = Int32.logxor crc 0xFFFFFFFFl

let compute b ~off ~len = finalize (update init b ~off ~len)
