(** Rendering helpers for rates and sizes, shared by the experiment
    printers. *)

val mbps : bytes_count:int -> seconds:float -> float
(** Megabits per second (decimal mega, as the paper uses). *)

val pp_mbps : Format.formatter -> float -> unit
(** "413.2 Mbps" *)

val pp_size : Format.formatter -> int -> unit
(** Bytes with adaptive unit: "512B", "4KB", "1.5MB". Kilo is 1024. *)
