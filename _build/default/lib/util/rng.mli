(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic element of the simulation (frame allocator scrambling,
    link skew jitter, error injection, workload generators) draws from an
    explicitly seeded [Rng.t], so whole-system runs are reproducible. *)

type t

val create : seed:int -> t
(** A generator seeded with [seed]; equal seeds yield equal streams. *)

val split : t -> t
(** A new generator whose stream is a deterministic function of the parent's
    state; advances the parent. Use to give subsystems independent
    streams. *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. [n] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
