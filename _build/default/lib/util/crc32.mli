(** CRC-32 (IEEE 802.3 polynomial), as used by the AAL5 trailer.

    The simulated adaptor appends and checks this CRC over each reassembled
    PDU, which is what detects cells corrupted by link errors and — together
    with the UDP checksum — stale data revealed by lazy cache
    invalidation. *)

val compute : Bytes.t -> off:int -> len:int -> int32
(** CRC-32 of the region, standard init [0xffffffff] and final inversion. *)

val update : int32 -> Bytes.t -> off:int -> len:int -> int32
(** Incremental form: feed successive regions to [update] starting from
    {!init}, then {!finalize}. *)

val init : int32
val finalize : int32 -> int32
