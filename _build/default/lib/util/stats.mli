(** Streaming statistics (Welford) and fixed-bucket histograms, used by the
    experiment harness to summarize latencies, queue depths and rates. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Sample variance; 0 for fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Smallest observation; [nan] when empty. *)

val max : t -> float
(** Largest observation; [nan] when empty. *)

val sum : t -> float

val pp : Format.formatter -> t -> unit
(** "n=… mean=… sd=… min=… max=…". *)

(** Histogram with uniform buckets over [\[lo, hi)]; out-of-range samples go
    to the two overflow buckets. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  val count : h -> int

  val percentile : h -> float -> float
  (** [percentile h p] for [p] in [\[0,100\]]: the upper edge of the bucket
      containing the [p]-th percentile observation. *)

  val pp : Format.formatter -> h -> unit
end
