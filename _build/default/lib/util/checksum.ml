let fold sum =
  let s = ref sum in
  while !s > 0xffff do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  !s

let ones_complement_sum ?(init = 0) b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum: region out of bounds";
  let sum = ref init in
  let i = ref off in
  let last = off + len in
  while !i + 1 < last do
    sum := !sum + (Char.code (Bytes.get b !i) lsl 8) + Char.code (Bytes.get b (!i + 1));
    i := !i + 2
  done;
  if !i < last then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  fold !sum

let finish sum = lnot (fold sum) land 0xffff

let compute b ~off ~len = finish (ones_complement_sum b ~off ~len)

let verify b ~off ~len = fold (ones_complement_sum b ~off ~len) = 0xffff

let combine a b = fold (a + b)
