(** The Internet (RFC 1071) 16-bit one's-complement checksum.

    Used by the simulated IP header checksum and the optional UDP data
    checksum. The lazy-cache-invalidation experiment (paper §2.3) depends on
    this catching stale cached data, which it does for any single corrupted
    region that does not happen to preserve the one's-complement sum. *)

val ones_complement_sum : ?init:int -> Bytes.t -> off:int -> len:int -> int
(** Running 16-bit one's-complement sum of the region; odd trailing byte is
    padded with zero as per RFC 1071. The result is in [\[0, 0xffff\]]. *)

val finish : int -> int
(** One's-complement of a running sum: the value to place in a checksum
    field. *)

val compute : Bytes.t -> off:int -> len:int -> int
(** [finish (ones_complement_sum b ~off ~len)]. *)

val verify : Bytes.t -> off:int -> len:int -> bool
(** True when a region that includes its checksum field sums to [0xffff]. *)

val combine : int -> int -> int
(** One's-complement addition of two running sums (e.g. header + payload
    computed separately). *)
