(** Direct-mapped, physically-indexed data cache with byte-accurate
    contents.

    The cache keeps a private copy of each resident line, so a CPU read
    after an un-invalidated DMA write really does return {e stale bytes} —
    exactly the hazard the lazy cache-invalidation scheme of paper §2.3
    gambles on. Two coherence modes:

    - [Software] (DECstation 5000/200): DMA writes to main memory leave
      resident cache lines untouched. Correctness requires an explicit
      {!invalidate} of the written range (costing one CPU cycle per 32-bit
      word, per the paper), or the lazy discipline of checking end-to-end
      checksums and invalidating only on failure.
    - [Hardware_update] (DEC 3000/600): DMA writes update resident lines, so
      no invalidation is ever needed.

    All timed operations block the calling process; fills and write-throughs
    go through the {!Osiris_bus.Turbochannel} model, so on a shared-bus
    machine they contend with concurrent DMA. *)

type coherence = Software | Hardware_update

type config = {
  size : int;  (** total data capacity in bytes *)
  line_size : int;  (** bytes per line *)
  coherence : coherence;
  cpu_hz : int;  (** CPU clock, for cycle-denominated costs *)
  hit_cycles_per_word : int;  (** CPU cycles to consume one cached word *)
  fill_overhead_cycles : int;  (** bus setup cycles per line fill *)
  invalidate_cycles_per_word : int;  (** §2.3: one cycle per 32-bit word *)
}

type t

val create :
  Osiris_sim.Engine.t -> mem:Osiris_mem.Phys_mem.t -> bus:Osiris_bus.Turbochannel.t -> config -> t

val config : t -> config

val read : t -> addr:int -> len:int -> Bytes.t
(** CPU read of a physical range through the cache: misses are filled from
    main memory over the bus, hits are served from the resident copy — which
    may be stale in [Software] mode. Takes simulated time. *)

val read_into : t -> addr:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit

val write : t -> addr:int -> src:Bytes.t -> unit
(** CPU write through the cache (write-through, no write-allocate): main
    memory is updated, and any resident lines covering the range are updated
    too. Takes simulated time for the write-through bus traffic. *)

val invalidate : t -> addr:int -> len:int -> unit
(** Explicitly invalidate all lines overlapping the range, at
    [invalidate_cycles_per_word] of CPU time per word actually covered
    (whether or not resident). *)

val invalidate_all : t -> unit
(** The "swap the whole cache" big hammer (paper §2.3 footnote): instant
    invalidation, but every subsequent access misses. No time is charged
    here; the cost shows up as the refill misses. *)

val pressure : t -> lines:int -> unit
(** Model capacity pressure from unrelated activity: evict [lines] resident
    lines (round-robin over the index space) as if other data had displaced
    them. Free of simulated time — the displacing accesses are charged by
    whoever models them (the CPU's background memory-traffic hook). *)

val dma_wrote : t -> addr:int -> len:int -> unit
(** Notify the cache that DMA wrote the range. In [Hardware_update] mode
    resident lines are refreshed from memory (free, done by hardware); in
    [Software] mode resident lines are left stale and counted. Takes no
    simulated time. *)

val resident : t -> addr:int -> bool
(** Is the line containing [addr] resident (tag match)? *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidated_lines : int;
  mutable stale_overlaps : int;
      (** DMA writes that overlapped a resident line in [Software] mode —
          each is a latent stale-data hazard *)
  mutable stale_reads : int;
      (** reads that actually returned bytes differing from main memory *)
}

val stats : t -> stats
