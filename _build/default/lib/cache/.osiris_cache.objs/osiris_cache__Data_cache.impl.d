lib/cache/data_cache.ml: Array Bytes Engine Osiris_bus Osiris_mem Osiris_sim Process
