lib/cache/data_cache.mli: Bytes Osiris_bus Osiris_mem Osiris_sim
