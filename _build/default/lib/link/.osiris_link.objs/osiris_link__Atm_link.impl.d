lib/link/atm_link.ml: Array Engine Mailbox Osiris_atm Osiris_sim Osiris_util Process Time
