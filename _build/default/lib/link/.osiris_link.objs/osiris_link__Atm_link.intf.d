lib/link/atm_link.mli: Osiris_atm Osiris_sim Osiris_util
