(** The striped physical link (paper §2.6).

    OSIRIS reaches 622 Mb/s by striping cells round-robin over four 155.52
    Mb/s channels. Each channel delivers its own cells in FIFO order, but
    the channels are mutually skewed by fixed path/multiplexing differences
    and by per-cell queueing jitter — the paper's "skew" class of
    misordering: cell [k] goes to link [k mod n]; relative order is
    preserved within a link and arbitrary (within the configured bound)
    across links.

    A link object is unidirectional. Sending blocks the calling process for
    serialization backpressure (each channel transmits one 53-byte cell at a
    time, with a small on-board output FIFO of bookable slots); delivery
    pushes cells into the receiving adaptor's input FIFO, dropping (and
    counting) cells when that FIFO overflows. *)

type config = {
  nlinks : int;  (** stripe width; 1 disables striping *)
  link_rate_bps : int;  (** line rate of each channel (155.52 Mb/s) *)
  propagation_delay : Osiris_sim.Time.t;
  skew : Osiris_sim.Time.t array;
      (** fixed extra delay per channel (length [nlinks]); models path-length
          and multiplexing-equipment differences *)
  jitter_mean : Osiris_sim.Time.t;
      (** mean of exponential per-cell queueing jitter (switch ports); 0
          disables *)
  corrupt_prob : float;  (** per-cell probability of a flipped data byte *)
  drop_prob : float;  (** per-cell probability of loss in the network *)
  tx_fifo_cells : int;  (** bookable output slots per channel *)
  rx_fifo_cells : int;  (** receiving adaptor's input FIFO capacity *)
}

val default_config : config
(** 4 × 155.52 Mb/s, 10 µs propagation, no skew, no jitter, no errors,
    2-cell output FIFOs, 32-cell input FIFO. *)

val oc12_aggregate : config -> float
(** Aggregate user-data bandwidth in Mb/s: nlinks × rate × 44/53 — the
    paper's "516 Mb/s data bandwidth in a 622 Mb/s link". *)

type t

val create : Osiris_sim.Engine.t -> Osiris_util.Rng.t -> config -> t

val config : t -> config

val send : t -> Osiris_atm.Cell.t -> unit
(** Transmit the next cell (striped round-robin). Blocks the calling process
    when the target channel's output FIFO is fully booked. *)

val recv : t -> int * Osiris_atm.Cell.t
(** Next arrived cell with the channel it arrived on, in arrival order.
    Blocks when none is pending. *)

val try_recv : t -> (int * Osiris_atm.Cell.t) option

val pending : t -> int
(** Cells currently waiting in the receive FIFO. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_fifo : int;  (** lost to receive-FIFO overflow *)
  mutable dropped_net : int;  (** lost in the network (drop_prob) *)
  mutable corrupted : int;
  mutable reordered : int;
      (** deliveries that overtook a cell sent earlier on another channel *)
}

val stats : t -> stats
