lib/board/board.mli: Bytes Desc Desc_queue Osiris_atm Osiris_bus Osiris_link Osiris_mem Osiris_sim
