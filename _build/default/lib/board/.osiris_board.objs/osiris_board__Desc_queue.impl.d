lib/board/desc_queue.ml: Array Desc Fun Osiris_sim Printf Resource Signal
