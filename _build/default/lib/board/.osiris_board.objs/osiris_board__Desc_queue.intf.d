lib/board/desc_queue.mli: Desc Osiris_sim
