lib/board/board.ml: Array Bytes Desc Desc_queue Engine Float Hashtbl List Mailbox Osiris_atm Osiris_bus Osiris_link Osiris_mem Osiris_sim Printf Process Queue Signal String
