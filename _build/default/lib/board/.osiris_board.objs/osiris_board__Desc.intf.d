lib/board/desc.mli: Format Osiris_mem
