lib/board/desc.ml: Format List Osiris_mem
