(** §2.1.2 ablation: interrupt coalescing.

    The host/board protocol eliminates per-PDU interrupts: transmit
    completion is signalled by tail-pointer advance, and the receive
    interrupt fires only on the receive queue's empty → non-empty
    transition, so a closely-spaced packet train costs one interrupt. At
    75 µs per interrupt (vs 200 µs of UDP/IP service time) this is a large
    fraction of the receive budget.

    The experiment sends bursts of PDUs with varying spacing and reports
    interrupts taken per PDU: near 1 for widely spaced packets (low latency
    still matters there), far below 1 for trains. *)

val run :
  ?machine:Osiris_core.Machine.t ->
  ?burst:int ->
  ?pdu_size:int ->
  spacing_us:int ->
  unit ->
  int * int
(** [(pdus_received, interrupts_taken)] for one burst with the given
    inter-send spacing. *)

val table : unit -> Report.table
