(** §2.5.1 ablation: transmit multiplexing granularity.

    "We argued previously that fine-grained multiplexing is advantageous
    for latency..." — the OSIRIS transmit processor can take one cell from
    each queued PDU in turn, so a small latency-sensitive message is not
    stuck behind a bulk transfer already in progress.

    The experiment runs a latency ping-pong on one channel while a second
    channel continuously transmits large PDUs, under both cell-interleaved
    and PDU-at-a-time multiplexing, and also reports the bulk flow's
    throughput (the cost of the finer granularity: more DMA transactions
    per byte when interleaving forces shorter bursts — negligible here,
    visible in the §2.5.1 numbers). *)

type result = {
  small_rtt_us : float;
  bulk_mbps : float;
}

val run :
  mux:Osiris_board.Board.tx_mux -> ?bulk_pdu:int -> unit -> result

val table : unit -> Report.table
