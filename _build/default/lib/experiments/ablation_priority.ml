open Osiris_sim
module Host = Osiris_core.Host
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Adc = Osiris_adc.Adc
module Demux = Osiris_xkernel.Demux
module Msg = Osiris_xkernel.Msg
module Sar = Osiris_atm.Sar
module Cpu = Osiris_os.Cpu

type result = { high_mbps : float; low_mbps : float; board_drops : int }

let pdu_size = 16 * 1024

let run ?(overload = true) () =
  let machine = Machine.ds5000_200 in
  let eng = Engine.create () in
  let cfg = Host.default_config in
  let host = Host.create eng machine ~addr:0x0a000002l cfg in
  (* Two application channels with their own buffer pools. *)
  (* Thread priority follows traffic priority (§3.1): the high channel's
     driver thread preempts the low one's. *)
  let high = Adc.open_ host ~name:"high" ~priority:0 ~cpu_priority:5 () in
  let low = Adc.open_ host ~name:"low" ~priority:2 ~cpu_priority:15 () in
  let vci_high = 41 and vci_low = 42 in
  Board.bind_vci host.Host.board ~vci:vci_high (Adc.channel high);
  Board.bind_vci host.Host.board ~vci:vci_low (Adc.channel low);
  let high_bytes = ref 0 and low_bytes = ref 0 in
  Demux.bind (Adc.demux high) ~vci:vci_high ~name:"high" (fun ~vci:_ msg ->
      high_bytes := !high_bytes + Msg.length msg;
      Msg.dispose msg);
  Demux.bind (Adc.demux low) ~vci:vci_low ~name:"low" (fun ~vci:_ msg ->
      low_bytes := !low_bytes + Msg.length msg;
      (* An expensive low-priority application: it cannot keep up. Work in
         scheduler-quantum slices at background priority. *)
      for _ = 1 to 25 do
        Cpu.consume_prio host.Host.cpu ~priority:20 (Time.us 100)
      done;
      Msg.dispose msg);
  (* Offered load: alternating PDUs on both VCIs at link rate (high flow
     alone uses < half capacity). *)
  let pdu = Bytes.init pdu_size (fun i -> Char.chr (i land 0xff)) in
  let pdus =
    if overload then [ (vci_high, pdu); (vci_low, pdu) ]
    else [ (vci_high, pdu) ]
  in
  Board.start_fictitious_source host.Host.board ~pdus ();
  Host.start host;
  Engine.run ~until:(Time.ms 30) eng;
  let h0 = !high_bytes and t0 = Engine.now eng in
  Engine.run ~until:(t0 + Time.ms 40) eng;
  let ns = Engine.now eng - t0 in
  {
    high_mbps = Report.mbps ~bytes_count:(!high_bytes - h0) ~ns;
    low_mbps = Report.mbps ~bytes_count:!low_bytes ~ns:(Engine.now eng);
    board_drops = (Board.stats host.Host.board).Board.pdus_dropped_no_buffer;
  }

let table () =
  let alone = run ~overload:false () in
  let loaded = run ~overload:true () in
  {
    Report.t_title =
      "3.1 ablation: priority traffic under receiver overload (per-channel \
       buffer pools)";
    header = [ "scenario"; "high-prio Mbps"; "low-prio Mbps"; "board drops" ];
    rows =
      [
        [
          "high flow alone";
          Printf.sprintf "%.0f" alone.high_mbps;
          "-";
          string_of_int alone.board_drops;
        ];
        [
          "high + overloading low flow";
          Printf.sprintf "%.0f" loaded.high_mbps;
          Printf.sprintf "%.0f" loaded.low_mbps;
          string_of_int loaded.board_drops;
        ];
      ];
    t_paper_note =
      "the adaptor drops the lower-priority flow's PDUs on the board — \
       before they consume any host processing — so the high-priority \
       flow's throughput survives the overload";
  }
