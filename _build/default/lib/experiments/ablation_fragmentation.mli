(** §2.2 ablation: physical buffer fragmentation.

    A 16 KB application message, sent over UDP/IP, decomposes into a number
    of physical buffers that depends on three policies:

    - the IP MTU: a naive 4 KB MTU misaligns every fragment's data with
      page boundaries, so each fragment's data spans two pages and its
      header a third — "up to 14 physical buffers" for the message;
    - the §2.2 fix: an MTU of [k × page_size + header_size], which makes
      fragment boundaries coincide with page boundaries;
    - best-effort physically contiguous allocation of the message buffer,
      which collapses the data pages into one physical buffer.

    The experiment builds the message each way and counts the descriptors
    the driver would hand to the adaptor, plus the DMA boundary splits the
    transfer would incur. *)

type result = {
  label : string;
  fragments : int;  (** IP fragments *)
  physical_buffers : int;  (** descriptors across all fragments *)
  boundary_splits : int;  (** extra DMA transactions at buffer/page edges *)
  sg_map_loads : int;
      (** map-slot loads a virtual-DMA machine's driver would perform —
          §2.2's closing point: fragmentation costs survive even with a
          hardware scatter/gather map *)
}

val run :
  ?msg_size:int ->
  ?page_offset:int ->
  mtu:int ->
  aligned:bool ->
  contiguous:bool ->
  unit ->
  result

val table : unit -> Report.table
