(** §2.1.1 ablation: lock-free descriptor queues vs a spin lock.

    The dual-port memory offers a test-and-set register per board half; the
    obvious design serializes every queue access under that lock, costing
    extra dual-port accesses and blocking whichever processor arrives
    second. The lock-free single-reader/single-writer discipline avoids
    both. This ablation runs the same workloads under both disciplines and
    reports round-trip latency, receive-side throughput, and the dual-port
    word traffic per PDU. *)

val table : unit -> Report.table
