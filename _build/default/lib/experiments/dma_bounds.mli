(** §2.5.1's closed-form DMA throughput bounds.

    The paper derives, from TURBOchannel transaction overheads (13 cycles
    per read, 8 per write, one 32-bit word per cycle at 25 MHz), the
    sustainable data rates for 44- and 88-byte DMA bursts:
    367 / 463 / 503 / 587 Mb/s. This experiment recomputes them from the
    bus model — they must match exactly — and also measures them
    dynamically by running back-to-back transactions through the simulated
    bus. *)

val table : unit -> Report.table
