(** §3.1 ablation: cached vs uncached fbufs.

    The fbuf mechanism moves network buffers across protection-domain
    boundaries. A {e cached} fbuf — one from a pool already mapped into
    every domain of its path, selected because the adaptor demultiplexed
    the VCI early — transfers for the cost of a pointer hand-off; an
    {e uncached} fbuf must be remapped page by page into each receiving
    domain. The paper reports an order of magnitude difference. The
    experiment transfers 16 KB buffers across 1-3 domain boundaries both
    ways and also exercises the 16-path LRU cache. *)

val table : unit -> Report.table
