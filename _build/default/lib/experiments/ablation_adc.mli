(** §3.2 / §4 ablation: application device channels.

    The paper's headline OS result: user-to-user latency over an ADC is
    within the error margins of kernel-to-kernel latency, because the
    data and control path to the adaptor crosses no protection boundary.
    Three configurations are compared:

    - kernel-to-kernel: test programs linked into the kernel (Table 1's
      setup);
    - user-to-user via ADC: each application owns a queue-page pair and
      runs its own channel driver;
    - user-to-user via the kernel driver: every send pays the kernel
      crossing, and every receive an extra (uncached-fbuf-style) domain
      transfer — the traditional path ADCs remove.

    The protection test queues a descriptor naming unauthorized pages and
    checks the board raises a violation instead of transmitting. *)

val rtt_kernel : msg_size:int -> float
val rtt_adc : msg_size:int -> float
val rtt_user_via_kernel : msg_size:int -> float

val protection_violation_caught : unit -> bool

val table : unit -> Report.table
