(** §2.3 ablation: lazy cache invalidation mechanics.

    On the DECstation, DMA does not update the cache, so a CPU that has
    cached an earlier tenant of a receive buffer can read stale bytes after
    the buffer is reused. The lazy discipline skips the per-buffer
    invalidation and relies on the end-to-end (UDP) checksum: on a
    verification failure, invalidate the message's lines and re-verify;
    success on the second try means the data was fine in memory and only
    the cache was stale.

    This experiment makes staleness {e actually happen}: a small buffer
    pool (so buffers recycle while still cached) and an application that
    reads every received byte through the cache. It counts real stale
    reads, recoveries, and end-to-end integrity, and compares goodput
    against eager invalidation. *)

type result = {
  label : string;
  goodput_mbps : float;
  stale_overlaps : int;  (** DMA writes that hit resident lines *)
  stale_reads : int;  (** CPU reads that actually returned stale bytes *)
  stale_recoveries : int;  (** checksum failures cured by invalidate+retry *)
  checksum_failures : int;  (** datagrams lost as really corrupt *)
  delivered : int;
}

val run : invalidation:Osiris_core.Driver.invalidation -> unit -> result

val table : unit -> Report.table
