(** §2.6 ablation: striping skew and its consequences.

    Cells striped over four links arrive in order per link but skewed
    across links. The experiment sweeps the inter-link skew and reports,
    for each reassembly strategy:

    - whether transfers still complete correctly (per-link and
      sequence-number reassembly tolerate skew; in-order reassembly
      corrupts PDUs, which the AAL5-style CRC then catches);
    - the receive-side double-cell combining rate — skew destroys the
      probability that two successively received cells are contiguous in
      memory, which is the §2.6 "serious disadvantage";
    - end-to-end goodput.  *)

type result = {
  strategy : string;
  skew_us : int;
  delivered : int;
  crc_drops : int;
  reassembly_errors : int;
  combined_fraction : float;  (** combined DMAs / DMA-eligible cell pairs *)
  goodput_mbps : float;
}

val run :
  strategy:Osiris_atm.Sar.strategy -> skew_us:int -> ?pdus:int -> unit -> result

val table : unit -> Report.table
