(** §2.7 ablation: DMA versus programmed I/O.

    The right comparison, the paper argues, is how fast an {e application}
    can access received data. Four access paths are modelled per machine:

    - raw DMA into memory (data not touched) — the adaptor-side bound;
    - DMA followed by CPU reads through the cache (cold on the DECstation,
      already cache-resident on the Alpha, whose crossbar also lets the
      reads proceed concurrently with DMA);
    - PIO: the CPU reads adaptor memory word by word over the
      TURBOchannel and writes it to the application buffer (data lands in
      the cache);
    - the subsequent cached re-read after PIO.

    On these machines DMA wins because word reads across the TURBOchannel
    are so expensive; the paper stresses the answer is machine-dependent. *)

val table : unit -> Report.table
