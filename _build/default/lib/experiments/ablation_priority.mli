(** §3.1 ablation: prioritized traffic under receiver overload.

    Early demultiplexing lets the adaptor charge each incoming PDU to its
    connection's own buffer pool before the host spends anything on it.
    Under overload, a low-priority channel's free buffers run out and the
    {e board} drops its PDUs, while the high-priority channel — whose
    buffers are replenished promptly because its receive thread keeps
    running — keeps its throughput.

    The experiment offers two flows (one per channel) at an aggregate rate
    beyond host capacity, with the low-priority flow's consumer burning
    extra CPU per message (an expensive application), and compares the
    high-priority flow's goodput with and without the competing
    overload. *)

type result = {
  high_mbps : float;
  low_mbps : float;
  board_drops : int;  (** PDUs the board dropped for lack of buffers *)
}

val run : ?overload:bool -> unit -> result

val table : unit -> Report.table
