(** §4's closing prediction, tested.

    The paper could not measure host-to-host throughput with double-cell
    DMA on the transmit side (the hardware change was "underway, but was
    not completed at the time of this writing") and predicted that it
    would "fall between the graphs for single cell DMA and that for double
    cell DMA on the receive side".

    The simulation has no such constraint: this experiment runs real
    host-to-host transfers over the striped link between two DEC 3000/600s
    with single- and double-cell DMA (applied to both directions of each
    board, as the hardware change would have), and checks the prediction
    against the receive-side-in-isolation curves of Figure 3. *)

type result = {
  label : string;
  mbps : float;
}

val throughput :
  ?machine:Osiris_core.Machine.t ->
  dma:Osiris_board.Board.dma_mode ->
  ?msg_size:int ->
  ?window_ms:int ->
  unit ->
  float
(** Goodput of a saturating one-way UDP transfer between two hosts. *)

val table : unit -> Report.table
