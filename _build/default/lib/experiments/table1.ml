open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Demux = Osiris_xkernel.Demux
module Msg = Osiris_xkernel.Msg
module Udp = Osiris_proto.Udp

type proto = Raw_atm | Udp_ip

let raw_vci = 9

(* One ping-pong experiment: returns mean RTT in microseconds. *)
let rtt_with_locking ~locking ~machine ~proto ~msg_size ?(rounds = 16) () =
  let eng = Engine.create () in
  let cfg =
    {
      Host.default_config with
      board = { Board.default_config with Board.locking };
    }
  in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b = Host.create eng machine ~addr:0x0a000002l { cfg with seed = 43 } in
  let net = Network.connect eng a b in
  ignore net;
  let pong = Mailbox.create eng () in
  (* Wire up the echo service on B and the pong notifier on A. *)
  (match proto with
  | Raw_atm ->
      Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
      Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
      Demux.bind b.Host.demux ~vci:raw_vci ~name:"echo" (fun ~vci msg ->
          let len = Msg.length msg in
          Msg.dispose msg;
          let reply = Msg.alloc b.Host.vs ~len () in
          Driver.send b.Host.driver ~vci reply);
      Demux.bind a.Host.demux ~vci:raw_vci ~name:"pong" (fun ~vci:_ msg ->
          Msg.dispose msg;
          ignore (Mailbox.try_send pong ()))
  | Udp_ip ->
      Udp.bind b.Host.udp ~port:7 (fun ~src ~src_port msg ->
          let len = Msg.length msg in
          Msg.dispose msg;
          let reply = Msg.alloc b.Host.vs ~len () in
          Udp.output b.Host.udp ~dst:src ~src_port:7 ~dst_port:src_port reply);
      Udp.bind a.Host.udp ~port:9 (fun ~src:_ ~src_port:_ msg ->
          Msg.dispose msg;
          ignore (Mailbox.try_send pong ())));
  let send_ping () =
    let msg = Msg.alloc a.Host.vs ~len:msg_size () in
    match proto with
    | Raw_atm -> Driver.send a.Host.driver ~vci:raw_vci msg
    | Udp_ip ->
        Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7 msg
  in
  let warmup = 4 in
  let samples = Osiris_util.Stats.create () in
  Process.spawn eng ~name:"pinger" (fun () ->
      for i = 1 to warmup + rounds do
        let t0 = Engine.now eng in
        send_ping ();
        let () = Mailbox.recv pong in
        let dt = Engine.now eng - t0 in
        if i > warmup then
          Osiris_util.Stats.add samples (Time.to_float_us dt)
      done;
      Engine.stop eng);
  Engine.run ~until:(Time.s 30) eng;
  if Osiris_util.Stats.count samples < rounds then
    failwith "Table1.rtt: ping-pong did not complete";
  Osiris_util.Stats.mean samples

let rtt ~machine ~proto ~msg_size ?rounds () =
  rtt_with_locking ~locking:Osiris_board.Desc_queue.Lock_free ~machine ~proto
    ~msg_size ?rounds ()

let sizes = [ 1; 1024; 2048; 4096 ]

let paper_values =
  [
    (("DEC 5000/200", Raw_atm, 1), 353.);
    (("DEC 5000/200", Raw_atm, 1024), 417.);
    (("DEC 5000/200", Raw_atm, 2048), 486.);
    (("DEC 5000/200", Raw_atm, 4096), 778.);
    (("DEC 5000/200", Udp_ip, 1), 598.);
    (("DEC 5000/200", Udp_ip, 1024), 659.);
    (("DEC 5000/200", Udp_ip, 2048), 725.);
    (("DEC 5000/200", Udp_ip, 4096), 1011.);
    (("DEC 3000/600", Raw_atm, 1), 154.);
    (("DEC 3000/600", Raw_atm, 1024), 215.);
    (("DEC 3000/600", Raw_atm, 2048), 283.);
    (("DEC 3000/600", Raw_atm, 4096), 449.);
    (("DEC 3000/600", Udp_ip, 1), 316.);
    (("DEC 3000/600", Udp_ip, 1024), 376.);
    (("DEC 3000/600", Udp_ip, 2048), 446.);
    (("DEC 3000/600", Udp_ip, 4096), 619.);
  ]

let table ?rounds () =
  let rows =
    List.concat_map
      (fun machine ->
        List.map
          (fun proto ->
            let label =
              match proto with Raw_atm -> "ATM" | Udp_ip -> "UDP/IP"
            in
            let cells =
              List.map
                (fun msg_size ->
                  let v = rtt ~machine ~proto ~msg_size ?rounds () in
                  let p =
                    List.assoc (machine.Machine.name, proto, msg_size)
                      paper_values
                  in
                  Printf.sprintf "%.0f (paper %.0f)" v p)
                sizes
            in
            machine.Machine.name :: label :: cells)
          [ Raw_atm; Udp_ip ])
      [ Machine.ds5000_200; Machine.dec3000_600 ]
  in
  {
    Report.t_title = "Table 1: Round-Trip Latencies (us)";
    header = [ "Machine"; "Protocol"; "1B"; "1024B"; "2048B"; "4096B" ];
    rows;
    t_paper_note =
      "measured vs paper; shapes to preserve: UDP/IP ~ ATM + const, Alpha \
       ~2.3x faster, growth with size ~ linear";
  }
