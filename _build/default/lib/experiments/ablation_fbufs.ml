open Osiris_sim
module Machine = Osiris_core.Machine
module Fbufs = Osiris_fbufs.Fbufs
module Cpu = Osiris_os.Cpu
module Vspace = Osiris_mem.Vspace
module Phys_mem = Osiris_mem.Phys_mem

let with_alloc f =
  let machine = Machine.ds5000_200 in
  let eng = Engine.create () in
  let mem =
    Phys_mem.create ~size:(32 * 1024 * 1024)
      ~page_size:machine.Machine.page_size ()
  in
  let vs = Vspace.create mem in
  let cpu = Cpu.create eng ~hz:machine.Machine.cpu_hz in
  let fb =
    Fbufs.create cpu vs Fbufs.default_costs ~max_cached_paths:16
      ~bufs_per_path:4 ~buf_size:(16 * 1024)
  in
  let result = ref None in
  Process.spawn eng ~name:"fbufs" (fun () -> result := Some (f eng cpu fb));
  Engine.run eng;
  Option.get !result

(* Mean per-transfer time once the path cache is warm. *)
let transfer_time ~cached ~domains =
  with_alloc (fun _eng _cpu fb ->
      (* Warm the cached pool for path 1. *)
      let warm = Fbufs.get fb ~path:1 in
      Fbufs.release fb warm;
      let stats = Osiris_util.Stats.create () in
      for _ = 1 to 16 do
        let f =
          if cached then Fbufs.get fb ~path:1
          else begin
            (* Exhaust the pool so get falls back to uncached. *)
            let hoard = List.init 4 (fun _ -> Fbufs.get fb ~path:1) in
            let u = Fbufs.get fb ~path:1 in
            List.iter (Fbufs.release fb) hoard;
            u
          end
        in
        let dt = Fbufs.transfer fb f ~domains in
        Osiris_util.Stats.add stats (Time.to_float_us dt);
        Fbufs.release fb f
      done;
      Osiris_util.Stats.mean stats)

let lru_evictions () =
  with_alloc (fun _eng _cpu fb ->
      (* Touch 20 distinct paths: 4 past capacity forces 4 evictions. *)
      for path = 1 to 20 do
        let f = Fbufs.get fb ~path in
        Fbufs.release fb f
      done;
      (Fbufs.stats fb).Fbufs.evictions)

let table () =
  let rows =
    List.map
      (fun domains ->
        let c = transfer_time ~cached:true ~domains in
        let u = transfer_time ~cached:false ~domains in
        [
          string_of_int domains;
          Printf.sprintf "%.0f" c;
          Printf.sprintf "%.0f" u;
          Printf.sprintf "%.1fx" (u /. c);
        ])
      [ 1; 2; 3 ]
  in
  let rows =
    rows
    @ [
        [ "LRU (20 paths, cache 16)"; "-"; "-";
          Printf.sprintf "%d evictions" (lru_evictions ()) ];
      ]
  in
  {
    Report.t_title =
      "3.1 ablation: fbuf cross-domain transfer, 16KB buffer (us)";
    header = [ "domain crossings"; "cached"; "uncached"; "ratio" ];
    rows;
    t_paper_note =
      "a cached fbuf (preallocated for one of the 16 hottest paths) \
       transfers an order of magnitude faster than an uncached one";
  }
