(** §4 baseline: OSIRIS vs the machines' Ethernet adaptors.

    Table 1's sanity anchor: "The measured latency numbers for 1 byte
    messages are comparable to — and in fact, a bit better than — those
    obtained when using the machines' Ethernet adaptors under otherwise
    identical conditions. This is a reassuring result, since it
    demonstrates that the greater complexity of the OSIRIS adaptor did not
    degrade the latency of short messages."

    The experiment ping-pongs messages over a simulated 10 Mb/s
    LANCE-style Ethernet (per-frame interrupts, receive copies) and over
    the raw OSIRIS path on the same machine model, and reports both — plus
    bulk throughput, where two orders of magnitude separate the
    technologies. *)

val rtt_ethernet :
  machine:Osiris_core.Machine.t -> msg_size:int -> ?rounds:int -> unit -> float
(** Mean Ethernet round-trip time in microseconds. *)

val throughput_ethernet :
  machine:Osiris_core.Machine.t -> msg_size:int -> ?window_ms:int -> unit -> float
(** One-way Ethernet goodput in Mb/s. *)

val table : unit -> Report.table
