(** Registry of every reproduced paper result and ablation, keyed by the
    identifiers the CLI and the bench harness use. *)

type kind =
  | Table of (unit -> Report.table)
  | Figure of (unit -> Report.figure)

type entry = { id : string; description : string; kind : kind }

val all : entry list
(** Every experiment, in paper order. *)

val quick : entry list
(** The subset cheap enough for a default bench run (everything except the
    full-size figure sweeps). *)

val find : string -> entry option

val run : entry -> unit
(** Execute and print. *)

val ids : unit -> string list
