open Osiris_sim
module Host = Osiris_core.Host
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Cache = Osiris_cache.Data_cache
module Ctx = Osiris_proto.Ctx
module Ip = Osiris_proto.Ip
module Udp = Osiris_proto.Udp
module Msg = Osiris_xkernel.Msg

type result = {
  label : string;
  goodput_mbps : float;
  stale_overlaps : int;
  stale_reads : int;
  stale_recoveries : int;
  checksum_failures : int;
  delivered : int;
}

let msg_size = 8 * 1024

let run ~invalidation () =
  (* A small pool keeps recycled buffers hot in the 64 KB cache, which is
     what makes stale data possible at all. *)
  (* Five 16 KB buffers against a 64 KB cache: buffers alias partially, so
     reuses leave a mix of stale and fresh lines — the case the end-to-end
     checksum must catch. *)
  let machine = { Machine.ds5000_200 with Machine.rx_pool_buffers = 3 } in
  let eng = Engine.create () in
  let cfg = { Host.default_config with udp_checksum = true; invalidation } in
  let host = Host.create eng machine ~addr:0x0a000002l cfg in
  (* Each datagram carries different bytes — otherwise stale cache lines
     would be indistinguishable from fresh ones. *)
  let fragments =
    List.concat_map
      (fun id ->
        let payload =
          Bytes.init msg_size (fun i -> Char.chr ((i + (id * 37)) land 0xff))
        in
        let datagram =
          Udp.datagram_image ~src_port:9 ~dst_port:7 ~checksum:true payload
        in
        Ip.fragment_images ~id cfg.Host.ip
          ~page_size:machine.Machine.page_size ~src:0x0a000001l
          ~dst:0x0a000002l ~proto:Udp.protocol_number datagram)
      (* coprime with the pool size, so each reuse of a buffer carries
         different bytes *)
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  (* Offer below capacity: the point is staleness, not overload. *)
  Board.start_fictitious_source host.Host.board
    ~pdus:(List.map (fun f -> (Host.ip_vci host, f)) fragments)
    ~rate_mbps:40.0 ();
  Host.start host;
  let bytes = ref 0 and delivered = ref 0 in
  (* "Other data relating to protocol processing, application processing
     and other activities unrelated to the reception of data" (§2.3): the
     application touches a working set of its own between messages, which
     evicts part — but not all — of each buffer's cached lines, leaving a
     mix of stale and fresh data on reuse. *)
  let scratch = Msg.alloc host.Host.vs ~len:(40 * 1024) () in
  Udp.bind host.Host.udp ~port:7 (fun ~src:_ ~src_port:_ msg ->
      (* The application reads every byte through the cache, making the
         buffer's lines resident — the precondition for staleness when the
         buffer is reused. *)
      let data = Ctx.read_through_cache host.Host.ctx msg ~off:0
          ~len:(Msg.length msg) in
      ignore data;
      ignore
        (Ctx.read_through_cache host.Host.ctx scratch ~off:0
           ~len:(40 * 1024));
      bytes := !bytes + Msg.length msg;
      incr delivered;
      Msg.dispose msg);
  Engine.run ~until:(Time.ms 80) eng;
  let cstats = Cache.stats host.Host.cache in
  let ustats = Udp.stats host.Host.udp in
  let istats = Ip.stats host.Host.ip in
  {
    label =
      (match invalidation with
      | Driver.Lazy -> "lazy"
      | Driver.Eager -> "eager (per buffer)"
      | Driver.Eager_full -> "full cache swap");
    goodput_mbps = Report.mbps ~bytes_count:!bytes ~ns:(Engine.now eng);
    stale_overlaps = cstats.Cache.stale_overlaps;
    stale_reads = cstats.Cache.stale_reads;
    stale_recoveries =
      ustats.Udp.stale_recoveries + istats.Ip.header_checksum_errors;
    checksum_failures = ustats.Udp.checksum_errors;
    delivered = !delivered;
  }

let table () =
  let rows =
    List.map
      (fun invalidation ->
        let r = run ~invalidation () in
        [
          r.label;
          Printf.sprintf "%.0f" r.goodput_mbps;
          string_of_int r.stale_overlaps;
          string_of_int r.stale_reads;
          string_of_int r.stale_recoveries;
          string_of_int r.checksum_failures;
          string_of_int r.delivered;
        ])
      [ Osiris_core.Driver.Lazy; Osiris_core.Driver.Eager;
        Osiris_core.Driver.Eager_full ]
  in
  {
    Report.t_title =
      "2.3 ablation: lazy vs eager cache invalidation with a hot, small \
       buffer pool (8KB datagrams, UDP-CS on)";
    header =
      [ "policy"; "Mbps"; "stale overlaps"; "stale reads"; "recoveries";
        "lost"; "delivered" ];
    rows;
    t_paper_note =
      "lazy invalidation lets stale cache data occur and catches every \
       instance with the end-to-end checksum (invalidate + re-verify; zero \
       corruption delivered). This scenario is deliberately adversarial — \
       a hot pool plus a cache-hungry app — so recoveries are frequent and \
       lazy pays for double verification; in the paper's workloads no \
       stale data was ever observed, making lazy effectively free while \
       eager pays a cycle per word on every buffer (figure 2's 340 vs 250 \
       Mbps)";
  }
