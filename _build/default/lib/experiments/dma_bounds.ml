open Osiris_sim
module Tc = Osiris_bus.Turbochannel

(* Measure by actually running [n] back-to-back transactions. *)
let measured ~dir ~burst =
  let eng = Engine.create () in
  let bus = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let n = 10_000 in
  Process.spawn eng ~name:"dma" (fun () ->
      for _ = 1 to n do
        match dir with
        | `Read -> Tc.dma_read bus ~bytes:burst
        | `Write -> Tc.dma_write bus ~bytes:burst
      done);
  Engine.run eng;
  Report.mbps ~bytes_count:(n * burst) ~ns:(Engine.now eng)

let paper =
  [ ((`Read, 44), 367.); ((`Write, 44), 463.); ((`Read, 88), 503.);
    ((`Write, 88), 587.) ]

let table () =
  let eng = Engine.create () in
  let bus = Tc.create eng (Tc.turbochannel_config Tc.Shared_bus) in
  let rows =
    List.concat_map
      (fun burst ->
        List.map
          (fun dir ->
            let dir_label, paper_label =
              match dir with
              | `Read -> ("transmit (DMA read)", List.assoc_opt (`Read, burst) paper)
              | `Write -> ("receive (DMA write)", List.assoc_opt (`Write, burst) paper)
            in
            [
              Printf.sprintf "%dB (%d cells)" burst (burst / 44);
              dir_label;
              Printf.sprintf "%.1f" (Tc.max_dma_mbps bus ~dir ~burst);
              Printf.sprintf "%.1f" (measured ~dir ~burst);
              (match paper_label with
              | Some p -> Printf.sprintf "%.0f" p
              | None -> "-");
            ])
          [ `Read; `Write ])
      [ 44; 88; 132; 176 ]
  in
  {
    Report.t_title =
      "2.5.1: TURBOchannel DMA throughput bounds by transfer length";
    header = [ "burst"; "direction"; "closed-form"; "simulated"; "paper" ];
    rows;
    t_paper_note =
      "367/463 Mbps at one-cell bursts, 503/587 at two cells; returns \
       diminish beyond double-cell DMA";
  }
