open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Sar = Osiris_atm.Sar
module Atm_link = Osiris_link.Atm_link
module Demux = Osiris_xkernel.Demux
module Msg = Osiris_xkernel.Msg

type result = {
  strategy : string;
  skew_us : int;
  delivered : int;
  crc_drops : int;
  reassembly_errors : int;
  combined_fraction : float;
  goodput_mbps : float;
}

let raw_vci = 9

let run ~strategy ~skew_us ?(pdus = 64) () =
  let eng = Engine.create () in
  let machine = Machine.dec3000_600 in
  let cfg =
    {
      Host.default_config with
      board =
        {
          Board.default_config with
          Board.reassembly = strategy;
          dma_mode = Board.Double_cell;
          (* a fast sender (the completed double-cell transmit hardware)
             so the receive FIFO sees back-to-back cells and combining can
             engage at all *)
          tx_combine_saving_cycles = 18;
        };
    }
  in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b = Host.create eng machine ~addr:0x0a000002l { cfg with seed = 43 } in
  let link =
    {
      Atm_link.default_config with
      Atm_link.skew =
        [| 0; Time.us skew_us; 2 * Time.us skew_us; 3 * Time.us skew_us |];
    }
  in
  ignore (Network.connect eng ~link a b);
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let delivered = ref 0 and bytes = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      incr delivered;
      bytes := !bytes + Msg.length msg;
      Msg.dispose msg);
  let pdu_size = 16 * 1024 in
  Process.spawn eng ~name:"source" (fun () ->
      for _ = 1 to pdus do
        Driver.send a.Host.driver ~vci:raw_vci
          (Msg.alloc a.Host.vs ~len:pdu_size ());
        (* Pace below the receiver's skew-degraded drain rate: the point
           under test is reassembly correctness and the combining rate,
           not receiver overrun (§2.6's throughput cost shows up in the
           combining column). *)
        Process.sleep eng (Time.us 400)
      done);
  let t0 = Engine.now eng in
  Engine.run ~until:(Time.s 2) eng;
  let elapsed =
    (* goodput over the active phase only: find the drain point roughly by
       cells; use total run time as a conservative bound when idle. *)
    Engine.now eng - t0
  in
  let bstats = Board.stats b.Host.board in
  let dstats = Driver.stats b.Host.driver in
  let eligible = bstats.Board.cells_received / 2 in
  {
    strategy = Format.asprintf "%a" Sar.pp_strategy strategy;
    skew_us;
    delivered = !delivered;
    crc_drops = dstats.Driver.crc_drops;
    reassembly_errors = bstats.Board.reassembly_errors;
    combined_fraction =
      (if eligible = 0 then 0.0
       else float_of_int bstats.Board.combined_dmas /. float_of_int eligible);
    goodput_mbps = Report.mbps ~bytes_count:!bytes ~ns:elapsed;
  }

let table () =
  let strategies =
    [ Sar.Per_link 4; Sar.Seq_number; Sar.In_order ]
  in
  let rows =
    List.concat_map
      (fun strategy ->
        List.map
          (fun skew_us ->
            let r = run ~strategy ~skew_us () in
            [
              r.strategy;
              string_of_int r.skew_us;
              string_of_int r.delivered;
              string_of_int (r.crc_drops + r.reassembly_errors);
              Printf.sprintf "%.0f%%" (100.0 *. r.combined_fraction);
            ])
          [ 0; 3; 10 ])
      strategies
  in
  {
    Report.t_title =
      "2.6 ablation: reassembly strategy vs inter-link skew (64 x 16KB PDUs)";
    header =
      [ "strategy"; "skew (us)"; "delivered"; "errors"; "combined DMAs" ];
    rows;
    t_paper_note =
      "per-link (and seq-number) reassembly tolerates skew; in-order \
       corrupts under skew (CRC catches it); skew kills the double-cell \
       combining probability";
  }
