(** Table 1: round-trip latencies between two back-to-back hosts.

    "ATM" rows run test programs directly on the OSIRIS device driver
    (raw framed PDUs on a dedicated VCI); "UDP/IP" rows run the same
    ping-pong over the UDP/IP stack with a 16 KB MTU and checksumming off.
    Message sizes 1, 1024, 2048 and 4096 bytes on both machine
    generations. *)

type proto = Raw_atm | Udp_ip

val rtt :
  machine:Osiris_core.Machine.t ->
  proto:proto ->
  msg_size:int ->
  ?rounds:int ->
  unit ->
  float
(** Mean round-trip time in microseconds over [rounds] (default 16)
    ping-pongs, after 4 warm-up rounds. *)

val rtt_with_locking :
  locking:Osiris_board.Desc_queue.locking ->
  machine:Osiris_core.Machine.t ->
  proto:proto ->
  msg_size:int ->
  ?rounds:int ->
  unit ->
  float
(** {!rtt} with the queue-locking discipline overridden (for the §2.1.1
    ablation). *)

val table : ?rounds:int -> unit -> Report.table
(** The full Table 1. *)

val paper_values : ((string * proto * int) * float) list
(** The paper's measured values, keyed by (machine name, protocol, size),
    for EXPERIMENTS.md comparisons. *)
