open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Adc = Osiris_adc.Adc
module Demux = Osiris_xkernel.Demux
module Msg = Osiris_xkernel.Msg

type result = { small_rtt_us : float; bulk_mbps : float }

let run ~mux ?(bulk_pdu = 64 * 1024) () =
  let machine = Machine.ds5000_200 in
  let eng = Engine.create () in
  let cfg =
    {
      Host.default_config with
      board = { Board.default_config with Board.tx_mux = mux };
    }
  in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b = Host.create eng machine ~addr:0x0a000002l { cfg with seed = 43 } in
  ignore (Network.connect eng a b);
  (* The latency application gets its own channel (same transmit priority
     as the kernel's bulk traffic: the contrast under test is granularity,
     not priority). *)
  let app_a = Adc.open_ a ~name:"latency" ~priority:0 () in
  let app_b = Adc.open_ b ~name:"latency" ~priority:0 () in
  Board.set_priority (Adc.channel app_a) 0;
  let vci_small = 50 and vci_bulk = 51 in
  Board.bind_vci a.Host.board ~vci:vci_small (Adc.channel app_a);
  Board.bind_vci b.Host.board ~vci:vci_small (Adc.channel app_b);
  Board.bind_vci b.Host.board ~vci:vci_bulk (Board.kernel_channel b.Host.board);
  (* Make the kernel (bulk) channel equal priority. *)
  Board.set_priority (Board.kernel_channel a.Host.board) 0;
  let pong = Mailbox.create eng () in
  Demux.bind (Adc.demux app_b) ~vci:vci_small ~name:"echo" (fun ~vci msg ->
      let len = Msg.length msg in
      Msg.dispose msg;
      Adc.send app_b ~vci (Msg.alloc (Adc.vspace app_b) ~len ()));
  Demux.bind (Adc.demux app_a) ~vci:vci_small ~name:"pong" (fun ~vci:_ msg ->
      Msg.dispose msg;
      ignore (Mailbox.try_send pong ()));
  let bulk_bytes = ref 0 in
  Demux.bind b.Host.demux ~vci:vci_bulk ~name:"bulk" (fun ~vci:_ msg ->
      bulk_bytes := !bulk_bytes + Msg.length msg;
      Msg.dispose msg);
  (* Bulk source: keep the transmit queue busy with large PDUs. *)
  Process.spawn eng ~name:"bulk" (fun () ->
      let rec loop () =
        Driver.send a.Host.driver ~vci:vci_bulk
          (Msg.alloc a.Host.vs ~len:bulk_pdu ());
        loop ()
      in
      loop ());
  let samples = Osiris_util.Stats.create () in
  Process.spawn eng ~name:"pinger" (fun () ->
      Process.sleep eng (Time.ms 2) (* let the bulk flow saturate *);
      for i = 1 to 16 do
        let t0 = Engine.now eng in
        Adc.send app_a ~vci:vci_small (Adc.alloc_msg app_a ~len:64 ());
        let () = Mailbox.recv pong in
        if i > 4 then
          Osiris_util.Stats.add samples (Time.to_float_us (Engine.now eng - t0))
      done;
      Engine.stop eng);
  Engine.run ~until:(Time.s 5) eng;
  {
    small_rtt_us = Osiris_util.Stats.mean samples;
    bulk_mbps =
      Report.mbps ~bytes_count:!bulk_bytes ~ns:(Engine.now eng);
  }

let table () =
  let fine = run ~mux:Board.Cell_interleave () in
  let coarse = run ~mux:Board.Pdu_at_once () in
  {
    Report.t_title =
      "2.5.1 ablation: transmit multiplexing granularity (64B ping behind \
       64KB bulk PDUs)";
    header = [ "granularity"; "small-msg RTT (us)"; "bulk Mbps" ];
    rows =
      [
        [ "cell interleave"; Printf.sprintf "%.0f" fine.small_rtt_us;
          Printf.sprintf "%.0f" fine.bulk_mbps ];
        [ "PDU at a time"; Printf.sprintf "%.0f" coarse.small_rtt_us;
          Printf.sprintf "%.0f" coarse.bulk_mbps ];
      ];
    t_paper_note =
      "fine-grained multiplexing keeps small-message latency low while a \
       bulk transfer is in progress; PDU-at-a-time makes the ping wait for \
       up to a whole 64KB segmentation (~1.6ms at 325 Mbps)";
  }
