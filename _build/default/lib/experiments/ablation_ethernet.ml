open Osiris_sim
module Machine = Osiris_core.Machine
module Ether = Osiris_ether.Ether
module Cpu = Osiris_os.Cpu
module Irq = Osiris_os.Irq
module Tc = Osiris_bus.Turbochannel

(* A minimal host for the Ethernet experiments: CPU, bus, interrupt
   controller, one interface. *)
let mk_host eng (machine : Machine.t) =
  let cpu = Cpu.create eng ~hz:machine.Machine.cpu_hz in
  let bus = Tc.create eng machine.Machine.bus in
  let irq = Irq.create eng ~cpu ~dispatch_cost:machine.Machine.interrupt_cost in
  let nic = Ether.create eng ~cpu ~bus ~irq ~irq_line:1 Ether.default_config in
  (cpu, nic)

let pair machine =
  let eng = Engine.create () in
  let _, nic_a = mk_host eng machine in
  let _, nic_b = mk_host eng machine in
  Ether.connect nic_a nic_b;
  (eng, nic_a, nic_b)

let rtt_ethernet ~machine ~msg_size ?(rounds = 12) () =
  let eng, nic_a, nic_b = pair machine in
  Ether.set_receiver nic_b (fun msg ->
      Ether.send nic_b (Bytes.create (Bytes.length msg)));
  let pong = Mailbox.create eng () in
  Ether.set_receiver nic_a (fun _ -> ignore (Mailbox.try_send pong ()));
  let samples = Osiris_util.Stats.create () in
  Process.spawn eng ~name:"pinger" (fun () ->
      for i = 1 to rounds + 4 do
        let t0 = Engine.now eng in
        Ether.send nic_a (Bytes.create msg_size);
        let () = Mailbox.recv pong in
        if i > 4 then
          Osiris_util.Stats.add samples (Time.to_float_us (Engine.now eng - t0))
      done;
      Engine.stop eng);
  Engine.run ~until:(Time.s 30) eng;
  Osiris_util.Stats.mean samples

let throughput_ethernet ~machine ~msg_size ?(window_ms = 200) () =
  let eng, nic_a, nic_b = pair machine in
  let bytes = ref 0 in
  Ether.set_receiver nic_b (fun msg -> bytes := !bytes + Bytes.length msg);
  Process.spawn eng ~name:"src" (fun () ->
      let rec loop () =
        Ether.send nic_a (Bytes.create msg_size);
        loop ()
      in
      loop ());
  Engine.run ~until:(Time.ms window_ms) eng;
  Report.mbps ~bytes_count:!bytes ~ns:(Engine.now eng)

let table () =
  let machine = Machine.ds5000_200 in
  let rows =
    List.map
      (fun msg_size ->
        let e = rtt_ethernet ~machine ~msg_size () in
        let o =
          Table1.rtt ~machine ~proto:Table1.Raw_atm ~msg_size ~rounds:8 ()
        in
        [
          string_of_int msg_size;
          Printf.sprintf "%.0f" e;
          Printf.sprintf "%.0f" o;
          Printf.sprintf "%.1fx" (e /. o);
        ])
      [ 1; 1024; 4096 ]
  in
  let tput =
    [
      "throughput 16KB msgs (Mbps)";
      Printf.sprintf "%.1f"
        (throughput_ethernet ~machine ~msg_size:(16 * 1024) ());
      Printf.sprintf "%.0f"
        (Receive_side.throughput ~machine
           ~variant:
             {
               Receive_side.label = "s";
               dma = Osiris_board.Board.Single_cell;
               invalidation = Osiris_core.Driver.Lazy;
               checksum = false;
             }
           ~msg_size:(16 * 1024) ~window_ms:25 ());
      "-";
    ]
  in
  {
    Report.t_title =
      "4 baseline: Ethernet adaptor vs OSIRIS on the DEC 5000/200";
    header = [ "msg size (B)"; "Ethernet RTT (us)"; "OSIRIS RTT (us)"; "ratio" ];
    rows = rows @ [ tput ];
    t_paper_note =
      "1-byte OSIRIS latency is comparable to (a bit better than) Ethernet \
       despite the adaptor's complexity; at bulk sizes the technologies \
       are orders of magnitude apart";
  }
