open Osiris_sim
module Machine = Osiris_core.Machine
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Wiring = Osiris_os.Wiring
module Demux = Osiris_xkernel.Demux
module Msg = Osiris_xkernel.Msg

let raw_vci = 9

(* Raw-ATM RTT with a given wiring policy. *)
let rtt_with_policy ~policy ~msg_size =
  let machine = Machine.ds5000_200 in
  let eng = Engine.create () in
  let cfg = Host.default_config in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b = Host.create eng machine ~addr:0x0a000002l { cfg with seed = 43 } in
  Wiring.set_policy a.Host.wiring policy;
  Wiring.set_policy b.Host.wiring policy;
  ignore (Network.connect eng a b);
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let pong = Mailbox.create eng () in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"echo" (fun ~vci msg ->
      let len = Msg.length msg in
      Msg.dispose msg;
      Driver.send b.Host.driver ~vci (Msg.alloc b.Host.vs ~len ()));
  Demux.bind a.Host.demux ~vci:raw_vci ~name:"pong" (fun ~vci:_ msg ->
      Msg.dispose msg;
      ignore (Mailbox.try_send pong ()));
  let samples = Osiris_util.Stats.create () in
  Process.spawn eng ~name:"pinger" (fun () ->
      for i = 1 to 12 do
        let t0 = Engine.now eng in
        Driver.send a.Host.driver ~vci:raw_vci
          (Msg.alloc a.Host.vs ~len:msg_size ());
        let () = Mailbox.recv pong in
        if i > 4 then
          Osiris_util.Stats.add samples (Time.to_float_us (Engine.now eng - t0))
      done;
      Engine.stop eng);
  Engine.run ~until:(Time.s 10) eng;
  Osiris_util.Stats.mean samples

let table () =
  let machine = Machine.ds5000_200 in
  let eng = Engine.create () in
  let cpu = Osiris_os.Cpu.create eng ~hz:machine.Machine.cpu_hz in
  let w = Wiring.create cpu machine.Machine.wiring Wiring.Mach_full in
  let cost policy pages =
    Wiring.set_policy w policy;
    Time.to_float_us (Wiring.cost_of w ~pages)
  in
  let rows =
    List.map
      (fun (label, policy) ->
        [
          label;
          Printf.sprintf "%.0f" (cost policy 1);
          Printf.sprintf "%.0f" (cost policy 4);
          Printf.sprintf "%.0f" (rtt_with_policy ~policy ~msg_size:4096);
        ])
      [ ("Mach standard", Wiring.Mach_full); ("low-level pmap", Wiring.Low_level) ]
  in
  {
    Report.t_title = "2.4 ablation: page wiring cost and its latency impact";
    header =
      [ "policy"; "wire 1 page (us)"; "wire 4 pages (us)"; "ATM 4KB RTT (us)" ];
    rows;
    t_paper_note =
      "Mach's standard wiring gives stronger guarantees than DMA needs and \
       costs surprisingly much; low-level pmap wiring restored acceptable \
       performance";
  }
