(** Figures 2 and 3: receive-side UDP/IP throughput in isolation.

    The board's receive processor is programmed to generate fictitious —
    but protocol-valid — PDUs as fast as the host absorbs them (capped at
    the striped OC-12 payload rate of 516 Mb/s). The host runs the full
    driver → IP reassembly → UDP path into a sink that touches no data;
    throughput is the UDP payload rate at the sink.

    Figure 2 (DECstation 5000/200): double-cell DMA vs single-cell DMA vs
    single-cell with eager ("pessimistic") cache invalidation.

    Figure 3 (DEC 3000/600): {single, double}-cell DMA × UDP checksumming
    {off, on}. *)

type variant = {
  label : string;
  dma : Osiris_board.Board.dma_mode;
  invalidation : Osiris_core.Driver.invalidation;
  checksum : bool;
}

val throughput :
  machine:Osiris_core.Machine.t ->
  variant:variant ->
  msg_size:int ->
  ?window_ms:int ->
  unit ->
  float
(** Delivered UDP payload Mb/s, measured over [window_ms] (default 60) of
    simulated time after an equal warm-up. *)

val figure2 : ?window_ms:int -> ?sizes:int list -> unit -> Report.figure
val figure3 : ?window_ms:int -> ?sizes:int list -> unit -> Report.figure
