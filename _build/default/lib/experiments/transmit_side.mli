(** Figure 4: transmit-side UDP/IP throughput.

    The host queues UDP datagrams as fast as the driver accepts them
    (suspending on a full transmit queue, §2.1.2); the outgoing striped
    link feeds a pure sink, so only the sending host is measured. The
    paper's plateau of ~325 Mb/s is set by single-ATM-cell DMA overhead on
    the TURBOchannel, so the board runs single-cell DMA here (the
    longer-transfer hardware change was "underway" at the time). *)

val throughput :
  machine:Osiris_core.Machine.t ->
  checksum:bool ->
  ?dma:Osiris_board.Board.dma_mode ->
  msg_size:int ->
  ?window_ms:int ->
  unit ->
  float
(** Sent UDP payload Mb/s over [window_ms] (default 60) after warm-up. *)

val figure4 : ?window_ms:int -> ?sizes:int list -> unit -> Report.figure
(** The paper's three curves: 3000/600, 3000/600 + UDP-CS, 5000/200. *)
