open Osiris_sim
module Host = Osiris_core.Host
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Ip = Osiris_proto.Ip
module Udp = Osiris_proto.Udp

type variant = {
  label : string;
  dma : Board.dma_mode;
  invalidation : Driver.invalidation;
  checksum : bool;
}

let throughput ~machine ~variant ~msg_size ?(window_ms = 60) () =
  let eng = Engine.create () in
  let cfg =
    {
      Host.default_config with
      board = { Board.default_config with Board.dma_mode = variant.dma };
      udp_checksum = variant.checksum;
      invalidation = variant.invalidation;
    }
  in
  let host = Host.create eng machine ~addr:0x0a000002l cfg in
  (* Protocol-valid fictitious traffic: the IP fragments of one UDP
     datagram from a phantom peer. *)
  let payload = Bytes.init msg_size (fun i -> Char.chr (i land 0xff)) in
  let datagram =
    Udp.datagram_image ~src_port:9 ~dst_port:7 ~checksum:variant.checksum
      payload
  in
  (* Several copies with distinct IP ids, so datagrams lost to board-side
     drops do not alias in reassembly — but few enough that the receiver's
     63 buffers can hold the worst-case set of partial datagrams. *)
  let frags_per_datagram =
    let per = Ip.fragment_data_size cfg.Host.ip
        ~page_size:machine.Machine.page_size in
    (Bytes.length datagram + per - 1) / per
  in
  (* Very large datagrams (tens of buffers in flight) must reuse one id:
     the 63-buffer pool cannot hold two partial copies, and duplicate
     suppression in IP reassembly makes id reuse safe. *)
  let n_ids =
    if frags_per_datagram > 12 then 1
    else max 2 (min 7 (24 / frags_per_datagram))
  in
  let fragments =
    List.concat_map
      (fun id ->
        Ip.fragment_images ~id cfg.Host.ip
          ~page_size:machine.Machine.page_size ~src:0x0a000001l
          ~dst:0x0a000002l ~proto:Udp.protocol_number datagram)
      (List.init n_ids (fun i -> i + 1))
  in
  Board.start_fictitious_source host.Host.board
    ~pdus:(List.map (fun f -> (Host.ip_vci host, f)) fragments)
    ();
  Host.start host;
  let bytes_got = ref 0 in
  Host.new_udp_test_receiver host ~port:7 ~on_msg:(fun ~len ->
      bytes_got := !bytes_got + len);
  (* Warm-up, then measure. *)
  Engine.run ~until:(Time.ms window_ms) eng;
  let base = !bytes_got in
  let t0 = Engine.now eng in
  Engine.run ~until:(t0 + Time.ms window_ms) eng;
  Report.mbps ~bytes_count:(!bytes_got - base) ~ns:(Engine.now eng - t0)

let figure ~machine ~variants ~title ~paper_note ?(window_ms = 60)
    ?(sizes = Report.sizes_1k_to_256k) () =
  let series =
    List.map
      (fun variant ->
        {
          Report.label = variant.label;
          points =
            List.map
              (fun msg_size ->
                (msg_size, throughput ~machine ~variant ~msg_size ~window_ms ()))
              sizes;
        })
      variants
  in
  {
    Report.title;
    xlabel = "msg size";
    ylabel = "Mbps";
    series;
    paper_note;
  }

let figure2 ?window_ms ?sizes () =
  figure ~machine:Machine.ds5000_200
    ~variants:
      [
        { label = "double-cell"; dma = Board.Double_cell;
          invalidation = Driver.Lazy; checksum = false };
        { label = "single-cell"; dma = Board.Single_cell;
          invalidation = Driver.Lazy; checksum = false };
        { label = "single+inval"; dma = Board.Single_cell;
          invalidation = Driver.Eager; checksum = false };
      ]
    ~title:"Figure 2: DEC 5000/200 UDP/IP/OSIRIS receive-side throughput"
    ~paper_note:
      "maxima 379 (double), 340 (single), 250 (single + eager cache \
       invalidation); 80 Mbps when the CPU reads the data (UDP-CS)"
    ?window_ms ?sizes ()

let figure3 ?window_ms ?sizes () =
  figure ~machine:Machine.dec3000_600
    ~variants:
      [
        { label = "double-cell"; dma = Board.Double_cell;
          invalidation = Driver.Lazy; checksum = false };
        { label = "double+CS"; dma = Board.Double_cell;
          invalidation = Driver.Lazy; checksum = true };
        { label = "single-cell"; dma = Board.Single_cell;
          invalidation = Driver.Lazy; checksum = false };
        { label = "single+CS"; dma = Board.Single_cell;
          invalidation = Driver.Lazy; checksum = true };
      ]
    ~title:"Figure 3: DEC 3000/600 UDP/IP/OSIRIS receive-side throughput"
    ~paper_note:
      "double-cell approaches the 516 Mbps link payload at >=16KB; with \
       UDP checksumming ~438 Mbps (~15% cost); single-cell bus-bound at 463"
    ?window_ms ?sizes ()
