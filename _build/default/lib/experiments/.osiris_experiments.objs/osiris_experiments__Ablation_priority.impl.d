lib/experiments/ablation_priority.ml: Bytes Char Engine Osiris_adc Osiris_atm Osiris_board Osiris_core Osiris_os Osiris_sim Osiris_xkernel Printf Report Time
