lib/experiments/host_to_host.ml: Engine Float Osiris_board Osiris_core Osiris_proto Osiris_sim Osiris_xkernel Printf Process Receive_side Report Time
