lib/experiments/receive_side.ml: Bytes Char Engine List Osiris_board Osiris_core Osiris_proto Osiris_sim Report Time
