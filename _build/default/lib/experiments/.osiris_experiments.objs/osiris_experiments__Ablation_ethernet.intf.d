lib/experiments/ablation_ethernet.mli: Osiris_core Report
