lib/experiments/ablation_lockfree.mli: Report
