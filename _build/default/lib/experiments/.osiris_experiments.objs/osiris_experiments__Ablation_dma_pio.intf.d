lib/experiments/ablation_dma_pio.mli: Report
