lib/experiments/ablation_ethernet.ml: Bytes Engine List Mailbox Osiris_board Osiris_bus Osiris_core Osiris_ether Osiris_os Osiris_sim Osiris_util Printf Process Receive_side Report Table1 Time
