lib/experiments/ablation_multiplexing.mli: Osiris_board Report
