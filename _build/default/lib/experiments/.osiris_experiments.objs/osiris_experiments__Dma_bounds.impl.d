lib/experiments/dma_bounds.ml: Engine List Osiris_bus Osiris_sim Printf Process Report
