lib/experiments/ablation_fragmentation.mli: Report
