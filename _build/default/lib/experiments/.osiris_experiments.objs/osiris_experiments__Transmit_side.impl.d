lib/experiments/transmit_side.ml: Engine List Osiris_atm Osiris_board Osiris_core Osiris_link Osiris_proto Osiris_sim Osiris_util Osiris_xkernel Process Report Time
