lib/experiments/ablation_wiring.mli: Report
