lib/experiments/report.ml: List Printf String
