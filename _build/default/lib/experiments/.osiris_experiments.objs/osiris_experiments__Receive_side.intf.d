lib/experiments/receive_side.mli: Osiris_board Osiris_core Report
