lib/experiments/ablation_fbufs.mli: Report
