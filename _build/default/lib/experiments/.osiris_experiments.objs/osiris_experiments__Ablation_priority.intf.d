lib/experiments/ablation_priority.mli: Report
