lib/experiments/ablation_wiring.ml: Engine List Mailbox Osiris_board Osiris_core Osiris_os Osiris_sim Osiris_util Osiris_xkernel Printf Process Report Time
