lib/experiments/ablation_interrupts.ml: Engine List Osiris_board Osiris_core Osiris_os Osiris_sim Osiris_xkernel Printf Process Report Time
