lib/experiments/transmit_side.mli: Osiris_board Osiris_core Report
