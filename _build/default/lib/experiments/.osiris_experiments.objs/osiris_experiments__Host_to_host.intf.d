lib/experiments/host_to_host.mli: Osiris_board Osiris_core Report
