lib/experiments/ablation_fragmentation.ml: Bytes Engine List Osiris_atm Osiris_core Osiris_mem Osiris_proto Osiris_sim Osiris_util Osiris_xkernel Printf Report
