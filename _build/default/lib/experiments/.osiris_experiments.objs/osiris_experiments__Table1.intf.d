lib/experiments/table1.mli: Osiris_board Osiris_core Report
