lib/experiments/ablation_skew.mli: Osiris_atm Report
