lib/experiments/ablation_fbufs.ml: Engine List Option Osiris_core Osiris_fbufs Osiris_mem Osiris_os Osiris_sim Osiris_util Printf Process Report Time
