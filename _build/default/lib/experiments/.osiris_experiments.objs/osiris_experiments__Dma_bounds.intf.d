lib/experiments/dma_bounds.mli: Report
