lib/experiments/ablation_lockfree.ml: Bytes Char Engine List Osiris_board Osiris_core Osiris_proto Osiris_sim Printf Receive_side Report Table1 Time
