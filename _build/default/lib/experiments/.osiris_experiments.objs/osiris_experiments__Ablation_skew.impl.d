lib/experiments/ablation_skew.ml: Engine Format List Osiris_atm Osiris_board Osiris_core Osiris_link Osiris_sim Osiris_xkernel Printf Process Report Time
