lib/experiments/ablation_interrupts.mli: Osiris_core Report
