lib/experiments/ablation_lazy_cache.mli: Osiris_core Report
