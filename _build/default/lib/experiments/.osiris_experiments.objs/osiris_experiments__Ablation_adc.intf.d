lib/experiments/ablation_adc.mli: Report
