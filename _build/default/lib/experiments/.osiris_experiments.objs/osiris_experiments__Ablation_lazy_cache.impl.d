lib/experiments/ablation_lazy_cache.ml: Bytes Char Engine List Osiris_board Osiris_cache Osiris_core Osiris_proto Osiris_sim Osiris_xkernel Printf Report Time
