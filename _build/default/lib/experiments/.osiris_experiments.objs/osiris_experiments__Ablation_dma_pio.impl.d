lib/experiments/ablation_dma_pio.ml: Bytes Engine List Osiris_bus Osiris_cache Osiris_core Osiris_mem Osiris_sim Printf Process Report
