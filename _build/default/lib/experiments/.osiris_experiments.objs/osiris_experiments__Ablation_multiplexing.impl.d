lib/experiments/ablation_multiplexing.ml: Engine Mailbox Osiris_adc Osiris_board Osiris_core Osiris_sim Osiris_util Osiris_xkernel Printf Process Report Time
