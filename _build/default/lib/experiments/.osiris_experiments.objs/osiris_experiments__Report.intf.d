lib/experiments/report.mli:
