lib/experiments/ablation_adc.ml: Engine List Mailbox Osiris_adc Osiris_board Osiris_core Osiris_os Osiris_sim Osiris_util Osiris_xkernel Printf Process Report Time
