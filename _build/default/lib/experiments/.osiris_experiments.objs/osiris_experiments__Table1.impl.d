lib/experiments/table1.ml: Engine List Mailbox Osiris_board Osiris_core Osiris_proto Osiris_sim Osiris_util Osiris_xkernel Printf Process Report Time
