open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Adc = Osiris_adc.Adc
module Demux = Osiris_xkernel.Demux
module Msg = Osiris_xkernel.Msg
module Cpu = Osiris_os.Cpu

let raw_vci = 9

type path_kind = Kernel | Via_adc | User_via_kernel

let machine = Machine.ds5000_200

let rtt_generic ~kind ~msg_size =
  let eng = Engine.create () in
  let cfg = Host.default_config in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b = Host.create eng machine ~addr:0x0a000002l { cfg with seed = 43 } in
  ignore (Network.connect eng a b);
  let pong = Mailbox.create eng () in
  let samples = Osiris_util.Stats.create () in
  (match kind with
  | Via_adc ->
      (* Each side's application opens an ADC; VCIs are routed to the
         application's own queues, the channel drivers run in user space,
         and nothing crosses the kernel on the data path. *)
      let adc_a = Adc.open_ a ~name:"app-a" () in
      let adc_b = Adc.open_ b ~name:"app-b" () in
      let vci = 40 in
      Board.bind_vci a.Host.board ~vci (Adc.channel adc_a);
      Board.bind_vci b.Host.board ~vci (Adc.channel adc_b);
      Demux.bind (Adc.demux adc_a) ~vci ~name:"pong" (fun ~vci:_ msg ->
          Msg.dispose msg;
          ignore (Mailbox.try_send pong ()));
      Demux.bind (Adc.demux adc_b) ~vci ~name:"echo" (fun ~vci:_ msg ->
          let len = Msg.length msg in
          Msg.dispose msg;
          Adc.send adc_b ~vci (Msg.alloc (Adc.vspace adc_b) ~len ()));
      Process.spawn eng ~name:"pinger" (fun () ->
          for i = 1 to 12 do
            let t0 = Engine.now eng in
            Adc.send adc_a ~vci (Adc.alloc_msg adc_a ~len:msg_size ());
            let () = Mailbox.recv pong in
            if i > 4 then
              Osiris_util.Stats.add samples
                (Time.to_float_us (Engine.now eng - t0))
          done;
          Engine.stop eng)
  | Kernel | User_via_kernel ->
      let crossing host =
        match kind with
        | Kernel -> ()
        | _ ->
            (* user-level client of the kernel driver: kernel entry plus a
               cross-domain buffer transfer on delivery *)
            Cpu.consume host.Host.cpu
              machine.Machine.driver_costs.Machine.syscall;
            Cpu.consume host.Host.cpu (Time.us 60)
      in
      Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
      Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
      Demux.bind b.Host.demux ~vci:raw_vci ~name:"echo" (fun ~vci msg ->
          let len = Msg.length msg in
          Msg.dispose msg;
          crossing b;
          Driver.send b.Host.driver ~vci
            ~from_user:(kind = User_via_kernel)
            (Msg.alloc b.Host.vs ~len ()));
      Demux.bind a.Host.demux ~vci:raw_vci ~name:"pong" (fun ~vci:_ msg ->
          Msg.dispose msg;
          crossing a;
          ignore (Mailbox.try_send pong ()));
      Process.spawn eng ~name:"pinger" (fun () ->
          for i = 1 to 12 do
            let t0 = Engine.now eng in
            Driver.send a.Host.driver ~vci:raw_vci
              ~from_user:(kind = User_via_kernel)
              (Msg.alloc a.Host.vs ~len:msg_size ());
            let () = Mailbox.recv pong in
            if i > 4 then
              Osiris_util.Stats.add samples
                (Time.to_float_us (Engine.now eng - t0))
          done;
          Engine.stop eng));
  Engine.run ~until:(Time.s 10) eng;
  if Osiris_util.Stats.count samples = 0 then
    failwith "Ablation_adc: ping-pong did not complete";
  Osiris_util.Stats.mean samples

let rtt_kernel ~msg_size = rtt_generic ~kind:Kernel ~msg_size
let rtt_adc ~msg_size = rtt_generic ~kind:Via_adc ~msg_size
let rtt_user_via_kernel ~msg_size = rtt_generic ~kind:User_via_kernel ~msg_size

let protection_violation_caught () =
  let eng = Engine.create () in
  let cfg = Host.default_config in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b = Host.create eng machine ~addr:0x0a000002l { cfg with seed = 43 } in
  ignore (Network.connect eng a b);
  let adc = Adc.open_ a ~name:"rogue" () in
  let vci = 40 in
  Board.bind_vci a.Host.board ~vci (Adc.channel adc);
  let violated = ref false in
  Host.set_violation_handler a (fun () -> violated := true);
  Process.spawn eng ~name:"rogue" (fun () ->
      Adc.send_unauthorized adc ~vci ~len:4096);
  Engine.run ~until:(Time.ms 50) eng;
  let sent = (Board.stats a.Host.board).Board.pdus_sent in
  !violated && sent = 0

let table () =
  let sizes = [ 1; 4096 ] in
  let row label f =
    label
    :: List.map (fun s -> Printf.sprintf "%.0f" (f ~msg_size:s)) sizes
  in
  {
    Report.t_title =
      "3.2 ablation: ADC vs kernel paths, raw-ATM RTT (us) on the 5000/200";
    header = [ "path"; "1B"; "4096B" ];
    rows =
      [
        row "kernel-to-kernel" rtt_kernel;
        row "user-to-user (ADC)" rtt_adc;
        row "user via kernel driver" rtt_user_via_kernel;
        [
          "protection check";
          (if protection_violation_caught () then "violation trapped"
           else "FAILED");
          "-";
        ];
      ];
    t_paper_note =
      "ADC user-to-user latency is within error margins of \
       kernel-to-kernel; the traditional user-level path pays kernel \
       crossings and domain transfers on every message";
  }
