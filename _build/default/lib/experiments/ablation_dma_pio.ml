open Osiris_sim
module Machine = Osiris_core.Machine
module Tc = Osiris_bus.Turbochannel
module Cache = Osiris_cache.Data_cache
module Phys_mem = Osiris_mem.Phys_mem

let block = 16 * 1024

(* Run [f] in a process and return the simulated ns it took. *)
let timed f =
  let eng = Engine.create () in
  let machine, body = f eng in
  ignore machine;
  let finished = ref 0 in
  Process.spawn eng ~name:"probe" (fun () ->
      body ();
      finished := Engine.now eng);
  Engine.run eng;
  !finished

let rate_mbps ns = Report.mbps ~bytes_count:block ~ns

(* DMA of one block into memory (single-cell transactions). *)
let dma_in machine =
  timed (fun eng ->
      let bus = Tc.create eng machine.Machine.bus in
      ( machine,
        fun () ->
          let remaining = ref block in
          while !remaining > 0 do
            let chunk = min 44 !remaining in
            Tc.dma_write bus ~bytes:chunk;
            remaining := !remaining - chunk
          done ))

(* DMA then CPU read of the block through the cache. *)
let dma_then_read machine =
  timed (fun eng ->
      let mem =
        Phys_mem.create ~size:(1 lsl 20)
          ~page_size:machine.Machine.page_size ()
      in
      let bus = Tc.create eng machine.Machine.bus in
      let cache = Cache.create eng ~mem ~bus machine.Machine.cache in
      ( machine,
        fun () ->
          let remaining = ref block in
          while !remaining > 0 do
            let chunk = min 44 !remaining in
            Tc.dma_write bus ~bytes:chunk;
            Cache.dma_wrote cache ~addr:(block - !remaining) ~len:chunk;
            remaining := !remaining - chunk
          done;
          ignore (Cache.read cache ~addr:0 ~len:block) ))

(* PIO: CPU reads the adaptor word by word and writes the app buffer. *)
let pio_in machine =
  timed (fun eng ->
      let mem =
        Phys_mem.create ~size:(1 lsl 20)
          ~page_size:machine.Machine.page_size ()
      in
      let bus = Tc.create eng machine.Machine.bus in
      let cache = Cache.create eng ~mem ~bus machine.Machine.cache in
      ( machine,
        fun () ->
          Tc.pio_read_words bus ~words:(block / 4);
          (* store to the application buffer through the cache *)
          Cache.write cache ~addr:0 ~src:(Bytes.create block) ))

(* Re-read after PIO: the data is still cached. *)
let read_after_pio machine =
  timed (fun eng ->
      let mem =
        Phys_mem.create ~size:(1 lsl 20)
          ~page_size:machine.Machine.page_size ()
      in
      let bus = Tc.create eng machine.Machine.bus in
      let cache = Cache.create eng ~mem ~bus machine.Machine.cache in
      ( machine,
        fun () ->
          Cache.write cache ~addr:0 ~src:(Bytes.create block);
          ignore (Cache.read cache ~addr:0 ~len:block) ))

let table () =
  let rows =
    List.map
      (fun machine ->
        [
          machine.Machine.name;
          Printf.sprintf "%.0f" (rate_mbps (dma_in machine));
          Printf.sprintf "%.0f" (rate_mbps (dma_then_read machine));
          Printf.sprintf "%.0f" (rate_mbps (pio_in machine));
          Printf.sprintf "%.0f" (rate_mbps (read_after_pio machine));
        ])
      [ Machine.ds5000_200; Machine.dec3000_600 ]
  in
  {
    Report.t_title =
      "2.7 ablation: DMA vs PIO, application-access rates for 16KB (Mbps)";
    header =
      [ "machine"; "DMA in"; "DMA + CPU read"; "PIO in"; "read after PIO" ];
    rows;
    t_paper_note =
      "on DEC workstations word reads across the TURBOchannel are so slow \
       that DMA wins even counting the post-DMA cache misses; on the Alpha \
       DMA updates the cache and the gap widens";
  }
