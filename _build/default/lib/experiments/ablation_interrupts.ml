open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Driver = Osiris_core.Driver
module Board = Osiris_board.Board
module Demux = Osiris_xkernel.Demux
module Msg = Osiris_xkernel.Msg
module Irq = Osiris_os.Irq

let raw_vci = 9

let run ?(machine = Machine.ds5000_200) ?(burst = 64) ?(pdu_size = 1024)
    ~spacing_us () =
  let eng = Engine.create () in
  let cfg = Host.default_config in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b = Host.create eng machine ~addr:0x0a000002l { cfg with seed = 43 } in
  ignore (Network.connect eng a b);
  Board.bind_vci a.Host.board ~vci:raw_vci (Board.kernel_channel a.Host.board);
  Board.bind_vci b.Host.board ~vci:raw_vci (Board.kernel_channel b.Host.board);
  let received = ref 0 in
  Demux.bind b.Host.demux ~vci:raw_vci ~name:"sink" (fun ~vci:_ msg ->
      incr received;
      Msg.dispose msg);
  Process.spawn eng ~name:"burst" (fun () ->
      for _ = 1 to burst do
        let msg = Msg.alloc a.Host.vs ~len:pdu_size () in
        Driver.send a.Host.driver ~vci:raw_vci msg;
        if spacing_us > 0 then Process.sleep eng (Time.us spacing_us)
      done);
  Engine.run ~until:(Time.s 2) eng;
  (!received, Irq.count b.Host.irq)

let table () =
  let rows =
    List.map
      (fun spacing_us ->
        let pdus, irqs = run ~spacing_us () in
        [
          (if spacing_us = 0 then "back-to-back"
           else Printf.sprintf "%d us" spacing_us);
          string_of_int pdus;
          string_of_int irqs;
          Printf.sprintf "%.2f" (float_of_int irqs /. float_of_int pdus);
        ])
      [ 0; 50; 200; 500; 2000 ]
  in
  {
    Report.t_title =
      "2.1.2 ablation: receive interrupts per PDU vs packet spacing";
    header = [ "spacing"; "PDUs"; "interrupts"; "per PDU" ];
    rows;
    t_paper_note =
      "interrupt only on receive-queue empty->nonempty: trains cost much \
       less than one 75us interrupt per PDU; spaced packets still get one \
       (for latency)";
  }
