open Osiris_sim
module Host = Osiris_core.Host
module Machine = Osiris_core.Machine
module Board = Osiris_board.Board
module Atm_link = Osiris_link.Atm_link
module Msg = Osiris_xkernel.Msg
module Udp = Osiris_proto.Udp
module Rng = Osiris_util.Rng

let throughput ~machine ~checksum ?(dma = Board.Single_cell) ~msg_size
    ?(window_ms = 60) () =
  let eng = Engine.create () in
  let cfg =
    {
      Host.default_config with
      board = { Board.default_config with Board.dma_mode = dma };
      udp_checksum = checksum;
    }
  in
  let host = Host.create eng machine ~addr:0x0a000001l cfg in
  let rng = Rng.create ~seed:11 in
  let out_link = Atm_link.create eng (Rng.split rng) Atm_link.default_config in
  let in_link = Atm_link.create eng (Rng.split rng) Atm_link.default_config in
  Board.attach host.Host.board ~tx_link:out_link ~rx_link:in_link;
  Host.start host;
  (* Pure sink: drain arriving cells so link statistics stay clean. *)
  Process.spawn eng ~name:"sink" (fun () ->
      let rec loop () =
        ignore (Atm_link.recv out_link);
        loop ()
      in
      loop ());
  Process.spawn eng ~name:"source" (fun () ->
      let rec loop () =
        let msg = Msg.alloc host.Host.vs ~len:msg_size () in
        Udp.output host.Host.udp ~dst:0x0a000002l ~src_port:9 ~dst_port:7 msg;
        loop ()
      in
      loop ());
  (* Measure at the adaptor (cells actually put on the wire), not at the
     driver queue, so in-flight transmit-queue contents do not inflate the
     rate. Cell data includes framing overhead (~1%). *)
  Engine.run ~until:(Time.ms window_ms) eng;
  let cells0 = (Board.stats host.Host.board).Board.cells_sent in
  let t0 = Engine.now eng in
  Engine.run ~until:(t0 + Time.ms window_ms) eng;
  let cells1 = (Board.stats host.Host.board).Board.cells_sent in
  Report.mbps
    ~bytes_count:((cells1 - cells0) * Osiris_atm.Cell.data_size)
    ~ns:(Engine.now eng - t0)

let figure4 ?(window_ms = 60) ?(sizes = Report.sizes_1k_to_256k) () =
  let curve label machine checksum =
    {
      Report.label;
      points =
        List.map
          (fun msg_size ->
            (msg_size, throughput ~machine ~checksum ~msg_size ~window_ms ()))
          sizes;
    }
  in
  {
    Report.title = "Figure 4: UDP/IP/OSIRIS transmit-side throughput";
    xlabel = "msg size";
    ylabel = "Mbps";
    series =
      [
        curve "3000/600" Machine.dec3000_600 false;
        curve "3000/600+CS" Machine.dec3000_600 true;
        curve "5000/200" Machine.ds5000_200 false;
      ];
    paper_note =
      "maximum ~325 Mbps, limited entirely by single-cell DMA overhead on \
       the TURBOchannel; 5000/200 slightly below the Alpha";
  }
