module Machine = Osiris_core.Machine
module Host = Osiris_core.Host
module Board = Osiris_board.Board
module Desc_queue = Osiris_board.Desc_queue
module Driver = Osiris_core.Driver

(* Receive-side throughput with a given locking discipline, also reporting
   host dual-port word accesses per received PDU. *)
let receive_with locking =
  let machine = Machine.ds5000_200 in
  let variant =
    {
      Receive_side.label = "x";
      dma = Board.Single_cell;
      invalidation = Driver.Lazy;
      checksum = false;
    }
  in
  let open Osiris_sim in
  let eng = Engine.create () in
  let cfg =
    {
      Host.default_config with
      board =
        { Board.default_config with Board.dma_mode = variant.Receive_side.dma;
          locking };
    }
  in
  let host = Host.create eng machine ~addr:0x0a000002l cfg in
  let payload = Bytes.init (16 * 1024) (fun i -> Char.chr (i land 0xff)) in
  let datagram =
    Osiris_proto.Udp.datagram_image ~src_port:9 ~dst_port:7 ~checksum:false
      payload
  in
  let fragments =
    Osiris_proto.Ip.fragment_images cfg.Host.ip
      ~page_size:machine.Machine.page_size ~src:0x0a000001l ~dst:0x0a000002l
      ~proto:Osiris_proto.Udp.protocol_number datagram
  in
  Board.start_fictitious_source host.Host.board
    ~pdus:(List.map (fun f -> (Host.ip_vci host, f)) fragments)
    ();
  Host.start host;
  let bytes_got = ref 0 in
  Host.new_udp_test_receiver host ~port:7 ~on_msg:(fun ~len ->
      bytes_got := !bytes_got + len);
  Engine.run ~until:(Time.ms 40) eng;
  let base = !bytes_got in
  let ch = Board.kernel_channel host.Host.board in
  let words q =
    let s = Desc_queue.access_stats q in
    s.Desc_queue.host_reads + s.Desc_queue.host_writes
  in
  let words0 =
    words (Board.rx_queue ch) + words (Board.free_queue ch)
  in
  let pdus0 = (Driver.stats host.Host.driver).Driver.pdus_received in
  let t0 = Engine.now eng in
  Engine.run ~until:(t0 + Time.ms 40) eng;
  let mbps =
    Report.mbps ~bytes_count:(!bytes_got - base) ~ns:(Engine.now eng - t0)
  in
  let dwords =
    words (Board.rx_queue ch) + words (Board.free_queue ch) - words0
  in
  let dpdus = (Driver.stats host.Host.driver).Driver.pdus_received - pdus0 in
  (mbps, float_of_int dwords /. float_of_int (max 1 dpdus))

let table () =
  let mk locking label =
    let mbps, words_per_pdu = receive_with locking in
    let rtt =
      Table1.rtt_with_locking ~locking ~machine:Machine.ds5000_200
        ~proto:Table1.Raw_atm ~msg_size:4096 ~rounds:8 ()
    in
    [
      label;
      Printf.sprintf "%.0f" mbps;
      Printf.sprintf "%.1f" words_per_pdu;
      Printf.sprintf "%.0f" rtt;
    ]
  in
  {
    Report.t_title = "2.1.1 ablation: lock-free queues vs spin-locked access";
    header =
      [ "discipline"; "rx Mbps (16KB)"; "host dp-words/PDU"; "RTT 4KB (us)" ];
    rows =
      [ mk Desc_queue.Lock_free "lock-free"; mk Desc_queue.Spin_lock "spin-lock" ];
    t_paper_note =
      "lock-free 1R1W queues maximize concurrency and minimize dual-port \
       loads/stores; locking costs extra accesses and contention stalls";
  }
