open Osiris_sim
module Host = Osiris_core.Host
module Network = Osiris_core.Network
module Machine = Osiris_core.Machine
module Board = Osiris_board.Board
module Driver = Osiris_core.Driver
module Msg = Osiris_xkernel.Msg
module Udp = Osiris_proto.Udp

type result = { label : string; mbps : float }

let throughput ?(machine = Machine.dec3000_600) ~dma
    ?(msg_size = 64 * 1024) ?(window_ms = 40) () =
  let eng = Engine.create () in
  let cfg =
    {
      Host.default_config with
      board = { Board.default_config with Board.dma_mode = dma };
    }
  in
  let a = Host.create eng machine ~addr:0x0a000001l cfg in
  let b = Host.create eng machine ~addr:0x0a000002l { cfg with seed = 43 } in
  ignore (Network.connect eng a b);
  let bytes = ref 0 in
  Host.new_udp_test_receiver b ~port:7 ~on_msg:(fun ~len ->
      bytes := !bytes + len);
  Process.spawn eng ~name:"src" (fun () ->
      let rec loop () =
        Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:9 ~dst_port:7
          (Msg.alloc a.Host.vs ~len:msg_size ());
        loop ()
      in
      loop ());
  Engine.run ~until:(Time.ms window_ms) eng;
  let base = !bytes in
  let t0 = Engine.now eng in
  Engine.run ~until:(t0 + Time.ms window_ms) eng;
  Report.mbps ~bytes_count:(!bytes - base) ~ns:(Engine.now eng - t0)

let table () =
  let machine = Machine.dec3000_600 in
  let rx dma =
    Receive_side.throughput ~machine
      ~variant:
        { Receive_side.label = "rx"; dma; invalidation = Osiris_core.Driver.Lazy;
          checksum = false }
      ~msg_size:(16 * 1024) ~window_ms:25 ()
  in
  let h2h dma = throughput ~machine ~dma () in
  let single_rx = rx Board.Single_cell and double_rx = rx Board.Double_cell in
  let single_h2h = h2h Board.Single_cell
  and double_h2h = h2h Board.Double_cell in
  let verdict =
    if double_h2h >= Float.min single_rx double_rx -. 40.0
       && double_h2h <= Float.max single_rx double_rx +. 10.0
    then "prediction holds"
    else "prediction violated"
  in
  {
    Report.t_title =
      "4 (closing prediction): host-to-host throughput vs receive side in \
       isolation (DEC 3000/600, 64KB messages)";
    header = [ "configuration"; "Mbps" ];
    rows =
      [
        [ "receive side alone, single-cell DMA";
          Printf.sprintf "%.0f" single_rx ];
        [ "receive side alone, double-cell DMA";
          Printf.sprintf "%.0f" double_rx ];
        [ "host-to-host, single-cell DMA"; Printf.sprintf "%.0f" single_h2h ];
        [ "host-to-host, double-cell DMA (the configuration the paper \
           could not measure)";
          Printf.sprintf "%.0f" double_h2h ];
        [ "paper's prediction: double-cell host-to-host falls between the \
           receive-side curves";
          verdict ];
      ];
    t_paper_note =
      "\"the host-to-host throughput attained is expected to fall between \
       the graphs for single cell DMA and that for double cell DMA on the \
       receive side\" — testable here because the simulated transmit DMA \
       controller already supports double-cell transfers";
  }
