open Osiris_sim
module Machine = Osiris_core.Machine
module Phys_mem = Osiris_mem.Phys_mem
module Vspace = Osiris_mem.Vspace
module Pbuf = Osiris_mem.Pbuf
module Msg = Osiris_xkernel.Msg
module Ip = Osiris_proto.Ip
module Udp = Osiris_proto.Udp
module Cell = Osiris_atm.Cell

type result = {
  label : string;
  fragments : int;
  physical_buffers : int;
  boundary_splits : int;
  sg_map_loads : int;
}

(* DMA transactions needed for one fragment's buffer list under the
   boundary-stopping controller: splits at buffer ends and page edges. *)
let splits_of page_size pbufs =
  let data_len = Pbuf.total_len pbufs in
  let cells = (data_len + Cell.data_size - 1) / Cell.data_size in
  let count = ref 0 in
  for k = 0 to cells - 1 do
    let lo = k * Cell.data_size and hi = min ((k + 1) * Cell.data_size) data_len in
    (* walk the chain to count the spans this cell needs *)
    let rec spans bufs off len acc =
      if len = 0 then acc
      else
        match bufs with
        | [] -> acc
        | (b : Pbuf.t) :: rest ->
            if off >= b.Pbuf.len then spans rest (off - b.Pbuf.len) len acc
            else begin
              let avail = b.Pbuf.len - off in
              let chunk = min len avail in
              (* page-boundary splits within the span *)
              let addr = b.Pbuf.addr + off in
              let first_page = addr / page_size
              and last_page = (addr + chunk - 1) / page_size in
              spans (b :: rest) (off + chunk) (len - chunk)
                (acc + 1 + (last_page - first_page))
            end
    in
    let n = spans pbufs lo (hi - lo) 0 in
    count := !count + (n - 1)
  done;
  !count

let run ?(msg_size = 16 * 1024) ?page_offset ~mtu ~aligned ~contiguous () =
  (* The 2.2 fix needs both halves: an aligned MTU and page-aligned
     application messages. Unless overridden, misalign the naive case. *)
  let page_offset =
    match page_offset with Some o -> o | None -> if aligned then 0 else 256
  in
  let machine = Machine.ds5000_200 in
  let page_size = machine.Machine.page_size in
  let eng = Engine.create () in
  ignore eng;
  let mem = Phys_mem.create
      ~scramble:(Osiris_util.Rng.create ~seed:3)
      ~size:machine.Machine.mem_size ~page_size ()
  in
  let vs = Vspace.create mem in
  let msg =
    if contiguous then
      match Vspace.alloc_contiguous vs ~len:msg_size with
      | Some vaddr -> Msg.create vs ~vaddr ~len:msg_size
      | None -> failwith "no contiguous memory"
    else Msg.alloc vs ~len:msg_size ~page_offset ()
  in
  (* UDP header, then IP fragmentation, exactly as the stack does it —
     but counting buffers instead of transmitting. *)
  Msg.push msg ~len:Udp.header_size (fun b ->
      Bytes.set_uint16_be b 4 (Udp.header_size + msg_size));
  let cfg = { Ip.mtu; aligned_mtu = aligned } in
  let per_frag = Ip.fragment_data_size cfg ~page_size in
  let total = Msg.length msg in
  let frag_bufs = ref [] in
  let rec go off =
    if off < total then begin
      let chunk = min per_frag (total - off) in
      let frag = Msg.sub msg ~off ~len:chunk in
      Msg.push frag ~len:Ip.header_size (fun _ -> ());
      frag_bufs := Msg.pbufs frag :: !frag_bufs;
      go (off + chunk)
    end
  in
  go 0;
  let fragments = List.length !frag_bufs in
  let physical_buffers =
    List.fold_left (fun acc bufs -> acc + List.length bufs) 0 !frag_bufs
  in
  let boundary_splits =
    List.fold_left (fun acc bufs -> acc + splits_of page_size bufs) 0 !frag_bufs
  in
  (* What a virtual-DMA machine (IBM RS/6000, DEC 3000) would pay: the
     driver loads one scatter/gather map slot per page of each buffer,
     per transfer. *)
  let sg = Osiris_mem.Sg_map.create ~slots:64 ~page_size in
  List.iter (fun bufs -> ignore (Osiris_mem.Sg_map.program sg bufs)) !frag_bufs;
  let sg_map_loads = Osiris_mem.Sg_map.loads sg in
  let label =
    Printf.sprintf "mtu=%dKB%s%s" (mtu / 1024)
      (if aligned then " aligned" else "")
      (if contiguous then " contig" else "")
  in
  { label; fragments; physical_buffers; boundary_splits; sg_map_loads }

let table () =
  let cases =
    [
      run ~mtu:4096 ~aligned:false ~contiguous:false ();
      run ~mtu:(4096 + 20) ~aligned:true ~contiguous:false ();
      run ~mtu:(16 * 1024) ~aligned:true ~contiguous:false ();
      run ~mtu:(16 * 1024) ~aligned:true ~contiguous:true ();
    ]
  in
  {
    Report.t_title =
      "2.2 ablation: physical buffers for a 16KB UDP message (4KB pages)";
    header =
      [ "policy"; "IP fragments"; "physical buffers"; "DMA splits";
        "sg-map loads" ];
    rows =
      List.map
        (fun r ->
          [
            r.label;
            string_of_int r.fragments;
            string_of_int r.physical_buffers;
            string_of_int r.boundary_splits;
            string_of_int r.sg_map_loads;
          ])
        cases;
    t_paper_note =
      "naive 4KB MTU: up to 14 buffers for 16KB (headers on own pages, \
       data misaligned); page-aligned MTU or contiguous allocation collapse \
       the count. The sg-map column shows fragmentation still costs \
       per-transfer map loads on virtual-DMA machines (2.2's closing \
       point)";
  }
