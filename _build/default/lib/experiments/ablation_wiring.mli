(** §2.4 ablation: page wiring cost.

    Mach's standard wiring service protects more than DMA needs (the page
    and every page-table page involved in its translation) and turned out
    surprisingly expensive; the driver switched to low-level pmap
    functionality. The ablation reports the closed-form cost per wire call
    for each policy and the resulting raw-ATM round-trip latency, since
    wiring is on the transmit critical path. *)

val table : unit -> Report.table
