lib/bus/turbochannel.ml: Engine Osiris_sim Resource
