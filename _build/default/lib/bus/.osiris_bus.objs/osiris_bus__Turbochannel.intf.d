lib/bus/turbochannel.mli: Osiris_sim
