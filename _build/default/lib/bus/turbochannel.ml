open Osiris_sim

type topology = Shared_bus | Crossbar

type config = {
  clock_hz : int;
  width_bytes : int;
  dma_read_overhead : int;
  dma_write_overhead : int;
  pio_read_cycles : int;
  pio_write_cycles : int;
  topology : topology;
}

let turbochannel_config topology =
  {
    clock_hz = 25_000_000;
    width_bytes = 4;
    dma_read_overhead = 13;
    dma_write_overhead = 8;
    pio_read_cycles = 15;
    pio_write_cycles = 4;
    topology;
  }

type t = {
  eng : Engine.t;
  cfg : config;
  io_port : Resource.t; (* DMA + PIO; also CPU traffic when Shared_bus *)
  mem_port : Resource.t; (* CPU traffic when Crossbar *)
}

let create eng cfg =
  let io_port = Resource.create eng ~capacity:1 in
  let mem_port =
    match cfg.topology with
    | Shared_bus -> io_port
    | Crossbar -> Resource.create eng ~capacity:1
  in
  { eng; cfg; io_port; mem_port }

let config t = t.cfg

let cycle_ns t = 1_000_000_000 / t.cfg.clock_hz

let peak_mbps t =
  float_of_int (t.cfg.width_bytes * 8) *. float_of_int t.cfg.clock_hz /. 1e6

let words_of_bytes t bytes = (bytes + t.cfg.width_bytes - 1) / t.cfg.width_bytes

let cycles_ns t cycles = cycles * cycle_ns t

let dma_transaction_ns t ~dir ~bytes =
  let overhead =
    match dir with
    | `Read -> t.cfg.dma_read_overhead
    | `Write -> t.cfg.dma_write_overhead
  in
  cycles_ns t (overhead + words_of_bytes t bytes)

(* Arbitration: the DMA engines win the bus over CPU traffic (an adaptor
   that loses the bus overruns its input FIFO); neither preempts a
   transfer in progress. *)
let dma_priority = 0
let cpu_priority = 5

let dma_read t ~bytes =
  Resource.use t.io_port ~priority:dma_priority
    ~duration:(dma_transaction_ns t ~dir:`Read ~bytes)

let dma_write t ~bytes =
  Resource.use t.io_port ~priority:dma_priority
    ~duration:(dma_transaction_ns t ~dir:`Write ~bytes)

let cpu_access t ~bytes ~overhead_cycles =
  let duration = cycles_ns t (overhead_cycles + words_of_bytes t bytes) in
  Resource.use t.mem_port ~priority:cpu_priority ~duration

let pio_read_words t ~words =
  if words > 0 then
    Resource.use t.io_port ~duration:(cycles_ns t (words * t.cfg.pio_read_cycles))

let pio_write_words t ~words =
  if words > 0 then
    Resource.use t.io_port
      ~duration:(cycles_ns t (words * t.cfg.pio_write_cycles))

let max_dma_mbps t ~dir ~burst =
  let overhead =
    match dir with
    | `Read -> t.cfg.dma_read_overhead
    | `Write -> t.cfg.dma_write_overhead
  in
  let words = words_of_bytes t burst in
  float_of_int words
  /. float_of_int (words + overhead)
  *. peak_mbps t

let busy_stats t = Resource.stats t.io_port
