(** Transaction-level model of the TURBOchannel I/O bus.

    The paper derives all of its hardware throughput bounds from three
    numbers: the bus moves one 32-bit word per cycle at 25 MHz (800 Mb/s
    peak), a DMA {e read} transaction (adaptor reading main memory, i.e. the
    transmit direction) pays 13 cycles of overhead, and a DMA {e write}
    (receive direction) pays 8 cycles. Hence 44-byte (11-word) transfers
    yield 11/(11+13)·800 = 367 Mb/s transmit and 11/(11+8)·800 = 463 Mb/s
    receive; 88-byte transfers yield 503 and 587 Mb/s (§2.5.1).

    Two arbitration topologies are modelled:
    - [Shared_bus] (DECstation 5000/200): every memory transaction — DMA,
      CPU cache fill, CPU write-through — serializes on one resource, so DMA
      and CPU activity steal bandwidth from each other (§4's explanation of
      the 340 Mb/s receive ceiling and the 80 Mb/s checksum collapse).
    - [Crossbar] (DEC 3000/600): DMA and CPU/memory traffic proceed
      concurrently on separate ports. *)

type topology = Shared_bus | Crossbar

type config = {
  clock_hz : int;  (** bus cycle rate; 25 MHz for TURBOchannel *)
  width_bytes : int;  (** bytes moved per cycle; 4 for TURBOchannel *)
  dma_read_overhead : int;  (** cycles of setup per DMA read transaction *)
  dma_write_overhead : int;  (** cycles of setup per DMA write transaction *)
  pio_read_cycles : int;  (** cycles for one programmed-I/O word read *)
  pio_write_cycles : int;  (** cycles for one programmed-I/O word write *)
  topology : topology;
}

val turbochannel_config : topology -> config
(** The TURBOchannel constants above with the given topology. *)

type t

val create : Osiris_sim.Engine.t -> config -> t

val config : t -> config

val cycle_ns : t -> int
(** Duration of one bus cycle in nanoseconds. *)

val peak_mbps : t -> float

(** The transaction operations below block the calling process for the
    transaction's duration, arbitrating per the topology. *)

val dma_read : t -> bytes:int -> unit
(** Adaptor reads [bytes] from main memory (transmit direction). *)

val dma_write : t -> bytes:int -> unit
(** Adaptor writes [bytes] to main memory (receive direction). *)

val cpu_access : t -> bytes:int -> overhead_cycles:int -> unit
(** CPU-side memory transaction (cache fill or write-back of [bytes], with
    the given setup overhead). Contends with DMA on [Shared_bus]; uses the
    separate memory port on [Crossbar]. *)

val pio_read_words : t -> words:int -> unit
(** Programmed I/O: CPU reads [words] 32-bit words from adaptor memory, one
    transaction each. Always crosses the I/O bus. *)

val pio_write_words : t -> words:int -> unit

val dma_transaction_ns : t -> dir:[ `Read | `Write ] -> bytes:int -> int
(** Duration of a single DMA transaction, without queueing. *)

val max_dma_mbps : t -> dir:[ `Read | `Write ] -> burst:int -> float
(** Closed-form §2.5.1 bound: sustained data rate of back-to-back DMA
    transactions of [burst] bytes. *)

val busy_stats : t -> Osiris_sim.Resource.stats
(** Utilization counters of the (I/O side of the) bus. *)
