(** Virtual address spaces.

    A per-protection-domain page table mapping virtual pages to physical
    frames, with page wiring. The interesting operation for the paper is
    {!phys_buffers}: decomposing a virtually contiguous region into the list
    of physical buffers a DMA engine needs — the fragmentation phenomenon of
    §2.2 arises here, because consecutively allocated virtual pages land on
    scrambled physical frames. *)

type t

val create : Phys_mem.t -> t

val mem : t -> Phys_mem.t
val page_size : t -> int

val alloc : t -> len:int -> int
(** [alloc t ~len] reserves a fresh, virtually contiguous region of at least
    [len] bytes (rounded up to whole pages), backs every page with a frame
    from the allocator, and returns the region's virtual base address
    (page-aligned). *)

val alloc_offset : t -> len:int -> offset:int -> int
(** Like {!alloc} but returns an address [offset] bytes into the first page,
    modelling application messages that do not start page-aligned. [offset]
    must be smaller than the page size; one extra page is reserved if the
    data spills. *)

val alloc_contiguous : t -> len:int -> int option
(** Like {!alloc} but backed by physically contiguous frames (best effort):
    the OS support for contiguous allocation that §2.2 describes as an
    experiment. [None] when physical memory is too fragmented. *)

val free : t -> int -> unit
(** Release a region previously returned by an allocation function
    (identified by its base address) and return its frames. *)

val translate : t -> int -> int
(** Virtual to physical address translation. Raises [Page_fault] for an
    unmapped address. *)

exception Page_fault of int

val phys_buffers : t -> vaddr:int -> len:int -> Pbuf.t list
(** The physical buffers covering [\[vaddr, vaddr+len)], coalescing pages
    that happen to be physically adjacent. The list length is the physical
    buffer count the driver must process for this region. *)

val wire : t -> vaddr:int -> len:int -> unit
(** Mark every page of the region non-pageable (counted: a page may be wired
    multiple times). Required before handing addresses to the adaptor for
    DMA (paper §2.4). *)

val unwire : t -> vaddr:int -> len:int -> unit

val is_wired : t -> vaddr:int -> bool
(** Is the page containing [vaddr] wired at least once? *)

val wired_pages : t -> int
(** Number of distinct pages currently wired. *)

val mapped_pages : t -> int
