type t = {
  data : Bytes.t;
  page_size : int;
  nframes : int;
  mutable free : int list; (* frame indices *)
  free_set : (int, unit) Hashtbl.t;
}

let create ?scramble ~size ~page_size () =
  if size <= 0 || page_size <= 0 || size mod page_size <> 0 then
    invalid_arg "Phys_mem.create: size must be a positive multiple of page_size";
  let nframes = size / page_size in
  let order = Array.init nframes (fun i -> i) in
  (match scramble with Some rng -> Osiris_util.Rng.shuffle rng order | None -> ());
  let free = Array.to_list order in
  let free_set = Hashtbl.create nframes in
  List.iter (fun f -> Hashtbl.replace free_set f ()) free;
  { data = Bytes.make size '\000'; page_size; nframes; free; free_set }

let size t = Bytes.length t.data
let page_size t = t.page_size
let frames t = t.nframes
let free_frames t = Hashtbl.length t.free_set

let alloc_frame t =
  match t.free with
  | [] -> raise Out_of_memory
  | f :: rest ->
      t.free <- rest;
      Hashtbl.remove t.free_set f;
      f * t.page_size

let alloc_contiguous t ~nframes =
  if nframes <= 0 then invalid_arg "Phys_mem.alloc_contiguous";
  let is_free f = Hashtbl.mem t.free_set f in
  let rec find base =
    if base + nframes > t.nframes then None
    else begin
      let rec run i = i = nframes || (is_free (base + i) && run (i + 1)) in
      if run 0 then Some base else find (base + 1)
    end
  in
  match find 0 with
  | None -> None
  | Some base ->
      for i = base to base + nframes - 1 do
        Hashtbl.remove t.free_set i
      done;
      t.free <- List.filter (fun f -> f < base || f >= base + nframes) t.free;
      Some (base * t.page_size)

let free_frame t addr =
  if addr mod t.page_size <> 0 then
    invalid_arg "Phys_mem.free_frame: unaligned address";
  let f = addr / t.page_size in
  if f < 0 || f >= t.nframes then invalid_arg "Phys_mem.free_frame: bad frame";
  if Hashtbl.mem t.free_set f then
    invalid_arg "Phys_mem.free_frame: double free";
  Hashtbl.replace t.free_set f ();
  t.free <- f :: t.free

let check t addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Phys_mem: access [%#x,+%d) out of bounds" addr len)

let read_byte t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let write_byte t addr v =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (v land 0xff))

let read_u32 t addr =
  check t addr 4;
  Bytes.get_int32_be t.data addr

let write_u32 t addr v =
  check t addr 4;
  Bytes.set_int32_be t.data addr v

let blit_from_bytes t ~src ~src_off ~dst ~len =
  check t dst len;
  Bytes.blit src src_off t.data dst len

let blit_to_bytes t ~src ~dst ~dst_off ~len =
  check t src len;
  Bytes.blit t.data src dst dst_off len

let blit t ~src ~dst ~len =
  check t src len;
  check t dst len;
  Bytes.blit t.data src t.data dst len

let fill t ~addr ~len c =
  check t addr len;
  Bytes.fill t.data addr len c

let bytes_of_region t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let bytes_of_pbufs t bufs =
  let total = Pbuf.total_len bufs in
  let out = Bytes.create total in
  let off = ref 0 in
  List.iter
    (fun (b : Pbuf.t) ->
      blit_to_bytes t ~src:b.Pbuf.addr ~dst:out ~dst_off:!off ~len:b.Pbuf.len;
      off := !off + b.Pbuf.len)
    bufs;
  out
