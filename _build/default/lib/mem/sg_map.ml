type entry = { phys_base : int; offset : int; len : int }

type t = {
  nslots : int;
  page_size : int;
  mutable entries : entry array; (* slot i covers map-virtual page i *)
  mutable used : int;
  mutable load_count : int;
}

let create ~slots ~page_size =
  if slots <= 0 || page_size <= 0 then invalid_arg "Sg_map.create";
  { nslots = slots; page_size; entries = [||]; used = 0; load_count = 0 }

let slots t = t.nslots
let loads t = t.load_count

let clear t =
  t.entries <- [||];
  t.used <- 0

let program t bufs =
  (* Each map slot covers one map-virtual page. A buffer that is not
     page-aligned still occupies ceil((offset_in_page + len) / page) slots;
     we model the common driver simplification of one slot per (page of
     each) buffer, keeping buffer boundaries at slot boundaries. *)
  let slots_needed =
    List.fold_left
      (fun acc (b : Pbuf.t) ->
        acc + ((b.Pbuf.len + t.page_size - 1) / t.page_size))
      0 bufs
  in
  if slots_needed > t.nslots then None
  else begin
    let entries = ref [] in
    List.iter
      (fun (b : Pbuf.t) ->
        let remaining = ref b.Pbuf.len and addr = ref b.Pbuf.addr in
        while !remaining > 0 do
          let chunk = min !remaining t.page_size in
          entries := { phys_base = !addr; offset = 0; len = chunk } :: !entries;
          addr := !addr + chunk;
          remaining := !remaining - chunk
        done)
      bufs;
    t.entries <- Array.of_list (List.rev !entries);
    t.used <- Array.length t.entries;
    t.load_count <- t.load_count + t.used;
    Some 0
  end

let translate t mvaddr =
  let slot = mvaddr / t.page_size and off = mvaddr mod t.page_size in
  if slot < 0 || slot >= t.used then
    invalid_arg "Sg_map.translate: unprogrammed address";
  let e = t.entries.(slot) in
  if off >= e.len then invalid_arg "Sg_map.translate: beyond entry length";
  e.phys_base + e.offset + off
