lib/mem/pbuf.mli: Format
