lib/mem/vspace.mli: Pbuf Phys_mem
