lib/mem/sg_map.ml: Array List Pbuf
