lib/mem/vspace.ml: Hashtbl List Pbuf Phys_mem
