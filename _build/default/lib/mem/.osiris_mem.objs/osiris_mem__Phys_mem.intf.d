lib/mem/phys_mem.mli: Bytes Osiris_util Pbuf
