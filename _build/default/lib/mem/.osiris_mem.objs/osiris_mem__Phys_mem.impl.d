lib/mem/phys_mem.ml: Array Bytes Char Hashtbl List Osiris_util Pbuf Printf
