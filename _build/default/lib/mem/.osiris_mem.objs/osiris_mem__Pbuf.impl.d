lib/mem/pbuf.ml: Format List
