lib/mem/sg_map.mli: Pbuf
