(** Hardware scatter/gather map (virtual-address DMA).

    Models the virtual-to-physical translation buffer found on machines like
    the IBM RISC System/6000 and DEC 3000 AXP (paper §2.2): a fixed number
    of map slots the driver loads with frame mappings before a DMA transfer,
    so the adaptor can be handed one virtually contiguous range instead of a
    physical buffer list. Loading entries costs driver work per fragment, so
    fragmentation still matters — the point §2.2 closes on. *)

type t

val create : slots:int -> page_size:int -> t

val slots : t -> int
val loads : t -> int
(** Cumulative number of slot loads, for cost accounting. *)

val program : t -> Pbuf.t list -> int option
(** Load mappings for the given physical buffers and return the map-virtual
    base address the adaptor would use, or [None] when the buffer list needs
    more slots than the map has. Each page of each buffer consumes a
    slot. *)

val translate : t -> int -> int
(** Translate a map-virtual address programmed by {!program} into a physical
    address. Raises [Invalid_argument] for an unprogrammed address. *)

val clear : t -> unit
