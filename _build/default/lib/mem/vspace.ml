exception Page_fault of int

type pte = { frame_addr : int; mutable wired : int }

type region = { base : int; pages : int; first_page : int }

type t = {
  mem : Phys_mem.t;
  table : (int, pte) Hashtbl.t; (* vpage -> pte *)
  regions : (int, region) Hashtbl.t; (* base vaddr -> region *)
  mutable next_vpage : int;
}

let create mem =
  { mem; table = Hashtbl.create 256; regions = Hashtbl.create 64; next_vpage = 16 }

let mem t = t.mem
let page_size t = Phys_mem.page_size t.mem

let pages_for t len offset =
  let ps = page_size t in
  (len + offset + ps - 1) / ps

let install t ~alloc_frames ~len ~offset =
  let ps = page_size t in
  let npages = pages_for t len offset in
  let first_page = t.next_vpage in
  let frames = alloc_frames npages in
  List.iteri
    (fun i frame_addr ->
      Hashtbl.replace t.table (first_page + i) { frame_addr; wired = 0 })
    frames;
  t.next_vpage <- t.next_vpage + npages + 1 (* guard page between regions *);
  let base = (first_page * ps) + offset in
  Hashtbl.replace t.regions base { base; pages = npages; first_page };
  base

let alloc_offset t ~len ~offset =
  if len <= 0 then invalid_arg "Vspace.alloc: non-positive length";
  if offset < 0 || offset >= page_size t then
    invalid_arg "Vspace.alloc_offset: offset out of range";
  install t
    ~alloc_frames:(fun n -> List.init n (fun _ -> Phys_mem.alloc_frame t.mem))
    ~len ~offset

let alloc t ~len = alloc_offset t ~len ~offset:0

let alloc_contiguous t ~len =
  if len <= 0 then invalid_arg "Vspace.alloc_contiguous: non-positive length";
  let npages = pages_for t len 0 in
  match Phys_mem.alloc_contiguous t.mem ~nframes:npages with
  | None -> None
  | Some base_paddr ->
      let ps = page_size t in
      Some
        (install t
           ~alloc_frames:(fun n -> List.init n (fun i -> base_paddr + (i * ps)))
           ~len ~offset:0)

let free t base =
  match Hashtbl.find_opt t.regions base with
  | None -> invalid_arg "Vspace.free: unknown region"
  | Some r ->
      for i = 0 to r.pages - 1 do
        match Hashtbl.find_opt t.table (r.first_page + i) with
        | None -> ()
        | Some pte ->
            Phys_mem.free_frame t.mem pte.frame_addr;
            Hashtbl.remove t.table (r.first_page + i)
      done;
      Hashtbl.remove t.regions base

let pte_of t vaddr =
  let vpage = vaddr / page_size t in
  match Hashtbl.find_opt t.table vpage with
  | None -> raise (Page_fault vaddr)
  | Some pte -> pte

let translate t vaddr =
  let ps = page_size t in
  let pte = pte_of t vaddr in
  pte.frame_addr + (vaddr mod ps)

let phys_buffers t ~vaddr ~len =
  if len <= 0 then invalid_arg "Vspace.phys_buffers: non-positive length";
  let ps = page_size t in
  let rec go vaddr len acc =
    if len = 0 then List.rev acc
    else begin
      let in_page = ps - (vaddr mod ps) in
      let chunk = min len in_page in
      let paddr = translate t vaddr in
      go (vaddr + chunk) (len - chunk) (Pbuf.v ~addr:paddr ~len:chunk :: acc)
    end
  in
  Pbuf.coalesce (go vaddr len [])

let iter_pages t ~vaddr ~len f =
  let ps = page_size t in
  let first = vaddr / ps and last = (vaddr + len - 1) / ps in
  for vpage = first to last do
    f (pte_of t (vpage * ps))
  done

let wire t ~vaddr ~len =
  iter_pages t ~vaddr ~len (fun pte -> pte.wired <- pte.wired + 1)

let unwire t ~vaddr ~len =
  iter_pages t ~vaddr ~len (fun pte ->
      if pte.wired = 0 then invalid_arg "Vspace.unwire: page not wired";
      pte.wired <- pte.wired - 1)

let is_wired t ~vaddr = (pte_of t vaddr).wired > 0

let wired_pages t =
  Hashtbl.fold (fun _ pte acc -> if pte.wired > 0 then acc + 1 else acc) t.table 0

let mapped_pages t = Hashtbl.length t.table
