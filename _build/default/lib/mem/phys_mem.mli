(** Host main memory.

    A flat, byte-addressable store with a frame (physical page) allocator.
    The allocator hands out frames in a {e scrambled} order by default: this
    reproduces the central fact of paper §2.2 that virtually contiguous
    pages are generally not physically contiguous, so a multi-page PDU
    decomposes into one physical buffer per page. A best-effort contiguous
    allocation mode models the OS support the authors were experimenting
    with. *)

type t

val create : ?scramble:Osiris_util.Rng.t -> size:int -> page_size:int -> unit -> t
(** [create ~size ~page_size ()] makes a memory of [size] bytes ([size] must
    be a multiple of [page_size]). When [scramble] is given, the free-frame
    list is shuffled with it; otherwise frames are handed out in address
    order (useful in unit tests). *)

val size : t -> int
val page_size : t -> int
val frames : t -> int
(** Total number of frames. *)

val free_frames : t -> int

val alloc_frame : t -> int
(** Allocate one frame; returns its physical base address. Raises
    [Out_of_memory] when exhausted. *)

val alloc_contiguous : t -> nframes:int -> int option
(** Best-effort allocation of [nframes] physically contiguous frames;
    returns the base address of the run, or [None] if no such run is free.
    Models dynamic contiguous allocation (paper §2.2). *)

val free_frame : t -> int -> unit
(** Return a frame (by base address) to the allocator. Raises [Invalid_arg]
    on double-free or unaligned address. *)

(** Raw access. Reads and writes take physical addresses; bounds are
    checked. These are the operations DMA and the CPU model perform — cost
    accounting lives in the bus/cache layers, not here. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_u32 : t -> int -> int32
val write_u32 : t -> int -> int32 -> unit
val blit_from_bytes : t -> src:Bytes.t -> src_off:int -> dst:int -> len:int -> unit
val blit_to_bytes : t -> src:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit
val blit : t -> src:int -> dst:int -> len:int -> unit
val fill : t -> addr:int -> len:int -> char -> unit

val bytes_of_region : t -> addr:int -> len:int -> Bytes.t
(** Copy of a region, for assertions and checksum computation. *)

val bytes_of_pbufs : t -> Pbuf.t list -> Bytes.t
(** Concatenated copy of the regions named by a buffer list. *)
