(** Physical buffers.

    The unit of data exchanged between host driver software and the
    adaptor's on-board processors (paper §2.2): a run of memory locations
    with contiguous {e physical} addresses, described by physical address
    and length. PDUs that are contiguous in virtual memory generally
    decompose into several physical buffers; counting and minimizing them is
    one of the paper's themes. *)

type t = { addr : int; len : int }

val v : addr:int -> len:int -> t
(** Construct; [len] must be positive and [addr] non-negative. *)

val last : t -> int
(** Address of the byte just past the buffer. *)

val split : t -> at:int -> t * t
(** [split b ~at] cuts [b] into a prefix of [at] bytes and the remainder.
    [at] must satisfy [0 < at < b.len]. *)

val total_len : t list -> int
(** Sum of lengths of a buffer list (the PDU size it carries). *)

val coalesce : t list -> t list
(** Merge physically adjacent buffers ([a.addr + a.len = b.addr]) in a list,
    preserving order. This is what a driver does to minimize descriptor
    count when luck (or a contiguous allocator) gives adjacent frames. *)

val ends_at_page_boundary : t -> page_size:int -> bool
(** Does the buffer end exactly on a page boundary? The modified OSIRIS DMA
    controller (paper §2.5.2) requires every buffer of a PDU except the last
    to satisfy this. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
