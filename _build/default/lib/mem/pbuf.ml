type t = { addr : int; len : int }

let v ~addr ~len =
  if len <= 0 then invalid_arg "Pbuf.v: non-positive length";
  if addr < 0 then invalid_arg "Pbuf.v: negative address";
  { addr; len }

let last b = b.addr + b.len

let split b ~at =
  if at <= 0 || at >= b.len then invalid_arg "Pbuf.split: cut out of range";
  ({ addr = b.addr; len = at }, { addr = b.addr + at; len = b.len - at })

let total_len bufs = List.fold_left (fun acc b -> acc + b.len) 0 bufs

let rec coalesce = function
  | a :: b :: rest when a.addr + a.len = b.addr ->
      coalesce ({ addr = a.addr; len = a.len + b.len } :: rest)
  | a :: rest -> a :: coalesce rest
  | [] -> []

let ends_at_page_boundary b ~page_size = (b.addr + b.len) mod page_size = 0

let pp fmt b = Format.fprintf fmt "[%#x,+%d)" b.addr b.len

let equal a b = a.addr = b.addr && a.len = b.len
