(** A period-correct Ethernet adaptor and driver, as the latency baseline.

    The paper's §4 grounds Table 1 by noting that OSIRIS's 1-byte
    round-trip latencies are "comparable to — and in fact, a bit better
    than — those obtained when using the machines' Ethernet adaptors under
    otherwise identical conditions". This module models that comparator: a
    LANCE-style 10 Mb/s Ethernet interface with descriptor rings, one
    interrupt per received frame (no coalescing), a driver that copies each
    frame into a fresh kernel buffer (the classic non-zero-copy path), and
    a 1500-byte MTU with driver-level chunking for larger test messages.

    The model is deliberately simpler than the OSIRIS one — no cell
    framing, no striping — because it only has to reproduce the latency
    and throughput character of mid-90s Ethernet: ~10 Mb/s on the wire, a
    per-frame interrupt tax, and a copy on every receive. *)

type config = {
  wire_bps : int;  (** 10 Mb/s *)
  frame_overhead : int;  (** preamble + header + FCS + gap, in bytes *)
  mtu : int;  (** payload bytes per frame (1500) *)
  min_frame_payload : int;  (** short frames are padded (46) *)
  ring_slots : int;  (** receive descriptor ring size *)
  copy_cycles_per_word : int;  (** driver receive-copy cost *)
  rx_frame_cost : Osiris_sim.Time.t;  (** driver work per received frame *)
  rx_message_cost : Osiris_sim.Time.t;
      (** delivery work per reassembled message (comparable to the OSIRIS
          driver's per-PDU cost, so Table 1's "identical conditions"
          comparison is fair) *)
}

val default_config : config

type t

val create :
  Osiris_sim.Engine.t ->
  cpu:Osiris_os.Cpu.t ->
  bus:Osiris_bus.Turbochannel.t ->
  irq:Osiris_os.Irq.t ->
  irq_line:int ->
  config ->
  t
(** An interface on a host. Frames are DMA'd across the same I/O bus model
    the OSIRIS board uses; every received frame raises [irq_line]. *)

val connect : t -> t -> unit
(** Attach two interfaces to one (full-duplex point-to-point) wire. The
    real thing was half-duplex CSMA/CD; with exactly two stations and
    request/response traffic the difference is negligible and is
    documented in DESIGN.md. *)

val send : t -> Bytes.t -> unit
(** Transmit a message, chunked into MTU-sized frames; blocks the calling
    process for queueing costs and transmit-ring backpressure. *)

val set_receiver : t -> (Bytes.t -> unit) -> unit
(** Upcall invoked (from the driver's receive path, after the per-frame
    interrupt and the copy) with each reassembled message. *)

type stats = {
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable interrupts : int;
  mutable bytes_copied : int;
  mutable ring_drops : int;
}

val stats : t -> stats
