lib/ether/ether.mli: Bytes Osiris_bus Osiris_os Osiris_sim
