lib/ether/ether.ml: Bytes Engine List Mailbox Osiris_bus Osiris_os Osiris_sim Process Time
