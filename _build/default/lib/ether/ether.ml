open Osiris_sim
module Cpu = Osiris_os.Cpu
module Irq = Osiris_os.Irq
module Tc = Osiris_bus.Turbochannel

type config = {
  wire_bps : int;
  frame_overhead : int;
  mtu : int;
  min_frame_payload : int;
  ring_slots : int;
  copy_cycles_per_word : int;
  rx_frame_cost : Time.t;
  rx_message_cost : Time.t;
}

let default_config =
  {
    wire_bps = 10_000_000;
    (* preamble 8 + header 14 + FCS 4 + interframe gap 12 *)
    frame_overhead = 38;
    mtu = 1500;
    min_frame_payload = 46;
    ring_slots = 32;
    copy_cycles_per_word = 3;
    rx_frame_cost = Time.us 25;
    rx_message_cost = Time.us 20;
  }

(* A frame on the wire: payload plus "last fragment of message" marker
   (driver-level chunking for test messages above the MTU). *)
type frame = { payload : Bytes.t; last : bool }

type stats = {
  mutable frames_sent : int;
  mutable frames_received : int;
  mutable interrupts : int;
  mutable bytes_copied : int;
  mutable ring_drops : int;
}

type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  bus : Tc.t;
  irq : Irq.t;
  irq_line : int;
  cfg : config;
  ring : frame Mailbox.t; (* receive descriptor ring *)
  mutable wire_busy_until : Time.t; (* shared with the peer *)
  mutable peer : t option;
  mutable receiver : Bytes.t -> unit;
  mutable reassembly : Bytes.t list; (* chunks of the message in flight *)
  stats : stats;
}

let create eng ~cpu ~bus ~irq ~irq_line cfg =
  let t =
    {
      eng;
      cpu;
      bus;
      irq;
      irq_line;
      cfg;
      ring = Mailbox.create eng ~capacity:cfg.ring_slots ();
      wire_busy_until = 0;
      peer = None;
      receiver = ignore;
      reassembly = [];
      stats =
        {
          frames_sent = 0;
          frames_received = 0;
          interrupts = 0;
          bytes_copied = 0;
          ring_drops = 0;
        };
    }
  in
  (* The driver's receive thread: woken per frame by the interrupt, copies
     the frame out of the DMA buffer into a fresh kernel buffer (the
     classic non-zero-copy path), reassembles chunked messages. *)
  Irq.register irq ~line:irq_line ~name:"ether" (fun () ->
      t.stats.interrupts <- t.stats.interrupts + 1);
  Process.spawn eng ~name:"ether-rx" (fun () ->
      let rec loop () =
        let f = Mailbox.recv t.ring in
        t.stats.frames_received <- t.stats.frames_received + 1;
        (* copy out of the receive buffer *)
        let words = (Bytes.length f.payload + 3) / 4 in
        Cpu.consume t.cpu t.cfg.rx_frame_cost;
        Cpu.consume t.cpu
          (Cpu.cycles_ns t.cpu (words * t.cfg.copy_cycles_per_word));
        t.stats.bytes_copied <- t.stats.bytes_copied + Bytes.length f.payload;
        t.reassembly <- f.payload :: t.reassembly;
        if f.last then begin
          let msg = Bytes.concat Bytes.empty (List.rev t.reassembly) in
          t.reassembly <- [];
          Cpu.consume t.cpu t.cfg.rx_message_cost;
          t.receiver msg
        end;
        loop ()
      in
      loop ());
  t

let connect a b =
  a.peer <- Some b;
  b.peer <- Some a

let set_receiver t f = t.receiver <- f

let stats t = t.stats

let wire_time t bytes =
  let on_wire = max bytes t.cfg.min_frame_payload + t.cfg.frame_overhead in
  on_wire * 8 * 1_000_000_000 / t.cfg.wire_bps

(* Transmit one frame: DMA it from host memory across the I/O bus, then
   serialize it on the (shared, but effectively point-to-point) wire. *)
let send_frame t frame =
  let peer =
    match t.peer with
    | Some p -> p
    | None -> failwith "Ether.send: interface not connected"
  in
  Tc.dma_read t.bus ~bytes:(Bytes.length frame.payload);
  let now = Engine.now t.eng in
  let start = max now t.wire_busy_until in
  let finish = start + wire_time t (Bytes.length frame.payload) in
  t.wire_busy_until <- finish;
  peer.wire_busy_until <- finish;
  t.stats.frames_sent <- t.stats.frames_sent + 1;
  if start > now then Process.sleep t.eng (start - now);
  ignore
    (Engine.schedule_at t.eng ~time:finish (fun () ->
         (* DMA into the peer's receive buffer, then the per-frame
            interrupt (no coalescing on this hardware). *)
         Process.spawn peer.eng ~name:"ether-rx-dma" (fun () ->
             Tc.dma_write peer.bus ~bytes:(Bytes.length frame.payload);
             if Mailbox.try_send peer.ring frame then
               Irq.assert_line peer.irq ~line:peer.irq_line
             else peer.stats.ring_drops <- peer.stats.ring_drops + 1)))

let send t msg =
  (* Driver queueing cost per message, then chunk at the MTU. *)
  Cpu.consume t.cpu (Time.us 15);
  let len = Bytes.length msg in
  let nframes = max 1 ((len + t.cfg.mtu - 1) / t.cfg.mtu) in
  for i = 0 to nframes - 1 do
    let off = i * t.cfg.mtu in
    let chunk = min t.cfg.mtu (len - off) in
    send_frame t
      { payload = Bytes.sub msg off (max chunk 0); last = i = nframes - 1 }
  done
