lib/fbufs/fbufs.ml: Engine Hashtbl List Osiris_mem Osiris_os Osiris_sim Queue Time
