lib/fbufs/fbufs.mli: Osiris_mem Osiris_os Osiris_sim
