(** Fast buffers (fbufs): cached cross-domain buffer transfer (paper §3.1).

    An fbuf is a network buffer that must traverse a sequence of protection
    domains (driver → protocol server → application). Two transfer regimes
    exist:

    - {e cached}: the fbuf comes from a pool whose pages are already mapped
      into every domain of its {e path}; transferring it costs only a
      pointer hand-off.
    - {e uncached}: the fbuf's pages must be remapped into each receiving
      domain as the data moves up, and unmapped afterwards, paying VM and
      TLB costs per page per domain.

    The allocator keeps preallocated cached pools for the [max_cached_paths]
    most recently used paths (the paper uses 16), evicting the
    least-recently-used path's pool when a new path appears. Early
    demultiplexing on the adaptor is what makes this work: the board learns
    (VCI → path) and can place incoming data in a buffer that is already
    mapped end-to-end. *)

type costs = {
  cached_transfer : Osiris_sim.Time.t;
      (** hand-off of an already-mapped fbuf, per domain crossing *)
  remap_per_page : Osiris_sim.Time.t;
      (** map one page into one domain (uncached path) *)
  unmap_per_page : Osiris_sim.Time.t;
  alloc_cost : Osiris_sim.Time.t;  (** allocate/clear a fresh uncached fbuf *)
}

val default_costs : costs
(** Mach VM costs calibrated so cached/uncached differ by roughly an order
    of magnitude for a 16 KB buffer, as the paper reports. *)

type t
type fbuf

val create :
  Osiris_os.Cpu.t ->
  Osiris_mem.Vspace.t ->
  costs ->
  max_cached_paths:int ->
  bufs_per_path:int ->
  buf_size:int ->
  t

val get : t -> path:int -> fbuf
(** Take a buffer for the given path: from its cached pool when the path is
    hot and the pool non-empty, else an uncached buffer (paying
    [alloc_cost]). Using a path refreshes its LRU position and may evict
    another path's pool. *)

val vaddr : fbuf -> int
val size : fbuf -> int
val is_cached : fbuf -> bool

val transfer : t -> fbuf -> domains:int -> Osiris_sim.Time.t
(** Move the fbuf across [domains] protection-domain boundaries, charging
    the appropriate costs on the CPU; returns the simulated time it took
    (for reporting). *)

val release : t -> fbuf -> unit
(** Return the buffer: cached fbufs go back to their path's pool (if it
    still exists); uncached fbufs pay the unmap cost and are freed. *)

type stats = {
  mutable cached_gets : int;
  mutable uncached_gets : int;
  mutable evictions : int;
  mutable transfers : int;
}

val stats : t -> stats

val cached_paths : t -> int list
(** Currently cached paths, most recently used first. *)
