open Osiris_sim
module Cpu = Osiris_os.Cpu
module Vspace = Osiris_mem.Vspace

type costs = {
  cached_transfer : Time.t;
  remap_per_page : Time.t;
  unmap_per_page : Time.t;
  alloc_cost : Time.t;
}

let default_costs =
  {
    cached_transfer = Time.us 20;
    remap_per_page = Time.us 60;
    unmap_per_page = Time.us 30;
    alloc_cost = Time.us 100;
  }

type fbuf = { vaddr : int; len : int; path : int option }

type pool = { path : int; bufs : int Queue.t; mutable last_use : int }

type stats = {
  mutable cached_gets : int;
  mutable uncached_gets : int;
  mutable evictions : int;
  mutable transfers : int;
}

type t = {
  cpu : Cpu.t;
  vs : Vspace.t;
  costs : costs;
  max_cached_paths : int;
  bufs_per_path : int;
  buf_size : int;
  pools : (int, pool) Hashtbl.t;
  mutable clock : int; (* LRU tick *)
  stats : stats;
}

let create cpu vs costs ~max_cached_paths ~bufs_per_path ~buf_size =
  if max_cached_paths < 1 || bufs_per_path < 1 || buf_size < 1 then
    invalid_arg "Fbufs.create";
  {
    cpu;
    vs;
    costs;
    max_cached_paths;
    bufs_per_path;
    buf_size;
    pools = Hashtbl.create 16;
    clock = 0;
    stats =
      { cached_gets = 0; uncached_gets = 0; evictions = 0; transfers = 0 };
  }

let vaddr (f : fbuf) = f.vaddr
let size (f : fbuf) = f.len
let is_cached (f : fbuf) = f.path <> None

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ p acc ->
        match acc with
        | None -> Some p
        | Some q -> if p.last_use < q.last_use then Some p else Some q)
      t.pools None
  in
  match victim with
  | None -> ()
  | Some p ->
      Queue.iter (fun v -> Vspace.free t.vs v) p.bufs;
      Hashtbl.remove t.pools p.path;
      t.stats.evictions <- t.stats.evictions + 1

(* Build (or refresh) the cached pool for a path. Creating a pool is the
   moment its pages get mapped into every domain of the path; that cost is
   paid once and amortized, so we charge it as one batch of remaps. *)
let ensure_pool t ~path =
  match Hashtbl.find_opt t.pools path with
  | Some p ->
      p.last_use <- tick t;
      Some p
  | None ->
      if Hashtbl.length t.pools >= t.max_cached_paths then evict_lru t;
      let bufs = Queue.create () in
      for _ = 1 to t.bufs_per_path do
        Queue.add (Vspace.alloc t.vs ~len:t.buf_size) bufs
      done;
      let pages_per_buf =
        (t.buf_size + Vspace.page_size t.vs - 1) / Vspace.page_size t.vs
      in
      Cpu.consume t.cpu
        (t.bufs_per_path * pages_per_buf * t.costs.remap_per_page);
      let p = { path; bufs; last_use = tick t } in
      Hashtbl.replace t.pools path p;
      Some p

let get t ~path =
  match ensure_pool t ~path with
  | Some p when not (Queue.is_empty p.bufs) ->
      t.stats.cached_gets <- t.stats.cached_gets + 1;
      { vaddr = Queue.take p.bufs; len = t.buf_size; path = Some path }
  | _ ->
      (* Pool exhausted (or uncreatable): fall back to an uncached fbuf. *)
      t.stats.uncached_gets <- t.stats.uncached_gets + 1;
      Cpu.consume t.cpu t.costs.alloc_cost;
      { vaddr = Vspace.alloc t.vs ~len:t.buf_size; len = t.buf_size;
        path = None }

let transfer t (f : fbuf) ~domains =
  t.stats.transfers <- t.stats.transfers + 1;
  let eng = Cpu.engine t.cpu in
  let started = Engine.now eng in
  let pages = (f.len + Vspace.page_size t.vs - 1) / Vspace.page_size t.vs in
  (match f.path with
  | Some _ -> Cpu.consume t.cpu (domains * t.costs.cached_transfer)
  | None ->
      Cpu.consume t.cpu (domains * pages * t.costs.remap_per_page));
  Engine.now eng - started

let release t (f : fbuf) =
  match f.path with
  | Some path -> (
      match Hashtbl.find_opt t.pools path with
      | Some p -> Queue.add f.vaddr p.bufs
      | None -> Vspace.free t.vs f.vaddr (* pool was evicted meanwhile *))
  | None ->
      let pages =
        (f.len + Vspace.page_size t.vs - 1) / Vspace.page_size t.vs
      in
      Cpu.consume t.cpu (pages * t.costs.unmap_per_page);
      Vspace.free t.vs f.vaddr

let stats t = t.stats

let cached_paths t =
  Hashtbl.fold (fun path p acc -> (path, p.last_use) :: acc) t.pools []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
