(** UDP with optional data checksumming and the lazy cache-invalidation
    receive discipline.

    The paper's §4 experiments turn UDP checksumming on and off: with it
    off, received data is never touched by the CPU (so receive throughput is
    bus-limited); with it on, every word is read through the data cache,
    which on the DECstation collapses throughput to ~80 Mb/s (memory
    bandwidth) and on the Alpha costs about 15%.

    The checksum is also the end-to-end error check that makes lazy cache
    invalidation (§2.3) safe: when verification fails, the receive path
    invalidates the message's cache lines and re-verifies before declaring
    the datagram corrupt; a success on the second try means the failure was
    stale cache data, not a wire error, and the datagram is delivered. *)

val header_size : int
(** 8 bytes. *)

val protocol_number : int
(** 17, the IP protocol field value. *)

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable checksum_errors : int;  (** dropped: bad after invalidation *)
  mutable stale_recoveries : int;
      (** failures cured by lazy invalidation + re-verify *)
  mutable no_port_drops : int;
}

type t

val create : Ctx.t -> checksum:bool -> ip:Ip.t -> t
(** [checksum] controls data checksumming in both directions ("UDP-CS" in
    the figures). The host assembly must route IP protocol 17 datagrams to
    {!input}. *)

val input : t -> src:Ip.addr -> Osiris_xkernel.Msg.t -> unit
(** Receive one datagram from IP. Takes ownership of [msg]. *)

val set_checksum : t -> bool -> unit

val bind : t -> port:int -> (src:Ip.addr -> src_port:int -> Osiris_xkernel.Msg.t -> unit) -> unit
(** Register the receiver for a local port. The receiver owns the message
    and must dispose it. *)

val unbind : t -> port:int -> unit

val output :
  t -> dst:Ip.addr -> src_port:int -> dst_port:int -> Osiris_xkernel.Msg.t -> unit
(** Prepend the UDP header (checksumming the payload if enabled) and hand
    to IP. Caller keeps ownership of [msg]. *)

val stats : t -> stats

val datagram_image :
  src_port:int -> dst_port:int -> checksum:bool -> Bytes.t -> Bytes.t
(** Pure helper: the on-the-wire datagram (header + payload), optionally
    checksummed, for the fictitious-PDU generator. *)
