module Msg = Osiris_xkernel.Msg
module Cpu = Osiris_os.Cpu
module Checksum = Osiris_util.Checksum

type addr = int32

let header_size = 20

type config = { mtu : int; aligned_mtu : bool }

let default_config = { mtu = 16 * 1024; aligned_mtu = true }

let fragment_data_size cfg ~page_size =
  let raw = cfg.mtu - header_size in
  let d =
    if cfg.aligned_mtu && raw >= page_size then raw / page_size * page_size
    else raw
  in
  max 8 (d / 8 * 8)

type stats = {
  mutable datagrams_sent : int;
  mutable fragments_sent : int;
  mutable fragments_received : int;
  mutable datagrams_delivered : int;
  mutable header_checksum_errors : int;
  mutable reassembly_drops : int;
}

type reasm = {
  mutable frags : (int * int * Msg.t) list; (* (off, len, payload view) *)
  mutable holders : Msg.t list; (* original messages to dispose *)
  mutable total : int; (* -1 until the last fragment arrives *)
  mutable got : int;
  mutable last_arrival : int; (* fragment-counter timestamp, for eviction *)
}

type t = {
  ctx : Ctx.t;
  cfg : config;
  src : addr;
  page_size : int;
  send : Msg.t -> unit;
  deliver : proto:int -> src:addr -> Msg.t -> unit;
  table : (addr * int, reasm) Hashtbl.t;
  mutable next_id : int;
  mutable arrival_clock : int;
  max_partial : int;
  stats : stats;
}

let create ctx cfg ~src ~page_size ~send ~deliver =
  {
    ctx;
    cfg;
    src;
    page_size;
    send;
    deliver;
    table = Hashtbl.create 16;
    next_id = 1;
    arrival_clock = 0;
    max_partial = 8;
    stats =
      {
        datagrams_sent = 0;
        fragments_sent = 0;
        fragments_received = 0;
        datagrams_delivered = 0;
        header_checksum_errors = 0;
        reassembly_drops = 0;
      };
  }

let build_header ~total_len ~id ~off ~more ~ttl ~proto ~src ~dst b =
  Bytes.set b 0 '\x45';
  (* Footnote 5: IP and UDP were "modified to support message sizes larger
     than 64KB". The fragment offset's high bits overflow into the (unused)
     TOS byte, extending the offset space to 2^21 8-byte units. *)
  let units = off / 8 in
  Bytes.set b 1 (Char.chr ((units lsr 13) land 0xff));
  Bytes.set_uint16_be b 2 total_len;
  Bytes.set_uint16_be b 4 id;
  let frag_field = (units land 0x1fff) lor (if more then 0x2000 else 0) in
  Bytes.set_uint16_be b 6 frag_field;
  Bytes.set b 8 (Char.chr ttl);
  Bytes.set b 9 (Char.chr proto);
  Bytes.set_uint16_be b 10 0;
  Bytes.set_int32_be b 12 src;
  Bytes.set_int32_be b 16 dst;
  Bytes.set_uint16_be b 10 (Checksum.compute b ~off:0 ~len:header_size)

let output t ~dst ~proto msg =
  let len = Msg.length msg in
  let id = t.next_id land 0xffff in
  t.next_id <- t.next_id + 1;
  let per_frag = fragment_data_size t.cfg ~page_size:t.page_size in
  t.stats.datagrams_sent <- t.stats.datagrams_sent + 1;
  let rec go off =
    if off < len then begin
      let chunk = min per_frag (len - off) in
      let more = off + chunk < len in
      Cpu.consume t.ctx.Ctx.cpu t.ctx.Ctx.costs.Ctx.ip_output_per_fragment;
      let frag = Msg.sub msg ~off ~len:chunk in
      Msg.push frag ~len:header_size
        (build_header ~total_len:(header_size + chunk) ~id ~off ~more ~ttl:32
           ~proto ~src:t.src ~dst);
      t.stats.fragments_sent <- t.stats.fragments_sent + 1;
      t.send frag;
      go (off + chunk)
    end
  in
  go 0

let fragment_images ?(id = 0x1234) cfg ~page_size ~src ~dst ~proto payload =
  let len = Bytes.length payload in
  let per_frag = fragment_data_size cfg ~page_size in
  let rec go off acc =
    if off >= len then List.rev acc
    else begin
      let chunk = min per_frag (len - off) in
      let more = off + chunk < len in
      let img = Bytes.create (header_size + chunk) in
      let hdr = Bytes.create header_size in
      build_header ~total_len:(header_size + chunk) ~id ~off ~more ~ttl:32
        ~proto ~src ~dst hdr;
      Bytes.blit hdr 0 img 0 header_size;
      Bytes.blit payload off img header_size chunk;
      go (off + chunk) (img :: acc)
    end
  in
  go 0 []

let try_complete t key r =
  if r.total >= 0 then begin
    let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) r.frags in
    let covered =
      let rec go expect = function
        | [] -> expect
        | (off, len, _) :: rest ->
            if off <> expect then -1
            else
              let e = go (expect + len) rest in
              e
      in
      go 0 sorted
    in
    if covered = r.total then begin
      Hashtbl.remove t.table key;
      let segs =
        List.concat_map (fun (_, _, view) -> Msg.segs view) sorted
      in
      let dg =
        match sorted with
        | (_, _, first) :: _ -> Msg.of_segs (Msg.vspace first) segs
        | [] -> assert false
      in
      let holders = r.holders in
      Msg.add_finalizer dg (fun () -> List.iter Msg.dispose holders);
      t.stats.datagrams_delivered <- t.stats.datagrams_delivered + 1;
      Some dg
    end
    else None
  end
  else None

let input t msg =
  t.stats.fragments_received <- t.stats.fragments_received + 1;
  Cpu.consume t.ctx.Ctx.cpu t.ctx.Ctx.costs.Ctx.ip_input_per_fragment;
  if Msg.length msg < header_size then begin
    t.stats.header_checksum_errors <- t.stats.header_checksum_errors + 1;
    Msg.dispose msg
  end
  else begin
    (* Header parse: a real CPU read, through the cache. *)
    let hdr = Ctx.read_through_cache t.ctx msg ~off:0 ~len:header_size in
    if not (Checksum.verify hdr ~off:0 ~len:header_size) then begin
      t.stats.header_checksum_errors <- t.stats.header_checksum_errors + 1;
      (* Lazy-invalidation discipline (§2.3): on error, invalidate and
         re-read before declaring the fragment bad. *)
      Ctx.invalidate_msg t.ctx msg ~off:0 ~len:header_size;
      let hdr2 = Ctx.read_through_cache t.ctx msg ~off:0 ~len:header_size in
      if not (Checksum.verify hdr2 ~off:0 ~len:header_size) then begin
        Msg.dispose msg;
        raise Exit
      end
    end;
    let hdr = Ctx.read_through_cache t.ctx msg ~off:0 ~len:header_size in
    let total_len = Bytes.get_uint16_be hdr 2 in
    let id = Bytes.get_uint16_be hdr 4 in
    let frag_field = Bytes.get_uint16_be hdr 6 in
    let hi = Char.code (Bytes.get hdr 1) in
    let off = ((frag_field land 0x1fff) lor (hi lsl 13)) * 8 in
    let more = frag_field land 0x2000 <> 0 in
    let proto = Char.code (Bytes.get hdr 9) in
    let src = Bytes.get_int32_be hdr 12 in
    let data_len = total_len - header_size in
    if data_len < 0 || header_size + data_len > Msg.length msg then begin
      (* Malformed: the length field disagrees with the delivered PDU. *)
      Osiris_sim.Trace.emitf Osiris_sim.Trace.Protocol
        ~now:(Osiris_sim.Engine.now (Osiris_os.Cpu.engine t.ctx.Ctx.cpu))
        "ip: bad fragment total_len=%d msg_len=%d id=%d off=%d more=%b"
        total_len (Msg.length msg) id off more;
      t.stats.header_checksum_errors <- t.stats.header_checksum_errors + 1;
      Msg.dispose msg;
      raise Exit
    end;
    let payload = Msg.sub msg ~off:header_size ~len:data_len in
    let key = (src, id) in
    t.arrival_clock <- t.arrival_clock + 1;
    let r =
      match Hashtbl.find_opt t.table key with
      | Some r -> r
      | None ->
          (* Bounded reassembly state: when the table is full (fragments
             lost under overload never complete), evict the stalest
             partial datagram and release its buffers. *)
          if Hashtbl.length t.table >= t.max_partial then begin
            let victim =
              Hashtbl.fold
                (fun k r acc ->
                  match acc with
                  | Some (_, v) when v.last_arrival <= r.last_arrival -> acc
                  | _ -> Some (k, r))
                t.table None
            in
            match victim with
            | Some (k, v) ->
                Hashtbl.remove t.table k;
                List.iter Msg.dispose v.holders;
                t.stats.reassembly_drops <- t.stats.reassembly_drops + 1
            | None -> ()
          end;
          let r =
            { frags = []; holders = []; total = -1; got = 0; last_arrival = 0 }
          in
          Hashtbl.replace t.table key r;
          r
    in
    r.last_arrival <- t.arrival_clock;
    (* Duplicate fragments (retransmission, or ID reuse under loss) replace
       nothing: keep the first copy and drop the newcomer. *)
    if List.exists (fun (o, _, _) -> o = off) r.frags then begin
      Msg.dispose msg;
      raise Exit
    end;
    r.frags <- (off, data_len, payload) :: r.frags;
    r.holders <- msg :: r.holders;
    r.got <- r.got + data_len;
    if not more then r.total <- off + data_len;
    match try_complete t key r with
    | Some dg -> t.deliver ~proto ~src dg
    | None -> ()
  end

let input t msg = try input t msg with Exit -> ()

let stats t = t.stats
let partial_reassemblies t = Hashtbl.length t.table
