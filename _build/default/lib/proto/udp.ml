module Msg = Osiris_xkernel.Msg
module Cpu = Osiris_os.Cpu
module Checksum = Osiris_util.Checksum

let header_size = 8
let protocol_number = 17

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable checksum_errors : int;
  mutable stale_recoveries : int;
  mutable no_port_drops : int;
}

type t = {
  ctx : Ctx.t;
  mutable checksum : bool;
  ip : Ip.t;
  ports : (int, src:Ip.addr -> src_port:int -> Msg.t -> unit) Hashtbl.t;
  stats : stats;
}

(* Parse the header and verify the data checksum, reading everything
   through the cache. *)
let parse_and_verify t msg =
  let hdr = Ctx.read_through_cache t.ctx msg ~off:0 ~len:header_size in
  let src_port = Bytes.get_uint16_be hdr 0 in
  let dst_port = Bytes.get_uint16_be hdr 2 in
  (* Length field 0 marks a large datagram (> 64 KB): the paper's UDP was
     "modified to support message sizes larger than 64 KB" (footnote 5);
     the real length then comes from the IP datagram. *)
  let field = Bytes.get_uint16_be hdr 4 in
  let dlen =
    if field = 0 then Msg.length msg - header_size else field - header_size
  in
  let cks = Bytes.get_uint16_be hdr 6 in
  let dlen = min dlen (Msg.length msg - header_size) in
  let ok =
    if cks = 0 || not t.checksum then true
    else begin
      let sum = Ctx.checksum_msg t.ctx msg ~off:header_size ~len:dlen in
      Checksum.finish sum = cks || (cks = 0xffff && sum = 0xffff)
    end
  in
  (src_port, dst_port, dlen, ok)

let input t ~src msg =
  Cpu.consume t.ctx.Ctx.cpu t.ctx.Ctx.costs.Ctx.udp_input;
  if Msg.length msg < header_size then Msg.dispose msg
  else begin
    let (src_port, dst_port, dlen, ok) = parse_and_verify t msg in
    let (src_port, dst_port, dlen, verdict) =
      if ok then (src_port, dst_port, dlen, `Ok)
      else begin
        (* Lazy cache invalidation (§2.3): assume stale cache data,
           invalidate the whole datagram's lines — header included, since
           the checksum field itself may be stale — and re-evaluate before
           declaring an error. *)
        Ctx.invalidate_msg t.ctx msg ~off:0 ~len:(Msg.length msg);
        let (sp, dp, dl, ok2) = parse_and_verify t msg in
        if ok2 then begin
          t.stats.stale_recoveries <- t.stats.stale_recoveries + 1;
          (sp, dp, dl, `Ok)
        end
        else (sp, dp, dl, `Bad)
      end
    in
    ignore src_port;
    match verdict with
    | `Bad ->
        t.stats.checksum_errors <- t.stats.checksum_errors + 1;
        Msg.dispose msg
    | `Ok -> (
        match Hashtbl.find_opt t.ports dst_port with
        | None ->
            t.stats.no_port_drops <- t.stats.no_port_drops + 1;
            Msg.dispose msg
        | Some receiver ->
            let payload = Msg.sub msg ~off:header_size ~len:dlen in
            Msg.add_finalizer payload (fun () -> Msg.dispose msg);
            t.stats.delivered <- t.stats.delivered + 1;
            receiver ~src ~src_port payload)
  end

let create ctx ~checksum ~ip =
  let t =
    {
      ctx;
      checksum;
      ip;
      ports = Hashtbl.create 16;
      stats =
        {
          sent = 0;
          delivered = 0;
          checksum_errors = 0;
          stale_recoveries = 0;
          no_port_drops = 0;
        };
    }
  in
  t

let set_checksum t on = t.checksum <- on

let bind t ~port receiver =
  if Hashtbl.mem t.ports port then invalid_arg "Udp.bind: port in use";
  Hashtbl.replace t.ports port receiver

let unbind t ~port = Hashtbl.remove t.ports port

let output t ~dst ~src_port ~dst_port msg =
  Cpu.consume t.ctx.Ctx.cpu t.ctx.Ctx.costs.Ctx.udp_output;
  let dlen = Msg.length msg in
  let cks =
    if not t.checksum then 0
    else begin
      let sum = Ctx.checksum_msg t.ctx msg ~off:0 ~len:dlen in
      let v = Checksum.finish sum in
      if v = 0 then 0xffff else v
    end
  in
  let field = if header_size + dlen > 0xffff then 0 else header_size + dlen in
  Msg.push msg ~len:header_size (fun b ->
      Bytes.set_uint16_be b 0 src_port;
      Bytes.set_uint16_be b 2 dst_port;
      Bytes.set_uint16_be b 4 field;
      Bytes.set_uint16_be b 6 cks);
  t.stats.sent <- t.stats.sent + 1;
  Ip.output t.ip ~dst ~proto:protocol_number msg

let stats t = t.stats

let datagram_image ~src_port ~dst_port ~checksum payload =
  let dlen = Bytes.length payload in
  let img = Bytes.create (header_size + dlen) in
  let cks =
    if not checksum then 0
    else begin
      let sum = Checksum.ones_complement_sum payload ~off:0 ~len:dlen in
      let v = Checksum.finish sum in
      if v = 0 then 0xffff else v
    end
  in
  let field = if header_size + dlen > 0xffff then 0 else header_size + dlen in
  Bytes.set_uint16_be img 0 src_port;
  Bytes.set_uint16_be img 2 dst_port;
  Bytes.set_uint16_be img 4 field;
  Bytes.set_uint16_be img 6 cks;
  Bytes.blit payload 0 img header_size dlen;
  img
