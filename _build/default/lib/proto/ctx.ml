open Osiris_sim
module Cpu = Osiris_os.Cpu
module Cache = Osiris_cache.Data_cache
module Msg = Osiris_xkernel.Msg
module Pbuf = Osiris_mem.Pbuf
module Checksum = Osiris_util.Checksum

type costs = {
  ip_output_per_fragment : Time.t;
  ip_input_per_fragment : Time.t;
  udp_output : Time.t;
  udp_input : Time.t;
  checksum_cycles_per_word : int;
}

let default_costs =
  {
    ip_output_per_fragment = Time.us 35;
    ip_input_per_fragment = Time.us 30;
    udp_output = Time.us 45;
    udp_input = Time.us 40;
    checksum_cycles_per_word = 3;
  }

type t = { cpu : Cpu.t; cache : Cache.t; costs : costs }

let create ~cpu ~cache costs = { cpu; cache; costs }

let range_pbufs msg ~off ~len = Msg.pbufs (Msg.sub msg ~off ~len)

let read_through_cache t msg ~off ~len =
  let out = Bytes.create len in
  Cpu.with_held t.cpu (fun () ->
      let pos = ref 0 in
      List.iter
        (fun (b : Pbuf.t) ->
          Cache.read_into t.cache ~addr:b.Pbuf.addr ~len:b.Pbuf.len ~dst:out
            ~dst_off:!pos;
          pos := !pos + b.Pbuf.len)
        (range_pbufs msg ~off ~len));
  out

let checksum_msg t msg ~off ~len =
  let data = read_through_cache t msg ~off ~len in
  let words = (len + 3) / 4 in
  Cpu.consume_cycles t.cpu (words * t.costs.checksum_cycles_per_word);
  Checksum.ones_complement_sum data ~off:0 ~len

let invalidate_msg t msg ~off ~len =
  Cpu.with_held t.cpu (fun () ->
      List.iter
        (fun (b : Pbuf.t) ->
          Cache.invalidate t.cache ~addr:b.Pbuf.addr ~len:b.Pbuf.len)
        (range_pbufs msg ~off ~len))
