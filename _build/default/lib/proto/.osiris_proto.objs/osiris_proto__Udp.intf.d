lib/proto/udp.mli: Bytes Ctx Ip Osiris_xkernel
