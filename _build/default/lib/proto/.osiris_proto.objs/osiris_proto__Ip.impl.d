lib/proto/ip.ml: Bytes Char Ctx Hashtbl List Osiris_os Osiris_sim Osiris_util Osiris_xkernel
