lib/proto/ctx.mli: Bytes Osiris_cache Osiris_os Osiris_sim Osiris_xkernel
