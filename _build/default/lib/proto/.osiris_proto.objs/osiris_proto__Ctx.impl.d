lib/proto/ctx.ml: Bytes List Osiris_cache Osiris_mem Osiris_os Osiris_sim Osiris_util Osiris_xkernel Time
