lib/proto/ip.mli: Bytes Ctx Osiris_xkernel
