lib/proto/udp.ml: Bytes Ctx Hashtbl Ip Osiris_os Osiris_util Osiris_xkernel
