(** IP: fragmentation, reassembly, header checksum.

    This is the layer whose interaction with the page-based buffer system
    drives paper §2.2: unless the MTU is chosen as
    [k × page_size + header_size], fragment boundaries fall mid-page and
    every fragment's data straddles two physical pages, inflating the
    physical-buffer count the driver must process (up to 14 buffers for a
    16 KB message with a naive 4 KB MTU). The [aligned_mtu] knob applies
    the paper's fix.

    Fragmentation and reassembly are zero-copy: fragments are views of the
    original message; the reassembled message is the concatenation of the
    fragment views, and disposing it releases every underlying fragment. *)

type addr = int32

val header_size : int
(** 20 bytes. *)

type config = {
  mtu : int;  (** maximum IP datagram size handed to the driver *)
  aligned_mtu : bool;
      (** §2.2 policy: snap the per-fragment data size down to a multiple of
          the page size, so fragment boundaries coincide with page
          boundaries *)
}

val default_config : config
(** 16 KB MTU (the paper's configuration), aligned. *)

val fragment_data_size : config -> page_size:int -> int
(** Bytes of payload each full fragment carries under this configuration
    (always a multiple of 8, as IP requires). *)

type stats = {
  mutable datagrams_sent : int;
  mutable fragments_sent : int;
  mutable fragments_received : int;
  mutable datagrams_delivered : int;
  mutable header_checksum_errors : int;
  mutable reassembly_drops : int;
}

type t

val create :
  Ctx.t ->
  config ->
  src:addr ->
  page_size:int ->
  send:(Osiris_xkernel.Msg.t -> unit) ->
  deliver:(proto:int -> src:addr -> Osiris_xkernel.Msg.t -> unit) ->
  t
(** [send] hands one fragment (header pushed) to the layer below (the
    driver); [deliver] hands one reassembled datagram payload up. *)

val output : t -> dst:addr -> proto:int -> Osiris_xkernel.Msg.t -> unit
(** Fragment (if needed), prepend headers, and send. Charges per-fragment
    CPU cost. The caller keeps ownership of [msg] (fragments are views). *)

val input : t -> Osiris_xkernel.Msg.t -> unit
(** Parse and verify one received fragment; deliver upward when its
    datagram completes. Takes ownership of [msg]. *)

val stats : t -> stats

val partial_reassemblies : t -> int
(** Datagrams currently awaiting fragments (observability). *)

val fragment_images :
  ?id:int ->
  config ->
  page_size:int ->
  src:addr ->
  dst:addr ->
  proto:int ->
  Bytes.t ->
  Bytes.t list
(** Pure helper: the raw on-the-wire fragment images (header + payload
    slice) [output] would produce for this payload. Used by the
    receive-side experiments to program the board's fictitious-PDU
    generator with protocol-valid traffic. *)
