(** Execution context for host protocol code.

    Protocol layers run on the host CPU and touch network data through the
    host's data cache; this record bundles the two together with the
    machine's calibrated per-operation software costs, so each layer can
    charge what the paper says it costs (e.g. the 200 µs UDP/IP service
    time on the DECstation, split across the layers). *)

type costs = {
  ip_output_per_fragment : Osiris_sim.Time.t;
  ip_input_per_fragment : Osiris_sim.Time.t;
  udp_output : Osiris_sim.Time.t;
  udp_input : Osiris_sim.Time.t;
  checksum_cycles_per_word : int;
      (** CPU arithmetic per 32-bit word of checksummed data, on top of the
          cache-modelled load costs *)
}

val default_costs : costs
(** DECstation 5000/200 calibration (see EXPERIMENTS.md). *)

type t = {
  cpu : Osiris_os.Cpu.t;
  cache : Osiris_cache.Data_cache.t;
  costs : costs;
}

val create :
  cpu:Osiris_os.Cpu.t -> cache:Osiris_cache.Data_cache.t -> costs -> t

val read_through_cache : t -> Osiris_xkernel.Msg.t -> off:int -> len:int -> Bytes.t
(** Read part of a message the way the CPU actually would: through the data
    cache, holding the CPU, paying fill costs (and possibly observing stale
    bytes). *)

val checksum_msg : t -> Osiris_xkernel.Msg.t -> off:int -> len:int -> int
(** One's-complement sum of a message range, read through the cache and
    charged per word. This is where stale cache data gets caught — or
    not. *)

val invalidate_msg : t -> Osiris_xkernel.Msg.t -> off:int -> len:int -> unit
(** Explicitly invalidate the cache lines behind a message range (one CPU
    cycle per word, §2.3). *)
