(** The host CPU as a schedulable resource.

    Simulated software costs are expressed as exclusive occupancy of the
    CPU: a thread that "executes" for 200 µs holds the CPU resource for that
    long, delaying other threads. Interrupt handlers acquire at a higher
    priority, so they run ahead of queued thread work (they do not preempt a
    slice already in progress — costs should therefore be consumed in
    reasonably small chunks where preemption latency matters). *)

type t

val create : Osiris_sim.Engine.t -> hz:int -> t

val set_memory_load : t -> (Osiris_sim.Time.t -> unit) -> unit
(** Install a background memory-traffic hook: after every consumed slice of
    duration [d], the hook runs (in process context) and typically performs
    bus transactions proportional to [d]. This models the cache-fill and
    write-back traffic ordinary instruction execution generates, which on a
    shared-bus machine (DECstation 5000/200) contends with DMA — the "main
    memory contention" of paper §4. *)

val hz : t -> int

val engine : t -> Osiris_sim.Engine.t

val cycles_ns : t -> int -> Osiris_sim.Time.t
(** Duration of the given number of CPU cycles, rounded up. *)

val consume : t -> Osiris_sim.Time.t -> unit
(** Execute for the given duration at normal (thread) priority. *)

val consume_prio : t -> priority:int -> Osiris_sim.Time.t -> unit
(** Execute at an explicit scheduling priority (lower runs first; the
    normal thread priority is 10, interrupts run at 0). Prioritized driver
    threads are how the §3.1 priority-traffic discipline maps thread
    priority to traffic priority. *)

val consume_cycles : t -> int -> unit

val consume_interrupt : t -> Osiris_sim.Time.t -> unit
(** Execute at interrupt priority (served before any queued thread work). *)

val with_held : t -> (unit -> 'a) -> 'a
(** Hold the CPU across [f]: use when a code path mixes pure compute with
    memory stalls (cache fills) that must not let other threads in. Inside,
    use {!stall} rather than {!consume}. *)

val stall : t -> Osiris_sim.Time.t -> unit
(** Let simulated time pass without (re)acquiring the CPU — for use inside
    {!with_held} sections or to model stalls accounted elsewhere. *)

val busy_stats : t -> Osiris_sim.Resource.stats
