open Osiris_sim

type policy = Mach_full | Low_level

type costs = {
  mach_fixed : Time.t;
  mach_per_page : Time.t;
  low_fixed : Time.t;
  low_per_page : Time.t;
}

let default_costs =
  {
    mach_fixed = Time.us 80;
    mach_per_page = Time.us 45;
    low_fixed = Time.us 4;
    low_per_page = Time.us 3;
  }

type t = {
  cpu : Cpu.t;
  costs : costs;
  mutable policy : policy;
  mutable calls : int;
}

let create cpu costs policy = { cpu; costs; policy; calls = 0 }

let policy t = t.policy
let set_policy t p = t.policy <- p

let cost_of t ~pages =
  match t.policy with
  | Mach_full -> t.costs.mach_fixed + (pages * t.costs.mach_per_page)
  | Low_level -> t.costs.low_fixed + (pages * t.costs.low_per_page)

let pages_of vs ~vaddr ~len =
  let ps = Osiris_mem.Vspace.page_size vs in
  ((vaddr + len - 1) / ps) - (vaddr / ps) + 1

let wire t vs ~vaddr ~len =
  t.calls <- t.calls + 1;
  Cpu.consume t.cpu (cost_of t ~pages:(pages_of vs ~vaddr ~len));
  Osiris_mem.Vspace.wire vs ~vaddr ~len

let unwire t vs ~vaddr ~len =
  t.calls <- t.calls + 1;
  Cpu.consume t.cpu (cost_of t ~pages:(pages_of vs ~vaddr ~len) / 2);
  Osiris_mem.Vspace.unwire vs ~vaddr ~len

let calls t = t.calls
