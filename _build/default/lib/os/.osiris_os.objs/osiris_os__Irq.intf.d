lib/os/irq.mli: Cpu Osiris_sim
