lib/os/wiring.mli: Cpu Osiris_mem Osiris_sim
