lib/os/cpu.ml: Engine Fun Osiris_sim Process Resource Time
