lib/os/irq.ml: Cpu Engine Hashtbl Osiris_sim Process Time
