lib/os/wiring.ml: Cpu Osiris_mem Osiris_sim Time
