lib/os/cpu.mli: Osiris_sim
