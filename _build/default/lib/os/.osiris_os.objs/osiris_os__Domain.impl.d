lib/os/domain.ml: Format Osiris_mem
