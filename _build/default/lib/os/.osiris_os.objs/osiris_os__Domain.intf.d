lib/os/domain.mli: Format Osiris_mem
