(** Protection domains.

    The host OS is microkernel-shaped (Mach 3.0 with the x-kernel): device
    driver, protocol stacks and applications may live in different
    protection domains, and network data may have to cross several domain
    boundaries on its way to the application — the problem fbufs and ADCs
    attack. A domain owns a virtual address space; crossing into a domain
    (IPC / scheduling) has a cost set by the machine profile. *)

type kind = Kernel | User

type t

val create :
  name:string -> kind:kind -> Osiris_mem.Vspace.t -> t

val name : t -> string
val kind : t -> kind
val vspace : t -> Osiris_mem.Vspace.t

val id : t -> int
(** Unique, stable identifier. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
