type kind = Kernel | User

type t = { id : int; name : string; kind : kind; vspace : Osiris_mem.Vspace.t }

let counter = ref 0

let create ~name ~kind vspace =
  incr counter;
  { id = !counter; name; kind; vspace }

let name t = t.name
let kind t = t.kind
let vspace t = t.vspace
let id t = t.id
let equal a b = a.id = b.id
let pp fmt t =
  Format.fprintf fmt "%s(%s)" t.name
    (match t.kind with Kernel -> "kernel" | User -> "user")
