(** Page wiring service (paper §2.4).

    Before a buffer address is handed to the adaptor for DMA, its pages must
    be wired (pinned). Two implementations are modelled:

    - [Mach_full]: the stock Mach service, which also protects the page
      tables needed to translate the page — much stronger than DMA needs,
      and surprisingly expensive.
    - [Low_level]: the pmap-level operation the authors switched to, which
      only prevents replacement of the page itself.

    Both consume host CPU time per call and per page; the cost constants are
    per-machine calibration inputs. *)

type policy = Mach_full | Low_level

type costs = {
  mach_fixed : Osiris_sim.Time.t;
  mach_per_page : Osiris_sim.Time.t;
  low_fixed : Osiris_sim.Time.t;
  low_per_page : Osiris_sim.Time.t;
}

val default_costs : costs
(** Calibrated for the DECstation 5000/200 (see EXPERIMENTS.md). *)

type t

val create : Cpu.t -> costs -> policy -> t

val policy : t -> policy
val set_policy : t -> policy -> unit

val wire : t -> Osiris_mem.Vspace.t -> vaddr:int -> len:int -> unit
(** Consume the policy's CPU cost and wire the region's pages. *)

val unwire : t -> Osiris_mem.Vspace.t -> vaddr:int -> len:int -> unit
(** Consume half the wire cost and unwire. *)

val cost_of : t -> pages:int -> Osiris_sim.Time.t
(** Closed-form cost of wiring [pages] pages under the current policy. *)

val calls : t -> int
