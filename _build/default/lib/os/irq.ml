open Osiris_sim

type line_state = {
  name : string;
  handler : unit -> unit;
  mutable pending : bool;
  mutable dispatched : int;
}

type t = {
  eng : Engine.t;
  cpu : Cpu.t;
  dispatch_cost : Time.t;
  lines : (int, line_state) Hashtbl.t;
  mutable total : int;
  mutable asserts : int;
}

let create eng ~cpu ~dispatch_cost =
  { eng; cpu; dispatch_cost; lines = Hashtbl.create 8; total = 0; asserts = 0 }

let register t ~line ~name handler =
  if Hashtbl.mem t.lines line then
    invalid_arg "Irq.register: line already has a handler";
  Hashtbl.replace t.lines line
    { name; handler; pending = false; dispatched = 0 }

let assert_line t ~line =
  match Hashtbl.find_opt t.lines line with
  | None -> invalid_arg "Irq.assert_line: no handler registered"
  | Some st ->
      t.asserts <- t.asserts + 1;
      if not st.pending then begin
        st.pending <- true;
        Process.spawn t.eng ~name:("irq:" ^ st.name) (fun () ->
            Cpu.consume_interrupt t.cpu t.dispatch_cost;
            st.pending <- false;
            st.dispatched <- st.dispatched + 1;
            t.total <- t.total + 1;
            st.handler ())
      end

let count t = t.total

let count_line t ~line =
  match Hashtbl.find_opt t.lines line with
  | None -> 0
  | Some st -> st.dispatched

let asserted t = t.asserts
