(** Host interrupt dispatch.

    Fielding an interrupt raised by the OSIRIS board costs the host about
    75 µs on a DECstation 5000/200 under Mach (paper §2.1.2) — comparable to
    a third of the whole UDP/IP service time, which is why the host/board
    protocol works so hard to avoid interrupts. That dispatch cost is
    charged here, at interrupt priority, before the registered handler
    runs.

    Handlers run in process context (they may signal condition variables,
    consume further CPU time, etc.). A line asserted while its handler is
    still pending is coalesced, matching level-triggered behaviour and the
    board's own assert-on-transition discipline. *)

type t

val create : Osiris_sim.Engine.t -> cpu:Cpu.t -> dispatch_cost:Osiris_sim.Time.t -> t

val register : t -> line:int -> name:string -> (unit -> unit) -> unit
(** Install the handler for an interrupt line. At most one handler per
    line. *)

val assert_line : t -> line:int -> unit
(** Raise the line. Safe from any context. The handler is scheduled
    immediately; duplicate asserts before it runs are merged. *)

val count : t -> int
(** Total interrupts dispatched (after coalescing). *)

val count_line : t -> line:int -> int

val asserted : t -> int
(** Total asserts requested (before coalescing). *)
