lib/atm/cell.mli: Bytes Format
