lib/atm/sar.ml: Array Bytes Cell Format Hashtbl Int32 List Osiris_util Printf Sys
