lib/atm/sar.mli: Bytes Cell Format
