lib/atm/cell.ml: Bytes Char Format
