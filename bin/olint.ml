(* olint — enforce the checked-in interface policy (olint.policy) over
   the library tree. Exit 0 when clean, 1 on violations, 2 on usage or
   policy errors. See Osiris_analysis.Lint for the rules. *)

let () =
  let policy_path = ref "olint.policy" in
  let roots = ref [] in
  let spec =
    [
      ( "--policy",
        Arg.Set_string policy_path,
        "FILE policy file (default: olint.policy)" );
    ]
  in
  let usage = "olint [--policy FILE] [ROOT...]\nLint OCaml sources against the project ownership policy." in
  Arg.parse spec (fun r -> roots := !roots @ [ r ]) usage;
  let policy =
    try Osiris_analysis.Policy.load !policy_path
    with Sys_error msg | Failure msg ->
      Printf.eprintf "olint: cannot load policy: %s\n" msg;
      exit 2
  in
  let roots =
    match (!roots, policy.Osiris_analysis.Policy.scan) with
    | [], [] ->
        Printf.eprintf
          "olint: no roots given and policy has no 'scan' directive\n";
        exit 2
    | [], scan -> scan
    | given, _ -> given
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    Printf.eprintf "olint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let violations = Osiris_analysis.Lint.check_tree policy roots in
  List.iter
    (fun v -> Format.printf "%a@." Osiris_analysis.Lint.pp_violation v)
    violations;
  match violations with
  | [] ->
      Printf.eprintf "olint: clean (%s)\n" (String.concat " " roots);
      exit 0
  | vs ->
      Printf.eprintf "olint: %d violation%s\n" (List.length vs)
        (if List.length vs = 1 then "" else "s");
      exit 1
