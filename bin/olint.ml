(* olint — enforce the checked-in interface policy (olint.policy) over
   the library tree. Exit 0 when clean, 1 on violations, 2 on usage or
   policy errors. See Osiris_analysis.Lint (syntactic R0–R4) and
   Osiris_analysis.Typed (typed R5–R7, enabled with --typed). *)

let () =
  let policy_path = ref "olint.policy" in
  let roots = ref [] in
  let typed_root = ref "" in
  let format = ref "plain" in
  let spec =
    [
      ( "--policy",
        Arg.Set_string policy_path,
        "FILE policy file (default: olint.policy)" );
      ( "--typed",
        Arg.Set_string typed_root,
        "DIR also run the typed passes (R5-R7) over .cmt files under DIR \
         (e.g. _build/default)" );
      ( "--format",
        Arg.Symbol
          ([ "plain"; "github" ], fun s -> format := s),
        " output format: plain (grep-able, default) or github \
         (::error problem-matcher annotations, in addition to plain)" );
    ]
  in
  let usage =
    "olint [--policy FILE] [--typed CMT-DIR] [--format plain|github] \
     [ROOT...]\n\
     Lint OCaml sources against the project ownership policy."
  in
  Arg.parse spec (fun r -> roots := !roots @ [ r ]) usage;
  let policy =
    try Osiris_analysis.Policy.load !policy_path
    with Sys_error msg | Failure msg ->
      Printf.eprintf "olint: cannot load policy: %s\n" msg;
      exit 2
  in
  let roots =
    match (!roots, policy.Osiris_analysis.Policy.scan) with
    | [], [] ->
        Printf.eprintf
          "olint: no roots given and policy has no 'scan' directive\n";
        exit 2
    | [], scan -> scan
    | given, _ -> given
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    Printf.eprintf "olint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let violations = Osiris_analysis.Lint.check_tree policy roots in
  let violations =
    if !typed_root = "" then violations
    else if not (Sys.file_exists !typed_root) then begin
      Printf.eprintf "olint: no such --typed root: %s\n" !typed_root;
      exit 2
    end
    else
      violations
      @ Osiris_analysis.Typed.check_tree policy ~cmt_root:!typed_root
  in
  List.iter
    (fun v ->
      Format.printf "%a@." Osiris_analysis.Lint.pp_violation v;
      (* GitHub problem-matcher annotation: surfaces the violation on
         the PR diff when the lint job runs in Actions. *)
      if !format = "github" then
        Printf.printf "::error file=%s,line=%d::[%s] %s\n"
          v.Osiris_analysis.Lint.file v.Osiris_analysis.Lint.line
          v.Osiris_analysis.Lint.rule v.Osiris_analysis.Lint.message)
    violations;
  match violations with
  | [] ->
      Printf.eprintf "olint: clean (%s%s)\n"
        (String.concat " " roots)
        (if !typed_root = "" then "" else " + typed:" ^ !typed_root);
      exit 0
  | vs ->
      Printf.eprintf "olint: %d violation%s\n" (List.length vs)
        (if List.length vs = 1 then "" else "s");
      exit 1
