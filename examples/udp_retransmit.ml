(* Reliable delivery over an unreliable fabric, built entirely above the
   stack: a stop-and-wait block protocol with acknowledgements, a
   retransmission timer and exponential backoff, run against a scripted
   cell-drop burst from the fault layer.

   The point of the exercise: the adaptor, driver and UDP path give no
   delivery guarantee (the paper's stack stops at checksummed datagrams),
   so recovery from a lossy window is the application's problem.  A 30%
   per-cell drop burst in the middle of the transfer kills essentially
   every multi-cell PDU it touches; the sender's ack timeout notices,
   backs off and retransmits until the block finally crosses intact, and
   the receiver dedupes the retransmits.  Every delivered block is
   verified byte-for-byte.

   Run with: dune exec examples/udp_retransmit.exe *)

open Osiris_core
module Msg = Osiris_xkernel.Msg
module Udp = Osiris_proto.Udp
module Engine = Osiris_sim.Engine
module Process = Osiris_sim.Process
module Mailbox = Osiris_sim.Mailbox
module Time = Osiris_sim.Time
module Plan = Osiris_fault.Plan
module Injector = Osiris_fault.Injector

let block_size = 8 * 1024
let nblocks = 24
let data_port = 20
let ack_port = 21
let base_timeout = Time.ms 2
let max_backoff = Time.ms 16

(* Deterministic block contents: byte i of block b. *)
let block_byte b i = Char.chr ((i + (b * 197)) land 0xff)

let () =
  (* App-level retransmission only helps if the board underneath can shed
     a wedged VC: a dropped end-of-message cell leaves a partial
     reassembly that, without the reassembly timeout, holds its buffers
     forever and garbles every retransmit appended to it. *)
  let board =
    {
      Osiris_board.Board.default_config with
      Osiris_board.Board.reassembly_timeout = Time.ms 1;
    }
  in
  let eng, net =
    Network.pair ~config:{ Host.default_config with Host.board } ()
  in
  let a = net.Network.a and b = net.Network.b in

  (* The fault: a heavy cell-drop burst over the data direction while the
     middle of the transfer is in flight.  Scripted, so every run shows
     the same storm. *)
  let plan = Plan.of_string "seed=11;drop@3ms-9ms=0.3" in
  ignore (Injector.inject eng ~plan ~link:net.Network.a_to_b ());

  (* Receiver on B: verify, dedupe, ack.  Acks carry the block number;
     re-acking a duplicate is what lets a lost ack heal too. *)
  let received = Array.make nblocks false in
  let duplicates = ref 0 and corrupt = ref 0 in
  Udp.bind b.Host.udp ~port:data_port (fun ~src ~src_port:_ msg ->
      let data = Msg.read_all msg in
      Msg.dispose msg;
      let blk =
        Char.code (Bytes.get data 0) lor (Char.code (Bytes.get data 1) lsl 8)
      in
      let ok = ref (Bytes.length data = block_size + 4) in
      if !ok then
        for i = 4 to Bytes.length data - 1 do
          if Bytes.get data i <> block_byte blk (i - 4) then ok := false
        done;
      if not !ok then incr corrupt
      else begin
        if received.(blk) then incr duplicates else received.(blk) <- true;
        let ack = Msg.alloc b.Host.vs ~len:4 () in
        Msg.blit_into ack ~off:0
          ~src:(Bytes.init 4 (fun i -> Char.chr ((blk lsr (8 * i)) land 0xff)));
        Udp.output b.Host.udp ~dst:src ~src_port:ack_port ~dst_port:ack_port
          ack
      end);

  (* Ack collector on A: block numbers, in arrival order. *)
  let acks = Mailbox.create eng () in
  Udp.bind a.Host.udp ~port:ack_port (fun ~src:_ ~src_port:_ msg ->
      let data = Msg.read_all msg in
      Msg.dispose msg;
      let blk =
        Char.code (Bytes.get data 0) lor (Char.code (Bytes.get data 1) lsl 8)
      in
      ignore (Mailbox.try_send acks blk));

  let retransmits = ref 0 and t_end = ref 0 in
  let send_block blk =
    let msg =
      Msg.alloc a.Host.vs
        ~len:(block_size + 4)
        ~fill:(fun i ->
          if i < 4 then Char.chr ((blk lsr (8 * i)) land 0xff)
          else block_byte blk (i - 4))
        ()
    in
    Udp.output a.Host.udp ~dst:b.Host.addr ~src_port:data_port
      ~dst_port:data_port msg
  in
  (* Wait for blk's ack until [deadline]; the poll granularity only has
     to be finer than the base timeout. *)
  let rec await_ack blk deadline =
    match Mailbox.try_recv acks with
    | Some n when n = blk -> true
    | Some _ -> await_ack blk deadline (* stale ack of an old retransmit *)
    | None ->
        if Engine.now eng >= deadline then false
        else begin
          Process.sleep eng (Time.us 100);
          await_ack blk deadline
        end
  in
  Process.spawn eng ~name:"sender" (fun () ->
      for blk = 0 to nblocks - 1 do
        (* Stop-and-wait with exponential backoff: double the timeout on
           every loss so retransmits thin out while the burst lasts. *)
        let timeout = ref base_timeout in
        send_block blk;
        while not (await_ack blk (Engine.now eng + !timeout)) do
          incr retransmits;
          timeout := min (2 * !timeout) max_backoff;
          send_block blk
        done
      done;
      t_end := Engine.now eng;
      Engine.stop eng);

  Engine.run ~until:(Time.s 2) eng;

  let missing =
    Array.fold_left (fun n r -> if r then n else n + 1) 0 received
  in
  Printf.printf
    "transferred %d blocks (%d KB) in %.2f ms simulated through a 30%% \
     drop burst\n"
    nblocks
    (nblocks * block_size / 1024)
    (Time.to_float_us !t_end /. 1000.);
  Printf.printf "recovery: %d retransmits, %d duplicate deliveries acked\n"
    !retransmits !duplicates;
  Printf.printf "blocks: %d ok, %d missing, %d corrupt\n" (nblocks - missing)
    missing !corrupt;
  if !t_end = 0 then begin
    print_endline "FAIL: transfer did not complete";
    exit 1
  end;
  if missing > 0 || !corrupt > 0 then exit 1;
  if !retransmits = 0 then begin
    print_endline "FAIL: the drop burst never bit -- fault layer inert?";
    exit 1
  end
