(* Reliable delivery over an unreliable fabric — now via the stack's own
   transport ({!Osiris_transport}) instead of a hand-rolled stop-and-wait
   loop: sliding window, selective acks, adaptive RTO with backoff and
   congestion control, run against the same scripted cell-drop burst
   from the fault layer.

   The point of the exercise is unchanged: the adaptor, driver and UDP
   path give no delivery guarantee (the paper's stack stops at
   checksummed datagrams), so recovery from a lossy window belongs to a
   layer above them.  A 30% per-cell drop burst in the middle of the
   transfer kills essentially every multi-cell PDU it touches; the
   transport's sack-driven fast retransmits and retransmission timer
   refill the holes until the stream crosses intact, and the stream is
   verified byte-for-byte on the far side.

   Run with: dune exec examples/udp_retransmit.exe *)

open Osiris_core
module Board = Osiris_board.Board
module Engine = Osiris_sim.Engine
module Time = Osiris_sim.Time
module Plan = Osiris_fault.Plan
module Injector = Osiris_fault.Injector
module Transport = Osiris_transport.Transport
module Sender = Osiris_transport.Sender

let block_size = 8 * 1024
let nblocks = 24
let total_bytes = nblocks * block_size
let data_vci = 9
let ack_vci = 10

(* Deterministic stream contents: byte i of block b — the same pattern
   the stop-and-wait version of this example transferred, so the
   byte-exact check survives the transport swap. *)
let block_byte b i = Char.chr ((i + (b * 197)) land 0xff)
let stream_byte off = block_byte (off / block_size) (off mod block_size)

let () =
  (* Transport retransmission only helps if the board underneath can
     shed a wedged VC: a cell dropped mid-PDU leaves the VC's striped
     reassembly rotated out of phase, and without the reassembly-timeout
     sweep every later PDU on that VC — including the retransmits meant
     to repair the loss — reassembles permuted and dies in the CRC
     check.  The timeout is the layer boundary: the board recovers its
     own state, the transport recovers the bytes. *)
  let board =
    {
      Board.default_config with
      Board.reassembly_timeout = Time.ms 1;
    }
  in
  let eng, net =
    Network.pair ~config:{ Host.default_config with Host.board } ()
  in
  let a = net.Network.a and b = net.Network.b in

  (* The fault: the same heavy cell-drop burst over the data direction
     while the middle of the transfer is in flight.  Scripted, so every
     run shows the same storm. *)
  let plan = Plan.of_string "seed=11;drop@3ms-9ms=0.3" in
  ignore (Injector.inject eng ~plan ~link:net.Network.a_to_b ());

  (* A back-to-back pair has no switch to rewrite VCIs, so the circuit
     is just two hand-bound VCIs: data A->B, acks B->A. *)
  Board.bind_vci b.Host.board ~vci:data_vci (Board.kernel_channel b.Host.board);
  Board.bind_vci a.Host.board ~vci:ack_vci (Board.kernel_channel a.Host.board);

  (* Receiver side: the transport delivers the stream in order; verify
     every byte against the generator as it arrives. *)
  let delivered = ref 0 and corrupt = ref 0 in
  let deliver payload =
    Bytes.iter
      (fun c ->
        if c <> stream_byte !delivered then incr corrupt;
        incr delivered)
      payload
  in
  let t_end = ref 0 in
  let conn =
    Transport.attach eng ~src:a ~dst:b ~data_tx_vci:data_vci
      ~data_rx_vci:data_vci ~ack_tx_vci:ack_vci ~ack_rx_vci:ack_vci ~deliver
      ~on_state:(fun st ->
        if st = Sender.Finished then begin
          t_end := Engine.now eng;
          Engine.stop eng
        end)
      ()
  in
  Transport.send conn (Bytes.init total_bytes stream_byte);
  Transport.close conn;
  Engine.run ~until:(Time.s 2) eng;

  let st = Sender.stats (Transport.sender conn) in
  Printf.printf
    "transferred %d blocks (%d KB) in %.2f ms simulated through a 30%% \
     drop burst\n"
    nblocks (total_bytes / 1024)
    (Time.to_float_us !t_end /. 1000.);
  Printf.printf
    "recovery: %d retransmits (%d fast, %d tail probes), %d timeouts, \
     %d cwnd cuts\n"
    st.Sender.retransmits st.Sender.fast_retransmits st.Sender.tail_probes
    st.Sender.timeouts st.Sender.cwnd_cuts;
  Printf.printf "stream: %d/%d bytes delivered, %d corrupt, %d garbled PDUs\n"
    !delivered total_bytes !corrupt (Transport.garbled conn);
  (match Transport.state conn with
  | Sender.Finished -> ()
  | Sender.Active ->
      print_endline "FAIL: transfer did not complete";
      exit 1
  | Sender.Failed r ->
      Printf.printf "FAIL: transfer failed: %s\n" r;
      exit 1);
  if !delivered <> total_bytes || !corrupt > 0 then begin
    print_endline "FAIL: delivered stream is not byte-exact";
    exit 1
  end;
  (match Transport.invariants conn with
  | [] -> ()
  | vs ->
      List.iter (Printf.printf "FAIL: invariant: %s\n") vs;
      exit 1);
  if st.Sender.retransmits = 0 then begin
    print_endline "FAIL: the drop burst never bit -- fault layer inert?";
    exit 1
  end
